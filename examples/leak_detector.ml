(* Using the collector as a leak detector (paper section 4): a queue
   consumer forgets to clear links, one stale integer names an old node,
   and the "bounded" queue quietly retains every node it ever dequeued.
   Finalization tokens pinpoint the survivors; clearing the link on
   dequeue fixes it.

     dune exec examples/leak_detector.exe
*)

open Cgc_vm
module Harness = Cgc_workloads.Harness
module Builder = Cgc_mutator.Builder

let run ~clear_links =
  let h = Harness.create () in
  let gc = h.Harness.gc in
  let q = Builder.queue_create h.Harness.machine in
  Harness.set_root h 0 (Addr.to_int (Builder.queue_header q));
  let window = 4 in
  let watched = ref [] in
  for i = 1 to 600 do
    let node = Builder.queue_push q i in
    (* watch every 50th element *)
    if i mod 50 = 0 then begin
      Cgc.Gc.add_finalizer gc node ~token:(Printf.sprintf "element %d" i);
      watched := (i, node) :: !watched
    end;
    (* a stale local integer happens to hold node 75's address *)
    if i = 75 then Harness.set_root h 1 (Addr.to_int node);
    while Builder.queue_length q > window do
      ignore (Builder.queue_pop ~clear_link:clear_links q)
    done
  done;
  Cgc.Gc.collect gc;
  let reclaimed = Cgc.Gc.drain_finalized gc in
  Format.printf "%s: %d watched elements finalized:@."
    (if clear_links then "links cleared on dequeue" else "links left in place")
    (List.length reclaimed);
  List.iter (fun (_, tok) -> Format.printf "    reclaimed %s@." tok) reclaimed;
  (* the survivors are the leak; ask the collector for the chain of
     words that keeps each one alive *)
  let shown = ref false in
  List.iter
    (fun (i, node) ->
      if Cgc.Gc.is_allocated gc node then
        match Cgc.Inspect.why_live gc node with
        | Some chain when not !shown ->
            shown := true;
            Format.printf "    element %d still held:@.      %a@." i Cgc.Inspect.pp_chain chain
        | Some (first :: _ as chain) ->
            Format.printf "    element %d still held: %d-step chain from %a@." i
              (List.length chain) Cgc.Inspect.pp_step first
        | Some [] | None -> Format.printf "    element %d still allocated@." i)
    (List.rev !watched);
  Format.printf "    live bytes after GC: %d@.@." (Cgc.Gc.live_bytes gc)

let () =
  Format.printf
    "A queue keeps at most 4 elements alive, 600 pass through it, and one@.\
     stale word names element 75.  Which dequeued elements get reclaimed?@.@.";
  run ~clear_links:false;
  run ~clear_links:true;
  Format.printf
    "Without clearing, every element after 75 hangs off the false reference@.\
     (\"queues ... grow without bound\"); the missing finalization tokens say@.\
     exactly where the leak starts.  \"Queues no longer grow without bound if@.\
     the queue link field is cleared when an item is removed.\" (section 4)@."
