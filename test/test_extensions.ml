(* Tests for the extension features: root exclusion, registered
   displacements, provenance tracing, and the generational collector. *)

open Cgc_vm
module Gc = Cgc.Gc
module Config = Cgc.Config
module Heap = Cgc.Heap
module Trace = Cgc.Trace
module Generational = Cgc.Generational
module W_gen = Cgc_workloads.Generational_exp

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let heap_base = Addr.of_int 0x400000

let make_env ?(config = { Config.default with Config.initial_pages = 16 }) () =
  let mem = Mem.create () in
  let globals = Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000 in
  let gc = Gc.create ~config mem ~base:heap_base ~max_bytes:(1024 * 1024) () in
  Gc.set_auto_collect gc false;
  Gc.add_static_root gc ~lo:(Segment.base globals) ~hi:(Segment.limit globals) ~label:"globals";
  (mem, globals, gc)

let slot globals i = Addr.add (Segment.base globals) (4 * i)
let set_slot globals i v = Segment.write_word globals (slot globals i) v

(* --- root exclusion --- *)

let test_exclusion_hides_pointer () =
  let _, globals, gc = make_env () in
  let a = Gc.allocate gc 8 in
  set_slot globals 10 (Addr.to_int a);
  Gc.collect gc;
  check bool "visible root retains" true (Gc.is_allocated gc a);
  (* exclude the range holding slot 10 *)
  Gc.exclude_roots gc ~lo:(slot globals 8) ~hi:(slot globals 16) ~label:"io buffer";
  Gc.collect gc;
  check bool "excluded root no longer retains" false (Gc.is_allocated gc a)

let test_exclusion_leaves_rest_scanned () =
  let _, globals, gc = make_env () in
  let a = Gc.allocate gc 8 in
  let b = Gc.allocate gc 8 in
  set_slot globals 2 (Addr.to_int a);
  set_slot globals 20 (Addr.to_int b);
  Gc.exclude_roots gc ~lo:(slot globals 16) ~hi:(slot globals 32) ~label:"buffer";
  Gc.collect gc;
  check bool "before exclusion still scanned" true (Gc.is_allocated gc a);
  check bool "inside exclusion not scanned" false (Gc.is_allocated gc b)

let test_exclusion_splits_range () =
  (* an exclusion strictly inside a root range leaves both sides live *)
  let _, globals, gc = make_env () in
  let a = Gc.allocate gc 8 in
  let b = Gc.allocate gc 8 in
  let c = Gc.allocate gc 8 in
  set_slot globals 0 (Addr.to_int a);
  set_slot globals 50 (Addr.to_int b);
  set_slot globals 100 (Addr.to_int c);
  Gc.exclude_roots gc ~lo:(slot globals 40) ~hi:(slot globals 60) ~label:"hole";
  Gc.collect gc;
  check bool "left side scanned" true (Gc.is_allocated gc a);
  check bool "hole skipped" false (Gc.is_allocated gc b);
  check bool "right side scanned" true (Gc.is_allocated gc c)

let test_exclusion_reduces_false_refs () =
  let _, globals, gc = make_env () in
  (* fill a buffer area with false references *)
  for i = 100 to 200 do
    set_slot globals i (Addr.to_int (Addr.add heap_base (4096 * (i - 90))))
  done;
  Gc.collect gc;
  let with_buffer = (Gc.stats gc).Cgc.Stats.false_refs in
  Gc.exclude_roots gc ~lo:(slot globals 100) ~hi:(slot globals 201) ~label:"io buffer";
  Gc.collect gc;
  let delta = (Gc.stats gc).Cgc.Stats.false_refs - with_buffer in
  check bool "false refs fall after exclusion" true (delta < with_buffer / 2)

(* --- registered displacements --- *)

let test_displacement_recognized () =
  let config =
    {
      Config.default with
      Config.initial_pages = 16;
      interior_pointers = false;
      valid_displacements = [ 8 ];
    }
  in
  let _, globals, gc = make_env ~config () in
  let a = Gc.allocate gc 16 in
  set_slot globals 0 (Addr.to_int (Addr.add a 8));
  Gc.collect gc;
  check bool "registered displacement retains" true (Gc.is_allocated gc a);
  (* a non-registered displacement does not *)
  let b = Gc.allocate gc 16 in
  set_slot globals 0 (Addr.to_int (Addr.add b 4));
  Gc.collect gc;
  check bool "unregistered displacement ignored" false (Gc.is_allocated gc b)

let test_displacement_validation () =
  check bool "unaligned displacement rejected" true
    (try
       Config.validate { Config.default with Config.valid_displacements = [ 2 ] };
       false
     with Invalid_argument _ -> true)

(* --- trace --- *)

let test_trace_direct_root () =
  let _, globals, gc = make_env () in
  let a = Gc.allocate gc 8 in
  set_slot globals 3 (Addr.to_int a);
  match Trace.why_live gc a with
  | Some [ Trace.Root { label; at = Some at; value } ] ->
      check Alcotest.string "label" "globals" label;
      check int "address of the root word" (Addr.to_int (slot globals 3)) (Addr.to_int at);
      check int "value is the object" (Addr.to_int a) value
  | Some chain -> Alcotest.failf "unexpected chain length %d" (List.length chain)
  | None -> Alcotest.fail "expected a chain"

let test_trace_transitive_chain () =
  let _, globals, gc = make_env () in
  let c = Gc.allocate gc 8 in
  let b = Gc.allocate gc 8 in
  let a = Gc.allocate gc 8 in
  Gc.set_field gc a 0 (Addr.to_int b);
  Gc.set_field gc b 0 (Addr.to_int c);
  set_slot globals 0 (Addr.to_int a);
  (match Trace.why_live gc c with
  | Some
      [
        Trace.Root _;
        Trace.Heap_word { obj = o1; _ };
        Trace.Heap_word { obj = o2; value = v2; _ };
      ] ->
      check int "first hop through a" (Addr.to_int a) (Addr.to_int o1);
      check int "second hop through b" (Addr.to_int b) (Addr.to_int o2);
      check int "final value names c" (Addr.to_int c) v2
  | Some chain -> Alcotest.failf "unexpected chain %d" (List.length chain)
  | None -> Alcotest.fail "expected a chain");
  check bool "unreachable gives None" true (Trace.why_live gc (Gc.allocate gc 8) <> None |> not)

let test_trace_register_root () =
  let _, _, gc = make_env () in
  let regs = [| 0; 0 |] in
  Gc.add_register_roots gc ~label:"regs" (fun () -> regs);
  let a = Gc.allocate gc 8 in
  regs.(1) <- Addr.to_int a;
  match Trace.why_live gc a with
  | Some (Trace.Root { label; at = None; _ } :: _) -> check Alcotest.string "register label" "regs" label
  | Some _ | None -> Alcotest.fail "expected a register root step"

let test_trace_retained_by () =
  let _, globals, gc = make_env () in
  let a = Gc.allocate gc 8 in
  let b = Gc.allocate gc 8 in
  let c = Gc.allocate gc 8 in
  set_slot globals 0 (Addr.to_int a);
  set_slot globals 1 (Addr.to_int b);
  let explained = Trace.retained_by gc [ a; b; c ] in
  check int "two of three explained" 2 (List.length explained)

let test_trace_does_not_disturb_state () =
  let _, globals, gc = make_env () in
  let a = Gc.allocate gc 8 in
  let garbage = Gc.allocate gc 8 in
  set_slot globals 0 (Addr.to_int a);
  ignore (Trace.why_live gc a);
  (* tracing must not have freed or corrupted anything *)
  check bool "a still allocated" true (Gc.is_allocated gc a);
  check bool "garbage still allocated (no sweep ran)" true (Gc.is_allocated gc garbage);
  Gc.collect gc;
  check bool "normal collection still works" true (Gc.is_allocated gc a);
  check bool "garbage then reclaimed" false (Gc.is_allocated gc garbage)

(* --- inspect --- *)

module Inspect = Cgc.Inspect

let test_inspect_summary () =
  let _, globals, gc = make_env () in
  let a = Gc.allocate gc 8 in
  set_slot globals 0 (Addr.to_int a);
  ignore (Gc.allocate ~pointer_free:true gc 16);
  ignore (Gc.allocate gc (3 * 4096));
  let s = Inspect.summarize gc in
  check bool "committed pages" true (s.Inspect.committed_pages >= 4);
  check Alcotest.int "one large object" 1 s.Inspect.large_objects;
  check Alcotest.int "large bytes" (3 * 4096) s.Inspect.large_bytes;
  let cons_row = List.find (fun r -> r.Inspect.object_bytes = 8 && not r.Inspect.pointer_free) s.Inspect.classes in
  check Alcotest.int "one live cons" 1 cons_row.Inspect.live_objects;
  let atomic_row = List.find (fun r -> r.Inspect.pointer_free) s.Inspect.classes in
  check Alcotest.int "atomic class present" 16 atomic_row.Inspect.object_bytes;
  (* the printers do not raise and emit something *)
  let out = Format.asprintf "%a" Inspect.pp_summary s in
  check bool "summary prints" true (String.length out > 40);
  let map = Format.asprintf "%a" Inspect.pp_page_map gc in
  check bool "map prints L for large" true (String.contains map 'L')

(* --- lazy sweeping --- *)

let lazy_config = { Config.default with Config.initial_pages = 16; lazy_sweep = true }

let test_lazy_defers_reclamation () =
  let _, globals, gc = make_env ~config:lazy_config () in
  let keep = Gc.allocate gc 8 in
  let garbage = Gc.allocate gc 8 in
  set_slot globals 0 (Addr.to_int keep);
  Gc.collect gc;
  check bool "garbage still 'allocated' right after a lazy collect" true
    (Gc.is_allocated gc garbage);
  let freed = Gc.drain_pending_sweeps gc in
  check bool "drain frees it" true (freed >= 1);
  check bool "garbage gone after drain" false (Gc.is_allocated gc garbage);
  check bool "live object kept" true (Gc.is_allocated gc keep);
  check (Alcotest.list Alcotest.string) "invariants hold" [] (Cgc.Verify.check gc)

let test_lazy_allocation_recycles () =
  let _, globals, gc = make_env ~config:lazy_config () in
  ignore globals;
  let garbage = Array.init 200 (fun _ -> Gc.allocate gc 8) in
  Gc.collect gc;
  (* keep allocating until the pre-existing free slots are exhausted:
     the allocator must then recycle swept garbage slots *)
  let reused = ref false in
  for _ = 1 to 450 do
    let a = Gc.allocate gc 8 in
    if Array.exists (Addr.equal a) garbage then reused := true
  done;
  check bool "garbage addresses recycled" true !reused

let test_lazy_allocates_black () =
  let _, globals, gc = make_env ~config:lazy_config () in
  ignore (Gc.allocate gc 8);
  Gc.collect gc;
  (* this allocation lands on a pending page; the later drain must not
     reclaim it *)
  let a = Gc.allocate gc 8 in
  set_slot globals 0 (Addr.to_int a);
  ignore (Gc.drain_pending_sweeps gc);
  check bool "fresh object survives the deferred sweep" true (Gc.is_allocated gc a)

let test_lazy_matches_eager_final_state () =
  let run config =
    let _, globals, gc = make_env ~config () in
    let rng = Rng.create 41 in
    let objs = Array.init 200 (fun _ -> Gc.allocate gc 8) in
    for i = 0 to 199 do
      if Rng.bool rng then
        Gc.set_field gc objs.(i) 0 (Addr.to_int objs.(Rng.int rng 200))
    done;
    for i = 0 to 9 do
      set_slot globals i (Addr.to_int objs.(Rng.int rng 200))
    done;
    Gc.collect gc;
    ignore (Gc.drain_pending_sweeps gc);
    Array.map (Gc.is_allocated gc) objs
  in
  let eager = run { Config.default with Config.initial_pages = 16 } in
  let lazy_ = run lazy_config in
  check bool "identical liveness" true (eager = lazy_)

let test_lazy_large_objects () =
  let _, globals, gc = make_env ~config:lazy_config () in
  let big = Gc.allocate gc (3 * 4096) in
  set_slot globals 0 (Addr.to_int big);
  let dead_big = Gc.allocate gc (3 * 4096) in
  ignore dead_big;
  Gc.collect gc;
  (* a new large allocation forces the pending drain; the freed pages are
     the lowest free run, so the new object lands exactly there *)
  let big2 = Gc.allocate gc (3 * 4096) in
  check bool "live large kept" true (Gc.is_allocated gc big);
  check bool "dead large reclaimed and its pages reused" true
    (Addr.equal big2 dead_big || not (Gc.is_allocated gc dead_big));
  check bool "new large allocated" true (Gc.is_allocated gc big2)

(* --- verify: the checker actually detects corruption --- *)

module Verify = Cgc.Verify

let test_verify_clean_heap () =
  let _, globals, gc = make_env () in
  let a = Gc.allocate gc 8 in
  set_slot globals 0 (Addr.to_int a);
  ignore (Gc.allocate gc 16);
  check (Alcotest.list Alcotest.string) "no issues" [] (Verify.check gc);
  Gc.collect gc;
  check (Alcotest.list Alcotest.string) "no issues after collect" [] (Verify.check_after_collect gc)

let test_verify_detects_free_list_corruption () =
  let _, _, gc = make_env () in
  ignore (Gc.allocate gc 8);
  (* inject a bogus free-list entry pointing at the allocated object *)
  let fl = Gc.Internal.free_lists gc in
  (match Cgc.Free_list.take fl ~granules:2 ~pointer_free:false with
  | Some slot ->
      (* put it back twice: duplicate entry *)
      Cgc.Free_list.add fl ~granules:2 ~pointer_free:false slot;
      Cgc.Free_list.add fl ~granules:2 ~pointer_free:false slot
  | None -> Alcotest.fail "expected a free slot");
  check bool "duplicate detected" true (Verify.check gc <> [])

let test_verify_detects_wrong_class () =
  let _, _, gc = make_env () in
  ignore (Gc.allocate gc 8);
  let fl = Gc.Internal.free_lists gc in
  (match Cgc.Free_list.take fl ~granules:2 ~pointer_free:false with
  | Some slot -> Cgc.Free_list.add fl ~granules:3 ~pointer_free:false slot
  | None -> Alcotest.fail "expected a free slot");
  check bool "class mismatch detected" true (Verify.check gc <> [])

let test_verify_detects_dangling_finalizer () =
  let _, _, gc = make_env () in
  let a = Gc.allocate gc 8 in
  (* register a finalizer on a bogus (never-allocated) address *)
  Gc.add_finalizer gc (Addr.add a 4096) ~token:"bogus";
  check bool "dangling finalizer detected" true (Verify.check gc <> [])

(* --- generational --- *)

let make_gen ?(promote_after = 2) () =
  let mem, globals, gc = make_env () in
  ignore mem;
  (globals, gc, Generational.create ~promote_after gc)

let test_gen_minor_reclaims_young_garbage () =
  let globals, gc, gen = make_gen () in
  ignore globals;
  let a = Generational.allocate gen 8 in
  Generational.minor gen;
  check bool "young garbage reclaimed by minor" false (Gc.is_allocated gc a)

let test_gen_minor_keeps_rooted_young () =
  let globals, gc, gen = make_gen () in
  let a = Generational.allocate gen 8 in
  set_slot globals 0 (Addr.to_int a);
  Generational.minor gen;
  check bool "rooted young object survives" true (Gc.is_allocated gc a)

let test_gen_promotion () =
  let globals, gc, gen = make_gen ~promote_after:2 () in
  ignore gc;
  let a = Generational.allocate gen 8 in
  set_slot globals 0 (Addr.to_int a);
  check bool "young at first" false (Generational.is_old gen a);
  Generational.minor gen;
  check bool "still young after one minor" false (Generational.is_old gen a);
  Generational.minor gen;
  check bool "promoted after two minors" true (Generational.is_old gen a);
  check bool "promotion recorded" true ((Generational.stats gen).Generational.promoted_pages >= 1)

let test_gen_old_garbage_needs_major () =
  let globals, gc, gen = make_gen ~promote_after:1 () in
  let a = Generational.allocate gen 8 in
  set_slot globals 0 (Addr.to_int a);
  Generational.minor gen;
  check bool "promoted" true (Generational.is_old gen a);
  (* drop it: minor collections cannot reclaim old garbage *)
  set_slot globals 0 0;
  Generational.minor gen;
  check bool "old garbage survives minors" true (Gc.is_allocated gc a);
  Generational.major gen;
  check bool "major reclaims it" false (Gc.is_allocated gc a)

let test_gen_write_barrier () =
  let globals, gc, gen = make_gen ~promote_after:1 () in
  (* an old object pointing at a young one: without the dirty-page scan
     the young object would be collected *)
  let old_obj = Generational.allocate gen 8 in
  set_slot globals 0 (Addr.to_int old_obj);
  Generational.minor gen;
  check bool "holder promoted" true (Generational.is_old gen old_obj);
  let young = Generational.allocate gen 8 in
  Generational.set_field gen old_obj 0 (Addr.to_int young);
  (* the young object is reachable ONLY through the old object *)
  Generational.minor gen;
  check bool "young object kept via dirty old page" true (Gc.is_allocated gc young)

let test_gen_missing_barrier_loses_object () =
  (* demonstrate why the barrier exists: writing through Gc.set_field
     (no barrier) hides the young object from the minor collector *)
  let globals, gc, gen = make_gen ~promote_after:1 () in
  let old_obj = Generational.allocate gen 8 in
  set_slot globals 0 (Addr.to_int old_obj);
  Generational.minor gen;
  (* promotion leaves the page dirty; a settling minor clears the bit
     so the unbarriered store below is genuinely uncovered *)
  Generational.minor gen;
  let young = Generational.allocate gen 8 in
  Gc.set_field gc old_obj 0 (Addr.to_int young);
  Generational.minor gen;
  check bool "unbarriered store loses the young object" false (Gc.is_allocated gc young)

let test_gen_fresh_allocation_stays_young () =
  let globals, gc, gen = make_gen ~promote_after:1 () in
  ignore globals;
  ignore gc;
  let a = Generational.allocate gen 8 in
  ignore a;
  Generational.minor gen;
  let b = Generational.allocate gen 8 in
  check bool "fresh object is young" false (Generational.is_old gen b)

let test_gen_rejects_lazy_config () =
  let config = { Config.default with Config.initial_pages = 16; lazy_sweep = true } in
  let _, _, gc = make_env ~config () in
  check bool "lazy config rejected" true
    (try
       ignore (Generational.create gc);
       false
     with Invalid_argument _ -> true)

(* The major lifecycle: a full collection empties the whole dirty set
   (not just the bits of pages that became free) and resets the
   generation clock, and the barrier/rescan machinery still works from
   scratch afterwards. *)
let test_gen_major_clears_dirty () =
  let globals, gc, gen = make_gen ~promote_after:1 () in
  let a = Generational.allocate gen 8 in
  set_slot globals 0 (Addr.to_int a);
  Generational.minor gen;
  check bool "holder promoted" true (Generational.is_old gen a);
  let y = Generational.allocate gen 8 in
  Generational.set_field gen a 0 (Addr.to_int y);
  check bool "barrier store dirtied the old page" true (Generational.dirty_pages gen <> []);
  Generational.major gen;
  check (Alcotest.list int) "dirty set empty after major" [] (Generational.dirty_pages gen);
  check (Alcotest.list int) "no carryovers after major" [] (Generational.carried_pages gen);
  check bool "generation clock reset (survivor young again)" false (Generational.is_old gen a);
  (* the survivor re-earns tenure, and a store-then-minor still rescans *)
  Generational.minor gen;
  check bool "re-promoted" true (Generational.is_old gen a);
  (* promotion installs dirty bits on the re-promoted pages; settle
     them so the +1 below counts the barrier store alone *)
  Generational.minor gen;
  let scanned_before = (Generational.stats gen).Generational.dirty_pages_scanned in
  let z = Generational.allocate gen 8 in
  Generational.set_field gen a 0 (Addr.to_int z);
  check bool "store re-dirties" true (Generational.dirty_pages gen <> []);
  Generational.minor gen;
  check int "minor rescanned the dirty page" (scanned_before + 1)
    (Generational.stats gen).Generational.dirty_pages_scanned;
  check bool "young target kept through the rescan" true (Gc.is_allocated gc z)

(* The sticky young-reference hazard: a dirty old page whose rescan
   finds a still-young target must keep its dirty bit (the store
   happened once; the mutator owes no second barrier), or the next
   minor frees a live object. *)
let test_gen_carry_keeps_sticky_young_reference () =
  let globals, gc, gen = make_gen ~promote_after:2 () in
  let holder = Generational.allocate gen 8 in
  set_slot globals 0 (Addr.to_int holder);
  Generational.minor gen;
  Generational.minor gen;
  check bool "holder promoted" true (Generational.is_old gen holder);
  let young = Generational.allocate gen 8 in
  Generational.set_field gen holder 0 (Addr.to_int young);
  (* reachable ONLY through the old page, across several minors *)
  Generational.minor gen;
  check bool "alive after first rescan" true (Gc.is_allocated gc young);
  check bool "dirty bit carried (target still young)" true
    (Generational.carried_pages gen <> []);
  Generational.minor gen;
  check bool "alive after second minor (the regression)" true (Gc.is_allocated gc young);
  check bool "target promoted by now" true (Generational.is_old gen young);
  (* once the target is old the carryover lapses *)
  Generational.minor gen;
  check (Alcotest.list int) "carry dropped after target tenures" []
    (Generational.carried_pages gen)

(* A post-major retry that also fails must surface BOTH attempts: the
   merged diagnosis carries the rungs climbed before the rescuing major
   as well as the retry's own. *)
let test_gen_oom_merges_both_diagnoses () =
  let globals, gc, gen = make_gen ~promote_after:1 () in
  (* fill the 1MB heap with a rooted chain until nothing fits *)
  let prev = ref 0 in
  (try
     for _ = 1 to 10_000 do
       let o = Generational.allocate gen 2048 in
       Gc.set_field gc o 0 !prev;
       prev := Addr.to_int o;
       set_slot globals 0 !prev
     done;
     Alcotest.fail "expected the chain to outgrow the heap"
   with Gc.Out_of_memory d ->
     (* every failed climb records a Grow rung; the merged diagnosis
        must carry one per attempt (the old code kept only the retry's) *)
     let grows = List.filter (fun r -> r = Gc.Grow) d.Gc.rungs in
     check bool "rungs from both attempts (two ladder climbs)" true (List.length grows >= 2))

let test_gen_experiment_ordering () =
  let clean = W_gen.run W_gen.Clean ~rounds:15 in
  let careless = W_gen.run W_gen.Careless ~rounds:15 in
  check int "clean promotes no garbage" 0 clean.W_gen.garbage_promoted_bytes;
  check bool "careless promotes garbage" true (careless.W_gen.garbage_promoted_bytes > 4096);
  check int "same minors" clean.W_gen.minor_collections careless.W_gen.minor_collections

(* The §3.1 ceiling: raising the tenure threshold cannot rescue a
   careless machine — every measured window still promotes garbage —
   while a hygienic machine promotes nothing at any threshold. *)
let test_gen_promotion_ceiling () =
  let thresholds = [ 1; 4 ] in
  let clean = W_gen.ceiling W_gen.Clean ~thresholds ~rounds:10 in
  let careless = W_gen.ceiling W_gen.Careless ~thresholds ~rounds:10 in
  check bool "clean window promotes nothing at any threshold" true
    (List.for_all (fun p -> p.W_gen.cp_promoted_bytes = 0) clean.W_gen.c_points);
  check bool "careless window promotes garbage at every threshold" true
    (List.for_all (fun p -> p.W_gen.cp_promoted_bytes > 0) careless.W_gen.c_points);
  match careless.W_gen.c_points with
  | [ p1; p4 ] ->
      check bool "higher tenure lowers but does not erase the garbage" true
        (p4.W_gen.cp_promoted_bytes < p1.W_gen.cp_promoted_bytes)
  | _ -> Alcotest.fail "expected two ceiling points"

(* --- debug / find-leak mode --- *)

module Debug = Cgc.Debug

let test_debug_clean_program () =
  let _, globals, gc = make_env () in
  let d = Debug.create gc in
  let a = Debug.allocate d ~tag:"a" 8 in
  set_slot globals 0 (Addr.to_int a);
  let r = Debug.check d in
  check int "live" 1 r.Debug.live;
  check int "no leaks" 0 (List.length r.Debug.leaks);
  (* program finishes with it properly *)
  set_slot globals 0 0;
  Debug.free d a;
  let r = Debug.check d in
  check int "clean free" 1 r.Debug.clean_frees;
  check int "nothing tracked" 0 (Debug.tracked d);
  check bool "actually reclaimed" false (Gc.is_allocated gc a)

let test_debug_detects_leak () =
  let _, globals, gc = make_env () in
  ignore globals;
  let d = Debug.create gc in
  let a = Debug.allocate d ~tag:"parser buffer" 8 in
  (* dropped without free *)
  let r = Debug.check d in
  (match r.Debug.leaks with
  | [ f ] ->
      check int "leak address" (Addr.to_int a) (Addr.to_int f.Debug.address);
      check Alcotest.string "leak tag" "parser buffer" f.Debug.tag
  | _ -> Alcotest.fail "expected exactly one leak");
  (* the leak keeps being reported, and the object is preserved *)
  check bool "leaked object preserved" true (Gc.is_allocated gc a);
  let r = Debug.check d in
  check int "still reported" 1 (List.length r.Debug.leaks)

let test_debug_detects_premature_free () =
  let _, globals, gc = make_env () in
  let d = Debug.create gc in
  let a = Debug.allocate d ~tag:"node" 8 in
  set_slot globals 0 (Addr.to_int a);
  Debug.free d a;
  let r = Debug.check d in
  (match r.Debug.premature_frees with
  | [ f ] -> check Alcotest.string "tag" "node" f.Debug.tag
  | _ -> Alcotest.fail "expected one premature free");
  check bool "object not reclaimed while reachable" true (Gc.is_allocated gc a);
  (* once the program really drops it, it becomes a clean free *)
  set_slot globals 0 0;
  let r = Debug.check d in
  check int "resolved into clean free" 1 r.Debug.clean_frees

let test_debug_double_free () =
  let _, _, gc = make_env () in
  let d = Debug.create gc in
  let a = Debug.allocate d ~tag:"x" 8 in
  Debug.free d a;
  check bool "double free rejected" true
    (try
       Debug.free d a;
       false
     with Invalid_argument _ -> true)

(* --- bounded mark stack --- *)

let test_mark_stack_overflow_recovery () =
  let config =
    { Config.default with Config.initial_pages = 16; mark_stack_limit = Some 16 }
  in
  let _, globals, gc = make_env ~config () in
  (* a wide structure: the mark stack must hold many siblings at once *)
  let fan = 400 in
  let arrays = 10 in
  let n = ref 0 in
  for i = 0 to arrays - 1 do
    let root = Gc.allocate gc (4 * fan) in
    incr n;
    for f = 0 to fan - 1 do
      let leaf = Gc.allocate gc 8 in
      incr n;
      Gc.set_field gc root f (Addr.to_int leaf)
    done;
    set_slot globals i (Addr.to_int root)
  done;
  Gc.collect gc;
  check bool "overflow happened" true ((Gc.stats gc).Cgc.Stats.mark_stack_overflows >= 1);
  check int "every object survived despite overflow" !n (Gc.stats gc).Cgc.Stats.live_objects;
  (* and garbage is still collected correctly *)
  for i = 0 to arrays - 1 do
    set_slot globals i 0
  done;
  Gc.collect gc;
  check int "all reclaimed" 0 (Gc.stats gc).Cgc.Stats.live_objects

let test_mark_overflow_matches_unbounded () =
  (* same random graph, bounded vs unbounded stacks: identical liveness *)
  let build config =
    let _, globals, gc = make_env ~config () in
    let rng = Rng.create 99 in
    let objs =
      Array.init 300 (fun _ -> Gc.allocate gc (8 + (4 * Rng.int rng 3)))
    in
    for _ = 1 to 600 do
      let s = Rng.int rng 300 and d = Rng.int rng 300 in
      Gc.set_field gc objs.(s) 0 (Addr.to_int objs.(d))
    done;
    for i = 0 to 9 do
      set_slot globals i (Addr.to_int objs.(Rng.int rng 300))
    done;
    Gc.collect gc;
    Array.map (Gc.is_allocated gc) objs
  in
  let base = { Config.default with Config.initial_pages = 16 } in
  let unbounded = build base in
  let bounded = build { base with Config.mark_stack_limit = Some 16 } in
  check bool "identical liveness" true (unbounded = bounded)

let () =
  Alcotest.run "extensions"
    [
      ( "exclusion",
        [
          Alcotest.test_case "hides pointer" `Quick test_exclusion_hides_pointer;
          Alcotest.test_case "rest scanned" `Quick test_exclusion_leaves_rest_scanned;
          Alcotest.test_case "splits range" `Quick test_exclusion_splits_range;
          Alcotest.test_case "reduces false refs" `Quick test_exclusion_reduces_false_refs;
        ] );
      ( "displacements",
        [
          Alcotest.test_case "recognized" `Quick test_displacement_recognized;
          Alcotest.test_case "validation" `Quick test_displacement_validation;
        ] );
      ( "trace",
        [
          Alcotest.test_case "direct root" `Quick test_trace_direct_root;
          Alcotest.test_case "transitive chain" `Quick test_trace_transitive_chain;
          Alcotest.test_case "register root" `Quick test_trace_register_root;
          Alcotest.test_case "retained_by" `Quick test_trace_retained_by;
          Alcotest.test_case "non-destructive" `Quick test_trace_does_not_disturb_state;
        ] );
      ( "debug",
        [
          Alcotest.test_case "clean program" `Quick test_debug_clean_program;
          Alcotest.test_case "detects leak" `Quick test_debug_detects_leak;
          Alcotest.test_case "detects premature free" `Quick test_debug_detects_premature_free;
          Alcotest.test_case "double free" `Quick test_debug_double_free;
        ] );
      ( "mark-stack",
        [
          Alcotest.test_case "overflow recovery" `Quick test_mark_stack_overflow_recovery;
          Alcotest.test_case "matches unbounded" `Quick test_mark_overflow_matches_unbounded;
        ] );
      ("inspect", [ Alcotest.test_case "summary" `Quick test_inspect_summary ]);
      ( "lazy-sweep",
        [
          Alcotest.test_case "defers reclamation" `Quick test_lazy_defers_reclamation;
          Alcotest.test_case "allocation recycles" `Quick test_lazy_allocation_recycles;
          Alcotest.test_case "allocates black" `Quick test_lazy_allocates_black;
          Alcotest.test_case "matches eager" `Quick test_lazy_matches_eager_final_state;
          Alcotest.test_case "large objects" `Quick test_lazy_large_objects;
        ] );
      ( "verify",
        [
          Alcotest.test_case "clean heap" `Quick test_verify_clean_heap;
          Alcotest.test_case "free-list corruption" `Quick test_verify_detects_free_list_corruption;
          Alcotest.test_case "wrong class" `Quick test_verify_detects_wrong_class;
          Alcotest.test_case "dangling finalizer" `Quick test_verify_detects_dangling_finalizer;
        ] );
      ( "generational",
        [
          Alcotest.test_case "minor reclaims young garbage" `Quick test_gen_minor_reclaims_young_garbage;
          Alcotest.test_case "minor keeps rooted young" `Quick test_gen_minor_keeps_rooted_young;
          Alcotest.test_case "promotion" `Quick test_gen_promotion;
          Alcotest.test_case "old garbage needs major" `Quick test_gen_old_garbage_needs_major;
          Alcotest.test_case "write barrier" `Quick test_gen_write_barrier;
          Alcotest.test_case "missing barrier" `Quick test_gen_missing_barrier_loses_object;
          Alcotest.test_case "fresh stays young" `Quick test_gen_fresh_allocation_stays_young;
          Alcotest.test_case "rejects lazy config" `Quick test_gen_rejects_lazy_config;
          Alcotest.test_case "major clears dirty set" `Quick test_gen_major_clears_dirty;
          Alcotest.test_case "carry keeps sticky young reference" `Quick
            test_gen_carry_keeps_sticky_young_reference;
          Alcotest.test_case "OOM merges both diagnoses" `Quick test_gen_oom_merges_both_diagnoses;
          Alcotest.test_case "hygiene experiment" `Quick test_gen_experiment_ordering;
          Alcotest.test_case "promotion ceiling" `Quick test_gen_promotion_ceiling;
        ] );
    ]
