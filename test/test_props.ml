(* Property-based tests (qcheck) for core data structures and the
   collector's fundamental invariants. *)

open Cgc_vm
module Gc = Cgc.Gc
module Config = Cgc.Config
module Heap = Cgc.Heap
module Blacklist = Cgc.Blacklist
module Explicit = Cgc.Explicit
module Free_list = Cgc.Free_list
module Size_class = Cgc.Size_class

let count = 200

(* --- bitset vs a reference model --- *)

type bitset_op =
  | Add of int
  | Remove of int

let bitset_ops_gen n =
  QCheck.Gen.(
    list_size (int_bound 100)
      (map2 (fun b i -> if b then Add (i mod n) else Remove (i mod n)) bool (int_bound (n - 1))))

let prop_bitset_model =
  let n = 150 in
  QCheck.Test.make ~count ~name:"bitset agrees with a set model"
    (QCheck.make (bitset_ops_gen n))
    (fun ops ->
      let bs = Bitset.create n in
      let model = Hashtbl.create 16 in
      List.iter
        (fun op ->
          match op with
          | Add i ->
              Bitset.add bs i;
              Hashtbl.replace model i ()
          | Remove i ->
              Bitset.remove bs i;
              Hashtbl.remove model i)
        ops;
      let ok = ref (Bitset.count bs = Hashtbl.length model) in
      for i = 0 to n - 1 do
        if Bitset.mem bs i <> Hashtbl.mem model i then ok := false
      done;
      (* iteration visits exactly the members, ascending *)
      let visited = List.rev (Bitset.fold (fun acc i -> i :: acc) [] bs) in
      !ok
      && List.sort compare visited = visited
      && List.for_all (Hashtbl.mem model) visited
      && List.length visited = Hashtbl.length model)

(* --- address arithmetic --- *)

let prop_addr_align =
  QCheck.Test.make ~count ~name:"align_down/align_up bracket the address"
    QCheck.(pair (int_bound 0x7FFFFFF) (int_bound 4))
    (fun (a, k) ->
      let n = 1 lsl (k + 2) in
      let a = Addr.of_int a in
      let down = Addr.align_down a n and up = Addr.align_up a n in
      Addr.is_aligned down n && Addr.is_aligned up n
      && Addr.to_int down <= Addr.to_int a
      && Addr.to_int a <= Addr.to_int up
      && Addr.to_int up - Addr.to_int down < 2 * n)

let prop_addr_trailing_zeros =
  QCheck.Test.make ~count ~name:"trailing_zeros matches the definition"
    QCheck.(int_bound 0xFFFFFFF)
    (fun a ->
      let a = a + 1 in
      let tz = Addr.trailing_zeros (Addr.of_int a) in
      a mod (1 lsl tz) = 0 && a mod (1 lsl (tz + 1)) <> 0)

(* --- segment word access --- *)

let prop_segment_roundtrip =
  QCheck.Test.make ~count ~name:"word write/read round-trips at any offset and endianness"
    QCheck.(triple (int_bound 250) (int_bound 0xFFFFFFF) bool)
    (fun (off, v, big) ->
      let endian = if big then Endian.Big else Endian.Little in
      let seg =
        Segment.create ~name:"p" ~kind:(Segment.Other "prop") ~endian ~base:(Addr.of_int 0x1000)
          ~size:256
      in
      let a = Addr.of_int (0x1000 + min off 252) in
      Segment.write_word seg a v;
      Segment.read_word seg a = v land 0xFFFFFFFF)

let prop_segment_endian_assembly =
  QCheck.Test.make ~count ~name:"word equals bytes assembled per endianness"
    QCheck.(pair (int_bound 0xFFFFFFF) bool)
    (fun (v, big) ->
      let endian = if big then Endian.Big else Endian.Little in
      let seg =
        Segment.create ~name:"p" ~kind:(Segment.Other "prop") ~endian ~base:Addr.zero ~size:8
      in
      Segment.write_word seg Addr.zero v;
      let b i = Segment.read_u8 seg (Addr.of_int i) in
      let assembled =
        if big then (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
        else (b 3 lsl 24) lor (b 2 lsl 16) lor (b 1 lsl 8) lor b 0
      in
      assembled = v land 0xFFFFFFFF)

(* --- rng --- *)

let prop_rng_bound =
  QCheck.Test.make ~count ~name:"Rng.int stays in bounds"
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

(* --- size classes --- *)

let prop_size_class_rounding =
  QCheck.Test.make ~count ~name:"granule rounding covers the request exactly"
    QCheck.(int_range 1 2048)
    (fun bytes ->
      let sc = Size_class.create Config.default in
      let g = Size_class.granules_for sc bytes in
      let rounded = Size_class.bytes_of_granules sc g in
      rounded >= bytes && rounded - bytes < Size_class.granule sc)

(* --- displacement bitmasks --- *)

(* The scan fast path answers "is this displacement a registered
   interior-pointer offset?" from a bitmask; it must agree with the
   config's list-based definition everywhere, including unaligned and
   out-of-range probes. *)
let prop_displacement_mask =
  QCheck.Test.make ~count ~name:"displacement bitmask agrees with the displacement list"
    QCheck.(pair (small_list (int_bound 120)) (small_list (int_bound 600)))
    (fun (raw, probes) ->
      let disps = List.sort_uniq compare (List.map (fun d -> 4 * d) raw) in
      let config = { Config.default with Config.valid_displacements = disps } in
      let mask = Config.displacement_mask config in
      let sc = Size_class.create config in
      let expect d = d = 0 || List.mem d disps in
      let agree d =
        Config.displacement_in_mask mask ~granule:4 d = expect d
        && Size_class.displacement_ok sc d = expect d
      in
      List.for_all agree (0 :: disps)
      && List.for_all (fun p -> agree p && agree (p + 1) && agree (p + 2) && agree (4 * p)) probes)

(* --- free lists --- *)

let prop_free_list_address_ordered =
  QCheck.Test.make ~count ~name:"address-ordered free list pops in ascending order"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_bound 100_000))
    (fun addrs ->
      let fl = Free_list.create ~n_classes:4 Free_list.Address_ordered in
      List.iter (fun a -> Free_list.add fl ~granules:2 ~pointer_free:false (4 * a)) addrs;
      let rec drain acc =
        match Free_list.take fl ~granules:2 ~pointer_free:false with
        | None -> List.rev acc
        | Some a -> drain (a :: acc)
      in
      let popped = drain [] in
      List.length popped = List.length addrs && List.sort compare popped = popped)

(* --- the collector's fundamental invariants --- *)

(* A random object graph: [n] objects of 2-4 words; random pointer
   fields; a random subset of objects named by root slots.  After a
   collection, an object must be allocated iff the model says it is
   reachable. *)
type graph = {
  g_sizes : int array;  (** words per object *)
  g_edges : (int * int * int) list;  (** (src object, field, dst object) *)
  g_roots : int list;  (** object indexes held by root slots *)
}

let graph_gen =
  QCheck.Gen.(
    int_range 2 40 >>= fun n ->
    (* mostly small objects; occasionally a multi-page large one (the
       first four fields of large objects are still scanned pointers) *)
    array_size (return n) (frequency [ (9, int_range 2 4); (1, return 1500) ]) >>= fun sizes ->
    list_size (int_bound (2 * n)) (triple (int_bound (n - 1)) (int_bound 3) (int_bound (n - 1)))
    >>= fun raw_edges ->
    list_size (int_bound (max 1 (n / 3))) (int_bound (n - 1)) >>= fun roots ->
    let edges =
      List.filter_map
        (fun (s, f, d) -> if f < sizes.(s) then Some (s, f, d) else None)
        raw_edges
    in
    return { g_sizes = sizes; g_edges = edges; g_roots = roots })

(* Field writes are applied in order, so only the last write to a given
   (object, field) pair is an edge of the final graph. *)
let final_edges g =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (s, f, d) -> Hashtbl.replace tbl (s, f) d) g.g_edges;
  Hashtbl.fold (fun (s, _) d acc -> (s, d) :: acc) tbl []

let reachable g =
  let n = Array.length g.g_sizes in
  let edges = final_edges g in
  let seen = Array.make n false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter (fun (s, d) -> if s = i then visit d) edges
    end
  in
  List.iter visit g.g_roots;
  seen

let build_graph_env g =
  let mem = Mem.create () in
  let data =
    Mem.map mem ~name:"roots" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000
  in
  let gc = Gc.create mem ~base:(Addr.of_int 0x400000) ~max_bytes:(4 * 1024 * 1024) () in
  Gc.set_auto_collect gc false;
  Gc.add_static_root gc ~lo:(Segment.base data) ~hi:(Segment.limit data) ~label:"roots";
  let objs = Array.map (fun words -> Gc.allocate gc (4 * words)) g.g_sizes in
  List.iter (fun (s, f, d) -> Gc.set_field gc objs.(s) f (Addr.to_int objs.(d))) g.g_edges;
  List.iteri (fun i r -> Segment.write_word data (Addr.add (Segment.base data) (4 * i)) (Addr.to_int objs.(r))) g.g_roots;
  (gc, objs)

let prop_gc_reachability_exact =
  QCheck.Test.make ~count ~name:"collection keeps exactly the reachable objects"
    (QCheck.make graph_gen) (fun g ->
      let gc, objs = build_graph_env g in
      Gc.collect gc;
      let expect = reachable g in
      let ok = ref true in
      Array.iteri
        (fun i o -> if Gc.is_allocated gc o <> expect.(i) then ok := false)
        objs;
      !ok)

let prop_gc_idempotent =
  QCheck.Test.make ~count:100 ~name:"a second collection frees nothing more"
    (QCheck.make graph_gen) (fun g ->
      let gc, objs = build_graph_env g in
      Gc.collect gc;
      let snapshot = Array.map (Gc.is_allocated gc) objs in
      Gc.collect gc;
      let again = Array.map (Gc.is_allocated gc) objs in
      snapshot = again)

let prop_gc_conservation =
  QCheck.Test.make ~count:100 ~name:"allocated = live + freed (object counts)"
    (QCheck.make graph_gen) (fun g ->
      let gc, _ = build_graph_env g in
      Gc.collect gc;
      let s = Gc.stats gc in
      s.Cgc.Stats.objects_allocated = s.Cgc.Stats.live_objects + s.Cgc.Stats.objects_freed)

(* Figure 2's guarantee: a page named by a standing false reference is
   never handed to a pointer-bearing allocation. *)
let prop_blacklist_invariant =
  QCheck.Test.make ~count:60 ~name:"no pointer-bearing object lands on a blacklisted page"
    QCheck.(pair (int_range 1 60) (int_range 1 400))
    (fun (page, allocs) ->
      let mem = Mem.create () in
      let data =
        Mem.map mem ~name:"roots" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x100
      in
      let config = { Config.default with Config.initial_pages = 4 } in
      let gc = Gc.create ~config mem ~base:(Addr.of_int 0x400000) ~max_bytes:(1024 * 1024) () in
      Gc.add_static_root gc ~lo:(Segment.base data) ~hi:(Segment.limit data) ~label:"roots";
      let heap = Gc.heap gc in
      let page = page mod Heap.n_pages heap in
      Segment.write_word data (Segment.base data)
        (Addr.to_int (Addr.add (Heap.page_addr heap page) 4));
      let ok = ref true in
      for _ = 1 to allocs do
        (* the startup collection (before the first allocation) must
           already have blacklisted the page *)
        let a = Gc.allocate gc 8 in
        if Heap.page_index heap a = page then ok := false
      done;
      !ok && Blacklist.is_black (Gc.blacklist gc) page)

(* --- explicit allocator vs model --- *)

type malloc_op =
  | Malloc of int
  | Free of int  (** index into previously returned, still-live objects *)

let malloc_ops_gen =
  QCheck.Gen.(
    list_size (int_bound 120)
      (map2
         (fun b k -> if b then Malloc (8 + (8 * (k mod 8))) else Free k)
         bool (int_bound 1000)))

let prop_explicit_model =
  QCheck.Test.make ~count ~name:"explicit allocator agrees with a live-set model"
    (QCheck.make malloc_ops_gen) (fun ops ->
      let mem = Mem.create () in
      let e = Explicit.create mem ~base:(Addr.of_int 0x400000) ~max_bytes:(1024 * 1024) () in
      let live = ref [] in
      let live_bytes = ref 0 in
      List.iter
        (fun op ->
          match op with
          | Malloc bytes ->
              let a = Explicit.malloc e bytes in
              live := (a, bytes) :: !live;
              live_bytes := !live_bytes + bytes
          | Free k -> (
              match !live with
              | [] -> ()
              | l ->
                  let idx = k mod List.length l in
                  let a, bytes = List.nth l idx in
                  Explicit.free e a;
                  live := List.filteri (fun i _ -> i <> idx) l;
                  live_bytes := !live_bytes - bytes))
        ops;
      Explicit.live_bytes e = !live_bytes
      && Explicit.live_objects e = List.length !live
      && List.for_all (fun (a, _) -> Explicit.is_allocated e a) !live)

(* Addresses handed out by the allocator never overlap. *)
let prop_gc_no_overlap =
  QCheck.Test.make ~count:100 ~name:"allocated objects never overlap"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) (int_range 1 300)))
    (fun sizes ->
      let mem = Mem.create () in
      let gc = Gc.create mem ~base:(Addr.of_int 0x400000) ~max_bytes:(4 * 1024 * 1024) () in
      Gc.set_auto_collect gc false;
      let objs = List.map (fun s -> (Gc.allocate gc s, s)) sizes in
      let ranges =
        List.map
          (fun (a, s) ->
            let size = Option.value (Gc.object_size gc a) ~default:s in
            (Addr.to_int a, Addr.to_int a + size))
          objs
      in
      let sorted = List.sort compare ranges in
      let rec no_overlap = function
        | (_, hi) :: ((lo, _) :: _ as rest) -> hi <= lo && no_overlap rest
        | [ _ ] | [] -> true
      in
      no_overlap sorted)

(* The Verify checker finds nothing after arbitrary build-and-collect
   sequences. *)
let build_graph_env_with config g =
  let mem = Mem.create () in
  let data =
    Mem.map mem ~name:"roots" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000
  in
  let gc = Gc.create ~config mem ~base:(Addr.of_int 0x400000) ~max_bytes:(1024 * 1024) () in
  Gc.set_auto_collect gc false;
  Gc.add_static_root gc ~lo:(Segment.base data) ~hi:(Segment.limit data) ~label:"roots";
  let objs = Array.map (fun words -> Gc.allocate gc (4 * words)) g.g_sizes in
  List.iter (fun (s, f, d) -> Gc.set_field gc objs.(s) f (Addr.to_int objs.(d))) g.g_edges;
  List.iteri
    (fun i r ->
      Segment.write_word data (Addr.add (Segment.base data) (4 * i)) (Addr.to_int objs.(r)))
    g.g_roots;
  (gc, objs)

let prop_lazy_matches_eager =
  QCheck.Test.make ~count:100 ~name:"lazy sweeping converges to the eager result"
    (QCheck.make graph_gen) (fun g ->
      let eager_gc, eager_objs = build_graph_env g in
      Gc.collect eager_gc;
      let lazy_gc, lazy_objs =
        build_graph_env_with { Config.default with Config.lazy_sweep = true } g
      in
      Gc.collect lazy_gc;
      ignore (Gc.drain_pending_sweeps lazy_gc);
      Array.map (Gc.is_allocated eager_gc) eager_objs
      = Array.map (Gc.is_allocated lazy_gc) lazy_objs
      && Cgc.Verify.check lazy_gc = [])

let prop_verify_clean =
  QCheck.Test.make ~count:100 ~name:"internal invariants hold after collection"
    (QCheck.make graph_gen) (fun g ->
      let gc, _ = build_graph_env g in
      let before = Cgc.Verify.check gc in
      Gc.collect gc;
      let after = Cgc.Verify.check_after_collect gc in
      before = [] && after = [])

let prop_verify_clean_under_auto_collect =
  QCheck.Test.make ~count:40 ~name:"invariants hold under automatic collection churn"
    QCheck.(make Gen.(list_size (int_range 10 400) (int_range 1 64)))
    (fun sizes ->
      let mem = Mem.create () in
      let config = { Config.default with Config.initial_pages = 8 } in
      let gc = Gc.create ~config mem ~base:(Addr.of_int 0x400000) ~max_bytes:(512 * 1024) () in
      List.iter (fun s -> ignore (Gc.allocate gc s)) sizes;
      Gc.collect gc;
      Cgc.Verify.check_after_collect gc = [])

(* --- static retention analyzer (lib/analysis) --- *)

module An = Cgc_analysis
module Ir = An.Ir

(* Random but execution-consistent IR programs: every semantic tag
   [{raw; obj = Some id}] really is an address inside object [id]'s
   allocation, object bases never overlap or get reused, and stack
   accesses stay inside the pushed frames.  That is exactly the class
   of programs the recorder can emit, so the analyzer's soundness
   invariant must hold on all of them. *)
let build_ir ops : Ir.program =
  let stack_words = 64 and n_registers = 8 and globals_words = 8 in
  let frame_slots = 4 and frame_padding = 2 in
  let code = ref [] in
  let emit i = code := i :: !code in
  let next_id = ref 0 in
  let handles = ref [] in
  let next_base = ref 0x1000 in
  let sp = ref stack_words in
  let depth = ref 0 in
  (* which handle each global slot currently roots: heap accesses are
     only generated through these, so the program never touches an
     object the collector could already have swept (real recorded
     traces have the same property — the recorder only sees the
     accesses a correct mutator makes) *)
  let slot_of = Array.make globals_words None in
  let usable () = Array.to_list slot_of |> List.filter_map Fun.id in
  let pick l n = List.nth l (n mod List.length l) in
  (* a value the mutator could really produce right now: junk, or a
     handle it still holds (anything beyond the rooted set would be
     conjuring the address of a possibly-swept object from thin air,
     which no correct mutator does and no recorded trace contains) *)
  let value_of n =
    let rooted = usable () in
    if rooted = [] || n mod 3 = 0 then
      (* junk: zero, a small integer, or an integer that may collide
         with the object address range *)
      Ir.vint
        (match n mod 4 with
        | 0 -> 0
        | 1 -> n land 0xffff
        | 2 -> 0x1000 + (n mod 0x4000)
        | _ -> n)
    else
      let id, base, bytes = pick rooted n in
      let off = if n mod 5 = 0 then 4 * (n / 5 mod max 1 (bytes / 4)) else 0 in
      { Ir.raw = base + off; obj = Some id }
  in
  List.iter
    (fun (op, a, b, c) ->
      match op mod 12 with
      | 0 | 1 ->
          let bytes = 8 + (8 * (a mod 3)) in
          let id = !next_id in
          incr next_id;
          let base = !next_base in
          next_base := base + 64;
          handles := (id, base, bytes) :: !handles;
          emit (Ir.Alloc { obj = id; base; bytes; pointer_free = b mod 5 = 0 });
          emit (Ir.Reg_write { reg = c mod n_registers; value = { Ir.raw = base; obj = Some id } });
          let slot = c mod globals_words in
          emit (Ir.Root_write { word = slot; value = { Ir.raw = base; obj = Some id } });
          slot_of.(slot) <- Some (id, base, bytes)
      | 2 -> emit (Ir.Reg_write { reg = a mod n_registers; value = value_of b })
      | 3 -> emit (Ir.Reg_read { reg = a mod n_registers })
      | 4 ->
          if !sp < stack_words then begin
            let w = !sp + (a mod (stack_words - !sp)) in
            if b mod 2 = 0 then emit (Ir.Local_write { word = w; value = value_of c })
            else emit (Ir.Local_read { word = w })
          end
      | 5 ->
          let slot = a mod globals_words in
          if b mod 2 = 0 then begin
            let v = value_of c in
            emit (Ir.Root_write { word = slot; value = v });
            slot_of.(slot) <-
              (match v.Ir.obj with
              | Some id -> List.find_opt (fun (i, _, _) -> i = id) !handles
              | None -> None)
          end
          else emit (Ir.Root_read { word = slot })
      | 6 -> (
          match usable () with
          | [] -> ()
          | rooted ->
              let id, _, bytes = pick rooted a in
              let field = b mod max 1 (bytes / 4) in
              if c mod 2 = 0 then begin
                let v = value_of c in
                emit (Ir.Heap_write { obj = id; field; value = v });
                (* the recorder sees a barrier event exactly when the
                   machine stores a resolvable pointer (machine.ml's
                   write_field), so the synthetic trace card-marks
                   tagged stores the same way *)
                match v.Ir.obj with
                | Some _ -> emit (Ir.Write_barrier { obj = id; field })
                | None -> ()
              end
              else emit (Ir.Heap_read { obj = id; field }))
      | 7 ->
          if !depth < 4 then begin
            emit (Ir.Frame_push { slots = frame_slots; padding = frame_padding; cleared = false });
            sp := !sp - frame_slots - frame_padding;
            incr depth
          end
      | 8 ->
          if !depth > 0 then begin
            emit (Ir.Frame_pop { slots = frame_slots; padding = frame_padding; cleared = false });
            sp := !sp + frame_slots + frame_padding;
            decr depth
          end
      | 9 ->
          if !sp > 0 then begin
            let lo = a mod !sp in
            emit (Ir.Stack_clear { lo_word = lo; n_words = 1 + (b mod (!sp - lo)) })
          end
      | 10 -> emit Ir.Clear_registers
      | _ -> emit (Ir.Gc_point { measured = None }))
    ops;
  emit (Ir.Gc_point { measured = None });
  {
    Ir.n_registers;
    stack_words;
    globals_words;
    interior_pointers = true;
    code = Array.of_list (List.rev !code);
  }

let ir_ops_gen =
  QCheck.Gen.(
    list_size (int_range 60 150)
      (quad (int_bound 10_000) (int_bound 10_000) (int_bound 10_000) (int_bound 10_000)))

let diagnose ops =
  let p = build_ir ops in
  let t = An.Analysis.run p in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "%a@." Ir.pp p;
  Array.iteri (fun i instr -> Format.fprintf ppf "%3d: %a@." i Ir.pp_instr instr) p.Ir.code;
  List.iter
    (fun (s : An.Apparent.gc_snapshot) ->
      let missing =
        An.Liveness.ISet.diff s.An.Apparent.precise s.An.Apparent.apparent
      in
      if not (An.Liveness.ISet.is_empty missing) then
        Format.fprintf ppf "gc#%d at %d UNSOUND, precise-only ids: %s@." s.An.Apparent.ordinal
          s.An.Apparent.at_instr
          (String.concat ","
             (List.map string_of_int (An.Liveness.ISet.elements missing))))
    t.An.Analysis.retention.An.Apparent.snapshots;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let ir_ops_arb = QCheck.make ir_ops_gen ~shrink:QCheck.Shrink.list ~print:diagnose

let prop_analyzer_sound =
  QCheck.Test.make ~count:80 ~name:"analyzer: apparent is a sound over-approximation"
    ir_ops_arb
    (fun ops -> (An.Analysis.validate (An.Analysis.run (build_ir ops))).An.Analysis.sound)

let cleared_frames (p : Ir.program) =
  {
    p with
    Ir.code =
      Array.map
        (function
          | Ir.Frame_push { slots; padding; _ } -> Ir.Frame_push { slots; padding; cleared = true }
          | Ir.Frame_pop { slots; padding; _ } -> Ir.Frame_pop { slots; padding; cleared = true }
          | i -> i)
        p.Ir.code;
  }

let prop_clearing_monotone =
  QCheck.Test.make ~count:80
    ~name:"analyzer: frame clearing never increases predicted retention" ir_ops_arb (fun ops ->
      let p = build_ir ops in
      let plain = (An.Analysis.run p).An.Analysis.retention.An.Apparent.snapshots in
      let hygienic = An.Analysis.run (cleared_frames p) in
      let cleared = hygienic.An.Analysis.retention.An.Apparent.snapshots in
      (An.Analysis.validate hygienic).An.Analysis.sound
      && List.length plain = List.length cleared
      && List.for_all2
           (fun (u : An.Apparent.gc_snapshot) (c : An.Apparent.gc_snapshot) ->
             An.Liveness.ISet.cardinal c.An.Apparent.apparent
             <= An.Liveness.ISet.cardinal u.An.Apparent.apparent)
           plain cleared)

(* --- fix suggestions are sound on arbitrary recorded programs --- *)

(* Every fix the generator emits must be conservative: the edited
   program keeps the original's precise liveness and its full read
   stream, both in the static model ([verify_static]) and through the
   real collector (the replay harness re-runs the edited trace and
   diffs every value any read returns).  Retention is the only thing a
   fix is allowed to move. *)
let prop_fixes_sound =
  QCheck.Test.make ~count:100 ~name:"analyzer: every emitted fix suggestion is sound" ir_ops_arb
    (fun ops ->
      let p = build_ir ops in
      let t = An.Analysis.run p in
      List.for_all
        (fun (f : An.Analysis.fix) ->
          match f.An.Analysis.suggestion with
          | None -> true
          | Some s ->
              let static_ok =
                match f.An.Analysis.verdict with
                | None -> false
                | Some v -> v.An.Fixes.sv_precise_preserved && v.An.Fixes.sv_reads_preserved
              in
              let c = An.Replay.compare_fix p s.An.Fixes.fx_edits in
              static_ok && c.An.Replay.cmp_reads_equal)
        t.An.Analysis.fixes)

(* --- generational replay dominates conservative retention --- *)

(* A minor collection treats every old page as live and traces young
   data from the same conservative roots, so on any recorded trace the
   generational collector can only over-retain relative to full
   conservative collections — never free something the conservative
   replay kept.  And the dirty-bit lifecycle is exact: every dirty page
   entering a minor is either carried by the collector (rescan kept it,
   or promotion installed it) or the target of a recorded Write_barrier
   store into an old page — nothing else may set a bit. *)
let prop_generational_dominates =
  QCheck.Test.make ~count:60
    ~name:"generational retention >= conservative; dirty bits exactly carried + barriered"
    ir_ops_arb
    (fun ops ->
      let p = build_ir ops in
      let c = An.Replay.run p in
      List.for_all
        (fun promote_after ->
          let g = An.Replay.run_generational ~promote_after p in
          let gr = g.An.Replay.gr_run in
          gr.An.Replay.rp_gc_points = c.An.Replay.rp_gc_points
          && List.for_all2 (fun gb cb -> gb >= cb) gr.An.Replay.rp_retained c.An.Replay.rp_retained
          && gr.An.Replay.rp_total_retained >= c.An.Replay.rp_total_retained
          && List.for_all An.Replay.audit_exact g.An.Replay.gr_audits)
        [ 1; 2 ])

(* --- a single read fault loses at most one object's cone --- *)

(* The marker downgrades a faulted word to "not a pointer", so one
   injected read fault can sever at most one edge (or one root slot) of
   the reachability graph: whatever un-marks must be the transitive cone
   of a single lost object.  And since ECC faults leave memory intact,
   re-marking with the plan lifted must reproduce the fault-free marked
   set bit for bit. *)
let prop_read_fault_cone =
  QCheck.Test.make ~count:150 ~name:"one read fault loses at most one object's cone"
    (QCheck.make QCheck.Gen.(pair graph_gen (int_range 1 400)))
    (fun (g, k) ->
      let gc, objs = build_graph_env g in
      let mem = Gc.mem gc in
      let marked () = Array.map (Gc.Internal.is_marked gc) objs in
      Gc.Internal.run_mark gc;
      let m0 = marked () in
      Mem.set_fault_plan mem (Some (Mem.Fault.plan ~countdown:k ~target:Mem.Fault.Reads ()));
      Gc.Internal.run_mark gc;
      Mem.set_fault_plan mem None;
      let m1 = marked () in
      let n = Array.length objs in
      let subset = ref true in
      for i = 0 to n - 1 do
        if m1.(i) && not m0.(i) then subset := false
      done;
      let lost = List.filter (fun i -> m0.(i) && not m1.(i)) (List.init n Fun.id) in
      let edges = final_edges g in
      let cone r =
        let seen = Array.make n false in
        let rec visit i =
          if not seen.(i) then begin
            seen.(i) <- true;
            List.iter (fun (s, d) -> if s = i then visit d) edges
          end
        in
        visit r;
        seen
      in
      let cone_ok =
        lost = []
        || List.exists
             (fun r ->
               let c = cone r in
               List.for_all (fun i -> c.(i)) lost)
             lost
      in
      Gc.Internal.run_mark gc;
      let m2 = marked () in
      !subset && cone_ok && m2 = m0)

(* --- precise vs conservative, pointwise on one typed trace --- *)

module Precise = Cgc.Precise
module Typed_mutator = Cgc_workloads.Typed_mutator

let precise_world () =
  let mem = Mem.create () in
  let config = Config.default in
  let gc = Gc.create ~config mem ~base:(Addr.of_int 0x400000) ~max_bytes:(1024 * 1024) () in
  let p = Precise.create gc in
  (mem, config, gc, p)

(* The differential session's invariant, as a property over seeds: on
   any typed trace, replayed fault-free, exact retention never exceeds
   the conservative twin's at any completed collect.  (The chaos matrix
   checks the same under fault plans; this pins the fault-free base
   case across many traces.) *)
let prop_precise_le_conservative =
  QCheck.Test.make ~count:40 ~name:"precise <= conservative pointwise on typed traces"
    QCheck.(int_bound 100000)
    (fun seed ->
      let _, config, _, p = precise_world () in
      let ops = Typed_mutator.trace ~seed ~steps:300 in
      let session = Typed_mutator.make_session ~config p ops in
      Array.iter (fun op -> ignore (Typed_mutator.step session op)) ops;
      Typed_mutator.twin_ooms session = 0
      && Typed_mutator.collects_completed session > 0
      && Typed_mutator.issues session = [])

(* Abort-and-restore, as a property: a precise mark aborted by faults
   followed by a fault-free re-collect must land on exactly the live
   set a never-faulted world reaches — the abort restored all mark
   state and freed nothing. *)
let prop_precise_abort_recollect_identical =
  let live_set_after ~seed ~abort =
    let mem, config, gc, p = precise_world () in
    let ops = Typed_mutator.trace ~seed ~steps:250 in
    let session = Typed_mutator.make_session ~config p ops in
    Array.iter (fun op -> ignore (Typed_mutator.step session op)) ops;
    if abort then begin
      Mem.set_fault_plan mem
        (Some (Mem.Fault.plan ~countdown:1 ~rearm:true ~target:Mem.Fault.Reads ()));
      (try Precise.collect p with Precise.Mark_aborted _ -> ());
      Mem.set_fault_plan mem None
    end;
    Precise.collect p;
    let live = ref [] in
    Precise.iter_descriptors p (fun a _ -> live := Addr.to_int a :: !live);
    ((Gc.stats gc).Cgc.Stats.live_objects, List.sort compare !live)
  in
  QCheck.Test.make ~count:30
    ~name:"aborted precise mark + fault-free re-collect = never-faulted collect"
    QCheck.(int_bound 100000)
    (fun seed ->
      live_set_after ~seed ~abort:true = live_set_after ~seed ~abort:false)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bitset_model;
      prop_addr_align;
      prop_addr_trailing_zeros;
      prop_segment_roundtrip;
      prop_segment_endian_assembly;
      prop_rng_bound;
      prop_size_class_rounding;
      prop_displacement_mask;
      prop_free_list_address_ordered;
      prop_gc_reachability_exact;
      prop_gc_idempotent;
      prop_gc_conservation;
      prop_blacklist_invariant;
      prop_explicit_model;
      prop_gc_no_overlap;
      prop_verify_clean;
      prop_verify_clean_under_auto_collect;
      prop_lazy_matches_eager;
      prop_analyzer_sound;
      prop_clearing_monotone;
      prop_fixes_sound;
      prop_generational_dominates;
      prop_read_fault_cone;
      prop_precise_le_conservative;
      prop_precise_abort_recollect_identical;
    ]

let () = Alcotest.run "props" [ ("properties", suite) ]
