(* Chaos soak: the randomized mutator of test_soak run under seeded
   fault-injection plans.  Every injected fault must leave the heap
   Verify-clean, the first fault-free allocation afterwards must
   succeed, and once faults stop for good the collector must behave
   exactly like a healthy one — including landing the Table-1 retention
   experiment in its usual bands. *)

module Chaos = Cgc_workloads.Chaos
module W_platform = Cgc_workloads.Platform
module W_program_t = Cgc_workloads.Program_t
module Mem = Cgc_vm.Mem

let check = Alcotest.check
let bool = Alcotest.bool

let outcome_clean o =
  if not (Chaos.clean o) then
    Alcotest.failf "%s x %s: %s" o.Chaos.scenario o.Chaos.plan
      (Format.asprintf "%a" Chaos.pp_outcome o)

(* One scenario x plan cell, asserted clean.  Countdown and chance plans
   must actually fire to be worth anything; quota plans fire only once
   the mutator outgrows the budget, which every config here does. *)
let cell ~steps ~seed ~scenario ~config ~plan ~expect_faults () =
  let o = Chaos.run_scenario ~steps ~seed ~scenario ~config ~plan () in
  outcome_clean o;
  if expect_faults then
    check bool
      (Printf.sprintf "%s x %s: plan fired" o.Chaos.scenario o.Chaos.plan)
      true
      (o.Chaos.faults_injected > 0)

let test_matrix () =
  (* >= 4 configs x >= 3 seeded plans, each asserted clean *)
  let total_faults = ref 0 in
  List.iter
    (fun (scenario, config) ->
      List.iter
        (fun plan ->
          let o = Chaos.run_scenario ~steps:1200 ~seed:2026 ~scenario ~config ~plan () in
          outcome_clean o;
          total_faults := !total_faults + o.Chaos.faults_injected)
        (Chaos.default_plans ~seed:2026))
    Chaos.default_scenarios;
  check bool "faults were injected across the matrix" true (!total_faults > 0)

let test_countdown_fires_everywhere () =
  List.iter
    (fun (scenario, config) ->
      cell ~steps:800 ~seed:7 ~scenario ~config
        ~plan:(Chaos.Countdown { every = 5 })
        ~expect_faults:true ())
    Chaos.default_scenarios

let test_chance_fires () =
  cell ~steps:1000 ~seed:11 ~scenario:"eager" ~config:Chaos.base_config
    ~plan:(Chaos.Chance { probability = 0.15; seed = 99 })
    ~expect_faults:true ()

let test_quota_fires () =
  cell ~steps:1500 ~seed:13 ~scenario:"eager" ~config:Chaos.base_config
    ~plan:(Chaos.Quota { bytes = 16 * 4096 })
    ~expect_faults:true ()

let test_determinism () =
  let run () =
    Chaos.run_scenario ~steps:600 ~seed:42 ~scenario:"lazy"
      ~config:(List.assoc "lazy" Chaos.default_scenarios)
      ~plan:(Chaos.Chance { probability = 0.1; seed = 5 })
      ()
  in
  let a = run () and b = run () in
  Alcotest.(check int)
    "same seed, same faults" a.Chaos.faults_injected b.Chaos.faults_injected;
  Alcotest.(check int) "same seed, same ooms" a.Chaos.ooms_caught b.Chaos.ooms_caught

(* Ladder-rung counters must be observable through Stats. *)
let test_ladder_counters_visible () =
  let o =
    Chaos.run_scenario ~steps:1500 ~seed:3 ~scenario:"eager" ~config:Chaos.base_config
      ~plan:(Chaos.Quota { bytes = 12 * 4096 })
      ()
  in
  outcome_clean o;
  let s = o.Chaos.stats in
  check bool "commit faults counted" true (s.Cgc.Stats.commit_faults > 0);
  check bool "ladder climbed" true
    (s.Cgc.Stats.ladder_collects > 0 || s.Cgc.Stats.ladder_trims > 0
   || s.Cgc.Stats.ladder_expansions > 0)

(* Table 1 under early faults: a one-shot countdown plan fails a commit
   early in program T, then disarms.  The ladder absorbs the fault and
   the experiment must land in the same bands as test_workloads pins
   for the fault-free run (sparc-static, 40 lists x 1500 nodes:
   blacklisting keeps leaks <= 4, no blacklisting leaks > 10). *)
let test_retention_bands_after_faults () =
  let p = W_platform.sparc_static ~optimized:false in
  let prepare env =
    Mem.set_fault_plan env.W_platform.mem (Some (Mem.Fault.plan ~countdown:3 ()))
  in
  let with_bl = W_program_t.run ~blacklisting:true ~prepare ~lists:40 ~nodes:1500 p in
  let without_bl = W_program_t.run ~blacklisting:false ~prepare ~lists:40 ~nodes:1500 p in
  check bool "fault absorbed (with blacklist)" true
    (with_bl.W_program_t.collections > 0);
  check bool "blacklisting band: few lists leak" true (with_bl.W_program_t.retained <= 4);
  check bool "no-blacklisting band: most lists leak" true (without_bl.W_program_t.retained > 10)

let () =
  Alcotest.run "chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "matrix: all configs x all plans clean" `Slow test_matrix;
          Alcotest.test_case "countdown fires in every config" `Slow test_countdown_fires_everywhere;
          Alcotest.test_case "chance plan fires" `Quick test_chance_fires;
          Alcotest.test_case "quota plan fires" `Quick test_quota_fires;
          Alcotest.test_case "deterministic under a fixed seed" `Quick test_determinism;
          Alcotest.test_case "ladder counters visible" `Quick test_ladder_counters_visible;
          Alcotest.test_case "table-1 bands survive early faults" `Slow
            test_retention_bands_after_faults;
        ] );
    ]
