(* Chaos soak: the randomized mutator of test_soak run under seeded
   fault-injection plans.  Every injected fault must leave the heap
   Verify-clean, the first fault-free allocation afterwards must
   succeed, and once faults stop for good the collector must behave
   exactly like a healthy one — including landing the Table-1 retention
   experiment in its usual bands. *)

module Chaos = Cgc_workloads.Chaos
module W_platform = Cgc_workloads.Platform
module W_program_t = Cgc_workloads.Program_t
module Mem = Cgc_vm.Mem

let check = Alcotest.check
let bool = Alcotest.bool

let outcome_clean o =
  if not (Chaos.clean o) then
    Alcotest.failf "%s x %s: %s" o.Chaos.scenario o.Chaos.plan
      (Format.asprintf "%a" Chaos.pp_outcome o)

(* One scenario x plan cell, asserted clean.  Countdown and chance plans
   must actually fire to be worth anything; quota plans fire only once
   the mutator outgrows the budget, which every config here does. *)
let cell ~steps ~seed ~scenario ~config ~plan ~expect_faults () =
  let o = Chaos.run_scenario ~steps ~seed ~scenario ~config ~plan () in
  outcome_clean o;
  if expect_faults then
    check bool
      (Printf.sprintf "%s x %s: plan fired" o.Chaos.scenario o.Chaos.plan)
      true
      (o.Chaos.faults_injected > 0)

let test_matrix () =
  (* >= 4 configs x >= 3 seeded plans, each asserted clean *)
  let total_faults = ref 0 in
  List.iter
    (fun (scenario, config) ->
      List.iter
        (fun plan ->
          let o = Chaos.run_scenario ~steps:1200 ~seed:2026 ~scenario ~config ~plan () in
          outcome_clean o;
          total_faults := !total_faults + o.Chaos.faults_injected)
        (Chaos.default_plans ~seed:2026))
    Chaos.default_scenarios;
  check bool "faults were injected across the matrix" true (!total_faults > 0)

let test_countdown_fires_everywhere () =
  List.iter
    (fun (scenario, config) ->
      cell ~steps:800 ~seed:7 ~scenario ~config
        ~plan:(Chaos.Countdown { every = 5 })
        ~expect_faults:true ())
    Chaos.default_scenarios

let test_chance_fires () =
  cell ~steps:1000 ~seed:11 ~scenario:"eager" ~config:Chaos.base_config
    ~plan:(Chaos.Chance { probability = 0.15; seed = 99 })
    ~expect_faults:true ()

let test_quota_fires () =
  cell ~steps:1500 ~seed:13 ~scenario:"eager" ~config:Chaos.base_config
    ~plan:(Chaos.Quota { bytes = 16 * 4096 })
    ~expect_faults:true ()

let test_determinism () =
  let run () =
    Chaos.run_scenario ~steps:600 ~seed:42 ~scenario:"lazy"
      ~config:(List.assoc "lazy" Chaos.default_scenarios)
      ~plan:(Chaos.Chance { probability = 0.1; seed = 5 })
      ()
  in
  let a = run () and b = run () in
  Alcotest.(check int)
    "same seed, same faults" a.Chaos.faults_injected b.Chaos.faults_injected;
  Alcotest.(check int) "same seed, same ooms" a.Chaos.ooms_caught b.Chaos.ooms_caught

(* Ladder-rung counters must be observable through Stats. *)
let test_ladder_counters_visible () =
  let o =
    Chaos.run_scenario ~steps:1500 ~seed:3 ~scenario:"eager" ~config:Chaos.base_config
      ~plan:(Chaos.Quota { bytes = 12 * 4096 })
      ()
  in
  outcome_clean o;
  let s = o.Chaos.stats in
  check bool "commit faults counted" true (s.Cgc.Stats.commit_faults > 0);
  check bool "ladder climbed" true
    (s.Cgc.Stats.ladder_collects > 0 || s.Cgc.Stats.ladder_trims > 0
   || s.Cgc.Stats.ladder_expansions > 0)

(* --- cross-collector chaos ------------------------------------------ *)

(* The full collector x scenario x plan matrix (commit, read, write and
   decay plans against the conservative, generational and explicit
   backends), every cell asserted clean. *)
let test_cross_collector_matrix () =
  let outcomes = Chaos.run_matrix ~steps:500 ~seed:1993 () in
  List.iter outcome_clean outcomes;
  let collectors = List.sort_uniq compare (List.map (fun o -> o.Chaos.collector) outcomes) in
  Alcotest.(check (list string))
    "all four backends ran"
    [ "conservative"; "explicit"; "generational"; "precise" ]
    collectors;
  check bool "faults were injected across the matrix" true
    (List.exists (fun o -> o.Chaos.faults_injected > 0) outcomes)

(* The full 63-cell matrix once more, marked by four domains.  Every
   cell must stay clean — which, via the discipline check inside
   [run_scenario], also asserts that access-fault plans forced the
   tracer's typed serial fallback and that commit-plan cells really
   marked in parallel. *)
let test_cross_collector_matrix_jobs4 () =
  let outcomes = Chaos.run_matrix ~steps:400 ~mark_jobs:4 ~seed:1993 () in
  List.iter outcome_clean outcomes;
  Alcotest.(check int) "63 cells ran" 63 (List.length outcomes);
  List.iter
    (fun o -> Alcotest.(check int) "jobs recorded" 4 o.Chaos.mark_jobs)
    outcomes;
  let conservative = List.filter (fun o -> o.Chaos.collector = "conservative") outcomes in
  check bool "some conservative cell marked in parallel" true
    (List.exists (fun o -> o.Chaos.stats.Cgc.Stats.parallel_marks > 0) conservative);
  check bool "some access-plan cell took the typed serial fallback" true
    (List.exists
       (fun o -> o.Chaos.stats.Cgc.Stats.mark_serial_fallbacks > 0)
       conservative)

let access_cell ?(collector = Chaos.Conservative) ~plan ~expect_faults () =
  let o =
    Chaos.run_scenario ~steps:900 ~collector ~seed:404 ~scenario:"eager"
      ~config:Chaos.base_config ~plan ()
  in
  outcome_clean o;
  if expect_faults then
    check bool
      (Printf.sprintf "%s x %s: plan fired" o.Chaos.collector o.Chaos.plan)
      true (o.Chaos.faults_injected > 0);
  o

let test_read_chance_fires () =
  let o =
    access_cell ~plan:(Chaos.Read_chance { probability = 0.001; seed = 5 }) ~expect_faults:true ()
  in
  check bool "downgrades counted" true (o.Chaos.stats.Cgc.Stats.mark_downgrades > 0)

let test_read_decay_survived () =
  let o =
    access_cell ~plan:(Chaos.Read_decay { every = 1500; region = 256 }) ~expect_faults:true ()
  in
  check bool "reads faulted" true (o.Chaos.stats.Cgc.Stats.read_faults > 0)

let test_write_decay_quarantines () =
  let o =
    access_cell ~plan:(Chaos.Write_decay { every = 30; region = 512 }) ~expect_faults:true ()
  in
  check bool "pages quarantined" true (o.Chaos.stats.Cgc.Stats.pages_decayed > 0);
  check bool "allocation retried past the decay" true
    (o.Chaos.stats.Cgc.Stats.decay_retries > 0)

let test_generational_survives_decay () =
  ignore
    (access_cell ~collector:Chaos.Generational
       ~plan:(Chaos.Read_decay { every = 1500; region = 256 })
       ~expect_faults:true ()
      : Chaos.outcome)

(* One precise cell in isolation: write refusals fault mutator stores
   on the typed trace, yet every completed exact collect must satisfy
   the differential invariant against the conservative twin. *)
let test_precise_write_chance_differential () =
  let o =
    access_cell ~collector:Chaos.Precise
      ~plan:(Chaos.Write_chance { probability = 0.01; seed = 7 })
      ~expect_faults:true ()
  in
  check bool "exact collects completed" true
    (o.Chaos.stats.Cgc.Stats.precise_collections > 0);
  match o.Chaos.retention with
  | Some (p, c) ->
      check bool
        (Printf.sprintf "precise retention %d <= conservative %d" p c)
        true (p <= c)
  | None -> Alcotest.fail "no retention comparison recorded"

let test_explicit_typed_oom_under_commit_faults () =
  let o =
    access_cell ~collector:Chaos.Explicit
      ~plan:(Chaos.Countdown { every = 5 })
      ~expect_faults:true ()
  in
  (* the explicit baseline has no escalation ladder: every refused commit
     surfaces as its typed Out_of_memory, never as Mem.Commit_failed *)
  check bool "refusals surfaced as typed OOM" true (o.Chaos.ooms_caught > 0)

(* Table 1 under early faults: a one-shot countdown plan fails a commit
   early in program T, then disarms.  The ladder absorbs the fault and
   the experiment must land in the same bands as test_workloads pins
   for the fault-free run (sparc-static, 40 lists x 1500 nodes:
   blacklisting keeps leaks <= 4, no blacklisting leaks > 10). *)
let test_retention_bands_after_faults () =
  let p = W_platform.sparc_static ~optimized:false in
  let prepare env =
    Mem.set_fault_plan env.W_platform.mem (Some (Mem.Fault.plan ~countdown:3 ()))
  in
  let with_bl = W_program_t.run ~blacklisting:true ~prepare ~lists:40 ~nodes:1500 p in
  let without_bl = W_program_t.run ~blacklisting:false ~prepare ~lists:40 ~nodes:1500 p in
  check bool "fault absorbed (with blacklist)" true
    (with_bl.W_program_t.collections > 0);
  check bool "blacklisting band: few lists leak" true (with_bl.W_program_t.retained <= 4);
  check bool "no-blacklisting band: most lists leak" true (without_bl.W_program_t.retained > 10)

(* Same bands under ECC read faults: a one-shot Reads plan downgrades a
   word early in program T, then disarms; memory is intact, so the
   experiment still lands in the pinned retention bands. *)
let test_retention_bands_after_read_faults () =
  let p = W_platform.sparc_static ~optimized:false in
  let prepare env =
    Mem.set_fault_plan env.W_platform.mem
      (Some (Mem.Fault.plan ~countdown:200 ~target:Mem.Fault.Reads ()))
  in
  let with_bl = W_program_t.run ~blacklisting:true ~prepare ~lists:40 ~nodes:1500 p in
  let without_bl = W_program_t.run ~blacklisting:false ~prepare ~lists:40 ~nodes:1500 p in
  check bool "fault-era collections happened" true (with_bl.W_program_t.collections > 0);
  check bool "blacklisting band holds" true (with_bl.W_program_t.retained <= 4);
  check bool "no-blacklisting band holds" true (without_bl.W_program_t.retained > 10)

let () =
  Alcotest.run "chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "matrix: all configs x all plans clean" `Slow test_matrix;
          Alcotest.test_case "countdown fires in every config" `Slow test_countdown_fires_everywhere;
          Alcotest.test_case "chance plan fires" `Quick test_chance_fires;
          Alcotest.test_case "quota plan fires" `Quick test_quota_fires;
          Alcotest.test_case "deterministic under a fixed seed" `Quick test_determinism;
          Alcotest.test_case "ladder counters visible" `Quick test_ladder_counters_visible;
          Alcotest.test_case "table-1 bands survive early faults" `Slow
            test_retention_bands_after_faults;
        ] );
      ( "cross-collector",
        [
          Alcotest.test_case "full collector x plan matrix clean" `Slow
            test_cross_collector_matrix;
          Alcotest.test_case "full matrix clean at mark_jobs=4" `Slow
            test_cross_collector_matrix_jobs4;
          Alcotest.test_case "read-chance plan downgrades, survives" `Quick test_read_chance_fires;
          Alcotest.test_case "read-decay plan survives" `Quick test_read_decay_survived;
          Alcotest.test_case "write-decay quarantines pages" `Quick test_write_decay_quarantines;
          Alcotest.test_case "generational survives read decay" `Quick
            test_generational_survives_decay;
          Alcotest.test_case "precise: write-chance differential" `Quick
            test_precise_write_chance_differential;
          Alcotest.test_case "explicit: commit faults surface typed" `Quick
            test_explicit_typed_oom_under_commit_faults;
          Alcotest.test_case "table-1 bands survive read faults" `Slow
            test_retention_bands_after_read_faults;
        ] );
    ]
