(* Unit tests for the address-space substrate (lib/vm). *)

open Cgc_vm

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* --- Addr --- *)

let test_addr_masking () =
  check int "of_int masks to 32 bits" 0x1234 (Addr.of_int 0x100001234);
  check int "add wraps" 0 (Addr.add (Addr.of_int 0xFFFFFFFF) 1);
  check int "add negative" 0xFFFFFFFF (Addr.add Addr.zero (-1))

let test_addr_alignment () =
  check bool "aligned" true (Addr.is_aligned (Addr.of_int 0x1000) 0x1000);
  check bool "unaligned" false (Addr.is_aligned (Addr.of_int 0x1004) 0x1000);
  check int "align_down" 0x2000 (Addr.align_down (Addr.of_int 0x2FFF) 0x1000);
  check int "align_up" 0x3000 (Addr.align_up (Addr.of_int 0x2001) 0x1000);
  check int "align_up already aligned" 0x2000 (Addr.align_up (Addr.of_int 0x2000) 0x1000)

let test_addr_trailing_zeros () =
  check int "0x00090000 has 16 trailing zeros" 16 (Addr.trailing_zeros (Addr.of_int 0x00090000));
  check int "odd address" 0 (Addr.trailing_zeros (Addr.of_int 0x1001));
  check int "zero" 32 (Addr.trailing_zeros Addr.zero)

let test_addr_range () =
  check bool "lo included" true (Addr.in_range (Addr.of_int 10) ~lo:(Addr.of_int 10) ~hi:(Addr.of_int 20));
  check bool "hi excluded" false (Addr.in_range (Addr.of_int 20) ~lo:(Addr.of_int 10) ~hi:(Addr.of_int 20))

let test_addr_pp () =
  check Alcotest.string "hex format" "0x00090000" (Addr.to_string (Addr.of_int 0x90000))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check int "same seed, same stream" (Rng.word a) (Rng.word b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.word a = Rng.word b then incr same
  done;
  check bool "different seeds diverge" true (!same < 4)

let test_rng_word_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let w = Rng.word r in
    check bool "word in 32-bit range" true (w >= 0 && w <= 0xFFFFFFFF)
  done

let test_rng_int_bound () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check bool "bounded" true (v >= 0 && v < 17)
  done

let test_rng_float_range () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    check bool "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_split () =
  let parent = Rng.create 6 in
  let child = Rng.split parent in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Rng.word parent = Rng.word child then incr equal
  done;
  check bool "split streams decorrelated" true (!equal < 4)

(* --- Bitset --- *)

let test_bitset_basics () =
  let s = Bitset.create 200 in
  check bool "fresh empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 199;
  check bool "mem 0" true (Bitset.mem s 0);
  check bool "mem 63" true (Bitset.mem s 63);
  check bool "mem 199" true (Bitset.mem s 199);
  check bool "not mem 100" false (Bitset.mem s 100);
  check int "count" 3 (Bitset.count s);
  Bitset.remove s 63;
  check bool "removed" false (Bitset.mem s 63);
  check int "count after remove" 2 (Bitset.count s)

let test_bitset_clear_and_copy () =
  let s = Bitset.create 100 in
  Bitset.add s 5;
  let c = Bitset.copy s in
  Bitset.clear s;
  check bool "cleared" true (Bitset.is_empty s);
  check bool "copy unaffected" true (Bitset.mem c 5)

let test_bitset_iter_order () =
  let s = Bitset.create 300 in
  List.iter (Bitset.add s) [ 250; 3; 77; 150 ];
  let seen = Bitset.fold (fun acc i -> i :: acc) [] s in
  check (Alcotest.list int) "ascending order" [ 3; 77; 150; 250 ] (List.rev seen)

let test_bitset_union () =
  let a = Bitset.create 64 and b = Bitset.create 64 in
  Bitset.add a 1;
  Bitset.add b 2;
  Bitset.union_into ~dst:a b;
  check bool "1 in union" true (Bitset.mem a 1);
  check bool "2 in union" true (Bitset.mem a 2);
  check bool "b unchanged" false (Bitset.mem b 1)

let test_bitset_range_queries () =
  let s = Bitset.create 100 in
  Bitset.add s 40;
  check bool "exists in [30,50)" true (Bitset.exists_in_range s ~lo:30 ~hi:50);
  check bool "none in [41,50)" false (Bitset.exists_in_range s ~lo:41 ~hi:50);
  check (Alcotest.option int) "next_clear skips member" (Some 41) (Bitset.next_clear s 40)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index 10 out of [0,10)")
    (fun () -> Bitset.add s 10)

(* The storage word is 62 bits, so indexes 61/62 and 123/124 sit on
   word boundaries — where the word-masked range scans and iterators
   have their edge cases. *)
let test_bitset_word_boundaries () =
  let s = Bitset.create 125 in
  List.iter (Bitset.add s) [ 61; 62; 123; 124 ];
  check bool "61 member" true (Bitset.mem s 61);
  check bool "62 member" true (Bitset.mem s 62);
  check bool "60 not member" false (Bitset.mem s 60);
  check bool "63 not member" false (Bitset.mem s 63);
  check bool "exists [61,62)" true (Bitset.exists_in_range s ~lo:61 ~hi:62);
  check bool "exists [62,63)" true (Bitset.exists_in_range s ~lo:62 ~hi:63);
  check bool "exists across the boundary [60,63)" true (Bitset.exists_in_range s ~lo:60 ~hi:63);
  check bool "none in [63,123)" false (Bitset.exists_in_range s ~lo:63 ~hi:123);
  check bool "exists [123,125)" true (Bitset.exists_in_range s ~lo:123 ~hi:125);
  check bool "empty range" false (Bitset.exists_in_range s ~lo:62 ~hi:62);
  check (Alcotest.option int) "next_clear runs over the boundary" (Some 63) (Bitset.next_clear s 61);
  check (Alcotest.option int) "next_clear at a clear index" (Some 63) (Bitset.next_clear s 63);
  check (Alcotest.option int) "next_clear exhausted at n" None (Bitset.next_clear s 123);
  check (Alcotest.option int) "next_clear from the last index" None (Bitset.next_clear s 124)

let test_bitset_word_iter () =
  let n = 130 in
  let s = Bitset.create n in
  let members = [ 0; 1; 61; 62; 63; 124; 129 ] in
  List.iter (Bitset.add s) members;
  let seen = ref [] in
  Bitset.iter_set s (fun i -> seen := i :: !seen);
  check (Alcotest.list int) "iter_set visits members ascending" members (List.rev !seen);
  let clear = ref [] in
  Bitset.iter_clear s (fun i -> clear := i :: !clear);
  let clear = List.rev !clear in
  check int "iter_clear count" (n - List.length members) (List.length clear);
  check bool "iter_clear ascending" true (List.sort compare clear = clear);
  check bool "iter_clear disjoint from members" true
    (List.for_all (fun i -> not (List.mem i members)) clear);
  check bool "iter_clear stays below n" true (List.for_all (fun i -> i < n) clear);
  (* a full word plus a partial word, all set: nothing is clear *)
  let full = Bitset.create 63 in
  for i = 0 to 62 do
    Bitset.add full i
  done;
  let none = ref 0 in
  Bitset.iter_clear full (fun _ -> incr none);
  check int "no clear bits reported past n" 0 !none

(* The atomic variant backing the parallel tracer's shadow mark tables:
   test_and_set must report true exactly on the call that flips the bit
   (the CAS winner), including at the 62-bit word boundaries. *)
let test_bitset_atomic_test_and_set () =
  let s = Bitset.Atomic.create 125 in
  check bool "fresh empty" true (Bitset.Atomic.is_empty s);
  check int "length" 125 (Bitset.Atomic.length s);
  List.iter
    (fun i ->
      check bool (Printf.sprintf "first set of %d wins" i) true (Bitset.Atomic.test_and_set s i);
      check bool (Printf.sprintf "second set of %d loses" i) false (Bitset.Atomic.test_and_set s i);
      check bool (Printf.sprintf "mem %d" i) true (Bitset.Atomic.mem s i))
    [ 0; 61; 62; 123; 124 ];
  check bool "60 untouched" false (Bitset.Atomic.mem s 60);
  check int "count" 5 (Bitset.Atomic.count s);
  let seen = ref [] in
  Bitset.Atomic.iter_set s (fun i -> seen := i :: !seen);
  check (Alcotest.list int) "iter_set ascending" [ 0; 61; 62; 123; 124 ] (List.rev !seen);
  let plain = Bitset.Atomic.to_plain s in
  check bool "to_plain agrees" true (List.for_all (Bitset.mem plain) [ 0; 61; 62; 123; 124 ]);
  check int "to_plain count" 5 (Bitset.count plain);
  Bitset.Atomic.clear s;
  check bool "cleared" true (Bitset.Atomic.is_empty s)

(* Four domains race to set random bits; afterwards the atomic image
   must equal the plain-bitset union of everything anyone set, and the
   per-domain winner counts must sum to the union's cardinality — each
   bit was awarded to exactly one caller (the tracer's exactly-once
   marking argument in miniature). *)
let test_bitset_atomic_storm () =
  let n = 500 in
  let s = Bitset.Atomic.create n in
  let expected = Bitset.create n in
  let picks =
    Array.init 4 (fun d ->
        let rng = Rng.create (0xA70 + d) in
        Array.init 400 (fun _ -> Rng.int rng n))
  in
  Array.iter (fun a -> Array.iter (fun i -> Bitset.add expected i) a) picks;
  let storm d =
    let wins = ref 0 in
    Array.iter (fun i -> if Bitset.Atomic.test_and_set s i then incr wins) picks.(d);
    !wins
  in
  let domains = Array.init 3 (fun d -> Domain.spawn (fun () -> storm (d + 1))) in
  let wins0 = storm 0 in
  let wins = Array.fold_left (fun acc d -> acc + Domain.join d) wins0 domains in
  check bool "storm image = plain union" true (Bitset.equal (Bitset.Atomic.to_plain s) expected);
  check int "winner counts sum to union cardinality" (Bitset.count expected) wins;
  (* blit_to overwrites a dirty destination with the exact image *)
  let dst = Bitset.create n in
  Bitset.add dst 1;
  Bitset.Atomic.blit_to s ~dst;
  check bool "blit_to overwrites" true (Bitset.equal dst expected)

(* Chase-Lev deque sanity: owner-side LIFO, thief-side FIFO, growth
   past the initial capacity, and a cross-domain drain that loses and
   duplicates nothing. *)
let test_ws_deque_basics () =
  let q = Ws_deque.create ~capacity:16 () in
  check bool "fresh empty" true (Ws_deque.is_empty q);
  for i = 1 to 100 do
    Ws_deque.push q i
  done;
  check int "size" 100 (Ws_deque.size q);
  check (Alcotest.option int) "pop is LIFO" (Some 100) (Ws_deque.pop q);
  check (Alcotest.option int) "steal is FIFO" (Some 1) (Ws_deque.steal q);
  let rec drain acc = match Ws_deque.pop q with None -> acc | Some v -> drain (v :: acc) in
  let rest = drain [] in
  check int "drained remainder" 98 (List.length rest);
  check (Alcotest.list int) "remainder in order" (List.init 98 (fun i -> i + 2)) rest;
  check (Alcotest.option int) "empty pop" None (Ws_deque.pop q);
  check (Alcotest.option int) "empty steal" None (Ws_deque.steal q)

let test_ws_deque_concurrent_drain () =
  let q = Ws_deque.create ~capacity:8 () in
  let n = 2000 in
  let thief () =
    let got = ref [] in
    let misses = ref 0 in
    while !misses < 10_000 do
      match Ws_deque.steal q with
      | Some v ->
          got := v :: !got;
          misses := 0
      | None -> incr misses
    done;
    !got
  in
  let thieves = Array.init 2 (fun _ -> Domain.spawn thief) in
  let own = ref [] in
  for i = 1 to n do
    Ws_deque.push q i;
    if i mod 3 = 0 then
      match Ws_deque.pop q with Some v -> own := v :: !own | None -> ()
  done;
  let rec drain () =
    match Ws_deque.pop q with
    | Some v ->
        own := v :: !own;
        drain ()
    | None -> ()
  in
  drain ();
  let stolen = Array.fold_left (fun acc d -> Domain.join d @ acc) [] thieves in
  let all = List.sort compare (stolen @ !own) in
  check int "nothing lost" n (List.length all);
  check bool "no duplicates, every item once" true (all = List.init n (fun i -> i + 1))

(* Two thieves [drain] a deque whose owner has stopped pushing (the
   reclamation posture: the owner domain is dead and fenced).  Every
   element must surface in exactly one thief's tally, the per-thief
   counts must sum to the population, and the deque must read empty
   afterwards. *)
let test_ws_deque_drain_dead_owner () =
  let q = Ws_deque.create ~capacity:8 () in
  let n = 1777 in
  for i = 1 to n do
    Ws_deque.push q i
  done;
  (* owner "dies" here: no further owner-side operations *)
  let thief () =
    let got = ref [] in
    let count = Ws_deque.drain q (fun v -> got := v :: !got) in
    (count, !got)
  in
  let thieves = Array.init 2 (fun _ -> Domain.spawn thief) in
  let results = Array.map Domain.join thieves in
  let counts = Array.map fst results in
  let all = List.sort compare (List.concat_map snd (Array.to_list results)) in
  check int "counts sum to population" n (counts.(0) + counts.(1));
  check int "every element drained" n (List.length all);
  check bool "each element exactly once" true (all = List.init n (fun i -> i + 1));
  check bool "deque left empty" true (Ws_deque.is_empty q);
  check (Alcotest.option int) "no residue to steal" None (Ws_deque.steal q)

(* --- Segment --- *)

let seg ?(endian = Endian.Little) ?(base = 0x1000) ?(size = 256) () =
  Segment.create ~name:"t" ~kind:Segment.Static_data ~endian ~base:(Addr.of_int base) ~size

let test_segment_byte_access () =
  let s = seg () in
  Segment.write_u8 s (Addr.of_int 0x1000) 0xAB;
  check int "read back" 0xAB (Segment.read_u8 s (Addr.of_int 0x1000));
  check int "rest zero" 0 (Segment.read_u8 s (Addr.of_int 0x1001))

let test_segment_word_little_endian () =
  let s = seg ~endian:Endian.Little () in
  Segment.write_word s (Addr.of_int 0x1000) 0x12345678;
  check int "LSB first" 0x78 (Segment.read_u8 s (Addr.of_int 0x1000));
  check int "MSB last" 0x12 (Segment.read_u8 s (Addr.of_int 0x1003));
  check int "round trip" 0x12345678 (Segment.read_word s (Addr.of_int 0x1000))

let test_segment_word_big_endian () =
  let s = seg ~endian:Endian.Big () in
  Segment.write_word s (Addr.of_int 0x1000) 0x12345678;
  check int "MSB first" 0x12 (Segment.read_u8 s (Addr.of_int 0x1000));
  check int "round trip" 0x12345678 (Segment.read_word s (Addr.of_int 0x1000))

let test_segment_unaligned_word () =
  let s = seg ~endian:Endian.Big () in
  (* The figure-1 phenomenon: two small integers 0x00000009, 0x0000000a
     adjacent in big-endian memory yield 0x00090000 when read at
     offset 2. *)
  Segment.write_word s (Addr.of_int 0x1000) 0x00000009;
  Segment.write_word s (Addr.of_int 0x1004) 0x0000000a;
  check int "halfword concatenation" 0x00090000 (Segment.read_word s (Addr.of_int 0x1002))

let test_segment_bounds () =
  let s = seg () in
  Alcotest.check_raises "word past end"
    (Invalid_argument "Segment t: 4-byte access at 0x000010fd crosses limit") (fun () ->
      ignore (Segment.read_word s (Addr.of_int 0x10FD)))

let test_segment_iter_words () =
  let s = seg () in
  Segment.write_word s (Addr.of_int 0x1000) 1;
  Segment.write_word s (Addr.of_int 0x1004) 2;
  let collected = ref [] in
  Segment.iter_words s ~lo:(Addr.of_int 0x1000) ~hi:(Addr.of_int 0x1008) (fun a v ->
      collected := (a, v) :: !collected);
  check
    (Alcotest.list (Alcotest.pair int int))
    "aligned words" [ (0x1000, 1); (0x1004, 2) ] (List.rev !collected)

let test_segment_iter_words_unaligned () =
  let s = seg () in
  let count alignment =
    let n = ref 0 in
    Segment.iter_words s ~alignment ~lo:(Segment.base s) ~hi:(Segment.limit s) (fun _ _ -> incr n);
    !n
  in
  check int "alignment 4" (256 / 4) (count 4);
  check int "alignment 2" ((256 - 2) / 2) (count 2);
  check int "alignment 1" (256 - 3) (count 1)

(* Clamping [lo] against a segment whose base is not on the alignment
   grid must re-align upward — the old code took [max lo base] and could
   hand the scan loop a misaligned start. *)
let test_segment_iter_words_unaligned_base () =
  let s = seg ~base:0x1001 ~size:64 () in
  let first alignment =
    let r = ref None in
    Segment.iter_words s ~alignment ~lo:(Addr.of_int 0x0FF0) ~hi:(Segment.limit s) (fun a _ ->
        if !r = None then r := Some a);
    !r
  in
  check (Alcotest.option int) "alignment 4 realigns past the base" (Some 0x1004) (first 4);
  check (Alcotest.option int) "alignment 2 realigns past the base" (Some 0x1002) (first 2);
  check (Alcotest.option int) "alignment 1 starts at the base" (Some 0x1001) (first 1);
  let on_grid = ref true in
  Segment.iter_words s ~alignment:4 ~lo:(Addr.of_int 0x0FF0) ~hi:(Segment.limit s) (fun a _ ->
      if a land 3 <> 0 then on_grid := false);
  check bool "every visited address on the absolute grid" true !on_grid;
  check
    (Alcotest.pair int int)
    "clamp_words clamps and realigns" (0x1004, 0x1041)
    (Segment.clamp_words s ~alignment:4 ~lo:(Addr.of_int 0x0FF0) ~hi:(Addr.of_int 0x2000))

let test_segment_strings () =
  let s = seg () in
  Segment.blit_string s (Addr.of_int 0x1010) "hello";
  check Alcotest.string "read back" "hello" (Segment.read_string s (Addr.of_int 0x1010) ~len:5)

let test_segment_fill () =
  let s = seg () in
  Segment.fill s (Addr.of_int 0x1000) ~len:8 '\xFF';
  check int "filled word" 0xFFFFFFFF (Segment.read_word s (Addr.of_int 0x1000));
  Segment.zero_range s (Addr.of_int 0x1000) ~len:4;
  check int "zeroed" 0 (Segment.read_word s (Addr.of_int 0x1000));
  check int "rest kept" 0xFFFFFFFF (Segment.read_word s (Addr.of_int 0x1004))

(* --- Mem --- *)

let test_mem_map_and_find () =
  let m = Mem.create () in
  let a = Mem.map m ~name:"a" ~kind:Segment.Static_data ~base:(Addr.of_int 0x1000) ~size:0x1000 in
  let b = Mem.map m ~name:"b" ~kind:Segment.Static_data ~base:(Addr.of_int 0x5000) ~size:0x1000 in
  let same seg = function
    | Some found -> found == seg
    | None -> false
  in
  check bool "finds a" true (same a (Mem.find m (Addr.of_int 0x1800)));
  check bool "finds b" true (same b (Mem.find m (Addr.of_int 0x5000)));
  check bool "gap unmapped" true (Mem.find m (Addr.of_int 0x3000) = None);
  check bool "is_mapped" true (Mem.is_mapped m (Addr.of_int 0x1FFF));
  check bool "limit excluded" false (Mem.is_mapped m (Addr.of_int 0x2000))

(* Boundary addresses of the segment map: first byte, limit-1, limit,
   the byte below the base, and the gap between two segments. *)
let test_mem_find_boundaries () =
  let m = Mem.create () in
  let a = Mem.map m ~name:"a" ~kind:Segment.Static_data ~base:(Addr.of_int 0x1000) ~size:0x1000 in
  let b = Mem.map m ~name:"b" ~kind:Segment.Static_data ~base:(Addr.of_int 0x3000) ~size:0x100 in
  let is seg = function
    | Some found -> found == seg
    | None -> false
  in
  check bool "first byte of a" true (is a (Mem.find m (Addr.of_int 0x1000)));
  check bool "last byte of a" true (is a (Mem.find m (Addr.of_int 0x1FFF)));
  check bool "limit of a excluded" true (Mem.find m (Addr.of_int 0x2000) = None);
  check bool "byte below a" true (Mem.find m (Addr.of_int 0x0FFF) = None);
  check bool "gap between a and b" true (Mem.find m (Addr.of_int 0x2800) = None);
  check bool "first byte of b" true (is b (Mem.find m (Addr.of_int 0x3000)));
  check bool "last byte of b" true (is b (Mem.find m (Addr.of_int 0x30FF)));
  check bool "limit of b excluded" true (Mem.find m (Addr.of_int 0x3100) = None)

let test_mem_overlap_rejected () =
  let m = Mem.create () in
  let _ = Mem.map m ~name:"a" ~kind:Segment.Static_data ~base:(Addr.of_int 0x1000) ~size:0x1000 in
  let overlaps () =
    ignore (Mem.map m ~name:"b" ~kind:Segment.Static_data ~base:(Addr.of_int 0x1800) ~size:0x1000)
  in
  check bool "overlap raises" true
    (try
       overlaps ();
       false
     with Invalid_argument _ -> true)

let test_mem_map_anywhere () =
  let m = Mem.create () in
  let _ = Mem.map m ~name:"a" ~kind:Segment.Static_data ~base:(Addr.of_int 0x1000) ~size:0x1000 in
  let b = Mem.map_anywhere m ~name:"b" ~kind:Segment.Static_data ~size:0x800 () in
  check bool "placed clear of a" true (Addr.to_int (Segment.base b) >= 0x2000);
  check bool "registered" true (Mem.is_mapped m (Segment.base b))

let test_mem_read_write () =
  let m = Mem.create ~endian:Endian.Big () in
  let _ = Mem.map m ~name:"a" ~kind:Segment.Static_data ~base:(Addr.of_int 0x1000) ~size:0x100 in
  Mem.write_word m (Addr.of_int 0x1010) 0xDEADBEEF;
  check int "word round trip" 0xDEADBEEF (Mem.read_word m (Addr.of_int 0x1010));
  check int "big endian byte" 0xDE (Mem.read_u8 m (Addr.of_int 0x1010))

let test_mem_unmap () =
  let m = Mem.create () in
  let a = Mem.map m ~name:"a" ~kind:Segment.Static_data ~base:(Addr.of_int 0x1000) ~size:0x100 in
  Mem.unmap m a;
  check bool "gone" false (Mem.is_mapped m (Addr.of_int 0x1000))

(* --- Layout --- *)

let test_layout_presets_valid () =
  Layout.validate (Layout.sbrk_style ());
  Layout.validate (Layout.high_heap ());
  Layout.validate (Layout.mid_heap ())

let test_layout_sbrk_low_heap () =
  let l = Layout.sbrk_style () in
  check bool "heap right above data" true
    (Addr.to_int l.Layout.heap_base < 0x100000)

let test_layout_apply () =
  let mem = Mem.create () in
  let l = Layout.high_heap () in
  let text, data, stack = Layout.apply l mem in
  check bool "text kind" true (Segment.kind text = Segment.Text);
  check bool "data kind" true (Segment.kind data = Segment.Static_data);
  check bool "stack kind" true (Segment.kind stack = Segment.Stack);
  check int "stack ends at top" (Addr.to_int l.Layout.stack_top) (Addr.to_int (Segment.limit stack));
  (* heap region must still be free for the collector *)
  check bool "heap region unmapped" false (Mem.is_mapped mem l.Layout.heap_base)

let test_layout_overlap_detected () =
  let bad =
    {
      Layout.text_base = Addr.of_int 0x1000;
      text_size = 0x2000;
      data_base = Addr.of_int 0x2000;
      data_size = 0x1000;
      stack_top = Addr.of_int 0xF0000000;
      stack_size = 0x1000;
      heap_base = Addr.of_int 0x100000;
      heap_max = 0x1000;
    }
  in
  check bool "overlap raises" true
    (try
       Layout.validate bad;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "vm"
    [
      ( "addr",
        [
          Alcotest.test_case "masking" `Quick test_addr_masking;
          Alcotest.test_case "alignment" `Quick test_addr_alignment;
          Alcotest.test_case "trailing zeros" `Quick test_addr_trailing_zeros;
          Alcotest.test_case "range" `Quick test_addr_range;
          Alcotest.test_case "pp" `Quick test_addr_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "word range" `Quick test_rng_word_range;
          Alcotest.test_case "int bound" `Quick test_rng_int_bound;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "split" `Quick test_rng_split;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "clear and copy" `Quick test_bitset_clear_and_copy;
          Alcotest.test_case "iter order" `Quick test_bitset_iter_order;
          Alcotest.test_case "union" `Quick test_bitset_union;
          Alcotest.test_case "range queries" `Quick test_bitset_range_queries;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "word boundaries" `Quick test_bitset_word_boundaries;
          Alcotest.test_case "word-level iterators" `Quick test_bitset_word_iter;
          Alcotest.test_case "atomic test-and-set" `Quick test_bitset_atomic_test_and_set;
          Alcotest.test_case "atomic 4-domain set storm" `Quick test_bitset_atomic_storm;
          Alcotest.test_case "work-stealing deque basics" `Quick test_ws_deque_basics;
          Alcotest.test_case "work-stealing deque concurrent drain" `Quick
            test_ws_deque_concurrent_drain;
          Alcotest.test_case "work-stealing deque two-thief drain of a dead owner" `Quick
            test_ws_deque_drain_dead_owner;
        ] );
      ( "segment",
        [
          Alcotest.test_case "byte access" `Quick test_segment_byte_access;
          Alcotest.test_case "little-endian words" `Quick test_segment_word_little_endian;
          Alcotest.test_case "big-endian words" `Quick test_segment_word_big_endian;
          Alcotest.test_case "unaligned word (figure 1)" `Quick test_segment_unaligned_word;
          Alcotest.test_case "bounds" `Quick test_segment_bounds;
          Alcotest.test_case "iter words" `Quick test_segment_iter_words;
          Alcotest.test_case "iter words unaligned" `Quick test_segment_iter_words_unaligned;
          Alcotest.test_case "iter words unaligned base" `Quick test_segment_iter_words_unaligned_base;
          Alcotest.test_case "strings" `Quick test_segment_strings;
          Alcotest.test_case "fill" `Quick test_segment_fill;
        ] );
      ( "mem",
        [
          Alcotest.test_case "map and find" `Quick test_mem_map_and_find;
          Alcotest.test_case "find boundaries" `Quick test_mem_find_boundaries;
          Alcotest.test_case "overlap rejected" `Quick test_mem_overlap_rejected;
          Alcotest.test_case "map anywhere" `Quick test_mem_map_anywhere;
          Alcotest.test_case "read write" `Quick test_mem_read_write;
          Alcotest.test_case "unmap" `Quick test_mem_unmap;
        ] );
      ( "layout",
        [
          Alcotest.test_case "presets valid" `Quick test_layout_presets_valid;
          Alcotest.test_case "sbrk heap is low" `Quick test_layout_sbrk_low_heap;
          Alcotest.test_case "apply" `Quick test_layout_apply;
          Alcotest.test_case "overlap detected" `Quick test_layout_overlap_detected;
        ] );
    ]
