(* Unit tests for the static retention analyzer: liveness dataflow on
   handcrafted IR programs, the conservative-marker model's spurious
   root classification, each lint rule on a minimal trigger, and
   cross-validation against live recorded runs of the cheap bundled
   scenarios. *)

module An = Cgc_analysis
module Ir = An.Ir
module ISet = An.Liveness.ISet

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let mk ?(n_registers = 8) ?(stack_words = 64) ?(globals_words = 8) code =
  { Ir.n_registers; stack_words; globals_words; interior_pointers = true; code = Array.of_list code }

let handle id base = { Ir.raw = base; obj = Some id }
let alloc id base bytes = Ir.Alloc { obj = id; base; bytes; pointer_free = false }
let gc = Ir.Gc_point { measured = None }
let push = Ir.Frame_push { slots = 4; padding = 2; cleared = false }
let pop = Ir.Frame_pop { slots = 4; padding = 2; cleared = false }

(* --- liveness --- *)

let test_register_liveness () =
  (* r0 is live at the first GC (read afterwards), dead at the second
     (overwritten without a read) *)
  let p =
    mk
      [
        alloc 0 0x1000 8;
        Ir.Reg_write { reg = 0; value = handle 0 0x1000 };
        gc;
        Ir.Reg_read { reg = 0 };
        Ir.Reg_write { reg = 0; value = Ir.vint 7 };
        gc;
      ]
  in
  let lv = An.Liveness.analyze p in
  check int "two GC points" 2 (An.Liveness.n_gc_points lv);
  check bool "r0 live at gc0" true (ISet.mem 0 (An.Liveness.at_gc lv 0).An.Liveness.live_regs);
  check bool "r0 dead at gc1" false (ISet.mem 0 (An.Liveness.at_gc lv 1).An.Liveness.live_regs)

let test_frame_push_kills () =
  (* a later activation's uninitialized read of word [w] must not make
     [w] live across the intervening frame push: the push begins a new
     lifetime for the words it covers *)
  let w = 64 - 6 in
  (* first slot word of a 4+2 frame pushed from an empty stack *)
  let p =
    mk
      [
        alloc 0 0x1000 8;
        push;
        Ir.Local_write { word = w; value = handle 0 0x1000 };
        Ir.Local_read { word = w };
        pop;
        gc;
        push;
        Ir.Local_read { word = w };
        pop;
      ]
  in
  let lv = An.Liveness.analyze p in
  check bool "liveness does not leak past the push" false
    (ISet.mem w (An.Liveness.at_gc lv 0).An.Liveness.live_stack)

let test_used_objects () =
  (* an object accessed after a GC point is used there; one allocated
     after the point is not *)
  let p =
    mk
      [
        alloc 0 0x1000 8;
        gc;
        Ir.Heap_read { obj = 0; field = 0 };
        alloc 1 0x1040 8;
        Ir.Heap_write { obj = 1; field = 0; value = Ir.vint 3 };
      ]
  in
  let lv = An.Liveness.analyze p in
  let u = (An.Liveness.at_gc lv 0).An.Liveness.used_objects in
  check bool "accessed object used" true (ISet.mem 0 u);
  check bool "later allocation not used" false (ISet.mem 1 u)

(* --- the conservative-marker model --- *)

let snapshots p = (An.Analysis.run p).An.Analysis.retention.An.Apparent.snapshots

let classes_at (s : An.Apparent.gc_snapshot) =
  List.map (fun (r : An.Apparent.spurious_root) -> r.An.Apparent.sr_class) s.An.Apparent.spurious

let test_stale_slot_retains () =
  (* handle parked in a frame local, frame popped, fresh uncleared
     frame re-exposes it: apparent keeps the object, precise does not,
     and the root is classified as a stale slot *)
  let w = 64 - 6 in
  let p =
    mk
      [
        alloc 0 0x1000 8;
        push;
        Ir.Local_write { word = w; value = handle 0 0x1000 };
        Ir.Local_read { word = w };
        pop;
        push;
        gc;
        pop;
      ]
  in
  match snapshots p with
  | [ s ] ->
      check int "apparently live" 1 (ISet.cardinal s.An.Apparent.apparent);
      check int "precisely live" 0 (ISet.cardinal s.An.Apparent.precise);
      check bool "classified stale" true (List.mem An.Apparent.Stale_slot (classes_at s))
  | l -> Alcotest.failf "expected 1 snapshot, got %d" (List.length l)

let test_cleared_frame_drops_stale () =
  let w = 64 - 6 in
  let p =
    mk
      [
        alloc 0 0x1000 8;
        push;
        Ir.Local_write { word = w; value = handle 0 0x1000 };
        Ir.Local_read { word = w };
        pop;
        Ir.Frame_push { slots = 4; padding = 2; cleared = true };
        gc;
      ]
  in
  match snapshots p with
  | [ s ] -> check int "cleared frame retains nothing" 0 (ISet.cardinal s.An.Apparent.apparent)
  | l -> Alcotest.failf "expected 1 snapshot, got %d" (List.length l)

let test_model_sweep_frees () =
  (* once nothing apparent points at the object, a GC frees it in the
     model; a stale semantic handle stored later must not resurrect it *)
  let p =
    mk
      [
        alloc 0 0x1000 8;
        Ir.Reg_write { reg = 0; value = handle 0 0x1000 };
        Ir.Reg_write { reg = 0; value = Ir.vint 0 };
        gc;
        Ir.Root_write { word = 0; value = handle 0 0x1000 };
        Ir.Root_read { word = 0 };
        gc;
      ]
  in
  match snapshots p with
  | [ a; b ] ->
      check int "freed at first gc" 0 (ISet.cardinal a.An.Apparent.apparent);
      check int "not resurrected (apparent)" 0 (ISet.cardinal b.An.Apparent.apparent);
      check int "not resurrected (precise)" 0 (ISet.cardinal b.An.Apparent.precise)
  | l -> Alcotest.failf "expected 2 snapshots, got %d" (List.length l)

let test_interior_pointer_resolution () =
  (* an interior raw value pins the object under interior_pointers and
     does not when the program says base-only *)
  let code =
    [
      alloc 0 0x1000 16;
      Ir.Reg_write { reg = 0; value = Ir.vint 0x1008 };
      Ir.Reg_read { reg = 0 };
      gc;
    ]
  in
  let interior = mk code in
  let base_only = { (mk code) with Ir.interior_pointers = false } in
  (match snapshots interior with
  | [ s ] -> check int "interior pins" 1 (ISet.cardinal s.An.Apparent.apparent)
  | _ -> Alcotest.fail "expected 1 snapshot");
  match snapshots base_only with
  | [ s ] -> check int "base-only does not" 0 (ISet.cardinal s.An.Apparent.apparent)
  | _ -> Alcotest.fail "expected 1 snapshot"

(* --- lint rules on minimal triggers --- *)

let has p rule = An.Analysis.has_finding (An.Analysis.run p) rule

let test_r3_atomic_advice () =
  (* many scanned objects that never hold a pointer: advise atomic *)
  let n = 10 in
  let code = ref [] in
  for i = 0 to n - 1 do
    code := Ir.Root_write { word = 0; value = handle i (0x1000 + (i * 1024)) } :: alloc i (0x1000 + (i * 1024)) 512 :: !code
  done;
  code := gc :: !code;
  let p = mk (List.rev !code) in
  check bool "R3 fires" true (has p "R3");
  (* same shape but the objects link to each other: no R3 *)
  let code = ref [] in
  for i = 0 to n - 1 do
    code := alloc i (0x1000 + (i * 1024)) 512 :: !code;
    if i > 0 then
      code := Ir.Heap_write { obj = i; field = 0; value = handle (i - 1) (0x1000 + ((i - 1) * 1024)) } :: !code
  done;
  code := gc :: !code;
  check bool "R3 silent when pointers stored" false (has (mk (List.rev !code)) "R3")

let test_r4_large_object () =
  let p = mk [ Ir.Alloc { obj = 0; base = 0x10000; bytes = 128 * 1024; pointer_free = false }; gc ] in
  check bool "R4 fires on large scanned" true (has p "R4");
  let atomic =
    mk [ Ir.Alloc { obj = 0; base = 0x10000; bytes = 128 * 1024; pointer_free = true }; gc ]
  in
  check bool "R4 silent on atomic" false (has atomic "R4");
  let base_only =
    { (mk [ Ir.Alloc { obj = 0; base = 0x10000; bytes = 128 * 1024; pointer_free = false }; gc ]) with
      Ir.interior_pointers = false
    }
  in
  check bool "R4 silent without interior pointers" false (has base_only "R4")

let test_r5_minimal () =
  (* ten objects held only by a popped frame's locals, never cleared *)
  let n = 10 in
  let bigpush = Ir.Frame_push { slots = 12; padding = 2; cleared = false } in
  let bigpop = Ir.Frame_pop { slots = 12; padding = 2; cleared = false } in
  (* frame pushed from an empty stack: slot words 50..61 *)
  let code = ref [ bigpush ] in
  for i = 0 to n - 1 do
    let base = 0x1000 + (i * 64) in
    code :=
      Ir.Local_read { word = 50 + i }
      :: Ir.Local_write { word = 50 + i; value = handle i base }
      :: alloc i base 8 :: !code
  done;
  code := gc :: bigpush :: bigpop :: !code;
  let p = mk (List.rev !code) in
  check bool "R5 fires" true (has p "R5");
  (* identical program with cleared frames is mitigated *)
  let cleared =
    {
      p with
      Ir.code =
        Array.map
          (function
            | Ir.Frame_push { slots; padding; _ } -> Ir.Frame_push { slots; padding; cleared = true }
            | i -> i)
          p.Ir.code;
    }
  in
  check bool "R5 mitigated by clearing" false (has cleared "R5")

(* --- access-graph shape domain --- *)

let test_shape_dead_link () =
  (* a precise-dead head, still conservatively reachable through a
     stale frame slot, links into a precise-live tail: the access graph
     must keep that concrete edge (it is the fix generator's edit site) *)
  let w = 64 - 6 in
  let p =
    mk
      [
        alloc 0 0x1000 8;
        alloc 1 0x1040 8;
        Ir.Heap_write { obj = 0; field = 0; value = handle 1 0x1040 };
        Ir.Root_write { word = 0; value = handle 1 0x1040 };
        push;
        Ir.Local_write { word = w; value = handle 0 0x1000 };
        Ir.Local_read { word = w };
        pop;
        push;
        gc;
        pop;
        Ir.Root_read { word = 0 };
      ]
  in
  let t = An.Analysis.run p in
  match An.Shape.worst t.An.Analysis.shape with
  | None -> Alcotest.fail "no shape graph"
  | Some g ->
      check int "one dead link" 1 (List.length g.An.Shape.sh_dead_links);
      let l = List.hd g.An.Shape.sh_dead_links in
      check int "source is the dead head" 0 l.An.Shape.l_src;
      check int "link is field 0" 0 l.An.Shape.l_field;
      check int "destination is the tail" 1 l.An.Shape.l_dst;
      check bool "destination is precise-live" true l.An.Shape.l_dst_live

let test_shape_self_linked () =
  (* a chain of same-shaped cells linking through field 0 shows up as a
     self-linked group — R1's path-sensitive evidence *)
  let n = 4 in
  let code = ref [] in
  for i = 0 to n - 1 do
    code := alloc i (0x1000 + (i * 64)) 8 :: !code;
    if i > 0 then
      code := Ir.Heap_write { obj = i; field = 0; value = handle (i - 1) (0x1000 + ((i - 1) * 64)) } :: !code
  done;
  code := Ir.Root_read { word = 0 } :: gc :: Ir.Root_write { word = 0; value = handle (n - 1) (0x1000 + ((n - 1) * 64)) } :: !code;
  let t = An.Analysis.run (mk (List.rev !code)) in
  let groups = An.Shape.self_linked t.An.Analysis.shape in
  match List.assoc_opt (8, false) groups with
  | Some fields -> check bool "links through field 0" true (List.mem 0 fields)
  | None -> Alcotest.fail "chain group not self-linked"

(* --- cross-validation against live recorded runs --- *)

let outcome name =
  match An.Scenarios.run name with
  | Some o -> o
  | None -> Alcotest.failf "unknown scenario %s" name

let assert_valid (o : An.Scenarios.outcome) =
  let v = An.Analysis.validate o.An.Scenarios.o_analysis in
  check bool (o.An.Scenarios.o_name ^ ": sound") true v.An.Analysis.sound;
  check bool (o.An.Scenarios.o_name ^ ": within tolerance") true v.An.Analysis.within_tolerance

let test_queue_scenarios () =
  let no_clear = outcome "queue-no-clear" in
  let clear = outcome "queue-clear" in
  assert_valid no_clear;
  assert_valid clear;
  check bool "uncleared queue flagged R2" true
    (An.Analysis.has_finding no_clear.An.Scenarios.o_analysis "R2");
  check bool "cleared queue not flagged" false
    (An.Analysis.has_finding clear.An.Scenarios.o_analysis "R2");
  check bool "model explains the retention gap" true
    (An.Analysis.max_excess no_clear.An.Scenarios.o_analysis
    > 10 * max 1 (An.Analysis.max_excess clear.An.Scenarios.o_analysis))

let test_grid_scenarios () =
  let embedded = outcome "grid-embedded" in
  let separate = outcome "grid-separate" in
  assert_valid embedded;
  assert_valid separate;
  check bool "embedded grid flagged R1" true
    (An.Analysis.has_finding embedded.An.Scenarios.o_analysis "R1");
  check bool "separate grid not flagged" false
    (An.Analysis.has_finding separate.An.Scenarios.o_analysis "R1")

let test_scenarios_back_to_back () =
  (* regression: scenarios share the machine/recorder plumbing, so a
     recorder left attached by one run would keep consuming events and
     poison the next recording's IR.  Running the same scenario twice
     must give identical programs. *)
  let a = outcome "grid-embedded" in
  let b = outcome "grid-embedded" in
  assert_valid a;
  assert_valid b;
  let r o = o.An.Scenarios.o_analysis.An.Analysis.retention in
  check int "same object count on re-run" (r a).An.Apparent.n_objects (r b).An.Apparent.n_objects;
  check int "same gc point count on re-run"
    (List.length (r a).An.Apparent.snapshots)
    (List.length (r b).An.Apparent.snapshots);
  check bool "finding reproduced" true (An.Analysis.has_finding b.An.Scenarios.o_analysis "R1")

(* --- verified fix suggestions --- *)

let assert_fix_verified name rule =
  let o = outcome name in
  match An.Analysis.fix_for o.An.Scenarios.o_analysis rule with
  | None -> Alcotest.failf "%s: no %s finding with a suggestion" name rule
  | Some f ->
      let s =
        match f.An.Analysis.suggestion with
        | Some s -> s
        | None -> Alcotest.failf "%s: %s fix carries no suggestion" name rule
      in
      (match f.An.Analysis.verdict with
      | Some v -> check bool (name ^ ": static verdict sound") true (An.Fixes.sound v)
      | None -> Alcotest.failf "%s: %s fix carries no verdict" name rule);
      let c =
        An.Replay.compare_fix o.An.Scenarios.o_analysis.An.Analysis.program s.An.Fixes.fx_edits
      in
      check bool (name ^ ": replay preserves reads") true c.An.Replay.cmp_reads_equal;
      check bool (name ^ ": replay drops retained bytes") true (c.An.Replay.cmp_retention_drop > 0)

let test_fix_r1_grid () = assert_fix_verified "grid-embedded" "R1"
let test_fix_r2_queue () = assert_fix_verified "queue-no-clear" "R2"
let test_fix_r5_reverse () = assert_fix_verified "list-reverse-careless" "R5"
let test_fix_r5_program_t () = assert_fix_verified "program-t-careless" "R5"

(* --- the starvation matrix --- *)

let test_starvation_matrix () =
  let entries = An.Scenarios.starvation_matrix () in
  check bool "at least 12 scenarios" true (List.length entries >= 12);
  List.iter
    (fun (e : An.Scenarios.matrix_entry) ->
      check bool
        (Printf.sprintf "%s: predicted %s = measured %s" e.An.Scenarios.m_name
           (An.Starvation.class_name e.An.Scenarios.m_predicted)
           (An.Starvation.class_name e.An.Scenarios.m_measured))
        true
        (e.An.Scenarios.m_predicted = e.An.Scenarios.m_measured))
    entries;
  check bool "a memory-decayed OOM is exercised" true
    (List.exists
       (fun (e : An.Scenarios.matrix_entry) ->
         match e.An.Scenarios.m_oom with
         | Some d -> d.Cgc.Gc.memory_decayed
         | None -> false)
       entries);
  List.iter
    (fun c ->
      check bool (An.Starvation.class_name c ^ " is exercised") true
        (List.exists
           (fun (e : An.Scenarios.matrix_entry) -> e.An.Scenarios.m_predicted = c)
           entries))
    [
      An.Starvation.Safe;
      An.Starvation.Ladder_rescuable;
      An.Starvation.Blacklist_starved;
      An.Starvation.Decay_vulnerable;
      An.Starvation.Exhausted;
    ]

let () =
  Alcotest.run "analysis"
    [
      ( "liveness",
        [
          Alcotest.test_case "register gen/kill" `Quick test_register_liveness;
          Alcotest.test_case "frame push kills covered words" `Quick test_frame_push_kills;
          Alcotest.test_case "used objects" `Quick test_used_objects;
        ] );
      ( "marker model",
        [
          Alcotest.test_case "stale slot retains" `Quick test_stale_slot_retains;
          Alcotest.test_case "cleared frame drops stale" `Quick test_cleared_frame_drops_stale;
          Alcotest.test_case "model sweep frees" `Quick test_model_sweep_frees;
          Alcotest.test_case "interior pointer resolution" `Quick test_interior_pointer_resolution;
        ] );
      ( "lint",
        [
          Alcotest.test_case "R3 atomic advice" `Quick test_r3_atomic_advice;
          Alcotest.test_case "R4 large object" `Quick test_r4_large_object;
          Alcotest.test_case "R5 stack hygiene" `Quick test_r5_minimal;
        ] );
      ( "shape",
        [
          Alcotest.test_case "dead link into live data" `Quick test_shape_dead_link;
          Alcotest.test_case "self-linked group" `Quick test_shape_self_linked;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "queue pair" `Slow test_queue_scenarios;
          Alcotest.test_case "grid pair" `Slow test_grid_scenarios;
          Alcotest.test_case "scenarios back to back" `Slow test_scenarios_back_to_back;
        ] );
      ( "fixes",
        [
          Alcotest.test_case "R1 grid fix verified" `Slow test_fix_r1_grid;
          Alcotest.test_case "R2 queue fix verified" `Slow test_fix_r2_queue;
          Alcotest.test_case "R5 list-reverse fix verified" `Slow test_fix_r5_reverse;
          Alcotest.test_case "R5 program-T fix verified" `Slow test_fix_r5_program_t;
        ] );
      ( "starvation",
        [ Alcotest.test_case "matrix agreement" `Slow test_starvation_matrix ] );
    ]
