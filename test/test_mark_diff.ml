(* Differential tests for the mark-phase fast path.

   Two deterministically-identical collector instances are built from
   one random scenario; one is marked with the fast path
   ([Gc.Internal.run_mark]), the other with the pre-optimization
   reference transcription ([Gc.Internal.run_mark_reference]).  Mark
   bitmaps, blacklisted pages and the marking statistics must be
   bit-identical — across alignments 1/2/4, interior pointers on/off,
   registered displacement lists, bounded mark stacks (overflow
   recovery) and hashed blacklists.  [Stats.header_cache_hits] is
   excluded: only the fast path has a header cache. *)

open Cgc_vm
module Gc = Cgc.Gc
module Config = Cgc.Config
module Heap = Cgc.Heap
module Page = Cgc.Page
module Blacklist = Cgc.Blacklist
module Stats = Cgc.Stats

type scenario = {
  s_sizes : int array;  (* words per object *)
  s_edges : (int * int * int) list;  (* (src, field, dst) *)
  s_roots : int list;
  s_junk : int list;  (* raw word values written into the root segment *)
  s_bytes : string;  (* raw tail bytes, scanned at every alignment *)
  s_alignment : int;
  s_interior : bool;
  s_disps : int list;
  s_limit : int option;  (* mark_stack_limit *)
  s_hashed : bool;
  s_big_endian : bool;
}

let heap_base = 0x400000
let heap_bytes = 2 * 1024 * 1024

let junk_value_gen =
  QCheck.Gen.(
    frequency
      [
        (* anywhere in the 32-bit space *)
        (2, map (fun v -> v land 0xFFFFFFFF) (int_bound max_int));
        (* in the vicinity of the heap: interior, unaligned, off-by-one
           values — the classifier's hard cases *)
        (5, map (fun off -> heap_base + off) (int_bound (heap_bytes - 1)));
        (* straddling the heap's bounds *)
        (1, oneofl [ heap_base - 4; heap_base - 1; heap_base; heap_base + heap_bytes - 1; heap_base + heap_bytes ]);
        (1, return 0);
      ])

let scenario_gen =
  QCheck.Gen.(
    int_range 2 30 >>= fun n ->
    array_size (return n) (frequency [ (9, int_range 1 6); (1, return 1500) ]) >>= fun sizes ->
    list_size (int_bound (2 * n)) (triple (int_bound (n - 1)) (int_bound 3) (int_bound (n - 1)))
    >>= fun raw_edges ->
    list_size (int_bound (max 1 (n / 2))) (int_bound (n - 1)) >>= fun roots ->
    list_size (int_bound 48) junk_value_gen >>= fun junk ->
    string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 160) >>= fun bytes ->
    oneofl [ 1; 2; 4 ] >>= fun alignment ->
    bool >>= fun interior ->
    oneofl [ []; [ 4 ]; [ 8 ]; [ 4; 12 ]; [ 8; 16; 24 ] ] >>= fun disps ->
    oneofl [ None; Some 16; Some 64 ] >>= fun limit ->
    bool >>= fun hashed ->
    bool >>= fun big_endian ->
    let edges =
      List.filter_map (fun (s, f, d) -> if f < sizes.(s) then Some (s, f, d) else None) raw_edges
    in
    return
      {
        s_sizes = sizes;
        s_edges = edges;
        s_roots = roots;
        s_junk = junk;
        s_bytes = bytes;
        s_alignment = alignment;
        s_interior = interior;
        s_disps = disps;
        s_limit = limit;
        s_hashed = hashed;
        s_big_endian = big_endian;
      })

let build ?(tweak = fun c -> c) s =
  let mem =
    Mem.create ~endian:(if s.s_big_endian then Endian.Big else Endian.Little) ()
  in
  let data =
    Mem.map mem ~name:"roots" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000
  in
  let config =
    tweak
      {
        Config.default with
        Config.alignment = s.s_alignment;
        interior_pointers = s.s_interior;
        valid_displacements = s.s_disps;
        mark_stack_limit = s.s_limit;
        blacklist_buckets = (if s.s_hashed then Some 61 else None);
        initial_pages = 16;
      }
  in
  let gc = Gc.create ~config mem ~base:(Addr.of_int heap_base) ~max_bytes:heap_bytes () in
  Gc.set_auto_collect gc false;
  Gc.add_static_root gc ~lo:(Segment.base data) ~hi:(Segment.limit data) ~label:"roots";
  let objs = Array.map (fun words -> Gc.allocate gc (4 * words)) s.s_sizes in
  List.iter (fun (src, f, dst) -> Gc.set_field gc objs.(src) f (Addr.to_int objs.(dst))) s.s_edges;
  List.iteri
    (fun i r ->
      Segment.write_word data (Addr.add (Segment.base data) (4 * i)) (Addr.to_int objs.(r)))
    s.s_roots;
  (* junk words after the root slots, raw bytes near the end: both are
     scanned as roots at the configured alignment *)
  List.iteri
    (fun i v -> Segment.write_word data (Addr.add (Segment.base data) (0x400 + (4 * i))) v)
    s.s_junk;
  Segment.blit_string data (Addr.add (Segment.base data) 0x800) s.s_bytes;
  gc

(* Everything the mark phase is allowed to touch, in comparable form. *)
let mark_state gc =
  let heap = Gc.heap gc in
  let marks = ref [] in
  Heap.iter_committed heap (fun i p ->
      match p with
      | Page.Small small ->
          let bits = List.rev (Bitset.fold (fun acc b -> b :: acc) [] small.Page.mark) in
          marks := (i, bits) :: !marks
      | Page.Large_head l -> marks := (i, [ (if l.Page.l_marked then 1 else 0) ]) :: !marks
      | Page.Free | Page.Uncommitted | Page.Large_tail _ -> ());
  let black = ref [] in
  Blacklist.iter (fun p -> black := p :: !black) (Gc.blacklist gc);
  let st = Gc.stats gc in
  ( List.rev !marks,
    List.rev !black,
    ( st.Stats.words_scanned,
      st.Stats.valid_refs,
      st.Stats.false_refs,
      st.Stats.objects_marked,
      st.Stats.mark_stack_overflows ) )

let scenario_print s =
  Printf.sprintf
    "objects=%d edges=%d roots=%d junk=%d bytes=%d align=%d interior=%b disps=[%s] limit=%s \
     hashed=%b big=%b"
    (Array.length s.s_sizes) (List.length s.s_edges) (List.length s.s_roots)
    (List.length s.s_junk) (String.length s.s_bytes) s.s_alignment s.s_interior
    (String.concat ";" (List.map string_of_int s.s_disps))
    (match s.s_limit with None -> "none" | Some l -> string_of_int l)
    s.s_hashed s.s_big_endian

let scenario_arb = QCheck.make scenario_gen ~print:scenario_print

let prop_fast_matches_reference =
  QCheck.Test.make ~count:300 ~name:"fast path == reference (marks, blacklist, stats)"
    scenario_arb
    (fun s ->
      let gc_fast = build s and gc_ref = build s in
      Gc.Internal.run_mark gc_fast;
      Gc.Internal.run_mark_reference gc_ref;
      let first = mark_state gc_fast = mark_state gc_ref in
      (* a second cycle ages the blacklist (begin_cycle rotation) and
         re-marks from already-populated state *)
      Gc.Internal.run_mark gc_fast;
      Gc.Internal.run_mark_reference gc_ref;
      first && mark_state gc_fast = mark_state gc_ref)

(* Collections driven end-to-end by the fast path keep the heap sound:
   a full collect (mark + sweep) on the fast instance frees exactly what
   a collect on the reference-marked instance frees. *)
let prop_fast_collect_matches_reference_collect =
  QCheck.Test.make ~count:150 ~name:"sweep after fast mark == sweep after reference mark"
    scenario_arb
    (fun s ->
      let gc_fast = build s and gc_ref = build s in
      Gc.Internal.run_mark gc_fast;
      let sweep_fast = Gc.Internal.run_sweep gc_fast in
      Gc.Internal.run_mark_reference gc_ref;
      let sweep_ref = Gc.Internal.run_sweep gc_ref in
      sweep_fast = sweep_ref
      && Cgc.Verify.check gc_fast = []
      && Cgc.Verify.check gc_ref = [])

(* The per-value entry point agrees with the pure classifier: feeding a
   word through the marker marks exactly the object [classify] names. *)
let prop_mark_value_matches_classify =
  QCheck.Test.make ~count:200 ~name:"mark_value marks exactly what classify names"
    (QCheck.make
       QCheck.Gen.(pair scenario_gen (list_size (int_bound 32) junk_value_gen)))
    (fun (s, values) ->
      let gc = build s in
      let heap = Gc.heap gc and config = Gc.config gc in
      let marker = Gc.Internal.marker gc in
      List.for_all
        (fun v ->
          match Cgc.Mark.classify heap config v with
          | Cgc.Mark.Valid { base; _ } ->
              Cgc.Mark.mark_value marker v;
              Gc.Internal.is_marked gc base
          | Cgc.Mark.False_in_heap { page } ->
              Cgc.Mark.mark_value marker v;
              Blacklist.is_black (Gc.blacklist gc) page
          | Cgc.Mark.Outside ->
              Cgc.Mark.mark_value marker v;
              true)
        values)

(* The parallel tracer's bit-identity claim, across the same scenario
   space (alignment x interior x displacements x stack limit x hashed
   blacklist x endianness) crossed with jobs in {1, 2, 4}: a fresh
   identical instance parallel-marked twice agrees with the serial fast
   path on mark bitmaps, blacklisted pages and [objects_marked] after
   every cycle; [words_scanned]/[valid_refs]/[false_refs] agree whenever
   neither run overflowed (overflow-recovery rescan rounds revisit
   scheduling-dependent amounts of work, so those tallies are only
   deterministic overflow-free).  jobs = 1 must take the
   [Serial_configured] note; jobs > 1 must really go parallel (no fault
   plan here), pass the post-parallel-mark audit, and show per-domain
   shards summing to the per-cycle totals. *)
let prop_parallel_matches_serial =
  QCheck.Test.make ~count:120 ~name:"parallel tracer == serial fast path (jobs 1/2/4)"
    scenario_arb
    (fun s ->
      let gc_ser = build s in
      Gc.Internal.run_mark gc_ser;
      let ser1 = mark_state gc_ser in
      Gc.Internal.run_mark gc_ser;
      let ser2 = mark_state gc_ser in
      let agree (m, b, (w, v, f, om, ov)) (m', b', (w', v', f', om', ov')) =
        m = m' && b = b' && om = om'
        && (ov > 0 || ov' > 0 || (w = w' && v = v' && f = f'))
      in
      let shard_sum o f =
        Array.fold_left (fun acc sh -> acc + f sh) 0 o.Cgc.Mark.Parallel.shards
      in
      List.for_all
        (fun jobs ->
          let gc_par = build s in
          let o1 = Gc.Internal.run_mark_parallel gc_par ~jobs in
          let st1 = mark_state gc_par in
          let o2 = Gc.Internal.run_mark_parallel gc_par ~jobs in
          let st2 = mark_state gc_par in
          let audit = Cgc.Verify.check_parallel_mark gc_par in
          let note_ok =
            if jobs = 1 then
              o1.Cgc.Mark.Parallel.fallback = Some Cgc.Mark.Parallel.Serial_configured
              && o2.Cgc.Mark.Parallel.fallback = Some Cgc.Mark.Parallel.Serial_configured
            else
              o1.Cgc.Mark.Parallel.fallback = None
              && o2.Cgc.Mark.Parallel.fallback = None
              && o1.Cgc.Mark.Parallel.domains_used = jobs
          in
          let shards_ok =
            jobs = 1
            ||
            let _, _, (w1, v1, f1, om1, ov1) = st1 in
            let _, _, (_, _, _, om2, _) = st2 in
            shard_sum o1 (fun sh -> sh.Stats.objects_marked) = om1
            && shard_sum o2 (fun sh -> sh.Stats.objects_marked) = om2 - om1
            && (ov1 > 0
               || shard_sum o1 (fun sh -> sh.Stats.words_scanned) = w1
                  && shard_sum o1 (fun sh -> sh.Stats.valid_refs) = v1
                  && shard_sum o1 (fun sh -> sh.Stats.false_refs) = f1)
          in
          agree st1 ser1 && agree st2 ser2 && audit = [] && note_ok && shards_ok)
        [ 1; 2; 4 ])

module DF = Cgc.Domain_fault
module Parallel = Cgc.Mark.Parallel

(* The self-healing claim (DESIGN.md §9): for any injected failure of
   k < jobs marker domains — stall at an item boundary, crash at an
   odd/even checkpoint step (hitting boundary and mid-item sites),
   livelock holding a claimed item, slow straggler under a watchdog
   budget tight enough to reclaim even healthy-but-slow domains — the
   recovered mark bitmaps, blacklisted pages and [objects_marked] are
   bit-identical to the serial scanner, the trace still completes in
   parallel (quorum 1 cannot break: the leader never fails), and the
   heartbeat/quorum audit passes.  [strict] plans (stall / crash /
   livelock) must actually be reclaimed whenever they tripped; a
   straggler is merely slow, so reclaiming it is the watchdog's choice —
   and recovery must be exact either way, including for that false
   positive. *)
let prop_parallel_recovers_from_domain_faults =
  QCheck.Test.make ~count:60
    ~name:"self-healing tracer == serial under injected domain failures (jobs 2/4)" scenario_arb
    (fun s ->
      let gc_ser = build s in
      Gc.Internal.run_mark gc_ser;
      let m_ser, b_ser, (_, _, _, om_ser, _) = mark_state gc_ser in
      let tweak c = { c with Config.mark_watchdog_budget = 8 } in
      let plans jobs =
        [
          ([ DF.plan ~domain:1 (DF.Stall { after_claims = 2 }) ], true);
          ([ DF.plan ~domain:1 (DF.Crash { at_step = 5 }) ], true);
          ([ DF.plan ~domain:1 (DF.Crash { at_step = 8 }) ], true);
          ([ DF.plan ~domain:1 (DF.Livelock { on_claim = 2 }) ], true);
          ([ DF.plan ~domain:1 (DF.Straggler { spin = 200 }) ], false);
          ( [
              DF.plan ~domain:1 (DF.Stall { after_claims = 1 });
              DF.plan ~domain:(min 2 (jobs - 1)) (DF.Crash { at_step = 7 });
            ],
            true );
        ]
      in
      List.for_all
        (fun jobs ->
          List.for_all
            (fun (faults, strict) ->
              let gc_par = build ~tweak s in
              let o = Gc.Internal.run_mark_parallel ~faults gc_par ~jobs in
              let m, b, (_, _, _, om, _) = mark_state gc_par in
              let audit = Cgc.Verify.check_parallel_mark gc_par in
              let st = Gc.stats gc_par in
              let health_ok =
                match o.Parallel.health with
                | None -> false
                | Some h ->
                    h.Parallel.survivors + List.length h.Parallel.failed = jobs
                    && h.Parallel.clean_recoveries + h.Parallel.dirty_recoveries
                       = List.length h.Parallel.failed
                    && (not strict)
                       || st.Stats.mark_domain_faults = 0
                       || List.length h.Parallel.failed > 0
                          && st.Stats.mark_domains_recovered > 0
              in
              m = m_ser && b = b_ser && om = om_ser
              && o.Parallel.fallback = None
              && audit = [] && health_ok)
            (plans jobs))
        [ 2; 4 ])

(* Quorum break: with [mark_quorum = jobs], one crashed domain drops
   the survivors below quorum; the parallel attempt must be abandoned
   wholesale (shadow marks and shards discarded, blacklist cycle
   rotation rolled back) and the serial rerun must leave the *entire*
   mark state — including the schedule-sensitive word/ref tallies —
   bit-identical to a serial-only instance, across two aging cycles.
   The outcome carries the typed [Domain_failed] note, the audit's
   quorum arm holds, and each degradation counts one quorum degradation
   plus one serial fallback. *)
let prop_quorum_break_degrades_to_serial =
  QCheck.Test.make ~count:40 ~name:"quorum break == serial rerun (Domain_failed, bit-identical)"
    scenario_arb
    (fun s ->
      let gc_ser = build s in
      Gc.Internal.run_mark gc_ser;
      let ser1 = mark_state gc_ser in
      Gc.Internal.run_mark gc_ser;
      let ser2 = mark_state gc_ser in
      let jobs = 2 in
      let tweak c =
        {
          c with
          Config.mark_watchdog_budget = 8;
          Config.mark_quorum = jobs;
          Config.mark_jobs = jobs;
        }
      in
      let faults = [ DF.plan ~domain:1 (DF.Crash { at_step = 1 }) ] in
      let gc_par = build ~tweak s in
      let o1 = Gc.Internal.run_mark_parallel ~faults gc_par ~jobs in
      let st1 = mark_state gc_par in
      let o2 = Gc.Internal.run_mark_parallel ~faults gc_par ~jobs in
      let st2 = mark_state gc_par in
      let audit = Cgc.Verify.check_parallel_mark gc_par in
      let st = Gc.stats gc_par in
      st1 = ser1 && st2 = ser2
      && o1.Parallel.fallback = Some Parallel.Domain_failed
      && o2.Parallel.fallback = Some Parallel.Domain_failed
      && audit = []
      && st.Stats.mark_quorum_degradations = 2
      && st.Stats.mark_serial_fallbacks = 2
      && (match o1.Parallel.health with
         | Some h -> h.Parallel.survivors < h.Parallel.quorum
         | None -> false))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_fast_matches_reference;
      prop_fast_collect_matches_reference_collect;
      prop_mark_value_matches_classify;
      prop_parallel_matches_serial;
      prop_parallel_recovers_from_domain_faults;
      prop_quorum_break_degrades_to_serial;
    ]

let () = Alcotest.run "mark-diff" [ ("differential", suite) ]
