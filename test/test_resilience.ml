(* Memory-pressure resilience: the fault-injection layer, the typed
   exhaustion exceptions, the allocation escalation ladder, and the
   structured out-of-memory diagnostics. *)

open Cgc_vm
module Gc = Cgc.Gc
module Config = Cgc.Config
module Stats = Cgc.Stats
module Verify = Cgc.Verify
module Blacklist = Cgc.Blacklist
module Heap = Cgc.Heap
module Machine = Cgc_mutator.Machine

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let page = 4096

(* --- Mem fault plans ------------------------------------------------ *)

let test_countdown_exact () =
  let mem = Mem.create () in
  Mem.set_fault_plan mem (Some (Mem.Fault.plan ~countdown:3 ()));
  let commit () = Mem.commit mem ~addr:(Addr.of_int 0x1000) ~bytes:page in
  commit ();
  commit ();
  (match commit () with
  | () -> Alcotest.fail "third charge should fault"
  | exception Mem.Commit_failed { reason = Mem.Fault.Countdown; bytes; _ } ->
      check int "faulting charge carries its size" page bytes);
  (* no rearm: the plan is spent *)
  commit ();
  check int "exactly one fault injected" 1 (Mem.faults_injected mem)

let test_countdown_rearm () =
  let mem = Mem.create () in
  Mem.set_fault_plan mem (Some (Mem.Fault.plan ~countdown:2 ~rearm:true ()));
  let commit () = Mem.commit mem ~addr:(Addr.of_int 0x1000) ~bytes:page in
  let faulted () = match commit () with () -> false | exception Mem.Commit_failed _ -> true in
  check bool "1st ok" false (faulted ());
  check bool "2nd faults" true (faulted ());
  check bool "3rd ok" false (faulted ());
  check bool "4th faults" true (faulted ());
  check int "two faults injected" 2 (Mem.faults_injected mem)

let test_quota_and_refund () =
  let mem = Mem.create () in
  let plan = Mem.Fault.plan ~quota_bytes:(2 * page) () in
  Mem.set_fault_plan mem (Some plan);
  Mem.commit mem ~addr:(Addr.of_int 0x1000) ~bytes:page;
  Mem.commit mem ~addr:(Addr.of_int 0x2000) ~bytes:page;
  (match Mem.commit mem ~addr:(Addr.of_int 0x3000) ~bytes:page with
  | () -> Alcotest.fail "commit over quota should fault"
  | exception Mem.Commit_failed { reason = Mem.Fault.Quota; _ } -> ());
  (* a refused commit does not debit the quota *)
  check int "charged stays at the quota" (2 * page) (Mem.Fault.charged_bytes plan);
  (* an uncommit refunds, unblocking the next commit *)
  Mem.uncommit mem ~addr:(Addr.of_int 0x1000) ~bytes:page;
  check int "refund lowered the charge" page (Mem.Fault.charged_bytes plan);
  Mem.commit mem ~addr:(Addr.of_int 0x3000) ~bytes:page;
  check int "back at the quota" (2 * page) (Mem.Fault.charged_bytes plan)

let test_addr_predicate () =
  let mem = Mem.create () in
  Mem.set_fault_plan mem
    (Some (Mem.Fault.plan ~addr_pred:(fun a -> Addr.to_int a = 0x5000) ()));
  Mem.commit mem ~addr:(Addr.of_int 0x4000) ~bytes:page;
  match Mem.commit mem ~addr:(Addr.of_int 0x5000) ~bytes:page with
  | () -> Alcotest.fail "predicate address should fault"
  | exception Mem.Commit_failed { reason = Mem.Fault.Address; addr; _ } ->
      check int "fault at the matched address" 0x5000 (Addr.to_int addr)

(* --- typed exhaustion exceptions ------------------------------------ *)

let test_address_space_exhausted () =
  let mem = Mem.create () in
  match Mem.map_anywhere mem ~name:"huge" ~kind:Segment.Static_data ~size:0x40000000 () with
  | (_ : Segment.t) -> (
      (* 1 GB fit; a second cannot also fit below 4 GB along with two more *)
      match
        ( Mem.map_anywhere mem ~name:"h2" ~kind:Segment.Static_data ~size:0x40000000 (),
          Mem.map_anywhere mem ~name:"h3" ~kind:Segment.Static_data ~size:0x40000000 (),
          Mem.map_anywhere mem ~name:"h4" ~kind:Segment.Static_data ~size:0x40000000 () )
      with
      | _ -> Alcotest.fail "the 32-bit space cannot hold four 1 GB segments"
      | exception Mem.Address_space_exhausted { requested } ->
          check int "exception names the request" 0x40000000 requested)
  | exception Mem.Address_space_exhausted _ -> Alcotest.fail "1 GB must fit in a fresh space"

let make_machine () =
  let mem = Mem.create () in
  let stack =
    Mem.map mem ~name:"stack" ~kind:Segment.Stack ~base:(Addr.of_int 0xE0000000) ~size:0x1000
  in
  let gc = Gc.create mem ~base:(Addr.of_int 0x400000) ~max_bytes:(256 * 1024) () in
  Machine.create mem ~stack ~gc

let test_stack_overflow_on_call () =
  let m = make_machine () in
  match Machine.call m ~slots:4096 (fun _ -> ()) with
  | () -> Alcotest.fail "a 16 KB frame cannot fit a 4 KB stack"
  | exception Machine.Stack_overflow { requested_words; _ } ->
      check bool "exception carries the request" true (requested_words >= 4096)

let test_stack_overflow_on_park () =
  let m = make_machine () in
  (match Machine.park m ~words:4096 with
  | () -> Alcotest.fail "parking 16 KB cannot fit a 4 KB stack"
  | exception Machine.Stack_overflow _ -> ());
  (* the machine is still usable: a sane park now succeeds *)
  Machine.park m ~words:16;
  check bool "parked after recovery" true (Machine.parked m)

(* --- exhaustion diagnostics ----------------------------------------- *)

(* A tiny world: a globals segment registered as the only root, so tests
   control liveness exactly. *)
let make_gc ?(config = Config.default) ~pages () =
  let mem = Mem.create () in
  let globals =
    Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000
  in
  let gc = Gc.create ~config mem ~base:(Addr.of_int 0x400000) ~max_bytes:(pages * page) () in
  Gc.add_static_root gc ~lo:(Segment.base globals) ~hi:(Segment.limit globals) ~label:"globals";
  (mem, gc, globals)

let set_slot globals i v = Segment.write_word globals (Addr.add (Segment.base globals) (4 * i)) v

let test_small_exhaustion () =
  let config = { Config.default with Config.initial_pages = 2; min_expand_pages = 1 } in
  let _, gc, globals = make_gc ~config ~pages:8 () in
  (* grow a fully live chain until the reserve runs dry *)
  let head = ref 0 in
  let d =
    let rec go n =
      if n = 0 then Alcotest.fail "8 pages cannot hold 10k live conses"
      else
        match Gc.allocate gc 16 with
        | a ->
            Gc.set_field gc a 0 !head;
            head := Addr.to_int a;
            set_slot globals 0 !head;
            go (n - 1)
        | exception Gc.Out_of_memory d -> d
    in
    go 10_000
  in
  check bool "small request" true d.Gc.small;
  check int "request size preserved" 16 d.Gc.request_bytes;
  check int "whole reserve committed before giving up" d.Gc.pages_reserved d.Gc.pages_committed;
  check bool "ladder collected" true (List.mem Gc.Collect d.Gc.rungs);
  check bool "ladder grew" true (List.mem Gc.Grow d.Gc.rungs);
  check bool "a full heap is not blacklist starvation" false d.Gc.blacklist_starved;
  check bool "no OS fault involved" false d.Gc.os_refused;
  check int "raise counted" 1 (Gc.stats gc).Stats.oom_raised;
  (* the collector is still usable: drop the chain and allocate again *)
  set_slot globals 0 0;
  head := 0;
  let a = Gc.allocate gc 16 in
  check bool "allocates after the catch" true (Gc.is_allocated gc a);
  check int "heap verifies clean" 0 (List.length (Verify.check gc))

let test_large_exhaustion () =
  let _, gc, _ = make_gc ~pages:64 () in
  (match Gc.allocate gc (128 * page) with
  | (_ : Addr.t) -> Alcotest.fail "a 128-page object cannot fit a 64-page reserve"
  | exception Gc.Out_of_memory d ->
      check bool "large request" false d.Gc.small;
      check int "request pages accurate" 128 d.Gc.request_pages;
      check int "reserve size reported" 64 d.Gc.pages_reserved;
      check bool "genuinely out of pages" false d.Gc.blacklist_starved;
      check bool "diagnosis prints" true (String.length (Gc.oom_message d) > 0));
  let a = Gc.allocate gc page in
  check bool "allocates after the catch" true (Gc.is_allocated gc a)

let blacklist_everything gc =
  let bl = Gc.blacklist gc in
  for i = 0 to Heap.n_pages (Gc.heap gc) - 1 do
    Blacklist.note bl i
  done

let test_blacklist_starved_small () =
  let config = { Config.default with Config.initial_pages = 4; full_gc_at_startup = false } in
  let _, gc, _ = make_gc ~config ~pages:16 () in
  Gc.set_auto_collect gc false;
  blacklist_everything gc;
  (match Gc.allocate gc 16 with
  | (_ : Addr.t) -> Alcotest.fail "strict regime must refuse an all-black heap"
  | exception Gc.Out_of_memory d ->
      check bool "diagnosed as blacklist starvation" true d.Gc.blacklist_starved;
      check bool "not an OS fault" false d.Gc.os_refused);
  (* pointer-free small objects may still land on black pages *)
  let a = Gc.allocate ~pointer_free:true gc 16 in
  check bool "atomic allocation still succeeds" true (Gc.is_allocated gc a)

let test_relaxation_rescues_small () =
  let config =
    {
      Config.default with
      Config.initial_pages = 4;
      full_gc_at_startup = false;
      relax_blacklist = true;
    }
  in
  let _, gc, _ = make_gc ~config ~pages:16 () in
  Gc.set_auto_collect gc false;
  blacklist_everything gc;
  let a = Gc.allocate gc 16 in
  check bool "relax-black rung rescued the request" true (Gc.is_allocated gc a);
  check bool "rung counted" true ((Gc.stats gc).Stats.ladder_relax_black > 0);
  check bool "override audited" true (Blacklist.overridden (Gc.blacklist gc) > 0)

(* The acceptance scenario: a large object starved by the blacklist under
   the strict [Anywhere] regime is placed by the first-page-only
   relaxation rung instead of raising. *)
let test_relaxation_rescues_large () =
  let config =
    {
      Config.default with
      Config.initial_pages = 16;
      full_gc_at_startup = false;
      relax_blacklist = true;
    }
  in
  let _, gc, _ = make_gc ~config ~pages:64 () in
  Gc.set_auto_collect gc false;
  (* every third page black: no 4-page run is wholly clean, but plenty of
     clean first pages remain *)
  let bl = Gc.blacklist gc in
  for i = 0 to Heap.n_pages (Gc.heap gc) - 1 do
    if i mod 3 = 1 then Blacklist.note bl i
  done;
  let a = Gc.allocate gc (4 * page) in
  check bool "placed by a relaxation rung" true (Gc.is_allocated gc a);
  let s = Gc.stats gc in
  check bool "first-page rung used" true (s.Stats.ladder_relax_first_page > 0);
  check int "full relaxation not needed" 0 s.Stats.ladder_relax_black;
  check bool "overrides audited for the black tail pages" true
    (Blacklist.overridden bl > 0);
  check int "heap verifies clean" 0 (List.length (Verify.check gc))

let test_oom_hook_last_chance () =
  let config = { Config.default with Config.initial_pages = 8 } in
  let _, gc, globals = make_gc ~config ~pages:8 () in
  let a = Gc.allocate gc (6 * page) in
  set_slot globals 0 (Addr.to_int a);
  let hook_called = ref 0 in
  Gc.set_oom_hook gc
    (Some
       (fun bytes ->
         incr hook_called;
         check int "hook sees the request size" (6 * page) bytes;
         (* the mutator drops its cache and lets the ladder try again *)
         set_slot globals 0 0;
         Gc.collect gc;
         true));
  let b = Gc.allocate gc (6 * page) in
  check bool "hook rescue succeeded" true (Gc.is_allocated gc b);
  check int "hook called once" 1 !hook_called;
  check int "rung counted" 1 (Gc.stats gc).Stats.ladder_oom_hooks

(* --- faults absorbed by the ladder ---------------------------------- *)

let test_ladder_absorbs_commit_fault () =
  let config = { Config.default with Config.initial_pages = 2 } in
  let mem, gc, _ = make_gc ~config ~pages:32 () in
  Mem.set_fault_plan mem (Some (Mem.Fault.plan ~countdown:1 ()));
  (* the very first commit (for this 4-page object) faults; the ladder
     backs off, retries, and succeeds once the one-shot plan is spent *)
  let a = Gc.allocate gc (4 * page) in
  check bool "allocation survived the fault" true (Gc.is_allocated gc a);
  check bool "fault counted in stats" true ((Gc.stats gc).Stats.commit_faults > 0);
  check int "post-fault heap verifies clean" 0 (List.length (Verify.check_after_fault gc))

let test_check_after_fault_on_healthy_heap () =
  let config = { Config.default with Config.initial_pages = 8 } in
  let _, gc, globals = make_gc ~config ~pages:16 () in
  for i = 0 to 40 do
    let a = Gc.allocate gc (8 + (8 * (i mod 5))) in
    if i mod 3 = 0 then set_slot globals (i mod 64) (Addr.to_int a)
  done;
  Gc.collect gc;
  check int "no findings on a healthy heap" 0 (List.length (Verify.check_after_fault gc))

(* --- read/write fault boundary -------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_read_fault_typed () =
  let mem = Mem.create () in
  let seg =
    Mem.map mem ~name:"data" ~kind:Segment.Static_data ~base:(Addr.of_int 0x8000) ~size:0x1000
  in
  Segment.write_word seg (Addr.of_int 0x8000) 0xABCD;
  Mem.set_fault_plan mem (Some (Mem.Fault.plan ~countdown:2 ~target:Mem.Fault.Reads ()));
  check int "1st read ok" 0xABCD (Mem.read_word mem (Addr.of_int 0x8000));
  (match Mem.read_word mem (Addr.of_int 0x8000) with
  | (_ : int) -> Alcotest.fail "second read should fault"
  | exception Mem.Read_fault { value; reason = Mem.Fault.Countdown; _ } ->
      check int "faulted read reports the poison word" Mem.poison_word value);
  (* ECC-style: transient, the memory itself is intact *)
  check int "3rd read sees the original word" 0xABCD (Mem.read_word mem (Addr.of_int 0x8000));
  (* a Reads-target plan must not touch the commit boundary *)
  Mem.commit mem ~addr:(Addr.of_int 0x8000) ~bytes:page;
  let p = Option.get (Mem.fault_plan mem) in
  check int "read fault counted on the plan" 1 (Mem.Fault.read_faults p);
  check int "no write faults" 0 (Mem.Fault.write_faults p)

let test_write_fault_store_lost () =
  let mem = Mem.create () in
  let seg =
    Mem.map mem ~name:"data" ~kind:Segment.Static_data ~base:(Addr.of_int 0x8000) ~size:0x1000
  in
  Segment.write_word seg (Addr.of_int 0x8000) 7;
  Mem.set_fault_plan mem (Some (Mem.Fault.plan ~countdown:1 ~target:Mem.Fault.Writes ()));
  (match Mem.write_word mem (Addr.of_int 0x8000) 99 with
  | () -> Alcotest.fail "first write should fault"
  | exception Mem.Write_fault { bytes; reason = Mem.Fault.Countdown; _ } ->
      check int "fault names the store width" 4 bytes);
  check int "the faulted store did not land" 7 (Segment.read_word seg (Addr.of_int 0x8000));
  Mem.write_word mem (Addr.of_int 0x8000) 99;
  check int "plan spent, store lands" 99 (Segment.read_word seg (Addr.of_int 0x8000))

let test_decay_poisons_and_persists () =
  let mem = Mem.create () in
  let seg =
    Mem.map mem ~name:"data" ~kind:Segment.Static_data ~base:(Addr.of_int 0x8000) ~size:0x1000
  in
  Segment.write_word seg (Addr.of_int 0x8010) 0x1234;
  let plan = Mem.Fault.plan ~countdown:1 ~target:Mem.Fault.Reads ~decay_bytes:64 () in
  Mem.set_fault_plan mem (Some plan);
  (match Mem.read_word mem (Addr.of_int 0x8010) with
  | (_ : int) -> Alcotest.fail "tripped read should fault"
  | exception Mem.Read_fault _ -> ());
  (* the aligned 64-byte region is physically poisoned... *)
  check int "decayed bytes recorded" 64 (Mem.Fault.decayed_bytes plan);
  check int "mapped bytes poisoned" Mem.poison_word (Segment.read_word seg (Addr.of_int 0x8000));
  check bool "range query sees the decay" true
    (Mem.range_decayed mem (Addr.of_int 0x803C) ~bytes:4);
  check bool "outside the region is intact" false
    (Mem.range_decayed mem (Addr.of_int 0x8040) ~bytes:4);
  (* ...and every further guarded access there reports Decayed, even
     though the countdown is long spent *)
  (match Mem.read_word mem (Addr.of_int 0x8020) with
  | (_ : int) -> Alcotest.fail "decayed region must keep faulting"
  | exception Mem.Read_fault { reason = Mem.Fault.Decayed; _ } -> ());
  (* removing the plan ends the faulting; the poison stays as plain data *)
  Mem.set_fault_plan mem None;
  check int "unguarded read returns the poison" Mem.poison_word
    (Mem.read_word mem (Addr.of_int 0x8010))

let test_mark_survives_read_faults () =
  let config = { Config.default with Config.initial_pages = 8 } in
  let mem, gc, globals = make_gc ~config ~pages:32 () in
  (* a live chain the marker must traverse *)
  let head = ref 0 in
  for _ = 1 to 200 do
    let a = Gc.allocate gc 16 in
    Gc.set_field gc a 0 !head;
    head := Addr.to_int a
  done;
  set_slot globals 0 !head;
  Mem.set_fault_plan mem
    (Some (Mem.Fault.plan ~countdown:50 ~rearm:true ~target:Mem.Fault.Reads ()));
  Gc.collect gc;
  Mem.set_fault_plan mem None;
  let s = Gc.stats gc in
  check bool "read faults hit the scan" true (s.Stats.read_faults > 0);
  check bool "each was downgraded, not fatal" true
    (s.Stats.mark_downgrades >= s.Stats.read_faults);
  check int "heap coherent after the faulted collection" 0
    (List.length (Verify.check_after_fault gc));
  (* a fault-free collection fully restores the live set *)
  Gc.collect gc;
  check bool "chain head still live" true (Gc.is_allocated gc (Addr.of_int !head))

let test_write_decay_quarantines_and_retries () =
  let config = { Config.default with Config.initial_pages = 4 } in
  let mem, gc, _ = make_gc ~config ~pages:16 () in
  Mem.set_fault_plan mem
    (Some (Mem.Fault.plan ~countdown:1 ~target:Mem.Fault.Writes ~decay_bytes:512 ()));
  (* the first zero-on-alloc write decays its region; the allocator must
     quarantine the slot and serve the request from healthy memory *)
  let a = Gc.allocate gc 16 in
  check bool "allocation survived the decay" true (Gc.is_allocated gc a);
  check bool "slot came from outside the decayed region" false
    (Mem.range_decayed mem a ~bytes:16);
  let s = Gc.stats gc in
  check bool "write fault counted" true (s.Stats.write_faults > 0);
  check bool "retry counted" true (s.Stats.decay_retries > 0);
  check bool "page quarantined" true (s.Stats.pages_decayed > 0);
  check int "quarantine left the heap coherent" 0 (List.length (Verify.check_after_fault gc));
  (* quarantined pages stay off every placement path *)
  Mem.set_fault_plan mem None;
  for _ = 1 to 50 do
    let b = Gc.allocate gc 16 in
    check bool "no allocation lands on decayed memory" false (Mem.range_decayed mem b ~bytes:16)
  done

let test_memory_decayed_diagnosis () =
  let config = { Config.default with Config.initial_pages = 2; min_expand_pages = 1 } in
  let mem, gc, _ = make_gc ~config ~pages:4 () in
  (* every write decays a whole page: each attempt quarantines another
     page until the ladder runs completely dry *)
  Mem.set_fault_plan mem
    (Some
       (Mem.Fault.plan ~probability:(1.0, 7) ~target:Mem.Fault.Writes ~decay_bytes:page ()));
  (match
     let rec go n = if n = 0 then None else
       match Gc.allocate gc 16 with
       | (_ : Addr.t) -> go (n - 1)
       | exception Gc.Out_of_memory d -> Some d
     in
     go 64
   with
  | None -> Alcotest.fail "4 decaying pages cannot keep serving allocations"
  | Some d ->
      check bool "diagnosed as decayed memory" true d.Gc.memory_decayed;
      check bool "quarantined pages counted" true (d.Gc.pages_decayed > 0);
      check bool "message names the decay" true (contains (Gc.oom_message d) "memory-decayed"));
  (* the heap is still coherent and, with the plan lifted, usable *)
  Mem.set_fault_plan mem None;
  check int "coherent after ladder death" 0 (List.length (Verify.check_after_fault gc))

let test_explicit_absorbs_commit_fault () =
  let mem = Mem.create () in
  let e =
    Cgc.Explicit.create mem ~base:(Addr.of_int 0x400000) ~max_bytes:(16 * page) ()
  in
  let a = Cgc.Explicit.malloc e 16 in
  Mem.set_fault_plan mem (Some (Mem.Fault.plan ~countdown:1 ()));
  (* force page acquisition: a large object always commits fresh pages *)
  (match Cgc.Explicit.malloc e (4 * page) with
  | (_ : Addr.t) -> Alcotest.fail "the commit fault must surface"
  | exception Cgc.Explicit.Out_of_memory msg ->
      check bool "typed, with the injected reason" true (contains msg "refused the commit")
  | exception Mem.Commit_failed _ ->
      Alcotest.fail "untyped Commit_failed escaped the explicit allocator");
  Mem.set_fault_plan mem None;
  check bool "allocator still coherent" true (Cgc.Explicit.is_allocated e a);
  check int "heap-level audit clean" 0
    (List.length (Verify.check_heap (Cgc.Explicit.heap e)))

let test_explicit_field_faults_typed () =
  let mem = Mem.create () in
  let e = Cgc.Explicit.create mem ~base:(Addr.of_int 0x400000) ~max_bytes:(16 * page) () in
  let a = Cgc.Explicit.malloc e 16 in
  Cgc.Explicit.set_field e a 0 42;
  Mem.set_fault_plan mem (Some (Mem.Fault.plan ~countdown:1 ~target:Mem.Fault.Access ()));
  (match Cgc.Explicit.get_field e a 0 with
  | (_ : int) -> Alcotest.fail "guarded read should fault"
  | exception Mem.Read_fault _ -> ());
  check int "field intact after the transient fault" 42 (Cgc.Explicit.get_field e a 0)

let test_generational_dirty_only_after_store () =
  let config = { Config.default with Config.initial_pages = 8 } in
  let mem, gc, globals = make_gc ~config ~pages:32 () in
  Gc.set_auto_collect gc false;
  let g = Cgc.Generational.create gc in
  let a = Cgc.Generational.allocate g 16 in
  set_slot globals 0 (Addr.to_int a);
  (* two minor collections promote the object's page; promotion leaves
     the page dirty (its pre-promotion stores were never barriered), so
     a third minor rescans and settles it *)
  Cgc.Generational.minor g;
  Cgc.Generational.minor g;
  check bool "object promoted" true (Cgc.Generational.is_old g a);
  Cgc.Generational.minor g;
  check (Alcotest.list int) "no dirty pages before any store" []
    (Cgc.Generational.dirty_pages g);
  (* the regression: a faulted store must NOT mark the page dirty *)
  Mem.set_fault_plan mem
    (Some (Mem.Fault.plan ~probability:(1.0, 3) ~target:Mem.Fault.Writes ()));
  (match Cgc.Generational.set_field g a 0 (Addr.to_int a) with
  | () -> Alcotest.fail "the store should fault"
  | exception Mem.Write_fault _ -> ());
  check (Alcotest.list int) "faulted store left the dirty set empty" []
    (Cgc.Generational.dirty_pages g);
  (* a successful store does set the bit *)
  Mem.set_fault_plan mem None;
  Cgc.Generational.set_field g a 0 (Addr.to_int a);
  check bool "successful store dirtied the page" true (Cgc.Generational.dirty_pages g <> [])

let test_already_parked_typed () =
  let m = make_machine () in
  Machine.park m ~words:16;
  (match Machine.park m ~words:8 with
  | () -> Alcotest.fail "double park must be rejected"
  | exception Machine.Already_parked _ -> ());
  check bool "machine still parked" true (Machine.parked m);
  Machine.unpark m;
  check bool "and still usable" false (Machine.parked m)

let () =
  Alcotest.run "resilience"
    [
      ( "fault plans",
        [
          Alcotest.test_case "countdown fires exactly" `Quick test_countdown_exact;
          Alcotest.test_case "countdown rearms" `Quick test_countdown_rearm;
          Alcotest.test_case "quota charges and refunds" `Quick test_quota_and_refund;
          Alcotest.test_case "address predicate" `Quick test_addr_predicate;
        ] );
      ( "typed exhaustion",
        [
          Alcotest.test_case "address space exhausted" `Quick test_address_space_exhausted;
          Alcotest.test_case "stack overflow on call" `Quick test_stack_overflow_on_call;
          Alcotest.test_case "stack overflow on park" `Quick test_stack_overflow_on_park;
        ] );
      ( "oom diagnostics",
        [
          Alcotest.test_case "small-object exhaustion" `Quick test_small_exhaustion;
          Alcotest.test_case "large-object exhaustion" `Quick test_large_exhaustion;
          Alcotest.test_case "blacklist starvation diagnosed" `Quick test_blacklist_starved_small;
        ] );
      ( "escalation ladder",
        [
          Alcotest.test_case "relaxation rescues small requests" `Quick
            test_relaxation_rescues_small;
          Alcotest.test_case "first-page relaxation rescues large requests" `Quick
            test_relaxation_rescues_large;
          Alcotest.test_case "oom hook gets a last chance" `Quick test_oom_hook_last_chance;
          Alcotest.test_case "ladder absorbs an injected commit fault" `Quick
            test_ladder_absorbs_commit_fault;
          Alcotest.test_case "check_after_fault quiet on healthy heap" `Quick
            test_check_after_fault_on_healthy_heap;
        ] );
      ( "read/write faults",
        [
          Alcotest.test_case "read fault is typed and transient" `Quick test_read_fault_typed;
          Alcotest.test_case "write fault loses the store" `Quick test_write_fault_store_lost;
          Alcotest.test_case "decay poisons and persists" `Quick test_decay_poisons_and_persists;
          Alcotest.test_case "marker survives read faults" `Quick test_mark_survives_read_faults;
          Alcotest.test_case "write decay quarantines and retries" `Quick
            test_write_decay_quarantines_and_retries;
          Alcotest.test_case "oom diagnosis: memory decayed" `Quick test_memory_decayed_diagnosis;
          Alcotest.test_case "explicit absorbs commit faults" `Quick
            test_explicit_absorbs_commit_fault;
          Alcotest.test_case "explicit field faults are typed" `Quick
            test_explicit_field_faults_typed;
          Alcotest.test_case "generational dirty bit only after store" `Quick
            test_generational_dirty_only_after_store;
          Alcotest.test_case "park twice is typed" `Quick test_already_parked_typed;
        ] );
    ]
