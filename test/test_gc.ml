(* Unit tests for the conservative collector core (lib/core). *)

open Cgc_vm
module Gc = Cgc.Gc
module Config = Cgc.Config
module Page = Cgc.Page
module Heap = Cgc.Heap
module Mark = Cgc.Mark
module Blacklist = Cgc.Blacklist
module Free_list = Cgc.Free_list
module Size_class = Cgc.Size_class
module Stats = Cgc.Stats
module Explicit = Cgc.Explicit
module Precise = Cgc.Precise
module Type_desc = Cgc.Type_desc
module Finalize = Cgc.Finalize

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let heap_base = Addr.of_int 0x100000

(* A standard environment: an address space with a root area segment at
   0x10000 and a collector with automatic collection turned off so tests
   control exactly when collections happen. *)
let make_env ?(config = Config.default) ?(heap_kb = 512) () =
  let mem = Mem.create () in
  let globals = Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000 in
  let gc = Gc.create ~config mem ~base:heap_base ~max_bytes:(heap_kb * 1024) () in
  Gc.set_auto_collect gc false;
  Gc.add_static_root gc ~lo:(Segment.base globals) ~hi:(Segment.limit globals) ~label:"globals";
  (mem, globals, gc)

let slot globals i = Addr.add (Segment.base globals) (4 * i)
let set_slot globals i v = Segment.write_word globals (slot globals i) v
let _get_slot globals i = Segment.read_word globals (slot globals i)

(* --- size classes --- *)

let test_size_class_mapping () =
  let sc = Size_class.create Config.default in
  check int "granule" 4 (Size_class.granule sc);
  check int "1 byte -> 1 granule" 1 (Size_class.granules_for sc 1);
  check int "4 bytes -> 1 granule" 1 (Size_class.granules_for sc 4);
  check int "5 bytes -> 2 granules" 2 (Size_class.granules_for sc 5);
  check int "max small" 2048 (Size_class.max_small_bytes sc);
  check bool "2048 small" true (Size_class.is_small sc 2048);
  check bool "2049 large" false (Size_class.is_small sc 2049);
  check int "cons cells per page" 512 (Size_class.objects_per_page sc ~granules:2 ~first_offset:0);
  check int "first offset eats one slot" 511
    (Size_class.objects_per_page sc ~granules:2 ~first_offset:8)

(* --- heap --- *)

let test_heap_geometry () =
  let mem = Mem.create () in
  let heap = Heap.create mem ~config:Config.default ~base:heap_base ~max_bytes:(256 * 1024) in
  check int "pages reserved" 64 (Heap.n_pages heap);
  check int "initial committed" 64 (Heap.committed_pages heap);
  check bool "contains base" true (Heap.contains heap heap_base);
  check bool "excludes limit" false (Heap.contains heap (Heap.limit_reserved heap));
  check int "page index" 1 (Heap.page_index heap (Addr.add heap_base 4096));
  check int "page addr round trip" (Addr.to_int (Addr.add heap_base 8192))
    (Addr.to_int (Heap.page_addr heap 2))

let test_heap_commit () =
  let config = { Config.default with Config.initial_pages = 2 } in
  let mem = Mem.create () in
  let heap = Heap.create mem ~config ~base:heap_base ~max_bytes:(64 * 1024) in
  check int "committed" 2 (Heap.committed_pages heap);
  check bool "commit ok" true (Heap.commit_through heap 5);
  check int "now committed" 6 (Heap.committed_pages heap);
  check bool "page 5 free" true (Heap.page heap 5 = Page.Free);
  check bool "cannot exceed reservation" false (Heap.commit_through heap 1000)

let test_heap_find_free_run () =
  let config = { Config.default with Config.initial_pages = 4 } in
  let mem = Mem.create () in
  let heap = Heap.create mem ~config ~base:heap_base ~max_bytes:(64 * 1024) in
  (* occupy page 1 so a 3-run must start at 2 *)
  Heap.set_page heap 1 (Page.make_large ~n_pages:1 ~object_bytes:100 ~pointer_free:false);
  check (Alcotest.option int) "run skips occupied" (Some 2)
    (Heap.find_free_run heap ~n:3 ~ok:(fun _ -> true));
  check (Alcotest.option int) "run honours ok" (Some 3)
    (Heap.find_free_run heap ~n:3 ~ok:(fun i -> i <> 2))

(* --- basic allocation --- *)

let test_allocate_basics () =
  let _, _, gc = make_env () in
  let a = Gc.allocate gc 8 in
  let b = Gc.allocate gc 8 in
  check bool "distinct objects" false (Addr.equal a b);
  check bool "a allocated" true (Gc.is_allocated gc a);
  check bool "b allocated" true (Gc.is_allocated gc b);
  check (Alcotest.option int) "size rounded to granules" (Some 8) (Gc.object_size gc a);
  check int "zeroed" 0 (Gc.get_field gc a 0);
  check (Alcotest.option int) "interior resolves to base" (Some (Addr.to_int a))
    (Option.map Addr.to_int (Gc.find_object gc (Addr.add a 4)))

let test_allocate_size_rounding () =
  let _, _, gc = make_env () in
  let a = Gc.allocate gc 5 in
  check (Alcotest.option int) "5 bytes -> 8" (Some 8) (Gc.object_size gc a);
  let b = Gc.allocate gc 1 in
  check (Alcotest.option int) "1 byte -> 4" (Some 4) (Gc.object_size gc b)

let test_allocate_rejects_nonpositive () =
  let _, _, gc = make_env () in
  check bool "zero rejected" true
    (try
       ignore (Gc.allocate gc 0);
       false
     with Invalid_argument _ -> true)

let test_field_round_trip () =
  let _, _, gc = make_env () in
  let a = Gc.allocate gc 16 in
  Gc.set_field gc a 3 0xABCDEF01;
  check int "field round trip" 0xABCDEF01 (Gc.get_field gc a 3)

let test_boundary_sizes () =
  let _, globals, gc = make_env ~heap_kb:1024 () in
  (* largest small object and smallest large object *)
  let small = Gc.allocate gc 2048 in
  let large = Gc.allocate gc 2049 in
  check (Alcotest.option int) "2048 stays small" (Some 2048) (Gc.object_size gc small);
  check (Alcotest.option int) "2049 becomes large (exact size)" (Some 2049) (Gc.object_size gc large);
  check bool "large is page aligned" true (Addr.is_aligned large 4096);
  check bool "small is not page sized" false (Addr.is_aligned small 4096 && Gc.object_size gc small = Some 4096);
  (* exactly one page, and one byte beyond *)
  let page = Gc.allocate gc 4096 in
  let pages2 = Gc.allocate gc 4097 in
  set_slot globals 0 (Addr.to_int small);
  set_slot globals 1 (Addr.to_int large);
  set_slot globals 2 (Addr.to_int page);
  set_slot globals 3 (Addr.to_int pages2);
  Gc.collect gc;
  check bool "all boundary objects survive" true
    (Gc.is_allocated gc small && Gc.is_allocated gc large && Gc.is_allocated gc page
   && Gc.is_allocated gc pages2);
  check (Alcotest.list Alcotest.string) "invariants" [] (Cgc.Verify.check gc)

let test_many_classes_interleaved () =
  let _, globals, gc = make_env ~heap_kb:1024 () in
  (* interleave allocations across classes and kinds; then verify class
     integrity via object sizes *)
  let objs =
    List.init 300 (fun i ->
        let bytes = 4 + (4 * (i mod 13)) in
        let pointer_free = i mod 3 = 0 in
        let a = Gc.allocate ~pointer_free gc bytes in
        set_slot globals (i mod 200) (Addr.to_int a);
        (a, (bytes + 3) / 4 * 4))
  in
  List.iter
    (fun (a, expect) -> check (Alcotest.option int) "size preserved" (Some expect) (Gc.object_size gc a))
    objs;
  Gc.collect gc;
  check (Alcotest.list Alcotest.string) "invariants" [] (Cgc.Verify.check gc)

let test_config_validation () =
  let reject name config =
    check bool name true
      (try
         Config.validate config;
         false
       with Invalid_argument _ -> true)
  in
  reject "page size not a power of two" { Config.default with Config.page_size = 3000 };
  reject "page size too small" { Config.default with Config.page_size = 128 };
  reject "bad alignment" { Config.default with Config.alignment = 3 };
  reject "bad granule" { Config.default with Config.granule = 8 };
  reject "zero initial pages" { Config.default with Config.initial_pages = 0 };
  reject "zero divisor" { Config.default with Config.space_divisor = 0 };
  reject "tiny mark stack" { Config.default with Config.mark_stack_limit = Some 4 };
  reject "zero buckets" { Config.default with Config.blacklist_buckets = Some 0 };
  reject "zero watchdog budget" { Config.default with Config.mark_watchdog_budget = 0 };
  reject "negative watchdog budget" { Config.default with Config.mark_watchdog_budget = -3 };
  reject "zero quorum" { Config.default with Config.mark_quorum = 0 };
  reject "quorum above mark_jobs"
    { Config.default with Config.mark_jobs = 2; Config.mark_quorum = 3 };
  Config.validate { Config.default with Config.mark_jobs = 4; Config.mark_quorum = 4 };
  Config.validate Config.default

let test_pp_smoke () =
  (* the printers terminate and emit text *)
  let _, _, gc = make_env () in
  ignore (Gc.allocate gc 8);
  Gc.collect gc;
  let non_empty s = String.length s > 0 in
  check bool "config pp" true (non_empty (Format.asprintf "%a" Config.pp Config.default));
  check bool "stats pp" true (non_empty (Format.asprintf "%a" Stats.pp (Gc.stats gc)));
  check bool "gc pp" true (non_empty (Format.asprintf "%a" Gc.pp gc));
  check bool "heap pp" true (non_empty (Format.asprintf "%a" Heap.pp (Gc.heap gc)));
  check bool "blacklist pp" true (non_empty (Format.asprintf "%a" Blacklist.pp (Gc.blacklist gc)));
  check bool "page pp" true (non_empty (Format.asprintf "%a" Page.pp (Heap.page (Gc.heap gc) 0)))

(* --- reachability --- *)

let test_root_keeps_object_alive () =
  let _, globals, gc = make_env () in
  let a = Gc.allocate gc 8 in
  set_slot globals 0 (Addr.to_int a);
  Gc.collect gc;
  check bool "rooted object survives" true (Gc.is_allocated gc a)

let test_unreachable_object_collected () =
  let _, _, gc = make_env () in
  let a = Gc.allocate gc 8 in
  Gc.collect gc;
  check bool "unreachable object reclaimed" false (Gc.is_allocated gc a)

let test_transitive_reachability () =
  let _, globals, gc = make_env () in
  let b = Gc.allocate gc 8 in
  let a = Gc.allocate gc 8 in
  Gc.set_field gc a 0 (Addr.to_int b);
  set_slot globals 0 (Addr.to_int a);
  Gc.collect gc;
  check bool "a survives" true (Gc.is_allocated gc a);
  check bool "b survives via a" true (Gc.is_allocated gc b);
  (* break the link *)
  Gc.set_field gc a 0 0;
  Gc.collect gc;
  check bool "a still live" true (Gc.is_allocated gc a);
  check bool "b now reclaimed" false (Gc.is_allocated gc b)

let test_cycle_collected () =
  let _, globals, gc = make_env () in
  let a = Gc.allocate gc 8 in
  let b = Gc.allocate gc 8 in
  Gc.set_field gc a 0 (Addr.to_int b);
  Gc.set_field gc b 0 (Addr.to_int a);
  set_slot globals 0 (Addr.to_int a);
  Gc.collect gc;
  check bool "cycle live while rooted" true (Gc.is_allocated gc b);
  set_slot globals 0 0;
  Gc.collect gc;
  check bool "a of cycle reclaimed" false (Gc.is_allocated gc a);
  check bool "b of cycle reclaimed" false (Gc.is_allocated gc b)

let test_interior_pointer_retains () =
  let _, globals, gc = make_env () in
  let a = Gc.allocate gc 32 in
  set_slot globals 0 (Addr.to_int (Addr.add a 12));
  Gc.collect gc;
  check bool "interior pointer retains" true (Gc.is_allocated gc a)

let test_interior_pointer_ignored_when_disabled () =
  let config = { Config.default with Config.interior_pointers = false } in
  let _, globals, gc = make_env ~config () in
  let a = Gc.allocate gc 32 in
  set_slot globals 0 (Addr.to_int (Addr.add a 12));
  Gc.collect gc;
  check bool "interior pointer does not retain" false (Gc.is_allocated gc a);
  (* but the base pointer still does *)
  let b = Gc.allocate gc 32 in
  set_slot globals 1 (Addr.to_int b);
  Gc.collect gc;
  check bool "base pointer retains" true (Gc.is_allocated gc b)

let test_pointer_free_not_scanned () =
  let _, globals, gc = make_env () in
  let target = Gc.allocate gc 8 in
  let atomic = Gc.allocate ~pointer_free:true gc 8 in
  Gc.set_field gc atomic 0 (Addr.to_int target);
  set_slot globals 0 (Addr.to_int atomic);
  Gc.collect gc;
  check bool "atomic object survives" true (Gc.is_allocated gc atomic);
  check bool "its contents are not traced" false (Gc.is_allocated gc target)

let test_normal_object_is_scanned () =
  let _, globals, gc = make_env () in
  let target = Gc.allocate gc 8 in
  let holder = Gc.allocate gc 8 in
  Gc.set_field gc holder 0 (Addr.to_int target);
  set_slot globals 0 (Addr.to_int holder);
  Gc.collect gc;
  check bool "traced through ordinary object" true (Gc.is_allocated gc target)

let test_register_roots () =
  let _, _, gc = make_env () in
  let regs = Array.make 4 0 in
  Gc.add_register_roots gc ~label:"regs" (fun () -> regs);
  let a = Gc.allocate gc 8 in
  regs.(2) <- Addr.to_int a;
  Gc.collect gc;
  check bool "register value is a root" true (Gc.is_allocated gc a);
  regs.(2) <- 0;
  Gc.collect gc;
  check bool "cleared register frees object" false (Gc.is_allocated gc a)

let test_dynamic_roots () =
  let mem = Mem.create () in
  let scratch = Mem.map mem ~name:"scratch" ~kind:Segment.Stack ~base:(Addr.of_int 0x20000) ~size:0x1000 in
  let gc = Gc.create mem ~base:heap_base ~max_bytes:(256 * 1024) () in
  Gc.set_auto_collect gc false;
  let hi = ref (Segment.base scratch) in
  Gc.add_dynamic_roots gc ~label:"window" (fun () ->
      [ { Cgc.Roots.lo = Segment.base scratch; hi = !hi; label = "window" } ]);
  let a = Gc.allocate gc 8 in
  Segment.write_word scratch (Segment.base scratch) (Addr.to_int a);
  (* window currently empty: value not seen *)
  Gc.collect gc;
  check bool "outside window -> freed" false (Gc.is_allocated gc a);
  let b = Gc.allocate gc 8 in
  Segment.write_word scratch (Segment.base scratch) (Addr.to_int b);
  hi := Addr.add (Segment.base scratch) 8;
  Gc.collect gc;
  check bool "inside window -> survives" true (Gc.is_allocated gc b)

(* --- alignment --- *)

let test_unaligned_root_requires_alignment_1 () =
  let run alignment =
    let config = { Config.default with Config.alignment = alignment } in
    let _, globals, gc = make_env ~config () in
    let a = Gc.allocate gc 8 in
    (* plant the pointer at an odd offset in the root area *)
    let where = Addr.add (Segment.base globals) 13 in
    Segment.write_word globals where (Addr.to_int a);
    Gc.collect gc;
    Gc.is_allocated gc a
  in
  check bool "alignment 4 misses it" false (run 4);
  check bool "alignment 1 finds it" true (run 1)

let test_halfword_alignment_2 () =
  let run alignment =
    let config = { Config.default with Config.alignment = alignment } in
    let _, globals, gc = make_env ~config () in
    let a = Gc.allocate gc 8 in
    let where = Addr.add (Segment.base globals) 10 in
    Segment.write_word globals where (Addr.to_int a);
    Gc.collect gc;
    Gc.is_allocated gc a
  in
  check bool "alignment 4 misses halfword offset" false (run 4);
  check bool "alignment 2 finds it" true (run 2)

(* --- large objects --- *)

let test_large_object_lifecycle () =
  let _, globals, gc = make_env () in
  let size = 3 * 4096 in
  let a = Gc.allocate gc size in
  check (Alcotest.option int) "size" (Some size) (Gc.object_size gc a);
  check bool "page aligned" true (Addr.is_aligned a 4096);
  set_slot globals 0 (Addr.to_int a);
  Gc.collect gc;
  check bool "rooted large object survives" true (Gc.is_allocated gc a);
  set_slot globals 0 0;
  Gc.collect gc;
  check bool "dropped large object reclaimed" false (Gc.is_allocated gc a)

let test_large_tail_pointer () =
  let run large_validity =
    let config = { Config.default with Config.large_validity } in
    let _, globals, gc = make_env ~config () in
    let a = Gc.allocate gc (3 * 4096) in
    (* a pointer into the second page *)
    set_slot globals 0 (Addr.to_int (Addr.add a 5000));
    Gc.collect gc;
    Gc.is_allocated gc a
  in
  check bool "anywhere: tail pointer retains" true (run Config.Anywhere);
  check bool "first-page-only: tail pointer does not" false (run Config.First_page_only)

let test_large_first_page_interior () =
  let config = { Config.default with Config.large_validity = Config.First_page_only } in
  let _, globals, gc = make_env ~config () in
  let a = Gc.allocate gc (3 * 4096) in
  set_slot globals 0 (Addr.to_int (Addr.add a 100));
  Gc.collect gc;
  check bool "pointer into first page retains" true (Gc.is_allocated gc a)

let test_large_reuse_after_free () =
  let config = { Config.default with Config.initial_pages = 4 } in
  let _, _, gc = make_env ~config ~heap_kb:64 () in
  (* allocate and drop several large objects; the reserve (16 pages)
     only survives if pages are actually recycled *)
  for _ = 1 to 20 do
    let a = Gc.allocate gc (4 * 4096) in
    ignore a;
    Gc.collect gc
  done;
  check bool "large pages recycled" true (Heap.committed_pages (Gc.heap gc) <= 16)

(* --- finalization --- *)

let test_finalizer_queue () =
  let _, globals, gc = make_env () in
  let a = Gc.allocate ~finalizer:"list-1" gc 8 in
  set_slot globals 0 (Addr.to_int a);
  Gc.collect gc;
  check (Alcotest.list (Alcotest.pair int Alcotest.string)) "nothing finalized while live" []
    (List.map (fun (a, t) -> (Addr.to_int a, t)) (Gc.drain_finalized gc));
  set_slot globals 0 0;
  Gc.collect gc;
  check
    (Alcotest.list (Alcotest.pair int Alcotest.string))
    "finalized on reclamation"
    [ (Addr.to_int a, "list-1") ]
    (List.map (fun (a, t) -> (Addr.to_int a, t)) (Gc.drain_finalized gc))

let test_finalizer_registry () =
  let f = Finalize.create () in
  Finalize.register f (Addr.of_int 100) ~token:"x";
  Finalize.register f (Addr.of_int 200) ~token:"y";
  check int "registered" 2 (Finalize.registered_count f);
  Finalize.unregister f (Addr.of_int 100);
  check bool "unregistered" false (Finalize.is_registered f (Addr.of_int 100));
  Finalize.on_reclaimed f (Addr.of_int 100);
  check int "unregistered not queued" 0 (Finalize.queue_length f);
  Finalize.on_reclaimed f (Addr.of_int 200);
  check int "queued" 1 (Finalize.queue_length f);
  check
    (Alcotest.list (Alcotest.pair int Alcotest.string))
    "drain" [ (200, "y") ]
    (List.map (fun (a, t) -> (Addr.to_int a, t)) (Finalize.drain f));
  check int "drained" 0 (Finalize.queue_length f)

(* --- blacklisting --- *)

let test_blacklist_unit () =
  let b = Blacklist.create ~n_pages:16 ~refresh:true () in
  Blacklist.note b 3;
  check bool "noted" true (Blacklist.is_black b 3);
  Blacklist.begin_cycle b;
  check bool "survives one cycle" true (Blacklist.is_black b 3);
  Blacklist.begin_cycle b;
  check bool "ages out after two cycles" false (Blacklist.is_black b 3);
  let sticky = Blacklist.create ~n_pages:16 ~refresh:false () in
  Blacklist.note sticky 3;
  Blacklist.begin_cycle sticky;
  Blacklist.begin_cycle sticky;
  check bool "sticky entries persist" true (Blacklist.is_black sticky 3)

let test_blacklist_avoids_false_ref_page () =
  let config = { Config.default with Config.initial_pages = 8 } in
  let _, globals, gc = make_env ~config ~heap_kb:64 () in
  (* plant a false reference into committed-but-empty heap page 4 *)
  let target_page = 4 in
  let poison = Addr.add (Heap.page_addr (Gc.heap gc) target_page) 8 in
  set_slot globals 0 (Addr.to_int poison);
  Gc.collect gc;
  check bool "page is blacklisted" true (Blacklist.is_black (Gc.blacklist gc) target_page);
  (* now allocate enough pointer-bearing objects to need several pages *)
  let heap = Gc.heap gc in
  for _ = 1 to 3000 do
    let a = Gc.allocate gc 8 in
    check bool "never lands on the blacklisted page" false
      (Heap.page_index heap a = target_page)
  done

let test_blacklist_covers_uncommitted_region () =
  (* The startup-collection scenario: a false reference to memory the
     heap will only later grow into must still be blacklisted. *)
  let config = { Config.default with Config.initial_pages = 1 } in
  let _, globals, gc = make_env ~config ~heap_kb:64 () in
  let future_page = 10 in
  let poison = Addr.add (Heap.page_addr (Gc.heap gc) future_page) 4 in
  set_slot globals 0 (Addr.to_int poison);
  Gc.collect gc;
  check bool "future page blacklisted" true (Blacklist.is_black (Gc.blacklist gc) future_page);
  (* let the collector run normally while churning through garbage; the
     standing false reference must keep the page off limits *)
  Gc.set_auto_collect gc true;
  let heap = Gc.heap gc in
  for _ = 1 to 12000 do
    let a = Gc.allocate gc 8 in
    check bool "growth skips poisoned page" false (Heap.page_index heap a = future_page)
  done

let test_atomic_allowed_on_black_pages () =
  let config = { Config.default with Config.initial_pages = 2 } in
  let _, globals, gc = make_env ~config ~heap_kb:16 () in
  (* blacklist every page except page 0 (where the two initial pages
     will serve pointer-free data); then atomic allocation must still
     succeed by using black pages *)
  let heap = Gc.heap gc in
  for p = 0 to Heap.n_pages heap - 1 do
    set_slot globals p (Addr.to_int (Addr.add (Heap.page_addr heap p) 12))
  done;
  Gc.collect gc;
  check bool "whole heap blacklisted" true (Blacklist.count (Gc.blacklist gc) >= Heap.n_pages heap - 1);
  let a = Gc.allocate ~pointer_free:true gc 8 in
  check bool "atomic allocation succeeded on black page" true (Gc.is_allocated gc a);
  (* pointer-bearing allocation, by contrast, must fail: every page is black *)
  check bool "pointer-bearing allocation fails" true
    (try
       (* enough to exhaust any page acquired before the blacklist filled *)
       for _ = 1 to 10000 do
         ignore (Gc.allocate gc 8)
       done;
       false
     with Gc.Out_of_memory _ -> true)

let test_blacklist_off_allows_false_retention () =
  (* End-to-end contrast of table 1: with blacklisting off, a false
     reference planted before allocation retains a garbage object. *)
  let run blacklisting =
    let config = { Config.default with Config.blacklisting; initial_pages = 2 } in
    let _, globals, gc = make_env ~config ~heap_kb:64 () in
    let heap = Gc.heap gc in
    (* poison one page that allocation will soon reach *)
    let page = 3 in
    let poison = Addr.add (Heap.page_addr heap page) 16 in
    set_slot globals 0 (Addr.to_int poison);
    Gc.collect gc;
    (* allocate garbage until that page gets used (or not) *)
    let used = ref false in
    (for _ = 1 to 4000 do
       let a = Gc.allocate gc 8 in
       if Heap.page_index heap a = page then used := true
     done);
    Gc.collect gc;
    if not !used then `Never_used
    else if Gc.find_object gc poison <> None then `Retained
    else `Collected
  in
  check bool "without blacklisting the poisoned page retains garbage" true
    (run false = `Retained);
  check bool "with blacklisting the page is never used" true (run true = `Never_used)

let test_blacklist_refresh_releases_pages () =
  let config = { Config.default with Config.initial_pages = 8 } in
  let _, globals, gc = make_env ~config ~heap_kb:64 () in
  set_slot globals 0 (Addr.to_int (Addr.add (Heap.page_addr (Gc.heap gc) 5) 4));
  Gc.collect gc;
  check bool "blacklisted while reference stands" true (Blacklist.is_black (Gc.blacklist gc) 5);
  set_slot globals 0 0;
  Gc.collect gc;
  Gc.collect gc;
  check bool "released after the reference disappears" false
    (Blacklist.is_black (Gc.blacklist gc) 5)

(* --- classification --- *)

let test_blacklist_hashed () =
  let b = Blacklist.create ~representation:(Blacklist.Hashed 8) ~n_pages:256 ~refresh:false () in
  Blacklist.note b 13;
  check bool "noted page black" true (Blacklist.is_black b 13);
  (* some other page shares the bucket: collision blacklists it too *)
  let collided = ref 0 in
  for p = 0 to 255 do
    if p <> 13 && Blacklist.is_black b p then incr collided
  done;
  check bool "collisions exist with 8 buckets over 256 pages" true (!collided > 0);
  check bool "but most pages stay clean" true (!collided < 100);
  check int "count includes collision victims" (!collided + 1) (Blacklist.count b)

let test_blacklist_hashed_end_to_end () =
  (* the hashed variant must still prevent false retention *)
  let config =
    { Config.default with Config.initial_pages = 8; blacklist_buckets = Some 64 }
  in
  let _, globals, gc = make_env ~config ~heap_kb:128 () in
  let target_page = 4 in
  set_slot globals 0 (Addr.to_int (Addr.add (Heap.page_addr (Gc.heap gc) target_page) 8));
  Gc.collect gc;
  check bool "page black via hash" true (Blacklist.is_black (Gc.blacklist gc) target_page);
  for _ = 1 to 2000 do
    let a = Gc.allocate gc 8 in
    check bool "never on the hashed-black page" false
      (Heap.page_index (Gc.heap gc) a = target_page)
  done

let test_classify () =
  let _, _, gc = make_env () in
  let heap = Gc.heap gc in
  let config = Gc.config gc in
  let a = Gc.allocate gc 8 in
  (match Mark.classify heap config (Addr.to_int a) with
  | Mark.Valid { base; _ } -> check int "base pointer valid" (Addr.to_int a) (Addr.to_int base)
  | Mark.False_in_heap _ | Mark.Outside -> Alcotest.fail "expected Valid");
  (match Mark.classify heap config (Addr.to_int a + 4) with
  | Mark.Valid { base; _ } -> check int "interior resolves" (Addr.to_int a) (Addr.to_int base)
  | Mark.False_in_heap _ | Mark.Outside -> Alcotest.fail "expected Valid interior");
  (match Mark.classify heap config (Addr.to_int (Heap.page_addr heap (Heap.n_pages heap - 1))) with
  | Mark.False_in_heap _ -> ()
  | Mark.Valid _ | Mark.Outside -> Alcotest.fail "expected False_in_heap for reserved page");
  (match Mark.classify heap config 0x5000 with
  | Mark.Outside -> ()
  | Mark.Valid _ | Mark.False_in_heap _ -> Alcotest.fail "expected Outside below heap");
  match Mark.classify heap config (Addr.to_int (Heap.limit_reserved heap)) with
  | Mark.Outside -> ()
  | Mark.Valid _ | Mark.False_in_heap _ -> Alcotest.fail "expected Outside above heap"

let test_classify_freed_slot_is_false () =
  let _, _, gc = make_env () in
  let a = Gc.allocate gc 8 in
  Gc.collect gc;
  match Mark.classify (Gc.heap gc) (Gc.config gc) (Addr.to_int a) with
  | Mark.False_in_heap _ -> ()
  | Mark.Valid _ | Mark.Outside -> Alcotest.fail "freed slot must classify as false reference"

(* --- trailing zero avoidance --- *)

let test_avoid_trailing_zeros () =
  (* heap base 0x100000 has 20 trailing zeros; page 0 triggers the
     avoidance, page 1 (0x101000, 12 trailing zeros) does too at k=12,
     but not at k=13. *)
  let config = { Config.default with Config.avoid_trailing_zeros = Some 13; initial_pages = 4 } in
  let _, _, gc = make_env ~config () in
  let a = Gc.allocate gc 8 in
  (* first object of the first page must be displaced off the page base *)
  check bool "object not at page-aligned address" false (Addr.is_aligned a 4096);
  check int "displaced by one granule" 4 (Addr.to_int a - Addr.to_int (Addr.align_down a 4096))

let test_no_avoidance_by_default () =
  let _, _, gc = make_env () in
  let a = Gc.allocate gc 8 in
  check bool "first object at page base" true (Addr.is_aligned a 4096)

(* --- heap growth and OOM --- *)

let test_heap_grows_on_demand () =
  let config = { Config.default with Config.initial_pages = 1 } in
  let _, globals, gc = make_env ~config ~heap_kb:64 () in
  (* keep everything live via a chain from the globals *)
  let prev = ref 0 in
  for i = 1 to 2000 do
    let a = Gc.allocate gc 8 in
    Gc.set_field gc a 0 !prev;
    prev := Addr.to_int a;
    if i mod 100 = 0 then set_slot globals 0 !prev
  done;
  set_slot globals 0 !prev;
  check bool "heap expanded" true (Heap.committed_pages (Gc.heap gc) > 1);
  Gc.collect gc;
  check int "all 2000 cells live" 2000 (Gc.stats gc).Stats.live_objects

let test_out_of_memory () =
  let config = { Config.default with Config.initial_pages = 1 } in
  let _, globals, gc = make_env ~config ~heap_kb:8 () in
  (* 8 KB reserve = 2 pages; keep a growing chain live until OOM *)
  check bool "exhaustion raises" true
    (try
       let prev = ref 0 in
       for _ = 1 to 10000 do
         let a = Gc.allocate gc 8 in
         Gc.set_field gc a 0 !prev;
         prev := Addr.to_int a;
         set_slot globals 0 !prev
       done;
       false
     with Gc.Out_of_memory _ -> true)

let test_auto_collect_triggers () =
  let config = { Config.default with Config.initial_pages = 4; space_divisor = 2 } in
  let mem = Mem.create () in
  let gc = Gc.create ~config mem ~base:heap_base ~max_bytes:(64 * 1024) () in
  (* auto-collect left on; garbage churn must trigger collections and
     keep the heap bounded *)
  for _ = 1 to 20000 do
    ignore (Gc.allocate gc 8)
  done;
  check bool "collections happened" true ((Gc.stats gc).Stats.collections > 1);
  check bool "heap stayed bounded" true (Heap.committed_pages (Gc.heap gc) < 16)

let test_startup_collection_runs_before_first_alloc () =
  let mem = Mem.create () in
  let globals = Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x100 in
  let gc = Gc.create mem ~base:heap_base ~max_bytes:(512 * 1024) () in
  Gc.add_static_root gc ~lo:(Segment.base globals) ~hi:(Segment.limit globals) ~label:"globals";
  (* poison a page before any allocation *)
  let poison_page = 2 in
  Segment.write_word globals (Segment.base globals)
    (Addr.to_int (Addr.add (Heap.page_addr (Gc.heap gc) poison_page) 4));
  let a = Gc.allocate gc 8 in
  check bool "startup GC ran" true ((Gc.stats gc).Stats.collections >= 1);
  check bool "first allocation avoided the poisoned page" false
    (Heap.page_index (Gc.heap gc) a = poison_page)

(* --- sweep internals --- *)

let test_sweep_releases_empty_pages () =
  let config = { Config.default with Config.initial_pages = 8 } in
  let _, _, gc = make_env ~config () in
  for _ = 1 to 2000 do
    ignore (Gc.allocate gc 8)
  done;
  let used_before = Heap.free_page_count (Gc.heap gc) in
  Gc.collect gc;
  let free_after = Heap.free_page_count (Gc.heap gc) in
  check bool "pages returned to the pool" true (free_after > used_before);
  check int "nothing live" 0 (Gc.stats gc).Stats.live_objects

let test_sweep_rebuilds_address_ordered_free_lists () =
  let _, globals, gc = make_env () in
  (* allocate three, keep the middle one *)
  let a = Gc.allocate gc 8 in
  let b = Gc.allocate gc 8 in
  let c = Gc.allocate gc 8 in
  ignore a;
  ignore c;
  set_slot globals 0 (Addr.to_int b);
  Gc.collect gc;
  (* next two allocations must reuse a then c (ascending addresses) *)
  let x = Gc.allocate gc 8 in
  let y = Gc.allocate gc 8 in
  check int "lowest address reused first" (Addr.to_int a) (Addr.to_int x);
  check int "then the next one" (Addr.to_int c) (Addr.to_int y)

let test_trim_returns_trailing_pages () =
  let config = { Config.default with Config.initial_pages = 4 } in
  let _, globals, gc = make_env ~config () in
  (* force expansion, then drop everything *)
  let prev = ref 0 in
  for _ = 1 to 8000 do
    let a = Gc.allocate gc 8 in
    Gc.set_field gc a 0 !prev;
    prev := Addr.to_int a;
    set_slot globals 0 !prev
  done;
  let grown = Heap.committed_pages (Gc.heap gc) in
  check bool "heap grew" true (grown > 4);
  set_slot globals 0 0;
  Gc.collect gc;
  let released = Gc.trim gc in
  check bool "pages released" true (released > 0);
  check bool "committed dropped" true (Heap.committed_pages (Gc.heap gc) < grown);
  (* the heap still works *)
  let a = Gc.allocate gc 8 in
  check bool "allocation after trim" true (Gc.is_allocated gc a);
  check (Alcotest.list Alcotest.string) "invariants hold" [] (Cgc.Verify.check gc)

let test_live_bytes_accounting () =
  let _, globals, gc = make_env () in
  let a = Gc.allocate gc 24 in
  set_slot globals 0 (Addr.to_int a);
  Gc.collect gc;
  check int "live bytes" 24 (Gc.live_bytes gc);
  check int "heap live_bytes agrees" 24 (Heap.live_bytes (Gc.heap gc))

(* --- free lists --- *)

let test_free_list_policies () =
  let fl = Free_list.create ~n_classes:4 Free_list.Lifo in
  Free_list.add fl ~granules:2 ~pointer_free:false 100;
  Free_list.add fl ~granules:2 ~pointer_free:false 50;
  check (Alcotest.option int) "lifo pops most recent" (Some 50)
    (Free_list.take fl ~granules:2 ~pointer_free:false);
  let fl = Free_list.create ~n_classes:4 Free_list.Address_ordered in
  Free_list.add fl ~granules:2 ~pointer_free:false 100;
  Free_list.add fl ~granules:2 ~pointer_free:false 50;
  Free_list.add fl ~granules:2 ~pointer_free:false 75;
  check (Alcotest.option int) "ordered pops lowest" (Some 50)
    (Free_list.take fl ~granules:2 ~pointer_free:false);
  check (Alcotest.option int) "then next" (Some 75)
    (Free_list.take fl ~granules:2 ~pointer_free:false)

let test_free_list_kinds_separate () =
  let fl = Free_list.create ~n_classes:4 Free_list.Lifo in
  Free_list.add fl ~granules:2 ~pointer_free:false 100;
  check (Alcotest.option int) "atomic class is separate" None
    (Free_list.take fl ~granules:2 ~pointer_free:true);
  check int "total" 1 (Free_list.total fl)

(* --- explicit allocator baseline --- *)

let make_explicit ?policy () =
  let mem = Mem.create () in
  Explicit.create ?policy mem ~base:heap_base ~max_bytes:(256 * 1024) ()

let test_explicit_roundtrip () =
  let e = make_explicit () in
  let a = Explicit.malloc e 16 in
  check bool "allocated" true (Explicit.is_allocated e a);
  check int "live bytes" 16 (Explicit.live_bytes e);
  Explicit.set_field e a 0 77;
  check int "fields work" 77 (Explicit.get_field e a 0);
  Explicit.free e a;
  check bool "freed" false (Explicit.is_allocated e a);
  check int "live zero" 0 (Explicit.live_bytes e)

let test_explicit_double_free () =
  let e = make_explicit () in
  let a = Explicit.malloc e 16 in
  Explicit.free e a;
  check bool "double free rejected" true
    (try
       Explicit.free e a;
       false
     with Invalid_argument _ -> true)

let test_explicit_wild_free () =
  let e = make_explicit () in
  let a = Explicit.malloc e 16 in
  check bool "interior free rejected" true
    (try
       Explicit.free e (Addr.add a 4);
       false
     with Invalid_argument _ -> true)

let test_explicit_reuse_order () =
  let e = make_explicit ~policy:Free_list.Address_ordered () in
  let a = Explicit.malloc e 8 in
  let b = Explicit.malloc e 8 in
  let c = Explicit.malloc e 8 in
  Explicit.free e c;
  Explicit.free e a;
  Explicit.free e b;
  check int "address-ordered reuse" (Addr.to_int a) (Addr.to_int (Explicit.malloc e 8));
  let e = make_explicit ~policy:Free_list.Lifo () in
  let a = Explicit.malloc e 8 in
  let _b = Explicit.malloc e 8 in
  let c = Explicit.malloc e 8 in
  Explicit.free e c;
  Explicit.free e a;
  check int "lifo reuse" (Addr.to_int a) (Addr.to_int (Explicit.malloc e 8))

let test_explicit_large () =
  let e = make_explicit () in
  let a = Explicit.malloc e (3 * 4096) in
  check bool "large allocated" true (Explicit.is_allocated e a);
  Explicit.free e a;
  let b = Explicit.malloc e (3 * 4096) in
  check int "pages reused" (Addr.to_int a) (Addr.to_int b)

let test_explicit_release_empty_pages () =
  let e = make_explicit () in
  let objs = List.init 100 (fun _ -> Explicit.malloc e 8) in
  List.iter (Explicit.free e) objs;
  check bool "releases the page" true (Explicit.release_empty_pages e >= 1);
  check bool "still works after" true (Explicit.is_allocated e (Explicit.malloc e 8))

(* --- precise baseline --- *)

let test_precise_no_false_references () =
  let mem = Mem.create () in
  let gc = Gc.create mem ~base:heap_base ~max_bytes:(256 * 1024) () in
  Gc.set_auto_collect gc false;
  let p = Precise.create gc in
  let roots = ref [] in
  Precise.add_root_provider p (fun () -> !roots);
  let a = Precise.allocate p Type_desc.cons in
  let b = Precise.allocate p Type_desc.cons in
  Gc.set_field gc a 0 (Addr.to_int b);
  roots := [ a ];
  Precise.collect p;
  check bool "root survives" true (Gc.is_allocated gc a);
  check bool "field-referenced survives" true (Gc.is_allocated gc b);
  (* an integer that happens to equal b's address in a non-pointer field
     of an atomic object must NOT retain anything *)
  let c = Precise.allocate p (Type_desc.atomic ~name:"blob" ~size_bytes:8) in
  Gc.set_field gc c 0 (Addr.to_int b);
  Gc.set_field gc a 0 0;
  roots := [ a; c ];
  Precise.collect p;
  check bool "atomic contents not traced" false (Gc.is_allocated gc b)

let test_precise_vs_conservative_misidentification () =
  (* the same bit pattern: conservative retains, precise does not *)
  let mem = Mem.create () in
  let globals = Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x100 in
  let gc = Gc.create mem ~base:heap_base ~max_bytes:(256 * 1024) () in
  Gc.set_auto_collect gc false;
  Gc.add_static_root gc ~lo:(Segment.base globals) ~hi:(Segment.limit globals) ~label:"globals";
  let p = Precise.create gc in
  Precise.add_root_provider p (fun () -> []);
  let a = Precise.allocate p Type_desc.cons in
  (* "integer" in static data happens to hold a's address *)
  Segment.write_word globals (Segment.base globals) (Addr.to_int a);
  Gc.collect gc;
  check bool "conservative retains" true (Gc.is_allocated gc a);
  Precise.collect p;
  check bool "precise reclaims" false (Gc.is_allocated gc a)

let test_type_desc_validation () =
  check bool "unaligned offset rejected" true
    (try
       ignore (Type_desc.make ~name:"bad" ~size_bytes:8 ~pointer_offsets:[ 2 ]);
       false
     with Invalid_argument _ -> true);
  check bool "out of bounds rejected" true
    (try
       ignore (Type_desc.make ~name:"bad" ~size_bytes:8 ~pointer_offsets:[ 8 ]);
       false
     with Invalid_argument _ -> true);
  check bool "descending rejected" true
    (try
       ignore (Type_desc.make ~name:"bad" ~size_bytes:12 ~pointer_offsets:[ 4; 0 ]);
       false
     with Invalid_argument _ -> true);
  check bool "cons is sane" true (Type_desc.cons.Type_desc.size_bytes = 8)

(* Regression: the layout table must not leak — sweeping an object has
   to evict its descriptor row, or the table grows without bound and
   [check_precise_mark] would trace through freed memory. *)
let test_precise_desc_eviction () =
  let mem = Mem.create () in
  let gc = Gc.create mem ~base:heap_base ~max_bytes:(256 * 1024) () in
  let p = Precise.create gc in
  let roots = ref [] in
  Precise.add_root_provider p (fun () -> !roots);
  let keep = Precise.allocate p Type_desc.cons in
  roots := [ keep ];
  let dead = List.init 50 (fun _ -> Precise.allocate p Type_desc.cons) in
  check bool "table holds every allocation" true (Precise.descriptor_count p >= 51);
  Precise.collect p;
  check int "swept rows evicted" 1 (Precise.descriptor_count p);
  List.iter
    (fun a -> check bool "freed object has no descriptor" true (Precise.descriptor p a = None))
    dead;
  check bool "live object keeps its descriptor" true (Precise.descriptor p keep <> None)

(* The exact scanner derives field indices as [offset / granule]; a
   config with non-default scan alignment must not perturb that — the
   pointer map is byte-offset-based, not alignment-based. *)
let test_precise_nondefault_alignment_geometry () =
  let config = { Config.default with Config.alignment = 2 } in
  let mem = Mem.create () in
  let gc = Gc.create ~config mem ~base:heap_base ~max_bytes:(256 * 1024) () in
  let p = Precise.create gc in
  let roots = ref [] in
  Precise.add_root_provider p (fun () -> !roots);
  let rec_desc =
    Type_desc.make ~name:"rec" ~size_bytes:32 ~pointer_offsets:[ 8; 24 ]
  in
  let r = Precise.allocate p rec_desc in
  let a = Precise.allocate p Type_desc.cons in
  let b = Precise.allocate p Type_desc.cons in
  Gc.set_field gc r 2 (Addr.to_int a);
  (* word 2 = offset 8 *)
  Gc.set_field gc r 6 (Addr.to_int b);
  (* word 6 = offset 24 *)
  (* a heap-looking value in a non-map word must not retain *)
  let c = Precise.allocate p Type_desc.cons in
  Gc.set_field gc r 1 (Addr.to_int c);
  roots := [ r ];
  Precise.collect p;
  check bool "offset-8 child survives" true (Gc.is_allocated gc a);
  check bool "offset-24 child survives" true (Gc.is_allocated gc b);
  check bool "non-map word does not retain" false (Gc.is_allocated gc c)

(* An exhausted transient-fault retry budget must abort the exact mark
   with the typed exception, restore the pre-collect mark state, and
   leave the heap ready for a clean re-collect once the plan lifts. *)
let test_precise_mark_abort_and_restore () =
  let mem = Mem.create () in
  let gc = Gc.create mem ~base:heap_base ~max_bytes:(256 * 1024) () in
  let p = Precise.create gc in
  let roots = ref [] in
  Precise.add_root_provider p (fun () -> !roots);
  let a = Precise.allocate p Type_desc.cons in
  let b = Precise.allocate p Type_desc.cons in
  Gc.set_field gc a 0 (Addr.to_int b);
  roots := [ a ];
  let dead = Precise.allocate p Type_desc.cons in
  ignore dead;
  Mem.set_fault_plan mem
    (Some (Mem.Fault.plan ~countdown:1 ~rearm:true ~target:Mem.Fault.Reads ()));
  let aborted =
    try
      Precise.collect p;
      false
    with Precise.Mark_aborted { retries; _ } ->
      check bool "retry budget was spent" true (retries >= 1);
      true
  in
  check bool "mark aborted under rearming read faults" true aborted;
  Mem.set_fault_plan mem None;
  let s = Gc.stats gc in
  check bool "abort counted" true (s.Stats.precise_mark_aborts >= 1);
  check bool "retries counted" true (s.Stats.precise_mark_retries >= 1);
  check bool "aborted cycle completed no collection" true (s.Stats.precise_collections = 0);
  check (Alcotest.list Alcotest.string) "heap coherent after abort" []
    (Cgc.Verify.check_precise_mark p);
  Precise.collect p;
  check bool "root survives the re-collect" true (Gc.is_allocated gc a);
  check bool "child survives the re-collect" true (Gc.is_allocated gc b);
  check int "exactly the garbage was freed" 2 s.Stats.live_objects

(* A root provider naming a freed address is a mutator bug the marker
   must surface (counted + audited), never trace through or crash on. *)
let test_precise_stale_root_detection () =
  let mem = Mem.create () in
  let gc = Gc.create mem ~base:heap_base ~max_bytes:(256 * 1024) () in
  let p = Precise.create gc in
  let live = ref [] in
  let stale = ref [] in
  Precise.add_root_provider p (fun () -> !live @ !stale);
  let a = Precise.allocate p Type_desc.cons in
  let doomed = Precise.allocate p Type_desc.cons in
  live := [ a ];
  Precise.collect p;
  check bool "doomed freed" false (Gc.is_allocated gc doomed);
  stale := [ doomed ];
  Precise.collect p;
  let s = Gc.stats gc in
  check bool "stale root counted" true (s.Stats.precise_stale_roots >= 1);
  check bool "stale address audited" true (List.mem doomed (Precise.last_stale_roots p));
  check bool "live root unaffected" true (Gc.is_allocated gc a)

(* Allocation pressure must drive the wrapped collector's ladder into
   the exact collector via the hook: unrooted garbage is reclaimed
   without anyone calling [Precise.collect] and without a conservative
   cycle racing the exact one. *)
let test_precise_hook_collects_under_pressure () =
  let config = { Config.default with Config.initial_pages = 8 } in
  let mem = Mem.create () in
  let gc = Gc.create ~config mem ~base:heap_base ~max_bytes:(64 * 1024) () in
  let p = Precise.create gc in
  Precise.add_root_provider p (fun () -> []);
  for _ = 1 to 5000 do
    ignore (Precise.allocate p Type_desc.cons : Addr.t)
  done;
  let s = Gc.stats gc in
  check bool "hook drove exact collections" true (s.Stats.precise_collections >= 1);
  check bool "every cycle was exact" true
    (s.Stats.collections = s.Stats.precise_collections);
  check bool "garbage was reclaimed" true (s.Stats.objects_freed >= 4000)

(* A bounded mark stack must overflow gracefully: the fixpoint rescan
   retains the whole chain, and the overflow episode is counted. *)
let test_precise_bounded_mark_stack () =
  let config = { Config.default with Config.mark_stack_limit = Some 16 } in
  let mem = Mem.create () in
  let gc = Gc.create ~config mem ~base:heap_base ~max_bytes:(256 * 1024) () in
  let p = Precise.create gc in
  let roots = ref [] in
  Precise.add_root_provider p (fun () -> !roots);
  (* a 64-way fan-out overflows the 16-slot stack in one scan; the
     fixpoint rescan must still reach every child *)
  let fanout = 64 in
  let arr_desc =
    Type_desc.make ~name:"wide" ~size_bytes:(4 * fanout)
      ~pointer_offsets:(List.init fanout (fun i -> 4 * i))
  in
  let hub = Precise.allocate p arr_desc in
  for i = 0 to fanout - 1 do
    let c = Precise.allocate p Type_desc.cons in
    Gc.set_field gc hub i (Addr.to_int c)
  done;
  roots := [ hub ];
  Precise.collect p;
  let s = Gc.stats gc in
  check int "hub and every child retained" (fanout + 1) s.Stats.live_objects;
  check bool "overflow episode counted" true (s.Stats.mark_stack_overflows >= 1)

(* --- stats --- *)

let test_stats_counters () =
  let _, globals, gc = make_env () in
  let s = Gc.stats gc in
  let a = Gc.allocate gc 8 in
  set_slot globals 0 (Addr.to_int a);
  ignore (Gc.allocate gc 8);
  check int "objects allocated" 2 s.Stats.objects_allocated;
  check int "bytes allocated" 16 s.Stats.bytes_allocated;
  Gc.collect gc;
  check int "collections" 1 s.Stats.collections;
  check int "one freed" 1 s.Stats.objects_freed;
  check int "one live" 1 s.Stats.live_objects;
  check bool "words were scanned" true (s.Stats.words_scanned > 0);
  check bool "a valid ref was seen" true (s.Stats.valid_refs >= 1)

(* [merge_marking] is a *transfer*: it folds a shard's trace counters
   into the target and zeroes the shard, so double-merging a shard (as
   the reclamation path may after a clean recovery) is idempotent, and
   a discarded shard contributes nothing. *)
let fill_shard () =
  let sh = Stats.create () in
  sh.Stats.words_scanned <- 100;
  sh.Stats.valid_refs <- 40;
  sh.Stats.false_refs <- 7;
  sh.Stats.objects_marked <- 25;
  sh.Stats.header_cache_hits <- 12;
  sh.Stats.mark_stack_overflows <- 2;
  sh.Stats.mark_downgrades <- 1;
  sh

let trace_tuple s =
  ( s.Stats.words_scanned,
    s.Stats.valid_refs,
    s.Stats.false_refs,
    s.Stats.objects_marked,
    s.Stats.header_cache_hits,
    s.Stats.mark_stack_overflows,
    s.Stats.mark_downgrades )

let test_stats_merge_marking_empty_shard () =
  let into = fill_shard () in
  let before = trace_tuple into in
  Stats.merge_marking ~into (Stats.create ());
  check bool "empty shard is a no-op" true (trace_tuple into = before)

let test_stats_merge_marking_double_merge () =
  let into = Stats.create () in
  let shard = fill_shard () in
  Stats.merge_marking ~into shard;
  check bool "shard zeroed by the transfer" true
    (trace_tuple shard = (0, 0, 0, 0, 0, 0, 0));
  let after_first = trace_tuple into in
  check bool "counters transferred" true (after_first = (100, 40, 7, 25, 12, 2, 1));
  Stats.merge_marking ~into shard;
  check bool "double merge is idempotent" true (trace_tuple into = after_first)

let test_stats_merge_after_discard () =
  let into = Stats.create () in
  let shard = fill_shard () in
  Stats.discard_marking shard;
  check bool "discard zeroes the trace counters" true
    (trace_tuple shard = (0, 0, 0, 0, 0, 0, 0));
  Stats.merge_marking ~into shard;
  check bool "merge after discard contributes nothing" true
    (trace_tuple into = (0, 0, 0, 0, 0, 0, 0))

(* --- generational promoted-bytes accounting --- *)

module Generational = Cgc.Generational

(* promoted_bytes charges live bytes at the moment of promotion, for
   both page shapes: a partially-dead small page charges only its
   surviving slots, never its capacity. *)
let test_promoted_bytes_small_partial_page () =
  let _, globals, gc = make_env () in
  let gen = Generational.create ~promote_after:1 gc in
  let a = Generational.allocate gen 256 in
  let b = Generational.allocate gen 256 in
  let c = Generational.allocate gen 256 in
  let d = Generational.allocate gen 256 in
  set_slot globals 0 (Addr.to_int a);
  set_slot globals 1 (Addr.to_int b);
  ignore c;
  ignore d;
  Generational.minor gen;
  let s = Generational.stats gen in
  check int "one page promoted" 1 s.Generational.promoted_pages;
  check int "promoted bytes = surviving slots only" 512 s.Generational.promoted_bytes;
  check bool "survivor is old" true (Generational.is_old gen a)

let test_promoted_bytes_large_object () =
  let _, globals, gc = make_env () in
  let gen = Generational.create ~promote_after:1 gc in
  let a = Generational.allocate gen 8192 in
  set_slot globals 0 (Addr.to_int a);
  Generational.minor gen;
  let s = Generational.stats gen in
  check int "both pages promoted" 2 s.Generational.promoted_pages;
  check int "promoted bytes = the live span" 8192 s.Generational.promoted_bytes;
  check bool "large object is old" true (Generational.is_old gen a);
  (* a dead large object is swept before it can age: nothing promotes,
     nothing is charged *)
  let _, _, gc2 = make_env () in
  let gen2 = Generational.create ~promote_after:1 gc2 in
  ignore (Generational.allocate gen2 8192);
  Generational.minor gen2;
  let s2 = Generational.stats gen2 in
  check int "dead large: no pages promoted" 0 s2.Generational.promoted_pages;
  check int "dead large: no bytes charged" 0 s2.Generational.promoted_bytes

let () =
  Alcotest.run "gc"
    [
      ( "size-class",
        [ Alcotest.test_case "mapping" `Quick test_size_class_mapping ] );
      ( "heap",
        [
          Alcotest.test_case "geometry" `Quick test_heap_geometry;
          Alcotest.test_case "commit" `Quick test_heap_commit;
          Alcotest.test_case "find free run" `Quick test_heap_find_free_run;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "basics" `Quick test_allocate_basics;
          Alcotest.test_case "size rounding" `Quick test_allocate_size_rounding;
          Alcotest.test_case "rejects non-positive" `Quick test_allocate_rejects_nonpositive;
          Alcotest.test_case "field round trip" `Quick test_field_round_trip;
          Alcotest.test_case "boundary sizes" `Quick test_boundary_sizes;
          Alcotest.test_case "many classes" `Quick test_many_classes_interleaved;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "printers" `Quick test_pp_smoke;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "root keeps alive" `Quick test_root_keeps_object_alive;
          Alcotest.test_case "unreachable collected" `Quick test_unreachable_object_collected;
          Alcotest.test_case "transitive" `Quick test_transitive_reachability;
          Alcotest.test_case "cycles" `Quick test_cycle_collected;
          Alcotest.test_case "interior retains" `Quick test_interior_pointer_retains;
          Alcotest.test_case "interior disabled" `Quick test_interior_pointer_ignored_when_disabled;
          Alcotest.test_case "pointer-free not scanned" `Quick test_pointer_free_not_scanned;
          Alcotest.test_case "normal scanned" `Quick test_normal_object_is_scanned;
          Alcotest.test_case "register roots" `Quick test_register_roots;
          Alcotest.test_case "dynamic roots" `Quick test_dynamic_roots;
        ] );
      ( "alignment",
        [
          Alcotest.test_case "unaligned root" `Quick test_unaligned_root_requires_alignment_1;
          Alcotest.test_case "halfword root" `Quick test_halfword_alignment_2;
        ] );
      ( "large",
        [
          Alcotest.test_case "lifecycle" `Quick test_large_object_lifecycle;
          Alcotest.test_case "tail pointers" `Quick test_large_tail_pointer;
          Alcotest.test_case "first page interior" `Quick test_large_first_page_interior;
          Alcotest.test_case "reuse after free" `Quick test_large_reuse_after_free;
        ] );
      ( "finalize",
        [
          Alcotest.test_case "queue" `Quick test_finalizer_queue;
          Alcotest.test_case "registry" `Quick test_finalizer_registry;
        ] );
      ( "blacklist",
        [
          Alcotest.test_case "unit" `Quick test_blacklist_unit;
          Alcotest.test_case "avoids false-ref page" `Quick test_blacklist_avoids_false_ref_page;
          Alcotest.test_case "covers uncommitted region" `Quick test_blacklist_covers_uncommitted_region;
          Alcotest.test_case "atomic on black pages" `Quick test_atomic_allowed_on_black_pages;
          Alcotest.test_case "off allows retention" `Quick test_blacklist_off_allows_false_retention;
          Alcotest.test_case "refresh releases pages" `Quick test_blacklist_refresh_releases_pages;
          Alcotest.test_case "hashed variant" `Quick test_blacklist_hashed;
          Alcotest.test_case "hashed end to end" `Quick test_blacklist_hashed_end_to_end;
        ] );
      ( "classify",
        [
          Alcotest.test_case "cases" `Quick test_classify;
          Alcotest.test_case "freed slot" `Quick test_classify_freed_slot_is_false;
        ] );
      ( "trailing-zeros",
        [
          Alcotest.test_case "avoidance" `Quick test_avoid_trailing_zeros;
          Alcotest.test_case "off by default" `Quick test_no_avoidance_by_default;
        ] );
      ( "growth",
        [
          Alcotest.test_case "grows on demand" `Quick test_heap_grows_on_demand;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          Alcotest.test_case "auto collect" `Quick test_auto_collect_triggers;
          Alcotest.test_case "startup collection" `Quick test_startup_collection_runs_before_first_alloc;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "releases empty pages" `Quick test_sweep_releases_empty_pages;
          Alcotest.test_case "address-ordered free lists" `Quick
            test_sweep_rebuilds_address_ordered_free_lists;
          Alcotest.test_case "live bytes" `Quick test_live_bytes_accounting;
          Alcotest.test_case "trim" `Quick test_trim_returns_trailing_pages;
        ] );
      ( "free-list",
        [
          Alcotest.test_case "policies" `Quick test_free_list_policies;
          Alcotest.test_case "kinds separate" `Quick test_free_list_kinds_separate;
        ] );
      ( "explicit",
        [
          Alcotest.test_case "roundtrip" `Quick test_explicit_roundtrip;
          Alcotest.test_case "double free" `Quick test_explicit_double_free;
          Alcotest.test_case "wild free" `Quick test_explicit_wild_free;
          Alcotest.test_case "reuse order" `Quick test_explicit_reuse_order;
          Alcotest.test_case "large" `Quick test_explicit_large;
          Alcotest.test_case "release empty pages" `Quick test_explicit_release_empty_pages;
        ] );
      ( "precise",
        [
          Alcotest.test_case "no false references" `Quick test_precise_no_false_references;
          Alcotest.test_case "vs conservative" `Quick test_precise_vs_conservative_misidentification;
          Alcotest.test_case "type descriptors" `Quick test_type_desc_validation;
          Alcotest.test_case "descriptor eviction on sweep" `Quick test_precise_desc_eviction;
          Alcotest.test_case "non-default alignment geometry" `Quick
            test_precise_nondefault_alignment_geometry;
          Alcotest.test_case "mark abort and restore" `Quick test_precise_mark_abort_and_restore;
          Alcotest.test_case "stale root detection" `Quick test_precise_stale_root_detection;
          Alcotest.test_case "hook collects under pressure" `Quick
            test_precise_hook_collects_under_pressure;
          Alcotest.test_case "bounded mark stack" `Quick test_precise_bounded_mark_stack;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "merge_marking: empty shard" `Quick
            test_stats_merge_marking_empty_shard;
          Alcotest.test_case "merge_marking: transfer + double-merge idempotence" `Quick
            test_stats_merge_marking_double_merge;
          Alcotest.test_case "merge_marking: merge after discard" `Quick
            test_stats_merge_after_discard;
        ] );
      ( "generational-accounting",
        [
          Alcotest.test_case "small partial page charges live bytes" `Quick
            test_promoted_bytes_small_partial_page;
          Alcotest.test_case "large object charges live span only" `Quick
            test_promoted_bytes_large_object;
        ] );
    ]
