(* Long randomized soak: a chaotic mutator drives every collector mode
   while an OCaml-side model of the root set checks that nothing rooted
   is ever lost and the internal invariants stay intact. *)

open Cgc_vm
module Gc = Cgc.Gc
module Config = Cgc.Config
module Verify = Cgc.Verify
module Generational = Cgc.Generational

let check = Alcotest.check
let bool = Alcotest.bool

type world = {
  gc : Gc.t;
  globals : Segment.t;
  rng : Rng.t;
  (* model: slot index -> object we stored there (0 = empty) *)
  roots_model : int array;
  mutable live_candidates : Addr.t list; (* objects possibly still live *)
}

let n_slots = 64

let make_world ~seed ~config =
  let mem = Mem.create () in
  let globals =
    Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000
  in
  let gc = Gc.create ~config mem ~base:(Addr.of_int 0x400000) ~max_bytes:(8 * 1024 * 1024) () in
  Gc.add_static_root gc ~lo:(Segment.base globals) ~hi:(Segment.limit globals) ~label:"globals";
  { gc; globals; rng = Rng.create seed; roots_model = Array.make n_slots 0; live_candidates = [] }

let set_slot w i v =
  Segment.write_word w.globals (Addr.add (Segment.base w.globals) (4 * i)) v;
  w.roots_model.(i) <- v

let random_live w =
  match w.live_candidates with
  | [] -> None
  | l -> Some (List.nth l (Rng.int w.rng (List.length l)))

(* One random mutator step.  Returns [true] when the step was an
   explicit collection (the only moment the post-collection audit's
   stats-vs-heap agreement is guaranteed: an allocation-triggered
   collection is immediately followed by the new object being carved). *)
let step w : bool =
  match Rng.int w.rng 100 with
  | n when n < 45 ->
      (* allocate a small object, sometimes atomic, sometimes finalized *)
      let bytes = 4 + (4 * Rng.int w.rng 12) in
      let pointer_free = Rng.chance w.rng 0.2 in
      let finalizer = if Rng.chance w.rng 0.1 then Some "soak" else None in
      let a = Gc.allocate ~pointer_free ?finalizer w.gc bytes in
      w.live_candidates <- a :: w.live_candidates;
      if Rng.chance w.rng 0.6 then set_slot w (Rng.int w.rng n_slots) (Addr.to_int a);
      false
  | n when n < 50 ->
      (* a large object *)
      let bytes = 3000 + Rng.int w.rng 12000 in
      let a = Gc.allocate w.gc bytes in
      if Rng.chance w.rng 0.8 then set_slot w (Rng.int w.rng n_slots) (Addr.to_int a);
      false
  | n when n < 70 -> (
      (* link two live objects *)
      match (random_live w, random_live w) with
      | Some a, Some b when Gc.is_allocated w.gc a && Gc.is_allocated w.gc b -> (
          match Gc.object_size w.gc a with
          | Some size when size >= 4 ->
              Gc.set_field w.gc a (Rng.int w.rng (size / 4)) (Addr.to_int b);
              false
          | _ -> false)
      | _ -> false)
  | n when n < 85 ->
      (* drop a root *)
      set_slot w (Rng.int w.rng n_slots) 0;
      false
  | n when n < 92 ->
      (* plant a false reference: a random heap-region value *)
      let heap = Gc.heap w.gc in
      let v = Addr.to_int (Cgc.Heap.base heap) + Rng.int w.rng (8 * 1024 * 1024) in
      set_slot w (Rng.int w.rng n_slots) v;
      false
  | n when n < 97 ->
      Gc.collect w.gc;
      true
  | n when n < 99 ->
      ignore (Gc.drain_pending_sweeps w.gc);
      false
  | _ ->
      ignore (Gc.trim w.gc);
      false

let assert_rooted_alive w tag =
  Array.iter
    (fun v ->
      if v <> 0 then
        (* a rooted value that names an object must keep it allocated *)
        match Gc.find_object w.gc (Addr.of_int v) with
        | Some _ -> ()
        | None ->
            (* it may be a planted false ref into empty space: fine; but
               it must then not be a previously-live candidate base *)
            if List.exists (fun a -> Addr.to_int a = v) w.live_candidates then begin
              (* rooted object vanished: only legal if it was never
                 reachable at a collection — which cannot happen since
                 the root stood.  Fail loudly. *)
              Alcotest.failf "%s: rooted object 0x%08x was reclaimed" tag v
            end)
    w.roots_model

let soak ~seed ~config ~steps ~tag () =
  let w = make_world ~seed ~config in
  for i = 1 to steps do
    ignore (step w : bool);
    if i mod 500 = 0 then begin
      Gc.collect w.gc;
      assert_rooted_alive w tag;
      let issues = Verify.check w.gc in
      check (Alcotest.list Alcotest.string) (tag ^ ": invariants") [] issues;
      (* keep the candidate list bounded *)
      w.live_candidates <-
        List.filteri (fun i _ -> i < 200) (List.filter (Gc.is_allocated w.gc) w.live_candidates)
    end
  done;
  (* final full drain and audit *)
  Gc.collect w.gc;
  ignore (Gc.drain_pending_sweeps w.gc);
  check (Alcotest.list Alcotest.string) (tag ^ ": final invariants") [] (Verify.check w.gc);
  ignore (Gc.drain_finalized w.gc);
  check bool (tag ^ ": still functional") true
    (Gc.is_allocated w.gc (Gc.allocate w.gc 8))

let base_config = { Config.default with Config.initial_pages = 8 }

let soak_eager = soak ~seed:101 ~config:base_config ~steps:6000 ~tag:"eager"

let soak_lazy =
  soak ~seed:202 ~config:{ base_config with Config.lazy_sweep = true } ~steps:6000 ~tag:"lazy"

let soak_bounded_stack =
  soak ~seed:303
    ~config:{ base_config with Config.mark_stack_limit = Some 32 }
    ~steps:4000 ~tag:"bounded-stack"

let soak_hashed_blacklist =
  soak ~seed:404
    ~config:{ base_config with Config.blacklist_buckets = Some 1024 }
    ~steps:4000 ~tag:"hashed"

let soak_unaligned =
  soak ~seed:505 ~config:{ base_config with Config.alignment = 1 } ~steps:3000 ~tag:"unaligned"

let soak_halfword =
  soak ~seed:909 ~config:{ base_config with Config.alignment = 2 } ~steps:3000 ~tag:"halfword"

let soak_base_only =
  soak ~seed:606
    ~config:{ base_config with Config.interior_pointers = false; valid_displacements = [ 4 ] }
    ~steps:4000 ~tag:"base-only"

(* Short soak with the auditor in the loop: every single mutator step
   is followed by a full invariant check, and every explicit collection
   also gets the stricter post-collection audit.  Catches invariant
   breakage at the step that caused it rather than up to 500 steps
   later. *)
let soak_verified_steps () =
  let w = make_world ~seed:808 ~config:base_config in
  for i = 1 to 800 do
    let explicit_collect = step w in
    let issues = Verify.check w.gc in
    if issues <> [] then
      Alcotest.failf "per-step: invariants broken at step %d: %s" i (String.concat "; " issues);
    if explicit_collect then begin
      let issues = Verify.check_after_collect w.gc in
      if issues <> [] then
        Alcotest.failf "per-step: post-collection invariants broken at step %d: %s" i
          (String.concat "; " issues)
    end
  done;
  assert_rooted_alive w "per-step";
  check (Alcotest.list Alcotest.string) "per-step: final invariants" [] (Verify.check w.gc)

(* Generational soak: random minor/major cadence with barriered writes. *)
let soak_generational () =
  let w = make_world ~seed:707 ~config:base_config in
  Gc.set_auto_collect w.gc false;
  let gen = Generational.create ~promote_after:2 w.gc in
  for i = 1 to 4000 do
    (match Rng.int w.rng 100 with
    | n when n < 55 ->
        let a = Generational.allocate gen (4 + (4 * Rng.int w.rng 8)) in
        w.live_candidates <- a :: w.live_candidates;
        if Rng.chance w.rng 0.5 then set_slot w (Rng.int w.rng n_slots) (Addr.to_int a)
    | n when n < 75 -> (
        match (random_live w, random_live w) with
        | Some a, Some b when Gc.is_allocated w.gc a && Gc.is_allocated w.gc b -> (
            match Gc.object_size w.gc a with
            | Some size when size >= 4 ->
                Generational.set_field gen a (Rng.int w.rng (size / 4)) (Addr.to_int b)
            | _ -> ())
        | _ -> ())
    | n when n < 85 -> set_slot w (Rng.int w.rng n_slots) 0
    | n when n < 97 -> Generational.minor gen
    | _ -> Generational.major gen);
    if i mod 500 = 0 then begin
      Generational.major gen;
      assert_rooted_alive w "generational";
      check (Alcotest.list Alcotest.string) "generational: invariants" [] (Verify.check w.gc);
      w.live_candidates <-
        List.filteri (fun i _ -> i < 200) (List.filter (Gc.is_allocated w.gc) w.live_candidates)
    end
  done;
  Generational.major gen;
  check (Alcotest.list Alcotest.string) "generational: final invariants" [] (Verify.check w.gc)

let () =
  Alcotest.run "soak"
    [
      ( "soak",
        [
          Alcotest.test_case "eager" `Slow soak_eager;
          Alcotest.test_case "lazy" `Slow soak_lazy;
          Alcotest.test_case "bounded mark stack" `Slow soak_bounded_stack;
          Alcotest.test_case "hashed blacklist" `Slow soak_hashed_blacklist;
          Alcotest.test_case "unaligned scanning" `Slow soak_unaligned;
          Alcotest.test_case "halfword scanning" `Slow soak_halfword;
          Alcotest.test_case "base-only + displacement" `Slow soak_base_only;
          Alcotest.test_case "generational" `Slow soak_generational;
          Alcotest.test_case "verified every step" `Slow soak_verified_steps;
        ] );
    ]
