(* Unit tests for the machine model and the object builders. *)

open Cgc_vm
module Machine = Cgc_mutator.Machine
module Builder = Cgc_mutator.Builder
module Gc = Cgc.Gc

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let make_env ?machine_config ?(heap_kb = 1024) () =
  let mem = Mem.create () in
  let stack = Mem.map mem ~name:"stack" ~kind:Segment.Stack ~base:(Addr.of_int 0xE0000000) ~size:0x10000 in
  let config = { Cgc.Config.default with Cgc.Config.initial_pages = 8 } in
  let gc = Gc.create ~config mem ~base:(Addr.of_int 0x400000) ~max_bytes:(heap_kb * 1024) () in
  let machine = Machine.create ?config:machine_config mem ~stack ~gc in
  (mem, stack, gc, machine)

(* --- machine: stack discipline --- *)

let test_stack_grows_down () =
  let _, _, _, m = make_env () in
  let top = Machine.stack_pointer m in
  check int "starts at base" (Addr.to_int (Machine.stack_base m)) (Addr.to_int top);
  Machine.call m ~slots:4 (fun _ ->
      check bool "sp moved down" true (Addr.to_int (Machine.stack_pointer m) < Addr.to_int top));
  check int "sp restored" (Addr.to_int top) (Addr.to_int (Machine.stack_pointer m))

let test_frame_size_includes_padding () =
  let config = { Machine.default_config with Machine.frame_padding = 6 } in
  let _, _, _, m = make_env ~machine_config:config () in
  let top = Machine.stack_pointer m in
  Machine.call m ~slots:4 (fun _ ->
      check int "frame is slots+padding words" ((4 + 6) * 4)
        (Addr.diff top (Machine.stack_pointer m)))

let test_locals_read_write () =
  let _, _, _, m = make_env () in
  Machine.call m ~slots:3 (fun fr ->
      Machine.set_local fr 0 111;
      Machine.set_local fr 2 333;
      check int "local 0" 111 (Machine.get_local fr 0);
      check int "local 2" 333 (Machine.get_local fr 2);
      check bool "slot addresses distinct" true
        (Addr.to_int (Machine.local_addr fr 0) <> Addr.to_int (Machine.local_addr fr 2)))

let test_local_bounds () =
  let _, _, _, m = make_env () in
  Machine.call m ~slots:2 (fun fr ->
      check bool "out-of-range local rejected" true
        (try
           ignore (Machine.local_addr fr 2);
           false
         with Invalid_argument _ -> true))

let test_frames_not_cleared_by_default () =
  let _, _, _, m = make_env () in
  Machine.call m ~slots:2 (fun fr -> Machine.set_local fr 0 0xDEAD);
  Machine.call m ~slots:2 (fun fr ->
      check int "stale value visible in fresh frame" 0xDEAD (Machine.get_local fr 0))

let test_frames_cleared_when_configured () =
  let config = { Machine.default_config with Machine.clear_frames_on_entry = true } in
  let _, _, _, m = make_env ~machine_config:config () in
  Machine.call m ~slots:2 (fun fr -> Machine.set_local fr 0 0xDEAD);
  Machine.call m ~slots:2 (fun fr ->
      check int "frame zeroed on entry" 0 (Machine.get_local fr 0))

let test_frames_cleared_on_exit () =
  let config = { Machine.default_config with Machine.clear_frames_on_exit = true } in
  let _, _, _, m = make_env ~machine_config:config () in
  Machine.call m ~slots:2 (fun fr -> Machine.set_local fr 0 0xDEAD);
  Machine.call m ~slots:2 (fun fr ->
      check int "previous frame was scrubbed" 0 (Machine.get_local fr 0))

let test_nested_calls () =
  let _, _, _, m = make_env () in
  let depths = ref [] in
  Machine.call m ~slots:1 (fun _ ->
      depths := Addr.to_int (Machine.stack_pointer m) :: !depths;
      Machine.call m ~slots:1 (fun _ ->
          depths := Addr.to_int (Machine.stack_pointer m) :: !depths));
  match !depths with
  | [ inner; outer ] -> check bool "inner deeper than outer" true (inner < outer)
  | _ -> Alcotest.fail "expected two depths"

let test_stack_overflow_detected () =
  let _, _, _, m = make_env () in
  let rec recurse n = Machine.call m ~slots:64 (fun _ -> if n > 0 then recurse (n - 1)) in
  check bool "overflow raises" true
    (try
       recurse 10000;
       false
     with Machine.Stack_overflow _ -> true)

let test_low_water_tracking () =
  let _, _, _, m = make_env () in
  Machine.call m ~slots:16 (fun _ -> ());
  let lw = Machine.low_water m in
  check bool "low water below base" true (Addr.to_int lw < Addr.to_int (Machine.stack_base m));
  Machine.call m ~slots:2 (fun _ -> ());
  check int "low water keeps the deepest point" (Addr.to_int lw) (Addr.to_int (Machine.low_water m))

let test_exception_restores_sp () =
  let _, _, _, m = make_env () in
  let top = Machine.stack_pointer m in
  (try Machine.call m ~slots:4 (fun _ -> failwith "boom") with Failure _ -> ());
  check int "sp restored after exception" (Addr.to_int top) (Addr.to_int (Machine.stack_pointer m))

(* --- machine: registers and roots --- *)

let test_registers () =
  let _, _, _, m = make_env () in
  Machine.set_register m 5 0xABCD;
  check int "register round trip" 0xABCD (Machine.get_register m 5);
  Machine.clear_registers m;
  check int "cleared" 0 (Machine.get_register m 5)

let test_register_is_gc_root () =
  let _, _, gc, m = make_env () in
  Gc.set_auto_collect gc false;
  let a = Gc.allocate gc 8 in
  Machine.clear_registers m;
  Machine.set_register m 9 (Addr.to_int a);
  Gc.collect gc;
  check bool "register-held object survives" true (Gc.is_allocated gc a)

let test_live_stack_is_gc_root () =
  let _, _, gc, m = make_env () in
  Gc.set_auto_collect gc false;
  Machine.call m ~slots:2 (fun fr ->
      let a = Gc.allocate gc 8 in
      Machine.clear_registers m;
      Machine.set_local fr 0 (Addr.to_int a);
      Gc.collect gc;
      check bool "frame-held object survives" true (Gc.is_allocated gc a))

let test_dead_stack_not_a_root () =
  let _, _, gc, m = make_env () in
  Gc.set_auto_collect gc false;
  let leaked = ref Addr.zero in
  Machine.call m ~slots:2 (fun fr ->
      let a = Gc.allocate gc 8 in
      leaked := a;
      Machine.set_local fr 0 (Addr.to_int a));
  Machine.clear_registers m;
  Gc.collect gc;
  check bool "popped frame does not retain" false (Gc.is_allocated gc !leaked)

let test_regrown_stack_exposes_stale_pointer () =
  (* section 3.1's phenomenon, end to end *)
  let config = { Machine.default_config with Machine.frame_padding = 4 } in
  let _, _, gc, m = make_env ~machine_config:config () in
  Gc.set_auto_collect gc false;
  let leaked = ref Addr.zero in
  Machine.call m ~slots:4 (fun fr ->
      let a = Gc.allocate gc 8 in
      leaked := a;
      Machine.set_local fr 3 (Addr.to_int a));
  Machine.clear_registers m;
  Machine.call m ~slots:4 (fun _ ->
      Gc.collect gc;
      check bool "stale pointer under a regrown frame retains" true (Gc.is_allocated gc !leaked))

let test_allocator_scratch_cleanup () =
  let run self_cleanup =
    let config = { Machine.default_config with Machine.allocator_self_cleanup = self_cleanup } in
    let _, stack, _, m = make_env ~machine_config:config () in
    let a = Machine.allocate m 8 in
    (* the spill slot is one word below the live stack *)
    let scratch = Addr.add (Machine.stack_pointer m) (-4) in
    let v = Segment.read_word stack scratch in
    (Addr.to_int a, v)
  in
  let a, v = run false in
  check int "careless allocator leaves the pointer" a v;
  let _, v = run true in
  check int "tidy allocator clears it" 0 v

let test_clear_dead_stack () =
  let _, stack, _, m = make_env () in
  Machine.call m ~slots:2 (fun fr -> Machine.set_local fr 0 0xBEEF);
  let stale_at = Machine.stack_pointer m in
  (* the popped frame's slot 0 sits below sp at the frame's base *)
  let stale_at = Addr.add stale_at (-((2 + Machine.default_config.Machine.frame_padding) * 4)) in
  check int "stale value present" 0xBEEF (Segment.read_word stack stale_at);
  Machine.clear_dead_stack m ();
  check int "cleared" 0 (Segment.read_word stack stale_at)

let test_register_allocation_result () =
  let _, _, _, m = make_env () in
  let a = Machine.allocate m 8 in
  check int "r0 holds the last allocation" (Addr.to_int a) (Machine.get_register m 0)

let test_determinism_same_seed () =
  let run () =
    let mem = Mem.create () in
    let stack = Mem.map mem ~name:"s" ~kind:Segment.Stack ~base:(Addr.of_int 0xE0000000) ~size:0x10000 in
    let gc = Gc.create mem ~base:(Addr.of_int 0x400000) ~max_bytes:(1024 * 1024) () in
    let config = { Machine.default_config with Machine.syscall_noise = 0.5 } in
    let m = Machine.create ~config ~seed:99 mem ~stack ~gc in
    for _ = 1 to 50 do
      ignore (Machine.allocate m 8)
    done;
    Array.init (Machine.n_registers m) (Machine.get_register m)
  in
  check bool "same seed, same noise" true (run () = run ())

let test_park_extends_live_stack () =
  let _, _, gc, m = make_env () in
  Gc.set_auto_collect gc false;
  let leaked = ref Addr.zero in
  Machine.call m ~slots:2 (fun fr ->
      let a = Gc.allocate gc 8 in
      leaked := a;
      Machine.set_local fr 0 (Addr.to_int a));
  Machine.clear_registers m;
  (* dead after the pop... *)
  Gc.collect gc;
  check bool "dead before park" false (Gc.is_allocated gc !leaked);
  (* a second victim, then park over its stale frame *)
  Machine.call m ~slots:2 (fun fr ->
      let a = Gc.allocate gc 8 in
      leaked := a;
      Machine.set_local fr 0 (Addr.to_int a));
  Machine.clear_registers m;
  Machine.park m ~words:16;
  check bool "parked" true (Machine.parked m);
  Gc.collect gc;
  check bool "parked stack pins the stale pointer" true (Gc.is_allocated gc !leaked);
  Machine.unpark m;
  check bool "unparked" false (Machine.parked m);
  Gc.collect gc;
  check bool "released after unpark" false (Gc.is_allocated gc !leaked)

let test_park_twice_rejected () =
  let _, _, _, m = make_env () in
  Machine.park m ~words:4;
  check bool "double park rejected" true
    (try
       Machine.park m ~words:4;
       false
     with Machine.Already_parked _ -> true);
  (* the rejected call left the machine untouched *)
  check bool "still parked" true (Machine.parked m);
  Machine.unpark m;
  Machine.unpark m (* no-op *)

(* --- builders --- *)

let test_cons_and_lists () =
  let _, _, gc, m = make_env () in
  ignore gc;
  let l = Builder.list_of m [ 10; 20; 30 ] in
  check (Alcotest.list int) "values" [ 10; 20; 30 ] (Builder.list_values m l);
  check int "length" 3 (Builder.list_length m l);
  check int "car" 10 (Builder.car m l);
  let empty = Builder.list_of m [] in
  check int "empty list is nil" Builder.nil (Addr.to_int empty)

let test_list_survives_collections_during_build () =
  (* list_of keeps the partial list in register 1: force tiny heap so
     collections happen mid-build *)
  let _, _, gc, m = make_env ~heap_kb:64 () in
  ignore gc;
  let l = Builder.list_of m (List.init 2000 Fun.id) in
  check int "all cells built" 2000 (Builder.list_length m l)

let test_alloc_cycle () =
  let _, _, gc, m = make_env () in
  let head = Builder.alloc_cycle m ~n:5 in
  let cells = Builder.cycle_cells m head in
  check int "five cells" 5 (List.length cells);
  (* following next five times returns to head *)
  let next a = Addr.of_int (Gc.get_field gc a 0) in
  let rec follow a k = if k = 0 then a else follow (next a) (k - 1) in
  check int "cycle closes" (Addr.to_int head) (Addr.to_int (follow head 5))

let test_alloc_cycle_8_byte_magic () =
  let _, _, gc, m = make_env () in
  let head = Builder.alloc_cycle ~cell_bytes:8 m ~n:3 in
  check int "pcr magic in second word" 0xCAFE0000 (Gc.get_field gc head 1)

let test_alloc_cycle_survives_collections () =
  let _, _, _, m = make_env ~heap_kb:128 () in
  let head = Builder.alloc_cycle m ~n:8000 in
  check int "full cycle intact" 8000 (List.length (Builder.cycle_cells m head))

let test_atomic_vs_scanned_array () =
  let _, _, gc, m = make_env () in
  Gc.set_auto_collect gc false;
  let victim1 = Gc.allocate gc 8 in
  let victim2 = Gc.allocate gc 8 in
  let atomic = Builder.atomic_array m [| Addr.to_int victim1 |] in
  let scanned = Builder.scanned_array m [| Addr.to_int victim2 |] in
  Machine.clear_registers m;
  (* root both arrays through registers *)
  Machine.set_register m 10 (Addr.to_int atomic);
  Machine.set_register m 11 (Addr.to_int scanned);
  Gc.collect gc;
  check bool "atomic payload not traced" false (Gc.is_allocated gc victim1);
  check bool "scanned payload traced" true (Gc.is_allocated gc victim2)

let test_grid_embedded_shape () =
  let _, _, gc, m = make_env () in
  let g = Builder.grid_embedded m ~rows:3 ~cols:4 in
  check int "vertex count" 12 (Array.length g.Builder.vertices);
  check int "no spine" 0 (Array.length g.Builder.spine);
  (* right link of (0,0) is (0,1); down link is (1,0) *)
  let v00 = g.Builder.vertices.(0) in
  check int "right link" (Addr.to_int g.Builder.vertices.(1)) (Gc.get_field gc v00 0);
  check int "down link" (Addr.to_int g.Builder.vertices.(4)) (Gc.get_field gc v00 1);
  (* last vertex has no links *)
  let last = g.Builder.vertices.(11) in
  check int "no right at edge" 0 (Gc.get_field gc last 0);
  check int "no down at edge" 0 (Gc.get_field gc last 1)

let test_grid_separate_shape () =
  let _, _, gc, m = make_env () in
  ignore gc;
  let g = Builder.grid_separate m ~rows:3 ~cols:4 in
  check int "vertex count" 12 (Array.length g.Builder.vertices);
  check int "spine: one cons per vertex per direction" (2 * 12) (Array.length g.Builder.spine);
  (* row 0 chain visits vertices (0,0)..(0,3) *)
  let row0 = Addr.of_int (Gc.get_field gc g.Builder.headers 0) in
  let rec chain c = if Addr.to_int c = Builder.nil then [] else Builder.car m c :: chain (Addr.of_int (Builder.cdr m c)) in
  check (Alcotest.list int) "row 0 vertices"
    (List.init 4 (fun i -> Addr.to_int g.Builder.vertices.(i)))
    (chain row0)

let test_queue_fifo () =
  let _, _, _, m = make_env () in
  let q = Builder.queue_create m in
  ignore (Builder.queue_push q 1);
  ignore (Builder.queue_push q 2);
  ignore (Builder.queue_push q 3);
  check int "length" 3 (Builder.queue_length q);
  check (Alcotest.option int) "fifo 1" (Some 1) (Builder.queue_pop q);
  check (Alcotest.option int) "fifo 2" (Some 2) (Builder.queue_pop q);
  ignore (Builder.queue_push q 4);
  check (Alcotest.option int) "fifo 3" (Some 3) (Builder.queue_pop q);
  check (Alcotest.option int) "fifo 4" (Some 4) (Builder.queue_pop q);
  check (Alcotest.option int) "empty" None (Builder.queue_pop q)

let test_queue_clear_link_semantics () =
  let _, _, gc, m = make_env () in
  let q = Builder.queue_create m in
  let n1 = Builder.queue_push q 1 in
  ignore (Builder.queue_push q 2);
  ignore (Builder.queue_pop ~clear_link:true q);
  check int "cleared link" 0 (Gc.get_field gc n1 0);
  let q2 = Builder.queue_create m in
  let n1 = Builder.queue_push q2 1 in
  ignore (Builder.queue_push q2 2);
  ignore (Builder.queue_pop q2);
  check bool "kept link" true (Gc.get_field gc n1 0 <> 0)

let test_tree_shape () =
  let _, _, _, m = make_env () in
  let root = Builder.tree_build m ~depth:4 in
  check int "perfect tree size" 31 (Builder.tree_size m root);
  let leaf = Builder.tree_build m ~depth:0 in
  check int "leaf" 1 (Builder.tree_size m leaf)

let () =
  Alcotest.run "mutator"
    [
      ( "stack",
        [
          Alcotest.test_case "grows down" `Quick test_stack_grows_down;
          Alcotest.test_case "frame size" `Quick test_frame_size_includes_padding;
          Alcotest.test_case "locals" `Quick test_locals_read_write;
          Alcotest.test_case "local bounds" `Quick test_local_bounds;
          Alcotest.test_case "frames dirty by default" `Quick test_frames_not_cleared_by_default;
          Alcotest.test_case "frames cleared on entry" `Quick test_frames_cleared_when_configured;
          Alcotest.test_case "frames cleared on exit" `Quick test_frames_cleared_on_exit;
          Alcotest.test_case "nesting" `Quick test_nested_calls;
          Alcotest.test_case "overflow" `Quick test_stack_overflow_detected;
          Alcotest.test_case "low water" `Quick test_low_water_tracking;
          Alcotest.test_case "exception safety" `Quick test_exception_restores_sp;
        ] );
      ( "roots",
        [
          Alcotest.test_case "registers" `Quick test_registers;
          Alcotest.test_case "register root" `Quick test_register_is_gc_root;
          Alcotest.test_case "live stack root" `Quick test_live_stack_is_gc_root;
          Alcotest.test_case "dead stack not root" `Quick test_dead_stack_not_a_root;
          Alcotest.test_case "stale pointer re-exposed" `Quick test_regrown_stack_exposes_stale_pointer;
          Alcotest.test_case "allocator scratch" `Quick test_allocator_scratch_cleanup;
          Alcotest.test_case "clear dead stack" `Quick test_clear_dead_stack;
          Alcotest.test_case "r0 result" `Quick test_register_allocation_result;
          Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
          Alcotest.test_case "park pins stale stack" `Quick test_park_extends_live_stack;
          Alcotest.test_case "park twice" `Quick test_park_twice_rejected;
        ] );
      ( "builder",
        [
          Alcotest.test_case "cons and lists" `Quick test_cons_and_lists;
          Alcotest.test_case "list build under GC" `Quick test_list_survives_collections_during_build;
          Alcotest.test_case "alloc cycle" `Quick test_alloc_cycle;
          Alcotest.test_case "pcr cells" `Quick test_alloc_cycle_8_byte_magic;
          Alcotest.test_case "cycle build under GC" `Quick test_alloc_cycle_survives_collections;
          Alcotest.test_case "atomic vs scanned" `Quick test_atomic_vs_scanned_array;
          Alcotest.test_case "grid embedded" `Quick test_grid_embedded_shape;
          Alcotest.test_case "grid separate" `Quick test_grid_separate_shape;
          Alcotest.test_case "queue fifo" `Quick test_queue_fifo;
          Alcotest.test_case "queue links" `Quick test_queue_clear_link_semantics;
          Alcotest.test_case "tree" `Quick test_tree_shape;
        ] );
    ]
