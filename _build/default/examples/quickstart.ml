(* Quickstart: create a simulated address space, run the conservative
   collector in it, and watch blacklisting defeat a planted false
   reference.

     dune exec examples/quickstart.exe
*)

open Cgc_vm

let () =
  (* 1. A 32-bit address space with a static data segment (the roots). *)
  let mem = Mem.create ~endian:Endian.Little () in
  let data =
    Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000
  in

  (* 2. A conservative collector owning an 8 MB heap reserve at 4 MB. *)
  let gc = Cgc.Gc.create mem ~base:(Addr.of_int 0x400000) ~max_bytes:(8 * 1024 * 1024) () in
  Cgc.Gc.add_static_root gc ~lo:(Segment.base data) ~hi:(Segment.limit data) ~label:"globals";

  (* 3. Allocate a small linked structure, rooted in a global slot. *)
  let cell v next =
    let c = Cgc.Gc.allocate gc 8 in
    Cgc.Gc.set_field gc c 0 next;
    Cgc.Gc.set_field gc c 1 v;
    c
  in
  let c3 = cell 30 0 in
  let c2 = cell 20 (Addr.to_int c3) in
  let c1 = cell 10 (Addr.to_int c2) in
  Segment.write_word data (Segment.base data) (Addr.to_int c1);
  Format.printf "built c1=%a -> c2=%a -> c3=%a@." Addr.pp c1 Addr.pp c2 Addr.pp c3;

  (* 4. Collect: everything reachable from the global survives. *)
  Cgc.Gc.collect gc;
  Format.printf "after GC with root: c1 live=%b c2 live=%b c3 live=%b@."
    (Cgc.Gc.is_allocated gc c1) (Cgc.Gc.is_allocated gc c2) (Cgc.Gc.is_allocated gc c3);

  (* 5. Drop the root, register a finalizer, collect again. *)
  Cgc.Gc.add_finalizer gc c1 ~token:"the chain";
  Segment.write_word data (Segment.base data) 0;
  Cgc.Gc.collect gc;
  List.iter
    (fun (a, tok) -> Format.printf "finalized %a (%s)@." Addr.pp a tok)
    (Cgc.Gc.drain_finalized gc);

  (* 6. The paper's central trick: an integer that merely LOOKS like a
        heap pointer blacklists its page, and the allocator then avoids
        that page — even though the heap has not grown there yet. *)
  let poisoned_page = Cgc.Heap.page_addr (Cgc.Gc.heap gc) 100 in
  let suspicious = Addr.to_int (Addr.add poisoned_page 8) in
  Segment.write_word data (Addr.add (Segment.base data) 4) suspicious;
  Cgc.Gc.collect gc;
  Format.printf "planted integer 0x%08x -> %d page(s) blacklisted@." suspicious
    (Cgc.Gc.blacklisted_pages gc);
  let landed = ref false in
  for _ = 1 to 10_000 do
    let a = Cgc.Gc.allocate gc 8 in
    if Addr.equal (Addr.align_down a 4096) poisoned_page then landed := true
  done;
  Format.printf "10000 allocations later, any on the poisoned page? %b@." !landed;

  (* 7. Statistics. *)
  Format.printf "@.%a@." Cgc.Stats.pp (Cgc.Gc.stats gc)
