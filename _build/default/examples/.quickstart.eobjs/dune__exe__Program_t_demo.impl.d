examples/program_t_demo.ml: Cgc Cgc_workloads Format
