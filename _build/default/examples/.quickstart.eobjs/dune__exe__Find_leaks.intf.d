examples/find_leaks.mli:
