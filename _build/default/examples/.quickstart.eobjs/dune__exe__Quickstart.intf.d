examples/quickstart.mli:
