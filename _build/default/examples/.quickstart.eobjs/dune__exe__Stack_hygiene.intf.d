examples/stack_hygiene.mli:
