examples/find_leaks.ml: Addr Cgc Cgc_vm Format List Mem Segment
