examples/stack_hygiene.ml: Cgc_workloads Format List
