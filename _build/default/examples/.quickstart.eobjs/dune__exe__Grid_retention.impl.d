examples/grid_retention.ml: Cgc_workloads Format
