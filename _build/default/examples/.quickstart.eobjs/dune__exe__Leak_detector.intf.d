examples/leak_detector.mli:
