examples/program_t_demo.mli:
