examples/grid_retention.mli:
