examples/leak_detector.ml: Addr Cgc Cgc_mutator Cgc_vm Cgc_workloads Format List Printf
