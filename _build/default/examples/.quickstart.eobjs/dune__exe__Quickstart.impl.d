examples/quickstart.ml: Addr Cgc Cgc_vm Endian Format List Mem Segment
