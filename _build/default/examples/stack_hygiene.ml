(* Section 3.1 of the paper: stack hygiene.  A recursive, non-destructive
   list reversal paints the simulated stack with pointers; uninitialized
   frames re-expose them to the conservative scan.  The collector's cheap
   dead-stack clearing helps; compiling the reversal to a loop helps most.

     dune exec examples/stack_hygiene.exe
*)

module List_reverse = Cgc_workloads.List_reverse

let () =
  let elements = 200 and iterations = 20 in
  Format.printf "Reversing a %d-element list %d times, non-destructively:@.@." elements iterations;
  List.iter
    (fun mode ->
      let r = List_reverse.run mode ~elements ~iterations in
      Format.printf "  %a@." List_reverse.pp r)
    [ List_reverse.Careless; List_reverse.Cleared; List_reverse.Optimized ];
  Format.printf
    "@.True live data is just %d cells (the list and its newest reversal).@.\
     Everything above that is garbage pinned by stale stack words — the@.\
     paper saw 40,000-100,000 apparently live cells for a 1000-element@.\
     list, at most 18,000 with cheap stack clearing, and ~2000 once the@.\
     compiler turned the tail recursion into a loop.@."
    (2 * elements)
