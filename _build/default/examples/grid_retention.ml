(* Figures 3 and 4 of the paper: how much of a doubly-linked grid does
   one false reference retain?  Embedded link fields lose a quarter of
   the structure on average; separate cons-cell spines lose at most one
   row or column.

     dune exec examples/grid_retention.exe
*)

module Grid = Cgc_workloads.Grid

let () =
  let rows = 20 and cols = 20 in
  Format.printf "One false reference into a %dx%d grid:@.@." rows cols;
  (* deterministic corners first *)
  let show repr target label =
    let r = Grid.run_one repr ~rows ~cols ~target in
    Format.printf "  %-9s false ref at %-22s retains %4d of %4d cells (%.1f%%)@."
      (match repr with Grid.Embedded -> "embedded" | Grid.Separate -> "separate")
      label r.Grid.retained_cells r.Grid.total_cells
      (100. *. r.Grid.retained_fraction)
  in
  show Grid.Embedded 0 "the top-left vertex";
  show Grid.Embedded (((rows / 2) * cols) + (cols / 2)) "the centre vertex";
  show Grid.Embedded ((rows * cols) - 1) "the bottom-right vertex";
  show Grid.Separate 0 "a vertex";
  show Grid.Separate (rows * cols) "a spine cons cell";
  Format.printf "@.Averaged over random injection points:@.@.";
  Format.printf "  %a@." Grid.pp_summary (Grid.run_trials Grid.Embedded ~rows ~cols ~trials:40);
  Format.printf "  %a@." Grid.pp_summary (Grid.run_trials Grid.Separate ~rows ~cols ~trials:40);
  Format.printf
    "@.\"When it is possible, the introduction of explicit cons-cells conveys@.\
     more information to the garbage collector than the use of embedded link@.\
     fields, and should be encouraged, in the presence of any garbage@.\
     collector.\" (section 4)@."
