(* The collector as a debugging tool (paper, introduction: conservative
   collectors "have also been used as a debugging tool for programs that
   explicitly deallocate storage").

   A small "C program" manages an object pool with explicit free().  It
   has two classic bugs: a leak (an object dropped without free) and a
   premature free (an object freed while a neighbour still points at
   it).  Debug.check finds both and Trace.why_live explains the second.

     dune exec examples/find_leaks.exe
*)

open Cgc_vm
module Debug = Cgc.Debug
module Trace = Cgc.Trace

let () =
  let mem = Mem.create () in
  let globals =
    Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000
  in
  let gc = Cgc.Gc.create mem ~base:(Addr.of_int 0x400000) ~max_bytes:(4 * 1024 * 1024) () in
  Cgc.Gc.add_static_root gc ~lo:(Segment.base globals) ~hi:(Segment.limit globals) ~label:"globals";
  let d = Debug.create gc in

  (* the "program": a registry (kept in a global) of session records,
     each pointing at a buffer *)
  let session tag =
    let buffer = Debug.allocate d ~tag:(tag ^ ".buffer") 64 in
    let record = Debug.allocate d ~tag:(tag ^ ".record") 8 in
    Cgc.Gc.set_field gc record 0 (Addr.to_int buffer);
    (record, buffer)
  in
  let r1, b1 = session "login" in
  let r2, _b2 = session "upload" in
  let _r3, b3 = session "search" in
  Segment.write_word globals (Segment.base globals) (Addr.to_int r1);
  Segment.write_word globals (Addr.add (Segment.base globals) 4) (Addr.to_int r2);
  (* BUG 1: the "search" session record is dropped without free —
     its record AND buffer leak *)
  (* BUG 2: login's buffer is freed while its record still points at it *)
  Debug.free d b1;

  Format.printf "audit #1:@.%a@." Debug.pp_report (Debug.check d);

  (* why is the prematurely-freed buffer still reachable? ask the tracer *)
  (match Trace.why_live gc b1 with
  | Some chain -> Format.printf "why is login.buffer still live?@.%a@." Trace.pp_chain chain
  | None -> Format.printf "login.buffer is unreachable@.");

  (* fix the program: sever the dangling pointer and free the leak *)
  Cgc.Gc.set_field gc r1 0 0;
  Debug.free d b3;
  (* (the search record address was lost — the leak report gave it to us) *)
  (match (Debug.check d).Debug.leaks with
  | leaks ->
      List.iter (fun f -> Debug.free d f.Debug.address) leaks);

  Format.printf "@.audit #2, after the fixes:@.%a@." Debug.pp_report (Debug.check d)
