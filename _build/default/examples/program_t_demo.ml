(* Program T (appendix A of the paper), reduced scale: allocate circular
   lists on a simulated SPARCstation with a statically linked C library,
   drop them, and measure how many the collector fails to reclaim — with
   and without blacklisting.

     dune exec examples/program_t_demo.exe
*)

module Platform = Cgc_workloads.Platform
module Program_t = Cgc_workloads.Program_t

let () =
  let platform = Platform.sparc_static ~optimized:false in
  Format.printf "platform: %a@.@." Platform.pp platform;
  (* "a quick examination of the blacklist in a statically linked SPARC
     executable": build the environment and look at the page map after
     the startup collection, before any allocation *)
  let env = Platform.build_env ~blacklisting:true ~heap_max:(2 * 1024 * 1024) platform in
  Cgc.Gc.collect env.Platform.gc;
  Format.printf "the blacklist after the startup collection (# = blacklisted, . = free):@.%a@.@."
    Cgc.Inspect.pp_page_map env.Platform.gc;
  (* 40 lists of 2500 4-byte cells: a tenth of the paper's scale, same
     phenomena *)
  let row = Program_t.run_row ~lists:40 ~nodes:2500 platform in
  Format.printf "%a@." Program_t.pp_result row.Program_t.without_blacklisting;
  Format.printf "%a@.@." Program_t.pp_result row.Program_t.with_blacklisting;
  let without = row.Program_t.without_blacklisting in
  let with_bl = row.Program_t.with_blacklisting in
  Format.printf
    "The static data segment is full of integers that happen to fall in@.\
     the heap's address range (the paper's base-conversion tables).@.\
     Without blacklisting they pin %d of %d dropped lists (%.0f%%).@.\
     With it, the startup collection records those integers and the@.\
     allocator simply never places lists where they point: %d retained.@."
    without.Program_t.retained without.Program_t.lists without.Program_t.retention_percent
    with_bl.Program_t.retained
