lib/workloads/list_reverse.mli: Format
