lib/workloads/grid.ml: Addr Array Cgc Cgc_mutator Cgc_vm Format Harness List Rng
