lib/workloads/large_object.mli: Format Platform
