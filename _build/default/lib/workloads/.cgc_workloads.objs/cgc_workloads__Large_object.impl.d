lib/workloads/large_object.ml: Cgc Cgc_vm Format List Platform
