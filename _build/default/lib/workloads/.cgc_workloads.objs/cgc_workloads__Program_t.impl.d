lib/workloads/program_t.ml: Addr Cgc Cgc_mutator Cgc_vm Format List Platform Rng Segment String
