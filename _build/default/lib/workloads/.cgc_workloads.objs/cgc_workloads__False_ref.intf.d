lib/workloads/false_ref.mli: Format
