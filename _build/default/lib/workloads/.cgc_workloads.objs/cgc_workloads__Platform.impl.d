lib/workloads/platform.ml: Addr Cgc Cgc_mutator Cgc_vm Char Endian Format Fun Layout List Mem Option Rng Segment String
