lib/workloads/list_reverse.ml: Addr Cgc Cgc_mutator Cgc_vm Format Fun Harness List
