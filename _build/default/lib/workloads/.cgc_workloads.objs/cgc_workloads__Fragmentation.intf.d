lib/workloads/fragmentation.mli: Format
