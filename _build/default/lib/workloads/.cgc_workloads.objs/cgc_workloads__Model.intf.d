lib/workloads/model.mli: Format Platform
