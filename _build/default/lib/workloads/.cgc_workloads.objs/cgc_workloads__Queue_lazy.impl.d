lib/workloads/queue_lazy.ml: Addr Cgc Cgc_mutator Cgc_vm Format Harness List
