lib/workloads/program_t.mli: Format Platform
