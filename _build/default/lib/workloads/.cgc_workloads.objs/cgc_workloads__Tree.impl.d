lib/workloads/tree.ml: Addr Cgc Cgc_mutator Cgc_vm Format Harness List Rng
