lib/workloads/dual_run.mli: Format
