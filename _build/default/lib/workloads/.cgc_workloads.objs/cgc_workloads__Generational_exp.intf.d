lib/workloads/generational_exp.mli: Format
