lib/workloads/grid.mli: Addr Cgc_vm Format
