lib/workloads/generational_exp.ml: Addr Cgc Cgc_mutator Cgc_vm Format Fun Harness List
