lib/workloads/fragmentation.ml: Addr Array Cgc Cgc_vm Format Mem Rng Segment
