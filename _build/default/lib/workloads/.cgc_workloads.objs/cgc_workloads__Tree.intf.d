lib/workloads/tree.mli: Format
