lib/workloads/model.ml: Addr Array Cgc Cgc_vm Format Platform Segment
