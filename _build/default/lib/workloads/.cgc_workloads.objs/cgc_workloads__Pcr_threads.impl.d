lib/workloads/pcr_threads.ml: Addr Array Cgc Cgc_mutator Cgc_vm Format List Mem Platform Printf Segment
