lib/workloads/dual_run.ml: Addr Array Cgc Cgc_vm Format Mem Platform Rng Segment
