lib/workloads/harness.ml: Addr Cgc Cgc_mutator Cgc_vm Endian List Mem Segment
