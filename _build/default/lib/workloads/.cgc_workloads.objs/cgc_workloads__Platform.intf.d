lib/workloads/platform.mli: Addr Cgc Cgc_mutator Cgc_vm Endian Format Layout Mem Segment
