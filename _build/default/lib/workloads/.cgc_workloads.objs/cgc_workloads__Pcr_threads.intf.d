lib/workloads/pcr_threads.mli: Format
