lib/workloads/false_ref.ml: Addr Cgc Cgc_mutator Cgc_vm Endian Format Harness List Mem Platform Rng Segment
