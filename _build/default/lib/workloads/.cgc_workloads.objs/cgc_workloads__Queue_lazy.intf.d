lib/workloads/queue_lazy.mli: Format
