lib/workloads/harness.mli: Addr Cgc Cgc_mutator Cgc_vm Endian Mem Segment
