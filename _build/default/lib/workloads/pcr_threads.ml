open Cgc_vm
module Machine = Cgc_mutator.Machine
module Builder = Cgc_mutator.Builder

type result = {
  threads : int;
  awake : bool;
  lists : int;
  retained : int;
  retention_percent : float;
}

(* PCR thread stacks are not cleared by the collector. *)
let worker_config =
  { Machine.default_config with Machine.frame_padding = 6; allocator_self_cleanup = false }

(* A worker handles a few cells of a list: realistic processing that
   leaves cell pointers in its (soon stale) frames.  Frame shapes vary
   from list to list, as different handler functions would, so several
   lists' pointers survive the overwrites. *)
let process_list worker gc index head =
  Machine.call worker ~slots:(3 + (index mod 5)) (fun frame ->
      Machine.set_local frame 0 (Addr.to_int head);
      let cursor = ref head in
      for step = 1 to 8 do
        Machine.set_local frame (1 + (step mod 2)) (Addr.to_int !cursor);
        cursor := Addr.of_int (Cgc.Gc.get_field gc !cursor 0)
      done)

(* Fresh, pointer-free work: overwrites the worker's stack with harmless
   values — what waking up and serving an unrelated request does. *)
let fresh_work worker =
  let rec busy depth =
    if depth > 0 then
      Machine.call worker ~slots:6 (fun frame ->
          for i = 0 to 5 do
            Machine.set_local frame i (depth * 17 + i)
          done;
          busy (depth - 1))
  in
  busy 24

let run ?(seed = 1993) ?(lists = 80) ?(nodes = 600) ~threads ~awake () =
  (* a quiet PCR world: blacklisting on so static pollution is out of the
     way and thread stacks are the only leak source under study *)
  let platform =
    {
      (Platform.pcr) with
      Platform.pollution = Platform.no_pollution;
      other_live_bytes = 0;
      machine_config = worker_config;
    }
  in
  let env = Platform.build_env ~seed ~blacklisting:true ~heap_max:(16 * 1024 * 1024) platform in
  let gc = env.Platform.gc in
  let main = env.Platform.machine in
  (* worker threads: each gets its own stack segment, sharing the collector *)
  let workers =
    List.init threads (fun i ->
        let stack =
          Mem.map env.Platform.mem ~name:(Printf.sprintf "thread-%d" i) ~kind:Segment.Stack
            ~base:(Addr.of_int (0xD0000000 + (i * 0x20000)))
            ~size:0x10000
        in
        Machine.create ~config:worker_config ~seed:(seed + i) env.Platform.mem ~stack ~gc)
  in
  (* build the lists, rooted in the globals *)
  let heads =
    Array.init lists (fun i ->
        let h = Builder.alloc_cycle ~cell_bytes:8 main ~n:nodes in
        Segment.write_word env.Platform.data (Addr.add env.Platform.globals_base (4 * i))
          (Addr.to_int h);
        h)
  in
  (* workers each process a share of the lists, then block *)
  List.iteri
    (fun w worker ->
      Array.iteri (fun i h -> if i mod max 1 threads = w then process_list worker gc i h) heads;
      Machine.clear_registers worker;
      Machine.park worker ~words:48)
    workers;
  (* the program drops every list *)
  for i = 0 to lists - 1 do
    Segment.write_word env.Platform.data (Addr.add env.Platform.globals_base (4 * i)) 0
  done;
  Machine.clear_registers main;
  (* optionally, the workers wake up and do unrelated work *)
  if awake then
    List.iter
      (fun worker ->
        Machine.unpark worker;
        fresh_work worker;
        Machine.clear_registers worker;
        Machine.park worker ~words:48)
      workers;
  Cgc.Gc.collect gc;
  Cgc.Gc.collect gc;
  let retained = Array.fold_left (fun acc h -> if Cgc.Gc.is_allocated gc h then acc + 1 else acc) 0 heads in
  {
    threads;
    awake;
    lists;
    retained;
    retention_percent = 100. *. float_of_int retained /. float_of_int lists;
  }

let pp ppf r =
  Format.fprintf ppf "%d thread(s), %s: retained %d/%d lists (%.1f%%)" r.threads
    (if r.awake then "woken after drop" else "idle")
    r.retained r.lists r.retention_percent
