(** Generational collection vs stray stack pointers (section 3.1).

    "In the Cedar environment, we also observed that stray stack
    pointers can significantly lengthen the lifetime of some objects,
    thus placing a ceiling on the effectiveness of generational
    collection."

    The workload allocates a batch of short-lived cons cells per round
    inside a stack frame, drops them, and runs a minor collection.  With
    a hygienic machine the batches die young and almost nothing is
    promoted beyond the small live working set; with a careless machine,
    stale frame and register words keep dead batches "reachable" across
    enough minor collections that whole pages of garbage get promoted —
    garbage the minor collector can then never reclaim. *)

type hygiene =
  | Clean  (** frames cleared, allocator tidy, registers scrubbed *)
  | Careless  (** section 3.1's worst case *)

type result = {
  hygiene : hygiene;
  rounds : int;
  batch : int;  (** cons cells allocated and dropped per round *)
  live_set_bytes : int;  (** the only data that deserves promotion *)
  promoted_bytes : int;
  promoted_pages : int;
  minor_collections : int;
  garbage_promoted_bytes : int;  (** promoted beyond the live set (>= 0) *)
}

val run : ?seed:int -> ?batch:int -> hygiene -> rounds:int -> result

val hygiene_name : hygiene -> string
val pp : Format.formatter -> result -> unit
