(** First-principles retention prediction.

    The paper frames leakage as a probability question: a dropped list
    is retained if {e any} scanned word happens to name one of its
    cells.  Given a platform's static pollution, this module counts the
    words that fall inside the region the heap will occupy, and converts
    the count into a predicted no-blacklisting retention:

    The occupied region is divided into one slice per list (lists are
    laid out in allocation order); a list is predicted retained when its
    slice receives at least one in-band word, scaled by the share of the
    region that holds list cells rather than ballast:

    {v predicted = list_share * |slices hit| / L v}

    The slice formulation matters because integer-like pollution is
    bottom-heavy: many in-band words cluster on the same low slices.
    Comparing the prediction with the measured run separates "the
    generator is tuned right" from "the collector behaves right". *)

type prediction = {
  platform : string;
  lists : int;
  scanned_words : int;  (** static words examined (at the platform's alignment) *)
  in_band_words : int;  (** those falling inside the occupied heap region *)
  list_share : float;
  predicted_retention_percent : float;
}

val predict : ?seed:int -> ?lists:int -> ?nodes:int -> Platform.t -> prediction
(** Builds the platform's static data (exactly as {!Program_t.run}
    would), scans it, and applies the formula.  Purely static: no
    allocation, no collection. *)

val pp : Format.formatter -> prediction -> unit
