open Cgc_vm

type prediction = {
  platform : string;
  lists : int;
  scanned_words : int;
  in_band_words : int;
  list_share : float;
  predicted_retention_percent : float;
}

let predict ?(seed = 1993) ?lists ?nodes (platform : Platform.t) =
  let platform = Platform.scale ?lists ?nodes_per_list:nodes platform in
  let lists = platform.Platform.lists in
  let list_bytes = lists * platform.Platform.nodes_per_list * platform.Platform.cell_bytes in
  let occupied = list_bytes + platform.Platform.other_live_bytes in
  (* mirror Program_t.run's reserve so the environment is identical *)
  let heap_max = max (4 * occupied) (8 * 1024 * 1024) in
  let env = Platform.build_env ~seed ~blacklisting:false ~heap_max platform in
  let heap_base = Addr.to_int (Cgc.Heap.base (Cgc.Gc.heap env.Platform.gc)) in
  (* the collector's own page metadata and free slop widen the band a
     little; 10% matches observed committed/live ratios for these runs *)
  let band_hi = heap_base + int_of_float (1.1 *. float_of_int occupied) in
  let scanned = ref 0 in
  let in_band = ref 0 in
  (* integer-like pollution is bottom-heavy, so many in-band words hit
     the same low lists; predicting from distinct hit slices (one slice
     per list, in allocation order) accounts for that clustering *)
  let slice_bytes = max 1 (int_of_float (1.1 *. float_of_int occupied) / lists) in
  let hit = Array.make lists false in
  Segment.iter_words env.Platform.data ~alignment:platform.Platform.scan_alignment
    ~lo:(Segment.base env.Platform.data) ~hi:(Segment.limit env.Platform.data)
    (fun _ value ->
      incr scanned;
      if value >= heap_base && value < band_hi then begin
        incr in_band;
        let slice = (value - heap_base) / slice_bytes in
        if slice < lists then hit.(slice) <- true
      end);
  let list_share = float_of_int list_bytes /. float_of_int (max occupied 1) in
  let slices_hit = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 hit in
  let p_retained = list_share *. float_of_int slices_hit /. float_of_int lists in
  {
    platform = platform.Platform.name;
    lists;
    scanned_words = !scanned;
    in_band_words = !in_band;
    list_share;
    predicted_retention_percent = 100. *. p_retained;
  }

let pp ppf p =
  Format.fprintf ppf "%-18s %6d scanned, %4d in band (share %.2f) -> predicted %5.1f%%"
    p.platform p.scanned_words p.in_band_words p.list_share p.predicted_retention_percent
