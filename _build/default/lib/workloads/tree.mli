(** Section 4, the benign case: balanced binary trees.

    "The expected number of vertices retained as a result of a false
    reference to a balanced binary tree with child links is
    approximately equal to the height of the tree.  Thus a large number
    of false references to such structures can usually be tolerated."
    (A false reference to a uniformly random vertex retains that
    vertex's subtree; over a perfect tree the expected subtree size is
    ≈ height + 1.) *)

type result = {
  depth : int;
  total_nodes : int;
  trials : int;
  mean_retained : float;  (** expected ≈ depth + 1 *)
  max_retained : int;
}

val run : ?seed:int -> depth:int -> trials:int -> unit -> result

val pp : Format.formatter -> result -> unit
