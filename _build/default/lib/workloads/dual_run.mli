(** Footnote 4: the dual-run pointer-identification technique.

    "More accurate techniques are possible at substantial performance
    cost, even for unmodified C code.  For example, under suitable
    conditions, we could run two copies of the same program with heap
    starting addresses that differ by n.  Any two corresponding
    locations whose values do not differ by n are then known not to be
    pointers."

    Our simulation can do exactly this: the same deterministic workload
    runs twice with shifted heaps, the root segments are compared word
    by word, and a value only counts as a pointer when the second run's
    value is the first's plus the shift. *)

type result = {
  shift_bytes : int;
  root_words : int;
  single_run_candidates : int;
      (** root words the conservative test accepts in run 1 *)
  dual_run_candidates : int;  (** of those, values that shifted with the heap *)
  false_refs_eliminated : int;
  genuine_pointers : int;  (** lower bound: pointers the workload really planted *)
  genuine_lost : int;  (** genuine pointers the dual test wrongly rejected (must be 0) *)
}

val run : ?seed:int -> ?shift_pages:int -> ?pollution_words:int -> ?live_cells:int -> unit -> result

val pp : Format.formatter -> result -> unit
