(** Section 5 (conclusions): free-list discipline and fragmentation.

    "Even a completely nonmoving conservative collector should gain a
    slight advantage over a malloc/free implementation, in that it is
    usually much less expensive to keep free lists sorted by address.
    This increases the probability that related objects are allocated
    together, and thus increases the probability of large chunks of
    adjacent space becoming available in the future, decreasing
    fragmentation."

    A churn workload (allocate a population of mixed-size objects,
    repeatedly free a random half and reallocate with a drifting size
    mix) runs against the explicit allocator under both free-list
    policies, and against the collector (whose sweep produces
    address-ordered lists for free). *)

type allocator =
  | Malloc_lifo
  | Malloc_address_ordered
  | Collector

type result = {
  allocator : allocator;
  iterations : int;
  population : int;
  live_bytes : int;
  committed_bytes : int;
  fragmentation : float;  (** committed / live *)
  releasable_pages : int;  (** empty pages that page-level trimming can return *)
}

val run : ?seed:int -> allocator -> population:int -> iterations:int -> result

val allocator_name : allocator -> string
val pp : Format.formatter -> result -> unit
