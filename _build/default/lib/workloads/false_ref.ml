open Cgc_vm
module Mark = Cgc.Mark
module Config = Cgc.Config

type sample_kind =
  | Uniform_words
  | Integer_like

type sweep_point = {
  live_kb : int;
  samples : int;
  kind : sample_kind;
  p_valid_base_only : float;
  p_valid_interior : float;
  p_in_heap_region : float;
}

let sample_value rng = function
  | Uniform_words -> Rng.word rng
  | Integer_like -> Platform.conversion_value rng

(* Fill the heap with [live_kb] KB of live cons cells, chained from a
   root slot. *)
let fill_live h ~live_kb =
  let cells = live_kb * 1024 / 8 in
  let prev = ref 0 in
  for _ = 1 to cells do
    let c = Cgc_mutator.Builder.cons h.Harness.machine ~car:0 ~cdr:!prev in
    prev := Addr.to_int c;
    Harness.set_root h 0 !prev
  done

let misidentification_sweep ?(seed = 7) ?(samples = 200_000) ~kind live_kbs =
  List.map
    (fun live_kb ->
      let heap_kb = max 256 (4 * live_kb) in
      let h = Harness.create ~seed ~heap_kb () in
      fill_live h ~live_kb;
      let heap = Cgc.Gc.heap h.Harness.gc in
      let base_config = Cgc.Gc.config h.Harness.gc in
      let interior = { base_config with Config.interior_pointers = true } in
      let base_only = { base_config with Config.interior_pointers = false } in
      let rng = Rng.create (seed * 31) in
      let n_interior = ref 0 and n_base = ref 0 and n_region = ref 0 in
      for _ = 1 to samples do
        let v = sample_value rng kind in
        (match Mark.classify heap interior v with
        | Mark.Valid _ ->
            incr n_interior;
            incr n_region
        | Mark.False_in_heap _ -> incr n_region
        | Mark.Outside -> ());
        match Mark.classify heap base_only v with
        | Mark.Valid _ -> incr n_base
        | Mark.False_in_heap _ | Mark.Outside -> ()
      done;
      let p n = float_of_int n /. float_of_int samples in
      {
        live_kb;
        samples;
        kind;
        p_valid_base_only = p !n_base;
        p_valid_interior = p !n_interior;
        p_in_heap_region = p !n_region;
      })
    live_kbs

(* --- figure 1 --- *)

type halfword_result = {
  pairs : int;
  false_refs_aligned : int;
  false_refs_unaligned : int;
  example_value : int;
  retained_avoidance_off : int;
  retained_avoidance_on : int;
}

(* Adjacent small integers 16+i, planted big-endian, concatenate at a
   2-byte offset into 0x(0010+i)0000 — a 64 KB boundary inside the
   heap. *)
let halfword_env ~alignment ~avoid ~pairs =
  let config =
    {
      Config.default with
      Config.alignment;
      initial_pages = 16 * pairs (* commit the whole band up front *);
      avoid_trailing_zeros = (if avoid then Some 16 else None);
      blacklisting = true;
    }
  in
  let mem = Mem.create ~endian:Endian.Big () in
  let data =
    Mem.map mem ~name:"pairs" ~kind:Segment.Static_data ~base:(Addr.of_int 0x8000) ~size:0x1000
  in
  let gc =
    Cgc.Gc.create ~config mem ~base:(Addr.of_int 0x100000)
      ~max_bytes:((pairs + 1) * 64 * 1024)
      ()
  in
  Cgc.Gc.add_static_root gc ~lo:(Segment.base data) ~hi:(Segment.limit data) ~label:"pairs";
  (mem, data, gc)

let halfword_study ?(seed = 7) pairs =
  ignore seed (* the study is fully deterministic *);
  if pairs < 1 || pairs > 60 then invalid_arg "False_ref.halfword_study: pairs in [1,60]";
  let boundary i = 0x100000 + (i * 0x10000) in
  let run ~alignment ~avoid =
    let _mem, data, gc = halfword_env ~alignment ~avoid ~pairs in
    Cgc.Gc.set_auto_collect gc false;
    (* fill the band with atomic 8-byte objects (unchained, so retention
       is countable per object) *)
    let n_cells = pairs * 64 * 1024 / 8 in
    for _ = 1 to n_cells do
      ignore (Cgc.Gc.allocate ~pointer_free:true gc 8)
    done;
    (* plant the small-integer pairs *)
    for i = 0 to pairs - 1 do
      Segment.write_word data (Addr.add (Segment.base data) (8 * i)) (16 + i);
      Segment.write_word data (Addr.add (Segment.base data) ((8 * i) + 4)) (17 + i)
    done;
    (* everything is garbage; only the concatenated halfwords can retain *)
    let stats = Cgc.Gc.stats gc in
    let false_before = stats.Cgc.Stats.false_refs in
    Cgc.Gc.collect gc;
    let retained = ref 0 in
    for i = 0 to pairs - 1 do
      if Cgc.Gc.find_object gc (Addr.of_int (boundary i)) <> None then incr retained
    done;
    (stats.Cgc.Stats.false_refs - false_before, !retained)
  in
  let false_aligned, _ = run ~alignment:4 ~avoid:false in
  let false_unaligned, retained_off = run ~alignment:2 ~avoid:false in
  let _, retained_on = run ~alignment:2 ~avoid:true in
  {
    pairs;
    false_refs_aligned = false_aligned;
    false_refs_unaligned = false_unaligned;
    example_value = boundary 0;
    retained_avoidance_off = retained_off;
    retained_avoidance_on = retained_on;
  }

(* --- placement --- *)

type placement_result = {
  heap_base : int;
  p_false : float;
}

let placement_study ?(seed = 7) ?(samples = 200_000) live_kb =
  List.map
    (fun heap_base ->
      let mem = Mem.create () in
      let data =
        Mem.map mem ~name:"roots" ~kind:Segment.Static_data ~base:(Addr.of_int 0x8000) ~size:0x1000
      in
      let config = { Config.default with Config.initial_pages = 16 } in
      let gc =
        Cgc.Gc.create ~config mem ~base:(Addr.of_int heap_base)
          ~max_bytes:(max (256 * 1024) (4 * live_kb * 1024))
          ()
      in
      Cgc.Gc.add_static_root gc ~lo:(Segment.base data) ~hi:(Segment.limit data) ~label:"roots";
      (* live data chained from a root *)
      let prev = ref 0 in
      for _ = 1 to live_kb * 1024 / 8 do
        let c = Cgc.Gc.allocate gc 8 in
        Cgc.Gc.set_field gc c 1 !prev;
        prev := Addr.to_int c;
        Segment.write_word data (Segment.base data) !prev
      done;
      let rng = Rng.create (seed * 17) in
      let heap = Cgc.Gc.heap gc in
      let hits = ref 0 in
      for _ = 1 to samples do
        match Mark.classify heap (Cgc.Gc.config gc) (Platform.conversion_value rng) with
        | Mark.Valid _ -> incr hits
        | Mark.False_in_heap _ | Mark.Outside -> ()
      done;
      { heap_base; p_false = float_of_int !hits /. float_of_int samples })
    [ 0x60000; 0x40000000 ]

let kind_name = function
  | Uniform_words -> "uniform"
  | Integer_like -> "integer-like"

let pp_sweep_point ppf p =
  Format.fprintf ppf
    "%4d KB live (%s): P(valid|base-only)=%.5f  P(valid|interior)=%.5f  P(in-region)=%.5f"
    p.live_kb (kind_name p.kind) p.p_valid_base_only p.p_valid_interior p.p_in_heap_region

let pp_halfword ppf r =
  Format.fprintf ppf
    "%d pairs: false refs align4=%d align2=%d (e.g. 0x%08x); retained: %d without avoidance, %d with"
    r.pairs r.false_refs_aligned r.false_refs_unaligned r.example_value r.retained_avoidance_off
    r.retained_avoidance_on

let pp_placement ppf r = Format.fprintf ppf "heap at 0x%08x: P(misidentified)=%.5f" r.heap_base r.p_false
