module Config = Cgc.Config

type probe = {
  size_kb : int;
  anywhere_ok : bool;
  first_page_ok : bool;
}

type result = {
  black_pages : int;
  heap_pages : int;
  probes : probe list;
  largest_anywhere_kb : int;
  largest_first_page_kb : int;
}

let try_place ~seed ~platform ~large_validity ~size_kb =
  let platform =
    {
      platform with
      Platform.gc_tweak =
        (fun c ->
          {
            (platform.Platform.gc_tweak c) with
            Config.large_validity;
            interior_pointers = true;
            blacklisting = true;
          });
    }
  in
  (* modest reserve: the denser the blacklist relative to the reserve,
     the harder large placement gets — as on the real SPARC *)
  let env = Platform.build_env ~seed ~blacklisting:true ~heap_max:(8 * 1024 * 1024) platform in
  let gc = env.Platform.gc in
  (* startup collection populates the blacklist before any allocation *)
  Cgc.Gc.collect gc;
  Cgc.Gc.set_auto_collect gc false;
  let ok =
    match Cgc.Gc.allocate gc (size_kb * 1024) with
    | (_ : Cgc_vm.Addr.t) -> true
    | exception Cgc.Gc.Out_of_memory _ -> false
  in
  (ok, Cgc.Gc.blacklisted_pages gc, Cgc.Heap.n_pages (Cgc.Gc.heap gc))

let run ?(seed = 1993) ?(platform = Platform.sparc_static ~optimized:false) ~sizes_kb () =
  let black = ref 0 and pages = ref 0 in
  let probes =
    List.map
      (fun size_kb ->
        let anywhere_ok, b, p = try_place ~seed ~platform ~large_validity:Config.Anywhere ~size_kb in
        let first_page_ok, _, _ =
          try_place ~seed ~platform ~large_validity:Config.First_page_only ~size_kb
        in
        black := b;
        pages := p;
        { size_kb; anywhere_ok; first_page_ok })
      sizes_kb
  in
  let largest pred =
    List.fold_left (fun acc p -> if pred p then max acc p.size_kb else acc) 0 probes
  in
  {
    black_pages = !black;
    heap_pages = !pages;
    probes;
    largest_anywhere_kb = largest (fun p -> p.anywhere_ok);
    largest_first_page_kb = largest (fun p -> p.first_page_ok);
  }

let pp ppf r =
  Format.fprintf ppf "@[<v>blacklist: %d of %d heap pages@," r.black_pages r.heap_pages;
  List.iter
    (fun p ->
      Format.fprintf ppf "  %5d KB: anywhere=%s first-page-only=%s@," p.size_kb
        (if p.anywhere_ok then "ok " else "FAIL")
        (if p.first_page_ok then "ok " else "FAIL"))
    r.probes;
  Format.fprintf ppf "largest placeable: %d KB (anywhere), %d KB (first-page-only)@]"
    r.largest_anywhere_kb r.largest_first_page_kb
