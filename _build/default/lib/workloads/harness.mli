(** Minimal clean environment for structure-retention experiments.

    Unlike {!Platform.build_env}, the static segment contains nothing but
    the experiment's own root slots, so every retained byte is
    attributable to the experiment's injected references. *)

open Cgc_vm

type t = {
  mem : Mem.t;
  data : Segment.t;
  stack : Segment.t;
  gc : Cgc.Gc.t;
  machine : Cgc_mutator.Machine.t;
}

val create :
  ?seed:int ->
  ?endian:Endian.t ->
  ?config:Cgc.Config.t ->
  ?machine_config:Cgc_mutator.Machine.config ->
  ?heap_kb:int ->
  unit ->
  t
(** Defaults: little-endian, default collector configuration (with a
    16-page initial heap), default machine, 4 MB heap reserve. *)

val root_slot : t -> int -> Addr.t
(** Address of root word [i] in the static segment. *)

val set_root : t -> int -> int -> unit
val get_root : t -> int -> int
val clear_roots_area : t -> unit

val count_allocated : t -> Addr.t list -> int
(** How many of the given object bases are still allocated. *)
