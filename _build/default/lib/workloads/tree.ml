open Cgc_vm
module Builder = Cgc_mutator.Builder

type result = {
  depth : int;
  total_nodes : int;
  trials : int;
  mean_retained : float;
  max_retained : int;
}

let run ?(seed = 7) ~depth ~trials () =
  if trials < 1 then invalid_arg "Tree.run: need at least one trial";
  let rng = Rng.create seed in
  let retained_counts =
    List.init trials (fun i ->
        let h = Harness.create ~seed:(seed + i) () in
        let root = Builder.tree_build h.Harness.machine ~depth in
        Cgc_mutator.Machine.clear_registers h.Harness.machine;
        Harness.set_root h 0 (Addr.to_int root);
        Cgc.Gc.collect h.Harness.gc;
        let nodes = Builder.tree_nodes h.Harness.machine root in
        let total = List.length nodes in
        assert (total = (1 lsl (depth + 1)) - 1);
        Harness.set_root h 0 0;
        let victim = List.nth nodes (Rng.int rng total) in
        Harness.set_root h 1 (Addr.to_int victim);
        Cgc.Gc.collect h.Harness.gc;
        Harness.count_allocated h nodes)
  in
  let total_nodes = (1 lsl (depth + 1)) - 1 in
  {
    depth;
    total_nodes;
    trials;
    mean_retained =
      float_of_int (List.fold_left ( + ) 0 retained_counts) /. float_of_int trials;
    max_retained = List.fold_left max 0 retained_counts;
  }

let pp ppf r =
  Format.fprintf ppf
    "depth-%d tree (%d nodes), %d trials: mean %.1f nodes retained (height+1 = %d), max %d"
    r.depth r.total_nodes r.trials r.mean_retained (r.depth + 1) r.max_retained
