open Cgc_vm
module Mark = Cgc.Mark
module Config = Cgc.Config

type result = {
  shift_bytes : int;
  root_words : int;
  single_run_candidates : int;
  dual_run_candidates : int;
  false_refs_eliminated : int;
  genuine_pointers : int;
  genuine_lost : int;
}

type run_image = {
  root_values : int array;
  genuine_slots : bool array;  (** which root slots hold real pointers *)
  gc : Cgc.Gc.t;
}

(* One deterministic execution with the heap based at [heap_base].
   Blacklisting is off so both runs allocate identically. *)
let execute ~seed ~heap_base ~pollution_words ~live_cells =
  let mem = Mem.create () in
  let data =
    Mem.map mem ~name:"roots" ~kind:Segment.Static_data ~base:(Addr.of_int 0x8000) ~size:0x2000
  in
  let config = { Config.default with Config.blacklisting = false; initial_pages = 16 } in
  let gc = Cgc.Gc.create ~config mem ~base:(Addr.of_int heap_base) ~max_bytes:(8 * 1024 * 1024) () in
  Cgc.Gc.add_static_root gc ~lo:(Segment.base data) ~hi:(Segment.limit data) ~label:"roots";
  let n_words = Segment.size data / 4 in
  let genuine = Array.make n_words false in
  let rng = Rng.create seed in
  (* integer pollution: identical absolute values in both runs *)
  for i = 0 to pollution_words - 1 do
    Segment.write_word data (Addr.add (Segment.base data) (4 * i)) (Platform.conversion_value rng)
  done;
  (* live structure: chained cons cells; head and a few interior cells
     stored as genuine pointers after the pollution area *)
  let cells = Array.make live_cells 0 in
  let prev = ref 0 in
  for i = 0 to live_cells - 1 do
    let c = Cgc.Gc.allocate gc 8 in
    Cgc.Gc.set_field gc c 1 !prev;
    prev := Addr.to_int c;
    cells.(i) <- !prev;
    (* keep it rooted during construction *)
    Segment.write_word data (Addr.add (Segment.base data) (4 * pollution_words)) !prev
  done;
  let genuine_count = 8 in
  for k = 0 to genuine_count - 1 do
    let slot = pollution_words + k in
    let cell = cells.(Rng.int rng live_cells) in
    Segment.write_word data (Addr.add (Segment.base data) (4 * slot)) cell;
    genuine.(slot) <- true
  done;
  let root_values =
    Array.init n_words (fun i -> Segment.read_word data (Addr.add (Segment.base data) (4 * i)))
  in
  { root_values; genuine_slots = genuine; gc }

let run ?(seed = 7) ?(shift_pages = 37) ?(pollution_words = 1024) ?(live_cells = 20_000) () =
  let base1 = 0x100000 in
  let shift_bytes = shift_pages * 4096 in
  let r1 = execute ~seed ~heap_base:base1 ~pollution_words ~live_cells in
  let r2 = execute ~seed ~heap_base:(base1 + shift_bytes) ~pollution_words ~live_cells in
  let heap1 = Cgc.Gc.heap r1.gc in
  let config1 = Cgc.Gc.config r1.gc in
  let n = Array.length r1.root_values in
  let single = ref 0 and dual = ref 0 and genuine_kept = ref 0 and genuine_total = ref 0 in
  for i = 0 to n - 1 do
    let v1 = r1.root_values.(i) and v2 = r2.root_values.(i) in
    let conservative_ok =
      match Mark.classify heap1 config1 v1 with
      | Mark.Valid _ -> true
      | Mark.False_in_heap _ | Mark.Outside -> false
    in
    if conservative_ok then begin
      incr single;
      if v2 - v1 = shift_bytes then incr dual
    end;
    if r1.genuine_slots.(i) then begin
      incr genuine_total;
      if conservative_ok && v2 - v1 = shift_bytes then incr genuine_kept
    end
  done;
  {
    shift_bytes;
    root_words = n;
    single_run_candidates = !single;
    dual_run_candidates = !dual;
    false_refs_eliminated = !single - !dual;
    genuine_pointers = !genuine_total;
    genuine_lost = !genuine_total - !genuine_kept;
  }

let pp ppf r =
  Format.fprintf ppf
    "shift %d bytes over %d root words: %d conservative candidates -> %d dual-confirmed (%d false refs eliminated, %d/%d genuine kept)"
    r.shift_bytes r.root_words r.single_run_candidates r.dual_run_candidates
    r.false_refs_eliminated (r.genuine_pointers - r.genuine_lost) r.genuine_pointers
