open Cgc_vm
module Config = Cgc.Config
module Explicit = Cgc.Explicit

type allocator =
  | Malloc_lifo
  | Malloc_address_ordered
  | Collector

type result = {
  allocator : allocator;
  iterations : int;
  population : int;
  live_bytes : int;
  committed_bytes : int;
  fragmentation : float;
  releasable_pages : int;
}

(* A drifting size mix: early iterations favour small objects, later
   ones larger — the pattern that fragments size-classed heaps. *)
let size_of rng iter =
  let bases = [| 8; 16; 24; 32; 48; 64 |] in
  let drift = iter / 4 mod 4 in
  bases.(min (Array.length bases - 1) (Rng.int rng 3 + drift))

let heap_base = Addr.of_int 0x400000
let reserve = 32 * 1024 * 1024

let run_malloc ~seed ~policy ~population ~iterations =
  let mem = Mem.create () in
  let e = Explicit.create ~policy mem ~base:heap_base ~max_bytes:reserve () in
  let rng = Rng.create seed in
  let objects = Array.make population Addr.zero in
  for i = 0 to population - 1 do
    objects.(i) <- Explicit.malloc e (size_of rng 0)
  done;
  for iter = 1 to iterations do
    for i = 0 to population - 1 do
      if Rng.bool rng then begin
        Explicit.free e objects.(i);
        objects.(i) <- Explicit.malloc e (size_of rng iter)
      end
    done
  done;
  let releasable = Explicit.release_empty_pages e in
  (Explicit.live_bytes e, Explicit.committed_bytes e, releasable)

let run_collector ~seed ~population ~iterations =
  let mem = Mem.create () in
  let table =
    Mem.map mem ~name:"table" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000)
      ~size:(((population * 4 / 0x1000) + 1) * 0x1000)
  in
  let config = { Config.default with Config.initial_pages = 16 } in
  let gc = Cgc.Gc.create ~config mem ~base:heap_base ~max_bytes:reserve () in
  Cgc.Gc.add_static_root gc ~lo:(Segment.base table) ~hi:(Segment.limit table) ~label:"table";
  let rng = Rng.create seed in
  let slot i = Addr.add (Segment.base table) (4 * i) in
  for i = 0 to population - 1 do
    Segment.write_word table (slot i) (Addr.to_int (Cgc.Gc.allocate gc (size_of rng 0)))
  done;
  for iter = 1 to iterations do
    for i = 0 to population - 1 do
      if Rng.bool rng then begin
        Segment.write_word table (slot i) 0;
        Segment.write_word table (slot i) (Addr.to_int (Cgc.Gc.allocate gc (size_of rng iter)))
      end
    done
  done;
  Cgc.Gc.collect gc;
  let heap = Cgc.Gc.heap gc in
  let used_pages = Cgc.Heap.committed_pages heap - Cgc.Heap.free_page_count heap in
  (Cgc.Gc.live_bytes gc, used_pages * Cgc.Heap.page_size heap, Cgc.Heap.free_page_count heap)

let run ?(seed = 7) allocator ~population ~iterations =
  let live, committed, releasable =
    match allocator with
    | Malloc_lifo -> run_malloc ~seed ~policy:Cgc.Free_list.Lifo ~population ~iterations
    | Malloc_address_ordered ->
        run_malloc ~seed ~policy:Cgc.Free_list.Address_ordered ~population ~iterations
    | Collector -> run_collector ~seed ~population ~iterations
  in
  {
    allocator;
    iterations;
    population;
    live_bytes = live;
    committed_bytes = committed;
    fragmentation = float_of_int committed /. float_of_int (max live 1);
    releasable_pages = releasable;
  }

let allocator_name = function
  | Malloc_lifo -> "malloc/LIFO"
  | Malloc_address_ordered -> "malloc/addr-ordered"
  | Collector -> "collector"

let pp ppf r =
  Format.fprintf ppf "%-19s pop=%d iters=%d: live %dKB in %dKB (%.2fx), %d pages releasable"
    (allocator_name r.allocator) r.population r.iterations (r.live_bytes / 1024)
    (r.committed_bytes / 1024) r.fragmentation r.releasable_pages
