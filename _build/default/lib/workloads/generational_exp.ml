open Cgc_vm
module Machine = Cgc_mutator.Machine
module Builder = Cgc_mutator.Builder
module Generational = Cgc.Generational

type hygiene =
  | Clean
  | Careless

type result = {
  hygiene : hygiene;
  rounds : int;
  batch : int;
  live_set_bytes : int;
  promoted_bytes : int;
  promoted_pages : int;
  minor_collections : int;
  garbage_promoted_bytes : int;
}

let machine_config_of = function
  | Clean ->
      {
        Machine.default_config with
        Machine.clear_frames_on_entry = true;
        clear_frames_on_exit = true;
        allocator_self_cleanup = true;
        frame_padding = 2;
      }
  | Careless -> Machine.careless_config

let run ?(seed = 7) ?(batch = 400) hygiene ~rounds =
  let h = Harness.create ~seed ~machine_config:(machine_config_of hygiene) ~heap_kb:8192 () in
  let gc = h.Harness.gc in
  Cgc.Gc.set_auto_collect gc false;
  let gen = Generational.create ~promote_after:2 gc in
  let m = h.Harness.machine in
  (* a small long-lived working set that legitimately deserves promotion *)
  let live_cells = 200 in
  let live = Builder.list_of m (List.init live_cells Fun.id) in
  Harness.set_root h 0 (Addr.to_int live);
  for _ = 1 to rounds do
    (* a batch of short-lived data built and dropped inside one frame *)
    Machine.call m ~slots:4 (fun frame ->
        let temp = Builder.list_of m (List.init batch Fun.id) in
        Machine.set_local frame 0 (Addr.to_int temp));
    (match hygiene with
    | Clean -> Machine.clear_registers m
    | Careless -> ());
    Generational.minor gen
  done;
  let s = Generational.stats gen in
  let live_set_bytes = live_cells * 8 in
  {
    hygiene;
    rounds;
    batch;
    live_set_bytes;
    promoted_bytes = s.Generational.promoted_bytes;
    promoted_pages = s.Generational.promoted_pages;
    minor_collections = s.Generational.minor_collections;
    garbage_promoted_bytes = max 0 (s.Generational.promoted_bytes - live_set_bytes);
  }

let hygiene_name = function
  | Clean -> "clean"
  | Careless -> "careless"

let pp ppf r =
  Format.fprintf ppf
    "%-8s %d rounds x %d cells: %d bytes promoted over %d pages (live set %d B; garbage promoted %d B)"
    (hygiene_name r.hygiene) r.rounds r.batch r.promoted_bytes r.promoted_pages r.live_set_bytes
    r.garbage_promoted_bytes
