(** Program T — the paper's appendix A benchmark.

    Allocates [lists] circular linked lists of [nodes_per_list] cells
    each into a global array [a\[\]] in static data, drops every
    intentional reference, and asks what fraction of the lists the
    collector fails to reclaim.  Table 1 reports this with and without
    blacklisting across five platforms. *)

type result = {
  platform : string;
  blacklisting : bool;
  lists : int;
  retained : int;  (** lists whose finalizer never fired *)
  retention_percent : float;
  false_refs : int;  (** false references seen over all collections *)
  blacklisted_pages : int;  (** currently black pages at the end *)
  collections : int;
  committed_kb : int;
  live_kb : int;
  blacklist_ops : int;
  words_scanned : int;  (** total marker work, the denominator of the overhead claim *)
  total_gc_seconds : float;
}

val run :
  ?seed:int ->
  ?blacklisting:bool ->
  ?prepare:(Platform.env -> unit) ->
  ?lists:int ->
  ?nodes:int ->
  Platform.t ->
  result
(** One full experiment: build environment, run [test(S)], collect, run
    [test(2)] ("simulate further program execution to clear stack
    garbage — this is not terribly effective"), collect, then keep
    collecting until no further lists are finalized (the PCR
    methodology: "once was usually enough"). *)

type row = {
  without_blacklisting : result;
  with_blacklisting : result;
}

val run_row : ?seed:int -> ?lists:int -> ?nodes:int -> Platform.t -> row
(** Both columns of a Table 1 row, same seed. *)

val pp_result : Format.formatter -> result -> unit
