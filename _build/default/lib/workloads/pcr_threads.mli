(** Background thread stacks and apparent leakage (appendix B, PCR).

    "The larger address spaces included more background threads that
    woke up regularly during the experiment.  This seemed to have a
    beneficial effect of clearing out thread stacks, and thus tended to
    reduce apparent leakage."  And among the persisting leak sources:
    "garbage left by the allocator itself on other thread stacks"; "the
    PCR collector does not attempt to clear thread stacks".

    The experiment: worker threads briefly handle list cells, then block
    (park) with their stacks uncleared.  Idle workers pin the lists they
    touched; workers that wake up and do fresh (harmless) work overwrite
    their stacks and release them. *)

type result = {
  threads : int;
  awake : bool;  (** whether workers ran again after the lists were dropped *)
  lists : int;
  retained : int;
  retention_percent : float;
}

val run : ?seed:int -> ?lists:int -> ?nodes:int -> threads:int -> awake:bool -> unit -> result

val pp : Format.formatter -> result -> unit
