(** Section 2: pointer misidentification studies, including figure 1.

    Three questions the section raises, each as a measurable experiment:

    - how does the probability that a random (or integer-like) bit
      pattern is mistaken for a pointer grow with heap occupancy, and
      how much worse do interior pointers and unaligned scanning make
      it ({!misidentification_sweep});
    - how do adjacent small integers concatenate into valid heap
      addresses when all alignments must be considered — figure 1's
      [0009 000a -> 0x00090000] — and how much does refusing to place
      objects at addresses with many trailing zeros help
      ({!halfword_study});
    - how much does positioning the heap high in the address space help
      against integer-like data ({!placement_study}). *)

type sample_kind =
  | Uniform_words  (** uniform over the 32-bit space *)
  | Integer_like  (** the conversion-table distribution: small-ish integers *)

type sweep_point = {
  live_kb : int;
  samples : int;
  kind : sample_kind;
  p_valid_base_only : float;  (** interior pointers off *)
  p_valid_interior : float;  (** interior pointers on *)
  p_in_heap_region : float;  (** candidate blacklist fodder *)
}

val misidentification_sweep :
  ?seed:int -> ?samples:int -> kind:sample_kind -> int list -> sweep_point list
(** [misidentification_sweep ~kind live_kbs]: for each target occupancy,
    fill a heap with that many KB of live cons cells and measure the
    probability that a sampled word classifies as a valid object
    reference. *)

type halfword_result = {
  pairs : int;  (** adjacent small-integer pairs planted *)
  false_refs_aligned : int;  (** scanning at alignment 4 *)
  false_refs_unaligned : int;  (** scanning at alignment 2 *)
  example_value : int;  (** a concatenated address actually seen, 0 if none *)
  retained_avoidance_off : int;  (** objects retained by concatenated refs *)
  retained_avoidance_on : int;
      (** same with [avoid_trailing_zeros]: the hazardous page-aligned
          slot is never an object base *)
}

val halfword_study : ?seed:int -> int -> halfword_result
(** [halfword_study pairs] *)

type placement_result = {
  heap_base : int;
  p_false : float;  (** integer-like values misidentified *)
}

val placement_study : ?seed:int -> ?samples:int -> int -> placement_result list
(** [placement_study live_kb]: the same integer-like data against a low
    (sbrk-style) and a high (0x40000000) heap: "if the high order bits
    of addresses are neither all zeros nor all ones, then conflicts with
    integer data are unlikely". *)

val pp_sweep_point : Format.formatter -> sweep_point -> unit
val pp_halfword : Format.formatter -> halfword_result -> unit
val pp_placement : Format.formatter -> placement_result -> unit
