type t =
  | Little
  | Big

let equal a b =
  match a, b with
  | Little, Little | Big, Big -> true
  | Little, Big | Big, Little -> false

let to_string = function
  | Little -> "little"
  | Big -> "big"

let pp ppf t = Format.pp_print_string ppf (to_string t)
