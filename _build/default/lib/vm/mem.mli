(** The simulated process address space.

    A [Mem.t] is an ordered collection of non-overlapping {!Segment.t}s
    inside one 32-bit space, with a byte order shared by all segments.
    It plays the role of the operating system's VM map: components
    obtain memory with {!map} (at a fixed address, like the collector
    "requesting memory from the operating system at a garbage-collector
    specified location") or {!map_anywhere}. *)

type t

val create : ?endian:Endian.t -> unit -> t
(** A fresh, empty address space (default little-endian). *)

val endian : t -> Endian.t

val map : t -> name:string -> kind:Segment.kind -> base:Addr.t -> size:int -> Segment.t
(** Create and register a segment at a fixed base address.
    @raise Invalid_argument if it would overlap an existing segment. *)

val map_anywhere : t -> name:string -> kind:Segment.kind -> ?above:Addr.t -> size:int -> unit -> Segment.t
(** Map at the lowest page-aligned (4 KB) gap at or above [above]
    (default 0x1000, keeping page zero unmapped). *)

val unmap : t -> Segment.t -> unit
(** Remove a segment.  Accesses through it afterwards are errors. *)

val segments : t -> Segment.t list
(** All segments in increasing address order. *)

val find : t -> Addr.t -> Segment.t option
(** The segment containing the given address, if mapped. *)

val is_mapped : t -> Addr.t -> bool

val read_word : t -> Addr.t -> int
(** Read a 32-bit word at any mapped (possibly unaligned) address.
    @raise Invalid_argument if unmapped or crossing a segment end. *)

val write_word : t -> Addr.t -> int -> unit

val read_u8 : t -> Addr.t -> int
val write_u8 : t -> Addr.t -> int -> unit

val pp : Format.formatter -> t -> unit
