type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next_int64 t }
let word t = Int64.to_int (next_int64 t) land 0xFFFFFFFF

let int t bound =
  assert (bound > 0);
  (* 62 usable bits; modulo bias is negligible for simulation purposes
     (bounds here are at most 2^32). *)
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L
let float t = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) *. 0x1p-53
let chance t p = float t < p
