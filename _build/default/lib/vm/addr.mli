(** Simulated 32-bit machine addresses.

    The whole simulation lives in a flat 32-bit address space, the common
    case for the machines of Boehm's PLDI'93 study (SPARCstation 2, SGI
    4D/35, 80486).  Addresses are represented as plain OCaml [int]s in the
    range [0, 2{^32}); all constructors mask to 32 bits so arithmetic can
    never escape the space. *)

type t = int
(** An address.  Always in [0, 2{^32}). *)

val space_bits : int
(** Width of the simulated address space in bits (32). *)

val space_size : int
(** Size of the simulated address space in bytes, [2{^32}]. *)

val zero : t

val of_int : int -> t
(** [of_int n] is [n] truncated to the low 32 bits. *)

val to_int : t -> int
(** Identity; provided for symmetry and call-site documentation. *)

val add : t -> int -> t
(** [add a n] is [a + n] wrapped to 32 bits ([n] may be negative). *)

val diff : t -> t -> int
(** [diff a b] is the signed byte distance [a - b] (no wrapping). *)

val is_aligned : t -> int -> bool
(** [is_aligned a n] is true when [a] is a multiple of [n].
    [n] must be a power of two. *)

val align_down : t -> int -> t
(** Round down to a multiple of [n] (a power of two). *)

val align_up : t -> int -> t
(** Round up to a multiple of [n] (a power of two); wraps to 32 bits. *)

val trailing_zeros : t -> int
(** Number of trailing zero bits; [trailing_zeros zero] is [space_bits].
    Used by the allocator policy that avoids handing out objects at
    addresses with many trailing zeros (paper section 2, figure 1). *)

val in_range : t -> lo:t -> hi:t -> bool
(** [in_range a ~lo ~hi] is [lo <= a < hi]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Hexadecimal, zero-padded to 8 digits, e.g. [0x00090000]. *)

val to_string : t -> string
