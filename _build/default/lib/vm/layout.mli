(** Address-space layouts.

    Where the heap sits relative to other data decides how likely a
    random bit pattern is to be mistaken for a heap pointer (paper
    section 2: "an adequate solution sometimes consists of properly
    positioning the heap in the address space").  A layout fixes the
    bases of the classic process regions; platform presets in
    [cgc_workloads] pick layouts that match the machines of the paper's
    appendix B. *)

type t = {
  text_base : Addr.t;
  text_size : int;
  data_base : Addr.t;  (** static data + bss, scanned for roots *)
  data_size : int;
  stack_top : Addr.t;  (** highest stack address; the stack grows down *)
  stack_size : int;
  heap_base : Addr.t;  (** base of the region reserved for the GC heap *)
  heap_max : int;  (** bytes reserved for the heap *)
}

val validate : t -> unit
(** @raise Invalid_argument if any regions overlap or leave the space. *)

val sbrk_style : ?data_size:int -> ?heap_max:int -> unit -> t
(** A SunOS/SPARC-like layout: text near 0x2000, data right above it,
    and the heap immediately after the data segment at {e low}
    addresses — the worst case of the paper, where small integers and
    base-conversion constants collide with heap addresses.
    Default [data_size] 256 KB, [heap_max] 64 MB. *)

val high_heap : ?data_size:int -> ?heap_max:int -> unit -> t
(** A defensive layout placing the heap at 0x40000000, where "the high
    order bits of addresses are neither all zeros nor all ones" and
    collisions with integer data are unlikely. *)

val mid_heap : ?data_size:int -> ?heap_max:int -> unit -> t
(** OS/2-like flat layout with the heap at 0x00400000. *)

val apply : t -> Mem.t -> Segment.t * Segment.t * Segment.t
(** [apply t mem] maps the text, data and stack segments (the heap
    segment is mapped later by the collector) and returns
    [(text, data, stack)]. *)

val pp : Format.formatter -> t -> unit
