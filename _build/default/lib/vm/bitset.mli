(** Fixed-size bit sets.

    Used for mark bits, object-allocation maps and the page blacklist —
    the paper recommends implementing the blacklist "as a bit array,
    indexed by page numbers". *)

type t

val create : int -> t
(** [create n] is a set over the universe [\[0, n)], initially empty. *)

val length : t -> int
(** Size of the universe. *)

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val set : t -> int -> bool -> unit

val clear : t -> unit
(** Remove every element. *)

val count : t -> int
(** Number of elements currently in the set. *)

val is_empty : t -> bool

val copy : t -> t

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every element of [src] to [dst].
    Universes must have equal size. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over members in increasing order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val exists_in_range : t -> lo:int -> hi:int -> bool
(** [exists_in_range t ~lo ~hi] is true when some member [i] satisfies
    [lo <= i < hi]. *)

val next_clear : t -> int -> int option
(** [next_clear t i] is the smallest [j >= i] not in the set, if any. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
