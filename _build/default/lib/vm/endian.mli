(** Byte order of the simulated machine.

    Endianness matters to the paper's experiments: appendix B notes that
    on the big-endian SPARC a trailing NUL character of one string
    followed by the first three characters of the next can appear to be
    a pointer, and that the corresponding problem involves the {e end}
    of a string on little-endian machines. *)

type t =
  | Little  (** e.g. the 80486 OS/2 machine of the paper *)
  | Big  (** e.g. SPARCstation 2 and the SGI 4D/35 in big-endian mode *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
