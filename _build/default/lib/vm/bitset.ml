type t = {
  n : int;
  words : int array; (* 62 usable bits per word to stay in the immediate range *)
}

let bits_per_word = 62
let nwords n = (n + bits_per_word - 1) / bits_per_word
let create n = { n; words = Array.make (max 1 (nwords n)) 0 }
let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.n)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let set t i b = if b then add t i else remove t i
let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words
let copy t = { n = t.n; words = Array.copy t.words }

let union_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: universe mismatch";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then begin
          let i = (w * bits_per_word) + b in
          if i < t.n then f i
        end
      done
  done

let fold f init t =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) t;
  !acc

let exists_in_range t ~lo ~hi =
  let lo = max lo 0 and hi = min hi t.n in
  let rec go i = if i >= hi then false else if mem t i then true else go (i + 1) in
  go lo

let next_clear t i =
  let rec go i = if i >= t.n then None else if mem t i then go (i + 1) else Some i in
  go (max i 0)

let equal a b = a.n = b.n && Array.for_all2 ( = ) a.words b.words

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun i ->
      if not !first then Format.fprintf ppf ",";
      first := false;
      Format.fprintf ppf "%d" i)
    t;
  Format.fprintf ppf "}"
