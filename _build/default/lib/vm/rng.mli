(** Deterministic pseudo-random numbers (SplitMix64).

    The paper's measurements were explicitly {e not} reproducible
    ("the scanned part of the address space is polluted with UNIX
    environment variables, and in some cases apparently register values
    left over from kernel calls").  Our simulation replaces those
    uncontrolled sources with a seeded SplitMix64 stream so every
    experiment is exactly repeatable, while [split] lets independent
    subsystems (static-data generator, register noise, workload) draw
    from decorrelated streams. *)

type t

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t

val split : t -> t
(** A new generator whose stream is decorrelated from the parent's
    subsequent output. *)

val next_int64 : t -> int64
(** The raw 64-bit SplitMix64 output. *)

val word : t -> int
(** A uniformly distributed 32-bit word (as a non-negative [int]). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)
