type t = {
  text_base : Addr.t;
  text_size : int;
  data_base : Addr.t;
  data_size : int;
  stack_top : Addr.t;
  stack_size : int;
  heap_base : Addr.t;
  heap_max : int;
}

let regions t =
  [
    ("text", Addr.to_int t.text_base, t.text_size);
    ("data", Addr.to_int t.data_base, t.data_size);
    ("stack", Addr.to_int t.stack_top - t.stack_size, t.stack_size);
    ("heap", Addr.to_int t.heap_base, t.heap_max);
  ]

let validate t =
  let rs = regions t in
  List.iter
    (fun (name, base, size) ->
      if size <= 0 then invalid_arg (Printf.sprintf "Layout: %s has non-positive size" name);
      if base < 0 || base + size > Addr.space_size then
        invalid_arg (Printf.sprintf "Layout: %s leaves the address space" name))
    rs;
  let rec pairs = function
    | [] -> ()
    | (name, base, size) :: rest ->
        List.iter
          (fun (name', base', size') ->
            if base < base' + size' && base' < base + size then
              invalid_arg (Printf.sprintf "Layout: %s overlaps %s" name name'))
          rest;
        pairs rest
  in
  pairs rs

let kb n = n * 1024
let mb n = n * 1024 * 1024

let sbrk_style ?(data_size = kb 256) ?(heap_max = mb 64) () =
  let text_base = Addr.of_int 0x2000 in
  let text_size = kb 128 in
  let data_base = Addr.of_int (0x2000 + text_size) in
  let heap_base = Addr.align_up (Addr.add data_base data_size) 0x1000 in
  let t =
    {
      text_base;
      text_size;
      data_base;
      data_size;
      stack_top = Addr.of_int 0xF0000000;
      stack_size = mb 1;
      heap_base;
      heap_max;
    }
  in
  validate t;
  t

let high_heap ?(data_size = kb 256) ?(heap_max = mb 64) () =
  let t =
    {
      text_base = Addr.of_int 0x10000;
      text_size = kb 128;
      data_base = Addr.of_int 0x40000;
      data_size;
      stack_top = Addr.of_int 0xF0000000;
      stack_size = mb 1;
      heap_base = Addr.of_int 0x40000000;
      heap_max;
    }
  in
  validate t;
  t

let mid_heap ?(data_size = kb 256) ?(heap_max = mb 64) () =
  let t =
    {
      text_base = Addr.of_int 0x10000;
      text_size = kb 128;
      data_base = Addr.of_int 0x40000;
      data_size;
      stack_top = Addr.of_int 0xF0000000;
      stack_size = mb 1;
      heap_base = Addr.of_int 0x00400000;
      heap_max;
    }
  in
  validate t;
  t

let apply t mem =
  validate t;
  let text = Mem.map mem ~name:"text" ~kind:Segment.Text ~base:t.text_base ~size:t.text_size in
  let data =
    Mem.map mem ~name:"data" ~kind:Segment.Static_data ~base:t.data_base ~size:t.data_size
  in
  let stack =
    Mem.map mem ~name:"stack" ~kind:Segment.Stack
      ~base:(Addr.add t.stack_top (-t.stack_size))
      ~size:t.stack_size
  in
  (text, data, stack)

let pp ppf t =
  Format.fprintf ppf "@[<v>text %a+%d data %a+%d stack %a-%d heap %a+%d@]" Addr.pp t.text_base
    t.text_size Addr.pp t.data_base t.data_size Addr.pp t.stack_top t.stack_size Addr.pp
    t.heap_base t.heap_max
