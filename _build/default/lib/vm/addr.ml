type t = int

let space_bits = 32
let space_size = 1 lsl space_bits
let mask = space_size - 1
let zero = 0
let of_int n = n land mask
let to_int a = a
let add a n = (a + n) land mask
let diff a b = a - b
let is_aligned a n = a land (n - 1) = 0
let align_down a n = a land lnot (n - 1) land mask
let align_up a n = (a + n - 1) land lnot (n - 1) land mask

let trailing_zeros a =
  if a = 0 then space_bits
  else begin
    let n = ref 0 in
    let a = ref a in
    while !a land 1 = 0 do
      incr n;
      a := !a lsr 1
    done;
    !n
  end

let in_range a ~lo ~hi = a >= lo && a < hi
let compare = Int.compare
let equal = Int.equal
let pp ppf a = Format.fprintf ppf "0x%08x" a
let to_string a = Format.asprintf "%a" pp a
