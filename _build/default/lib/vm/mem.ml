type t = {
  endian : Endian.t;
  mutable segs : Segment.t array; (* sorted by base, non-overlapping *)
}

let create ?(endian = Endian.Little) () = { endian; segs = [||] }
let endian t = t.endian
let segments t = Array.to_list t.segs

let overlaps a b =
  Addr.to_int (Segment.base a) < Addr.to_int (Segment.limit b)
  && Addr.to_int (Segment.base b) < Addr.to_int (Segment.limit a)

let insert t seg =
  Array.iter
    (fun existing ->
      if overlaps seg existing then
        invalid_arg
          (Format.asprintf "Mem.map: %a overlaps %a" Segment.pp seg Segment.pp existing))
    t.segs;
  let segs = Array.append t.segs [| seg |] in
  Array.sort (fun a b -> Addr.compare (Segment.base a) (Segment.base b)) segs;
  t.segs <- segs

let map t ~name ~kind ~base ~size =
  let seg = Segment.create ~name ~kind ~endian:t.endian ~base ~size in
  insert t seg;
  seg

let page = 0x1000

let map_anywhere t ~name ~kind ?(above = Addr.of_int page) ~size () =
  let size_rounded = (size + page - 1) / page * page in
  let candidate = ref (Addr.to_int (Addr.align_up above page)) in
  Array.iter
    (fun seg ->
      let lo = Addr.to_int (Segment.base seg) and hi = Addr.to_int (Segment.limit seg) in
      if !candidate + size_rounded > lo && !candidate < hi then
        candidate := Addr.to_int (Addr.align_up (Addr.of_int hi) page))
    t.segs;
  if !candidate + size_rounded > Addr.space_size then failwith "Mem.map_anywhere: address space exhausted";
  map t ~name ~kind ~base:(Addr.of_int !candidate) ~size

let unmap t seg =
  t.segs <- Array.of_list (List.filter (fun s -> s != seg) (Array.to_list t.segs))

let find t a =
  (* Binary search for the last segment with base <= a. *)
  let segs = t.segs in
  let n = Array.length segs in
  let rec go lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let seg = segs.(mid) in
      if Addr.to_int a < Addr.to_int (Segment.base seg) then go lo mid
      else if Segment.contains seg a then Some seg
      else go (mid + 1) hi
    end
  in
  go 0 n

let is_mapped t a = Option.is_some (find t a)

let get t a =
  match find t a with
  | Some seg -> seg
  | None -> invalid_arg (Printf.sprintf "Mem: unmapped address %s" (Addr.to_string a))

let read_word t a = Segment.read_word (get t a) a
let write_word t a v = Segment.write_word (get t a) a v
let read_u8 t a = Segment.read_u8 (get t a) a
let write_u8 t a v = Segment.write_u8 (get t a) a v

let pp ppf t =
  Format.fprintf ppf "@[<v>address space (%s-endian):@," (Endian.to_string t.endian);
  Array.iter (fun s -> Format.fprintf ppf "  %a@," Segment.pp s) t.segs;
  Format.fprintf ppf "@]"
