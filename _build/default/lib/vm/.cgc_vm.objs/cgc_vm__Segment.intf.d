lib/vm/segment.mli: Addr Endian Format
