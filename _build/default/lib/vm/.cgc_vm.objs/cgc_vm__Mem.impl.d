lib/vm/mem.ml: Addr Array Endian Format List Option Printf Segment
