lib/vm/addr.ml: Format Int
