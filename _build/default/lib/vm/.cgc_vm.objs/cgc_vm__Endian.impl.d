lib/vm/endian.ml: Format
