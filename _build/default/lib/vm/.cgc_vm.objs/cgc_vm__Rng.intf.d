lib/vm/rng.mli:
