lib/vm/layout.ml: Addr Format List Mem Printf Segment
