lib/vm/endian.mli: Format
