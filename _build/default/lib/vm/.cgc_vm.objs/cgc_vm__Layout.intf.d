lib/vm/layout.mli: Addr Format Mem Segment
