lib/vm/bitset.mli: Format
