lib/vm/mem.mli: Addr Endian Format Segment
