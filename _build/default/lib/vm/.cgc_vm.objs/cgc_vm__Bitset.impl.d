lib/vm/bitset.ml: Array Format Printf
