lib/vm/segment.ml: Addr Bytes Char Endian Format Int32 Printf String
