lib/vm/addr.mli: Format
