(** Heap introspection for humans.

    Summaries that the paper's authors evidently produced by hand while
    chasing references ("a quick examination of the blacklist in a
    statically linked SPARC executable suggests..."): per-size-class
    histograms, page-state maps, and blacklist overlays. *)

type class_row = {
  object_bytes : int;
  pointer_free : bool;
  pages : int;
  live_objects : int;
  free_slots : int;
  live_bytes : int;
}

type summary = {
  committed_pages : int;
  free_pages : int;
  blacklisted_pages : int;
  large_objects : int;
  large_bytes : int;
  classes : class_row list;  (** ascending object size; only classes in use *)
}

val summarize : Gc.t -> summary

val pp_summary : Format.formatter -> summary -> unit

val pp_page_map : Format.formatter -> Gc.t -> unit
(** One character per reserved page: [.] free or uncommitted, [s] small,
    [S] small and full, [A] atomic small, [L] large, [#] blacklisted
    (overrides), in address order, 64 pages per line. *)
