open Cgc_vm

type t = {
  table : (Addr.t, string) Hashtbl.t;
  mutable queue : (Addr.t * string) list; (* reversed *)
  mutable queue_len : int;
}

let create () = { table = Hashtbl.create 64; queue = []; queue_len = 0 }

let register t a ~token = Hashtbl.replace t.table a token
let unregister t a = Hashtbl.remove t.table a
let is_registered t a = Hashtbl.mem t.table a
let registered_count t = Hashtbl.length t.table
let iter_registered f t = Hashtbl.iter f t.table

let on_reclaimed t a =
  match Hashtbl.find_opt t.table a with
  | None -> ()
  | Some token ->
      Hashtbl.remove t.table a;
      t.queue <- (a, token) :: t.queue;
      t.queue_len <- t.queue_len + 1

let drain t =
  let q = List.rev t.queue in
  t.queue <- [];
  t.queue_len <- 0;
  q

let queue_length t = t.queue_len
