(** Leak forensics: why is this object still alive?

    The paper's authors repeatedly had to "track down" the false
    references behind observed retention (section 3, appendix B's
    magic-number cells).  This module automates that: a provenance mark
    records, for every reached object, the root or heap word that first
    reached it, and {!why_live} reports the full chain from a root to
    the object in question. *)

open Cgc_vm

type step =
  | Root of { label : string; at : Addr.t option; value : int }
      (** the chain starts at a root word (register roots have no
          address) *)
  | Heap_word of { obj : Addr.t; at : Addr.t; value : int }
      (** ... and continues through a word of a marked object *)

type chain = step list
(** Outermost root first; the last step's [value] resolves to (possibly
    the interior of) the queried object. *)

val why_live : Gc.t -> Addr.t -> chain option
(** [why_live gc obj] runs a full provenance mark (using the collector's
    registered roots and configuration, without disturbing allocation
    state beyond the mark bits) and explains how [obj] gets marked.
    [None] when the object is not reachable (or not allocated). *)

val retained_by : Gc.t -> Addr.t list -> (Addr.t * chain) list
(** Explain every object of the list that is reachable. *)

val pp_step : Format.formatter -> step -> unit
val pp_chain : Format.formatter -> chain -> unit
