open Cgc_vm

type classification =
  | Valid of { base : Addr.t; page : int }
  | False_in_heap of { page : int }
  | Outside

let classify heap (config : Config.t) value =
  if not (Heap.contains heap value) then Outside
  else begin
    let page = Heap.page_index heap value in
    let invalid = False_in_heap { page } in
    match Heap.page heap page with
    | Page.Uncommitted | Page.Free -> invalid
    | Page.Small s ->
        let off_in_page = value - Addr.to_int (Heap.page_addr heap page) in
        let rel = off_in_page - s.Page.first_offset in
        if rel < 0 then invalid
        else begin
          let index = rel / s.Page.object_bytes in
          let displacement = rel mod s.Page.object_bytes in
          if index >= s.Page.n_objects then invalid
          else if not (Bitset.mem s.Page.alloc index) then invalid
          else if
            displacement = 0 || config.Config.interior_pointers
            || List.mem displacement config.Config.valid_displacements
          then
            Valid
              {
                base =
                  Addr.add (Heap.page_addr heap page)
                    (s.Page.first_offset + (index * s.Page.object_bytes));
                page;
              }
          else invalid
        end
    | Page.Large_head l ->
        if not l.Page.l_allocated then invalid
        else begin
          let off = value - Addr.to_int (Heap.page_addr heap page) in
          if off = 0 then Valid { base = Heap.page_addr heap page; page }
          else if
            config.Config.interior_pointers && off < l.Page.object_bytes
            (* any offset within the first page is within both regimes *)
          then Valid { base = Heap.page_addr heap page; page }
          else invalid
        end
    | Page.Large_tail { head_index } -> (
        if not config.Config.interior_pointers then invalid
        else
          match config.Config.large_validity with
          | Config.First_page_only -> invalid
          | Config.Anywhere -> (
              match Heap.page heap head_index with
              | Page.Large_head l when l.Page.l_allocated ->
                  let off = value - Addr.to_int (Heap.page_addr heap head_index) in
                  if off < l.Page.object_bytes then
                    Valid { base = Heap.page_addr heap head_index; page = head_index }
                  else invalid
              | Page.Large_head _ | Page.Uncommitted | Page.Free | Page.Small _
              | Page.Large_tail _ ->
                  invalid))
  end

type t = {
  heap : Heap.t;
  config : Config.t;
  blacklist : Blacklist.t;
  stats : Stats.t;
  mutable stack : int array; (* object base addresses *)
  mutable sp : int;
  mutable overflowed : bool;
}

let create heap config blacklist stats =
  { heap; config; blacklist; stats; stack = Array.make 1024 0; sp = 0; overflowed = false }

let push t base =
  let at_limit =
    match t.config.Config.mark_stack_limit with
    | Some limit -> t.sp >= limit
    | None -> false
  in
  if at_limit then begin
    (* the object IS marked; its children will be found by the
       overflow-recovery rescan *)
    if not t.overflowed then t.stats.Stats.mark_stack_overflows <- t.stats.Stats.mark_stack_overflows + 1;
    t.overflowed <- true
  end
  else begin
    if t.sp = Array.length t.stack then begin
      let bigger = Array.make (2 * Array.length t.stack) 0 in
      Array.blit t.stack 0 bigger 0 t.sp;
      t.stack <- bigger
    end;
    t.stack.(t.sp) <- base;
    t.sp <- t.sp + 1
  end

let set_mark_bit t page base =
  match Heap.page t.heap page with
  | Page.Small s ->
      let rel = base - Addr.to_int (Heap.page_addr t.heap page) - s.Page.first_offset in
      let index = rel / s.Page.object_bytes in
      if Bitset.mem s.Page.mark index then `Already
      else begin
        Bitset.add s.Page.mark index;
        `Newly (s.Page.object_bytes, s.Page.pointer_free)
      end
  | Page.Large_head l ->
      if l.Page.l_marked then `Already
      else begin
        l.Page.l_marked <- true;
        `Newly (l.Page.object_bytes, l.Page.l_pointer_free)
      end
  | Page.Uncommitted | Page.Free | Page.Large_tail _ ->
      (* classify returned Valid, so the page cannot be in these states *)
      assert false

let consider t value =
  t.stats.Stats.words_scanned <- t.stats.Stats.words_scanned + 1;
  match classify t.heap t.config value with
  | Outside -> ()
  | False_in_heap { page } ->
      t.stats.Stats.false_refs <- t.stats.Stats.false_refs + 1;
      if t.config.Config.blacklisting then Blacklist.note t.blacklist page
  | Valid { base; page } -> (
      t.stats.Stats.valid_refs <- t.stats.Stats.valid_refs + 1;
      match set_mark_bit t page base with
      | `Already -> ()
      | `Newly (_, _) ->
          t.stats.Stats.objects_marked <- t.stats.Stats.objects_marked + 1;
          push t base)

(* Scan the words of a marked object.  Objects live entirely inside the
   heap segment, so we read it directly. *)
let scan_object t base =
  let page = Heap.page_index t.heap base in
  let size, pointer_free =
    match Heap.page t.heap page with
    | Page.Small s -> (s.Page.object_bytes, s.Page.pointer_free)
    | Page.Large_head l -> (l.Page.object_bytes, l.Page.l_pointer_free)
    | Page.Uncommitted | Page.Free | Page.Large_tail _ -> assert false
  in
  if not pointer_free then begin
    let seg = Heap.segment t.heap in
    Segment.iter_words seg ~alignment:t.config.Config.alignment ~lo:base
      ~hi:(Addr.add base size)
      (fun _addr value -> consider t value)
  end

let drain t =
  while t.sp > 0 do
    t.sp <- t.sp - 1;
    scan_object t t.stack.(t.sp)
  done

let mark_value t value =
  consider t value;
  drain t

let clear_marks heap =
  Heap.iter_committed heap (fun _ p ->
      match p with
      | Page.Small s -> Bitset.clear s.Page.mark
      | Page.Large_head l -> l.Page.l_marked <- false
      | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ())

let scan_range t ~mem range =
  let { Roots.lo; hi; label = _ } = range in
  match Mem.find mem lo with
  | None -> ()
  | Some seg ->
      Segment.iter_words seg ~alignment:t.config.Config.alignment ~lo ~hi (fun _addr value ->
          consider t value)

(* Overflow recovery: rescan every already-marked object so dropped
   children get marked, until no push overflows. *)
let recover_from_overflow t =
  while t.overflowed do
    t.overflowed <- false;
    Heap.iter_committed t.heap (fun index p ->
        (match p with
        | Page.Small s ->
            let base = Addr.to_int (Heap.page_addr t.heap index) + s.Page.first_offset in
            for obj = 0 to s.Page.n_objects - 1 do
              if Bitset.mem s.Page.mark obj then scan_object t (base + (obj * s.Page.object_bytes))
            done
        | Page.Large_head l ->
            if l.Page.l_marked then scan_object t (Addr.to_int (Heap.page_addr t.heap index))
        | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ());
        drain t)
  done

let run t roots ~mem =
  clear_marks t.heap;
  t.sp <- 0;
  t.overflowed <- false;
  Blacklist.begin_cycle t.blacklist;
  List.iter
    (fun (_, values) ->
      Array.iter
        (fun v ->
          consider t v;
          drain t)
        values)
    (Roots.current_registers roots);
  List.iter
    (fun range ->
      scan_range t ~mem range;
      drain t)
    (Roots.current_ranges roots);
  recover_from_overflow t
