(** The collector as a debugging tool for explicitly-deallocated
    programs.

    The paper notes that conservative collectors "have also been used as
    a debugging tool for programs that explicitly deallocate storage"
    [9, 16].  In that mode the program keeps calling its own [free], the
    collector never actually trusts it, and a checkpoint compares the
    program's opinion with reachability:

    - an object the program {e freed} but that is still {e reachable} is
      a premature free — a use-after-free waiting to happen;
    - an object that is {e unreachable} but was never freed is a leak.

    Objects are allocated with a tag (an allocation-site label), so the
    report names the offender. *)

open Cgc_vm

type t

val create : Gc.t -> t
(** Wrap a collector.  Automatic collection is turned off on the wrapped
    [Gc.t]: in this mode the program manages lifetime; the collector
    only audits at {!check} points. *)

val gc : t -> Gc.t

val allocate : ?pointer_free:bool -> t -> tag:string -> int -> Addr.t
(** Allocate a tracked object.  The tag names the allocation site. *)

val free : t -> Addr.t -> unit
(** The program claims it is done with this object.  Nothing is
    reclaimed — the claim is recorded for the next {!check}.
    @raise Invalid_argument on a double free or an untracked address. *)

type finding = {
  address : Addr.t;
  tag : string;
}

type report = {
  leaks : finding list;  (** unreachable, never freed *)
  premature_frees : finding list;  (** freed, still reachable *)
  clean_frees : int;  (** freed and indeed unreachable *)
  live : int;  (** reachable and not freed — healthy *)
}

val check : t -> report
(** Mark from the registered roots and audit every tracked object.
    Objects that are both freed and unreachable are reclaimed (and no
    longer tracked); leaks and premature frees stay tracked so they are
    reported again until fixed. *)

val tracked : t -> int

val pp_report : Format.formatter -> report -> unit
