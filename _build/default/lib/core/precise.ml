open Cgc_vm

type t = {
  gc : Gc.t;
  descs : (Addr.t, Type_desc.t) Hashtbl.t;
  mutable providers : (unit -> Addr.t list) list;
}

let create gc = { gc; descs = Hashtbl.create 256; providers = [] }
let gc t = t.gc

let allocate ?finalizer t desc =
  let base = Gc.allocate ?finalizer t.gc desc.Type_desc.size_bytes in
  Hashtbl.replace t.descs base desc;
  base

let add_root_provider t f = t.providers <- f :: t.providers

let descriptor t addr =
  if Gc.is_allocated t.gc addr then Hashtbl.find_opt t.descs addr else None

let clear_marks heap =
  Heap.iter_committed heap (fun _ p ->
      match p with
      | Page.Small s -> Bitset.clear s.Page.mark
      | Page.Large_head l -> l.Page.l_marked <- false
      | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ())

let set_mark heap base =
  let index = Heap.page_index heap base in
  match Heap.page heap index with
  | Page.Small s ->
      let rel = Addr.diff base (Heap.page_addr heap index) - s.Page.first_offset in
      let obj = rel / s.Page.object_bytes in
      if Bitset.mem s.Page.mark obj then `Already
      else begin
        Bitset.add s.Page.mark obj;
        `Newly
      end
  | Page.Large_head l ->
      if l.Page.l_marked then `Already
      else begin
        l.Page.l_marked <- true;
        `Newly
      end
  | Page.Uncommitted | Page.Free | Page.Large_tail _ -> `Already

let collect t =
  let heap = Gc.heap t.gc in
  clear_marks heap;
  let stack = ref [] in
  let push_if_object value =
    if Gc.is_allocated t.gc value then
      match set_mark heap value with
      | `Newly -> stack := value :: !stack
      | `Already -> ()
  in
  List.iter (fun f -> List.iter push_if_object (f ())) t.providers;
  let rec drain () =
    match !stack with
    | [] -> ()
    | base :: rest ->
        stack := rest;
        (match Hashtbl.find_opt t.descs base with
        | None -> () (* unknown layout: treat as atomic *)
        | Some desc ->
            Array.iter
              (fun off -> push_if_object (Gc.get_field t.gc base (off / 4)))
              desc.Type_desc.pointer_offsets);
        drain ()
  in
  drain ();
  let (_ : Sweep.result) = Gc.Internal.run_sweep t.gc in
  ()

let live_objects t = (Gc.stats t.gc).Stats.live_objects
