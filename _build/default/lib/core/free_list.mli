(** Per-size-class free lists of object addresses.

    The sweeper rebuilds these in address order (which the paper's
    conclusion credits with reduced fragmentation: "it is usually much
    less expensive to keep free lists sorted by address"); the explicit
    allocator baseline can instead push freed objects LIFO to expose the
    difference. *)

type t

type policy =
  | Lifo  (** freed objects are pushed on the front *)
  | Address_ordered  (** freed objects are inserted in address order *)

val create : n_classes:int -> policy -> t
(** Classes are indexed [1 .. n_classes]; each class has two lists, one
    for normal and one for pointer-free pages (objects of the two kinds
    live on different pages and must not mix). *)

val policy : t -> policy

val take : t -> granules:int -> pointer_free:bool -> int option
(** Pop the first free object of the class, if any. *)

val add : t -> granules:int -> pointer_free:bool -> int -> unit
(** Return one object to the class, honouring the policy. *)

val set_class : t -> granules:int -> pointer_free:bool -> int list -> unit
(** Replace a class's entire list (used by the sweeper, which produces
    address-ordered lists by construction). *)

val prepend_block : t -> granules:int -> pointer_free:bool -> int list -> unit
(** Put a freshly carved page's slots (in ascending order) at the front
    of the class so they are handed out lowest-address-first. *)

val length : t -> granules:int -> pointer_free:bool -> int

val to_list : t -> granules:int -> pointer_free:bool -> int list
(** Non-destructive snapshot of a class's entries, front first. *)

val clear : t -> unit

val drop_in_page : t -> granules:int -> pointer_free:bool -> page_of:(int -> int) -> page:int -> unit
(** Remove every entry whose [page_of] address equals [page] (used when
    an empty page is withdrawn from a size class). *)

val total : t -> int
(** Total free objects across all classes. *)
