type policy =
  | Lifo
  | Address_ordered

type entry = {
  mutable items : int list;
  mutable count : int;
}

type t = {
  policy : policy;
  normal : entry array; (* index = granules, slot 0 unused *)
  atomic : entry array;
}

let create ~n_classes policy =
  let make () = Array.init (n_classes + 1) (fun _ -> { items = []; count = 0 }) in
  { policy; normal = make (); atomic = make () }

let policy t = t.policy

let entry t ~granules ~pointer_free =
  let arr = if pointer_free then t.atomic else t.normal in
  if granules < 1 || granules >= Array.length arr then
    invalid_arg (Printf.sprintf "Free_list: class %d out of range" granules);
  arr.(granules)

let take t ~granules ~pointer_free =
  let e = entry t ~granules ~pointer_free in
  match e.items with
  | [] -> None
  | a :: rest ->
      e.items <- rest;
      e.count <- e.count - 1;
      Some a

let rec insert_sorted a = function
  | [] -> [ a ]
  | b :: rest as l -> if a <= b then a :: l else b :: insert_sorted a rest

let add t ~granules ~pointer_free a =
  let e = entry t ~granules ~pointer_free in
  (match t.policy with
  | Lifo -> e.items <- a :: e.items
  | Address_ordered -> e.items <- insert_sorted a e.items);
  e.count <- e.count + 1

let prepend_block t ~granules ~pointer_free slots =
  let e = entry t ~granules ~pointer_free in
  e.items <- slots @ e.items;
  e.count <- e.count + List.length slots

let set_class t ~granules ~pointer_free items =
  let e = entry t ~granules ~pointer_free in
  e.items <- items;
  e.count <- List.length items

let length t ~granules ~pointer_free = (entry t ~granules ~pointer_free).count
let to_list t ~granules ~pointer_free = (entry t ~granules ~pointer_free).items

let clear t =
  let wipe arr =
    Array.iter
      (fun e ->
        e.items <- [];
        e.count <- 0)
      arr
  in
  wipe t.normal;
  wipe t.atomic

let drop_in_page t ~granules ~pointer_free ~page_of ~page =
  let e = entry t ~granules ~pointer_free in
  e.items <- List.filter (fun a -> page_of a <> page) e.items;
  e.count <- List.length e.items

let total t =
  let sum arr = Array.fold_left (fun acc e -> acc + e.count) 0 arr in
  sum t.normal + sum t.atomic
