open Cgc_vm

type step =
  | Root of { label : string; at : Addr.t option; value : int }
  | Heap_word of { obj : Addr.t; at : Addr.t; value : int }

type chain = step list

(* A provenance mark: like Mark.run but with its own visited table (the
   heap's mark bits are left alone) and a parent record per object. *)
let provenance gc =
  let heap = Gc.heap gc in
  let config = Gc.config gc in
  let mem = Gc.mem gc in
  let roots = Gc.Internal.roots gc in
  let visited : (Addr.t, step) Hashtbl.t = Hashtbl.create 256 in
  let stack = ref [] in
  let consider step value =
    match Mark.classify heap config value with
    | Mark.Valid { base; page = _ } ->
        if not (Hashtbl.mem visited base) then begin
          Hashtbl.add visited base (step value);
          stack := base :: !stack
        end
    | Mark.False_in_heap _ | Mark.Outside -> ()
  in
  let scan_object base =
    let index = Heap.page_index heap base in
    let size, pointer_free =
      match Heap.page heap index with
      | Page.Small s -> (s.Page.object_bytes, s.Page.pointer_free)
      | Page.Large_head l -> (l.Page.object_bytes, l.Page.l_pointer_free)
      | Page.Uncommitted | Page.Free | Page.Large_tail _ -> (0, true)
    in
    if not pointer_free then
      Segment.iter_words (Heap.segment heap) ~alignment:config.Config.alignment ~lo:base
        ~hi:(Addr.add base size) (fun at value ->
          consider (fun v -> Heap_word { obj = base; at; value = v }) value)
  in
  let drain () =
    let rec go () =
      match !stack with
      | [] -> ()
      | base :: rest ->
          stack := rest;
          scan_object base;
          go ()
    in
    go ()
  in
  List.iter
    (fun (label, values) ->
      Array.iter (fun v -> consider (fun value -> Root { label; at = None; value }) v) values;
      drain ())
    (Roots.current_registers roots);
  List.iter
    (fun { Roots.lo; hi; label } ->
      (match Mem.find mem lo with
      | None -> ()
      | Some seg ->
          Segment.iter_words seg ~alignment:config.Config.alignment ~lo ~hi (fun at value ->
              consider (fun v -> Root { label; at = Some at; value = v }) value));
      drain ())
    (Roots.current_ranges roots);
  visited

let chain_of visited base =
  let rec go acc base guard =
    if guard = 0 then acc
    else
      match Hashtbl.find_opt visited base with
      | None -> acc
      | Some (Root _ as step) -> step :: acc
      | Some (Heap_word { obj; _ } as step) -> go (step :: acc) obj (guard - 1)
  in
  go [] base 10_000

let why_live gc addr =
  match Gc.find_object gc addr with
  | None -> None
  | Some base ->
      let visited = provenance gc in
      if Hashtbl.mem visited base then Some (chain_of visited base) else None

let retained_by gc addrs =
  let visited = provenance gc in
  List.filter_map
    (fun addr ->
      match Gc.find_object gc addr with
      | Some base when Hashtbl.mem visited base -> Some (addr, chain_of visited base)
      | Some _ | None -> None)
    addrs

let pp_step ppf = function
  | Root { label; at = Some at; value } ->
      Format.fprintf ppf "root %s at %a holds 0x%08x" label Addr.pp at value
  | Root { label; at = None; value } -> Format.fprintf ppf "register root %s holds 0x%08x" label value
  | Heap_word { obj; at; value } ->
      Format.fprintf ppf "object %a word at %a holds 0x%08x" Addr.pp obj Addr.pp at value

let pp_chain ppf chain =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i step -> Format.fprintf ppf "%s%a@," (String.make (2 * i) ' ') pp_step step)
    chain;
  Format.fprintf ppf "@]"
