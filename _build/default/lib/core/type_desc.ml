type t = {
  name : string;
  size_bytes : int;
  pointer_offsets : int array;
}

let make ~name ~size_bytes ~pointer_offsets =
  if size_bytes <= 0 then invalid_arg "Type_desc.make: non-positive size";
  let offsets = Array.of_list pointer_offsets in
  Array.iteri
    (fun i off ->
      if off mod 4 <> 0 then invalid_arg "Type_desc.make: unaligned pointer offset";
      if off < 0 || off + 4 > size_bytes then
        invalid_arg "Type_desc.make: pointer offset out of bounds";
      if i > 0 && offsets.(i - 1) >= off then
        invalid_arg "Type_desc.make: pointer offsets must be strictly increasing")
    offsets;
  { name; size_bytes; pointer_offsets = offsets }

let atomic ~name ~size_bytes = make ~name ~size_bytes ~pointer_offsets:[]
let is_atomic t = Array.length t.pointer_offsets = 0
let cons = make ~name:"cons" ~size_bytes:8 ~pointer_offsets:[ 0; 4 ]
let link_cell = make ~name:"link-cell" ~size_bytes:4 ~pointer_offsets:[ 0 ]

let pp ppf t =
  Format.fprintf ppf "%s(%dB, ptrs at [%s])" t.name t.size_bytes
    (String.concat ";" (Array.to_list (Array.map string_of_int t.pointer_offsets)))
