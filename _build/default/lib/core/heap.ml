open Cgc_vm

type t = {
  seg : Segment.t;
  base : Addr.t;
  page_size : int;
  page_shift : int;
  n_pages : int;
  pages : Page.t array;
  mutable committed : int; (* pages [0, committed) are committed *)
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create mem ~config ~base ~max_bytes =
  Config.validate config;
  let page_size = config.Config.page_size in
  if not (Addr.is_aligned base page_size) then
    invalid_arg "Heap.create: base must be page-aligned";
  let n_pages = (max_bytes + page_size - 1) / page_size in
  if n_pages < config.Config.initial_pages then
    invalid_arg "Heap.create: reserved region smaller than initial_pages";
  let seg =
    Mem.map mem ~name:"heap" ~kind:Segment.Heap ~base ~size:(n_pages * page_size)
  in
  let t =
    {
      seg;
      base;
      page_size;
      page_shift = log2 page_size;
      n_pages;
      pages = Array.make n_pages Page.Uncommitted;
      committed = 0;
    }
  in
  for i = 0 to config.Config.initial_pages - 1 do
    t.pages.(i) <- Page.Free
  done;
  t.committed <- config.Config.initial_pages;
  t

let segment t = t.seg
let base t = t.base
let limit_reserved t = Addr.add t.base (t.n_pages * t.page_size)
let page_size t = t.page_size
let n_pages t = t.n_pages
let committed_pages t = t.committed
let committed_bytes t = t.committed * t.page_size
let contains t a = Addr.in_range a ~lo:t.base ~hi:(limit_reserved t)
let page_index t a = Addr.diff a t.base asr t.page_shift
let page_addr t i = Addr.add t.base (i * t.page_size)
let page t i = t.pages.(i)
let set_page t i p = t.pages.(i) <- p

let iter_committed t f =
  for i = 0 to t.committed - 1 do
    f i t.pages.(i)
  done

let find_free_page t ~ok =
  let rec go i =
    if i >= t.committed then None
    else
      match t.pages.(i) with
      | Page.Free when ok i -> Some i
      | Page.Free | Page.Uncommitted | Page.Small _ | Page.Large_head _ | Page.Large_tail _ ->
          go (i + 1)
  in
  go 0

let find_free_run t ~n ~ok =
  let rec scan start run i =
    if run = n then Some start
    else if i >= t.n_pages then None
    else begin
      let usable =
        (match t.pages.(i) with
        | Page.Free | Page.Uncommitted -> true
        | Page.Small _ | Page.Large_head _ | Page.Large_tail _ -> false)
        && ok i
      in
      if usable then scan (if run = 0 then i else start) (run + 1) (i + 1)
      else scan 0 0 (i + 1)
    end
  in
  scan 0 0 0

let uncommit_trailing_free t =
  let released = ref 0 in
  let continue_ = ref true in
  while !continue_ && t.committed > 0 do
    match t.pages.(t.committed - 1) with
    | Page.Free ->
        t.pages.(t.committed - 1) <- Page.Uncommitted;
        t.committed <- t.committed - 1;
        incr released
    | Page.Uncommitted | Page.Small _ | Page.Large_head _ | Page.Large_tail _ ->
        continue_ := false
  done;
  !released

let commit_through t i =
  if i >= t.n_pages then false
  else begin
    for j = t.committed to i do
      t.pages.(j) <- Page.Free
    done;
    if i + 1 > t.committed then t.committed <- i + 1;
    true
  end

let free_page_count t =
  let n = ref 0 in
  iter_committed t (fun _ p ->
      match p with
      | Page.Free -> incr n
      | Page.Uncommitted | Page.Small _ | Page.Large_head _ | Page.Large_tail _ -> ());
  !n

let mark_object t base =
  let index = page_index t base in
  match t.pages.(index) with
  | Page.Small s ->
      let rel = Addr.diff base (page_addr t index) - s.Page.first_offset in
      let obj = rel / s.Page.object_bytes in
      if Bitset.mem s.Page.mark obj then false
      else begin
        Bitset.add s.Page.mark obj;
        true
      end
  | Page.Large_head l ->
      if l.Page.l_marked then false
      else begin
        l.Page.l_marked <- true;
        true
      end
  | Page.Uncommitted | Page.Free | Page.Large_tail _ ->
      invalid_arg "Heap.mark_object: not an object base"

let object_span t base =
  let index = page_index t base in
  match t.pages.(index) with
  | Page.Small s -> (s.Page.object_bytes, s.Page.pointer_free)
  | Page.Large_head l -> (l.Page.object_bytes, l.Page.l_pointer_free)
  | Page.Uncommitted | Page.Free | Page.Large_tail _ ->
      invalid_arg "Heap.object_span: not an object base"

let live_bytes t =
  let total = ref 0 in
  iter_committed t (fun _ p ->
      match p with
      | Page.Small s -> total := !total + (Bitset.count s.alloc * s.object_bytes)
      | Page.Large_head l -> if l.l_allocated then total := !total + l.object_bytes
      | Page.Free | Page.Uncommitted | Page.Large_tail _ -> ());
  !total

let pp ppf t =
  Format.fprintf ppf "heap %a..%a (%d/%d pages committed, %d free)" Addr.pp t.base Addr.pp
    (limit_reserved t) t.committed t.n_pages (free_page_count t)
