open Cgc_vm

type range = {
  lo : Addr.t;
  hi : Addr.t;
  label : string;
}

type source =
  | Static_range of range
  | Dynamic_ranges of string * (unit -> range list)
  | Register_file of string * (unit -> int array)

type t = {
  mutable sources : source list; (* reversed registration order *)
  mutable excluded : range list;
}

let create () = { sources = []; excluded = [] }
let add t s = t.sources <- s :: t.sources

let clear t =
  t.sources <- [];
  t.excluded <- []

let sources t = List.rev t.sources
let exclude t ~lo ~hi ~label = t.excluded <- { lo; hi; label } :: t.excluded
let exclusions t = List.rev t.excluded

(* Subtract one excluded range from a root range (0, 1 or 2 pieces). *)
let subtract r ex =
  let open Addr in
  if to_int ex.hi <= to_int r.lo || to_int ex.lo >= to_int r.hi then [ r ]
  else begin
    let before =
      if to_int ex.lo > to_int r.lo then [ { r with hi = ex.lo } ] else []
    in
    let after = if to_int ex.hi < to_int r.hi then [ { r with lo = ex.hi } ] else [] in
    before @ after
  end

let apply_exclusions t r =
  List.fold_left (fun pieces ex -> List.concat_map (fun p -> subtract p ex) pieces) [ r ] t.excluded

let current_ranges t =
  List.concat_map
    (fun s ->
      let raw =
        match s with
        | Static_range r -> [ r ]
        | Dynamic_ranges (_, f) -> f ()
        | Register_file _ -> []
      in
      List.concat_map (apply_exclusions t) raw)
    (sources t)

let current_registers t =
  List.filter_map
    (fun s ->
      match s with
      | Register_file (label, f) -> Some (label, f ())
      | Static_range _ | Dynamic_ranges _ -> None)
    (sources t)

let pp ppf t =
  Format.fprintf ppf "@[<v>roots:@,";
  List.iter
    (fun s ->
      match s with
      | Static_range r -> Format.fprintf ppf "  static %s %a..%a@," r.label Addr.pp r.lo Addr.pp r.hi
      | Dynamic_ranges (label, _) -> Format.fprintf ppf "  dynamic %s@," label
      | Register_file (label, _) -> Format.fprintf ppf "  registers %s@," label)
    (sources t);
  Format.fprintf ppf "@]"
