(** Object layout descriptors.

    The conservative collector never needs these — that is its point —
    but the {e precise} baseline collector ({!Precise}) does, and the
    mutator's typed object builders use them to know where pointer
    fields live.  A descriptor gives an object's size and the byte
    offsets of its pointer fields. *)

type t = private {
  name : string;
  size_bytes : int;
  pointer_offsets : int array;  (** strictly increasing, word-aligned *)
}

val make : name:string -> size_bytes:int -> pointer_offsets:int list -> t
(** @raise Invalid_argument if an offset is unaligned, out of bounds or
    out of order. *)

val atomic : name:string -> size_bytes:int -> t
(** A descriptor with no pointer fields. *)

val is_atomic : t -> bool

val cons : t
(** Two words: car, cdr — the "lisp-style cons-cell" of section 4. *)

val link_cell : t
(** One word: a bare next pointer — program T's 4-byte list cell. *)

val pp : Format.formatter -> t -> unit
