open Cgc_vm

type entry = {
  tag : string;
  mutable freed : bool;
}

type t = {
  gc : Gc.t;
  table : (Addr.t, entry) Hashtbl.t;
}

let create gc =
  Gc.set_auto_collect gc false;
  { gc; table = Hashtbl.create 256 }

let gc t = t.gc

let allocate ?pointer_free t ~tag bytes =
  let a = Gc.allocate ?pointer_free t.gc bytes in
  Hashtbl.replace t.table a { tag; freed = false };
  a

let free t a =
  match Hashtbl.find_opt t.table a with
  | None -> invalid_arg "Debug.free: not a tracked object"
  | Some e ->
      if e.freed then invalid_arg "Debug.free: double free";
      e.freed <- true

type finding = {
  address : Addr.t;
  tag : string;
}

type report = {
  leaks : finding list;
  premature_frees : finding list;
  clean_frees : int;
  live : int;
}

let check t =
  Gc.Internal.run_mark t.gc;
  let heap = Gc.heap t.gc in
  let leaks = ref [] in
  let premature = ref [] in
  let clean = ref 0 in
  let live = ref 0 in
  let drop = ref [] in
  Hashtbl.iter
    (fun address e ->
      let reachable = Gc.Internal.is_marked t.gc address in
      match (e.freed, reachable) with
      | true, true -> premature := { address; tag = e.tag } :: !premature
      | true, false ->
          incr clean;
          drop := address :: !drop
      | false, false ->
          leaks := { address; tag = e.tag } :: !leaks;
          (* keep the leaked object allocated so the report repeats
             until the program is fixed *)
          ignore (Heap.mark_object heap address)
      | false, true -> incr live)
    t.table;
  List.iter (Hashtbl.remove t.table) !drop;
  let (_ : Sweep.result) = Gc.Internal.run_sweep t.gc in
  {
    leaks = List.rev !leaks;
    premature_frees = List.rev !premature;
    clean_frees = !clean;
    live = !live;
  }

let tracked t = Hashtbl.length t.table

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%d live, %d cleanly freed, %d leak(s), %d premature free(s)@,"
    r.live r.clean_frees (List.length r.leaks)
    (List.length r.premature_frees);
  List.iter (fun f -> Format.fprintf ppf "  LEAK          %a  (%s)@," Addr.pp f.address f.tag) r.leaks;
  List.iter
    (fun f -> Format.fprintf ppf "  PREMATURE FREE %a (%s)@," Addr.pp f.address f.tag)
    r.premature_frees;
  Format.fprintf ppf "@]"
