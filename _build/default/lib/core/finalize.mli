(** Finalization registry.

    Mirrors the facility the paper's PCR experiments used to count
    reclaimed lists: "statistics were gathered using the PCR
    finalization facility, which allows selected otherwise unreachable
    heap cells to be enqueued for further action".  A registered object
    that the sweeper reclaims is enqueued with its token; the client
    drains the queue between collections. *)

open Cgc_vm

type t

val create : unit -> t

val register : t -> Addr.t -> token:string -> unit
(** Watch the object at the given base address.  Re-registering an
    address replaces its token. *)

val unregister : t -> Addr.t -> unit

val is_registered : t -> Addr.t -> bool

val registered_count : t -> int

val iter_registered : (Cgc_vm.Addr.t -> string -> unit) -> t -> unit

val on_reclaimed : t -> Addr.t -> unit
(** Called by the sweeper when an object is freed; enqueues the token if
    the address was registered and removes the registration. *)

val drain : t -> (Addr.t * string) list
(** Return and clear the queue, in reclamation order. *)

val queue_length : t -> int
