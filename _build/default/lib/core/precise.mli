(** Precise (type-accurate) mark-sweep baseline.

    The control for every misidentification experiment: it shares the
    conservative collector's heap, allocator and sweeper but marks from
    an {e exact} root set through {e exact} pointer maps
    ({!Type_desc.t}), so "there are no false references in our sense"
    (paper section 4).  Differences in retention between this collector
    and the conservative one are, by construction, entirely due to
    conservativism. *)

open Cgc_vm

type t

val create : Gc.t -> t
(** Wrap a conservative collector's machinery.  The wrapped [Gc.t]
    should have auto-collection turned off and should not be collected
    conservatively while the precise view is in use (the two marking
    disciplines would disagree about liveness). *)

val gc : t -> Gc.t

val allocate : ?finalizer:string -> t -> Type_desc.t -> Addr.t
(** Allocate an object of the described type and remember its layout. *)

val add_root_provider : t -> (unit -> Addr.t list) -> unit
(** Register a provider of exact root object addresses (bases). *)

val collect : t -> unit
(** Exact mark from the registered roots, then sweep (shared sweeper;
    finalization behaves identically). *)

val descriptor : t -> Addr.t -> Type_desc.t option

val live_objects : t -> int
(** From the shared statistics of the most recent sweep. *)
