lib/core/gc.ml: Addr Bitset Blacklist Cgc_vm Config Finalize Format Free_list Heap List Mark Mem Page Printf Roots Segment Size_class Stats Sweep Sys
