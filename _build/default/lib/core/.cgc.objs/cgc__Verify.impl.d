lib/core/verify.ml: Bitset Cgc_vm Finalize Free_list Gc Hashtbl Heap List Page Printf Stats
