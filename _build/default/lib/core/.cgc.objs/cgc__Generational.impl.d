lib/core/generational.ml: Addr Array Bitset Blacklist Cgc_vm Config Format Free_list Gc Heap List Mark Mem Page Roots Segment Sweep
