lib/core/page.ml: Bitset Cgc_vm Format
