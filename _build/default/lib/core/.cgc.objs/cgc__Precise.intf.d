lib/core/precise.mli: Addr Cgc_vm Gc Type_desc
