lib/core/roots.ml: Addr Cgc_vm Format List
