lib/core/config.ml: Format List String
