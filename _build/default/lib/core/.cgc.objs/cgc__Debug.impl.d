lib/core/debug.ml: Addr Cgc_vm Format Gc Hashtbl Heap List Sweep
