lib/core/page.mli: Bitset Cgc_vm Format
