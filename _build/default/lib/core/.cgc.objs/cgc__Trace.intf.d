lib/core/trace.mli: Addr Cgc_vm Format Gc
