lib/core/explicit.ml: Addr Bitset Cgc_vm Config Format Free_list Heap List Page Segment Size_class
