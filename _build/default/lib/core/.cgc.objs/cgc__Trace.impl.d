lib/core/trace.ml: Addr Array Cgc_vm Config Format Gc Hashtbl Heap List Mark Mem Page Roots Segment String
