lib/core/blacklist.ml: Bitset Cgc_vm Format
