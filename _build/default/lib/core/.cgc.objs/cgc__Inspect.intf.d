lib/core/inspect.mli: Format Gc
