lib/core/blacklist.mli: Format
