lib/core/sweep.ml: Addr Array Bitset Cgc_vm Finalize Free_list Heap List Page Stats
