lib/core/mark.ml: Addr Array Bitset Blacklist Cgc_vm Config Heap List Mem Page Roots Segment Stats
