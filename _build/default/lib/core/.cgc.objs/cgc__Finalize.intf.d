lib/core/finalize.mli: Addr Cgc_vm
