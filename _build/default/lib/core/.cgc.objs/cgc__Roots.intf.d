lib/core/roots.mli: Addr Cgc_vm Format
