lib/core/gc.mli: Addr Blacklist Cgc_vm Config Finalize Format Free_list Heap Mark Mem Roots Stats Sweep
