lib/core/explicit.mli: Addr Cgc_vm Format Free_list Mem
