lib/core/type_desc.mli: Format
