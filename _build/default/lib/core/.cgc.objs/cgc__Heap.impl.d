lib/core/heap.ml: Addr Array Bitset Cgc_vm Config Format Mem Page Segment
