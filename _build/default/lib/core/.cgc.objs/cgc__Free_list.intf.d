lib/core/free_list.mli:
