lib/core/finalize.ml: Addr Cgc_vm Hashtbl List
