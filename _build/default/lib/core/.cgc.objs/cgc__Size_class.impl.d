lib/core/size_class.ml: Config
