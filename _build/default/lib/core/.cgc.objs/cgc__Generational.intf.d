lib/core/generational.mli: Addr Cgc_vm Format Gc
