lib/core/free_list.ml: Array List Printf
