lib/core/inspect.ml: Bitset Blacklist Cgc_vm Format Gc Hashtbl Heap List Page
