lib/core/precise.ml: Addr Array Bitset Cgc_vm Gc Hashtbl Heap List Page Stats Sweep Type_desc
