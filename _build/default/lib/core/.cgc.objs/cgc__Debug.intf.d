lib/core/debug.mli: Addr Cgc_vm Format Gc
