lib/core/heap.mli: Addr Cgc_vm Config Format Mem Page Segment
