lib/core/sweep.mli: Finalize Free_list Heap Page Stats
