lib/core/mark.mli: Addr Blacklist Cgc_vm Config Heap Mem Roots Stats
