lib/core/type_desc.ml: Array Format String
