(** The conservative root set.

    Boehm's collector scans "the stack(s), registers, static data, as
    well as the heap conservatively".  Root sources are registered once;
    dynamic sources (the live stack extent, register contents) are
    re-queried at each collection. *)

open Cgc_vm

type range = {
  lo : Addr.t;
  hi : Addr.t;  (** exclusive *)
  label : string;
}

type source =
  | Static_range of range
      (** a fixed region, e.g. the program's static data segment *)
  | Dynamic_ranges of string * (unit -> range list)
      (** regions recomputed per collection, e.g. the currently live part
          of each thread stack *)
  | Register_file of string * (unit -> int array)
      (** raw word values scanned directly (they live in no segment) *)

type t

val create : unit -> t
val add : t -> source -> unit
val clear : t -> unit
val sources : t -> source list

val exclude : t -> lo:Cgc_vm.Addr.t -> hi:Cgc_vm.Addr.t -> label:string -> unit
(** Mark a sub-range as not-to-be-scanned.  The paper recommends this
    for "large static data areas that contain seemingly random,
    nonpointer areas (e.g. IO buffers)". *)

val exclusions : t -> range list

val current_ranges : t -> range list
(** All ranges, with dynamic sources expanded and exclusions subtracted,
    in registration order. *)

val current_registers : t -> (string * int array) list

val pp : Format.formatter -> t -> unit
