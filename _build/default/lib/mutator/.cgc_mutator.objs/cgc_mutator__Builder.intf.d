lib/mutator/builder.mli: Addr Cgc_vm Machine
