lib/mutator/machine.mli: Addr Cgc Cgc_vm Format Mem Segment
