lib/mutator/builder.ml: Addr Array Cgc Cgc_vm Fun List Machine
