lib/mutator/machine.ml: Addr Array Cgc Cgc_vm Format Fun Mem Rng Segment
