open Cgc_vm

type config = {
  n_registers : int;
  register_residue : float;
  syscall_noise : float;
  frame_padding : int;
  clear_frames_on_entry : bool;
  clear_frames_on_exit : bool;
  allocator_self_cleanup : bool;
  stack_clearing : bool;
  stack_clear_period : int;
  stack_clear_words : int;
}

let default_config =
  {
    n_registers = 32;
    register_residue = 0.;
    syscall_noise = 0.;
    frame_padding = 2;
    clear_frames_on_entry = false;
    clear_frames_on_exit = false;
    allocator_self_cleanup = true;
    stack_clearing = false;
    stack_clear_period = 64;
    stack_clear_words = 256;
  }

let careless_config =
  {
    default_config with
    frame_padding = 8;
    allocator_self_cleanup = false;
    stack_clearing = false;
  }

let hygienic_config =
  { default_config with allocator_self_cleanup = true; stack_clearing = true }

type t = {
  mem : Mem.t;
  gc : Cgc.Gc.t;
  rng : Rng.t;
  config : config;
  stack : Segment.t;
  stack_base : Addr.t; (* == Segment.limit stack *)
  mutable sp : Addr.t;
  mutable low_water : Addr.t;
  registers : int array;
  mutable alloc_count : int;
  mutable park_restore : Addr.t option;
}

type frame = {
  machine : t;
  f_base : Addr.t; (* lowest address of the frame's locals *)
  f_slots : int;
}

let word = 4

let create ?(config = default_config) ?(seed = 42) mem ~stack ~gc =
  if config.n_registers < 4 then invalid_arg "Machine.create: need at least 4 registers";
  let stack_base = Segment.limit stack in
  let t =
    {
      mem;
      gc;
      rng = Rng.create seed;
      config;
      stack;
      stack_base;
      sp = stack_base;
      low_water = stack_base;
      registers = Array.make config.n_registers 0;
      alloc_count = 0;
      park_restore = None;
    }
  in
  Cgc.Gc.add_register_roots gc ~label:"machine registers" (fun () -> t.registers);
  Cgc.Gc.add_dynamic_roots gc ~label:"machine stack" (fun () ->
      [ { Cgc.Roots.lo = t.sp; hi = t.stack_base; label = "live stack" } ]);
  t

let gc t = t.gc
let config t = t.config
let stack_pointer t = t.sp
let stack_base t = t.stack_base
let low_water t = t.low_water
let live_stack_words t = Addr.diff t.stack_base t.sp / word
let n_registers t = t.config.n_registers
let get_register t i = t.registers.(i)
let set_register t i v = t.registers.(i) <- v land 0xFFFFFFFF
let clear_registers t = Array.fill t.registers 0 (Array.length t.registers) 0
let allocation_count t = t.alloc_count

(* A value below the live stack: stale unless someone clears it. *)
let dead_region t = (Segment.base t.stack, t.sp)

let clear_dead_stack t ?words () =
  let lo, hi = dead_region t in
  let lo =
    match words with
    | None -> lo
    | Some w -> Addr.of_int (max (Addr.to_int lo) (Addr.to_int hi - (w * word)))
  in
  let len = Addr.diff hi lo in
  if len > 0 then Segment.zero_range t.stack lo ~len

(* Registers 0-7 model values the compiled code actively keeps live;
   residue and kernel noise only ever lands in the caller-saved upper
   registers, which the conservative scan nonetheless sees. *)
let context_switch_noise t =
  for _ = 1 to 8 do
    if Rng.chance t.rng t.config.syscall_noise then begin
      let reg = 8 + Rng.int t.rng (t.config.n_registers - 8) in
      t.registers.(reg) <- Rng.word t.rng
    end
  done

let residue_noise t =
  if t.config.register_residue > 0. && Rng.chance t.rng t.config.register_residue then begin
    (* A register window rotates in, exposing a stale stack value. *)
    let lo, hi = dead_region t in
    let dead_words = Addr.diff hi lo / word in
    if dead_words > 0 then begin
      let a = Addr.add lo (word * Rng.int t.rng dead_words) in
      let reg = 8 + Rng.int t.rng (t.config.n_registers - 8) in
      t.registers.(reg) <- Segment.read_word t.stack a
    end
  end

let push_frame t ~slots =
  let total_words = slots + t.config.frame_padding in
  let new_sp = Addr.add t.sp (-(total_words * word)) in
  if Addr.to_int new_sp < Addr.to_int (Segment.base t.stack) then
    failwith "Machine: simulated stack overflow";
  t.sp <- new_sp;
  if Addr.to_int new_sp < Addr.to_int t.low_water then t.low_water <- new_sp;
  if t.config.clear_frames_on_entry then
    Segment.zero_range t.stack new_sp ~len:(total_words * word);
  { machine = t; f_base = new_sp; f_slots = slots }

let pop_frame t frame =
  if t.config.clear_frames_on_exit then begin
    let total_words = frame.f_slots + t.config.frame_padding in
    Segment.zero_range t.stack frame.f_base ~len:(total_words * word)
  end;
  t.sp <- Addr.add frame.f_base ((frame.f_slots + t.config.frame_padding) * word)

let call t ~slots f =
  residue_noise t;
  let frame = push_frame t ~slots in
  Fun.protect ~finally:(fun () -> pop_frame t frame) (fun () -> f frame)

let local_addr frame i =
  if i < 0 || i >= frame.f_slots then invalid_arg "Machine.local_addr: slot out of range";
  Addr.add frame.f_base (i * word)

let get_local frame i = Segment.read_word frame.machine.stack (local_addr frame i)
let set_local frame i v = Segment.write_word frame.machine.stack (local_addr frame i) v

let park t ~words =
  if t.park_restore <> None then failwith "Machine.park: already parked";
  let new_sp = Addr.add t.sp (-(words * word)) in
  if Addr.to_int new_sp < Addr.to_int (Segment.base t.stack) then
    failwith "Machine.park: simulated stack overflow";
  t.park_restore <- Some t.sp;
  t.sp <- new_sp;
  if Addr.to_int new_sp < Addr.to_int t.low_water then t.low_water <- new_sp

let unpark t =
  match t.park_restore with
  | None -> ()
  | Some sp ->
      t.park_restore <- None;
      t.sp <- sp

let parked t = t.park_restore <> None

(* The cheap stack-clearing algorithm of section 3.1: every
   [stack_clear_period] allocations, clear a bounded chunk of the dead
   region just below the stack pointer; clear more eagerly when the
   stack is far above its deepest point. *)
let periodic_stack_clear t =
  if t.config.stack_clearing && t.alloc_count mod t.config.stack_clear_period = 0 then begin
    let gap_words = Addr.diff t.sp t.low_water / word in
    let words = min (max t.config.stack_clear_words (gap_words / 4)) gap_words in
    if words > 0 then clear_dead_stack t ~words ()
  end

let allocate ?pointer_free ?finalizer t bytes =
  t.alloc_count <- t.alloc_count + 1;
  periodic_stack_clear t;
  context_switch_noise t;
  let base = Cgc.Gc.allocate ?pointer_free ?finalizer t.gc bytes in
  (* Out-of-line allocator scratch: the fresh pointer is spilled just
     below the caller's stack.  GC-aware allocators clear it on exit. *)
  let scratch = Addr.add t.sp (-word) in
  if Addr.to_int scratch >= Addr.to_int (Segment.base t.stack) then begin
    Segment.write_word t.stack scratch (Addr.to_int base);
    if t.config.allocator_self_cleanup then Segment.write_word t.stack scratch 0
  end;
  t.registers.(0) <- Addr.to_int base;
  base

let pp ppf t =
  Format.fprintf ppf "machine: sp=%a low=%a base=%a allocs=%d" Addr.pp t.sp Addr.pp t.low_water
    Addr.pp t.stack_base t.alloc_count
