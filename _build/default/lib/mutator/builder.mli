(** Typed object construction on top of the machine.

    The data structures of the paper's experiments: program T's circular
    lists of bare link cells, lisp-style cons lists, embedded-link and
    separate-link grids (figures 3 and 4), queues, and binary trees.

    Builders keep intermediate pointers in machine registers so a
    collection in the middle of construction cannot reclaim the partial
    structure (exactly as compiled code would keep them in caller-saved
    registers). *)

open Cgc_vm

val nil : int
(** The null "pointer" (0). *)

val cons : Machine.t -> car:int -> cdr:int -> Addr.t
(** An 8-byte two-word cell. *)

val car : Machine.t -> Addr.t -> int
val cdr : Machine.t -> Addr.t -> int
val set_car : Machine.t -> Addr.t -> int -> unit
val set_cdr : Machine.t -> Addr.t -> int -> unit

val list_of : Machine.t -> int list -> Addr.t
(** A cons list of the given values; [nil] for the empty list. *)

val list_values : Machine.t -> Addr.t -> int list
val list_length : Machine.t -> Addr.t -> int

val alloc_cycle : ?finalizer:string -> ?cell_bytes:int -> Machine.t -> n:int -> Addr.t
(** Program T's [allot_cycle]: a circular list of [n] cells (default
    4 bytes — just a next pointer; 8 reproduces the PCR variant, whose
    second word holds a magic number).  Returns a pointer into the
    cycle; the optional finalizer token is attached to that cell. *)

val cycle_cells : Machine.t -> Addr.t -> Addr.t list
(** All cell bases of a circular list, starting from the given cell. *)

val atomic_array : Machine.t -> int array -> Addr.t
(** A pointer-free data object (compressed data, bitmaps...) the
    collector is told not to scan. *)

val scanned_array : Machine.t -> int array -> Addr.t
(** The same data allocated as an ordinary (conservatively scanned)
    object — the hazard the paper warns about for large compressed
    data. *)

(** {1 Grids (paper figures 3 and 4)} *)

type grid = {
  rows : int;
  cols : int;
  vertices : Addr.t array;  (** row-major; [vertices.(r*cols + c)] *)
  headers : Addr.t;
      (** an object holding the row and column header pointers — the
          structure's intended entry points *)
  spine : Addr.t array;
      (** separate-link representation only: all cons cells *)
}

val grid_embedded : Machine.t -> rows:int -> cols:int -> grid
(** Figure 3: each vertex is a 4-word object [right; down; payload0;
    payload1] — linked lists "involve pointer fields in the objects
    themselves". *)

val grid_separate : Machine.t -> rows:int -> cols:int -> grid
(** Figure 4: vertices are 2-word payload objects with {e no} links;
    rows and columns are chains of separate cons cells whose cars point
    to the vertices. *)

(** {1 Queue (section 4)} *)

type queue

val queue_create : Machine.t -> queue

(** The two-word head/tail header object.  The client must keep this
    reachable (e.g. store it in a rooted slot): the queue's nodes are
    only reachable through it. *)
val queue_header : queue -> Addr.t
val queue_push : queue -> int -> Addr.t
(** Enqueue a value; returns the new node's address. *)

val queue_pop : ?clear_link:bool -> queue -> int option
(** Dequeue.  [clear_link] implements the paper's fix: "queues no longer
    grow without bound if the queue link field is cleared when an item
    is removed". *)

val queue_length : queue -> int
val queue_nodes : queue -> Addr.t list
(** Live nodes from head to tail. *)

(** {1 Balanced binary tree (section 4)} *)

val tree_build : Machine.t -> depth:int -> Addr.t
(** A perfect binary tree of the given depth with child links; 3-word
    nodes [left; right; payload].  Depth 0 is a single leaf. *)

val tree_nodes : Machine.t -> Addr.t -> Addr.t list
val tree_size : Machine.t -> Addr.t -> int
