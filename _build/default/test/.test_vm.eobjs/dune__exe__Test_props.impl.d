test/test_props.ml: Addr Alcotest Array Bitset Cgc Cgc_vm Endian Gen Hashtbl List Mem Option QCheck QCheck_alcotest Rng Segment
