test/test_extensions.ml: Addr Alcotest Array Cgc Cgc_vm Cgc_workloads Format List Mem Rng Segment String
