test/test_mutator.ml: Addr Alcotest Array Cgc Cgc_mutator Cgc_vm Fun List Mem Segment
