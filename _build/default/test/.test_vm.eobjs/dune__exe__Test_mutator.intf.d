test/test_mutator.mli:
