test/test_soak.ml: Addr Alcotest Array Cgc Cgc_vm List Mem Rng Segment
