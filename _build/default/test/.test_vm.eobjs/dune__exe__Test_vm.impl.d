test/test_vm.ml: Addr Alcotest Bitset Cgc_vm Endian Layout List Mem Rng Segment
