test/test_workloads.ml: Addr Alcotest Cgc Cgc_mutator Cgc_vm Cgc_workloads Float List Printf Rng Segment
