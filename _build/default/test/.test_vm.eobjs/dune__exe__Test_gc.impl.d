test/test_gc.ml: Addr Alcotest Array Cgc Cgc_vm Format List Mem Option Segment String
