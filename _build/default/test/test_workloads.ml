(* Integration tests: the paper's experiments at reduced scale. *)

open Cgc_vm
module W_platform = Cgc_workloads.Platform
module W_program_t = Cgc_workloads.Program_t
module W_grid = Cgc_workloads.Grid
module W_tree = Cgc_workloads.Tree
module W_queue = Cgc_workloads.Queue_lazy
module W_reverse = Cgc_workloads.List_reverse
module W_false_ref = Cgc_workloads.False_ref
module W_large = Cgc_workloads.Large_object
module W_dual = Cgc_workloads.Dual_run
module W_frag = Cgc_workloads.Fragmentation
module Harness = Cgc_workloads.Harness

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* --- platform presets --- *)

let test_platform_presets_build () =
  List.iter
    (fun p ->
      let env = W_platform.build_env ~heap_max:(2 * 1024 * 1024) p in
      (* globals area reserved and clean *)
      let dirty = ref 0 in
      for i = 0 to env.W_platform.globals_words - 1 do
        if Segment.read_word env.W_platform.data (Addr.add env.W_platform.globals_base (4 * i)) <> 0
        then incr dirty
      done;
      check int (p.W_platform.name ^ ": globals clean") 0 !dirty;
      (* pollution present for polluted presets *)
      if p.W_platform.pollution.W_platform.conversion_table_words > 0 then begin
        let first = Segment.read_word env.W_platform.data (Segment.base env.W_platform.data) in
        check bool (p.W_platform.name ^ ": pollution written") true (first <> 0)
      end)
    W_platform.all

let test_platform_lookup () =
  check bool "by_name finds" true (W_platform.by_name "pcr" <> None);
  check bool "by_name misses" true (W_platform.by_name "vax" = None);
  check int "nine rows" 9 (List.length W_platform.all)

let test_platform_scale () =
  let p = W_platform.scale ~lists:7 ~nodes_per_list:11 W_platform.pcr in
  check int "lists" 7 p.W_platform.lists;
  check int "nodes" 11 p.W_platform.nodes_per_list;
  check Alcotest.string "name kept" "pcr" p.W_platform.name

let test_conversion_value_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = W_platform.conversion_value rng in
    check bool "positive 32-bit" true (v > 0 && v < 0x100000000)
  done

(* --- program T --- *)

let test_program_t_small () =
  let p = W_platform.sparc_static ~optimized:false in
  let r = W_program_t.run ~lists:20 ~nodes:500 ~blacklisting:true p in
  check int "lists" 20 r.W_program_t.lists;
  check bool "retained within range" true (r.W_program_t.retained >= 0 && r.W_program_t.retained <= 20);
  check bool "collections happened" true (r.W_program_t.collections > 0);
  check bool "blacklist populated" true (r.W_program_t.blacklisted_pages > 0)

let test_program_t_blacklisting_helps () =
  let p = W_platform.sparc_static ~optimized:false in
  let row = W_program_t.run_row ~lists:40 ~nodes:1500 p in
  let without = row.W_program_t.without_blacklisting.W_program_t.retained in
  let with_bl = row.W_program_t.with_blacklisting.W_program_t.retained in
  check bool "blacklisting strictly reduces retention" true (with_bl < without);
  check bool "most lists leak without it" true (without > 10);
  check bool "few lists leak with it" true (with_bl <= 4)

let test_program_t_deterministic () =
  let p = W_platform.os2_static ~optimized:false in
  let a = W_program_t.run ~seed:5 ~lists:15 ~nodes:300 p in
  let b = W_program_t.run ~seed:5 ~lists:15 ~nodes:300 p in
  check int "same seed same retention" a.W_program_t.retained b.W_program_t.retained;
  check int "same false refs" a.W_program_t.false_refs b.W_program_t.false_refs

let test_program_t_clean_platform_retains_nothing () =
  (* no pollution, no noise: the collector must reclaim everything *)
  let p =
    {
      (W_platform.sgi_static ~optimized:true) with
      W_platform.pollution = W_platform.no_pollution;
      machine_config =
        {
          (W_platform.sgi_static ~optimized:true).W_platform.machine_config with
          Cgc_mutator.Machine.register_residue = 0.;
          syscall_noise = 0.;
        };
    }
  in
  let r = W_program_t.run ~lists:20 ~nodes:500 ~blacklisting:true p in
  check int "zero retention on a clean platform" 0 r.W_program_t.retained

(* --- grid --- *)

let test_grid_embedded_corner_cases () =
  (* a false ref to vertex (0,0) reaches the whole grid *)
  let r = W_grid.run_one W_grid.Embedded ~rows:5 ~cols:5 ~target:0 in
  check int "(0,0) retains all vertices" 25 r.W_grid.retained_cells;
  (* the last vertex reaches only itself *)
  let r = W_grid.run_one W_grid.Embedded ~rows:5 ~cols:5 ~target:24 in
  check int "last vertex retains itself" 1 r.W_grid.retained_cells

let test_grid_separate_vertex_is_isolated () =
  let r = W_grid.run_one W_grid.Separate ~rows:5 ~cols:5 ~target:0 in
  check int "a vertex retains only itself" 1 r.W_grid.retained_cells

let test_grid_separate_bounded_by_row () =
  (* any injection retains at most one full row/column of spine plus its
     vertices: 2 * max(rows, cols) cells is a safe bound *)
  let s = W_grid.run_trials W_grid.Separate ~rows:6 ~cols:6 ~trials:25 in
  let bound = float_of_int (2 * 6 + 6) /. float_of_int (36 * 3) in
  check bool "bounded by one row" true (s.W_grid.max_fraction <= bound +. 0.01)

let test_grid_embedded_mean_quarter () =
  let s = W_grid.run_trials W_grid.Embedded ~rows:10 ~cols:10 ~trials:40 in
  check bool "mean near a quarter" true
    (s.W_grid.mean_fraction > 0.15 && s.W_grid.mean_fraction < 0.45)

(* --- tree --- *)

let test_tree_mean_near_height () =
  let r = W_tree.run ~depth:8 ~trials:60 () in
  let expected = float_of_int (r.W_tree.depth + 1) in
  check bool "mean retained close to height+1" true
    (r.W_tree.mean_retained > expected /. 2. && r.W_tree.mean_retained < expected *. 2.5)

let test_tree_total_nodes () =
  let r = W_tree.run ~depth:5 ~trials:3 () in
  check int "perfect tree population" 63 r.W_tree.total_nodes

(* --- queue --- *)

let test_queue_unbounded_growth () =
  let short = W_queue.run ~clear_links:false 500 in
  let long = W_queue.run ~clear_links:false 1500 in
  check bool "retention grows with ops" true
    (long.W_queue.dead_nodes_retained > short.W_queue.dead_nodes_retained + 500);
  check bool "most dead nodes retained" true
    (long.W_queue.dead_nodes_retained > long.W_queue.ops / 2)

let test_queue_clearing_bounds_growth () =
  let short = W_queue.run ~clear_links:true 500 in
  let long = W_queue.run ~clear_links:true 1500 in
  check bool "retention does not grow" true
    (long.W_queue.dead_nodes_retained <= short.W_queue.dead_nodes_retained + 1);
  check bool "at most the named node sticks" true (long.W_queue.dead_nodes_retained <= 1)

let test_lazy_stream_suffix_retention () =
  let kept = W_queue.run_stream ~clear_links:false 1200 in
  let cleared = W_queue.run_stream ~clear_links:true 1200 in
  check bool "forced suffix retained" true (kept.W_queue.dead_nodes_retained > 1000);
  check bool "clearing consumed links fixes it" true (cleared.W_queue.dead_nodes_retained <= 1)

let test_queue_window_stays_live () =
  let r = W_queue.run ~clear_links:true ~window:6 2000 in
  check int "window intact" 6 r.W_queue.live_window_nodes

(* --- list reversal --- *)

let test_reverse_ordering () =
  let run m = (W_reverse.run m ~elements:120 ~iterations:12).W_reverse.max_live_cells in
  let careless = run W_reverse.Careless in
  let cleared = run W_reverse.Cleared in
  let optimized = run W_reverse.Optimized in
  check bool "careless worst" true (careless > cleared);
  check bool "cleared better" true (cleared > optimized);
  check bool "careless much worse than optimized" true (careless > 2 * optimized)

let test_reverse_preserves_program_semantics () =
  (* whatever the mode, the final list must be the reversal *)
  let r = W_reverse.run W_reverse.Optimized ~elements:50 ~iterations:3 in
  check int "final live = original + last result" 100 r.W_reverse.final_live_cells

(* --- misidentification (section 2) --- *)

let test_sweep_monotone_in_occupancy () =
  let points =
    W_false_ref.misidentification_sweep ~samples:40_000 ~kind:W_false_ref.Uniform_words
      [ 64; 512 ]
  in
  match points with
  | [ small; large ] ->
      check bool "more heap, more misidentification" true
        (large.W_false_ref.p_valid_interior >= small.W_false_ref.p_valid_interior)
  | _ -> Alcotest.fail "expected two points"

let test_sweep_interior_increases_risk () =
  let points =
    W_false_ref.misidentification_sweep ~samples:40_000 ~kind:W_false_ref.Integer_like [ 512 ]
  in
  List.iter
    (fun p ->
      check bool "interior >= base-only" true
        (p.W_false_ref.p_valid_interior >= p.W_false_ref.p_valid_base_only);
      check bool "region >= interior" true
        (p.W_false_ref.p_in_heap_region >= p.W_false_ref.p_valid_interior))
    points

let test_halfword_concatenation () =
  let r = W_false_ref.halfword_study 8 in
  check int "aligned scan sees nothing" 0 r.W_false_ref.false_refs_aligned;
  check int "example is the documented address" 0x00100000 r.W_false_ref.example_value;
  check bool "unaligned scan retains boundary objects" true
    (r.W_false_ref.retained_avoidance_off >= 6);
  check int "trailing-zero avoidance defuses them" 0 r.W_false_ref.retained_avoidance_on

let test_placement () =
  match W_false_ref.placement_study ~samples:40_000 256 with
  | [ low; high ] ->
      check bool "low heap is hit" true (low.W_false_ref.p_false > 0.001);
      check bool "high heap is safe" true (high.W_false_ref.p_false < low.W_false_ref.p_false /. 10.)
  | _ -> Alcotest.fail "expected two placements"

(* --- large objects (observation 7) --- *)

let test_large_object_regimes () =
  let r = W_large.run ~sizes_kb:[ 16; 64; 256; 1024 ] () in
  check bool "blacklist non-empty" true (r.W_large.black_pages > 0);
  List.iter
    (fun p ->
      if p.W_large.anywhere_ok then
        check bool "anywhere ok implies first-page ok" true p.W_large.first_page_ok)
    r.W_large.probes;
  check bool "first-page regime places larger objects" true
    (r.W_large.largest_first_page_kb >= r.W_large.largest_anywhere_kb);
  check bool "strict regime hits a ceiling" true (r.W_large.largest_anywhere_kb < 1024)

(* --- dual run (footnote 4) --- *)

let test_dual_run () =
  let r = W_dual.run () in
  check int "no genuine pointer lost" 0 r.W_dual.genuine_lost;
  check bool "kept at most the conservative set" true
    (r.W_dual.dual_run_candidates <= r.W_dual.single_run_candidates);
  check bool "eliminates false references" true (r.W_dual.false_refs_eliminated > 0)

(* --- fragmentation (section 5) --- *)

let test_fragmentation_sane () =
  List.iter
    (fun a ->
      let r = W_frag.run a ~population:2000 ~iterations:6 in
      check bool "fragmentation >= 1" true (r.W_frag.fragmentation >= 1.);
      check bool "live positive" true (r.W_frag.live_bytes > 0))
    [ W_frag.Malloc_lifo; W_frag.Malloc_address_ordered; W_frag.Collector ]

(* --- pcr threads (appendix B) --- *)

module W_threads = Cgc_workloads.Pcr_threads

let test_threads_idle_pin_lists () =
  let none = W_threads.run ~threads:0 ~awake:false () in
  let idle = W_threads.run ~threads:6 ~awake:false () in
  check int "no threads, no retention" 0 none.W_threads.retained;
  check bool "idle threads pin lists" true (idle.W_threads.retained >= 3)

let test_threads_waking_releases () =
  let idle = W_threads.run ~threads:6 ~awake:false () in
  let awake = W_threads.run ~threads:6 ~awake:true () in
  check bool "waking up reduces apparent leakage" true
    (awake.W_threads.retained < idle.W_threads.retained)

(* --- analytic model --- *)

module W_model = Cgc_workloads.Model

let test_model_matches_measurement () =
  (* the static prediction must land near the measured no-blacklist
     retention; platforms span two orders of magnitude of pollution *)
  List.iter
    (fun p ->
      let nodes = p.W_platform.nodes_per_list / 8 in
      let predicted = (W_model.predict ~nodes p).W_model.predicted_retention_percent in
      let measured =
        (W_program_t.run ~blacklisting:false ~nodes p).W_program_t.retention_percent
      in
      check bool
        (Printf.sprintf "%s: predicted %.1f within 20 points of measured %.1f"
           p.W_platform.name predicted measured)
        true
        (Float.abs (predicted -. measured) <= 20.))
    [ W_platform.sparc_static ~optimized:false; W_platform.sgi_static ~optimized:false ]

let test_model_monotone_in_pollution () =
  let p = W_platform.sparc_static ~optimized:false in
  let lighter =
    { p with W_platform.pollution = { p.W_platform.pollution with W_platform.conversion_table_words = 100 } }
  in
  let heavy = (W_model.predict ~nodes:2000 p).W_model.predicted_retention_percent in
  let light = (W_model.predict ~nodes:2000 lighter).W_model.predicted_retention_percent in
  check bool "more pollution, more predicted retention" true (heavy > light)

(* --- harness --- *)

let test_harness_roots () =
  let h = Harness.create () in
  let a = Cgc.Gc.allocate h.Harness.gc 8 in
  Harness.set_root h 3 (Addr.to_int a);
  check int "root round trip" (Addr.to_int a) (Harness.get_root h 3);
  Cgc_mutator.Machine.clear_registers h.Harness.machine;
  Cgc.Gc.collect h.Harness.gc;
  check int "rooted object counted" 1 (Harness.count_allocated h [ a ]);
  Harness.clear_roots_area h;
  Cgc.Gc.collect h.Harness.gc;
  check int "dropped object gone" 0 (Harness.count_allocated h [ a ])

let () =
  Alcotest.run "workloads"
    [
      ( "platform",
        [
          Alcotest.test_case "presets build" `Quick test_platform_presets_build;
          Alcotest.test_case "lookup" `Quick test_platform_lookup;
          Alcotest.test_case "scale" `Quick test_platform_scale;
          Alcotest.test_case "conversion values" `Quick test_conversion_value_range;
        ] );
      ( "program-t",
        [
          Alcotest.test_case "small run" `Quick test_program_t_small;
          Alcotest.test_case "blacklisting helps" `Slow test_program_t_blacklisting_helps;
          Alcotest.test_case "deterministic" `Quick test_program_t_deterministic;
          Alcotest.test_case "clean platform" `Quick test_program_t_clean_platform_retains_nothing;
        ] );
      ( "grid",
        [
          Alcotest.test_case "embedded corners" `Quick test_grid_embedded_corner_cases;
          Alcotest.test_case "separate vertex isolated" `Quick test_grid_separate_vertex_is_isolated;
          Alcotest.test_case "separate bounded" `Quick test_grid_separate_bounded_by_row;
          Alcotest.test_case "embedded quarter" `Slow test_grid_embedded_mean_quarter;
        ] );
      ( "tree",
        [
          Alcotest.test_case "mean near height" `Quick test_tree_mean_near_height;
          Alcotest.test_case "population" `Quick test_tree_total_nodes;
        ] );
      ( "queue",
        [
          Alcotest.test_case "unbounded growth" `Quick test_queue_unbounded_growth;
          Alcotest.test_case "clearing bounds growth" `Quick test_queue_clearing_bounds_growth;
          Alcotest.test_case "window live" `Quick test_queue_window_stays_live;
          Alcotest.test_case "lazy stream" `Quick test_lazy_stream_suffix_retention;
        ] );
      ( "list-reverse",
        [
          Alcotest.test_case "mode ordering" `Quick test_reverse_ordering;
          Alcotest.test_case "semantics" `Quick test_reverse_preserves_program_semantics;
        ] );
      ( "misidentification",
        [
          Alcotest.test_case "monotone" `Quick test_sweep_monotone_in_occupancy;
          Alcotest.test_case "interior risk" `Quick test_sweep_interior_increases_risk;
          Alcotest.test_case "halfword (figure 1)" `Quick test_halfword_concatenation;
          Alcotest.test_case "placement" `Quick test_placement;
        ] );
      ( "large-object",
        [ Alcotest.test_case "regimes" `Quick test_large_object_regimes ] );
      ("dual-run", [ Alcotest.test_case "eliminates false refs" `Quick test_dual_run ]);
      ( "pcr-threads",
        [
          Alcotest.test_case "idle threads pin" `Quick test_threads_idle_pin_lists;
          Alcotest.test_case "waking releases" `Quick test_threads_waking_releases;
        ] );
      ("fragmentation", [ Alcotest.test_case "sane" `Quick test_fragmentation_sane ]);
      ( "model",
        [
          Alcotest.test_case "matches measurement" `Slow test_model_matches_measurement;
          Alcotest.test_case "monotone" `Quick test_model_monotone_in_pollution;
        ] );
      ("harness", [ Alcotest.test_case "roots" `Quick test_harness_roots ]);
    ]
