(* Benchmark harness: regenerates every table and figure of Boehm,
   "Space Efficient Conservative Garbage Collection" (PLDI 1993), plus
   Bechamel timing benches for the paper's performance claims.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table1 fig1  # selected sections
     dune exec bench/main.exe -- table1 --paper-scale
     dune exec bench/main.exe -- mark table1 --json   # machine-readable summary

   Sections: table1 fig1 fig34 stack-clearing structures sweep
             large-object dual-run fragmentation generational
             pcr-threads ablations overhead mark resilience
             starvation timing

   Flags: --paper-scale   full 25000-cell lists (slow)
          --seeds N       range over N seeds in table 1
          --smoke         heavily down-scaled runs (CI)
          --json          also write a JSON summary
          --json-out F    JSON destination (default BENCH_pr10.json)
          --collector C   restrict the resilience matrix to one backend
                          (conservative | generational | explicit |
                          precise | all)
          --jobs N        marker-domain sweep ceiling for the mark
                          section (default 4: measures jobs 1, 2, 4) and
                          the tracer width for the resilience matrix *)

open Cgc_vm
module W = Cgc_workloads
module A = Cgc_analysis

let seed = 1993

let section name description =
  Format.printf "@.=== %s — %s ===@.@." name description

(* --- machine-readable summary (--json); hand-rolled, no JSON dep --- *)

let json_enabled = ref false
let json_fields : (string * string) list ref = ref []
let json_add key value = if !json_enabled then json_fields := (key, value) :: !json_fields
let json_int key v = json_add key (string_of_int v)
let json_float key v = json_add key (Printf.sprintf "%.2f" v)
let json_bool key v = json_add key (string_of_bool v)
let json_string key v = json_add key (Printf.sprintf "%S" v)

let json_write path =
  let fields = List.rev !json_fields in
  let n = List.length fields in
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) -> Printf.fprintf oc "  %S: %s%s\n" k v (if i = n - 1 then "" else ","))
    fields;
  output_string oc "}\n";
  close_out oc;
  Format.printf "@.wrote %s@." path

(* Differential guard: the precise-collector work must not move
   Table 1.  When a previous summary (BENCH_pr9.json) sits next to the
   output, every retention figure present in both must be
   bit-identical. *)
let read_json_fields path =
  let ic = open_in path in
  let fields = ref [] in
  let strip_quotes s =
    let n = String.length s in
    if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2) else s
  in
  (try
     while true do
       let line = input_line ic in
       match String.index_opt line ':' with
       | None -> ()
       | Some i ->
           let key = strip_quotes (String.trim (String.sub line 0 i)) in
           let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
           let value =
             let n = String.length value in
             if n > 0 && value.[n - 1] = ',' then String.sub value 0 (n - 1) else value
           in
           fields := (key, value) :: !fields
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !fields

let check_table1_parity json_out =
  let reference = Filename.concat (Filename.dirname json_out) "BENCH_pr9.json" in
  if Sys.file_exists reference then begin
    let is_t1 (k, _) = String.length k >= 7 && String.sub k 0 7 = "table1_" in
    let prev = List.filter is_t1 (read_json_fields reference) in
    let cur = List.filter is_t1 (read_json_fields json_out) in
    if prev <> [] && cur <> [] then begin
      let mismatches =
        List.filter_map
          (fun (k, v) ->
            match List.assoc_opt k cur with
            | Some v' when String.equal v v' -> None
            | Some v' -> Some (Printf.sprintf "%s: %s -> %s" k v v')
            | None -> Some (Printf.sprintf "%s: %s -> (missing)" k v))
          prev
      in
      if mismatches = [] then
        Format.printf "table-1 parity: %d retention figures bit-identical to %s@."
          (List.length prev) reference
      else begin
        List.iter (Format.eprintf "table-1 drift: %s@.") mismatches;
        Format.eprintf "table-1 retention moved relative to %s@." reference;
        exit 1
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

(* The paper's reported bands, for side-by-side comparison. *)
let paper_bands =
  [
    ("sparc-static", ("79-79.5%", "0-.5%"));
    ("sparc-static-opt", ("78-78.5%", ".5-1%"));
    ("sparc-dynamic", ("8-9.5%", ".5%"));
    ("sparc-dynamic-opt", ("9-11.5%", "0-.5%"));
    ("sgi-static", ("1.5-8%", "0%"));
    ("sgi-static-opt", ("1-4%", "0%"));
    ("os2-static", ("28%", "3%"));
    ("os2-static-opt", ("26%", "1%"));
    ("pcr", ("44.5-55%", "1.5-3.5%"));
  ]

let table1 ~paper_scale ~seeds ~smoke () =
  section "Table 1" "storage retention with and without blacklisting (program T)";
  let scale_note =
    if smoke then "smoke scale (tiny lists — trend check only)"
    else if paper_scale then "paper scale (25000-cell lists)"
    else "standard scale (1/4-length lists)"
  in
  if seeds = 1 then Format.printf "%s, seed %d@.@." scale_note seed
  else Format.printf "%s, ranges over %d seeds (the paper reports ranges too)@.@." scale_note seeds;
  let platforms = if smoke then [ W.Platform.sparc_static ~optimized:false ] else W.Platform.all in
  Format.printf "%-18s | %-10s %-12s | %-10s %-12s@." "platform" "paper bl-" "ours bl-" "paper bl+" "ours bl+";
  Format.printf "%s@." (String.make 72 '-');
  let range f rows =
    let values = List.map f rows in
    let lo = List.fold_left min infinity values and hi = List.fold_left max neg_infinity values in
    if Float.abs (hi -. lo) < 0.05 then Printf.sprintf "%.1f%%" lo
    else Printf.sprintf "%.1f-%.1f%%" lo hi
  in
  List.iter
    (fun p ->
      let lists = if smoke then Some 40 else None in
      let nodes =
        if smoke then 600
        else if paper_scale then p.W.Platform.nodes_per_list
        else p.W.Platform.nodes_per_list / 4
      in
      let rows =
        List.init seeds (fun k -> W.Program_t.run_row ~seed:(seed + (1000 * k)) ?lists ~nodes p)
      in
      let b_off, b_on =
        match List.assoc_opt p.W.Platform.name paper_bands with
        | Some bands -> bands
        | None -> ("?", "?")
      in
      (match rows with
      | r :: _ ->
          json_float
            (Printf.sprintf "table1_%s_retention_bl_off" p.W.Platform.name)
            r.W.Program_t.without_blacklisting.W.Program_t.retention_percent;
          json_float
            (Printf.sprintf "table1_%s_retention_bl_on" p.W.Platform.name)
            r.W.Program_t.with_blacklisting.W.Program_t.retention_percent
      | [] -> ());
      Format.printf "%-18s | %-10s %-12s | %-10s %-12s@.%!" p.W.Platform.name b_off
        (range (fun r -> r.W.Program_t.without_blacklisting.W.Program_t.retention_percent) rows)
        b_on
        (range (fun r -> r.W.Program_t.with_blacklisting.W.Program_t.retention_percent) rows))
    platforms;
  Format.printf
    "@.(retention = %% of dropped circular lists never reclaimed; 'bl' = blacklisting)@.";
  Format.printf "@.analytic check (no-blacklist column, from static pollution alone):@.";
  List.iter
    (fun p ->
      let nodes =
        if smoke then 600
        else if paper_scale then p.W.Platform.nodes_per_list
        else p.W.Platform.nodes_per_list / 4
      in
      Format.printf "  %a@." W.Model.pp (W.Model.predict ~seed ~nodes p))
    platforms

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "Figure 1" "two small integers concatenate into a valid address under unaligned scanning";
  let r = W.False_ref.halfword_study ~seed 16 in
  Format.printf "%a@." W.False_ref.pp_halfword r;
  Format.printf
    "@.paper: \"the concatenation of the low order half word of an integer with the@.\
     high order half word of the next can easily be a valid heap address\" —@.\
     0009|000a -> 0x00090000.  Word-aligned scanning sees none of these; the@.\
     trailing-zero allocation rule defuses the rest.@.";
  section "Section 2 sweeps" "misidentification probability vs heap occupancy";
  List.iter
    (fun kind ->
      List.iter
        (fun p -> Format.printf "  %a@." W.False_ref.pp_sweep_point p)
        (W.False_ref.misidentification_sweep ~seed ~samples:100_000 ~kind [ 64; 256; 1024; 4096 ]);
      Format.printf "@.")
    [ W.False_ref.Uniform_words; W.False_ref.Integer_like ];
  Format.printf "heap placement against integer-like data (512 KB live):@.";
  List.iter
    (fun p -> Format.printf "  %a@." W.False_ref.pp_placement p)
    (W.False_ref.placement_study ~seed ~samples:100_000 512);
  Format.printf
    "@.paper: \"if the high order bits of addresses are neither all zeros nor all@.\
     ones, then conflicts with integer data are unlikely\"@."

(* ------------------------------------------------------------------ *)
(* Figures 3-4                                                         *)
(* ------------------------------------------------------------------ *)

let fig34 () =
  section "Figures 3-4" "grid with embedded links vs separate cons cells";
  List.iter
    (fun repr ->
      Format.printf "  %a@." W.Grid.pp_summary (W.Grid.run_trials ~seed repr ~rows:30 ~cols:30 ~trials:60))
    [ W.Grid.Embedded; W.Grid.Separate ];
  Format.printf
    "@.paper: embedded links -> \"a false reference can be expected to result in the@.\
     retention of a large fraction of the structure\"; separate cells -> \"at most@.\
     a single row or column is affected\"@."

(* ------------------------------------------------------------------ *)
(* Section 3.1: stack clearing                                         *)
(* ------------------------------------------------------------------ *)

let stack_clearing () =
  section "Section 3.1" "list reversal and stack hygiene";
  List.iter
    (fun mode ->
      Format.printf "  %a@.%!" W.List_reverse.pp
        (W.List_reverse.run ~seed mode ~elements:250 ~iterations:30))
    [ W.List_reverse.Careless; W.List_reverse.Cleared; W.List_reverse.Optimized ];
  Format.printf
    "@.paper (1000 elements x 1000): 40,000-100,000 apparently live cells carelessly,@.\
     never above 18,000 with cheap stack clearing, ~2000 when optimized to a loop.@.\
     True live data here: 500 cells.@."

(* ------------------------------------------------------------------ *)
(* Section 4: structures                                               *)
(* ------------------------------------------------------------------ *)

let structures () =
  section "Section 4" "impact of a false reference by data structure";
  Format.printf "  %a@." W.Tree.pp (W.Tree.run ~seed ~depth:10 ~trials:60 ());
  Format.printf "@.  queue growth under one false reference (window 8):@.";
  List.iter
    (fun clear ->
      List.iter
        (fun r -> Format.printf "    %a@." W.Queue_lazy.pp r)
        (W.Queue_lazy.growth_series ~seed ~clear_links:clear [ 500; 1000; 2000; 4000 ]))
    [ false; true ];
  Format.printf "@.  lazy list (window 1): forced suffix under one false reference:@.";
  List.iter
    (fun clear ->
      Format.printf "    %a@." W.Queue_lazy.pp (W.Queue_lazy.run_stream ~seed ~clear_links:clear 2000))
    [ false; true ];
  Format.printf
    "@.paper: tree retention ~ height (\"a large number of false references to such@.\
     structures can usually be tolerated\"); \"queues and lazy lists in particular@.\
     have the problem that they grow without bound\" unless \"the queue link field@.\
     is cleared when an item is removed\"@."

(* ------------------------------------------------------------------ *)
(* Section 3, observation 7: large objects                             *)
(* ------------------------------------------------------------------ *)

let large_object () =
  section "Observation 7" "large-object allocation against a populated blacklist";
  Format.printf "%a@." W.Large_object.pp
    (W.Large_object.run ~seed ~sizes_kb:[ 16; 32; 64; 96; 128; 192; 256; 512; 1024 ] ());
  Format.printf
    "@.paper: \"it becomes difficult to allocate individual objects larger than about@.\
     100 Kbytes\" when all interior pointers are valid; \"never a problem if addresses@.\
     that do not point to the first page of an object can be considered invalid\"@."

(* ------------------------------------------------------------------ *)
(* Footnote 4: dual run                                                *)
(* ------------------------------------------------------------------ *)

let dual_run () =
  section "Footnote 4" "dual-run pointer identification";
  Format.printf "%a@." W.Dual_run.pp (W.Dual_run.run ~seed ());
  Format.printf
    "@.paper: \"run two copies of the same program with heap starting addresses that@.\
     differ by n.  Any two corresponding locations whose values do not differ by n@.\
     are then known not to be pointers.\"@."

(* ------------------------------------------------------------------ *)
(* Conclusions: fragmentation                                          *)
(* ------------------------------------------------------------------ *)

let fragmentation () =
  section "Conclusions" "free-list discipline and fragmentation under churn";
  List.iter
    (fun a ->
      Format.printf "  %a@.%!" W.Fragmentation.pp
        (W.Fragmentation.run ~seed a ~population:8000 ~iterations:16))
    [ W.Fragmentation.Malloc_lifo; W.Fragmentation.Malloc_address_ordered; W.Fragmentation.Collector ];
  Format.printf
    "@.paper: address-ordered free lists increase \"the probability of large chunks of@.\
     adjacent space becoming available\"; any tracing collector needs headroom to@.\
     avoid excessively frequent collections (PCR heaps were often ~70%% full).@."

(* ------------------------------------------------------------------ *)
(* Section 3.1 (last paragraph): the generational ceiling              *)
(* ------------------------------------------------------------------ *)

let generational () =
  section "Generational" "stray stack pointers cap generational collection (section 3.1)";
  List.iter
    (fun hygiene ->
      let r = W.Generational_exp.run ~seed hygiene ~rounds:40 in
      Format.printf "  %a@.%!" W.Generational_exp.pp r;
      json_int
        (Printf.sprintf "gen_%s_garbage_promoted" (W.Generational_exp.hygiene_name hygiene))
        r.W.Generational_exp.garbage_promoted_bytes)
    [ W.Generational_exp.Clean; W.Generational_exp.Careless ];
  (* the ceiling: sweep the tenure threshold, measure promotion in a
     post-warm-up window where everything promoted is garbage *)
  Format.printf "@.";
  List.iter
    (fun hygiene ->
      let c = W.Generational_exp.ceiling ~seed hygiene ~rounds:40 in
      Format.printf "  %a@.%!" W.Generational_exp.pp_ceiling c;
      List.iter
        (fun (p : W.Generational_exp.ceiling_point) ->
          json_int
            (Printf.sprintf "gen_ceiling_%s_pa%d"
               (W.Generational_exp.hygiene_name hygiene)
               p.W.Generational_exp.cp_promote_after)
            p.W.Generational_exp.cp_promoted_bytes)
        c.W.Generational_exp.c_points)
    [ W.Generational_exp.Clean; W.Generational_exp.Careless ];
  (* the fix matrix: each R1/R2/R5 finding's suggested fix replayed
     through a fresh generational collector, the measured promoted
     garbage next to the promotion model's static prediction — the
     analyzer's cross-validation claim for the second collector
     architecture, so any drift is a failure here, like starvation *)
  Format.printf
    "@.  fix replay (promote_after %d)          | measured garbage     | predicted garbage@."
    A.Scenarios.gen_promote_after;
  Format.printf "  %s@." (String.make 86 '-');
  let entries = A.Scenarios.generational_fixes () in
  let ok = ref 0 in
  List.iter
    (fun (e : A.Scenarios.gen_fix_entry) ->
      let c = e.A.Scenarios.g_cmp in
      let pb = e.A.Scenarios.g_predicted_before in
      let pa = e.A.Scenarios.g_predicted_after in
      let agrees =
        c.A.Replay.gcmp_reads_equal
        && c.A.Replay.gcmp_garbage_drop > 0
        && A.Promotion.agrees pb ~measured:c.A.Replay.gcmp_garbage_before
        && A.Promotion.agrees pa ~measured:c.A.Replay.gcmp_garbage_after
      in
      if agrees then incr ok;
      Format.printf "  %-24s %-12s | %7dB -> %7dB | %7dB -> %7dB  %s@.%!"
        e.A.Scenarios.g_scenario
        ("[" ^ e.A.Scenarios.g_rule ^ " fix]")
        c.A.Replay.gcmp_garbage_before c.A.Replay.gcmp_garbage_after
        pb.A.Promotion.pr_garbage_bytes pa.A.Promotion.pr_garbage_bytes
        (if agrees then "agrees" else "DRIFT");
      let key s = Printf.sprintf "gen_fix_%s_%s" e.A.Scenarios.g_scenario s in
      json_int (key "garbage_before") c.A.Replay.gcmp_garbage_before;
      json_int (key "garbage_after") c.A.Replay.gcmp_garbage_after;
      json_int (key "predicted_before") pb.A.Promotion.pr_garbage_bytes;
      json_int (key "predicted_after") pa.A.Promotion.pr_garbage_bytes;
      json_bool (key "agrees") agrees)
    entries;
  json_int "gen_fix_targets" (List.length entries);
  json_int "gen_fix_agree" !ok;
  Format.printf
    "@.paper: \"stray stack pointers can significantly lengthen the lifetime of some@.\
     objects, thus placing a ceiling on the effectiveness of generational@.\
     collection\" — promoted garbage is garbage the minor collector never revisits.@.";
  if !ok <> List.length entries || List.length entries < 4 then begin
    Format.eprintf "generational: fix replay diverged from the promotion model@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Footnote 3: blacklisting overhead                                   *)
(* ------------------------------------------------------------------ *)

let overhead () =
  section "Footnote 3" "blacklisting bookkeeping overhead";
  let p = W.Platform.sparc_static ~optimized:false in
  let nodes = p.W.Platform.nodes_per_list / 4 in
  let r = W.Program_t.run ~seed ~blacklisting:true ~nodes p in
  let r_off = W.Program_t.run ~seed ~blacklisting:false ~nodes p in
  let ops = float_of_int r.W.Program_t.blacklist_ops in
  let work = float_of_int r.W.Program_t.words_scanned in
  Format.printf "  blacklist bookkeeping operations      : %d@." r.W.Program_t.blacklist_ops;
  Format.printf "  marker work (words examined)          : %d@." r.W.Program_t.words_scanned;
  Format.printf "  bookkeeping / marking work            : %.2f%%@." (100. *. ops /. work);
  Format.printf "  total GC time, blacklisting on        : %.4fs@." r.W.Program_t.total_gc_seconds;
  Format.printf "  total GC time, blacklisting off       : %.4fs@." r_off.W.Program_t.total_gc_seconds;
  Format.printf
    "@.paper: \"the total additional overhead introduced by blacklisting is usually@.\
     less than 1%%\"; version 2.5 spent ~0.2%% of its time on the bookkeeping.@.\
     (Here blacklisting even runs FASTER overall: the lists it declines to retain@.\
     are lists the no-blacklist collector must re-mark at every collection.)@."

(* ------------------------------------------------------------------ *)
(* Appendix B: background thread stacks                                *)
(* ------------------------------------------------------------------ *)

let pcr_threads () =
  section "Thread stacks" "idle vs woken background threads (appendix B, PCR)";
  List.iter
    (fun (threads, awake) ->
      Format.printf "  %a@.%!" W.Pcr_threads.pp (W.Pcr_threads.run ~seed ~threads ~awake ()))
    [ (0, false); (2, false); (5, false); (10, false); (5, true); (10, true) ];
  Format.printf
    "@.paper: \"the PCR collector does not attempt to clear thread stacks\"; background@.\
     threads that \"woke up regularly ... seemed to have a beneficial effect of@.\
     clearing out thread stacks, and thus tended to reduce apparent leakage\"@."

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices                                     *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations" "design-choice ablations on the SPARC(static) row";
  let p = W.Platform.sparc_static ~optimized:false in
  let nodes = p.W.Platform.nodes_per_list / 4 in
  let show label r =
    Format.printf "  %-36s retained %3d/%3d (%5.1f%%)  black=%d heap=%dKB@.%!" label
      r.W.Program_t.retained r.W.Program_t.lists r.W.Program_t.retention_percent
      r.W.Program_t.blacklisted_pages r.W.Program_t.committed_kb
  in
  (* the hazard drivers, measured without blacklisting *)
  show "no blacklist, unaligned scan (base)"
    (W.Program_t.run ~seed ~blacklisting:false ~nodes p);
  show "no blacklist, word-aligned compiler"
    (W.Program_t.run ~seed ~blacklisting:false ~nodes { p with W.Platform.scan_alignment = 4 });
  show "no blacklist, IO areas excluded"
    (W.Program_t.run ~seed ~blacklisting:false ~nodes
       ~prepare:(fun env ->
         (* exclude the polluted static area, keeping the globals *)
         Cgc.Gc.exclude_roots env.W.Platform.gc
           ~lo:(Cgc_vm.Segment.base env.W.Platform.data)
           ~hi:env.W.Platform.globals_base ~label:"library data")
       p);
  (* blacklist variants *)
  show "blacklist, aging on (base)" (W.Program_t.run ~seed ~blacklisting:true ~nodes p);
  show "blacklist, sticky (no aging)"
    (W.Program_t.run ~seed ~blacklisting:true ~nodes
       {
         p with
         W.Platform.gc_tweak =
           (fun c -> { (p.W.Platform.gc_tweak c) with Cgc.Config.blacklist_refresh = false });
       });
  show "blacklist, hashed (4096 buckets)"
    (W.Program_t.run ~seed ~blacklisting:true ~nodes
       {
         p with
         W.Platform.gc_tweak =
           (fun c -> { (p.W.Platform.gc_tweak c) with Cgc.Config.blacklist_buckets = Some 4096 });
       });
  show "blacklist, base-pointers only"
    (W.Program_t.run ~seed ~blacklisting:true ~nodes
       {
         p with
         W.Platform.gc_tweak =
           (fun c -> { (p.W.Platform.gc_tweak c) with Cgc.Config.interior_pointers = false });
       });
  Format.printf
    "@.(word alignment and root exclusion attack the false references at the source;@.\
     interior pointers raise the stakes; sticky blacklists trade heap for safety)@.";
  (* observation 6: small pointer-free allocations reclaim blacklisted
     pages, so the heap-size cost of blacklisting "is usually zero" *)
  Format.printf "@.observation 6 — atomic data recovers blacklisted pages:@.";
  List.iter
    (fun atomic_ok ->
      let p = W.Platform.sparc_static ~optimized:false in
      let p =
        {
          p with
          W.Platform.gc_tweak =
            (fun c ->
              { (p.W.Platform.gc_tweak c) with Cgc.Config.atomic_on_black_pages = atomic_ok });
        }
      in
      let env = W.Platform.build_env ~seed ~blacklisting:true ~heap_max:(8 * 1024 * 1024) p in
      let gc = env.W.Platform.gc in
      Cgc.Gc.collect gc;
      (* a PCedar-like mix, all kept live so the heap must grow through
         the blacklisted region: pointer cells chained together, atomic
         data (strings, bignum digits, pixels) hanging off them *)
      let prev = ref 0 in
      for i = 1 to 120_000 do
        if i mod 2 = 0 then begin
          let atom = Cgc.Gc.allocate ~pointer_free:true gc 16 in
          let c = Cgc.Gc.allocate gc 8 in
          Cgc.Gc.set_field gc c 0 !prev;
          Cgc.Gc.set_field gc c 1 (Cgc_vm.Addr.to_int atom);
          prev := Cgc_vm.Addr.to_int c
        end
        else begin
          let c = Cgc.Gc.allocate gc 8 in
          Cgc.Gc.set_field gc c 0 !prev;
          prev := Cgc_vm.Addr.to_int c
        end;
        Cgc_vm.Segment.write_word env.W.Platform.data env.W.Platform.globals_base !prev
      done;
      let heap = Cgc.Gc.heap gc in
      let black_used = ref 0 and black_total = ref 0 in
      for i = 0 to Cgc.Heap.committed_pages heap - 1 do
        if Cgc.Blacklist.is_black (Cgc.Gc.blacklist gc) i then begin
          incr black_total;
          match Cgc.Heap.page heap i with
          | Cgc.Page.Small _ | Cgc.Page.Large_head _ | Cgc.Page.Large_tail _ -> incr black_used
          | Cgc.Page.Free | Cgc.Page.Uncommitted -> ()
        end
      done;
      Format.printf
        "  atomic-on-black %-5b: %3d of %3d committed blacklisted pages carry atomic data; heap %4d KB@.%!"
        atomic_ok !black_used !black_total
        (Cgc.Heap.committed_bytes heap / 1024))
    [ false; true ];
  Format.printf
    "@.paper (point 6): \"there are enough allocations of small objects known to be@.\
     pointer-free that blacklisted pages can still be allocated, and thus the loss@.\
     is usually zero\"@."

(* ------------------------------------------------------------------ *)
(* Mark-phase throughput: fast path vs retained reference             *)
(* ------------------------------------------------------------------ *)

(* Words examined per second by the two marker implementations over the
   same live heap: program T's circular lists on the SPARC(static)
   platform — big-endian, unaligned (byte-granularity) root scanning,
   the paper's worst case for marker work.  Both paths run over the very
   same collector instance, so words/objects per cycle must agree
   exactly; the JSON records the throughput ratio. *)
let mark_throughput ~smoke ~jobs () =
  section "Mark throughput"
    "flat-descriptor fast path vs reference scan loop (program T heap, SPARC static)";
  let p = W.Platform.sparc_static ~optimized:false in
  let lists = if smoke then 30 else 200 in
  let nodes = if smoke then 500 else p.W.Platform.nodes_per_list / 4 in
  let cell_bytes = p.W.Platform.cell_bytes in
  let heap_max = max (8 * 1024 * 1024) (4 * lists * nodes * cell_bytes) in
  let env = W.Platform.build_env ~seed ~blacklisting:true ~heap_max p in
  let gc = env.W.Platform.gc in
  Cgc.Gc.set_auto_collect gc false;
  (* program T's a[] holds the list heads; every list stays rooted so
     each mark cycle has to traverse all of them *)
  for i = 0 to lists - 1 do
    let head = Cgc.Gc.allocate gc cell_bytes in
    let prev = ref (Addr.to_int head) in
    for _ = 2 to nodes do
      let c = Cgc.Gc.allocate gc cell_bytes in
      Cgc.Gc.set_field gc c 0 !prev;
      prev := Addr.to_int c
    done;
    Cgc.Gc.set_field gc head 0 !prev;
    Segment.write_word env.W.Platform.data
      (Addr.add env.W.Platform.globals_base (4 * i))
      (Addr.to_int head)
  done;
  let st = Cgc.Gc.stats gc in
  let time_cycles runner iters =
    let w0 = st.Cgc.Stats.words_scanned and m0 = st.Cgc.Stats.objects_marked in
    let t0 = Sys.time () in
    for _ = 1 to iters do
      runner gc
    done;
    let dt = Float.max 1e-9 (Sys.time () -. t0) in
    let words = st.Cgc.Stats.words_scanned - w0 in
    (float_of_int words /. dt, words / iters, (st.Cgc.Stats.objects_marked - m0) / iters, dt)
  in
  (* warm both paths (page tables, blacklist, caches), then calibrate the
     iteration count so each measured run lasts long enough to time *)
  Cgc.Gc.Internal.run_mark_reference gc;
  Cgc.Gc.Internal.run_mark gc;
  let calibrate runner =
    if smoke then 2
    else begin
      let t0 = Sys.time () in
      runner gc;
      let dt = Float.max 1e-6 (Sys.time () -. t0) in
      max 3 (int_of_float (ceil (1.0 /. dt)))
    end
  in
  let iters_ref = calibrate Cgc.Gc.Internal.run_mark_reference in
  let ref_rate, ref_words, ref_marked, ref_secs =
    time_cycles Cgc.Gc.Internal.run_mark_reference iters_ref
  in
  let iters_fast = calibrate Cgc.Gc.Internal.run_mark in
  let hits0 = st.Cgc.Stats.header_cache_hits in
  let fast_rate, fast_words, fast_marked, fast_secs =
    time_cycles Cgc.Gc.Internal.run_mark iters_fast
  in
  let hits_per_cycle = (st.Cgc.Stats.header_cache_hits - hits0) / iters_fast in
  let parity = ref_words = fast_words && ref_marked = fast_marked in
  let speedup = fast_rate /. ref_rate in
  Format.printf "  live heap : %d lists x %d cells (%d KB committed)@." lists nodes
    (Cgc.Heap.committed_bytes (Cgc.Gc.heap gc) / 1024);
  Format.printf "  reference : %11.0f words/s  (%d words, %d objects per cycle; %d cycles, %.2fs)@."
    ref_rate ref_words ref_marked iters_ref ref_secs;
  Format.printf "  fast path : %11.0f words/s  (%d words, %d objects per cycle; %d cycles, %.2fs)@."
    fast_rate fast_words fast_marked iters_fast fast_secs;
  Format.printf "  speedup   : %.2fx   header-cache hits per cycle: %d@." speedup hits_per_cycle;
  Format.printf "  parity    : words and objects per cycle %s@."
    (if parity then "identical" else "DIVERGED — fast path is wrong");
  json_string "mark_platform" p.W.Platform.name;
  json_int "mark_lists" lists;
  json_int "mark_nodes_per_list" nodes;
  json_int "mark_words_per_cycle" fast_words;
  json_int "mark_objects_per_cycle" fast_marked;
  json_float "mark_reference_words_per_sec" ref_rate;
  json_float "mark_fast_words_per_sec" fast_rate;
  json_float "mark_speedup" speedup;
  json_int "mark_header_cache_hits_per_cycle" hits_per_cycle;
  json_bool "mark_parity" parity;
  if not parity then begin
    Format.eprintf "mark throughput: fast path diverged from reference@.";
    exit 1
  end;
  (* --- parallel tracer sweep (--jobs) ------------------------------
     The work-stealing tracer over the same live heap, measured in
     wall-clock words/sec (domains overlap, so CPU time would double-
     count; the serial figures above are single-threaded, where
     Sys.time and wall clock agree).  Every width must visit exactly
     the serial word/object counts — the bit-identity claim — and a
     jobs > 1 run in this fault-free bench must really go parallel. *)
  let sweep = List.sort_uniq compare (List.filter (fun j -> j >= 1 && j <= jobs) [ 1; 2; 4; jobs ]) in
  let last_fallback = ref None in
  let run_parallel j gc =
    let o = Cgc.Gc.Internal.run_mark_parallel gc ~jobs:j in
    last_fallback := o.Cgc.Mark.Parallel.fallback
  in
  let time_wall j iters =
    let w0 = st.Cgc.Stats.words_scanned and m0 = st.Cgc.Stats.objects_marked in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      run_parallel j gc
    done;
    let dt = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
    let words = st.Cgc.Stats.words_scanned - w0 in
    (float_of_int words /. dt, words / iters, (st.Cgc.Stats.objects_marked - m0) / iters)
  in
  let calibrate_wall j =
    if smoke then 2
    else begin
      let t0 = Unix.gettimeofday () in
      run_parallel j gc;
      let dt = Float.max 1e-6 (Unix.gettimeofday () -. t0) in
      max 3 (int_of_float (ceil (1.0 /. dt)))
    end
  in
  Format.printf "@.  parallel tracer (host: %d cores recommended):@."
    (Domain.recommended_domain_count ());
  let results =
    List.map
      (fun j ->
        let iters = calibrate_wall j in
        let rate, words, marked = time_wall j iters in
        let went_parallel = j <= 1 || !last_fallback = None in
        Format.printf "  jobs=%d    : %11.0f words/s  (%d words, %d objects per cycle; %d cycles)%s@."
          j rate words marked iters
          (if went_parallel then ""
           else
             Printf.sprintf "  UNEXPECTED FALLBACK: %s"
               (Cgc.Mark.Parallel.fallback_to_string (Option.get !last_fallback)));
        json_float (Printf.sprintf "mark_jobs%d_words_per_sec" j) rate;
        (j, rate, words, marked, went_parallel))
      sweep
  in
  let jobs_parity =
    List.for_all (fun (_, _, w, m, p) -> w = fast_words && m = fast_marked && p) results
  in
  json_int "mark_jobs_cores" (Domain.recommended_domain_count ());
  json_bool "mark_jobs_parity" jobs_parity;
  let rate_of j = List.find_map (fun (j', r, _, _, _) -> if j = j' then Some r else None) results in
  (match (rate_of 1, rate_of 4) with
  | Some r1, Some r4 ->
      Format.printf "  jobs=4 speedup: %.2fx vs jobs=1, %.2fx vs reference scan loop@." (r4 /. r1)
        (r4 /. ref_rate);
      json_float "mark_jobs4_speedup" (r4 /. r1);
      json_float "mark_jobs4_speedup_vs_reference" (r4 /. ref_rate)
  | _ -> ());
  Format.printf "  parity    : words and objects per cycle %s across jobs@."
    (if jobs_parity then "identical" else "DIVERGED — parallel tracer is wrong");
  if not jobs_parity then begin
    Format.eprintf "mark throughput: parallel tracer diverged from the serial scanner@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Memory-pressure resilience: the chaos matrix                        *)
(* ------------------------------------------------------------------ *)

(* Recovery latency of the self-healing tracer: a rooted-list heap is
   marked at jobs=4 with each marker-domain failure mode armed against
   domain 1, under a tight watchdog budget.  For every mode we report
   the wall-clock cost of a faulted cycle next to the healthy baseline
   (the difference is detection + reclamation), the reclaim kinds taken
   (clean boundary merges vs dirty rollback-and-replay), the fallback
   cause of the last cycle, and — the invariant that matters — that
   every faulted cycle still marked exactly the serial object count. *)
let recovery_latency ~smoke () =
  Format.printf "@.  domain-failure recovery (self-healing tracer, jobs=4):@.";
  let jobs = 4 in
  let mem = Mem.create () in
  let data =
    Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x2000
  in
  let lists = if smoke then 20 else 80 in
  let nodes = if smoke then 300 else 1500 in
  let config =
    { Cgc.Config.default with Cgc.Config.initial_pages = 64; mark_watchdog_budget = 96 }
  in
  let gc =
    Cgc.Gc.create ~config mem ~base:(Addr.of_int 0x400000) ~max_bytes:(32 * 1024 * 1024) ()
  in
  Cgc.Gc.set_auto_collect gc false;
  Cgc.Gc.add_static_root gc ~lo:(Segment.base data) ~hi:(Segment.limit data) ~label:"globals";
  for i = 0 to lists - 1 do
    let head = Cgc.Gc.allocate gc 16 in
    let prev = ref (Addr.to_int head) in
    for _ = 2 to nodes do
      let c = Cgc.Gc.allocate gc 16 in
      Cgc.Gc.set_field gc c 0 !prev;
      prev := Addr.to_int c
    done;
    Cgc.Gc.set_field gc head 0 !prev;
    Segment.write_word data (Addr.add (Segment.base data) (4 * i)) (Addr.to_int head)
  done;
  let st = Cgc.Gc.stats gc in
  let marked_by runner =
    let m0 = st.Cgc.Stats.objects_marked in
    runner ();
    st.Cgc.Stats.objects_marked - m0
  in
  let serial_marked = marked_by (fun () -> Cgc.Gc.Internal.run_mark gc) in
  let iters = if smoke then 3 else 10 in
  let measure faults =
    let m0 = st.Cgc.Stats.objects_marked in
    let clean = ref 0 and dirty = ref 0 and last = ref None in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      let o = Cgc.Gc.Internal.run_mark_parallel ~faults gc ~jobs in
      last := o.Cgc.Mark.Parallel.fallback;
      match o.Cgc.Mark.Parallel.health with
      | None -> ()
      | Some h ->
          clean := !clean + h.Cgc.Mark.Parallel.clean_recoveries;
          dirty := !dirty + h.Cgc.Mark.Parallel.dirty_recoveries
    done;
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int iters in
    let marked = (st.Cgc.Stats.objects_marked - m0) / iters in
    (ms, marked, !clean, !dirty, !last)
  in
  let baseline_ms, _, _, _, _ = measure [] in
  json_float "resilience_recovery_baseline_ms" baseline_ms;
  Format.printf "  %-10s : %7.2f ms/cycle (healthy baseline, %d objects)@." "baseline"
    baseline_ms serial_marked;
  let all_parity = ref true in
  List.iter
    (fun spec ->
      let name = W.Chaos.domain_fault_name spec in
      let ms, marked, clean, dirty, last = measure (W.Chaos.domain_fault_plans spec) in
      let parity = marked = serial_marked in
      if not parity then all_parity := false;
      let cause =
        match last with
        | None -> "parallel"
        | Some f -> Cgc.Mark.Parallel.fallback_to_string f
      in
      Format.printf
        "  %-10s : %7.2f ms/cycle (+%.2f ms recovery; %d clean / %d dirty reclaims over %d \
         cycles; last: %s) — marks %s@."
        name ms
        (Float.max 0.0 (ms -. baseline_ms))
        clean dirty iters cause
        (if parity then "exact" else "DIVERGED");
      json_float (Printf.sprintf "resilience_recovery_%s_ms" name) ms;
      json_int (Printf.sprintf "resilience_recovery_%s_clean_reclaims" name) clean;
      json_int (Printf.sprintf "resilience_recovery_%s_dirty_reclaims" name) dirty;
      json_bool (Printf.sprintf "resilience_recovery_%s_parity" name) parity)
    (List.filter (fun s -> s <> W.Chaos.No_domain_fault) W.Chaos.all_domain_faults);
  json_int "resilience_recovery_serial_objects" serial_marked;
  json_bool "resilience_recovery_parity" !all_parity;
  if not !all_parity then begin
    Format.eprintf "resilience: recovered mark state diverged from the serial scanner@.";
    exit 1
  end

(* Every backend (conservative, generational, explicit) crossed with
   every seeded fault plan — refused commits plus the read/write access
   faults; the JSON carries the aggregated allocation-ladder rung and
   access-fault counts, so a regression in graceful degradation (a rung
   no longer reached, a read fault no longer downgraded, or OOM raised
   where relaxation used to rescue) shows up as a diff. *)
let resilience ~smoke ?collectors ?(mark_jobs = 1) () =
  section "Resilience"
    "randomized mutator under injected commit/read/write faults (cross-collector chaos matrix)";
  let steps = if smoke then 400 else 1500 in
  let outcomes = W.Chaos.run_matrix ~steps ?collectors ~mark_jobs ~seed () in
  List.iter (Format.printf "  %a@.%!" W.Chaos.pp_outcome) outcomes;
  let dirty = List.filter (fun o -> not (W.Chaos.clean o)) outcomes in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  let sum_s f = sum (fun o -> f o.W.Chaos.stats) in
  Format.printf "@.  %d/%d scenario runs clean; %d faults injected, %d requests pushed to OOM@."
    (List.length outcomes - List.length dirty)
    (List.length outcomes)
    (sum (fun o -> o.W.Chaos.faults_injected))
    (sum (fun o -> o.W.Chaos.ooms_caught));
  json_int "resilience_steps_per_run" steps;
  json_int "resilience_mark_jobs" mark_jobs;
  json_int "resilience_mark_serial_fallbacks"
    (sum_s (fun s -> s.Cgc.Stats.mark_serial_fallbacks));
  json_int "resilience_parallel_marks" (sum_s (fun s -> s.Cgc.Stats.parallel_marks));
  json_int "resilience_runs" (List.length outcomes);
  json_int "resilience_clean_runs" (List.length outcomes - List.length dirty);
  json_int "resilience_faults_injected" (sum (fun o -> o.W.Chaos.faults_injected));
  json_int "resilience_ooms_caught" (sum (fun o -> o.W.Chaos.ooms_caught));
  json_int "resilience_blacklist_overrides" (sum (fun o -> o.W.Chaos.overrides));
  json_int "resilience_ladder_collects" (sum_s (fun s -> s.Cgc.Stats.ladder_collects));
  json_int "resilience_ladder_drains" (sum_s (fun s -> s.Cgc.Stats.ladder_drains));
  json_int "resilience_ladder_trims" (sum_s (fun s -> s.Cgc.Stats.ladder_trims));
  json_int "resilience_ladder_expansions" (sum_s (fun s -> s.Cgc.Stats.ladder_expansions));
  json_int "resilience_ladder_backoffs" (sum_s (fun s -> s.Cgc.Stats.ladder_backoffs));
  json_int "resilience_ladder_relax_first_page"
    (sum_s (fun s -> s.Cgc.Stats.ladder_relax_first_page));
  json_int "resilience_ladder_relax_black" (sum_s (fun s -> s.Cgc.Stats.ladder_relax_black));
  json_int "resilience_ladder_oom_hooks" (sum_s (fun s -> s.Cgc.Stats.ladder_oom_hooks));
  json_int "resilience_commit_faults" (sum_s (fun s -> s.Cgc.Stats.commit_faults));
  json_int "resilience_oom_raised" (sum_s (fun s -> s.Cgc.Stats.oom_raised));
  json_int "resilience_read_faults" (sum_s (fun s -> s.Cgc.Stats.read_faults));
  json_int "resilience_write_faults" (sum_s (fun s -> s.Cgc.Stats.write_faults));
  json_int "resilience_mark_downgrades" (sum_s (fun s -> s.Cgc.Stats.mark_downgrades));
  json_int "resilience_pages_decayed" (sum_s (fun s -> s.Cgc.Stats.pages_decayed));
  json_int "resilience_decay_retries" (sum_s (fun s -> s.Cgc.Stats.decay_retries));
  json_int "resilience_mutator_read_faults" (sum (fun o -> o.W.Chaos.mutator_read_faults));
  json_int "resilience_mutator_write_faults" (sum (fun o -> o.W.Chaos.mutator_write_faults));
  json_int "resilience_precise_collections" (sum_s (fun s -> s.Cgc.Stats.precise_collections));
  json_int "resilience_precise_mark_aborts" (sum_s (fun s -> s.Cgc.Stats.precise_mark_aborts));
  json_int "resilience_precise_mark_retries"
    (sum_s (fun s -> s.Cgc.Stats.precise_mark_retries));
  json_int "resilience_precise_stale_roots" (sum_s (fun s -> s.Cgc.Stats.precise_stale_roots));
  (let retention = List.filter_map (fun o -> o.W.Chaos.retention) outcomes in
   json_int "resilience_precise_retention_cells" (List.length retention);
   json_bool "resilience_precise_retention_subset"
     (List.for_all (fun (p, c) -> p <= c) retention);
   json_int "resilience_precise_retention_gap"
     (List.fold_left (fun acc (p, c) -> acc + (c - p)) 0 retention));
  List.iter
    (fun c ->
      let name = W.Chaos.collector_name c in
      let of_c = List.filter (fun o -> String.equal o.W.Chaos.collector name) outcomes in
      if of_c <> [] then begin
        json_int (Printf.sprintf "resilience_%s_runs" name) (List.length of_c);
        json_int
          (Printf.sprintf "resilience_%s_clean_runs" name)
          (List.length (List.filter W.Chaos.clean of_c))
      end)
    W.Chaos.all_collectors;
  Format.printf
    "@.(every injected fault is followed by a crash-coherence audit and a fault-free@.\
     allocation; 'clean' means no invariant violation, no exception leak, and full@.\
     recovery once faults stop — the ladder rungs above show how each config coped)@.";
  if dirty <> [] then begin
    Format.eprintf "resilience: chaos matrix violations@.";
    exit 1
  end;
  recovery_latency ~smoke ()

(* ------------------------------------------------------------------ *)
(* Static starvation prediction vs the measured oom_diagnosis          *)
(* ------------------------------------------------------------------ *)

(* The analyzer's starvation predictor classifies each matrix scenario
   from the recorded trace and a static collector model alone; the same
   scenario then runs against the real collector, whose
   [Gc.Out_of_memory] diagnosis (or successful ladder rescue) is the
   measured column.  A drifting classifier shows up as a mismatch and
   fails the bench; the per-scenario classes land in the JSON so CI
   diffs catch silent reclassification too. *)
let starvation () =
  section "Starvation" "static OOM-diagnosis prediction vs the collector's verdict";
  let entries = A.Scenarios.starvation_matrix () in
  Format.printf "  %-18s | %-18s %-18s | %s@." "scenario" "predicted" "measured"
    "collector diagnosis";
  Format.printf "  %s@." (String.make 88 '-');
  List.iter
    (fun (e : A.Scenarios.matrix_entry) ->
      Format.printf "  %-18s | %-18s %-18s | %s@.%!" e.A.Scenarios.m_name
        (A.Starvation.class_name e.A.Scenarios.m_predicted)
        (A.Starvation.class_name e.A.Scenarios.m_measured)
        (match e.A.Scenarios.m_oom with
        | Some d -> Cgc.Gc.oom_message d
        | None ->
            if e.A.Scenarios.m_ladder_rungs > 0 then
              Printf.sprintf "rescued (%d ladder rungs)" e.A.Scenarios.m_ladder_rungs
            else "no pressure"))
    entries;
  let agree =
    List.filter (fun (e : A.Scenarios.matrix_entry) ->
        e.A.Scenarios.m_predicted = e.A.Scenarios.m_measured)
      entries
  in
  let ooms =
    List.filter (fun (e : A.Scenarios.matrix_entry) -> e.A.Scenarios.m_oom <> None) entries
  in
  let decayed =
    List.filter
      (fun (e : A.Scenarios.matrix_entry) ->
        match e.A.Scenarios.m_oom with
        | Some d -> d.Cgc.Gc.memory_decayed
        | None -> false)
      entries
  in
  Format.printf "@.  %d/%d classifications agree; %d scenarios die of OOM (%d memory-decayed)@."
    (List.length agree) (List.length entries) (List.length ooms) (List.length decayed);
  json_int "starvation_scenarios" (List.length entries);
  json_int "starvation_agree" (List.length agree);
  json_int "starvation_ooms" (List.length ooms);
  json_int "starvation_memory_decayed" (List.length decayed);
  List.iter
    (fun (e : A.Scenarios.matrix_entry) ->
      json_string
        (Printf.sprintf "starvation_%s_predicted" e.A.Scenarios.m_name)
        (A.Starvation.class_name e.A.Scenarios.m_predicted);
      json_string
        (Printf.sprintf "starvation_%s_measured" e.A.Scenarios.m_name)
        (A.Starvation.class_name e.A.Scenarios.m_measured))
    entries;
  Format.printf
    "@.(the predictor sees only the trace: recorded allocation-site kinds, the static@.\
     blacklist-bucket geometry, and any declared decay plan — never the collector's@.\
     runtime state; agreement is the analyzer's cross-validation claim)@.";
  if List.length agree <> List.length entries then begin
    Format.eprintf "starvation: static prediction diverged from the collector@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel timing suites (footnote 3's microbenchmarks)               *)
(* ------------------------------------------------------------------ *)

let timing () =
  section "Timing" "Bechamel microbenchmarks (ns per operation)";
  let open Bechamel in
  let open Toolkit in
  (* persistent environments shared by the staged closures *)
  let make_gc () =
    let mem = Mem.create () in
    let gc = Cgc.Gc.create mem ~base:(Addr.of_int 0x400000) ~max_bytes:(16 * 1024 * 1024) () in
    gc
  in
  let gc_garbage = make_gc () in
  let gc_atomic = make_gc () in
  let mem_e = Mem.create () in
  let explicit =
    Cgc.Explicit.create mem_e ~base:(Addr.of_int 0x400000) ~max_bytes:(16 * 1024 * 1024) ()
  in
  (* a 1 MB live heap for whole-collection and classification benches *)
  let mem_live = Mem.create () in
  let data_live =
    Mem.map mem_live ~name:"roots" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000
  in
  let gc_live = Cgc.Gc.create mem_live ~base:(Addr.of_int 0x400000) ~max_bytes:(16 * 1024 * 1024) () in
  Cgc.Gc.add_static_root gc_live ~lo:(Segment.base data_live) ~hi:(Segment.limit data_live)
    ~label:"roots";
  let prev = ref 0 in
  for _ = 1 to 1024 * 1024 / 8 do
    let c = Cgc.Gc.allocate gc_live 8 in
    Cgc.Gc.set_field gc_live c 1 !prev;
    prev := Addr.to_int c;
    Segment.write_word data_live (Segment.base data_live) !prev
  done;
  let rng = Rng.create seed in
  let heap_live = Cgc.Gc.heap gc_live in
  let config_live = Cgc.Gc.config gc_live in
  let tests =
    [
      Test.make ~name:"gc-alloc-8B-garbage" (Staged.stage (fun () -> ignore (Cgc.Gc.allocate gc_garbage 8)));
      Test.make ~name:"gc-alloc-8B-atomic"
        (Staged.stage (fun () -> ignore (Cgc.Gc.allocate ~pointer_free:true gc_atomic 8)));
      Test.make ~name:"malloc-free-8B"
        (Staged.stage (fun () ->
             let a = Cgc.Explicit.malloc explicit 8 in
             Cgc.Explicit.free explicit a));
      Test.make ~name:"classify-random-word"
        (Staged.stage (fun () -> ignore (Cgc.Mark.classify heap_live config_live (Rng.word rng))));
      Test.make ~name:"collect-1MB-live" (Staged.stage (fun () -> Cgc.Gc.collect gc_live));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.6) ~stabilize:true () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Format.printf "  %-28s %12.1f ns/op@.%!" name est
          | Some [] | None -> Format.printf "  %-28s (no estimate)@." name)
        results)
    (List.map (fun t -> Test.make_grouped ~name:"t" ~fmt:"%s/%s" [ t ]) tests);
  Format.printf
    "@.paper: \"the stand-alone collector can still allocate and collect an 8 byte@.\
     object in around 2 microseconds under optimal conditions ... much faster than@.\
     malloc/free round-trip times for most malloc implementations\"  (absolute@.\
     numbers differ — ours pay the simulation tax — the ordering is what matters)@.";
  (* lazy sweeping: stop-the-world pause under a garbage churn (the
     collect-time drain and deferred sweeps run in allocation slack) *)
  Format.printf "@.collection pause under churn (500k garbage cons cells, mixed live set):@.";
  List.iter
    (fun lazy_sweep ->
      let mem = Mem.create () in
      let data =
        Mem.map mem ~name:"roots" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000)
          ~size:0x1000
      in
      let gc =
        Cgc.Gc.create
          ~config:{ Cgc.Config.default with Cgc.Config.lazy_sweep }
          mem ~base:(Addr.of_int 0x400000) ~max_bytes:(16 * 1024 * 1024) ()
      in
      Cgc.Gc.add_static_root gc ~lo:(Segment.base data) ~hi:(Segment.limit data) ~label:"roots";
      (* 256 KB stays live throughout *)
      let prev = ref 0 in
      for _ = 1 to 256 * 1024 / 8 do
        let c = Cgc.Gc.allocate gc 8 in
        Cgc.Gc.set_field gc c 1 !prev;
        prev := Addr.to_int c;
        Segment.write_word data (Segment.base data) !prev
      done;
      for _ = 1 to 500_000 do
        ignore (Cgc.Gc.allocate gc 8)
      done;
      let s = Cgc.Gc.stats gc in
      Format.printf "  %-6s %3d collections, mean pause %7.2f ms (mark %5.2f ms of it)@.%!"
        (if lazy_sweep then "lazy" else "eager")
        s.Cgc.Stats.collections
        (1000. *. s.Cgc.Stats.total_gc_seconds /. float_of_int (max 1 s.Cgc.Stats.collections))
        (1000. *. s.Cgc.Stats.mark_seconds /. float_of_int (max 1 s.Cgc.Stats.collections)))
    [ false; true ]

(* ------------------------------------------------------------------ *)

let all_sections =
  [
    ("table1", `Table1);
    ("fig1", `Fig1);
    ("fig34", `Fig34);
    ("stack-clearing", `Stack);
    ("structures", `Structures);
    ("large-object", `Large);
    ("dual-run", `Dual);
    ("fragmentation", `Frag);
    ("generational", `Generational);
    ("pcr-threads", `Threads);
    ("ablations", `Ablations);
    ("overhead", `Overhead);
    ("mark", `Mark);
    ("resilience", `Resilience);
    ("starvation", `Starvation);
    ("timing", `Timing);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let paper_scale = List.mem "--paper-scale" args in
  let smoke = List.mem "--smoke" args in
  let json = List.mem "--json" args in
  let seeds =
    let rec find = function
      | "--seeds" :: n :: _ -> (try max 1 (int_of_string n) with Failure _ -> 1)
      | _ :: rest -> find rest
      | [] -> 1
    in
    find args
  in
  let json_out =
    let rec find = function
      | "--json-out" :: path :: _ -> path
      | _ :: rest -> find rest
      | [] -> "BENCH_pr10.json"
    in
    find args
  in
  let jobs =
    let rec find = function
      | "--jobs" :: n :: _ -> (try max 1 (int_of_string n) with Failure _ -> 4)
      | _ :: rest -> find rest
      | [] -> 4
    in
    find args
  in
  let collectors =
    let rec find = function
      | "--collector" :: "all" :: _ -> None
      | "--collector" :: name :: _ -> (
          match
            List.find_opt
              (fun c -> String.equal (W.Chaos.collector_name c) name)
              W.Chaos.all_collectors
          with
          | Some c -> Some [ c ]
          | None ->
              Format.eprintf "unknown collector %s; collectors: %s all@." name
                (String.concat " " (List.map W.Chaos.collector_name W.Chaos.all_collectors));
              exit 1)
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let rec strip = function
    | "--seeds" :: _ :: rest -> strip rest
    | "--json-out" :: _ :: rest -> strip rest
    | "--collector" :: _ :: rest -> strip rest
    | "--jobs" :: _ :: rest -> strip rest
    | a :: rest -> a :: strip rest
    | [] -> []
  in
  let wanted =
    List.filter (fun a -> not (List.mem a [ "--paper-scale"; "--smoke"; "--json" ])) (strip args)
  in
  json_enabled := json;
  json_string "bench" "boehm93-reproduction";
  json_bool "smoke" smoke;
  json_bool "paper_scale" paper_scale;
  json_int "seeds" seeds;
  let selected =
    if wanted = [] then List.map snd all_sections
    else
      List.map
        (fun name ->
          match List.assoc_opt name all_sections with
          | Some s -> s
          | None ->
              Format.eprintf "unknown section %s; sections: %s@." name
                (String.concat " " (List.map fst all_sections));
              exit 1)
        wanted
  in
  Format.printf
    "Space Efficient Conservative Garbage Collection (Boehm, PLDI 1993) — reproduction@.";
  List.iter
    (fun s ->
      match s with
      | `Table1 -> table1 ~paper_scale ~seeds ~smoke ()
      | `Fig1 -> fig1 ()
      | `Fig34 -> fig34 ()
      | `Stack -> stack_clearing ()
      | `Structures -> structures ()
      | `Large -> large_object ()
      | `Dual -> dual_run ()
      | `Frag -> fragmentation ()
      | `Generational -> generational ()
      | `Threads -> pcr_threads ()
      | `Ablations -> ablations ()
      | `Overhead -> overhead ()
      | `Mark -> mark_throughput ~smoke ~jobs ()
      | `Resilience -> resilience ~smoke ?collectors ~mark_jobs:jobs ()
      | `Starvation -> starvation ()
      | `Timing -> timing ())
    selected;
  if json then begin
    json_write json_out;
    check_table1_parity json_out
  end
