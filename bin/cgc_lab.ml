(* cgc_lab: command-line driver for every experiment in the reproduction
   of "Space Efficient Conservative Garbage Collection" (Boehm, PLDI'93). *)

open Cmdliner
module W = Cgc_workloads

let seed_arg =
  let doc = "Random seed (experiments are deterministic given the seed)." in
  Arg.(value & opt int 1993 & info [ "seed" ] ~docv:"SEED" ~doc)

(* --- program-t --- *)

let platform_arg =
  let doc =
    "Platform preset: " ^ String.concat ", " W.Platform.names ^ ", or 'all' for the full table."
  in
  Arg.(value & opt string "all" & info [ "platform"; "p" ] ~docv:"NAME" ~doc)

let lists_arg =
  let doc = "Number of lists (default: the platform's)." in
  Arg.(value & opt (some int) None & info [ "lists" ] ~docv:"N" ~doc)

let nodes_arg =
  let doc =
    "Cells per list (default: a quarter of the platform's, i.e. the standard evaluation scale; \
     use --paper-scale for the full size)."
  in
  Arg.(value & opt (some int) None & info [ "nodes" ] ~docv:"N" ~doc)

let paper_scale_arg =
  let doc = "Run at the paper's full scale (200 x 25000 cells; slower)." in
  Arg.(value & flag & info [ "paper-scale" ] ~doc)

let effective_nodes ~paper_scale ~nodes (p : W.Platform.t) =
  match nodes with
  | Some n -> n
  | None -> if paper_scale then p.W.Platform.nodes_per_list else p.W.Platform.nodes_per_list / 4

let run_program_t seed platform lists nodes paper_scale =
  let platforms =
    if platform = "all" then W.Platform.all
    else
      match W.Platform.by_name platform with
      | Some p -> [ p ]
      | None ->
          Format.eprintf "unknown platform %s; try one of: %s@." platform
            (String.concat ", " W.Platform.names);
          exit 1
  in
  List.iter
    (fun p ->
      let nodes = effective_nodes ~paper_scale ~nodes p in
      let row = W.Program_t.run_row ~seed ?lists ~nodes p in
      Format.printf "%a@." W.Program_t.pp_result row.W.Program_t.without_blacklisting;
      Format.printf "%a@.%!" W.Program_t.pp_result row.W.Program_t.with_blacklisting)
    platforms

let program_t_cmd =
  let doc = "Program T (appendix A): storage retention with and without blacklisting (table 1)." in
  Cmd.v
    (Cmd.info "program-t" ~doc)
    Term.(const run_program_t $ seed_arg $ platform_arg $ lists_arg $ nodes_arg $ paper_scale_arg)

(* --- grid --- *)

let run_grid seed rows cols trials =
  List.iter
    (fun repr ->
      Format.printf "%a@." W.Grid.pp_summary (W.Grid.run_trials ~seed repr ~rows ~cols ~trials))
    [ W.Grid.Embedded; W.Grid.Separate ]

let grid_cmd =
  let rows = Arg.(value & opt int 20 & info [ "rows" ] ~docv:"N" ~doc:"Grid rows.") in
  let cols = Arg.(value & opt int 20 & info [ "cols" ] ~docv:"N" ~doc:"Grid columns.") in
  let trials = Arg.(value & opt int 40 & info [ "trials" ] ~docv:"N" ~doc:"Random injections.") in
  Cmd.v
    (Cmd.info "grid" ~doc:"Embedded vs separate link cells (figures 3-4).")
    Term.(const run_grid $ seed_arg $ rows $ cols $ trials)

(* --- stack clearing --- *)

let run_stack seed elements iterations =
  ignore seed;
  List.iter
    (fun mode ->
      Format.printf "%a@.%!" W.List_reverse.pp (W.List_reverse.run mode ~elements ~iterations))
    [ W.List_reverse.Careless; W.List_reverse.Cleared; W.List_reverse.Optimized ]

let stack_cmd =
  let elements = Arg.(value & opt int 250 & info [ "elements" ] ~docv:"N" ~doc:"List length.") in
  let iterations = Arg.(value & opt int 30 & info [ "iterations" ] ~docv:"N" ~doc:"Reversals.") in
  Cmd.v
    (Cmd.info "stack-clearing" ~doc:"Recursive list reversal and stack hygiene (section 3.1).")
    Term.(const run_stack $ seed_arg $ elements $ iterations)

(* --- structures --- *)

let run_structures seed =
  Format.printf "%a@." W.Tree.pp (W.Tree.run ~seed ~depth:10 ~trials:60 ());
  List.iter
    (fun (clear, ops) ->
      Format.printf "%a@." W.Queue_lazy.pp (W.Queue_lazy.run ~seed ~clear_links:clear ops))
    [ (false, 1000); (false, 4000); (true, 1000); (true, 4000) ]

let structures_cmd =
  Cmd.v
    (Cmd.info "structures" ~doc:"Trees vs queues under a false reference (section 4).")
    Term.(const run_structures $ seed_arg)

(* --- misidentification --- *)

let run_sweep seed samples =
  List.iter
    (fun kind ->
      List.iter
        (fun p -> Format.printf "%a@." W.False_ref.pp_sweep_point p)
        (W.False_ref.misidentification_sweep ~seed ~samples ~kind [ 64; 256; 1024; 4096 ]))
    [ W.False_ref.Uniform_words; W.False_ref.Integer_like ];
  Format.printf "-- heap placement --@.";
  List.iter
    (Format.printf "%a@." W.False_ref.pp_placement)
    (W.False_ref.placement_study ~seed ~samples 512)

let sweep_cmd =
  let samples =
    Arg.(value & opt int 200_000 & info [ "samples" ] ~docv:"N" ~doc:"Sampled words per point.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Misidentification probability vs heap occupancy (section 2).")
    Term.(const run_sweep $ seed_arg $ samples)

(* --- figure 1 --- *)

let run_fig1 seed pairs =
  Format.printf "%a@." W.False_ref.pp_halfword (W.False_ref.halfword_study ~seed pairs)

let fig1_cmd =
  let pairs = Arg.(value & opt int 16 & info [ "pairs" ] ~docv:"N" ~doc:"Small-integer pairs.") in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Halfword concatenation into valid addresses (figure 1).")
    Term.(const run_fig1 $ seed_arg $ pairs)

(* --- large objects --- *)

let run_large seed =
  Format.printf "%a@." W.Large_object.pp
    (W.Large_object.run ~seed ~sizes_kb:[ 16; 32; 64; 96; 128; 192; 256; 512; 1024 ] ())

let large_cmd =
  Cmd.v
    (Cmd.info "large-object" ~doc:"Large objects vs the blacklist (section 3, observation 7).")
    Term.(const run_large $ seed_arg)

(* --- dual run --- *)

let run_dual seed = Format.printf "%a@." W.Dual_run.pp (W.Dual_run.run ~seed ())

let dual_cmd =
  Cmd.v
    (Cmd.info "dual-run" ~doc:"Two-copies-shifted-heap pointer identification (footnote 4).")
    Term.(const run_dual $ seed_arg)

(* --- pcr threads --- *)

let run_threads seed threads awake =
  Format.printf "%a@." W.Pcr_threads.pp (W.Pcr_threads.run ~seed ~threads ~awake ())

let threads_cmd =
  let threads = Arg.(value & opt int 5 & info [ "threads" ] ~docv:"N" ~doc:"Background workers.") in
  let awake = Arg.(value & flag & info [ "awake" ] ~doc:"Wake workers after the lists are dropped.") in
  Cmd.v
    (Cmd.info "pcr-threads" ~doc:"Idle thread stacks pin dropped data (appendix B).")
    Term.(const run_threads $ seed_arg $ threads $ awake)

(* --- fragmentation --- *)

let run_frag seed population iterations =
  List.iter
    (fun a ->
      Format.printf "%a@.%!" W.Fragmentation.pp
        (W.Fragmentation.run ~seed a ~population ~iterations))
    [ W.Fragmentation.Malloc_lifo; W.Fragmentation.Malloc_address_ordered; W.Fragmentation.Collector ]

let frag_cmd =
  let population =
    Arg.(value & opt int 5000 & info [ "population" ] ~docv:"N" ~doc:"Objects kept live.")
  in
  let iterations = Arg.(value & opt int 12 & info [ "iterations" ] ~docv:"N" ~doc:"Churn rounds.") in
  Cmd.v
    (Cmd.info "fragmentation" ~doc:"Free-list discipline and fragmentation (conclusions).")
    Term.(const run_frag $ seed_arg $ population $ iterations)

(* --- chaos --- *)

let run_chaos seed steps collectors mark_jobs domain_faults =
  let axes =
    if domain_faults then W.Chaos.all_domain_faults else [ W.Chaos.No_domain_fault ]
  in
  let outcomes =
    List.concat_map
      (fun domain_fault ->
        let outcomes = W.Chaos.run_matrix ~steps ?collectors ~mark_jobs ~domain_fault ~seed () in
        if domain_faults then begin
          let clean = List.length (List.filter W.Chaos.clean outcomes) in
          let armed = List.filter (fun o -> o.W.Chaos.mark_jobs > 1) outcomes in
          let sum f = List.fold_left (fun a o -> a + f o.W.Chaos.stats) 0 armed in
          let causes =
            List.sort_uniq compare
              (List.filter_map (fun o -> o.W.Chaos.last_fallback) armed)
          in
          Format.printf
            "-- %s axis: %d/%d cells clean; %d domain faults injected, %d domains reclaimed, \
             %d serial fallbacks, %d quorum degradations; causes seen: %s@.%!"
            (W.Chaos.domain_fault_name domain_fault)
            clean (List.length outcomes)
            (sum (fun s -> s.Cgc.Stats.mark_domain_faults))
            (sum (fun s -> s.Cgc.Stats.mark_domains_recovered))
            (sum (fun s -> s.Cgc.Stats.mark_serial_fallbacks))
            (sum (fun s -> s.Cgc.Stats.mark_quorum_degradations))
            (if causes = [] then "none" else String.concat ", " causes)
        end;
        outcomes)
      axes
  in
  List.iter (Format.printf "%a@.%!" W.Chaos.pp_outcome) outcomes;
  let dirty = List.filter (fun o -> not (W.Chaos.clean o)) outcomes in
  Format.printf "%d/%d scenario runs clean@.%!"
    (List.length outcomes - List.length dirty)
    (List.length outcomes);
  if dirty <> [] then exit 1

let chaos_cmd =
  let steps =
    Arg.(value & opt int 1500 & info [ "steps" ] ~docv:"N" ~doc:"Mutator steps per scenario.")
  in
  let collector =
    let choices =
      ("all", None)
      :: List.map
           (fun c -> (W.Chaos.collector_name c, Some [ c ]))
           W.Chaos.all_collectors
    in
    Arg.(
      value
      & opt (enum choices) None
      & info [ "collector" ] ~docv:"BACKEND"
          ~doc:
            "Restrict the matrix to one memory-management backend: $(b,conservative), \
             $(b,generational), $(b,explicit), or $(b,all) (the default).")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Marker domains for the conservative tracer (default 1 = serial).  With N > 1 \
             every cell also asserts the parallel-marking discipline: access-fault plans \
             must take the typed serial fallback, commit plans must mark in parallel.")
  in
  let domain_faults =
    Arg.(
      value & flag
      & info [ "domain-faults" ]
          ~doc:
            "Cross the matrix with the marker-domain failure axis: every cell reruns under \
             an injected stall, crash, livelock and straggler of marker domain 1 (plus the \
             no-fault baseline), with per-axis summaries of faults injected, domains \
             reclaimed and fallback causes.  Implies nothing at $(b,--jobs) 1, where the \
             tracer never spawns domains.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Chaos soak: a randomized mutator under seeded fault plans (commit countdown, \
          probability, byte quota, ECC read corruption, write refusal, permanent region \
          decay) across collector backends and configurations.  Audits crash coherence \
          after every injected fault and exits nonzero on any violation.  \
          $(b,--domain-faults) adds the marker-domain failure axis.")
    Term.(const run_chaos $ seed_arg $ steps $ collector $ jobs $ domain_faults)

(* --- analyze --- *)

module A = Cgc_analysis

(* One generational fix-replay entry as text (and its pass/fail), used
   by the --fix --collector generational path and the @gen-fixes CI
   alias: a target fails on a changed read stream, a fix that does not
   lower promoted garbage, or promotion-model drift on either side. *)
let gen_entry_ok (e : A.Scenarios.gen_fix_entry) =
  let c = e.A.Scenarios.g_cmp in
  c.A.Replay.gcmp_reads_equal
  && c.A.Replay.gcmp_garbage_drop > 0
  && A.Promotion.agrees e.A.Scenarios.g_predicted_before
       ~measured:c.A.Replay.gcmp_garbage_before
  && A.Promotion.agrees e.A.Scenarios.g_predicted_after ~measured:c.A.Replay.gcmp_garbage_after

let json_gen_entry ppf (e : A.Scenarios.gen_fix_entry) =
  let c = e.A.Scenarios.g_cmp in
  Format.fprintf ppf
    "{\"scenario\":%S,\"rule\":%S,\"garbage_before\":%d,\"garbage_after\":%d,\"garbage_drop\":%d,\"predicted_before\":%d,\"predicted_after\":%d,\"reads_equal\":%b,\"ok\":%b}"
    e.A.Scenarios.g_scenario e.A.Scenarios.g_rule c.A.Replay.gcmp_garbage_before
    c.A.Replay.gcmp_garbage_after c.A.Replay.gcmp_garbage_drop
    e.A.Scenarios.g_predicted_before.A.Promotion.pr_garbage_bytes
    e.A.Scenarios.g_predicted_after.A.Promotion.pr_garbage_bytes c.A.Replay.gcmp_reads_equal
    (gen_entry_ok e)

let run_analyze scenario selfcheck starvation fix collector json verbose =
  if selfcheck then begin
    let checks, outcomes = A.Scenarios.selfcheck () in
    if verbose then
      List.iter
        (fun (o : A.Scenarios.outcome) ->
          Format.printf "=== %s ===@.%s@.%a@." o.A.Scenarios.o_name o.A.Scenarios.o_note
            (A.Report.pp ~explain:(A.Scenarios.explain o) ~fixes:true)
            o.A.Scenarios.o_analysis)
        outcomes;
    let failed = List.filter (fun (_, ok) -> not ok) checks in
    List.iter
      (fun (name, ok) -> Format.printf "%s %s@." (if ok then "ok  " else "FAIL") name)
      checks;
    Format.printf "%d/%d checks passed@.%!" (List.length checks - List.length failed)
      (List.length checks);
    if failed <> [] then exit 1
  end
  else begin
    let names =
      if scenario = "all" then A.Scenarios.names
      else if List.mem scenario A.Scenarios.names then [ scenario ]
      else begin
        Format.eprintf "unknown scenario %s; try one of: %s@." scenario
          (String.concat ", " ("all" :: A.Scenarios.names));
        exit 1
      end
    in
    let outcomes = List.filter_map A.Scenarios.run names in
    let matrix = if starvation then Some (A.Scenarios.starvation_matrix ()) else None in
    let gen =
      if fix && collector = `Generational then
        Some (A.Scenarios.generational_fixes ~outcomes ())
      else None
    in
    if json then begin
      Format.printf "{\"scenarios\":[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           (fun ppf (o : A.Scenarios.outcome) ->
             A.Report.json
               ~name:o.A.Scenarios.o_name
               ~replay:(fix && collector = `Conservative)
               ppf o.A.Scenarios.o_analysis))
        outcomes;
      (match matrix with
      | Some m -> Format.printf ",\"starvation_matrix\":%a" A.Report.json_matrix m
      | None -> ());
      (match gen with
      | Some g ->
          Format.printf ",\"gen_fixes\":[%a]"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
               json_gen_entry)
            g
      | None -> ());
      Format.printf "}@.%!";
      match gen with
      | Some g when List.exists (fun e -> not (gen_entry_ok e)) g -> exit 1
      | _ -> ()
    end
    else begin
      List.iter
        (fun (o : A.Scenarios.outcome) ->
          Format.printf "=== %s ===@.%s@.%a@.%!" o.A.Scenarios.o_name o.A.Scenarios.o_note
            (A.Report.pp ~explain:(A.Scenarios.explain o) ~fixes:fix)
            o.A.Scenarios.o_analysis;
          if fix && collector = `Conservative then
            List.iter
              (fun (f : A.Analysis.fix) ->
                match f.A.Analysis.suggestion with
                | Some s ->
                    let cmp =
                      A.Replay.compare_fix o.A.Scenarios.o_analysis.A.Analysis.program
                        s.A.Fixes.fx_edits
                    in
                    Format.printf "replayed [%s]: %a@.%!" f.A.Analysis.finding.A.Lint.rule
                      A.Replay.pp_comparison cmp
                | None -> ())
              o.A.Scenarios.o_analysis.A.Analysis.fixes)
        outcomes;
      (match gen with
      | Some g ->
          Format.printf
            "== generational fix replay (promote_after %d; measured vs promotion model) ==@."
            A.Scenarios.gen_promote_after;
          List.iter (Format.printf "%a@.%!" A.Scenarios.pp_gen_fix_entry) g;
          let ok = List.filter gen_entry_ok g in
          Format.printf "%d/%d generational fix replays verified@.%!" (List.length ok)
            (List.length g)
      | None -> ());
      (match matrix with
      | Some m ->
          Format.printf "== starvation matrix (static prediction vs real collector) ==@.";
          List.iter (Format.printf "%a@.%!" A.Scenarios.pp_matrix_entry) m;
          let agree =
            List.length
              (List.filter
                 (fun (e : A.Scenarios.matrix_entry) ->
                   e.A.Scenarios.m_predicted = e.A.Scenarios.m_measured)
                 m)
          in
          Format.printf "%d/%d classifications agree@.%!" agree (List.length m)
      | None -> ());
      match gen with
      | Some g when List.exists (fun e -> not (gen_entry_ok e)) g -> exit 1
      | _ -> ()
    end
  end

let analyze_cmd =
  let scenario =
    let doc =
      "Scenario to record and analyze: "
      ^ String.concat ", " A.Scenarios.names
      ^ ", or 'all'."
    in
    Arg.(value & opt string "all" & info [ "scenario"; "s" ] ~docv:"NAME" ~doc)
  in
  let selfcheck =
    Arg.(
      value & flag
      & info [ "selfcheck" ]
          ~doc:
            "Run the pinned acceptance matrix over every scenario and exit nonzero on any \
             unexpected finding, soundness violation or out-of-tolerance prediction.")
  in
  let starvation =
    Arg.(
      value & flag
      & info [ "starvation" ]
          ~doc:
            "Also run the starvation matrix: tiny-heap scenarios classified statically \
             (safe / ladder-rescuable / blacklist-starved / decay-vulnerable / exhausted) \
             and checked against the real collector's OOM diagnoses.")
  in
  let fix =
    Arg.(
      value & flag
      & info [ "fix" ]
          ~doc:
            "Print verified fix suggestions for each finding and replay every fix through a \
             fresh real collector to measure the retention drop.")
  in
  let collector =
    Arg.(
      value
      & opt (enum [ ("conservative", `Conservative); ("generational", `Generational) ]) `Conservative
      & info [ "collector" ] ~docv:"BACKEND"
          ~doc:
            "Collector backend the $(b,--fix) replay runs against.  $(b,conservative) (the \
             default) replays each fix through a full-collecting replica and reports the \
             retention drop; $(b,generational) replays the R1/R2/R5 fix matrix through a fresh \
             generational collector, reports the measured promoted-garbage drop next to the \
             promotion model's prediction, and exits nonzero on drift.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print full reports too.") in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static retention analyzer: record a workload's trace, run liveness dataflow and the \
          conservative-marker model, predict apparently-live sets at each GC point, lint for \
          paper-keyed space-leak patterns, suggest statically verified fixes, and cross-validate \
          against the collector.")
    Term.(const run_analyze $ scenario $ selfcheck $ starvation $ fix $ collector $ json $ verbose)

let main_cmd =
  let doc =
    "Experiments from 'Space Efficient Conservative Garbage Collection' (Boehm, PLDI 1993)."
  in
  let info = Cmd.info "cgc_lab" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      program_t_cmd;
      grid_cmd;
      stack_cmd;
      structures_cmd;
      sweep_cmd;
      fig1_cmd;
      large_cmd;
      dual_cmd;
      threads_cmd;
      frag_cmd;
      chaos_cmd;
      analyze_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
