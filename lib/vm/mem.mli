(** The simulated process address space.

    A [Mem.t] is an ordered collection of non-overlapping {!Segment.t}s
    inside one 32-bit space, with a byte order shared by all segments.
    It plays the role of the operating system's VM map: components
    obtain memory with {!map} (at a fixed address, like the collector
    "requesting memory from the operating system at a garbage-collector
    specified location") or {!map_anywhere}.

    It is also the fault boundary of the simulated OS.  An installed
    {!Fault.plan} makes {!commit} (page commits charged by the heap) and
    {!map} fail deterministically — by countdown, seeded probability,
    address predicate, or a byte quota standing in for an OS memory
    limit — so collector robustness under memory pressure is testable
    rather than incidental.

    Plans can also target the {e read/write} path: a tripped guarded
    read models an uncorrectable ECC error (the access raises
    {!Read_fault}; memory itself is untouched, so results return to
    normal once the plan is lifted), and with [decay_bytes] set the
    tripped access permanently decays a whole region — the mapped bytes
    are overwritten with {!poison_word}'s byte pattern and every further
    guarded access there fails with reason {!Fault.Decayed}, modeling a
    mapping that has rotted out from under the process. *)

type t

exception Address_space_exhausted of { requested : int }
(** Raised by {!map_anywhere} when no gap in the 32-bit space can hold
    the request: the simulated OS is out of address space.  Distinct
    from [Invalid_argument] (a programming error such as an overlapping
    fixed-base mapping). *)

(** {1 Fault injection} *)

module Fault : sig
  type reason =
    | Countdown  (** the armed charge count ran out *)
    | Chance  (** the seeded per-charge probability fired *)
    | Address  (** the address predicate matched *)
    | Quota  (** the byte quota would be exceeded *)
    | Decayed  (** the access landed in an already-decayed region *)

  val reason_to_string : reason -> string

  type target =
    | Commits  (** commit/map charges only (the PR 3 behavior) *)
    | Reads  (** guarded reads only *)
    | Writes  (** guarded writes only *)
    | Access  (** guarded reads and writes *)
    | All  (** commits and guarded accesses, one shared trip stream *)

  type plan

  val plan :
    ?countdown:int ->
    ?rearm:bool ->
    ?probability:float * int ->
    ?addr_pred:(Addr.t -> bool) ->
    ?quota_bytes:int ->
    ?target:target ->
    ?decay_bytes:int ->
    unit ->
    plan
  (** A deterministic, seeded fault plan.
      - [countdown n] (n > 0): the [n]-th chargeable operation after
        installation fails; with [rearm:true] every subsequent [n]-th
        charge fails too, otherwise the countdown disarms after firing.
      - [probability (p, seed)]: each charge independently fails with
        probability [p], drawn from a private SplitMix64 stream.
      - [addr_pred]: charges whose address satisfies the predicate fail.
      - [quota_bytes q]: cumulative committed bytes (commits minus
        {!uncommit} refunds, counted from plan installation) may not
        exceed [q]; a commit that would cross the quota fails without
        debiting it — exactly an OS refusing to commit more memory.
      - [target] (default [Commits]): which operations the plan arms.
        Countdown, probability, and predicate draw from one shared
        stream across all armed operations; the quota only ever applies
        to commits.
      - [decay_bytes n] (word multiple, default 0): when a guarded
        access trips, the aligned [n]-byte region containing it decays
        permanently — its mapped bytes are poisoned and later guarded
        accesses fail with reason {!Decayed}.  With [0], a tripped read
        is a transient single-word ECC corruption and a tripped write is
        a one-off refusal; memory contents are left intact. *)

  val injected : plan -> int
  (** Faults this plan has injected so far. *)

  val charged_bytes : plan -> int
  (** Net committed bytes charged against the quota so far. *)

  val set_quota : plan -> int -> unit
  (** Adjust the quota in place (negative = unlimited). *)

  val read_faults : plan -> int
  (** Guarded reads this plan has faulted (ECC trips plus decayed hits). *)

  val write_faults : plan -> int
  (** Guarded writes this plan has faulted. *)

  val decayed_regions : plan -> (Addr.t * int) list
  (** Regions this plan has decayed, as [(base, bytes)] pairs in decay
      order. *)

  val decayed_bytes : plan -> int
  (** Total bytes across all decayed regions. *)

  val pp : Format.formatter -> plan -> unit
end

exception
  Commit_failed of {
    op : string;  (** ["commit"] or ["map"] *)
    addr : Addr.t;
    bytes : int;
    reason : Fault.reason;
  }
(** An injected commit/map failure.  The collector's allocation ladder
    absorbs these; they escape to user code only through components that
    do not guard their commits. *)

exception Read_fault of { addr : Addr.t; value : int; reason : Fault.reason }
(** An injected read failure.  [value] is the poison pattern the
    corrupted location yielded ({!poison_word} for word reads).  The
    marker absorbs these by downgrading the word to "not a pointer";
    they reach user code through {!read_word} and collector field
    accessors. *)

exception Write_fault of { addr : Addr.t; bytes : int; reason : Fault.reason }
(** An injected write failure: the store did {e not} happen.  The
    collector's allocation path absorbs these by quarantining the
    decayed page and retrying; they reach user code through
    {!write_word} and collector field accessors. *)

val poison_word : int
(** The 32-bit pattern a decayed region returns ([0xDEDEDEDE]): every
    byte is [0xDE], so word reads at any alignment observe it, and it
    lies outside any simulated heap so a conservative scan classifies it
    as "not a pointer". *)

val set_fault_plan : t -> Fault.plan option -> unit
(** Install (or clear) the fault plan.  Quota accounting starts from
    zero at installation. *)

val fault_plan : t -> Fault.plan option
val faults_injected : t -> int
(** Total injected faults across every plan ever installed. *)

val commit : t -> addr:Addr.t -> bytes:int -> unit
(** Charge one commit of [bytes] at [addr] against the fault plan.
    A no-op without a plan.  @raise Commit_failed when the plan says so;
    on success the bytes are debited from the quota. *)

val uncommit : t -> addr:Addr.t -> bytes:int -> unit
(** Refund committed bytes to the quota (the heap returning pages to the
    OS).  Never fails. *)

val read_faults_armed : t -> bool
(** Whether the installed plan (if any) arms guarded reads.  Scan loops
    consult this once per range to keep the fault-free fast path free of
    per-word plan checks. *)

val write_faults_armed : t -> bool
(** Whether the installed plan (if any) arms guarded writes. *)

val access_faults_armed : t -> bool
(** [read_faults_armed || write_faults_armed]. *)

val probe_read : t -> Addr.t -> Fault.reason option
(** Consult the plan for one guarded word read at the address without
    raising.  [Some reason] means the read faulted (the trip state was
    consumed and per-plan stats were counted); the caller chooses how to
    surface it — the marker downgrades, {!guard_read} raises. *)

val probe_write : ?bytes:int -> t -> Addr.t -> Fault.reason option
(** Same for one guarded write of [bytes] (default 4) at the address.
    A write overlapping a decayed region faults with {!Fault.Decayed}. *)

val guard_read : t -> Addr.t -> unit
(** {!probe_read}, raising {!Read_fault} on a trip. *)

val guard_write : ?bytes:int -> t -> Addr.t -> unit
(** {!probe_write}, raising {!Write_fault} on a trip. *)

val range_decayed : t -> Addr.t -> bytes:int -> bool
(** Whether [addr, addr+bytes) overlaps a decayed region.  A pure query:
    no trip state is consumed, nothing is counted. *)

(** {1 Address space} *)

val create : ?endian:Endian.t -> unit -> t
(** A fresh, empty address space (default little-endian). *)

val endian : t -> Endian.t

val map : t -> name:string -> kind:Segment.kind -> base:Addr.t -> size:int -> Segment.t
(** Create and register a segment at a fixed base address.  Reserves
    address space only; commit charging happens through {!commit}.
    @raise Invalid_argument if it would overlap an existing segment.
    @raise Commit_failed if the installed fault plan fails the mapping. *)

val map_anywhere : t -> name:string -> kind:Segment.kind -> ?above:Addr.t -> size:int -> unit -> Segment.t
(** Map at the lowest page-aligned (4 KB) gap at or above [above]
    (default 0x1000, keeping page zero unmapped).
    @raise Address_space_exhausted when no gap fits. *)

val unmap : t -> Segment.t -> unit
(** Remove a segment.  Accesses through it afterwards are errors. *)

val segments : t -> Segment.t list
(** All segments in increasing address order. *)

val find : t -> Addr.t -> Segment.t option
(** The segment containing the given address, if mapped. *)

val is_mapped : t -> Addr.t -> bool

val read_word : t -> Addr.t -> int
(** Read a 32-bit word at any mapped (possibly unaligned) address.
    @raise Invalid_argument if unmapped or crossing a segment end.
    @raise Read_fault if the installed plan faults the read. *)

val write_word : t -> Addr.t -> int -> unit
(** @raise Write_fault if the installed plan faults the write. *)

val read_u8 : t -> Addr.t -> int
val write_u8 : t -> Addr.t -> int -> unit

val pp : Format.formatter -> t -> unit
