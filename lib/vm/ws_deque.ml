(* Chase-Lev work-stealing deque of untagged ints (heap addresses), in
   the C11 formulation of Lê, Pop, Cohen and Zappa Nardelli ("Correct
   and Efficient Work-Stealing for Weak Memory Models", PPoPP 2013).
   OCaml atomics are sequentially consistent, which is strictly stronger
   than the orderings that proof needs, so the algorithm carries over
   with the buffer held in an [Atomic.t] so thieves racing a grow keep
   reading a buffer that is still correct at their logical index:

   - the owner pushes and pops at [bottom];
   - thieves CAS [top] upward to claim the oldest element;
   - a stale (pre-grow) buffer still holds the correct value at every
     logical index in [top, old bottom), and any slot-reuse race is
     detected by the thief's CAS on [top] failing.

   Elements are plain [int]s (immediates), so the non-atomic buffer
   reads cannot tear. *)

type buffer = {
  mask : int; (* capacity - 1; capacity is a power of two *)
  slots : int array;
}

type t = {
  top : int Atomic.t; (* next logical index to steal *)
  bottom : int Atomic.t; (* next logical index to push *)
  buf : buffer Atomic.t;
}

let make_buffer capacity = { mask = capacity - 1; slots = Array.make capacity 0 }

let create ?(capacity = 256) () =
  let rec pow2 c = if c >= capacity then c else pow2 (c * 2) in
  let capacity = pow2 16 in
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (make_buffer capacity) }

(* Owner-side size estimate.  Thieves may concurrently raise [top], so
   the true size is never larger than this — good enough for the
   mark-stack-limit overflow check, which is conservative anyway. *)
let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let is_empty t = size t = 0

(* Owner only.  Copies the live window [top, bottom) into a buffer of
   twice the capacity.  Thieves still holding the old buffer read
   correct values: logical indices below [bottom] are unchanged there. *)
let grow t buffer bottom top =
  let capacity = buffer.mask + 1 in
  let bigger = make_buffer (capacity * 2) in
  for i = top to bottom - 1 do
    bigger.slots.(i land bigger.mask) <- buffer.slots.(i land buffer.mask)
  done;
  Atomic.set t.buf bigger;
  bigger

(* Owner only. *)
let push t v =
  let bottom = Atomic.get t.bottom in
  let top = Atomic.get t.top in
  let buffer = Atomic.get t.buf in
  let buffer =
    if bottom - top > buffer.mask then grow t buffer bottom top else buffer
  in
  buffer.slots.(bottom land buffer.mask) <- v;
  Atomic.set t.bottom (bottom + 1)

(* Owner only.  LIFO end: newest element, i.e. depth-first scanning
   order like the serial mark stack. *)
let pop t =
  let bottom = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom bottom;
  let top = Atomic.get t.top in
  if bottom < top then begin
    (* empty: restore the canonical bottom = top state *)
    Atomic.set t.bottom top;
    None
  end
  else begin
    let buffer = Atomic.get t.buf in
    let v = buffer.slots.(bottom land buffer.mask) in
    if bottom > top then Some v
    else begin
      (* last element: race thieves for it via the top CAS *)
      let won = Atomic.compare_and_set t.top top (top + 1) in
      Atomic.set t.bottom (top + 1);
      if won then Some v else None
    end
  end

(* Thief side.  FIFO end: oldest element, which spreads the broadest
   subtrees across domains. *)
let steal t =
  let top = Atomic.get t.top in
  let bottom = Atomic.get t.bottom in
  if bottom - top <= 0 then None
  else begin
    let buffer = Atomic.get t.buf in
    let v = buffer.slots.(top land buffer.mask) in
    if Atomic.compare_and_set t.top top (top + 1) then Some v else None
  end

(* Thief side, bulk: steal until the deque reads empty, feeding each
   element to [f].  Safe against other thieves (every claim still goes
   through the [top] CAS), but only guaranteed to empty the deque when
   the owner has stopped pushing — the use case is a survivor domain
   reclaiming the work of a marker domain declared dead, whose owner
   side is fenced and will never push again.  Returns the number of
   elements drained by this caller. *)
let drain t f =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match steal t with
    | Some v ->
        incr n;
        f v
    | None ->
        (* Lost CAS races return None too; only stop once the deque is
           genuinely empty, otherwise retry. *)
        if Atomic.get t.bottom - Atomic.get t.top <= 0 then continue := false
  done;
  !n
