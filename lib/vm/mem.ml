exception Address_space_exhausted of { requested : int }

(* --- fault injection ------------------------------------------------ *)

module Fault = struct
  type reason =
    | Countdown
    | Chance
    | Address
    | Quota
    | Decayed

  let reason_to_string = function
    | Countdown -> "countdown"
    | Chance -> "chance"
    | Address -> "address"
    | Quota -> "quota"
    | Decayed -> "decayed"

  type target = Commits | Reads | Writes | Access | All

  type plan = {
    mutable countdown : int;
        (* > 0: charges remaining before the next injected failure *)
    rearm : int;  (* 0 = one-shot; > 0: period to re-arm the countdown *)
    probability : float;
    rng : Rng.t option;
    addr_pred : (Addr.t -> bool) option;
    mutable quota_bytes : int;  (* < 0 = unlimited *)
    mutable charged_bytes : int;  (* commits minus refunds since install *)
    mutable injected : int;
    commits : bool;  (* plan applies to commit/map charges *)
    reads : bool;  (* plan applies to guarded word/byte reads *)
    writes : bool;  (* plan applies to guarded word/byte writes *)
    decay_bytes : int;
        (* 0 = transient ECC corruption; > 0: a tripped access permanently
           decays the aligned region of this many bytes around it *)
    mutable decayed : (int * int) list;  (* decayed [lo, hi) address ranges *)
    decay_tbl : (int, unit) Hashtbl.t;
        (* aligned region starts, for O(1) membership on the probe path *)
    mutable read_faults : int;
    mutable write_faults : int;
  }

  let plan ?(countdown = 0) ?(rearm = false) ?probability ?addr_pred ?quota_bytes
      ?(target = Commits) ?(decay_bytes = 0) () =
    if countdown < 0 then invalid_arg "Mem.Fault.plan: negative countdown";
    (match quota_bytes with
    | Some q when q < 0 -> invalid_arg "Mem.Fault.plan: negative quota"
    | Some _ | None -> ());
    if decay_bytes < 0 || (decay_bytes > 0 && decay_bytes mod 4 <> 0) then
      invalid_arg "Mem.Fault.plan: decay_bytes must be a non-negative word multiple";
    let probability, rng =
      match probability with
      | None -> (0., None)
      | Some (p, seed) ->
          if p < 0. || p > 1. then invalid_arg "Mem.Fault.plan: probability out of [0,1]";
          (p, Some (Rng.create seed))
    in
    let commits, reads, writes =
      match target with
      | Commits -> (true, false, false)
      | Reads -> (false, true, false)
      | Writes -> (false, false, true)
      | Access -> (false, true, true)
      | All -> (true, true, true)
    in
    {
      countdown;
      rearm = (if rearm then countdown else 0);
      probability;
      rng;
      addr_pred;
      quota_bytes = Option.value quota_bytes ~default:(-1);
      charged_bytes = 0;
      injected = 0;
      commits;
      reads;
      writes;
      decay_bytes;
      decayed = [];
      decay_tbl = Hashtbl.create 16;
      read_faults = 0;
      write_faults = 0;
    }

  let injected p = p.injected
  let charged_bytes p = p.charged_bytes
  let set_quota p q = p.quota_bytes <- q
  let read_faults p = p.read_faults
  let write_faults p = p.write_faults

  let decayed_regions p =
    List.rev_map (fun (lo, hi) -> (Addr.of_int lo, hi - lo)) p.decayed

  let decayed_bytes p = List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 p.decayed

  (* Decayed regions are aligned [decay_bytes]-sized blocks, so overlap
     reduces to membership of each covered block start — O(bytes/n), not
     a scan of every region ever decayed. *)
  let range_in_decay p a bytes =
    p.decayed <> []
    &&
    let n = p.decay_bytes in
    let first = a - (a mod n) and last_byte = a + bytes - 1 in
    let last = last_byte - (last_byte mod n) in
    let rec probe s = s <= last && (Hashtbl.mem p.decay_tbl s || probe (s + n)) in
    probe first

  let pp ppf p =
    let targets =
      String.concat "+"
        (List.filter_map
           (fun (armed, name) -> if armed then Some name else None)
           [ (p.commits, "commits"); (p.reads, "reads"); (p.writes, "writes") ])
    in
    Format.fprintf ppf
      "fault plan[%s]: countdown=%d%s p=%.3f quota=%s charged=%d injected=%d"
      targets p.countdown
      (if p.rearm > 0 then Format.sprintf " (rearm %d)" p.rearm else "")
      p.probability
      (if p.quota_bytes < 0 then "none" else string_of_int p.quota_bytes)
      p.charged_bytes p.injected;
    if p.reads || p.writes then
      Format.fprintf ppf " reads=%d writes=%d" p.read_faults p.write_faults;
    if p.decay_bytes > 0 then
      Format.fprintf ppf " decay=%dB (%d decayed)" p.decay_bytes (decayed_bytes p)
end

exception
  Commit_failed of {
    op : string;
    addr : Addr.t;
    bytes : int;
    reason : Fault.reason;
  }

exception Read_fault of { addr : Addr.t; value : int; reason : Fault.reason }
exception Write_fault of { addr : Addr.t; bytes : int; reason : Fault.reason }

(* The pattern a decayed region returns: 0xDE in every byte, so raw
   (unguarded) scanners observe the same poison the typed faults report.
   Chosen well outside any simulated heap so a conservative scan
   classifies it as "not a pointer". *)
let poison_byte = '\xDE'
let poison_word = 0xDEDEDEDE

type t = {
  endian : Endian.t;
  mutable segs : Segment.t array; (* sorted by base, non-overlapping *)
  mutable fault_plan : Fault.plan option;
  mutable faults_injected : int;  (* across all plans ever installed *)
}

let create ?(endian = Endian.Little) () =
  { endian; segs = [||]; fault_plan = None; faults_injected = 0 }

let endian t = t.endian
let segments t = Array.to_list t.segs

let set_fault_plan t plan = t.fault_plan <- plan
let fault_plan t = t.fault_plan
let faults_injected t = t.faults_injected

let inject t (p : Fault.plan) ~op ~addr ~bytes reason =
  p.Fault.injected <- p.Fault.injected + 1;
  t.faults_injected <- t.faults_injected + 1;
  raise (Commit_failed { op; addr; bytes; reason })

(* One consulted operation against the plan's shared trip state
   (countdown stream, seeded probability, address predicate).  Commits
   and guarded accesses draw from the same streams, so a plan armed for
   [All] keeps one deterministic schedule across both.  A fired trip
   aborts evaluation, matching the pre-access-fault behavior where
   [inject] raised before later checks could draw. *)
let consult (p : Fault.plan) ~addr : Fault.reason option =
  let fired = ref None in
  if p.Fault.countdown > 0 then begin
    p.Fault.countdown <- p.Fault.countdown - 1;
    if p.Fault.countdown = 0 then begin
      p.Fault.countdown <- p.Fault.rearm;
      fired := Some Fault.Countdown
    end
  end;
  (if !fired = None then
     match p.Fault.rng with
     | Some rng when Rng.chance rng p.Fault.probability -> fired := Some Fault.Chance
     | Some _ | None -> ());
  (if !fired = None then
     match p.Fault.addr_pred with
     | Some pred when pred addr -> fired := Some Fault.Address
     | Some _ | None -> ());
  !fired

(* Consult the installed plan for one chargeable operation.  The quota
   is checked last so a countdown or predicate failure never debits it;
   a successful charge debits [bytes] against the quota. *)
let charge t ~op ~addr ~bytes ~against_quota =
  match t.fault_plan with
  | None -> ()
  | Some p when not p.Fault.commits -> ()
  | Some p ->
      (match consult p ~addr with
      | Some reason -> inject t p ~op ~addr ~bytes reason
      | None -> ());
      if against_quota then begin
        if p.Fault.quota_bytes >= 0 && p.Fault.charged_bytes + bytes > p.Fault.quota_bytes then
          inject t p ~op ~addr ~bytes Fault.Quota;
        p.Fault.charged_bytes <- p.Fault.charged_bytes + bytes
      end

let commit t ~addr ~bytes = charge t ~op:"commit" ~addr ~bytes ~against_quota:true

let uncommit t ~addr ~bytes =
  ignore addr;
  match t.fault_plan with
  | None -> ()
  | Some p -> p.Fault.charged_bytes <- max 0 (p.Fault.charged_bytes - bytes)

(* --- read/write access faults --------------------------------------- *)

let read_faults_armed t =
  match t.fault_plan with Some p -> p.Fault.reads | None -> false

let write_faults_armed t =
  match t.fault_plan with Some p -> p.Fault.writes | None -> false

let access_faults_armed t = read_faults_armed t || write_faults_armed t

let note_access_fault t (p : Fault.plan) dir =
  (match dir with
  | `Read -> p.Fault.read_faults <- p.Fault.read_faults + 1
  | `Write -> p.Fault.write_faults <- p.Fault.write_faults + 1);
  p.Fault.injected <- p.Fault.injected + 1;
  t.faults_injected <- t.faults_injected + 1

(* Permanently decay the aligned [decay_bytes] region containing [addr]:
   record it in the plan (so further guarded accesses report [Decayed])
   and physically overwrite the mapped bytes with the poison pattern, so
   raw scanners — the mark fast path reads segment bytes directly — see
   exactly what the typed fault reports. *)
let decay_region t (p : Fault.plan) addr =
  let a = Addr.to_int addr in
  let n = p.Fault.decay_bytes in
  let lo = a - (a mod n) in
  let hi = lo + n in
  p.Fault.decayed <- (lo, hi) :: p.Fault.decayed;
  Hashtbl.replace p.Fault.decay_tbl lo ();
  Array.iter
    (fun seg ->
      let slo = max lo (Addr.to_int (Segment.base seg))
      and shi = min hi (Addr.to_int (Segment.limit seg)) in
      if slo < shi then Segment.fill seg (Addr.of_int slo) ~len:(shi - slo) poison_byte)
    t.segs

(* Consult the plan for one guarded access of [bytes] at [addr] without
   raising.  Returns the fault reason when the access must fail; the
   caller decides how to surface it (the marker downgrades, [guard_read]
   and [guard_write] raise the typed exceptions). *)
let probe_access t dir ~addr ~bytes =
  match t.fault_plan with
  | None -> None
  | Some p ->
      let armed = match dir with `Read -> p.Fault.reads | `Write -> p.Fault.writes in
      if not armed then None
      else if Fault.range_in_decay p (Addr.to_int addr) bytes then begin
        note_access_fault t p dir;
        Some Fault.Decayed
      end
      else
        match consult p ~addr with
        | None -> None
        | Some reason ->
            if p.Fault.decay_bytes > 0 then decay_region t p addr;
            note_access_fault t p dir;
            Some reason

(* Pure query: does [addr, addr+bytes) overlap a decayed region?  No
   trip state is consumed and nothing is counted, so callers can
   distinguish "that memory rotted" from a transient refusal without
   perturbing the plan. *)
let range_decayed t addr ~bytes =
  match t.fault_plan with
  | None -> false
  | Some p -> Fault.range_in_decay p (Addr.to_int addr) bytes

let probe_read t addr = probe_access t `Read ~addr ~bytes:4
let probe_write ?(bytes = 4) t addr = probe_access t `Write ~addr ~bytes

let guard_read t addr =
  match probe_read t addr with
  | None -> ()
  | Some reason -> raise (Read_fault { addr; value = poison_word; reason })

let guard_write ?(bytes = 4) t addr =
  match probe_write ~bytes t addr with
  | None -> ()
  | Some reason -> raise (Write_fault { addr; bytes; reason })

let overlaps a b =
  Addr.to_int (Segment.base a) < Addr.to_int (Segment.limit b)
  && Addr.to_int (Segment.base b) < Addr.to_int (Segment.limit a)

let insert t seg =
  Array.iter
    (fun existing ->
      if overlaps seg existing then
        invalid_arg
          (Format.asprintf "Mem.map: %a overlaps %a" Segment.pp seg Segment.pp existing))
    t.segs;
  let segs = Array.append t.segs [| seg |] in
  Array.sort (fun a b -> Addr.compare (Segment.base a) (Segment.base b)) segs;
  t.segs <- segs

let map t ~name ~kind ~base ~size =
  (* Mapping reserves address space; it does not count against the
     commit quota (pages are charged as the heap commits them). *)
  charge t ~op:"map" ~addr:base ~bytes:size ~against_quota:false;
  let seg = Segment.create ~name ~kind ~endian:t.endian ~base ~size in
  insert t seg;
  seg

let page = 0x1000

let map_anywhere t ~name ~kind ?(above = Addr.of_int page) ~size () =
  let size_rounded = (size + page - 1) / page * page in
  let candidate = ref (Addr.to_int (Addr.align_up above page)) in
  Array.iter
    (fun seg ->
      let lo = Addr.to_int (Segment.base seg) and hi = Addr.to_int (Segment.limit seg) in
      if !candidate + size_rounded > lo && !candidate < hi then
        candidate := Addr.to_int (Addr.align_up (Addr.of_int hi) page))
    t.segs;
  if !candidate + size_rounded > Addr.space_size then
    raise (Address_space_exhausted { requested = size });
  map t ~name ~kind ~base:(Addr.of_int !candidate) ~size

let unmap t seg =
  t.segs <- Array.of_list (List.filter (fun s -> s != seg) (Array.to_list t.segs))

let find t a =
  (* Binary search for the last segment with base <= a. *)
  let segs = t.segs in
  let n = Array.length segs in
  let rec go lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let seg = segs.(mid) in
      if Addr.to_int a < Addr.to_int (Segment.base seg) then go lo mid
      else if Segment.contains seg a then Some seg
      else go (mid + 1) hi
    end
  in
  go 0 n

let is_mapped t a = Option.is_some (find t a)

let get t a =
  match find t a with
  | Some seg -> seg
  | None -> invalid_arg (Printf.sprintf "Mem: unmapped address %s" (Addr.to_string a))

let read_word t a =
  guard_read t a;
  Segment.read_word (get t a) a

let write_word t a v =
  guard_write t a;
  Segment.write_word (get t a) a v

let read_u8 t a =
  (match probe_access t `Read ~addr:a ~bytes:1 with
  | None -> ()
  | Some reason -> raise (Read_fault { addr = a; value = Char.code poison_byte; reason }));
  Segment.read_u8 (get t a) a

let write_u8 t a v =
  guard_write ~bytes:1 t a;
  Segment.write_u8 (get t a) a v

let pp ppf t =
  Format.fprintf ppf "@[<v>address space (%s-endian):@," (Endian.to_string t.endian);
  Array.iter (fun s -> Format.fprintf ppf "  %a@," Segment.pp s) t.segs;
  (match t.fault_plan with
  | Some p -> Format.fprintf ppf "  %a@," Fault.pp p
  | None -> ());
  Format.fprintf ppf "@]"
