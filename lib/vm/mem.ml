exception Address_space_exhausted of { requested : int }

(* --- fault injection ------------------------------------------------ *)

module Fault = struct
  type reason =
    | Countdown
    | Chance
    | Address
    | Quota

  let reason_to_string = function
    | Countdown -> "countdown"
    | Chance -> "chance"
    | Address -> "address"
    | Quota -> "quota"

  type plan = {
    mutable countdown : int;
        (* > 0: charges remaining before the next injected failure *)
    rearm : int;  (* 0 = one-shot; > 0: period to re-arm the countdown *)
    probability : float;
    rng : Rng.t option;
    addr_pred : (Addr.t -> bool) option;
    mutable quota_bytes : int;  (* < 0 = unlimited *)
    mutable charged_bytes : int;  (* commits minus refunds since install *)
    mutable injected : int;
  }

  let plan ?(countdown = 0) ?(rearm = false) ?probability ?addr_pred ?quota_bytes () =
    if countdown < 0 then invalid_arg "Mem.Fault.plan: negative countdown";
    (match quota_bytes with
    | Some q when q < 0 -> invalid_arg "Mem.Fault.plan: negative quota"
    | Some _ | None -> ());
    let probability, rng =
      match probability with
      | None -> (0., None)
      | Some (p, seed) ->
          if p < 0. || p > 1. then invalid_arg "Mem.Fault.plan: probability out of [0,1]";
          (p, Some (Rng.create seed))
    in
    {
      countdown;
      rearm = (if rearm then countdown else 0);
      probability;
      rng;
      addr_pred;
      quota_bytes = Option.value quota_bytes ~default:(-1);
      charged_bytes = 0;
      injected = 0;
    }

  let injected p = p.injected
  let charged_bytes p = p.charged_bytes
  let set_quota p q = p.quota_bytes <- q

  let pp ppf p =
    Format.fprintf ppf "fault plan: countdown=%d%s p=%.3f quota=%s charged=%d injected=%d"
      p.countdown
      (if p.rearm > 0 then Format.sprintf " (rearm %d)" p.rearm else "")
      p.probability
      (if p.quota_bytes < 0 then "none" else string_of_int p.quota_bytes)
      p.charged_bytes p.injected
end

exception
  Commit_failed of {
    op : string;
    addr : Addr.t;
    bytes : int;
    reason : Fault.reason;
  }

type t = {
  endian : Endian.t;
  mutable segs : Segment.t array; (* sorted by base, non-overlapping *)
  mutable fault_plan : Fault.plan option;
  mutable faults_injected : int;  (* across all plans ever installed *)
}

let create ?(endian = Endian.Little) () =
  { endian; segs = [||]; fault_plan = None; faults_injected = 0 }

let endian t = t.endian
let segments t = Array.to_list t.segs

let set_fault_plan t plan = t.fault_plan <- plan
let fault_plan t = t.fault_plan
let faults_injected t = t.faults_injected

let inject t (p : Fault.plan) ~op ~addr ~bytes reason =
  p.Fault.injected <- p.Fault.injected + 1;
  t.faults_injected <- t.faults_injected + 1;
  raise (Commit_failed { op; addr; bytes; reason })

(* Consult the installed plan for one chargeable operation.  The quota
   is checked last so a countdown or predicate failure never debits it;
   a successful charge debits [bytes] against the quota. *)
let charge t ~op ~addr ~bytes ~against_quota =
  match t.fault_plan with
  | None -> ()
  | Some p ->
      if p.Fault.countdown > 0 then begin
        p.Fault.countdown <- p.Fault.countdown - 1;
        if p.Fault.countdown = 0 then begin
          p.Fault.countdown <- p.Fault.rearm;
          inject t p ~op ~addr ~bytes Fault.Countdown
        end
      end;
      (match p.Fault.rng with
      | Some rng when Rng.chance rng p.Fault.probability ->
          inject t p ~op ~addr ~bytes Fault.Chance
      | Some _ | None -> ());
      (match p.Fault.addr_pred with
      | Some pred when pred addr -> inject t p ~op ~addr ~bytes Fault.Address
      | Some _ | None -> ());
      if against_quota then begin
        if p.Fault.quota_bytes >= 0 && p.Fault.charged_bytes + bytes > p.Fault.quota_bytes then
          inject t p ~op ~addr ~bytes Fault.Quota;
        p.Fault.charged_bytes <- p.Fault.charged_bytes + bytes
      end

let commit t ~addr ~bytes = charge t ~op:"commit" ~addr ~bytes ~against_quota:true

let uncommit t ~addr ~bytes =
  ignore addr;
  match t.fault_plan with
  | None -> ()
  | Some p -> p.Fault.charged_bytes <- max 0 (p.Fault.charged_bytes - bytes)

let overlaps a b =
  Addr.to_int (Segment.base a) < Addr.to_int (Segment.limit b)
  && Addr.to_int (Segment.base b) < Addr.to_int (Segment.limit a)

let insert t seg =
  Array.iter
    (fun existing ->
      if overlaps seg existing then
        invalid_arg
          (Format.asprintf "Mem.map: %a overlaps %a" Segment.pp seg Segment.pp existing))
    t.segs;
  let segs = Array.append t.segs [| seg |] in
  Array.sort (fun a b -> Addr.compare (Segment.base a) (Segment.base b)) segs;
  t.segs <- segs

let map t ~name ~kind ~base ~size =
  (* Mapping reserves address space; it does not count against the
     commit quota (pages are charged as the heap commits them). *)
  charge t ~op:"map" ~addr:base ~bytes:size ~against_quota:false;
  let seg = Segment.create ~name ~kind ~endian:t.endian ~base ~size in
  insert t seg;
  seg

let page = 0x1000

let map_anywhere t ~name ~kind ?(above = Addr.of_int page) ~size () =
  let size_rounded = (size + page - 1) / page * page in
  let candidate = ref (Addr.to_int (Addr.align_up above page)) in
  Array.iter
    (fun seg ->
      let lo = Addr.to_int (Segment.base seg) and hi = Addr.to_int (Segment.limit seg) in
      if !candidate + size_rounded > lo && !candidate < hi then
        candidate := Addr.to_int (Addr.align_up (Addr.of_int hi) page))
    t.segs;
  if !candidate + size_rounded > Addr.space_size then
    raise (Address_space_exhausted { requested = size });
  map t ~name ~kind ~base:(Addr.of_int !candidate) ~size

let unmap t seg =
  t.segs <- Array.of_list (List.filter (fun s -> s != seg) (Array.to_list t.segs))

let find t a =
  (* Binary search for the last segment with base <= a. *)
  let segs = t.segs in
  let n = Array.length segs in
  let rec go lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let seg = segs.(mid) in
      if Addr.to_int a < Addr.to_int (Segment.base seg) then go lo mid
      else if Segment.contains seg a then Some seg
      else go (mid + 1) hi
    end
  in
  go 0 n

let is_mapped t a = Option.is_some (find t a)

let get t a =
  match find t a with
  | Some seg -> seg
  | None -> invalid_arg (Printf.sprintf "Mem: unmapped address %s" (Addr.to_string a))

let read_word t a = Segment.read_word (get t a) a
let write_word t a v = Segment.write_word (get t a) a v
let read_u8 t a = Segment.read_u8 (get t a) a
let write_u8 t a v = Segment.write_u8 (get t a) a v

let pp ppf t =
  Format.fprintf ppf "@[<v>address space (%s-endian):@," (Endian.to_string t.endian);
  Array.iter (fun s -> Format.fprintf ppf "  %a@," Segment.pp s) t.segs;
  (match t.fault_plan with
  | Some p -> Format.fprintf ppf "  %a@," Fault.pp p
  | None -> ());
  Format.fprintf ppf "@]"
