type kind =
  | Text
  | Static_data
  | Stack
  | Heap
  | Other of string

type t = {
  name : string;
  kind : kind;
  endian : Endian.t;
  base : Addr.t;
  bytes : Bytes.t;
}

let create ~name ~kind ~endian ~base ~size =
  if size <= 0 then invalid_arg "Segment.create: size must be positive";
  if Addr.to_int base + size > Addr.space_size then
    invalid_arg "Segment.create: segment exceeds the 32-bit address space";
  { name; kind; endian; base; bytes = Bytes.make size '\000' }

let name t = t.name
let kind t = t.kind
let endian t = t.endian
let base t = t.base
let size t = Bytes.length t.bytes
let limit t = Addr.add t.base (size t)
let contains t a = Addr.in_range a ~lo:t.base ~hi:(limit t)

let offset t a =
  let off = Addr.diff a t.base in
  if off < 0 || off >= size t then
    invalid_arg
      (Printf.sprintf "Segment %s: address %s out of [%s,%s)" t.name (Addr.to_string a)
         (Addr.to_string t.base)
         (Addr.to_string (limit t)));
  off

let read_u8 t a = Char.code (Bytes.get t.bytes (offset t a))
let write_u8 t a v = Bytes.set t.bytes (offset t a) (Char.chr (v land 0xFF))

let check_span t a n =
  let off = offset t a in
  if off + n > size t then
    invalid_arg (Printf.sprintf "Segment %s: %d-byte access at %s crosses limit" t.name n (Addr.to_string a));
  off

let read_u16 t a =
  let off = check_span t a 2 in
  let v = Bytes.get_uint16_le t.bytes off in
  match t.endian with
  | Endian.Little -> v
  | Endian.Big -> Bytes.get_uint16_be t.bytes off

let write_u16 t a v =
  let off = check_span t a 2 in
  match t.endian with
  | Endian.Little -> Bytes.set_uint16_le t.bytes off (v land 0xFFFF)
  | Endian.Big -> Bytes.set_uint16_be t.bytes off (v land 0xFFFF)

let read_word t a =
  let off = check_span t a 4 in
  let v =
    match t.endian with
    | Endian.Little -> Bytes.get_int32_le t.bytes off
    | Endian.Big -> Bytes.get_int32_be t.bytes off
  in
  Int32.to_int v land 0xFFFFFFFF

let write_word t a v =
  let off = check_span t a 4 in
  let v = Int32.of_int (v land 0xFFFFFFFF) in
  match t.endian with
  | Endian.Little -> Bytes.set_int32_le t.bytes off v
  | Endian.Big -> Bytes.set_int32_be t.bytes off v

let fill t a ~len c =
  let off = check_span t a len in
  Bytes.fill t.bytes off len c

let zero_range t a ~len = fill t a ~len '\000'

let blit_string t a s =
  let off = check_span t a (String.length s) in
  Bytes.blit_string s 0 t.bytes off (String.length s)

let read_string t a ~len =
  let off = check_span t a len in
  Bytes.sub_string t.bytes off len

(* --- conservative-scan fast path ---------------------------------- *)

(* Unchecked 32-bit reads assembled from [Bytes.unsafe_get]: the scan
   loops validate the whole [lo, hi) range once (see [clamp_words]) and
   then touch every word without per-access bounds checks or [Int32]
   boxing. *)
let[@inline] unsafe_word_le bytes off =
  Char.code (Bytes.unsafe_get bytes off)
  lor (Char.code (Bytes.unsafe_get bytes (off + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get bytes (off + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get bytes (off + 3)) lsl 24)

let[@inline] unsafe_word_be bytes off =
  (Char.code (Bytes.unsafe_get bytes off) lsl 24)
  lor (Char.code (Bytes.unsafe_get bytes (off + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get bytes (off + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get bytes (off + 3))

let unsafe_bytes t = t.bytes

(* The single bounds check of a scan: clamp [lo, hi) to the segment and
   re-align [lo] upward afterwards, so that a clamp against an unaligned
   segment base can never yield word reads off the requested alignment
   grid (the grid is absolute: addresses congruent to 0 mod alignment). *)
let clamp_words t ~alignment ~lo ~hi =
  if alignment <> 1 && alignment <> 2 && alignment <> 4 then
    invalid_arg "Segment.clamp_words: alignment must be 1, 2 or 4";
  let lo = max (Addr.to_int lo) (Addr.to_int t.base) in
  let lo = Addr.to_int (Addr.align_up (Addr.of_int lo) alignment) in
  let hi = min (Addr.to_int hi) (Addr.to_int (limit t)) in
  (lo, hi)

let iter_words t ?(alignment = 4) ~lo ~hi f =
  let lo, hi = clamp_words t ~alignment ~lo ~hi in
  (* Hot path of conservative scanning: read straight out of the backing
     bytes without re-validating each address. *)
  let bytes = t.bytes in
  let base = Addr.to_int t.base in
  let is_little = Endian.equal t.endian Endian.Little in
  let a = ref lo in
  while !a + 4 <= hi do
    let off = !a - base in
    let v = if is_little then unsafe_word_le bytes off else unsafe_word_be bytes off in
    f !a v;
    a := !a + alignment
  done

let words t = size t / 4

let pp_kind ppf = function
  | Text -> Format.pp_print_string ppf "text"
  | Static_data -> Format.pp_print_string ppf "data"
  | Stack -> Format.pp_print_string ppf "stack"
  | Heap -> Format.pp_print_string ppf "heap"
  | Other s -> Format.pp_print_string ppf s

let pp ppf t =
  Format.fprintf ppf "%s[%a %s-endian %a..%a %d bytes]" t.name pp_kind t.kind
    (Endian.to_string t.endian) Addr.pp t.base Addr.pp (limit t) (size t)
