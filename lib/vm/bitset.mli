(** Fixed-size bit sets.

    Used for mark bits, object-allocation maps and the page blacklist —
    the paper recommends implementing the blacklist "as a bit array,
    indexed by page numbers". *)

type t

val create : int -> t
(** [create n] is a set over the universe [\[0, n)], initially empty. *)

val length : t -> int
(** Size of the universe. *)

val mem : t -> int -> bool

val add : t -> int -> unit

val unsafe_mem : t -> int -> bool
(** {!mem} without the bounds check — for hot paths that have already
    validated the index (e.g. against a page's object count). *)

val unsafe_add : t -> int -> unit
(** {!add} without the bounds check; same caller obligation. *)

val remove : t -> int -> unit

val set : t -> int -> bool -> unit

val clear : t -> unit
(** Remove every element. *)

val count : t -> int
(** Number of elements currently in the set. *)

val is_empty : t -> bool

val copy : t -> t

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every element of [src] to [dst].
    Universes must have equal size. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over members in increasing order. *)

val iter_set : t -> (int -> unit) -> unit
(** Same as {!iter} with the hot-path argument order: visits members in
    increasing order by scanning whole words and extracting trailing-zero
    runs, so sparse sets cost one test per word plus one step per member.
    Used by the sweeper and by mark-stack overflow recovery. *)

val iter_clear : t -> (int -> unit) -> unit
(** Visit the non-members of the universe [\[0, n)] in increasing
    order — the word-masked complement of {!iter_set}. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val exists_in_range : t -> lo:int -> hi:int -> bool
(** [exists_in_range t ~lo ~hi] is true when some member [i] satisfies
    [lo <= i < hi]. *)

val next_clear : t -> int -> int option
(** [next_clear t i] is the smallest [j >= i] not in the set, if any. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Multi-domain bit sets: the same 62-bit word layout over
    [int Atomic.t] cells, for structures that several marker domains
    update concurrently (shadow mark tables).  Set operations CAS whole
    words; {!Atomic.test_and_set} reports whether the calling domain
    flipped the bit, making "the winner scans the object" an
    exactly-once protocol. *)
module Atomic : sig
  type plain := t
  type t

  val create : int -> t
  (** [create n] is an empty concurrent set over [\[0, n)]. *)

  val length : t -> int
  val mem : t -> int -> bool

  val test_and_set : t -> int -> bool
  (** [test_and_set t i] sets bit [i] and returns [true] iff the bit was
      previously clear — i.e. iff this call (and no concurrent one) made
      the transition.  Lock-free (CAS loop on the containing word). *)

  val test_and_clear : t -> int -> bool
  (** [test_and_clear t i] clears bit [i] and returns [true] iff the bit
      was previously set — the inverse transition of {!test_and_set}.
      Lock-free (CAS loop on the containing word).  Used to roll back
      shadow mark bits owned by a crashed marker domain so a rescan can
      win them again. *)

  val unsafe_mem : t -> int -> bool
  (** {!mem} without the bounds check — caller has validated the index. *)

  val unsafe_test_and_set : t -> int -> bool
  (** {!test_and_set} without the bounds check; same caller obligation. *)

  val clear : t -> unit
  (** Not atomic as a whole — callers must quiesce writers first. *)

  val count : t -> int
  val is_empty : t -> bool

  val iter_set : t -> (int -> unit) -> unit
  (** Visits members in increasing order.  Under concurrent writers the
      traversal sees a per-word snapshot: every bit set before the call
      is visited; concurrently-added bits may or may not be. *)

  val blit_to : t -> dst:plain -> unit
  (** Overwrite the plain set [dst] with this set's contents (universes
      must match).  Serial: callers must quiesce writers first.  Used to
      publish a shadow mark table into the sweeper-visible mark words. *)

  val of_plain : plain -> t
  val to_plain : t -> plain
end
