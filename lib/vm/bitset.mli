(** Fixed-size bit sets.

    Used for mark bits, object-allocation maps and the page blacklist —
    the paper recommends implementing the blacklist "as a bit array,
    indexed by page numbers". *)

type t

val create : int -> t
(** [create n] is a set over the universe [\[0, n)], initially empty. *)

val length : t -> int
(** Size of the universe. *)

val mem : t -> int -> bool

val add : t -> int -> unit

val unsafe_mem : t -> int -> bool
(** {!mem} without the bounds check — for hot paths that have already
    validated the index (e.g. against a page's object count). *)

val unsafe_add : t -> int -> unit
(** {!add} without the bounds check; same caller obligation. *)

val remove : t -> int -> unit

val set : t -> int -> bool -> unit

val clear : t -> unit
(** Remove every element. *)

val count : t -> int
(** Number of elements currently in the set. *)

val is_empty : t -> bool

val copy : t -> t

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every element of [src] to [dst].
    Universes must have equal size. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over members in increasing order. *)

val iter_set : t -> (int -> unit) -> unit
(** Same as {!iter} with the hot-path argument order: visits members in
    increasing order by scanning whole words and extracting trailing-zero
    runs, so sparse sets cost one test per word plus one step per member.
    Used by the sweeper and by mark-stack overflow recovery. *)

val iter_clear : t -> (int -> unit) -> unit
(** Visit the non-members of the universe [\[0, n)] in increasing
    order — the word-masked complement of {!iter_set}. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val exists_in_range : t -> lo:int -> hi:int -> bool
(** [exists_in_range t ~lo ~hi] is true when some member [i] satisfies
    [lo <= i < hi]. *)

val next_clear : t -> int -> int option
(** [next_clear t i] is the smallest [j >= i] not in the set, if any. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
