type t = {
  n : int;
  words : int array; (* 62 usable bits per word to stay in the immediate range *)
}

let bits_per_word = 62
let nwords n = (n + bits_per_word - 1) / bits_per_word
let create n = { n; words = Array.make (max 1 (nwords n)) 0 }
let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.n)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

(* Hot-path variants: the caller has already established 0 <= i < n
   (e.g. an object index validated against the page's object count). *)
let[@inline] unsafe_mem t i =
  Array.unsafe_get t.words (i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let[@inline] unsafe_add t i =
  let w = i / bits_per_word in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w lor (1 lsl (i mod bits_per_word)))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let set t i b = if b then add t i else remove t i
let clear t = Array.fill t.words 0 (Array.length t.words) 0

(* Kernighan's loop: one iteration per set bit, not per bit position. *)
let popcount x =
  let n = ref 0 in
  let x = ref x in
  while !x <> 0 do
    incr n;
    x := !x land (!x - 1)
  done;
  !n

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words
let copy t = { n = t.n; words = Array.copy t.words }

let union_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: universe mismatch";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

(* Index of the lowest set bit of a non-zero word, by binary search —
   constant work instead of a walk over up to 62 bit positions. *)
let[@inline] ntz x =
  let n = ref 0 in
  let x = ref x in
  if !x land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    x := !x lsr 32
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then n := !n + 1;
  !n

(* Visit members in ascending order: whole zero words are skipped with
   one comparison, and each set bit costs one trailing-zero extraction
   ([word land (word - 1)] strips the bit just visited). *)
let iter_set t f =
  let words = t.words in
  for w = 0 to Array.length words - 1 do
    let word = ref (Array.unsafe_get words w) in
    if !word <> 0 then begin
      let base = w * bits_per_word in
      while !word <> 0 do
        f (base + ntz !word);
        word := !word land (!word - 1)
      done
    end
  done

(* Members above [n] cannot exist (add bounds-checks), so no filtering
   against [t.n] is needed here. *)
let iter f t = iter_set t f

let iter_clear t f =
  let words = t.words in
  let last = Array.length words - 1 in
  for w = 0 to last do
    (* complement within the word's valid span *)
    let lo = w * bits_per_word in
    let span = min bits_per_word (t.n - lo) in
    if span > 0 then begin
      let mask = if span = bits_per_word then -1 lsr 1 else (1 lsl span) - 1 in
      let word = ref (lnot (Array.unsafe_get words w) land mask) in
      while !word <> 0 do
        f (lo + ntz !word);
        word := !word land (!word - 1)
      done
    end
  done

let fold f init t =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) t;
  !acc

(* [lo, hi) restricted to a word: bits [a, b) of the word's value. *)
let[@inline] range_mask a b = if b - a >= bits_per_word then -1 lsr 1 else ((1 lsl (b - a)) - 1) lsl a

let exists_in_range t ~lo ~hi =
  let lo = max lo 0 and hi = min hi t.n in
  if lo >= hi then false
  else begin
    let w_lo = lo / bits_per_word and w_hi = (hi - 1) / bits_per_word in
    let found = ref false in
    let w = ref w_lo in
    while (not !found) && !w <= w_hi do
      let a = if !w = w_lo then lo - (w_lo * bits_per_word) else 0 in
      let b = if !w = w_hi then hi - (w_hi * bits_per_word) else bits_per_word in
      if t.words.(!w) land range_mask a b <> 0 then found := true;
      incr w
    done;
    !found
  end

let next_clear t i =
  let i = max i 0 in
  if i >= t.n then None
  else begin
    let result = ref None in
    let w = ref (i / bits_per_word) in
    let nw = Array.length t.words in
    let first_mask = range_mask (i - (!w * bits_per_word)) bits_per_word in
    let probe w_index mask =
      (* clear bits of the word, restricted to positions of interest *)
      let clear = lnot t.words.(w_index) land mask in
      if clear <> 0 then begin
        let j = (w_index * bits_per_word) + ntz clear in
        if j < t.n then result := Some j else result := None;
        true
      end
      else false
    in
    if not (probe !w first_mask) then begin
      incr w;
      while !result = None && !w < nw do
        if not (probe !w (-1 lsr 1)) then incr w
        else if !result = None then w := nw (* past-n clear bit: stop *)
      done
    end;
    !result
  end

let equal a b = a.n = b.n && Array.for_all2 ( = ) a.words b.words

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun i ->
      if not !first then Format.fprintf ppf ",";
      first := false;
      Format.fprintf ppf "%d" i)
    t;
  Format.fprintf ppf "}"

(* Multi-domain variant: same 62-bit word layout over [int Atomic.t]
   cells.  OCaml 5.1 has no atomic arrays, so each word is its own
   atomic box; set operations CAS the whole word.  Word values are
   immediates, so reads never tear. *)
module Atomic = struct
  type plain = t

  type t = {
    n : int;
    words : int Stdlib.Atomic.t array;
  }

  let create n = { n; words = Array.init (max 1 (nwords n)) (fun _ -> Stdlib.Atomic.make 0) }
  let length t = t.n

  let check t i =
    if i < 0 || i >= t.n then
      invalid_arg (Printf.sprintf "Bitset.Atomic: index %d out of [0,%d)" i t.n)

  let mem t i =
    check t i;
    Stdlib.Atomic.get t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

  (* The mark-bit primitive: returns [true] iff this call flipped the
     bit from clear to set.  Exactly one domain wins each bit, which is
     what makes "the winner scans the object" an exactly-once protocol. *)
  let test_and_set t i =
    check t i;
    let cell = Array.unsafe_get t.words (i / bits_per_word) in
    let bit = 1 lsl (i mod bits_per_word) in
    let rec go () =
      let old = Stdlib.Atomic.get cell in
      if old land bit <> 0 then false
      else if Stdlib.Atomic.compare_and_set cell old (old lor bit) then true
      else go ()
    in
    go ()

  (* Inverse of [test_and_set]: returns [true] iff this call flipped the
     bit from set to clear.  Used by marker-domain crash recovery to
     roll back shadow bits whose owning scan never completed, so the
     re-discovery pass can win them again. *)
  let test_and_clear t i =
    check t i;
    let cell = Array.unsafe_get t.words (i / bits_per_word) in
    let bit = 1 lsl (i mod bits_per_word) in
    let rec go () =
      let old = Stdlib.Atomic.get cell in
      if old land bit = 0 then false
      else if Stdlib.Atomic.compare_and_set cell old (old land lnot bit) then true
      else go ()
    in
    go ()

  let[@inline] unsafe_mem t i =
    Stdlib.Atomic.get (Array.unsafe_get t.words (i / bits_per_word))
    land (1 lsl (i mod bits_per_word))
    <> 0

  let[@inline] unsafe_test_and_set t i =
    let cell = Array.unsafe_get t.words (i / bits_per_word) in
    let bit = 1 lsl (i mod bits_per_word) in
    let rec go () =
      let old = Stdlib.Atomic.get cell in
      if old land bit <> 0 then false
      else if Stdlib.Atomic.compare_and_set cell old (old lor bit) then true
      else go ()
    in
    go ()

  let clear t = Array.iter (fun cell -> Stdlib.Atomic.set cell 0) t.words

  let count t =
    Array.fold_left (fun acc cell -> acc + popcount (Stdlib.Atomic.get cell)) 0 t.words

  let is_empty t = Array.for_all (fun cell -> Stdlib.Atomic.get cell = 0) t.words

  let iter_set t f =
    let words = t.words in
    for w = 0 to Array.length words - 1 do
      let word = ref (Stdlib.Atomic.get (Array.unsafe_get words w)) in
      if !word <> 0 then begin
        let base = w * bits_per_word in
        while !word <> 0 do
          f (base + ntz !word);
          word := !word land (!word - 1)
        done
      end
    done

  (* Serial write-back of a shadow table into the plain bitset it
     mirrors — used after a parallel mark to publish the atomic shadow
     marks into the real (sweeper-visible) mark words.  Overwrites
     [dst] entirely. *)
  let blit_to t ~(dst : plain) =
    if dst.n <> t.n then invalid_arg "Bitset.Atomic.blit_to: universe mismatch";
    Array.iteri (fun i cell -> dst.words.(i) <- Stdlib.Atomic.get cell) t.words

  let of_plain (src : plain) =
    let t = create src.n in
    Array.iteri (fun i w -> Stdlib.Atomic.set t.words.(i) w) src.words;
    t

  let to_plain t : plain =
    let dst : plain = { n = t.n; words = Array.make (Array.length t.words) 0 } in
    blit_to t ~dst;
    dst
end
