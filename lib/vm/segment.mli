(** A contiguous region of the simulated address space.

    Segments model the pieces of a process image the paper's collector
    scans: text, static data, bss, stack, and the heap itself.  Each is
    backed by OCaml [Bytes] and provides byte- and word-granularity
    access at simulated addresses, honouring the machine's byte order —
    essential for the unaligned-scan experiments (paper figure 1). *)

type kind =
  | Text  (** program code; never scanned for roots *)
  | Static_data  (** initialized data + bss; scanned conservatively *)
  | Stack  (** machine stack; scanned conservatively *)
  | Heap  (** collector-managed heap *)
  | Other of string

type t

val create : name:string -> kind:kind -> endian:Endian.t -> base:Addr.t -> size:int -> t
(** A zero-filled segment of [size] bytes starting at [base].
    [base + size] must not exceed the address space. *)

val name : t -> string
val kind : t -> kind
val endian : t -> Endian.t
val base : t -> Addr.t
val size : t -> int
val limit : t -> Addr.t
(** One past the last byte, i.e. [base + size]. *)

val contains : t -> Addr.t -> bool

val read_u8 : t -> Addr.t -> int
val write_u8 : t -> Addr.t -> int -> unit

val read_u16 : t -> Addr.t -> int
val write_u16 : t -> Addr.t -> int -> unit

val read_word : t -> Addr.t -> int
(** Read the 32-bit word at the given address (any byte alignment),
    assembled according to the segment's endianness. *)

val write_word : t -> Addr.t -> int -> unit

val fill : t -> Addr.t -> len:int -> char -> unit

val zero_range : t -> Addr.t -> len:int -> unit

val blit_string : t -> Addr.t -> string -> unit
(** Copy a raw byte string into the segment. *)

val read_string : t -> Addr.t -> len:int -> string

val iter_words : t -> ?alignment:int -> lo:Addr.t -> hi:Addr.t -> (Addr.t -> int -> unit) -> unit
(** [iter_words t ~alignment ~lo ~hi f] applies [f addr word] to every
    32-bit word whose first byte lies in [\[lo, hi - 4\]] at the given
    alignment granularity (default 4; 2 and 1 model collectors forced to
    consider unaligned pointers).  [lo] is clamped to the segment and
    then rounded up to the requested alignment (the alignment grid is
    absolute), so a clamp against an unaligned segment base cannot
    produce misaligned reads. *)

(** {1 Scan fast path}

    The pieces from which closure-free scan loops are built (see
    {!Cgc.Mark}): clamp the range once, then read words straight out of
    the backing bytes with no per-word bounds check or boxing. *)

val clamp_words : t -> alignment:int -> lo:Addr.t -> hi:Addr.t -> int * int
(** [(lo', hi')]: the scan range clamped to the segment, with [lo']
    re-aligned upward after clamping.  Words at [lo', lo' + alignment,
    ...] with [addr + 4 <= hi'] are all safely readable — this is the
    one bounds check a whole-range scan needs. *)

val unsafe_bytes : t -> Bytes.t
(** The backing store.  Offsets are [addr - base t].  Only for scan
    loops that have validated their range with {!clamp_words}. *)

val unsafe_word_le : Bytes.t -> int -> int
(** Unchecked little-endian 32-bit read at a byte offset, assembled from
    [Bytes.unsafe_get]. *)

val unsafe_word_be : Bytes.t -> int -> int
(** Unchecked big-endian 32-bit read at a byte offset. *)

val words : t -> int
(** Number of aligned words in the segment. *)

val pp : Format.formatter -> t -> unit
