(** Chase-Lev work-stealing deque of [int]s.

    Each parallel marker domain owns one deque as its private mark
    stack: the owner pushes and pops at the bottom (LIFO, preserving the
    serial tracer's depth-first scanning order), idle domains steal the
    oldest entry from the top (FIFO, exporting the broadest pending
    subtrees).  Lock-free; single owner, any number of thieves. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 256) is rounded up to a power of two; the
    buffer grows automatically, so it only sets the initial size. *)

val push : t -> int -> unit
(** Owner only. *)

val pop : t -> int option
(** Owner only.  Newest element, or [None] when empty. *)

val steal : t -> int option
(** Any domain.  Oldest element; [None] when empty or when the CAS race
    with the owner/another thief is lost (callers just move on). *)

val drain : t -> (int -> unit) -> int
(** [drain t f] steals elements from the top until the deque reads
    empty, calling [f] on each, and returns the number drained by this
    caller.  Any domain; safe against concurrent thieves (each claim is
    a {!steal}), but only guaranteed to leave the deque empty when the
    owner has stopped pushing — the intended use is survivors reclaiming
    the deque of a marker domain declared dead, whose owner side is
    fenced and will never push again. *)

val size : t -> int
(** Owner-side estimate; concurrent steals can only make the true size
    smaller.  Used for the mark-stack-limit overflow check. *)

val is_empty : t -> bool
