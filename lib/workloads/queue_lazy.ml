open Cgc_vm
module Builder = Cgc_mutator.Builder

type result = {
  ops : int;
  window : int;
  clear_links : bool;
  false_ref_at : int;
  dead_nodes_retained : int;
  live_window_nodes : int;
}

let run ?(seed = 7) ?prepare ?(window = 8) ?(false_ref_at = 10) ~clear_links ops =
  if ops <= false_ref_at + window then
    invalid_arg "Queue_lazy.run: ops must exceed false_ref_at + window";
  let h = Harness.create ~seed () in
  (match prepare with None -> () | Some f -> f h);
  let gc = h.Harness.gc in
  let q = Builder.queue_create h.Harness.machine in
  (* the queue header is the structure's real (and only) root *)
  Harness.set_root h 0 (Addr.to_int (Builder.queue_header q));
  (* every node carries a finalization token, so reclamation is counted
     by identity rather than by address (addresses get reused) *)
  let finalized = ref 0 in
  let drain () = finalized := !finalized + List.length (Cgc.Gc.drain_finalized gc) in
  for i = 1 to ops do
    let node = Builder.queue_push q i in
    Cgc.Gc.add_finalizer gc node ~token:(string_of_int i);
    if i = false_ref_at then
      (* a stale integer that happens to name this node *)
      Harness.set_root h 1 (Addr.to_int node);
    while Builder.queue_length q > window do
      ignore (Builder.queue_pop ~clear_link:clear_links q)
    done
  done;
  Cgc.Gc.collect gc;
  drain ();
  let live_window = Harness.count_allocated h (Builder.queue_nodes q) in
  let dead_total = ops - live_window in
  {
    ops;
    window;
    clear_links;
    false_ref_at;
    dead_nodes_retained = dead_total - !finalized;
    live_window_nodes = live_window;
  }

let run_stream ?seed ?(false_ref_at = 10) ~clear_links ops =
  run ?seed ~window:1 ~false_ref_at ~clear_links ops

let growth_series ?seed ?window ~clear_links ops_list =
  List.map (fun ops -> run ?seed ?window ~clear_links ops) ops_list

let pp ppf r =
  Format.fprintf ppf "%d ops, window %d, %s: %d dead nodes retained (live window %d)" r.ops
    r.window
    (if r.clear_links then "links cleared" else "links kept")
    r.dead_nodes_retained r.live_window_nodes
