(** Section 3.1: the list-reversal stack-hygiene experiment.

    "A simple program (compiled unoptimized on a SPARC) that recursively
    and nondestructively reverses a 1000 element list 1000 times
    resulted in a maximum of between 40,000 and 100,000 apparently
    accessible cons-cells at one point.  With a very cheap
    stack-clearing algorithm added, we never saw the maximum exceed
    18,000 ...  The optimized version of the program never resulted in
    many more than 2000 cons-cells reported as accessible ... the list
    reversal routine is tail recursive, and was optimized to a loop."

    Modes:
    - [Careless]: deep naive recursion, no stack hygiene at all;
    - [Cleared]: same recursion, with the collector's cheap periodic
      clearing of the dead stack;
    - [Optimized]: the tail-recursive accumulator version, compiled to a
      loop (constant stack). *)

type mode =
  | Careless
  | Cleared
  | Optimized

type result = {
  mode : mode;
  elements : int;
  iterations : int;
  max_live_cells : int;  (** max cons cells reported accessible at any collection *)
  final_live_cells : int;
  cells_allocated : int;
  collections : int;
}

val run :
  ?seed:int -> ?prepare:(Harness.t -> unit) -> mode -> elements:int -> iterations:int -> result
(** [prepare] runs on the fresh harness before any allocation — the
    hook a trace recorder attaches through. *)

val mode_name : mode -> string
val pp : Format.formatter -> result -> unit
