open Cgc_vm

type t = {
  mem : Mem.t;
  data : Segment.t;
  stack : Segment.t;
  gc : Cgc.Gc.t;
  machine : Cgc_mutator.Machine.t;
}

let create ?(seed = 7) ?(endian = Endian.Little) ?config ?machine_config ?(heap_kb = 4096) () =
  let config =
    match config with
    | Some c -> c
    | None -> { Cgc.Config.default with Cgc.Config.initial_pages = 16 }
  in
  let mem = Mem.create ~endian () in
  let data =
    Mem.map mem ~name:"roots" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000
  in
  let stack =
    Mem.map mem ~name:"stack" ~kind:Segment.Stack ~base:(Addr.of_int 0xEFF00000) ~size:0x40000
  in
  let gc =
    Cgc.Gc.create ~config mem ~base:(Addr.of_int 0x400000) ~max_bytes:(heap_kb * 1024) ()
  in
  Cgc.Gc.add_static_root gc ~lo:(Segment.base data) ~hi:(Segment.limit data) ~label:"roots";
  let machine = Cgc_mutator.Machine.create ?config:machine_config ~seed mem ~stack ~gc in
  { mem; data; stack; gc; machine }

let root_slot t i = Addr.add (Segment.base t.data) (4 * i)
let set_root t i v = Cgc_mutator.Machine.write_root_word t.machine t.data (root_slot t i) v
let get_root t i = Cgc_mutator.Machine.read_root_word t.machine t.data (root_slot t i)
let clear_roots_area t = Segment.zero_range t.data (Segment.base t.data) ~len:(Segment.size t.data)

let count_allocated t bases =
  List.fold_left (fun acc a -> if Cgc.Gc.is_allocated t.gc a then acc + 1 else acc) 0 bases
