module Config = Cgc.Config

type failure =
  | Blacklist_starved
  | Out_of_pages
  | Os_refused

let failure_to_string = function
  | Blacklist_starved -> "blacklist-starved"
  | Out_of_pages -> "out-of-pages"
  | Os_refused -> "os-refused"

(* Collapse the collector's diagnosis into the probe's three buckets.
   [blacklist_starved] wins: room existed, the blacklist vetoed it —
   observation 7's failure mode, the one this workload exists to show. *)
let classify (d : Cgc.Gc.oom_diagnosis) =
  if d.Cgc.Gc.blacklist_starved then Blacklist_starved
  else if d.Cgc.Gc.os_refused then Os_refused
  else Out_of_pages

type probe = {
  size_kb : int;
  anywhere_ok : bool;
  anywhere_failure : failure option;
  first_page_ok : bool;
  first_page_failure : failure option;
}

type result = {
  black_pages : int;
  heap_pages : int;
  probes : probe list;
  largest_anywhere_kb : int;
  largest_first_page_kb : int;
}

let try_place ~seed ~platform ~large_validity ~size_kb =
  let platform =
    {
      platform with
      Platform.gc_tweak =
        (fun c ->
          {
            (platform.Platform.gc_tweak c) with
            Config.large_validity;
            interior_pointers = true;
            blacklisting = true;
          });
    }
  in
  (* modest reserve: the denser the blacklist relative to the reserve,
     the harder large placement gets — as on the real SPARC *)
  let env = Platform.build_env ~seed ~blacklisting:true ~heap_max:(8 * 1024 * 1024) platform in
  let gc = env.Platform.gc in
  (* startup collection populates the blacklist before any allocation *)
  Cgc.Gc.collect gc;
  Cgc.Gc.set_auto_collect gc false;
  let ok, why =
    match Cgc.Gc.allocate gc (size_kb * 1024) with
    | (_ : Cgc_vm.Addr.t) -> (true, None)
    | exception Cgc.Gc.Out_of_memory d -> (false, Some (classify d))
  in
  (ok, why, Cgc.Gc.blacklisted_pages gc, Cgc.Heap.n_pages (Cgc.Gc.heap gc))

let run ?(seed = 1993) ?(platform = Platform.sparc_static ~optimized:false) ~sizes_kb () =
  let black = ref 0 and pages = ref 0 in
  let probes =
    List.map
      (fun size_kb ->
        let anywhere_ok, anywhere_failure, b, p =
          try_place ~seed ~platform ~large_validity:Config.Anywhere ~size_kb
        in
        let first_page_ok, first_page_failure, _, _ =
          try_place ~seed ~platform ~large_validity:Config.First_page_only ~size_kb
        in
        black := b;
        pages := p;
        { size_kb; anywhere_ok; anywhere_failure; first_page_ok; first_page_failure })
      sizes_kb
  in
  let largest pred =
    List.fold_left (fun acc p -> if pred p then max acc p.size_kb else acc) 0 probes
  in
  {
    black_pages = !black;
    heap_pages = !pages;
    probes;
    largest_anywhere_kb = largest (fun p -> p.anywhere_ok);
    largest_first_page_kb = largest (fun p -> p.first_page_ok);
  }

let outcome ok why =
  match (ok, why) with
  | true, _ -> "ok"
  | false, Some f -> Printf.sprintf "FAIL (%s)" (failure_to_string f)
  | false, None -> "FAIL"

let pp ppf r =
  Format.fprintf ppf "@[<v>blacklist: %d of %d heap pages@," r.black_pages r.heap_pages;
  List.iter
    (fun p ->
      Format.fprintf ppf "  %5d KB: anywhere=%-24s first-page-only=%s@," p.size_kb
        (outcome p.anywhere_ok p.anywhere_failure)
        (outcome p.first_page_ok p.first_page_failure))
    r.probes;
  Format.fprintf ppf "largest placeable: %d KB (anywhere), %d KB (first-page-only)@]"
    r.largest_anywhere_kb r.largest_first_page_kb
