open Cgc_vm
module Builder = Cgc_mutator.Builder

type representation =
  | Embedded
  | Separate

type result = {
  representation : representation;
  rows : int;
  cols : int;
  total_cells : int;
  retained_cells : int;
  retained_fraction : float;
  injected_at : Addr.t;
}

let build h representation ~rows ~cols =
  let m = h.Harness.machine in
  match representation with
  | Embedded -> Builder.grid_embedded m ~rows ~cols
  | Separate -> Builder.grid_separate m ~rows ~cols

let cells_of_grid (g : Builder.grid) =
  Array.to_list g.Builder.vertices @ Array.to_list g.Builder.spine

let run_one ?(seed = 7) ?prepare representation ~rows ~cols ~target =
  let h = Harness.create ~seed () in
  (match prepare with None -> () | Some f -> f h);
  let g = build h representation ~rows ~cols in
  (* root it, verify it is all live, then drop it; builder leftovers in
     the machine registers must not count as roots here *)
  Cgc_mutator.Machine.clear_registers h.Harness.machine;
  Harness.set_root h 0 (Addr.to_int g.Builder.headers);
  Cgc.Gc.collect h.Harness.gc;
  let cells = cells_of_grid g in
  let total = List.length cells in
  assert (Harness.count_allocated h cells = total);
  Harness.set_root h 0 0;
  let target = target mod total in
  let victim = List.nth cells target in
  Harness.set_root h 1 (Addr.to_int victim);
  Cgc.Gc.collect h.Harness.gc;
  let retained = Harness.count_allocated h cells in
  {
    representation;
    rows;
    cols;
    total_cells = total;
    retained_cells = retained;
    retained_fraction = float_of_int retained /. float_of_int total;
    injected_at = victim;
  }

type summary = {
  s_representation : representation;
  s_rows : int;
  s_cols : int;
  trials : int;
  mean_fraction : float;
  max_fraction : float;
  min_fraction : float;
}

let run_trials ?(seed = 7) representation ~rows ~cols ~trials =
  if trials < 1 then invalid_arg "Grid.run_trials: need at least one trial";
  let rng = Rng.create seed in
  let fractions =
    List.init trials (fun i ->
        let r =
          run_one ~seed:(seed + i) representation ~rows ~cols
            ~target:(Rng.int rng (rows * cols * 3))
        in
        r.retained_fraction)
  in
  {
    s_representation = representation;
    s_rows = rows;
    s_cols = cols;
    trials;
    mean_fraction = List.fold_left ( +. ) 0. fractions /. float_of_int trials;
    max_fraction = List.fold_left max 0. fractions;
    min_fraction = List.fold_left min 1. fractions;
  }

let name = function
  | Embedded -> "embedded"
  | Separate -> "separate"

let pp_summary ppf s =
  Format.fprintf ppf "%-9s %dx%d grid, %d trials: mean %.1f%% retained (min %.1f%%, max %.1f%%)"
    (name s.s_representation) s.s_rows s.s_cols s.trials (100. *. s.mean_fraction)
    (100. *. s.min_fraction) (100. *. s.max_fraction)
