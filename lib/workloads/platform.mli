(** Platform presets for the Table 1 experiments.

    Appendix B of the paper explains why each platform retained what it
    did; a preset packages those causes as simulation parameters:

    - {b SPARC (static)}: SunOS 4.1.1 statically linked.  "The static
      version of the C library contains several large arrays (totalling
      more than 35K) of seemingly random integer values, apparently used
      for base conversion in the IO library"; strings "are not
      word-aligned by the compiler we used"; register windows are not
      cleared.  The sbrk-style layout puts the heap at low addresses
      where those integer values collide with it.
    - {b SPARC (dynamic)}: the shared C library keeps those arrays out
      of the image; only modest static pollution remains.
    - {b SGI (static)}: IRIX 4.0.x, big-endian MIPS, aligned strings;
      "the high variation in retained storage ... is presumably due to
      varying register contents after system call or trap returns".
    - {b OS/2 (static)}: 80486, C Set/2; "program T was modified to only
      allocate 100 lists totalling 10 MB, due to memory constraints";
      "measurements appeared completely reproducible".
    - {b PCR}: Cedar world on a SPARCstation 2; "each list consisted of
      12500 8-byte cells"; 1.5-13 MB of other live data; "the PCR
      collector does not attempt to clear thread stacks". *)

open Cgc_vm

(** How the static-data pollution is composed. *)
type pollution = {
  conversion_table_words : int;
      (** words of base-conversion-style constants (d * 10^k, d * 2^k):
          many land in a low heap's address range *)
  library_offset_words : int;
      (** words of library tables drawn uniformly from
          [\[0, library_band_bytes)] — sizes, offsets, saved break
          values, "variables that basically contained the heap size" *)
  library_band_bytes : int;
  packed_string_bytes : int;
      (** unaligned back-to-back C strings; on a big-endian machine the
          trailing NUL plus the next string's first bytes parse as small
          word values (appendix B, SPARC) *)
  aligned_string_bytes : int;  (** word-aligned strings (SGI-style) *)
  random_words : int;  (** words uniform over the whole 32-bit space *)
  io_buffer_bytes : int;  (** zero-filled buffer space (harmless) *)
  churn_words : int;
      (** static words rewritten with fresh values {e while the program
          runs} — appendix B's residual-leak source ("statically
          allocated variables that changed occasionally, but not
          frequently"); these arrive too late for the blacklist to steer
          allocation away *)
}

module Machine = Cgc_mutator.Machine

val no_pollution : pollution
(** All-zero composition — a clean static segment, for control runs. *)

type t = {
  name : string;
  description : string;
  endian : Endian.t;
  layout : Layout.t;
  scan_alignment : int;
      (** 1 when the compiler does not word-align pointers in scanned
          data, else 4 *)
  pollution : pollution;
  machine_config : Machine.config;
      (** frame and register behaviour: optimization level, register
          residue, kernel-call noise (the paper's non-reproducibility),
          and whether the collector clears dead stack *)
  lists : int;  (** program T: number of lists *)
  nodes_per_list : int;
  cell_bytes : int;
  other_live_bytes : int;  (** PCR: pre-existing live data in the world *)
  gc_tweak : Cgc.Config.t -> Cgc.Config.t;
      (** final adjustments to the collector configuration *)
}

val sparc_static : optimized:bool -> t
val sparc_dynamic : optimized:bool -> t
val sgi_static : optimized:bool -> t
val os2_static : optimized:bool -> t
val pcr : t

val clean : ?machine_config:Machine.config -> unit -> t
(** Not a table-1 row: a deterministic, pollution- and noise-free
    environment (small lists, little-endian, word-aligned scanning) in
    which every retained byte is attributable to the mutator program
    itself.  Trace-based analysis cross-validates against runs on this
    platform.  Default machine configuration: {!Machine.hygienic_config}. *)

val all : t list
(** The nine rows of table 1 (PCR is a single "mixed" row). *)

val by_name : string -> t option
(** Lookup by row name, e.g. ["sparc-static-opt"]. *)

val names : string list

(** {1 Environment construction} *)

type env = {
  mem : Mem.t;
  data : Segment.t;  (** static data segment, registered as a root *)
  stack : Segment.t;
  gc : Cgc.Gc.t;
  machine : Machine.t;
  globals_base : Addr.t;
      (** start of the clean area inside [data] reserved for the
          workload's own global variables (e.g. program T's [a\[\]]) *)
  globals_words : int;
}

val build_env : ?seed:int -> ?blacklisting:bool -> ?heap_max:int -> t -> env
(** Materialize the platform: map the layout, fill the data segment with
    the configured pollution, create the collector (with the platform's
    scan alignment and the requested blacklisting mode) and the machine,
    and register the data segment, machine stack and registers as
    roots. *)

val conversion_value : Cgc_vm.Rng.t -> int
(** One sample of the integer-like static-data distribution (powers of
    ten / two with digit noise) — shared with the section 2 studies. *)

val churn : env -> t -> Cgc_vm.Rng.t -> unit
(** Rewrite [churn_words] words of the polluted static area with fresh
    conversion-style values (the occasionally-changing static variables
    of appendix B). *)

val scale : ?lists:int -> ?nodes_per_list:int -> t -> t
(** Override program T's size (for quick runs). *)

val pp : Format.formatter -> t -> unit
