open Cgc_vm
module Machine = Cgc_mutator.Machine
module Builder = Cgc_mutator.Builder
module Generational = Cgc.Generational

type hygiene =
  | Clean
  | Careless

type result = {
  hygiene : hygiene;
  rounds : int;
  batch : int;
  live_set_bytes : int;
  promoted_bytes : int;
  promoted_pages : int;
  minor_collections : int;
  garbage_promoted_bytes : int;
}

(* a small long-lived working set that legitimately deserves promotion *)
let live_cells = 200

let machine_config_of = function
  | Clean ->
      {
        Machine.default_config with
        Machine.clear_frames_on_entry = true;
        clear_frames_on_exit = true;
        allocator_self_cleanup = true;
        frame_padding = 2;
      }
  | Careless -> Machine.careless_config

let run ?(seed = 7) ?(batch = 400) hygiene ~rounds =
  let h = Harness.create ~seed ~machine_config:(machine_config_of hygiene) ~heap_kb:8192 () in
  let gc = h.Harness.gc in
  Cgc.Gc.set_auto_collect gc false;
  let gen = Generational.create ~promote_after:2 gc in
  let m = h.Harness.machine in
  let live = Builder.list_of m (List.init live_cells Fun.id) in
  Harness.set_root h 0 (Addr.to_int live);
  for _ = 1 to rounds do
    (* a batch of short-lived data built and dropped inside one frame *)
    Machine.call m ~slots:4 (fun frame ->
        let temp = Builder.list_of m (List.init batch Fun.id) in
        Machine.set_local frame 0 (Addr.to_int temp));
    (match hygiene with
    | Clean -> Machine.clear_registers m
    | Careless -> ());
    Generational.minor gen
  done;
  let s = Generational.stats gen in
  let live_set_bytes = live_cells * 8 in
  {
    hygiene;
    rounds;
    batch;
    live_set_bytes;
    promoted_bytes = s.Generational.promoted_bytes;
    promoted_pages = s.Generational.promoted_pages;
    minor_collections = s.Generational.minor_collections;
    garbage_promoted_bytes = max 0 (s.Generational.promoted_bytes - live_set_bytes);
  }

(* --- the promotion ceiling ---------------------------------------- *)

type ceiling_point = {
  cp_promote_after : int;
  cp_promoted_bytes : int;
  cp_promoted_pages : int;
  cp_dirty_rescans : int;
}

type ceiling = {
  c_hygiene : hygiene;
  c_rounds : int;
  c_batch : int;
  c_points : ceiling_point list;
}

(* Sweep the tenure threshold and measure promotion inside a clean
   window: warm up until the legitimate live set has tenured, zero the
   counters ([Generational.reset_stats]), then run the measured rounds.
   Everything promoted inside the window is promoted garbage — the live
   set is already old when the window opens.  Raising the threshold is
   the standard defense against premature tenuring; section 3.1's point
   is that stray stack words defeat it: a careless machine keeps dead
   batches apparently live across arbitrarily many consecutive minor
   collections, so the in-window figure never reaches the hygienic
   machine's zero. *)
let ceiling ?(seed = 7) ?(batch = 400) ?(thresholds = [ 1; 2; 4; 8 ]) hygiene ~rounds =
  let point promote_after =
    let h = Harness.create ~seed ~machine_config:(machine_config_of hygiene) ~heap_kb:8192 () in
    let gc = h.Harness.gc in
    Cgc.Gc.set_auto_collect gc false;
    let gen = Generational.create ~promote_after gc in
    let m = h.Harness.machine in
    let live = Builder.list_of m (List.init live_cells Fun.id) in
    Harness.set_root h 0 (Addr.to_int live);
    let round () =
      Machine.call m ~slots:4 (fun frame ->
          let temp = Builder.list_of m (List.init batch Fun.id) in
          Machine.set_local frame 0 (Addr.to_int temp));
      (match hygiene with
      | Clean -> Machine.clear_registers m
      | Careless -> ());
      Generational.minor gen
    in
    for _ = 1 to promote_after + 1 do
      round ()
    done;
    Generational.reset_stats gen;
    for _ = 1 to rounds do
      round ()
    done;
    let s = Generational.stats gen in
    {
      cp_promote_after = promote_after;
      cp_promoted_bytes = s.Generational.promoted_bytes;
      cp_promoted_pages = s.Generational.promoted_pages;
      cp_dirty_rescans = s.Generational.dirty_pages_scanned;
    }
  in
  { c_hygiene = hygiene; c_rounds = rounds; c_batch = batch; c_points = List.map point thresholds }

let hygiene_name = function
  | Clean -> "clean"
  | Careless -> "careless"

let pp_ceiling ppf c =
  Format.fprintf ppf "@[<v>%-8s ceiling (%d rounds x %d cells, post-warm-up window):"
    (hygiene_name c.c_hygiene) c.c_rounds c.c_batch;
  List.iter
    (fun p ->
      Format.fprintf ppf "@,  promote_after %2d: %6dB garbage promoted (%d pages, %d dirty rescans)"
        p.cp_promote_after p.cp_promoted_bytes p.cp_promoted_pages p.cp_dirty_rescans)
    c.c_points;
  Format.fprintf ppf "@]"

let pp ppf r =
  Format.fprintf ppf
    "%-8s %d rounds x %d cells: %d bytes promoted over %d pages (live set %d B; garbage promoted %d B)"
    (hygiene_name r.hygiene) r.rounds r.batch r.promoted_bytes r.promoted_pages r.live_set_bytes
    r.garbage_promoted_bytes
