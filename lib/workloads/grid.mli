(** Figures 3 and 4: embedded links vs separate link cells.

    "In the former case, a false reference can be expected to result in
    the retention of a large fraction of the structure.  In the latter
    case, at most a single row or column is affected."  For a uniformly
    placed false reference, the embedded grid retains about a quarter of
    all vertices in expectation (the lower-right quadrant of the hit
    vertex), while the separate-cons-cell grid retains at most one
    row-or-column tail. *)

open Cgc_vm

type representation =
  | Embedded  (** figure 3: right/down pointer fields inside vertices *)
  | Separate  (** figure 4: rows and columns are chains of cons cells *)

type result = {
  representation : representation;
  rows : int;
  cols : int;
  total_cells : int;  (** vertices plus (for [Separate]) spine cons cells *)
  retained_cells : int;
  retained_fraction : float;
  injected_at : Addr.t;
}

val run_one :
  ?seed:int ->
  ?prepare:(Harness.t -> unit) ->
  representation ->
  rows:int ->
  cols:int ->
  target:int ->
  result
(** Build the grid, drop the real roots, inject one false reference to
    structure cell number [target] (an index into the cells, vertices
    first), collect, and count what survived.  [prepare] runs on the
    fresh harness before any allocation (trace-recorder hook). *)

type summary = {
  s_representation : representation;
  s_rows : int;
  s_cols : int;
  trials : int;
  mean_fraction : float;
  max_fraction : float;
  min_fraction : float;
}

val run_trials : ?seed:int -> representation -> rows:int -> cols:int -> trials:int -> summary
(** Repeat {!run_one} with uniformly random targets. *)

val pp_summary : Format.formatter -> summary -> unit
