(** Typed-allocation chaos mutator.

    A seeded random soak that allocates exclusively through
    {!Cgc.Precise.allocate} with {!Cgc.Type_desc} layouts (cons cells,
    atomic blobs, embedded-link records, large arrays), maintains exact
    root providers as it links, unlinks and drops objects, and
    re-enacts the conservative soak repertoire (field reads and writes,
    explicit collects, drains, trims) — the capability the untyped
    random mutator cannot provide, and the precondition for driving the
    precise collector through the chaos matrix.

    A {!trace} is a pure function of its seed: an op sequence over
    abstract object ids, generated against an internal reachability
    model so that no op ever touches an object the model has already
    collected.  A {!session} replays one trace against {e two} heaps in
    lockstep — the precise view under test (which may have a fault plan
    armed) and a plain conservative {e twin} on its own pristine memory
    — and checks the paper's directional invariant at every completed
    exact collect: precise retention never exceeds conservative
    retention on the same typed trace.  Scalar writes seed heap-looking
    values into non-pointer words, so the gap the twin opens up is
    exactly the misidentification the paper measures. *)

type kind = Cons | Link_cell | Blob | Record | Large_atomic | Large_array

val desc_of_kind : kind -> Cgc.Type_desc.t
val kind_name : kind -> string

type op =
  | Alloc of { id : int; kind : kind; rooted : bool; attach : (int * int) option }
      (** allocate object [id]; [attach = Some (parent, field)] links it
          from a live parent instead of rooting it *)
  | Link of { src : int; field : int; dst : int }
  | Unlink of { src : int; field : int }
  | Unroot of int
  | Reroot of int
  | Read of { src : int; word : int }
  | Write_scalar of { src : int; word : int; value : int }
      (** a scalar (non-pointer-map) word write; about half the values
          are heap-looking — the misidentification seed *)
  | Collect
  | Drain
  | Trim

val trace : seed:int -> steps:int -> op array
(** Deterministic in [seed]; at most [steps] ops (precondition-less
    steps are skipped).  Ops only ever reference objects the internal
    model still considers reachable, so exact liveness and model
    liveness coincide on the precise side. *)

type session

val make_session : config:Cgc.Config.t -> Cgc.Precise.t -> op array -> session
(** Build the differential session: registers an exact root provider on
    the precise view and constructs the conservative twin (own
    {!Mem.t}, same scenario [config] but serial marking and eager
    sweeps, never a fault plan). *)

val step : session -> op -> [ `Ok | `Oom | `Read_fault | `Write_fault | `Aborted ]
(** Apply one op to both sides.  The result classifies the {e precise}
    side: typed faults and {!Cgc.Precise.Mark_aborted} are caught and
    reported, never escaped.  An op the faulting side lost (a store
    that never landed, an allocation that never happened) is skipped on
    the twin as well — the twin replays the trace as executed, so the
    precise heap's edges and roots stay a subset of the twin's.
    [Collect] collects both sides and, when the exact mark completed,
    compares retention (the twin collects even when the precise mark
    aborted, keeping the sides in lockstep). *)

val issues : session -> string list
(** Differential violations recorded so far (empty when the invariant
    held at every completed collect). *)

val last_retention : session -> (int * int) option
(** [(precise_live, conservative_live)] at the most recent completed
    exact collect. *)

val twin_ooms : session -> int
(** Twin-side allocation failures.  Nonzero suspends the retention
    comparison (the subset argument needs every twin allocation to
    succeed); the chaos driver keeps twin pressure low enough that this
    stays 0. *)

val collects_completed : session -> int
val collects_aborted : session -> int
