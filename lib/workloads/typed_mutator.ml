open Cgc_vm
module Gc = Cgc.Gc
module Config = Cgc.Config
module Type_desc = Cgc.Type_desc
module Precise = Cgc.Precise

(* --- the typed object repertoire --- *)

type kind = Cons | Link_cell | Blob | Record | Large_atomic | Large_array

let record_desc =
  Type_desc.make ~name:"record" ~size_bytes:40 ~pointer_offsets:[ 8; 24 ]

let blob_desc = Type_desc.atomic ~name:"blob" ~size_bytes:24
let large_atomic_desc = Type_desc.atomic ~name:"large-blob" ~size_bytes:12288

let large_array_desc =
  Type_desc.make ~name:"large-array" ~size_bytes:9216 ~pointer_offsets:[ 0; 4; 8; 12 ]

let desc_of_kind = function
  | Cons -> Type_desc.cons
  | Link_cell -> Type_desc.link_cell
  | Blob -> blob_desc
  | Record -> record_desc
  | Large_atomic -> large_atomic_desc
  | Large_array -> large_array_desc

let kind_name k = (desc_of_kind k).Type_desc.name
let n_pointer_fields k = Array.length (desc_of_kind k).Type_desc.pointer_offsets

(* --- the trace: a pure, seeded op sequence over model object ids --- *)

type op =
  | Alloc of { id : int; kind : kind; rooted : bool; attach : (int * int) option }
  | Link of { src : int; field : int; dst : int }
  | Unlink of { src : int; field : int }
  | Unroot of int
  | Reroot of int
  | Read of { src : int; word : int }
  | Write_scalar of { src : int; word : int; value : int }
  | Collect
  | Drain
  | Trim

let max_roots = 48

(* Heap-looking scalar values are drawn from the collectors' heap
   range: the misidentification seed a conservative scan retains and an
   exact pointer map ignores. *)
let heap_base = 0x400000
let heap_span = (8 * 1024 * 1024) - 8

let scalar_word rng kind =
  let d = desc_of_kind kind in
  let nwords = d.Type_desc.size_bytes / 4 in
  let is_ptr w = Array.exists (fun off -> off / 4 = w) d.Type_desc.pointer_offsets in
  let rec go tries =
    if tries = 0 then None
    else
      let w = Rng.int rng nwords in
      if is_ptr w then go (tries - 1) else Some w
  in
  go 8

let trace ~seed ~steps =
  let rng = Rng.create seed in
  let cap = steps + 1 in
  let kind_of = Array.make cap Cons in
  let fields = Array.make cap [||] in
  let rooted = Array.make cap false in
  let dead = Array.make cap false in
  let n = ref 0 in
  let live_set () =
    let live = Array.make (max 1 !n) false in
    let rec visit i =
      if i < !n && (not dead.(i)) && not live.(i) then begin
        live.(i) <- true;
        Array.iter (function Some j -> visit j | None -> ()) fields.(i)
      end
    in
    for i = 0 to !n - 1 do
      if rooted.(i) && not dead.(i) then visit i
    done;
    live
  in
  let pick pred =
    let live = live_set () in
    let acc = ref [] and len = ref 0 in
    for i = !n - 1 downto 0 do
      if live.(i) && pred i then begin
        acc := i :: !acc;
        incr len
      end
    done;
    if !len = 0 then None else Some (List.nth !acc (Rng.int rng !len))
  in
  let root_count () =
    let c = ref 0 in
    for i = 0 to !n - 1 do
      if rooted.(i) && not dead.(i) then incr c
    done;
    !c
  in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  for _ = 1 to steps do
    let r = Rng.int rng 100 in
    if r < 30 && !n < cap then begin
      (* allocate: attached to a live parent, rooted, or deliberately
         dropped on the floor as next-collect garbage *)
      let kind =
        match Rng.int rng 100 with
        | x when x < 30 -> Cons
        | x when x < 45 -> Link_cell
        | x when x < 65 -> Blob
        | x when x < 85 -> Record
        | x when x < 93 -> Large_atomic
        | _ -> Large_array
      in
      let id = !n in
      incr n;
      kind_of.(id) <- kind;
      fields.(id) <- Array.make (n_pointer_fields kind) None;
      let parent =
        if Rng.chance rng 0.6 then pick (fun i -> n_pointer_fields kind_of.(i) > 0) else None
      in
      match parent with
      | Some p ->
          let f = Rng.int rng (n_pointer_fields kind_of.(p)) in
          fields.(p).(f) <- Some id;
          emit (Alloc { id; kind; rooted = false; attach = Some (p, f) })
      | None ->
          let root = root_count () < max_roots && not (Rng.chance rng 0.1) in
          rooted.(id) <- root;
          emit (Alloc { id; kind; rooted = root; attach = None })
    end
    else if r < 45 then begin
      (* link / unlink between live objects *)
      match pick (fun i -> n_pointer_fields kind_of.(i) > 0) with
      | None -> ()
      | Some src ->
          let f = Rng.int rng (n_pointer_fields kind_of.(src)) in
          if Rng.chance rng 0.7 then begin
            match pick (fun _ -> true) with
            | None -> ()
            | Some dst ->
                fields.(src).(f) <- Some dst;
                emit (Link { src; field = f; dst })
          end
          else if fields.(src).(f) <> None then begin
            fields.(src).(f) <- None;
            emit (Unlink { src; field = f })
          end
    end
    else if r < 55 then begin
      (* root churn: drop a whole subgraph, or re-anchor a live object *)
      if Rng.chance rng 0.5 then begin
        match pick (fun i -> rooted.(i)) with
        | None -> ()
        | Some i ->
            rooted.(i) <- false;
            emit (Unroot i)
      end
      else
        match pick (fun i -> not rooted.(i)) with
        | None -> ()
        | Some i ->
            if root_count () < max_roots then begin
              rooted.(i) <- true;
              emit (Reroot i)
            end
    end
    else if r < 75 then begin
      match pick (fun _ -> true) with
      | None -> ()
      | Some src ->
          let nwords = (desc_of_kind kind_of.(src)).Type_desc.size_bytes / 4 in
          emit (Read { src; word = Rng.int rng nwords })
    end
    else if r < 85 then begin
      match pick (fun i -> scalar_word rng kind_of.(i) <> None) with
      | None -> ()
      | Some src -> (
          match scalar_word rng kind_of.(src) with
          | None -> ()
          | Some word ->
              let value =
                if Rng.chance rng 0.5 then heap_base + Rng.int rng heap_span
                else Rng.int rng 0x10000
              in
              emit (Write_scalar { src; word; value }))
    end
    else if r < 93 then begin
      (* the model's collect: everything unreachable is garbage from
         here on and is never referenced by a later op *)
      let live = live_set () in
      for i = 0 to !n - 1 do
        if not live.(i) then dead.(i) <- true
      done;
      emit Collect
    end
    else if r < 97 then emit Drain
    else emit Trim
  done;
  Array.of_list (List.rev !ops)

(* --- backends and the differential session --- *)

type backend = {
  label : string;
  alloc : Type_desc.t -> Addr.t;
  read : Addr.t -> int -> int;
  write : Addr.t -> int -> int -> unit;
  is_alloc : Addr.t -> bool;
  set_root : int -> Addr.t option -> unit;
  collect : unit -> [ `Completed | `Aborted ];
  drain : unit -> unit;
  trim : unit -> unit;
  live_objects : unit -> int;
}

type side = {
  backend : backend;
  addrs : Addr.t option array; (* object id -> current address; None = unmapped *)
}

type session = {
  precise : side;
  twin : side;
  kind_of : kind array;
  n_ids : int;
  mutable twin_ooms : int;
  mutable issues : string list;
  mutable last_retention : (int * int) option;
  mutable collects_completed : int;
  mutable collects_aborted : int;
}

let field_word kind f = (desc_of_kind kind).Type_desc.pointer_offsets.(f) / 4

(* Apply one op to one side, with apply-if-mapped semantics: an op
   whose endpoints never materialized on this side (an earlier alloc
   failed, or the object was reclaimed) is a no-op, so the applied
   links and roots on the fault-bearing side are always a subset of the
   twin's — the soundness precondition of the retention comparison. *)
let apply session side op =
  match op with
  | Alloc { id; kind; rooted; attach } ->
      let a = side.backend.alloc (desc_of_kind kind) in
      (* The attach store runs {e before} the id is published: if it
         faults, this side never maps the object (it is unreferenced
         garbage, swept at the next collect), matching the twin which
         skips the whole lost op.  Publishing first would let later
         [Link]/[Reroot] ops resurrect an object the twin never saw. *)
      (match attach with
      | None -> ()
      | Some (p, f) -> (
          match side.addrs.(p) with
          | Some pa -> side.backend.write pa (field_word session.kind_of.(p) f) (Addr.to_int a)
          | None -> ()));
      side.addrs.(id) <- Some a;
      if rooted then side.backend.set_root id (Some a)
  | Link { src; field; dst } -> (
      match (side.addrs.(src), side.addrs.(dst)) with
      | Some sa, Some da ->
          side.backend.write sa (field_word session.kind_of.(src) field) (Addr.to_int da)
      | _ -> ())
  | Unlink { src; field } -> (
      match side.addrs.(src) with
      | Some sa -> side.backend.write sa (field_word session.kind_of.(src) field) 0
      | None -> ())
  | Unroot id -> side.backend.set_root id None
  | Reroot id -> (
      match side.addrs.(id) with
      | Some a -> side.backend.set_root id (Some a)
      | None -> ())
  | Read { src; word } -> (
      match side.addrs.(src) with
      | Some a -> ignore (side.backend.read a word : int)
      | None -> ())
  | Write_scalar { src; word; value } -> (
      match side.addrs.(src) with
      | Some a -> side.backend.write a word value
      | None -> ())
  | Drain -> side.backend.drain ()
  | Trim -> side.backend.trim ()
  | Collect -> assert false (* handled by [step]: the two sides synchronize *)

let prune side n =
  for id = 0 to n - 1 do
    match side.addrs.(id) with
    | Some a when not (side.backend.is_alloc a) ->
        side.addrs.(id) <- None;
        side.backend.set_root id None
    | _ -> ()
  done

let step session op =
  match op with
  | Collect ->
      let pres = session.precise.backend.collect () in
      (try ignore (session.twin.backend.collect ())
       with Gc.Out_of_memory _ -> session.twin_ooms <- session.twin_ooms + 1);
      (match pres with
      | `Aborted ->
          (* an aborted exact mark frees nothing; retention is only
             comparable at the next completed collect *)
          session.collects_aborted <- session.collects_aborted + 1;
          `Aborted
      | `Completed ->
          session.collects_completed <- session.collects_completed + 1;
          prune session.precise session.n_ids;
          prune session.twin session.n_ids;
          let pl = session.precise.backend.live_objects () in
          let cl = session.twin.backend.live_objects () in
          session.last_retention <- Some (pl, cl);
          if session.twin_ooms = 0 && pl > cl then
            session.issues <-
              Printf.sprintf
                "precise retention %d exceeds conservative retention %d after collect %d" pl cl
                session.collects_completed
              :: session.issues;
          `Ok)
  | _ -> (
      let pres =
        try
          apply session session.precise op;
          `Ok
        with
        | Gc.Out_of_memory _ -> `Oom
        | Mem.Read_fault _ -> `Read_fault
        | Mem.Write_fault _ -> `Write_fault
      in
      (* The twin replays the trace {e as executed}, not as intended: an
         op the faulting side lost (a store that never landed, an
         allocation that never happened) is skipped on the twin too.
         Otherwise a lost unlink would leave the precise heap holding an
         edge the twin dropped — mutator-level divergence masquerading
         as collector over-retention.  Skipping is always conservative
         for the comparison: the twin can only over-retain relative to
         the precise side's executed trace.  (The twin itself never has
         a fault plan armed; only allocation pressure can stop it, which
         suspends the comparison for the rest of the session.) *)
      (match pres with
      | `Ok -> (
          try apply session session.twin op
          with Gc.Out_of_memory _ -> session.twin_ooms <- session.twin_ooms + 1)
      | `Oom | `Read_fault | `Write_fault | `Aborted -> ());
      pres)

let issues session = List.rev session.issues
let last_retention session = session.last_retention
let twin_ooms session = session.twin_ooms
let collects_completed session = session.collects_completed
let collects_aborted session = session.collects_aborted

(* --- wiring the two sides --- *)

let precise_backend p roots =
  let gc = Precise.gc p in
  {
    label = "precise";
    alloc = (fun desc -> Precise.allocate p desc);
    read = (fun a w -> Gc.get_field gc a w);
    write = (fun a w v -> Gc.set_field gc a w v);
    is_alloc = Gc.is_allocated gc;
    set_root = (fun id v -> roots.(id) <- v);
    collect =
      (fun () ->
        try
          Precise.collect p;
          `Completed
        with Precise.Mark_aborted _ -> `Aborted);
    drain = (fun () -> ignore (Gc.drain_pending_sweeps gc : int));
    trim = (fun () -> ignore (Gc.trim gc : int));
    live_objects = (fun () -> Precise.live_objects p);
  }

let twin_backend ~config ~n_ids () =
  let mem = Mem.create () in
  let size = max 0x1000 (4 * (n_ids + 1)) in
  let globals =
    Mem.map mem ~name:"twin-globals" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size
  in
  (* the twin is deliberately plain: serial marking, eager sweeps, no
     fault plan — the conservative reference the precise side under
     chaos is measured against *)
  let config = { config with Config.mark_jobs = 1; lazy_sweep = false } in
  let gc =
    Gc.create ~config mem ~base:(Addr.of_int heap_base) ~max_bytes:(8 * 1024 * 1024) ()
  in
  Gc.add_static_root gc ~lo:(Segment.base globals) ~hi:(Segment.limit globals)
    ~label:"twin-globals";
  {
    label = "conservative-twin";
    alloc =
      (fun desc ->
        Gc.allocate ~pointer_free:(Type_desc.is_atomic desc) gc desc.Type_desc.size_bytes);
    read = (fun a w -> Gc.get_field gc a w);
    write = (fun a w v -> Gc.set_field gc a w v);
    is_alloc = Gc.is_allocated gc;
    set_root =
      (fun id v ->
        let word = match v with Some a -> Addr.to_int a | None -> 0 in
        Segment.write_word globals (Addr.add (Segment.base globals) (4 * id)) word);
    collect =
      (fun () ->
        Gc.collect gc;
        `Completed);
    drain = (fun () -> ignore (Gc.drain_pending_sweeps gc : int));
    trim = (fun () -> ignore (Gc.trim gc : int));
    live_objects = (fun () -> (Gc.stats gc).Cgc.Stats.live_objects);
  }

let kinds_of_trace ops cap =
  let kind_of = Array.make cap Cons in
  Array.iter
    (function Alloc { id; kind; _ } -> kind_of.(id) <- kind | _ -> ())
    ops;
  kind_of

let make_session ~config p ops =
  let n_ids =
    Array.fold_left
      (fun acc op -> match op with Alloc { id; _ } -> max acc (id + 1) | _ -> acc)
      0 ops
  in
  let n_ids = max 1 n_ids in
  let roots = Array.make n_ids None in
  Precise.add_root_provider p (fun () ->
      Array.fold_right (fun v acc -> match v with Some a -> a :: acc | None -> acc) roots []);
  {
    precise = { backend = precise_backend p roots; addrs = Array.make n_ids None };
    twin = { backend = twin_backend ~config ~n_ids (); addrs = Array.make n_ids None };
    kind_of = kinds_of_trace ops n_ids;
    n_ids;
    twin_ooms = 0;
    issues = [];
    last_retention = None;
    collects_completed = 0;
    collects_aborted = 0;
  }
