open Cgc_vm
module Gc = Cgc.Gc
module Verify = Cgc.Verify

type plan_spec =
  | Countdown of { every : int }
  | Chance of { probability : float; seed : int }
  | Quota of { bytes : int }

let plan_name = function
  | Countdown { every } -> Printf.sprintf "countdown-%d" every
  | Chance { probability; seed = _ } -> Printf.sprintf "chance-%.3f" probability
  | Quota { bytes } -> Printf.sprintf "quota-%dk" (bytes / 1024)

let instantiate = function
  | Countdown { every } -> Mem.Fault.plan ~countdown:every ~rearm:true ()
  | Chance { probability; seed } -> Mem.Fault.plan ~probability:(probability, seed) ()
  | Quota { bytes } -> Mem.Fault.plan ~quota_bytes:bytes ()

type outcome = {
  scenario : string;
  plan : string;
  steps : int;
  faults_injected : int;
  ooms_caught : int;
  escaped : string list;
  verify_issues : string list;
  post_fault_alloc_failures : int;
  recovered : bool;
  final_issues : string list;
  stats : Cgc.Stats.t;
  overrides : int;
}

let clean o =
  o.escaped = [] && o.verify_issues = [] && o.post_fault_alloc_failures = 0 && o.recovered
  && o.final_issues = []

(* The mutator world: a globals segment of root slots plus the
   collector, mirroring the soak tests.  Faults are installed on [mem]
   only after construction, so the initial commit always succeeds. *)
type world = {
  mem : Mem.t;
  gc : Gc.t;
  globals : Segment.t;
  rng : Rng.t;
  mutable live : Addr.t list;
}

let n_slots = 64

let make_world ~seed ~config =
  let mem = Mem.create () in
  let globals =
    Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000
  in
  let gc = Gc.create ~config mem ~base:(Addr.of_int 0x400000) ~max_bytes:(8 * 1024 * 1024) () in
  Gc.add_static_root gc ~lo:(Segment.base globals) ~hi:(Segment.limit globals) ~label:"globals";
  { mem; gc; globals; rng = Rng.create seed; live = [] }

let set_slot w i v = Segment.write_word w.globals (Addr.add (Segment.base w.globals) (4 * i)) v

let random_live w =
  match w.live with
  | [] -> None
  | l -> Some (List.nth l (Rng.int w.rng (List.length l)))

(* One random mutator step; allocation failures under pressure are
   expected and counted by the caller via the raised [Out_of_memory]. *)
let step w =
  match Rng.int w.rng 100 with
  | n when n < 45 ->
      let bytes = 4 + (4 * Rng.int w.rng 12) in
      let pointer_free = Rng.chance w.rng 0.2 in
      let a = Gc.allocate ~pointer_free w.gc bytes in
      w.live <- a :: w.live;
      if Rng.chance w.rng 0.6 then set_slot w (Rng.int w.rng n_slots) (Addr.to_int a)
  | n when n < 55 ->
      let bytes = 3000 + Rng.int w.rng 12000 in
      let a = Gc.allocate w.gc bytes in
      if Rng.chance w.rng 0.8 then set_slot w (Rng.int w.rng n_slots) (Addr.to_int a)
  | n when n < 70 -> (
      match (random_live w, random_live w) with
      | Some a, Some b when Gc.is_allocated w.gc a && Gc.is_allocated w.gc b -> (
          match Gc.object_size w.gc a with
          | Some size when size >= 4 -> Gc.set_field w.gc a (Rng.int w.rng (size / 4)) (Addr.to_int b)
          | _ -> ())
      | _ -> ())
  | n when n < 82 -> set_slot w (Rng.int w.rng n_slots) 0
  | n when n < 89 ->
      (* plant a false reference: a random heap-region value *)
      let heap = Gc.heap w.gc in
      let v = Addr.to_int (Cgc.Heap.base heap) + Rng.int w.rng (8 * 1024 * 1024) in
      set_slot w (Rng.int w.rng n_slots) v
  | n when n < 95 -> Gc.collect w.gc
  | n when n < 98 -> ignore (Gc.drain_pending_sweeps w.gc : int)
  | _ -> ignore (Gc.trim w.gc : int)

(* Allocate once with the fault plan lifted: after an injected fault (or
   at the end of a run) the collector must be immediately usable. *)
let fault_free_alloc_ok w =
  let saved = Mem.fault_plan w.mem in
  Mem.set_fault_plan w.mem None;
  let ok =
    match Gc.allocate w.gc 8 with
    | a -> Gc.is_allocated w.gc a
    | exception Gc.Out_of_memory _ ->
        (* a tiny heap genuinely full of live data may refuse even 8
           bytes; distinguish that from incoherence by checking room *)
        Cgc.Heap.free_page_count (Gc.heap w.gc) > 0
    | exception _ -> false
  in
  Mem.set_fault_plan w.mem saved;
  ok

let run_scenario ?(steps = 1500) ~seed ~scenario ~config ~plan () =
  let w = make_world ~seed ~config in
  let fp = instantiate plan in
  Mem.set_fault_plan w.mem (Some fp);
  let ooms = ref 0 in
  let escaped = ref [] in
  let issues = ref [] in
  let post_fault_failures = ref 0 in
  let last_faults = ref 0 in
  for i = 1 to steps do
    (try step w with
    | Gc.Out_of_memory _ -> incr ooms
    | e -> escaped := Printf.sprintf "step %d: %s" i (Printexc.to_string e) :: !escaped);
    let faults = Mem.faults_injected w.mem in
    if faults > !last_faults then begin
      last_faults := faults;
      (* crash coherence: the fault must not have torn the heap *)
      List.iter
        (fun s -> issues := Printf.sprintf "step %d: %s" i s :: !issues)
        (Verify.check_after_fault w.gc);
      if not (fault_free_alloc_ok w) then incr post_fault_failures
    end;
    if i mod 400 = 0 then
      w.live <- List.filteri (fun i _ -> i < 150) (List.filter (Gc.is_allocated w.gc) w.live)
  done;
  Mem.set_fault_plan w.mem None;
  let recovered = fault_free_alloc_ok w in
  let final_issues = Verify.check w.gc in
  {
    scenario;
    plan = plan_name plan;
    steps;
    faults_injected = Mem.faults_injected w.mem;
    ooms_caught = !ooms;
    escaped = List.rev !escaped;
    verify_issues = List.rev !issues;
    post_fault_alloc_failures = !post_fault_failures;
    recovered;
    final_issues;
    stats = Cgc.Stats.copy (Gc.stats w.gc);
    overrides = Cgc.Blacklist.overridden (Gc.blacklist w.gc);
  }

let base_config = { Cgc.Config.default with Cgc.Config.initial_pages = 8 }

let default_scenarios =
  [
    ("eager", base_config);
    ("lazy", { base_config with Cgc.Config.lazy_sweep = true });
    ("bounded-stack", { base_config with Cgc.Config.mark_stack_limit = Some 32 });
    ("hashed-blacklist", { base_config with Cgc.Config.blacklist_buckets = Some 1024 });
    ("relaxed", { base_config with Cgc.Config.relax_blacklist = true });
  ]

let default_plans ~seed =
  [
    Countdown { every = 7 };
    Chance { probability = 0.04; seed = seed lxor 0xFA17 };
    Quota { bytes = 48 * 4096 };
  ]

let run_matrix ?(steps = 1500) ~seed () =
  List.concat_map
    (fun (scenario, config) ->
      List.map
        (fun plan -> run_scenario ~steps ~seed ~scenario ~config ~plan ())
        (default_plans ~seed))
    default_scenarios

let pp_outcome ppf o =
  let s = o.stats in
  Format.fprintf ppf
    "@[<v>%-16s x %-14s: %d steps, %d faults injected, %d OOM caught -> %s@,\
    \  ladder: %d collects, %d drains, %d trims, %d grows (%d backoffs), %d relax-fp, %d \
     relax-black, %d hooks; %d overrides; %d commit faults, %d raised@]"
    o.scenario o.plan o.steps o.faults_injected o.ooms_caught
    (if clean o then "clean" else "VIOLATIONS")
    s.Cgc.Stats.ladder_collects s.Cgc.Stats.ladder_drains s.Cgc.Stats.ladder_trims
    s.Cgc.Stats.ladder_expansions s.Cgc.Stats.ladder_backoffs s.Cgc.Stats.ladder_relax_first_page
    s.Cgc.Stats.ladder_relax_black s.Cgc.Stats.ladder_oom_hooks o.overrides
    s.Cgc.Stats.commit_faults s.Cgc.Stats.oom_raised;
  if not (clean o) then begin
    List.iter (fun e -> Format.fprintf ppf "@,  escaped: %s" e) o.escaped;
    List.iter (fun e -> Format.fprintf ppf "@,  invariant: %s" e) o.verify_issues;
    if o.post_fault_alloc_failures > 0 then
      Format.fprintf ppf "@,  %d post-fault allocations failed" o.post_fault_alloc_failures;
    if not o.recovered then Format.fprintf ppf "@,  did not recover once faults stopped";
    List.iter (fun e -> Format.fprintf ppf "@,  final: %s" e) o.final_issues
  end
