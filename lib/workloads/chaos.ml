open Cgc_vm
module Gc = Cgc.Gc
module Verify = Cgc.Verify

type collector = Conservative | Generational | Explicit | Precise

let collector_name = function
  | Conservative -> "conservative"
  | Generational -> "generational"
  | Explicit -> "explicit"
  | Precise -> "precise"

let all_collectors = [ Conservative; Generational; Explicit; Precise ]

type plan_spec =
  | Countdown of { every : int }
  | Chance of { probability : float; seed : int }
  | Quota of { bytes : int }
  | Read_chance of { probability : float; seed : int }
  | Read_decay of { every : int; region : int }
  | Write_chance of { probability : float; seed : int }
  | Write_decay of { every : int; region : int }

let plan_name = function
  | Countdown { every } -> Printf.sprintf "countdown-%d" every
  | Chance { probability; seed = _ } -> Printf.sprintf "chance-%.3f" probability
  | Quota { bytes } -> Printf.sprintf "quota-%dk" (bytes / 1024)
  | Read_chance { probability; seed = _ } -> Printf.sprintf "read-chance-%.4f" probability
  | Read_decay { every; region } -> Printf.sprintf "read-decay-%d/%dB" every region
  | Write_chance { probability; seed = _ } -> Printf.sprintf "write-chance-%.4f" probability
  | Write_decay { every; region } -> Printf.sprintf "write-decay-%d/%dB" every region

(* Plans that fault loads or stores: under these the parallel tracer
   must take its typed serial fallback (faultable loads stay serialized
   so access plans observe a deterministic probe order). *)
let is_access_plan = function
  | Read_chance _ | Read_decay _ | Write_chance _ | Write_decay _ -> true
  | Countdown _ | Chance _ | Quota _ -> false

(* The marker-domain failure axis: orthogonal to the memory-fault
   plans, it arms one {!Cgc.Domain_fault} plan against domain 1 of
   every parallel mark phase the cell runs (the chaos config lowers the
   watchdog budget so detection fits inside a cell's step budget). *)
type domain_fault_spec =
  | No_domain_fault
  | Stall_fault
  | Crash_fault
  | Livelock_fault
  | Straggler_fault

let all_domain_faults =
  [ No_domain_fault; Stall_fault; Crash_fault; Livelock_fault; Straggler_fault ]

let domain_fault_name = function
  | No_domain_fault -> "no-domain-fault"
  | Stall_fault -> "stall"
  | Crash_fault -> "crash"
  | Livelock_fault -> "livelock"
  | Straggler_fault -> "straggler"

let domain_fault_plans = function
  | No_domain_fault -> []
  | Stall_fault -> [ Cgc.Domain_fault.plan ~domain:1 (Stall { after_claims = 3 }) ]
  | Crash_fault -> [ Cgc.Domain_fault.plan ~domain:1 (Crash { at_step = 7 }) ]
  | Livelock_fault -> [ Cgc.Domain_fault.plan ~domain:1 (Livelock { on_claim = 2 }) ]
  | Straggler_fault -> [ Cgc.Domain_fault.plan ~domain:1 (Straggler { spin = 150 }) ]

let instantiate = function
  | Countdown { every } -> Mem.Fault.plan ~countdown:every ~rearm:true ()
  | Chance { probability; seed } -> Mem.Fault.plan ~probability:(probability, seed) ()
  | Quota { bytes } -> Mem.Fault.plan ~quota_bytes:bytes ()
  | Read_chance { probability; seed } ->
      Mem.Fault.plan ~probability:(probability, seed) ~target:Mem.Fault.Reads ()
  | Read_decay { every; region } ->
      Mem.Fault.plan ~countdown:every ~rearm:true ~target:Mem.Fault.Reads ~decay_bytes:region ()
  | Write_chance { probability; seed } ->
      Mem.Fault.plan ~probability:(probability, seed) ~target:Mem.Fault.Writes ()
  | Write_decay { every; region } ->
      Mem.Fault.plan ~countdown:every ~rearm:true ~target:Mem.Fault.Writes ~decay_bytes:region ()

type outcome = {
  collector : string;
  scenario : string;
  plan : string;
  domain_fault : string;
  steps : int;
  mark_jobs : int;
  last_fallback : string option;
  faults_injected : int;
  ooms_caught : int;
  mutator_read_faults : int;
  mutator_write_faults : int;
  escaped : string list;
  verify_issues : string list;
  post_fault_alloc_failures : int;
  recovered : bool;
  final_issues : string list;
  stats : Cgc.Stats.t;
  overrides : int;
  retention : (int * int) option;
      (* precise cells: (exact live, conservative-twin live) at the last
         completed exact collect of the typed differential session *)
}

let clean o =
  o.escaped = [] && o.verify_issues = [] && o.post_fault_alloc_failures = 0 && o.recovered
  && o.final_issues = []

(* Uniform view of one memory-management backend: the same random
   mutator drives the conservative collector, the generational wrapper
   and the explicit malloc/free baseline through this record. *)
type ops = {
  alloc : pointer_free:bool -> int -> Addr.t;
  read_field : Addr.t -> int -> int;
  write_field : Addr.t -> int -> int -> unit;
  is_alloc : Addr.t -> bool;
  size_of : Addr.t -> int option;
  drop : Addr.t -> bool;  (* explicit free; [false] = collector-managed, nothing freed *)
  collect : unit -> unit;
  drain : unit -> unit;
  trim : unit -> unit;
  heap : Cgc.Heap.t;
  audit_fault : unit -> string list;
  audit_final : unit -> string list;
  snapshot : unit -> Cgc.Stats.t;
  overrides : unit -> int;
  arm_domain_faults : Cgc.Domain_fault.plan list -> unit;
  last_fallback : unit -> string option;
}

(* The mutator world: a globals segment of root slots plus the chosen
   backend, mirroring the soak tests.  Faults are installed on [mem]
   only after construction, so the initial commit always succeeds. *)
type world = {
  mem : Mem.t;
  ops : ops;
  globals : Segment.t;
  rng : Rng.t;
  mutable live : Addr.t list;
  precise : Cgc.Precise.t option;
      (* the typed view when [collector = Precise]; the scenario driver
         runs the typed differential mutator over it instead of the
         untyped soak *)
}

let n_slots = 64

let make_world ~seed ~config ~collector =
  let mem = Mem.create () in
  let globals =
    Mem.map mem ~name:"globals" ~kind:Segment.Static_data ~base:(Addr.of_int 0x10000) ~size:0x1000
  in
  let base = Addr.of_int 0x400000 and max_bytes = 8 * 1024 * 1024 in
  let add_root gc =
    Gc.add_static_root gc ~lo:(Segment.base globals) ~hi:(Segment.limit globals) ~label:"globals"
  in
  let gc_common gc =
    {
      alloc = (fun ~pointer_free bytes -> Gc.allocate ~pointer_free gc bytes);
      read_field = Gc.get_field gc;
      write_field = Gc.set_field gc;
      is_alloc = Gc.is_allocated gc;
      size_of = Gc.object_size gc;
      drop = (fun _ -> false);
      collect = (fun () -> Gc.collect gc);
      drain = (fun () -> ignore (Gc.drain_pending_sweeps gc : int));
      trim = (fun () -> ignore (Gc.trim gc : int));
      heap = Gc.heap gc;
      audit_fault = (fun () -> Verify.check_after_fault gc);
      audit_final = (fun () -> Verify.check gc);
      snapshot = (fun () -> Cgc.Stats.copy (Gc.stats gc));
      overrides = (fun () -> Cgc.Blacklist.overridden (Gc.blacklist gc));
      arm_domain_faults = Gc.set_domain_faults gc;
      last_fallback =
        (fun () ->
          match Gc.last_mark_outcome gc with
          | None -> None
          | Some o -> (
              match o.Cgc.Mark.Parallel.fallback with
              | None -> Some "parallel"
              | Some f -> Some (Cgc.Mark.Parallel.fallback_to_string f)));
    }
  in
  let ops, precise =
    match collector with
    | Conservative ->
        let gc = Gc.create ~config mem ~base ~max_bytes () in
        add_root gc;
        (gc_common gc, None)
    | Precise ->
        let gc = Gc.create ~config mem ~base ~max_bytes () in
        add_root gc;
        (* [Precise.create] turns auto-collect off and redirects the
           budget/ladder Collect paths into the exact collect *)
        let p = Cgc.Precise.create gc in
        ( {
            (gc_common gc) with
            alloc =
              (* probe allocations (the post-fault liveness check) go
                 through the typed allocator like everything else on
                 this heap: an atomic layout of the requested size *)
              (fun ~pointer_free:_ bytes ->
                Cgc.Precise.allocate p (Cgc.Type_desc.atomic ~name:"probe" ~size_bytes:bytes));
            collect =
              (fun () ->
                (* an aborted exact mark is a typed, absorbed outcome:
                   marks are restored and the collect retries later *)
                try Cgc.Precise.collect p with Cgc.Precise.Mark_aborted _ -> ());
            audit_fault = (fun () -> Verify.check_after_fault gc @ Verify.check_precise_mark p);
            audit_final = (fun () -> Verify.check gc @ Verify.check_precise_mark p);
          },
          Some p )
    | Generational ->
        (* minor sweeps are eager by construction *)
        let config = { config with Cgc.Config.lazy_sweep = false } in
        let gc = Gc.create ~config mem ~base ~max_bytes () in
        add_root gc;
        Gc.set_auto_collect gc false;
        let g = Cgc.Generational.create gc in
        ( {
            (gc_common gc) with
            alloc = (fun ~pointer_free bytes -> Cgc.Generational.allocate ~pointer_free g bytes);
            write_field = Cgc.Generational.set_field g;
            collect = (fun () -> Cgc.Generational.minor g);
            drain = (fun () -> Cgc.Generational.major g);
          },
          None )
    | Explicit ->
        let e =
          Cgc.Explicit.create ~page_size:config.Cgc.Config.page_size mem ~base ~max_bytes ()
        in
        let release () = ignore (Cgc.Explicit.release_empty_pages e : int) in
        ( {
            alloc = (fun ~pointer_free:_ bytes -> Cgc.Explicit.malloc e bytes);
          read_field = Cgc.Explicit.get_field e;
          write_field = Cgc.Explicit.set_field e;
          is_alloc = Cgc.Explicit.is_allocated e;
          size_of = (fun a -> if Cgc.Explicit.is_allocated e a then Some 4 else None);
          drop =
            (fun a ->
              if Cgc.Explicit.is_allocated e a then begin
                Cgc.Explicit.free e a;
                true
              end
              else false);
          collect = release;
          drain = (fun () -> ());
          trim = release;
          heap = Cgc.Explicit.heap e;
          audit_fault = (fun () -> Verify.check_heap (Cgc.Explicit.heap e));
          audit_final = (fun () -> Verify.check_heap (Cgc.Explicit.heap e));
          snapshot = (fun () -> Cgc.Stats.create ());
          overrides = (fun () -> 0);
          arm_domain_faults = (fun _ -> ());
          last_fallback = (fun () -> None);
          },
          None )
  in
  { mem; ops; globals; rng = Rng.create seed; live = []; precise }

let set_slot w i v = Segment.write_word w.globals (Addr.add (Segment.base w.globals) (4 * i)) v

let random_live w =
  match w.live with
  | [] -> None
  | l -> Some (List.nth l (Rng.int w.rng (List.length l)))

(* One random mutator step; allocation failures under pressure are
   expected and counted by the caller via the raised [Out_of_memory],
   and so are typed access faults surfacing from field reads/writes. *)
let step w =
  let ops = w.ops in
  match Rng.int w.rng 100 with
  | n when n < 45 ->
      let bytes = 4 + (4 * Rng.int w.rng 12) in
      let pointer_free = Rng.chance w.rng 0.2 in
      let a = ops.alloc ~pointer_free bytes in
      w.live <- a :: w.live;
      if Rng.chance w.rng 0.6 then set_slot w (Rng.int w.rng n_slots) (Addr.to_int a)
  | n when n < 55 ->
      let bytes = 3000 + Rng.int w.rng 12000 in
      let a = ops.alloc ~pointer_free:false bytes in
      if Rng.chance w.rng 0.8 then set_slot w (Rng.int w.rng n_slots) (Addr.to_int a)
  | n when n < 70 -> (
      match (random_live w, random_live w) with
      | Some a, Some b when ops.is_alloc a && ops.is_alloc b -> (
          match ops.size_of a with
          | Some size when size >= 4 -> ops.write_field a (Rng.int w.rng (size / 4)) (Addr.to_int b)
          | _ -> ())
      | _ -> ())
  | n when n < 76 -> (
      (* copy a field of a live object into a root slot (a guarded read) *)
      match random_live w with
      | Some a when ops.is_alloc a -> set_slot w (Rng.int w.rng n_slots) (ops.read_field a 0)
      | _ -> ())
  | n when n < 82 -> (
      set_slot w (Rng.int w.rng n_slots) 0;
      (* under explicit management a dropped object is freed outright *)
      match random_live w with
      | Some a when ops.drop a -> w.live <- List.filter (fun b -> not (Addr.equal b a)) w.live
      | _ -> ())
  | n when n < 89 ->
      (* plant a false reference: a random heap-region value *)
      let v = Addr.to_int (Cgc.Heap.base ops.heap) + Rng.int w.rng (8 * 1024 * 1024) in
      set_slot w (Rng.int w.rng n_slots) v
  | n when n < 95 -> ops.collect ()
  | n when n < 98 -> ops.drain ()
  | _ -> ops.trim ()

(* Allocate once with the fault plan lifted: after an injected fault (or
   at the end of a run) the backend must be immediately usable. *)
let fault_free_alloc_ok w =
  let saved = Mem.fault_plan w.mem in
  Mem.set_fault_plan w.mem None;
  let ok =
    match w.ops.alloc ~pointer_free:false 8 with
    | a -> w.ops.is_alloc a
    | exception (Gc.Out_of_memory _ | Cgc.Explicit.Out_of_memory _) ->
        (* a tiny heap genuinely full of live data may refuse even 8
           bytes; distinguish that from incoherence by checking room *)
        Cgc.Heap.free_page_count w.ops.heap > 0
    | exception _ -> false
  in
  Mem.set_fault_plan w.mem saved;
  ok

let run_scenario ?(steps = 1500) ?(collector = Conservative) ?(mark_jobs = 1)
    ?(domain_fault = No_domain_fault) ~seed ~scenario ~config ~plan () =
  let arming = domain_fault <> No_domain_fault && mark_jobs > 1 && collector = Conservative in
  let config = { config with Cgc.Config.mark_jobs } in
  let config =
    (* a tight watchdog keeps detection latency inside the cell's step
       budget (the default budget is tuned for production paranoia) *)
    if arming then { config with Cgc.Config.mark_watchdog_budget = 96 } else config
  in
  let w = make_world ~seed ~config ~collector in
  if arming then w.ops.arm_domain_faults (domain_fault_plans domain_fault);
  (* Precise cells replay a typed trace through the differential session
     (exact view under faults vs a pristine conservative twin); the
     session is built before the plan arms so twin construction cannot
     fault. *)
  let typed =
    match w.precise with
    | Some p ->
        let tops = Typed_mutator.trace ~seed ~steps in
        Some (tops, Typed_mutator.make_session ~config p tops)
    | None -> None
  in
  let fp = instantiate plan in
  Mem.set_fault_plan w.mem (Some fp);
  let ooms = ref 0 in
  let mut_reads = ref 0 in
  let mut_writes = ref 0 in
  let escaped = ref [] in
  let issues = ref [] in
  let post_fault_failures = ref 0 in
  let last_faults = ref 0 in
  for i = 1 to steps do
    (try
       match typed with
       | Some (tops, session) ->
           if i - 1 < Array.length tops then begin
             match Typed_mutator.step session tops.(i - 1) with
             | `Ok | `Aborted -> () (* an abort is a typed, absorbed outcome *)
             | `Oom -> incr ooms
             | `Read_fault -> incr mut_reads
             | `Write_fault -> incr mut_writes
           end
       | None -> step w
     with
    | Gc.Out_of_memory _ | Cgc.Explicit.Out_of_memory _ -> incr ooms
    | Mem.Read_fault _ -> incr mut_reads
    | Mem.Write_fault _ -> incr mut_writes
    | e -> escaped := Printf.sprintf "step %d: %s" i (Printexc.to_string e) :: !escaped);
    let faults = Mem.faults_injected w.mem in
    if faults > !last_faults then begin
      last_faults := faults;
      (* crash coherence: the fault must not have torn the heap *)
      List.iter
        (fun s -> issues := Printf.sprintf "step %d: %s" i s :: !issues)
        (w.ops.audit_fault ());
      if not (fault_free_alloc_ok w) then incr post_fault_failures
    end;
    if i mod 400 = 0 then
      w.live <- List.filteri (fun i _ -> i < 150) (List.filter w.ops.is_alloc w.live)
  done;
  Mem.set_fault_plan w.mem None;
  let recovered = fault_free_alloc_ok w in
  let final_issues = w.ops.audit_final () in
  let stats = w.ops.snapshot () in
  (* Parallel-marking discipline, checked on the collector that owns the
     tracer.  Under an armed access plan every mark phase must have taken
     the typed serial fallback; under commit-only plans (loads and stores
     never fault) the tracer must really have run parallel. *)
  let final_issues =
    if collector <> Conservative || mark_jobs <= 1 || stats.Cgc.Stats.collections = 0 then
      final_issues
    else if is_access_plan plan && stats.Cgc.Stats.mark_serial_fallbacks = 0 then
      "parallel marking under an armed access plan never took the typed serial fallback"
      :: final_issues
    else if (not (is_access_plan plan)) && stats.Cgc.Stats.parallel_marks = 0 then
      "commit-fault plan with mark_jobs > 1 never ran a parallel mark phase" :: final_issues
    else final_issues
  in
  (* Domain-failure discipline: an armed cell whose tracer really ran
     parallel must have injected the fault, and the boundary/mid-item
     failure modes must have been reclaimed (a straggler is merely slow
     — reclaiming it is the watchdog's choice).  Under an access plan
     the tracer is serial up front, so the fault sites are never
     reached; and with the matrix's quorum of 1 the leader alone keeps
     quorum, so degradation is impossible. *)
  let final_issues =
    if not arming then final_issues
    else if stats.Cgc.Stats.collections = 0 then final_issues
    else if is_access_plan plan then
      if stats.Cgc.Stats.mark_domain_faults > 0 then
        "serial fallback under an access plan reached a domain-fault site" :: final_issues
      else final_issues
    else if stats.Cgc.Stats.parallel_marks = 0 then final_issues
    else
      let issues = final_issues in
      let issues =
        if stats.Cgc.Stats.mark_domain_faults = 0 then
          Printf.sprintf "armed %s cell ran %d parallel marks without tripping the fault"
            (domain_fault_name domain_fault) stats.Cgc.Stats.parallel_marks
          :: issues
        else issues
      in
      let issues =
        match domain_fault with
        | (Stall_fault | Crash_fault | Livelock_fault)
          when stats.Cgc.Stats.mark_domain_faults > 0
               && stats.Cgc.Stats.mark_domains_recovered = 0 ->
            Printf.sprintf "%s fault tripped but no domain was ever reclaimed"
              (domain_fault_name domain_fault)
            :: issues
        | _ -> issues
      in
      if stats.Cgc.Stats.mark_quorum_degradations > 0 then
        "quorum degradation with mark_quorum = 1 (the leader never fails)" :: issues
      else issues
  in
  (* Typed-differential discipline (precise cells): the pointwise
     invariant — exact retention never exceeds the conservative twin's
     on the same trace — must have held at every completed exact
     collect, and the twin must never have hit allocation pressure
     (which would void the subset argument). *)
  let final_issues, retention =
    match typed with
    | None -> (final_issues, None)
    | Some (_, session) ->
        let issues = Typed_mutator.issues session @ final_issues in
        let issues =
          let t_ooms = Typed_mutator.twin_ooms session in
          if t_ooms > 0 then
            Printf.sprintf "conservative twin hit allocation pressure %d times" t_ooms :: issues
          else issues
        in
        (issues, Typed_mutator.last_retention session)
  in
  {
    collector = collector_name collector;
    scenario;
    plan = plan_name plan;
    domain_fault = domain_fault_name domain_fault;
    steps;
    mark_jobs;
    last_fallback = w.ops.last_fallback ();
    faults_injected = Mem.faults_injected w.mem;
    ooms_caught = !ooms;
    mutator_read_faults = !mut_reads;
    mutator_write_faults = !mut_writes;
    escaped = List.rev !escaped;
    verify_issues = List.rev !issues;
    post_fault_alloc_failures = !post_fault_failures;
    recovered;
    final_issues;
    stats;
    overrides = w.ops.overrides ();
    retention;
  }

let base_config = { Cgc.Config.default with Cgc.Config.initial_pages = 8 }

let default_scenarios =
  [
    ("eager", base_config);
    ("lazy", { base_config with Cgc.Config.lazy_sweep = true });
    ("bounded-stack", { base_config with Cgc.Config.mark_stack_limit = Some 32 });
    ("hashed-blacklist", { base_config with Cgc.Config.blacklist_buckets = Some 1024 });
    ("relaxed", { base_config with Cgc.Config.relax_blacklist = true });
  ]

let default_plans ~seed =
  [
    Countdown { every = 7 };
    Chance { probability = 0.04; seed = seed lxor 0xFA17 };
    Quota { bytes = 48 * 4096 };
  ]

let access_plans ~seed =
  [
    Read_chance { probability = 0.0005; seed = seed lxor 0x5EED };
    Read_decay { every = 2000; region = 256 };
    Write_chance { probability = 0.01; seed = seed lxor 0xDECA };
    Write_decay { every = 40; region = 512 };
  ]

let scenarios_for = function
  | Conservative -> default_scenarios
  | Generational | Explicit -> [ ("eager", base_config) ]
  | Precise ->
      (* the exact marker's two interesting axes: the default geometry
         and the bounded preallocated mark stack (overflow rescans) *)
      [
        ("eager", base_config);
        ("bounded-stack", { base_config with Cgc.Config.mark_stack_limit = Some 32 });
      ]

let run_matrix ?(steps = 1500) ?(collectors = all_collectors) ?(mark_jobs = 1)
    ?(domain_fault = No_domain_fault) ~seed () =
  List.concat_map
    (fun collector ->
      List.concat_map
        (fun (scenario, config) ->
          List.map
            (fun plan ->
              run_scenario ~steps ~collector ~mark_jobs ~domain_fault ~seed ~scenario ~config
                ~plan ())
            (default_plans ~seed @ access_plans ~seed))
        (scenarios_for collector))
    collectors

let pp_outcome ppf o =
  let s = o.stats in
  Format.fprintf ppf
    "@[<v>%-12s %-16s x %-18s%s: %d steps (jobs %d), %d faults injected, %d OOM caught -> %s@,\
    \  ladder: %d collects, %d drains, %d trims, %d grows (%d backoffs), %d relax-fp, %d \
     relax-black, %d hooks; %d overrides; %d commit faults, %d raised@,\
    \  access: %d reads (%d mark downgrades) / %d writes faulted; %d mutator reads, %d mutator \
     writes; %d pages decayed, %d alloc retries@]"
    o.collector o.scenario o.plan
    (if o.domain_fault = "no-domain-fault" then "" else " + " ^ o.domain_fault)
    o.steps o.mark_jobs o.faults_injected o.ooms_caught
    (if clean o then "clean" else "VIOLATIONS")
    s.Cgc.Stats.ladder_collects s.Cgc.Stats.ladder_drains s.Cgc.Stats.ladder_trims
    s.Cgc.Stats.ladder_expansions s.Cgc.Stats.ladder_backoffs s.Cgc.Stats.ladder_relax_first_page
    s.Cgc.Stats.ladder_relax_black s.Cgc.Stats.ladder_oom_hooks o.overrides
    s.Cgc.Stats.commit_faults s.Cgc.Stats.oom_raised s.Cgc.Stats.read_faults
    s.Cgc.Stats.mark_downgrades s.Cgc.Stats.write_faults o.mutator_read_faults
    o.mutator_write_faults s.Cgc.Stats.pages_decayed s.Cgc.Stats.decay_retries;
  if o.mark_jobs > 1 && o.collector = "conservative" then
    Format.fprintf ppf "@,  marking: %d parallel, %d serial fallback (last: %s); %d domain \
                        faults, %d reclaimed, %d quorum degradations"
      s.Cgc.Stats.parallel_marks s.Cgc.Stats.mark_serial_fallbacks
      (match o.last_fallback with None -> "none" | Some c -> c)
      s.Cgc.Stats.mark_domain_faults s.Cgc.Stats.mark_domains_recovered
      s.Cgc.Stats.mark_quorum_degradations;
  if o.collector = "precise" then
    Format.fprintf ppf "@,  precise: %d exact collects, %d mark aborts, %d retries, %d stale roots%s"
      s.Cgc.Stats.precise_collections s.Cgc.Stats.precise_mark_aborts
      s.Cgc.Stats.precise_mark_retries s.Cgc.Stats.precise_stale_roots
      (match o.retention with
      | None -> ""
      | Some (p, c) -> Printf.sprintf "; retention %d exact <= %d conservative" p c);
  if not (clean o) then begin
    List.iter (fun e -> Format.fprintf ppf "@,  escaped: %s" e) o.escaped;
    List.iter (fun e -> Format.fprintf ppf "@,  invariant: %s" e) o.verify_issues;
    if o.post_fault_alloc_failures > 0 then
      Format.fprintf ppf "@,  %d post-fault allocations failed" o.post_fault_alloc_failures;
    if not o.recovered then Format.fprintf ppf "@,  did not recover once faults stopped";
    List.iter (fun e -> Format.fprintf ppf "@,  final: %s" e) o.final_issues
  end
