(** Section 4, the malignant case: queues (and lazy lists).

    "Queues and lazy lists in particular have the problem that they grow
    without bound, but typically only a section of bounded length is
    accessible at any point.  A false reference can result in retention
    of all the inaccessible elements, and thus unbounded heap growth."
    And the fix: "queues no longer grow without bound if the queue link
    field is cleared when an item is removed."

    The experiment runs a bounded-window producer/consumer over a linked
    queue, plants one false reference to an early node, and measures how
    many dequeued (dead) nodes the collector must retain. *)

type result = {
  ops : int;  (** total enqueue operations *)
  window : int;  (** live queue length maintained *)
  clear_links : bool;
  false_ref_at : int;  (** index of the node the false reference names *)
  dead_nodes_retained : int;
      (** dequeued nodes still allocated after a collection — grows with
          [ops] when links are not cleared, stays ≈ 1 when they are *)
  live_window_nodes : int;
}

val run :
  ?seed:int ->
  ?prepare:(Harness.t -> unit) ->
  ?window:int ->
  ?false_ref_at:int ->
  clear_links:bool ->
  int ->
  result
(** [run ~clear_links ops].  [prepare] runs on the fresh harness before
    any allocation (trace-recorder hook). *)

val growth_series : ?seed:int -> ?window:int -> clear_links:bool -> int list -> result list
(** The unbounded-growth curve: one run per operation count. *)

val run_stream : ?seed:int -> ?false_ref_at:int -> clear_links:bool -> int -> result
(** The lazy-list reading of the same hazard: a stream whose consumer
    holds only the current cell (window 1) while cells are forced one at
    a time.  A false reference to an already-consumed cell retains the
    whole forced suffix unless consumed links are cleared. *)

val pp : Format.formatter -> result -> unit
