open Cgc_vm
module Machine = Cgc_mutator.Machine

type pollution = {
  conversion_table_words : int;
  library_offset_words : int;
  library_band_bytes : int;
  packed_string_bytes : int;
  aligned_string_bytes : int;
  random_words : int;
  io_buffer_bytes : int;
  churn_words : int;
}

type t = {
  name : string;
  description : string;
  endian : Endian.t;
  layout : Layout.t;
  scan_alignment : int;
  pollution : pollution;
  machine_config : Machine.config;
  lists : int;
  nodes_per_list : int;
  cell_bytes : int;
  other_live_bytes : int;
  gc_tweak : Cgc.Config.t -> Cgc.Config.t;
}

let no_pollution =
  {
    conversion_table_words = 0;
    library_offset_words = 0;
    library_band_bytes = 1;
    packed_string_bytes = 0;
    aligned_string_bytes = 0;
    random_words = 0;
    io_buffer_bytes = 0;
    churn_words = 0;
  }

let kb n = n * 1024
let mb n = n * 1024 * 1024

(* The paper's collector versions 2.3-2.5 used the stack-hygiene
   techniques of section 3.1 "whether or not blacklisting was enabled". *)
let boehm_machine ~optimized ~residue ~noise =
  {
    Machine.default_config with
    Machine.frame_padding = (if optimized then 2 else 8);
    allocator_self_cleanup = true;
    stack_clearing = true;
    register_residue = residue;
    syscall_noise = noise;
  }

let sparc_static ~optimized =
  {
    name = (if optimized then "sparc-static-opt" else "sparc-static");
    description = "SPARCstation 2, SunOS 4.1.1, statically linked C library";
    endian = Endian.Big;
    layout = Layout.sbrk_style ~data_size:(kb 192) ();
    scan_alignment = 1 (* the bundled cc did not word-align string data *);
    pollution =
      {
        conversion_table_words = 1150 (* the >35 KB of IO-library arrays *);
        library_offset_words = 60;
        library_band_bytes = mb 8;
        packed_string_bytes = 1536;
        aligned_string_bytes = 0;
        random_words = 400;
        io_buffer_bytes = kb 16;
        churn_words = 4;
      };
    machine_config = boehm_machine ~optimized ~residue:0.02 ~noise:0.002;
    lists = 200;
    nodes_per_list = 25_000;
    cell_bytes = 4;
    other_live_bytes = 0;
    gc_tweak = Fun.id;
  }

let sparc_dynamic ~optimized =
  {
    (sparc_static ~optimized) with
    name = (if optimized then "sparc-dynamic-opt" else "sparc-dynamic");
    description = "SPARCstation 2, SunOS 4.1.1, shared C library";
    pollution =
      {
        conversion_table_words = 30 (* the big arrays stay in the shared library *);
        library_offset_words = 10;
        library_band_bytes = mb 8;
        packed_string_bytes = 64;
        aligned_string_bytes = 0;
        random_words = 250;
        io_buffer_bytes = kb 8;
        churn_words = 4;
      };
  }

let sgi_static ~optimized =
  {
    name = (if optimized then "sgi-static-opt" else "sgi-static");
    description = "SGI 4D/35, IRIX 4.0.x, big-endian MIPS";
    endian = Endian.Big;
    layout = Layout.sbrk_style ~data_size:(kb 128) ();
    scan_alignment = 4 (* strings and pointers are word-aligned *);
    pollution =
      {
        conversion_table_words = 25;
        library_offset_words = 5;
        library_band_bytes = mb 8;
        packed_string_bytes = 0;
        aligned_string_bytes = kb 8;
        random_words = 120;
        io_buffer_bytes = kb 16;
        churn_words = 4;
      };
    machine_config =
      boehm_machine ~optimized ~residue:0.01
        ~noise:0.02 (* "varying register contents after system call or trap returns" *);
    lists = 200;
    nodes_per_list = 25_000;
    cell_bytes = 4;
    other_live_bytes = 0;
    gc_tweak = Fun.id;
  }

let os2_static ~optimized =
  {
    name = (if optimized then "os2-static-opt" else "os2-static");
    description = "80486, OS/2 2.0, C Set/2; 100 lists / 10 MB due to memory constraints";
    endian = Endian.Little;
    layout = Layout.mid_heap ~data_size:(kb 128) ();
    scan_alignment = 4;
    pollution =
      {
        conversion_table_words = 600;
        library_offset_words = 30;
        library_band_bytes = mb 8;
        packed_string_bytes = kb 1 (* little-endian: end-of-string hazard *);
        aligned_string_bytes = 0;
        random_words = 600;
        io_buffer_bytes = kb 16;
        churn_words = 160;
      };
    machine_config =
      boehm_machine ~optimized ~residue:0.0
        ~noise:0.0 (* "measurements appeared completely reproducible" *);
    lists = 100;
    nodes_per_list = 25_000;
    cell_bytes = 4;
    other_live_bytes = 0;
    gc_tweak = Fun.id;
  }

let pcr =
  {
    name = "pcr";
    description = "PCR/Cedar world, SPARCstation 2; 12500 8-byte cells per list";
    endian = Endian.Big;
    layout = Layout.mid_heap ~data_size:(kb 192) ();
    scan_alignment = 4;
    pollution =
      {
        conversion_table_words = 7400;
        library_offset_words = 80 (* statically allocated PCR variables *);
        library_band_bytes = mb 16;
        packed_string_bytes = 0;
        aligned_string_bytes = kb 4;
        random_words = 500;
        io_buffer_bytes = kb 16;
        churn_words = 420;
      };
    machine_config =
      {
        (boehm_machine ~optimized:false ~residue:0.02 ~noise:0.005) with
        Machine.stack_clearing = false (* "PCR does not attempt to clear thread stacks" *);
      };
    lists = 200;
    nodes_per_list = 12_500;
    cell_bytes = 8;
    other_live_bytes = mb 4 (* the 1.5-13 MB Cedar world, mid-range *);
    gc_tweak = Fun.id;
  }

(* A pollution-free, noise-free environment: every retained byte is
   attributable to the mutator program itself, which is what a trace
   analyzer needs to cross-validate its predictions exactly. *)
let clean ?(machine_config = Machine.hygienic_config) () =
  {
    name = "clean";
    description = "deterministic pollution-free environment for trace analysis";
    endian = Endian.Little;
    layout = Layout.mid_heap ~data_size:(kb 16) ();
    scan_alignment = 4;
    pollution = no_pollution;
    machine_config;
    lists = 12;
    nodes_per_list = 40;
    cell_bytes = 8;
    other_live_bytes = 0;
    gc_tweak = Fun.id;
  }

let all =
  [
    sparc_static ~optimized:false;
    sparc_static ~optimized:true;
    sparc_dynamic ~optimized:false;
    sparc_dynamic ~optimized:true;
    sgi_static ~optimized:false;
    sgi_static ~optimized:true;
    os2_static ~optimized:false;
    os2_static ~optimized:true;
    pcr;
  ]

let names = List.map (fun p -> p.name) all
let by_name name = List.find_opt (fun p -> p.name = name) all

let scale ?lists ?nodes_per_list t =
  {
    t with
    lists = Option.value lists ~default:t.lists;
    nodes_per_list = Option.value nodes_per_list ~default:t.nodes_per_list;
  }

(* --- pollution generators --- *)

(* Base-conversion-style constants: d * 10^k or d * 2^k with optional
   lower-digit noise.  Log-uniform over [1, ~1e8], so a fixed fraction
   lands in any low heap band — exactly the hazard of the paper's
   statically linked SPARC image. *)
let conversion_value rng =
  let d = 1 + Rng.int rng 9 in
  if Rng.bool rng then begin
    let k = Rng.int rng 8 in
    let pow = int_of_float (10. ** float_of_int k) in
    let noise = if Rng.bool rng then Rng.int rng (max 1 pow) else 0 in
    (d * pow) + noise
  end
  else begin
    let k = Rng.int rng 27 in
    let noise = if Rng.bool rng then Rng.int rng (max 1 (1 lsl k)) else 0 in
    (d lsl k) + noise
  end

let random_ascii_string rng =
  let len = 3 + Rng.int rng 10 in
  String.init len (fun _ -> Char.chr (0x21 + Rng.int rng 0x5E))

type env = {
  mem : Mem.t;
  data : Segment.t;
  stack : Segment.t;
  gc : Cgc.Gc.t;
  machine : Machine.t;
  globals_base : Addr.t;
  globals_words : int;
}

let globals_words_reserved = 1024

let fill_pollution t rng data ~limit =
  let cursor = ref (Addr.to_int (Segment.base data)) in
  let out_of_room n = !cursor + n > Addr.to_int limit in
  let put_word v =
    if not (out_of_room 4) then begin
      Segment.write_word data (Addr.of_int !cursor) v;
      cursor := !cursor + 4
    end
  in
  let put_string s =
    let n = String.length s + 1 in
    if not (out_of_room n) then begin
      Segment.blit_string data (Addr.of_int !cursor) s;
      cursor := !cursor + n (* keep the terminating NUL *)
    end
  in
  let p = t.pollution in
  for _ = 1 to p.conversion_table_words do
    put_word (conversion_value rng)
  done;
  for _ = 1 to p.library_offset_words do
    put_word (Rng.int rng p.library_band_bytes)
  done;
  let string_start = !cursor in
  while !cursor - string_start < p.packed_string_bytes do
    put_string (random_ascii_string rng)
  done;
  let aligned_start = !cursor in
  cursor := (!cursor + 3) land lnot 3;
  while !cursor - aligned_start < p.aligned_string_bytes do
    put_string (random_ascii_string rng);
    cursor := (!cursor + 3) land lnot 3
  done;
  cursor := (!cursor + 3) land lnot 3;
  for _ = 1 to p.random_words do
    put_word (Rng.word rng)
  done;
  (* io buffers stay zero-filled: the cursor just skips them *)
  cursor := !cursor + p.io_buffer_bytes

let build_env ?(seed = 1993) ?(blacklisting = true) ?heap_max t =
  let rng = Rng.create seed in
  let mem = Mem.create ~endian:t.endian () in
  let layout =
    match heap_max with
    | None -> t.layout
    | Some heap_max -> { t.layout with Layout.heap_max }
  in
  let _text, data, stack = Layout.apply layout mem in
  let globals_base =
    Addr.add (Segment.limit data) (-(globals_words_reserved * 4))
  in
  fill_pollution t (Rng.split rng) data ~limit:globals_base;
  let config =
    t.gc_tweak
      {
        Cgc.Config.default with
        Cgc.Config.alignment = t.scan_alignment;
        blacklisting;
        initial_pages = 16;
      }
  in
  let gc = Cgc.Gc.create ~config mem ~base:layout.Layout.heap_base ~max_bytes:layout.Layout.heap_max () in
  Cgc.Gc.add_static_root gc ~lo:(Segment.base data) ~hi:(Segment.limit data) ~label:"static data";
  let machine =
    Machine.create ~config:t.machine_config ~seed:(Rng.int rng 1_000_000) mem ~stack ~gc
  in
  { mem; data; stack; gc; machine; globals_base; globals_words = globals_words_reserved }

let churn env t rng =
  let data = env.data in
  let polluted_words = Addr.diff env.globals_base (Segment.base data) / 4 in
  if polluted_words > 0 then
    for _ = 1 to t.pollution.churn_words do
      let slot = Addr.add (Segment.base data) (4 * Rng.int rng polluted_words) in
      Segment.write_word data slot (conversion_value rng)
    done

let pp ppf t =
  Format.fprintf ppf "%s: %s (%s-endian, align %d, %d lists x %d x %dB)" t.name t.description
    (Endian.to_string t.endian) t.scan_alignment t.lists t.nodes_per_list t.cell_bytes
