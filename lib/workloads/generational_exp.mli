(** Generational collection vs stray stack pointers (section 3.1).

    "In the Cedar environment, we also observed that stray stack
    pointers can significantly lengthen the lifetime of some objects,
    thus placing a ceiling on the effectiveness of generational
    collection."

    The workload allocates a batch of short-lived cons cells per round
    inside a stack frame, drops them, and runs a minor collection.  With
    a hygienic machine the batches die young and almost nothing is
    promoted beyond the small live working set; with a careless machine,
    stale frame and register words keep dead batches "reachable" across
    enough minor collections that whole pages of garbage get promoted —
    garbage the minor collector can then never reclaim. *)

type hygiene =
  | Clean  (** frames cleared, allocator tidy, registers scrubbed *)
  | Careless  (** section 3.1's worst case *)

type result = {
  hygiene : hygiene;
  rounds : int;
  batch : int;  (** cons cells allocated and dropped per round *)
  live_set_bytes : int;  (** the only data that deserves promotion *)
  promoted_bytes : int;
  promoted_pages : int;
  minor_collections : int;
  garbage_promoted_bytes : int;  (** promoted beyond the live set (>= 0) *)
}

val run : ?seed:int -> ?batch:int -> hygiene -> rounds:int -> result

(** {1 The promotion ceiling}

    The tenure threshold swept, with promotion measured in a clean
    window: each point warms up until the legitimate live set has
    tenured, zeroes the counters ({!Cgc.Generational.reset_stats}), and
    then runs the measured rounds — so every byte promoted inside the
    window is promoted garbage.  Raising [promote_after] is the
    standard defense against premature tenuring; the careless machine
    defeats it (stray stack and register words keep dead batches
    apparently live across arbitrarily many consecutive minors), which
    is precisely the paper's ceiling on generational effectiveness. *)

type ceiling_point = {
  cp_promote_after : int;
  cp_promoted_bytes : int;  (** in-window; all of it garbage *)
  cp_promoted_pages : int;
  cp_dirty_rescans : int;
}

type ceiling = {
  c_hygiene : hygiene;
  c_rounds : int;
  c_batch : int;
  c_points : ceiling_point list;
}

val ceiling :
  ?seed:int -> ?batch:int -> ?thresholds:int list -> hygiene -> rounds:int -> ceiling
(** Default [thresholds] are [[1; 2; 4; 8]]. *)

val hygiene_name : hygiene -> string
val pp : Format.formatter -> result -> unit
val pp_ceiling : Format.formatter -> ceiling -> unit
