open Cgc_vm
module Machine = Cgc_mutator.Machine
module Builder = Cgc_mutator.Builder

type mode =
  | Careless
  | Cleared
  | Optimized

type result = {
  mode : mode;
  elements : int;
  iterations : int;
  max_live_cells : int;
  final_live_cells : int;
  cells_allocated : int;
  collections : int;
}

let machine_config_of = function
  | Careless ->
      {
        Machine.default_config with
        Machine.frame_padding = 16;
        allocator_self_cleanup = false;
        stack_clearing = false;
      }
  | Cleared ->
      {
        Machine.default_config with
        Machine.frame_padding = 16;
        allocator_self_cleanup = false (* only the cheap stack clearing is added *);
        stack_clearing = true;
        stack_clear_period = 2;
        stack_clear_words = 4096;
      }
  | Optimized ->
      {
        Machine.default_config with
        Machine.frame_padding = 2;
        allocator_self_cleanup = true;
        stack_clearing = false;
      }

(* Naive non-destructive reversal: reverse l = append (reverse (cdr l))
   [car l].  Each call gets a real simulated frame, so the recursion
   paints the stack with cons pointers exactly as compiled C would. *)
(* reverse and append use different frame shapes (as two distinct C
   functions would): a popped append frame's written slots land inside a
   later reverse frame's never-written area and vice versa — the
   "unnecessarily large stack frames, parts of which are never written"
   effect of section 3.1. *)
let rec naive_reverse h poll l =
  let m = h.Harness.machine in
  Machine.call m ~slots:3 (fun frame ->
      if l = Builder.nil then Builder.nil
      else begin
        Machine.set_local frame 0 l;
        let rest = naive_reverse h poll (Builder.cdr m (Addr.of_int l)) in
        Machine.set_local frame 1 rest;
        let single = Builder.cons m ~car:(Builder.car m (Addr.of_int l)) ~cdr:Builder.nil in
        poll ();
        Machine.set_local frame 2 (Addr.to_int single);
        Addr.to_int (append h poll rest (Addr.to_int single))
      end)

and append h poll a b =
  let m = h.Harness.machine in
  Machine.call m ~slots:8 (fun frame ->
      if a = Builder.nil then Addr.of_int b
      else begin
        Machine.set_local frame 0 a;
        Machine.set_local frame 1 b;
        let tail = append h poll (Builder.cdr m (Addr.of_int a)) b in
        Machine.set_local frame 2 (Addr.to_int tail);
        let c = Builder.cons m ~car:(Builder.car m (Addr.of_int a)) ~cdr:(Addr.to_int tail) in
        poll ();
        c
      end)

(* The tail-recursive version "optimized to a loop": one frame, two
   locals, constant stack. *)
let loop_reverse h poll l =
  let m = h.Harness.machine in
  Machine.call m ~slots:2 (fun frame ->
      Machine.set_local frame 0 l;
      Machine.set_local frame 1 Builder.nil;
      while Machine.get_local frame 0 <> Builder.nil do
        let cur = Addr.of_int (Machine.get_local frame 0) in
        let c = Builder.cons m ~car:(Builder.car m cur) ~cdr:(Machine.get_local frame 1) in
        poll ();
        Machine.set_local frame 1 (Addr.to_int c);
        Machine.set_local frame 0 (Builder.cdr m cur)
      done;
      Addr.of_int (Machine.get_local frame 1))

let run ?(seed = 7) ?prepare mode ~elements ~iterations =
  if elements < 1 || iterations < 1 then invalid_arg "List_reverse.run: empty workload";
  let h = Harness.create ~seed ~machine_config:(machine_config_of mode) ~heap_kb:16384 () in
  (match prepare with None -> () | Some f -> f h);
  let gc = h.Harness.gc in
  let stats = Cgc.Gc.stats gc in
  let max_live = ref 0 in
  (* live_objects is refreshed at every sweep, so polling after each
     allocation observes every (auto or explicit) collection's count *)
  let poll () = if stats.Cgc.Stats.live_objects > !max_live then max_live := stats.Cgc.Stats.live_objects in
  let original = Builder.list_of h.Harness.machine (List.init elements Fun.id) in
  Harness.set_root h 0 (Addr.to_int original);
  for _ = 1 to iterations do
    let reversed =
      match mode with
      | Careless | Cleared -> naive_reverse h poll (Addr.to_int original)
      | Optimized -> loop_reverse h poll (Addr.to_int original)
    in
    Harness.set_root h 1 (Addr.to_int reversed)
  done;
  Cgc.Gc.collect gc;
  poll ();
  {
    mode;
    elements;
    iterations;
    max_live_cells = !max_live;
    final_live_cells = stats.Cgc.Stats.live_objects;
    cells_allocated = stats.Cgc.Stats.objects_allocated;
    collections = stats.Cgc.Stats.collections;
  }

let mode_name = function
  | Careless -> "careless"
  | Cleared -> "stack-cleared"
  | Optimized -> "optimized"

let pp ppf r =
  Format.fprintf ppf
    "%-13s reverse %d x%d: max %d cells apparently live (final %d, %d allocated, %d GCs)"
    (mode_name r.mode) r.elements r.iterations r.max_live_cells r.final_live_cells
    r.cells_allocated r.collections
