(** Section 3, observation 7: large objects vs the blacklist.

    "A quick examination of the blacklist in a statically linked SPARC
    executable suggests that if all interior pointers are considered
    valid, it becomes difficult to allocate individual objects larger
    than about 100 Kbytes without violating the blacklist constraint ...
    This is never a problem if addresses that do not point to the first
    page of an object can be considered invalid."

    The probe builds the SPARC-static environment (startup collection
    populates the blacklist from static data), then tries to place a
    single object of each size under both interior-pointer regimes. *)

type failure =
  | Blacklist_starved
      (** room for the object existed, the blacklist vetoed it — the
          observation-7 failure proper *)
  | Out_of_pages  (** the reserve genuinely has no run of that size *)
  | Os_refused  (** an injected commit fault blocked placement *)

val failure_to_string : failure -> string

type probe = {
  size_kb : int;
  anywhere_ok : bool;  (** placeable when the whole run must be clean *)
  anywhere_failure : failure option;
      (** why placement failed (from the collector's {!Cgc.Gc.oom_diagnosis}) *)
  first_page_ok : bool;  (** placeable when only the first page must be *)
  first_page_failure : failure option;
}

type result = {
  black_pages : int;  (** blacklist population after startup *)
  heap_pages : int;
  probes : probe list;
  largest_anywhere_kb : int;  (** largest size that fit under [Anywhere]; 0 if none *)
  largest_first_page_kb : int;
}

val run : ?seed:int -> ?platform:Platform.t -> sizes_kb:int list -> unit -> result

val pp : Format.formatter -> result -> unit
