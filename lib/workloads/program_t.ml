open Cgc_vm
module Machine = Cgc_mutator.Machine
module Builder = Cgc_mutator.Builder

type result = {
  platform : string;
  blacklisting : bool;
  lists : int;
  retained : int;
  retention_percent : float;
  false_refs : int;
  blacklisted_pages : int;
  collections : int;
  committed_kb : int;
  live_kb : int;
  blacklist_ops : int;
  words_scanned : int;
  total_gc_seconds : float;
}

let token i = "list-" ^ string_of_int i

(* The global array a[N] lives in the platform's static data segment,
   exactly like the C global of appendix A. *)
let a_slot env i = Addr.add env.Platform.globals_base (4 * i)

let set_a env i v =
  Machine.write_root_word env.Platform.machine env.Platform.data (a_slot env i) v

(* PCR rows: the surrounding Cedar world.  A chain of 64-word records
   rooted in a reserved global; payload words are mostly zero with the
   occasional integer that the conservative scan must cope with. *)
let allocate_ballast env rng bytes =
  if bytes > 0 then begin
    let m = env.Platform.machine in
    let record_bytes = 256 in
    let n = bytes / record_bytes in
    let root_slot = Addr.add env.Platform.globals_base (4 * (env.Platform.globals_words - 1)) in
    for _ = 1 to n do
      let r = Machine.allocate m record_bytes in
      let prev = Machine.read_root_word m env.Platform.data root_slot in
      Machine.write_field m r 0 prev;
      for w = 1 to (record_bytes / 4) - 1 do
        (* payload integers stay below the heap: sizes, counts, character
           data — live data mass without extra false references *)
        if Rng.chance rng 0.05 then Machine.write_field m r w (Rng.int rng (1024 * 1024))
      done;
      Machine.write_root_word m env.Platform.data root_slot (Addr.to_int r)
    done
  end

(* One call to allot_cycle, inside its own stack frame: the frame's
   locals hold the list head while it is being built, and linger in the
   dead stack afterwards — the stale-pointer mechanism of section 3.1. *)
let allot_cycle env ?finalizer ~cell_bytes ~nodes () =
  let m = env.Platform.machine in
  Machine.call m ~slots:3 (fun frame ->
      let head = Builder.alloc_cycle ?finalizer ~cell_bytes m ~n:nodes in
      Machine.set_local frame 0 (Addr.to_int head);
      head)

(* Appendix A's test(n): build the lists into a[], then drop them. *)
let test env ~register_finalizers ~lists ~cell_bytes ~nodes =
  let m = env.Platform.machine in
  Machine.call m ~slots:2 (fun frame ->
      for i = 0 to lists - 1 do
        Machine.set_local frame 0 i;
        let finalizer = if register_finalizers then Some (token i) else None in
        let head = allot_cycle env ?finalizer ~cell_bytes ~nodes () in
        set_a env i (Addr.to_int head)
      done;
      for i = 0 to lists - 1 do
        Machine.set_local frame 0 i;
        set_a env i 0
      done)

let gcollect env =
  (* GC_gcollect is itself a call: its (uninitialized) frame re-exposes
     a slice of the dead stack to the collector. *)
  Machine.call env.Platform.machine ~slots:8 (fun _frame -> Cgc.Gc.collect env.Platform.gc)

let run ?(seed = 1993) ?(blacklisting = true) ?prepare ?lists ?nodes (platform : Platform.t) =
  let platform = Platform.scale ?lists ?nodes_per_list:nodes platform in
  let lists = platform.Platform.lists in
  let nodes = platform.Platform.nodes_per_list in
  let cell_bytes = platform.Platform.cell_bytes in
  (* reserve room for the lists plus collector slop; the blacklist covers
     exactly this region ("the vicinity of the heap") *)
  let live_estimate = (lists * nodes * cell_bytes) + platform.Platform.other_live_bytes in
  let heap_max = max (4 * live_estimate) (8 * 1024 * 1024) in
  let env = Platform.build_env ~seed ~blacklisting ~heap_max platform in
  (match prepare with
  | Some f -> f env
  | None -> ());
  if lists > env.Platform.globals_words - 8 then
    invalid_arg "Program_t.run: too many lists for the reserved globals area";
  let rng = Rng.create (seed lxor 0x5EED) in
  allocate_ballast env rng platform.Platform.other_live_bytes;
  (* the experiment proper *)
  test env ~register_finalizers:true ~lists ~cell_bytes ~nodes;
  (* background activity: occasionally-changing static variables create
     false references after the pages are already in use *)
  Platform.churn env platform rng;
  gcollect env;
  (* "Simulate further program execution to clear stack garbage.
      This is not terribly effective." *)
  test env ~register_finalizers:false ~lists ~cell_bytes ~nodes:2;
  Platform.churn env platform rng;
  gcollect env;
  (* PCR methodology: collect until no further lists are finalized *)
  let collected = ref 0 in
  let count_tokens () =
    List.iter
      (fun (_, tok) -> if String.length tok >= 5 && String.sub tok 0 5 = "list-" then incr collected)
      (Cgc.Gc.drain_finalized env.Platform.gc)
  in
  count_tokens ();
  let rec settle tries =
    let before = !collected in
    gcollect env;
    count_tokens ();
    if !collected > before && tries > 0 then settle (tries - 1)
  in
  settle 4;
  let stats = Cgc.Gc.stats env.Platform.gc in
  let retained = lists - !collected in
  {
    platform = platform.Platform.name;
    blacklisting;
    lists;
    retained;
    retention_percent = 100. *. float_of_int retained /. float_of_int lists;
    false_refs = stats.Cgc.Stats.false_refs;
    blacklisted_pages = Cgc.Gc.blacklisted_pages env.Platform.gc;
    collections = stats.Cgc.Stats.collections;
    committed_kb = Cgc.Heap.committed_bytes (Cgc.Gc.heap env.Platform.gc) / 1024;
    live_kb = stats.Cgc.Stats.live_bytes / 1024;
    blacklist_ops = Cgc.Blacklist.ops (Cgc.Gc.blacklist env.Platform.gc);
    words_scanned = stats.Cgc.Stats.words_scanned;
    total_gc_seconds = stats.Cgc.Stats.total_gc_seconds;
  }

type row = {
  without_blacklisting : result;
  with_blacklisting : result;
}

let run_row ?seed ?lists ?nodes platform =
  {
    without_blacklisting = run ?seed ~blacklisting:false ?lists ?nodes platform;
    with_blacklisting = run ?seed ~blacklisting:true ?lists ?nodes platform;
  }

let pp_result ppf r =
  Format.fprintf ppf "%-18s %-3s retained %3d/%3d (%5.1f%%)  false=%d black=%d gcs=%d heap=%dKB"
    r.platform
    (if r.blacklisting then "bl+" else "bl-")
    r.retained r.lists r.retention_percent r.false_refs r.blacklisted_pages r.collections
    r.committed_kb
