(** Chaos driver: a randomized mutator under injected memory-pressure
    faults.

    Each scenario runs the soak-style random mutator (allocations small
    and large, links, dropped roots, planted false references, explicit
    collections, drains, trims) against a collector whose simulated OS
    is failing commits according to a deterministic {!Cgc_vm.Mem.Fault}
    plan.  After every injected fault the driver audits crash coherence
    ({!Cgc.Verify.check_after_fault}) and proves the collector is still
    usable by allocating once with the plan lifted; when the run ends
    and faults stop for good, it must recover outright.

    Shared by [test/test_chaos.ml], the [cgc_lab chaos] subcommand and
    the bench resilience section. *)

type plan_spec =
  | Countdown of { every : int }  (** every [every]-th commit fails (re-arming) *)
  | Chance of { probability : float; seed : int }  (** seeded per-commit failure chance *)
  | Quota of { bytes : int }  (** byte budget standing in for an OS memory limit *)

val plan_name : plan_spec -> string
val instantiate : plan_spec -> Cgc_vm.Mem.Fault.plan

type outcome = {
  scenario : string;
  plan : string;
  steps : int;
  faults_injected : int;
  ooms_caught : int;  (** [Out_of_memory] surfacing to the mutator — expected under pressure *)
  escaped : string list;  (** any other exception escaping a public entry point: a bug *)
  verify_issues : string list;  (** post-fault invariant violations, step-tagged: bugs *)
  post_fault_alloc_failures : int;
      (** injected faults after which a fault-free allocation failed *)
  recovered : bool;  (** allocation succeeded once faults stopped for good *)
  final_issues : string list;  (** {!Cgc.Verify.check} at the end of the run *)
  stats : Cgc.Stats.t;  (** snapshot, including the ladder-rung counters *)
  overrides : int;  (** blacklist overrides by relaxation rungs *)
}

val clean : outcome -> bool
(** No escapes, no invariant violations, every post-fault allocation
    succeeded, and the run recovered. *)

val run_scenario :
  ?steps:int ->
  seed:int ->
  scenario:string ->
  config:Cgc.Config.t ->
  plan:plan_spec ->
  unit ->
  outcome

val base_config : Cgc.Config.t
(** {!Cgc.Config.default} on a small committed footprint (8 initial
    pages) so fault plans bite quickly. *)

val default_scenarios : (string * Cgc.Config.t) list
(** eager, lazy, bounded mark stack, hashed blacklist, and
    relax-blacklist variants of {!base_config}. *)

val default_plans : seed:int -> plan_spec list
(** A re-arming countdown, a seeded probability, and a commit quota. *)

val run_matrix : ?steps:int -> seed:int -> unit -> outcome list
(** Every default scenario crossed with every default plan. *)

val pp_outcome : Format.formatter -> outcome -> unit
