(** Chaos driver: a randomized mutator under injected memory faults,
    runnable against several memory-management backends.

    Each scenario runs the soak-style random mutator (allocations small
    and large, links, field reads, dropped roots, planted false
    references, explicit collections, drains, trims) against a backend
    whose simulated memory is failing according to a deterministic
    {!Cgc_vm.Mem.Fault} plan — refused commits, ECC-style read faults,
    refused writes, or permanent decay of whole regions.  After every
    injected fault the driver audits crash coherence
    ({!Cgc.Verify.check_after_fault}, or the heap-level
    {!Cgc.Verify.check_heap} for the explicit baseline) and proves the
    backend is still usable by allocating once with the plan lifted;
    when the run ends and faults stop for good, it must recover
    outright.

    Shared by [test/test_chaos.ml], the [cgc_lab chaos] subcommand and
    the bench resilience section. *)

type collector =
  | Conservative  (** the paper's collector, {!Cgc.Gc} *)
  | Generational  (** the page-grained two-generation wrapper *)
  | Explicit  (** the malloc/free baseline — no scanning, typed OOM *)
  | Precise
      (** the type-accurate control, {!Cgc.Precise}, driven by the typed
          differential mutator ({!Typed_mutator}) instead of the untyped
          soak: every cell replays a typed trace against the exact view
          under faults {e and} a pristine conservative twin, checking
          that precise retention never exceeds conservative retention *)

val collector_name : collector -> string
val all_collectors : collector list

type plan_spec =
  | Countdown of { every : int }  (** every [every]-th commit fails (re-arming) *)
  | Chance of { probability : float; seed : int }  (** seeded per-commit failure chance *)
  | Quota of { bytes : int }  (** byte budget standing in for an OS memory limit *)
  | Read_chance of { probability : float; seed : int }
      (** seeded per-read ECC corruption chance (memory stays intact) *)
  | Read_decay of { every : int; region : int }
      (** every [every]-th read permanently decays the aligned [region]
          bytes around it (poison pattern, all later access faults) *)
  | Write_chance of { probability : float; seed : int }
      (** seeded per-write refusal chance (transient; the store is lost) *)
  | Write_decay of { every : int; region : int }
      (** every [every]-th write decays its region — exercises the
          collector's quarantine-and-retry escalation *)

val plan_name : plan_spec -> string

val is_access_plan : plan_spec -> bool
(** Whether the plan faults loads or stores (as opposed to commits):
    under such a plan a [mark_jobs > 1] run must take the tracer's typed
    serial fallback. *)

val instantiate : plan_spec -> Cgc_vm.Mem.Fault.plan

(** The marker-domain failure axis, orthogonal to the memory-fault
    plans: each armed cell injects one {!Cgc.Domain_fault} plan against
    domain 1 of every parallel mark phase (under a tightened watchdog
    budget), and additionally audits the recovery discipline — armed
    cells that really marked in parallel must have tripped the fault,
    stall/crash/livelock victims must have been reclaimed, access-plan
    cells must never reach a fault site, and quorum (1) must never
    degrade. *)
type domain_fault_spec =
  | No_domain_fault
  | Stall_fault  (** victim freezes at an item boundary — clean reclaim *)
  | Crash_fault  (** victim dies at a checkpoint — clean or dirty reclaim *)
  | Livelock_fault  (** victim freezes holding a claimed item — dirty reclaim *)
  | Straggler_fault
      (** victim is merely slow; the watchdog may reclaim it or tolerate
          it, and recovery must be exact either way *)

val all_domain_faults : domain_fault_spec list
val domain_fault_name : domain_fault_spec -> string

val domain_fault_plans : domain_fault_spec -> Cgc.Domain_fault.plan list
(** The concrete plans an armed cell passes to {!Cgc.Gc.set_domain_faults}. *)

type outcome = {
  collector : string;
  scenario : string;
  plan : string;
  domain_fault : string;  (** the armed {!domain_fault_spec}'s name *)
  steps : int;
  mark_jobs : int;  (** marker domains requested of the conservative tracer *)
  last_fallback : string option;
      (** how the run's final mark phase ran ("parallel" or the typed
          fallback cause); [None] when no parallel phase was requested *)
  faults_injected : int;
  ooms_caught : int;  (** [Out_of_memory] surfacing to the mutator — expected under pressure *)
  mutator_read_faults : int;
      (** typed [Mem.Read_fault] surfacing from mutator field reads — expected *)
  mutator_write_faults : int;
      (** typed [Mem.Write_fault] surfacing from mutator field writes — expected *)
  escaped : string list;  (** any other exception escaping a public entry point: a bug *)
  verify_issues : string list;  (** post-fault invariant violations, step-tagged: bugs *)
  post_fault_alloc_failures : int;
      (** injected faults after which a fault-free allocation failed *)
  recovered : bool;  (** allocation succeeded once faults stopped for good *)
  final_issues : string list;  (** final coherence audit at the end of the run *)
  stats : Cgc.Stats.t;
      (** snapshot, including ladder-rung and access-fault counters
          (all-zero for the explicit baseline, which keeps no [Stats.t]) *)
  overrides : int;  (** blacklist overrides by relaxation rungs *)
  retention : (int * int) option;
      (** precise cells: (exact live, conservative-twin live) at the
          last completed exact collect; [None] for other collectors or
          when no exact collect completed *)
}

val clean : outcome -> bool
(** No escapes, no invariant violations, every post-fault allocation
    succeeded, and the run recovered.  Mutator-level typed faults and
    OOMs do {e not} make a run dirty — they are the expected surface of
    an unreliable memory. *)

val run_scenario :
  ?steps:int ->
  ?collector:collector ->
  ?mark_jobs:int ->
  ?domain_fault:domain_fault_spec ->
  seed:int ->
  scenario:string ->
  config:Cgc.Config.t ->
  plan:plan_spec ->
  unit ->
  outcome
(** Default collector: {!Conservative} (backward compatible).
    [mark_jobs] (default 1) overrides [Config.mark_jobs] so the same
    matrix can run under the parallel tracer; with [mark_jobs > 1] the
    run additionally asserts the marking discipline — access plans must
    show the typed serial fallback, commit plans must really have marked
    in parallel — and any violation lands in [final_issues], so {!clean}
    catches it.  [domain_fault] (default {!No_domain_fault}) arms the
    marker-domain failure axis on the conservative collector (ignored
    for other backends and for [mark_jobs <= 1]), including its
    recovery-discipline audit. *)

val base_config : Cgc.Config.t
(** {!Cgc.Config.default} on a small committed footprint (8 initial
    pages) so fault plans bite quickly. *)

val default_scenarios : (string * Cgc.Config.t) list
(** eager, lazy, bounded mark stack, hashed blacklist, and
    relax-blacklist variants of {!base_config}. *)

val default_plans : seed:int -> plan_spec list
(** A re-arming countdown, a seeded probability, and a commit quota —
    the commit-fault plans. *)

val access_plans : seed:int -> plan_spec list
(** The read/write fault plans: ECC read chance, read decay, write
    refusal chance, write decay. *)

val run_matrix :
  ?steps:int ->
  ?collectors:collector list ->
  ?mark_jobs:int ->
  ?domain_fault:domain_fault_spec ->
  seed:int ->
  unit ->
  outcome list
(** Every scenario crossed with every commit {e and} access plan, for
    each requested collector (default: all four).  The conservative
    collector runs all {!default_scenarios}; the generational and
    explicit backends run the eager base configuration; the precise
    backend runs the eager and bounded-mark-stack configurations (the
    exact marker's two interesting axes).  [mark_jobs] (default 1) and
    [domain_fault] (default {!No_domain_fault}) are forwarded to every
    cell. *)

val pp_outcome : Format.formatter -> outcome -> unit
