(** Heap page descriptors.

    The heap is an array of fixed-size pages ("heap blocks"); each
    committed page is either dedicated to small objects of one size
    class, or part of a multi-page large object.  Mark and allocation
    state live in the descriptor, not in the objects — objects are
    headerless. *)

open Cgc_vm

type small = {
  granules : int;  (** object size in granules *)
  object_bytes : int;  (** object size in bytes *)
  pointer_free : bool;  (** contents never scanned (atomic objects) *)
  first_offset : int;  (** byte offset of the first object in the page *)
  n_objects : int;
  alloc : Bitset.t;  (** object currently allocated *)
  mark : Bitset.t;  (** object reached during the current/last mark *)
}

type large = {
  n_pages : int;
  object_bytes : int;  (** exact size requested, may not fill the last page *)
  l_pointer_free : bool;
  mutable l_allocated : bool;
  mutable l_marked : bool;
}

type t =
  | Uncommitted  (** reserved for the heap but not yet obtained *)
  | Free  (** committed and empty *)
  | Small of small
  | Large_head of large
  | Large_tail of { head_index : int }

(** {1 Kind codes}

    Small-integer encodings of the variant's constructor, stored in the
    heap's flat descriptor table so the scan fast path can dispatch on a
    byte-array load instead of a variant match. *)

val kind_uncommitted : int
val kind_free : int
val kind_small : int
val kind_large_head : int
val kind_large_tail : int

val kind_code : t -> int

val dummy_large : large
(** Shared placeholder for descriptor rows of pages that carry no large
    object.  Never meaningfully mutated. *)

val make_small :
  granules:int -> object_bytes:int -> pointer_free:bool -> first_offset:int -> n_objects:int -> t

val make_large : n_pages:int -> object_bytes:int -> pointer_free:bool -> t

val is_free_or_uncommitted : t -> bool

val live_objects : t -> int
(** Allocated objects on this page (0 for [Free], [Uncommitted] and
    [Large_tail]; 0 or 1 for [Large_head]). *)

val pp : Format.formatter -> t -> unit
