open Cgc_vm

type classification =
  | Valid of { base : Addr.t; page : int }
  | False_in_heap of { page : int }
  | Outside

(* The reference classifier: a direct transcription of the paper's
   validity test against the [Page.t] variants.  Kept as the oracle for
   the fast path (see [Reference]) and for cold call sites
   ([Gc.find_object], tracing, the generational write barrier) where
   clarity beats throughput. *)
let classify heap (config : Config.t) value =
  if not (Heap.contains heap value) then Outside
  else begin
    let page = Heap.page_index heap value in
    let invalid = False_in_heap { page } in
    match Heap.page heap page with
    | Page.Uncommitted | Page.Free -> invalid
    | Page.Small s ->
        let off_in_page = value - Addr.to_int (Heap.page_addr heap page) in
        let rel = off_in_page - s.Page.first_offset in
        if rel < 0 then invalid
        else begin
          let index = rel / s.Page.object_bytes in
          let displacement = rel mod s.Page.object_bytes in
          if index >= s.Page.n_objects then invalid
          else if not (Bitset.mem s.Page.alloc index) then invalid
          else if
            displacement = 0 || config.Config.interior_pointers
            || List.mem displacement config.Config.valid_displacements
          then
            Valid
              {
                base =
                  Addr.add (Heap.page_addr heap page)
                    (s.Page.first_offset + (index * s.Page.object_bytes));
                page;
              }
          else invalid
        end
    | Page.Large_head l ->
        if not l.Page.l_allocated then invalid
        else begin
          let off = value - Addr.to_int (Heap.page_addr heap page) in
          if off = 0 then Valid { base = Heap.page_addr heap page; page }
          else if
            config.Config.interior_pointers && off < l.Page.object_bytes
            (* any offset within the first page is within both regimes *)
          then Valid { base = Heap.page_addr heap page; page }
          else invalid
        end
    | Page.Large_tail { head_index } -> (
        if not config.Config.interior_pointers then invalid
        else
          match config.Config.large_validity with
          | Config.First_page_only -> invalid
          | Config.Anywhere -> (
              match Heap.page heap head_index with
              | Page.Large_head l when l.Page.l_allocated ->
                  let off = value - Addr.to_int (Heap.page_addr heap head_index) in
                  if off < l.Page.object_bytes then
                    Valid { base = Heap.page_addr heap head_index; page = head_index }
                  else invalid
              | Page.Large_head _ | Page.Uncommitted | Page.Free | Page.Small _
              | Page.Large_tail _ ->
                  invalid))
  end

type t = {
  heap : Heap.t;
  config : Config.t;
  blacklist : Blacklist.t;
  stats : Stats.t;
  mem : Mem.t;
      (* the fault boundary: scan loops consult it for injected read
         faults (checked once per range, so the fault-free path never
         pays a per-word plan lookup) *)
  mutable stack : int array; (* object base addresses *)
  mutable sp : int;
  mutable overflowed : bool;
  (* Scan scalars hoisted out of the per-word path.  All are immutable
     copies of configuration/heap geometry that cannot change while the
     marker exists. *)
  desc : Heap.desc;
  heap_seg : Segment.t;
  heap_lo : int;
  heap_hi : int;
  page_shift : int;
  page_mask : int;  (** [page_size - 1] *)
  alignment : int;
  granule : int;
  interior : bool;
  tail_valid : bool;  (** interior pointers on and [large_validity = Anywhere] *)
  blacklisting : bool;
  disp_mask : int array;
  (* One-entry header cache (Boehm's HDR cache): the descriptor row of
     the page hit by the previous heap reference.  Scanned pointers
     cluster heavily by page, so most lookups avoid even the flat-table
     loads.  [cache_page = -1] means empty; invalidated whenever the
     page table may have changed under us (at the start of [run] /
     [mark_value]). *)
  mutable cache_page : int;
  mutable cache_kind : int;
  mutable cache_object_bytes : int;
  mutable cache_first_offset : int;
  mutable cache_n_objects : int;
  mutable cache_pointer_free : bool;
  mutable cache_head : int;
  mutable cache_alloc : Bitset.t;
  mutable cache_mark : Bitset.t;
  mutable cache_large : Page.large;
}

let create heap config blacklist stats =
  {
    heap;
    config;
    blacklist;
    stats;
    mem = Heap.mem heap;
    stack = Array.make 1024 0;
    sp = 0;
    overflowed = false;
    desc = Heap.desc heap;
    heap_seg = Heap.segment heap;
    heap_lo = Addr.to_int (Heap.base heap);
    heap_hi = Addr.to_int (Heap.limit_reserved heap);
    page_shift = Heap.page_shift heap;
    page_mask = Heap.page_size heap - 1;
    alignment = config.Config.alignment;
    granule = config.Config.granule;
    interior = config.Config.interior_pointers;
    tail_valid =
      config.Config.interior_pointers
      && (match config.Config.large_validity with
         | Config.Anywhere -> true
         | Config.First_page_only -> false);
    blacklisting = config.Config.blacklisting;
    disp_mask = Config.displacement_mask config;
    cache_page = -1;
    cache_kind = Page.kind_uncommitted;
    cache_object_bytes = 0;
    cache_first_offset = 0;
    cache_n_objects = 0;
    cache_pointer_free = true;
    cache_head = 0;
    cache_alloc = Bitset.create 0;
    cache_mark = Bitset.create 0;
    cache_large = Page.dummy_large;
  }

let push t base =
  let at_limit =
    match t.config.Config.mark_stack_limit with
    | Some limit -> t.sp >= limit
    | None -> false
  in
  if at_limit then begin
    (* the object IS marked; its children will be found by the
       overflow-recovery rescan *)
    if not t.overflowed then t.stats.Stats.mark_stack_overflows <- t.stats.Stats.mark_stack_overflows + 1;
    t.overflowed <- true
  end
  else begin
    if t.sp = Array.length t.stack then begin
      let bigger = Array.make (2 * Array.length t.stack) 0 in
      Array.blit t.stack 0 bigger 0 t.sp;
      t.stack <- bigger
    end;
    t.stack.(t.sp) <- base;
    t.sp <- t.sp + 1
  end

let clear_marks heap =
  Heap.iter_committed heap (fun _ p ->
      match p with
      | Page.Small s -> Bitset.clear s.Page.mark
      | Page.Large_head l -> l.Page.l_marked <- false
      | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ())

(* --- the fast path ------------------------------------------------- *)

(* Fill the header cache with page's descriptor row: straight-line loads
   from the flat table, no variant match, no allocation.  [page] is in
   range by construction ([consider_heap] bounds-checks the address, and
   the descriptor arrays span every reserved page). *)
let load_header t page =
  let d = t.desc in
  t.cache_page <- page;
  t.cache_kind <- Char.code (Bytes.unsafe_get d.Heap.d_kind page);
  t.cache_object_bytes <- Array.unsafe_get d.Heap.d_object_bytes page;
  t.cache_first_offset <- Array.unsafe_get d.Heap.d_first_offset page;
  t.cache_n_objects <- Array.unsafe_get d.Heap.d_n_objects page;
  t.cache_pointer_free <- Bytes.unsafe_get d.Heap.d_pointer_free page <> '\000';
  t.cache_head <- Array.unsafe_get d.Heap.d_head page;
  t.cache_alloc <- Array.unsafe_get d.Heap.d_alloc page;
  t.cache_mark <- Array.unsafe_get d.Heap.d_mark page;
  t.cache_large <- Array.unsafe_get d.Heap.d_large page

let[@inline] ensure_header t page =
  if page = t.cache_page then
    t.stats.Stats.header_cache_hits <- t.stats.Stats.header_cache_hits + 1
  else load_header t page

let[@inline] note_false t page =
  t.stats.Stats.false_refs <- t.stats.Stats.false_refs + 1;
  if t.blacklisting then Blacklist.note t.blacklist page

let[@inline] note_valid t = t.stats.Stats.valid_refs <- t.stats.Stats.valid_refs + 1

(* Classify-and-mark fused, against the cached descriptor row.  Mirrors
   [classify] exactly (the differential tests pin this), but never
   allocates: no classification constructor, no closure, no [Int32].
   Does NOT count the word into [words_scanned] — range scans batch that
   per range. *)
let consider_heap t value =
  if value >= t.heap_lo && value < t.heap_hi then begin
    let page = (value - t.heap_lo) lsr t.page_shift in
    ensure_header t page;
    let kind = t.cache_kind in
    if kind = Page.kind_small then begin
      let rel = ((value - t.heap_lo) land t.page_mask) - t.cache_first_offset in
      if rel < 0 then note_false t page
      else begin
        let object_bytes = t.cache_object_bytes in
        let index = rel / object_bytes in
        let displacement = rel - (index * object_bytes) in
        if index >= t.cache_n_objects then note_false t page
        else if not (Bitset.unsafe_mem t.cache_alloc index) then note_false t page
        else if
          displacement = 0 || t.interior
          || Config.displacement_in_mask t.disp_mask ~granule:t.granule displacement
        then begin
          note_valid t;
          if not (Bitset.unsafe_mem t.cache_mark index) then begin
            Bitset.unsafe_add t.cache_mark index;
            t.stats.Stats.objects_marked <- t.stats.Stats.objects_marked + 1;
            push t (value - displacement)
          end
        end
        else note_false t page
      end
    end
    else if kind = Page.kind_large_head then begin
      let l = t.cache_large in
      if not l.Page.l_allocated then note_false t page
      else begin
        let off = (value - t.heap_lo) land t.page_mask in
        if off = 0 || (t.interior && off < l.Page.object_bytes) then begin
          note_valid t;
          if not l.Page.l_marked then begin
            l.Page.l_marked <- true;
            t.stats.Stats.objects_marked <- t.stats.Stats.objects_marked + 1;
            push t (value - off)
          end
        end
        else note_false t page
      end
    end
    else if kind = Page.kind_large_tail then begin
      if not t.tail_valid then note_false t page
      else begin
        let head = t.cache_head in
        let l = Array.unsafe_get t.desc.Heap.d_large head in
        let head_addr = t.heap_lo + (head lsl t.page_shift) in
        if
          Char.code (Bytes.unsafe_get t.desc.Heap.d_kind head) = Page.kind_large_head
          && l.Page.l_allocated
          && value - head_addr < l.Page.object_bytes
        then begin
          note_valid t;
          if not l.Page.l_marked then begin
            l.Page.l_marked <- true;
            t.stats.Stats.objects_marked <- t.stats.Stats.objects_marked + 1;
            push t head_addr
          end
        end
        else note_false t page
      end
    end
    else (* Free / Uncommitted *) note_false t page
  end

(* Guarded variant of the range scan, entered only while a fault plan
   arms reads: every word is probed against the plan first, and a word
   whose read faults (ECC trip or decayed region) is downgraded to "not
   a pointer" — counted, skipped, never retained, never a crash.  Kept
   out of [scan_words] so the fault-free loops stay closure-free. *)
let scan_words_guarded t seg ~lo ~hi =
  let bytes = Segment.unsafe_bytes seg in
  let sbase = Addr.to_int (Segment.base seg) in
  let alignment = t.alignment in
  let little = Endian.equal (Segment.endian seg) Endian.Little in
  let a = ref lo in
  while !a + 4 <= hi do
    (match Mem.probe_read t.mem (Addr.of_int !a) with
    | None ->
        let v =
          if little then Segment.unsafe_word_le bytes (!a - sbase)
          else Segment.unsafe_word_be bytes (!a - sbase)
        in
        consider_heap t v
    | Some _reason ->
        t.stats.Stats.read_faults <- t.stats.Stats.read_faults + 1;
        t.stats.Stats.mark_downgrades <- t.stats.Stats.mark_downgrades + 1);
    a := !a + alignment
  done

(* Closure-free scan of [lo, hi) within [seg]: one clamp, then raw
   unchecked word assembly, specialized per endianness so the branch is
   hoisted out of the loop.  The words-scanned count for the whole range
   is the loop-iteration count in closed form, added once. *)
let scan_words t seg ~lo ~hi =
  let lo, hi = Segment.clamp_words seg ~alignment:t.alignment ~lo ~hi in
  if lo + 4 <= hi then begin
    t.stats.Stats.words_scanned <-
      t.stats.Stats.words_scanned + (((hi - 4 - lo) / t.alignment) + 1);
    if Mem.read_faults_armed t.mem then scan_words_guarded t seg ~lo ~hi
    else begin
      let bytes = Segment.unsafe_bytes seg in
      let sbase = Addr.to_int (Segment.base seg) in
      let alignment = t.alignment in
      let little = Endian.equal (Segment.endian seg) Endian.Little in
      if little then begin
        let a = ref lo in
        while !a + 4 <= hi do
          consider_heap t (Segment.unsafe_word_le bytes (!a - sbase));
          a := !a + alignment
        done
      end
      else begin
        let a = ref lo in
        while !a + 4 <= hi do
          consider_heap t (Segment.unsafe_word_be bytes (!a - sbase));
          a := !a + alignment
        done
      end
    end
  end

(* Scan the words of a marked object.  Objects live entirely inside the
   heap segment, so we read it directly.  A page that is no longer Small
   or Large_head was retired between the push and the pop — possible
   only under a decaying fault plan — and has nothing left to scan. *)
let scan_object t base =
  ensure_header t ((base - t.heap_lo) lsr t.page_shift);
  let size, pointer_free =
    if t.cache_kind = Page.kind_small then (t.cache_object_bytes, t.cache_pointer_free)
    else if t.cache_kind = Page.kind_large_head then
      (t.cache_large.Page.object_bytes, t.cache_large.Page.l_pointer_free)
    else begin
      t.stats.Stats.mark_downgrades <- t.stats.Stats.mark_downgrades + 1;
      (0, true)
    end
  in
  if not pointer_free then
    scan_words t t.heap_seg ~lo:(Addr.of_int base) ~hi:(Addr.of_int (base + size))

let drain t =
  while t.sp > 0 do
    t.sp <- t.sp - 1;
    scan_object t t.stack.(t.sp)
  done

let mark_value t value =
  t.cache_page <- -1;
  t.stats.Stats.words_scanned <- t.stats.Stats.words_scanned + 1;
  consider_heap t value;
  drain t

let scan_range t ~mem range =
  let { Roots.lo; hi; label = _ } = range in
  match Mem.find mem lo with
  | None -> ()
  | Some seg -> scan_words t seg ~lo ~hi

(* Overflow recovery: rescan every already-marked object so dropped
   children get marked, until no push overflows.  Marked objects are
   enumerated with the word-level [Bitset.iter_set] rather than probing
   every slot. *)
let recover_from_overflow t =
  while t.overflowed do
    t.overflowed <- false;
    Heap.iter_committed t.heap (fun index p ->
        (match p with
        | Page.Small s ->
            let base = Addr.to_int (Heap.page_addr t.heap index) + s.Page.first_offset in
            let object_bytes = s.Page.object_bytes in
            Bitset.iter_set s.Page.mark (fun obj -> scan_object t (base + (obj * object_bytes)))
        | Page.Large_head l ->
            if l.Page.l_marked then scan_object t (Addr.to_int (Heap.page_addr t.heap index))
        | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ());
        drain t)
  done

let run t roots ~mem =
  clear_marks t.heap;
  t.sp <- 0;
  t.overflowed <- false;
  t.cache_page <- -1;
  Blacklist.begin_cycle t.blacklist;
  List.iter
    (fun (_, values) ->
      Array.iter
        (fun v ->
          t.stats.Stats.words_scanned <- t.stats.Stats.words_scanned + 1;
          consider_heap t v;
          drain t)
        values)
    (Roots.current_registers roots);
  List.iter
    (fun range ->
      scan_range t ~mem range;
      drain t)
    (Roots.current_ranges roots);
  recover_from_overflow t

(* --- the reference marker ------------------------------------------ *)

(* The pre-optimization mark phase, verbatim: per-word closures through
   [Segment.iter_words], allocating classifications from [classify], and
   variant matching for every mark-bit update.  It shares [t] (stack,
   stats, blacklist), and the differential tests pin it bit-identical to
   the fast path above — same mark bitmaps, same blacklist, same counts. *)
module Reference = struct
  let set_mark_bit t page base =
    match Heap.page t.heap page with
    | Page.Small s ->
        let rel = base - Addr.to_int (Heap.page_addr t.heap page) - s.Page.first_offset in
        let index = rel / s.Page.object_bytes in
        if Bitset.mem s.Page.mark index then `Already
        else begin
          Bitset.add s.Page.mark index;
          `Newly (s.Page.object_bytes, s.Page.pointer_free)
        end
    | Page.Large_head l ->
        if l.Page.l_marked then `Already
        else begin
          l.Page.l_marked <- true;
          `Newly (l.Page.object_bytes, l.Page.l_pointer_free)
        end
    | Page.Uncommitted | Page.Free | Page.Large_tail _ ->
        (* classify returned Valid, yet the page is no longer an object
           page: it was retired between classification and marking,
           possible only when a fault plan decays pages mid-scan.
           Downgrade the reference — skip it, never retain, never
           crash. *)
        t.stats.Stats.mark_downgrades <- t.stats.Stats.mark_downgrades + 1;
        `Already

  let consider t value =
    t.stats.Stats.words_scanned <- t.stats.Stats.words_scanned + 1;
    match classify t.heap t.config value with
    | Outside -> ()
    | False_in_heap { page } ->
        t.stats.Stats.false_refs <- t.stats.Stats.false_refs + 1;
        if t.config.Config.blacklisting then Blacklist.note t.blacklist page
    | Valid { base; page } -> (
        t.stats.Stats.valid_refs <- t.stats.Stats.valid_refs + 1;
        match set_mark_bit t page base with
        | `Already -> ()
        | `Newly (_, _) ->
            t.stats.Stats.objects_marked <- t.stats.Stats.objects_marked + 1;
            push t base)

  (* Mirror of the fast path's per-word downgrade: a faulted read is
     counted and the word skipped.  [words_scanned] is bumped here
     because [consider] (which normally counts it) never runs. *)
  let downgrade t =
    t.stats.Stats.words_scanned <- t.stats.Stats.words_scanned + 1;
    t.stats.Stats.read_faults <- t.stats.Stats.read_faults + 1;
    t.stats.Stats.mark_downgrades <- t.stats.Stats.mark_downgrades + 1

  let iter_words_guarded t seg ~lo ~hi =
    if Mem.read_faults_armed t.mem then
      Segment.iter_words seg ~alignment:t.config.Config.alignment ~lo ~hi (fun addr value ->
          match Mem.probe_read t.mem addr with
          | None -> consider t value
          | Some _reason -> downgrade t)
    else
      Segment.iter_words seg ~alignment:t.config.Config.alignment ~lo ~hi (fun _addr value ->
          consider t value)

  let scan_object t base =
    let page = Heap.page_index t.heap base in
    let size, pointer_free =
      match Heap.page t.heap page with
      | Page.Small s -> (s.Page.object_bytes, s.Page.pointer_free)
      | Page.Large_head l -> (l.Page.object_bytes, l.Page.l_pointer_free)
      | Page.Uncommitted | Page.Free | Page.Large_tail _ ->
          (* retired between push and pop under a decaying fault plan *)
          t.stats.Stats.mark_downgrades <- t.stats.Stats.mark_downgrades + 1;
          (0, true)
    in
    if not pointer_free then
      iter_words_guarded t (Heap.segment t.heap) ~lo:base ~hi:(Addr.add base size)

  let drain t =
    while t.sp > 0 do
      t.sp <- t.sp - 1;
      scan_object t t.stack.(t.sp)
    done

  let mark_value t value =
    consider t value;
    drain t

  let scan_range t ~mem range =
    let { Roots.lo; hi; label = _ } = range in
    match Mem.find mem lo with
    | None -> ()
    | Some seg -> iter_words_guarded t seg ~lo ~hi

  let recover_from_overflow t =
    while t.overflowed do
      t.overflowed <- false;
      Heap.iter_committed t.heap (fun index p ->
          (match p with
          | Page.Small s ->
              let base = Addr.to_int (Heap.page_addr t.heap index) + s.Page.first_offset in
              for obj = 0 to s.Page.n_objects - 1 do
                if Bitset.mem s.Page.mark obj then scan_object t (base + (obj * s.Page.object_bytes))
              done
          | Page.Large_head l ->
              if l.Page.l_marked then scan_object t (Addr.to_int (Heap.page_addr t.heap index))
          | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ());
          drain t)
    done

  let run t roots ~mem =
    clear_marks t.heap;
    t.sp <- 0;
    t.overflowed <- false;
    Blacklist.begin_cycle t.blacklist;
    List.iter
      (fun (_, values) ->
        Array.iter
          (fun v ->
            consider t v;
            drain t)
          values)
      (Roots.current_registers roots);
    List.iter
      (fun range ->
        scan_range t ~mem range;
        drain t)
      (Roots.current_ranges roots);
    recover_from_overflow t
end

(* --- the parallel tracer -------------------------------------------- *)

(* N marker domains over the same object graph, bit-identical to the
   serial fast path above.  The determinism argument, piece by piece:

   - The mark bitmap is the transitive closure of the roots, an
     order-independent set.  Mark bits live in *shadow* atomic tables
     during the trace ([Bitset.Atomic.test_and_set]); exactly one
     domain wins each bit and scans that object's body, so each object
     is scanned exactly once regardless of schedule.  After the domains
     join, the shadow is written back serially into the real
     (sweeper-visible) mark words — [Page], [Heap] and [Sweep] never
     see atomics.

   - The blacklist image is the bucket image of the set of false
     references, also schedule-independent.  Domains buffer notes in
     private plain bitsets (pre-bucketed, so hashed-bucket semantics
     are preserved bit-for-bit) merged into the current cycle at the
     end barrier.  Marking never *reads* the blacklist — only the
     allocator does, and the world is stopped — so deferral is
     invisible.

   - Stats shards: every root word is scanned by exactly one domain and
     every object body by exactly one domain, so the per-domain
     [words_scanned] / [valid_refs] / [false_refs] / [objects_marked]
     partition the serial totals and their sum is bit-identical —
     except after a mark-stack overflow, where the number of recovery
     rescan rounds (and thus re-counted words) is schedule-dependent in
     both the serial and parallel marker.

   - Work distribution is a Chase-Lev deque per domain (owner LIFO,
     thieves steal oldest) fed by a shared root-task queue claimed with
     fetch-and-add; overflow recovery generalizes the serial page
     rescan to "any idle domain claims the next committed page".

   [Mem.Fault] access plans are stateful trip streams (countdowns,
   seeded draws); racing them across domains would change which loads
   trip.  An armed access plan therefore forces the serial marker, with
   a typed note in the returned outcome. *)
module Parallel = struct
  type fallback =
    | Serial_configured
    | Access_plan_armed
    | Domain_failed

  let fallback_to_string = function
    | Serial_configured -> "serial-configured"
    | Access_plan_armed -> "access-plan-armed"
    | Domain_failed -> "domain-failed"

  type health = {
    heartbeats : int array;
    failed : int list;
    clean_recoveries : int;
    dirty_recoveries : int;
    survivors : int;
    quorum : int;
    tasks_issued : int;
  }

  type outcome = {
    jobs_requested : int;
    domains_used : int;
    fallback : fallback option;
    shards : Stats.t array;
    health : health option;
  }

  type root_task =
    | Registers of int array
    | Range_chunk of {
        seg : Segment.t;
        lo : int;
        start_hi : int; (* chunk boundary: scan while addr < start_hi *)
        hi : int; (* range end: and addr + 4 <= hi *)
      }

  (* Trigger counters for an armed [Domain_fault] plan, private to the
     victim domain.  [f_tripped] is read by the leader after the join —
     safely published by [Domain.join] (or by the fence handshake when
     the trace is abandoned before the join). *)
  type fault_state = {
    f_mode : Domain_fault.mode;
    mutable f_steps : int;  (* checkpoints passed, all sites *)
    mutable f_claims : int;  (* successful work claims *)
    mutable f_tripped : bool;
  }

  (* Per-domain state: a private deque, a private header cache, a stats
     shard and a blacklist buffer, plus immutable copies of the scan
     scalars so the hot path never chases the shared record. *)
  type worker = {
    w_id : int;
    w_deque : Ws_deque.t;
    w_stats : Stats.t;
    w_black : Bitset.t;
    mutable w_black_notes : int;
    (* scan scalars (copied from the marker, immutable during the run) *)
    w_desc : Heap.desc;
    w_heap_seg : Segment.t;
    w_heap_lo : int;
    w_heap_hi : int;
    w_page_shift : int;
    w_page_mask : int;
    w_alignment : int;
    w_granule : int;
    w_interior : bool;
    w_tail_valid : bool;
    w_blacklisting : bool;
    w_disp_mask : int array;
    w_stack_limit : int;  (* per-domain deque bound; max_int = unbounded *)
    (* private one-entry header cache *)
    mutable w_cache_page : int;
    mutable w_cache_kind : int;
    mutable w_cache_object_bytes : int;
    mutable w_cache_first_offset : int;
    mutable w_cache_n_objects : int;
    mutable w_cache_pointer_free : bool;
    mutable w_cache_head : int;
    mutable w_cache_alloc : Bitset.t;
    mutable w_cache_shadow : Bitset.Atomic.t;
    mutable w_cache_large : Page.large;
    (* --- domain-failure boundary ---------------------------------- *)
    w_heartbeat : int Atomic.t;  (* bumped once per successful claim *)
    w_idle_flag : bool Atomic.t;  (* set while parked in [quiesce] *)
    w_reclaim : int Atomic.t;  (* 0 live / 1 fence requested / 2 fenced+reclaimed *)
    w_crashed : bool Atomic.t;  (* set by an injected crash, instant suspect *)
    mutable w_inflight : bool;
        (* true between a claim and the end of its execution; published
           to the leader by the fence handshake and decides the
           clean-vs-dirty reclaim path *)
    w_fault : fault_state option;
    (* Append-only journals, read by the leader only after the fence:
       every claim that crossed a boundary (root task, rescan page,
       stolen object — never an own pop, see [try_obtain]) and every
       shadow bit this domain won. *)
    mutable w_log : int array;
    mutable w_log_len : int;
    mutable w_won : int array;
    mutable w_won_len : int;
    (* watchdog bookkeeping, allocated for the leader only *)
    w_wd_last : int array;  (* last heartbeat observed per domain *)
    w_wd_miss : int array;  (* consecutive no-progress observations *)
    mutable w_wd_tick : int;  (* idle-spin countdown to the next round *)
    mutable w_wd_gap : int;  (* current backoff gap between rounds *)
  }

  type shared = {
    p_blacklist : Blacklist.t; (* bucket mapping only; never written during the trace *)
    p_shadow : Bitset.Atomic.t array; (* per-page shadow mark bits (small pages) *)
    p_shadow_large : Bitset.Atomic.t; (* large-head marked flags, one bit per page *)
    p_tasks : root_task array;
    p_next_task : int Atomic.t;
    p_mode : int Atomic.t; (* 0 = root tasks, 1 = overflow rescan *)
    p_next_rescan : int Atomic.t;
    p_committed : int;
    p_overflowed : bool Atomic.t;
    p_idle : int Atomic.t;
    p_jobs : int;
    p_workers : worker array;
    (* domain-failure boundary *)
    p_budget : int;  (* Config.mark_watchdog_budget *)
    p_quorum : int;  (* Config.mark_quorum *)
    p_dead : int Atomic.t;  (* domains reclaimed so far *)
    p_abandoned : bool Atomic.t;  (* quorum broke: everyone unwinds *)
    (* leader-only recovery bookkeeping (written during reclaim, read
       after the join on the same domain) *)
    mutable p_clean : int;
    mutable p_dirty : int;
    mutable p_failed : int list;
    (* idle domains nap here instead of spinning (essential when domains
       outnumber cores); producers wake them on push, the last domain to
       go idle wakes them for termination *)
    p_lock : Mutex.t;
    p_cond : Condition.t;
    p_nappers : int Atomic.t;
    (* sense barrier between overflow-recovery rounds *)
    p_bar_lock : Mutex.t;
    p_bar_cond : Condition.t;
    mutable p_bar_count : int;
    mutable p_bar_gen : int;
  }

  let dummy_shadow = Bitset.Atomic.create 0

  let make_worker t ~jobs ~fault id =
    {
      w_id = id;
      w_deque = Ws_deque.create ();
      w_stats = Stats.create ();
      w_black =
        (if t.blacklisting then Bitset.create (Blacklist.universe t.blacklist)
         else Bitset.create 0);
      w_black_notes = 0;
      w_desc = t.desc;
      w_heap_seg = t.heap_seg;
      w_heap_lo = t.heap_lo;
      w_heap_hi = t.heap_hi;
      w_page_shift = t.page_shift;
      w_page_mask = t.page_mask;
      w_alignment = t.alignment;
      w_granule = t.granule;
      w_interior = t.interior;
      w_tail_valid = t.tail_valid;
      w_blacklisting = t.blacklisting;
      w_disp_mask = t.disp_mask;
      w_stack_limit =
        (match t.config.Config.mark_stack_limit with Some l -> l | None -> max_int);
      w_cache_page = -1;
      w_cache_kind = Page.kind_uncommitted;
      w_cache_object_bytes = 0;
      w_cache_first_offset = 0;
      w_cache_n_objects = 0;
      w_cache_pointer_free = true;
      w_cache_head = 0;
      w_cache_alloc = Bitset.create 0;
      w_cache_shadow = dummy_shadow;
      w_cache_large = Page.dummy_large;
      w_heartbeat = Atomic.make 0;
      w_idle_flag = Atomic.make false;
      w_reclaim = Atomic.make 0;
      w_crashed = Atomic.make false;
      w_inflight = false;
      w_fault = fault;
      w_log = [||];
      w_log_len = 0;
      w_won = [||];
      w_won_len = 0;
      w_wd_last = (if id = 0 then Array.make jobs 0 else [||]);
      w_wd_miss = (if id = 0 then Array.make jobs 0 else [||]);
      w_wd_tick = 1;
      w_wd_gap = 1;
    }

  let load_header sh w page =
    let d = w.w_desc in
    w.w_cache_page <- page;
    w.w_cache_kind <- Char.code (Bytes.unsafe_get d.Heap.d_kind page);
    w.w_cache_object_bytes <- Array.unsafe_get d.Heap.d_object_bytes page;
    w.w_cache_first_offset <- Array.unsafe_get d.Heap.d_first_offset page;
    w.w_cache_n_objects <- Array.unsafe_get d.Heap.d_n_objects page;
    w.w_cache_pointer_free <- Bytes.unsafe_get d.Heap.d_pointer_free page <> '\000';
    w.w_cache_head <- Array.unsafe_get d.Heap.d_head page;
    w.w_cache_alloc <- Array.unsafe_get d.Heap.d_alloc page;
    w.w_cache_shadow <- Array.unsafe_get sh.p_shadow page;
    w.w_cache_large <- Array.unsafe_get d.Heap.d_large page

  let[@inline] ensure_header sh w page =
    if page = w.w_cache_page then
      w.w_stats.Stats.header_cache_hits <- w.w_stats.Stats.header_cache_hits + 1
    else load_header sh w page

  let[@inline] note_false sh w page =
    w.w_stats.Stats.false_refs <- w.w_stats.Stats.false_refs + 1;
    if w.w_blacklisting then begin
      Bitset.add w.w_black (Blacklist.bucket_index sh.p_blacklist page);
      w.w_black_notes <- w.w_black_notes + 1
    end

  let[@inline] note_valid w = w.w_stats.Stats.valid_refs <- w.w_stats.Stats.valid_refs + 1

  let wake_nappers sh =
    if Atomic.get sh.p_nappers > 0 then begin
      Mutex.lock sh.p_lock;
      Condition.broadcast sh.p_cond;
      Mutex.unlock sh.p_lock
    end

  let wake_all sh =
    Mutex.lock sh.p_lock;
    Condition.broadcast sh.p_cond;
    Mutex.unlock sh.p_lock

  (* ---- domain-failure boundary ----------------------------------- *)

  (* Internal unwind for a domain that dies (injected failure, fence
     acknowledgement, or trace abandonment); caught in [worker_main]. *)
  exception Gone

  (* A failing domain's single exit: leave the idle count if it was on
     it, acknowledge any pending fence, and unwind.  Setting
     [w_reclaim] to 2 is the publication point: every plain mutable
     write this domain made happens-before the leader's reads. *)
  let perish sh w ~counted_idle =
    if counted_idle then Atomic.decr sh.p_idle;
    Atomic.set w.w_reclaim 2;
    wake_all sh;
    raise Gone

  (* Injected freeze (stall / livelock): spin forever but stay
     fenceable — the watchdog's reclaim or a trace abandonment must
     still be able to stop this domain. *)
  let freeze sh w =
    while true do
      if Atomic.get w.w_reclaim = 1 || Atomic.get sh.p_abandoned then
        perish sh w ~counted_idle:false;
      Domain.cpu_relax ()
    done

  (* Checkpoint sites (the ISSUE's "deque push/pop/steal and chunk
     claim" points).  Pre-claim and steal are item boundaries; push and
     post-claim are mid-item. *)
  let site_pre_claim = 0 (* top of the phase loop, before any claim attempt *)
  let site_steal = 1 (* entry of [try_steal] *)
  let site_push = 2 (* entry of [push] — mid-item by construction *)
  let site_post_claim = 3 (* just after a successful claim *)

  let apply_fault sh w site =
    match w.w_fault with
    | None -> ()
    | Some f -> (
        f.f_steps <- f.f_steps + 1;
        match f.f_mode with
        | Domain_fault.Crash { at_step } ->
            if f.f_steps >= at_step then begin
              f.f_tripped <- true;
              Atomic.set w.w_crashed true;
              raise Gone
            end
        | Domain_fault.Stall { after_claims } ->
            if site = site_pre_claim && f.f_claims >= after_claims then begin
              f.f_tripped <- true;
              freeze sh w
            end
        | Domain_fault.Livelock { on_claim } ->
            if site = site_post_claim && f.f_claims >= on_claim then begin
              f.f_tripped <- true;
              freeze sh w
            end
        | Domain_fault.Straggler { spin } ->
            f.f_tripped <- true;
            for _ = 1 to spin do
              if Atomic.get w.w_reclaim = 1 || Atomic.get sh.p_abandoned then
                perish sh w ~counted_idle:false;
              Domain.cpu_relax ()
            done)

  let[@inline] checkpoint sh w site =
    if Atomic.get w.w_reclaim = 1 || Atomic.get sh.p_abandoned then
      perish sh w ~counted_idle:false;
    match w.w_fault with None -> () | Some _ -> apply_fault sh w site

  (* Won-bit journal encoding: small objects carry (index, page) above
     a set low bit, large heads the page alone.  Page numbers stay far
     below 2^20 in the simulated heaps this tracer runs against. *)
  let won_page_bits = 20

  let record_won w e =
    if w.w_id > 0 then begin
      if w.w_won_len = Array.length w.w_won then begin
        let bigger = Array.make (if w.w_won_len = 0 then 64 else 2 * w.w_won_len) 0 in
        Array.blit w.w_won 0 bigger 0 w.w_won_len;
        w.w_won <- bigger
      end;
      w.w_won.(w.w_won_len) <- e;
      w.w_won_len <- w.w_won_len + 1
    end

  let log_claim w e =
    if w.w_id > 0 then begin
      if w.w_log_len = Array.length w.w_log then begin
        let bigger = Array.make (if w.w_log_len = 0 then 64 else 2 * w.w_log_len) 0 in
        Array.blit w.w_log 0 bigger 0 w.w_log_len;
        w.w_log <- bigger
      end;
      w.w_log.(w.w_log_len) <- e;
      w.w_log_len <- w.w_log_len + 1
    end

  (* ----------------------------------------------------------------- *)

  (* The object IS shadow-marked before any push, so on overflow its
     children are found by the rescan rounds — exactly the serial
     contract.  One overflow episode is counted per recovery round,
     matching the serial [push]/[recover_from_overflow] pair. *)
  let push sh w base =
    checkpoint sh w site_push;
    if Ws_deque.size w.w_deque >= w.w_stack_limit then begin
      if not (Atomic.exchange sh.p_overflowed true) then
        w.w_stats.Stats.mark_stack_overflows <- w.w_stats.Stats.mark_stack_overflows + 1
    end
    else begin
      Ws_deque.push w.w_deque base;
      wake_nappers sh
    end

  (* [consider_heap] against shadow mark state: mirrors the serial fast
     path line for line, with [Bitset.unsafe_mem]/[unsafe_add] on the
     real mark words replaced by one [Bitset.Atomic.unsafe_test_and_set]
     on the shadow — the winner counts the object and scans it. *)
  let consider sh w value =
    if value >= w.w_heap_lo && value < w.w_heap_hi then begin
      let page = (value - w.w_heap_lo) lsr w.w_page_shift in
      ensure_header sh w page;
      let kind = w.w_cache_kind in
      if kind = Page.kind_small then begin
        let rel = ((value - w.w_heap_lo) land w.w_page_mask) - w.w_cache_first_offset in
        if rel < 0 then note_false sh w page
        else begin
          let object_bytes = w.w_cache_object_bytes in
          let index = rel / object_bytes in
          let displacement = rel - (index * object_bytes) in
          if index >= w.w_cache_n_objects then note_false sh w page
          else if not (Bitset.unsafe_mem w.w_cache_alloc index) then note_false sh w page
          else if
            displacement = 0 || w.w_interior
            || Config.displacement_in_mask w.w_disp_mask ~granule:w.w_granule displacement
          then begin
            note_valid w;
            if Bitset.Atomic.unsafe_test_and_set w.w_cache_shadow index then begin
              w.w_stats.Stats.objects_marked <- w.w_stats.Stats.objects_marked + 1;
              record_won w ((index lsl (won_page_bits + 1)) lor (page lsl 1) lor 1);
              push sh w (value - displacement)
            end
          end
          else note_false sh w page
        end
      end
      else if kind = Page.kind_large_head then begin
        let l = w.w_cache_large in
        if not l.Page.l_allocated then note_false sh w page
        else begin
          let off = (value - w.w_heap_lo) land w.w_page_mask in
          if off = 0 || (w.w_interior && off < l.Page.object_bytes) then begin
            note_valid w;
            if Bitset.Atomic.unsafe_test_and_set sh.p_shadow_large page then begin
              w.w_stats.Stats.objects_marked <- w.w_stats.Stats.objects_marked + 1;
              record_won w (page lsl 1);
              push sh w (value - off)
            end
          end
          else note_false sh w page
        end
      end
      else if kind = Page.kind_large_tail then begin
        if not w.w_tail_valid then note_false sh w page
        else begin
          let head = w.w_cache_head in
          let l = Array.unsafe_get w.w_desc.Heap.d_large head in
          let head_addr = w.w_heap_lo + (head lsl w.w_page_shift) in
          if
            Char.code (Bytes.unsafe_get w.w_desc.Heap.d_kind head) = Page.kind_large_head
            && l.Page.l_allocated
            && value - head_addr < l.Page.object_bytes
          then begin
            note_valid w;
            if Bitset.Atomic.unsafe_test_and_set sh.p_shadow_large head then begin
              w.w_stats.Stats.objects_marked <- w.w_stats.Stats.objects_marked + 1;
              record_won w (head lsl 1);
              push sh w head_addr
            end
          end
          else note_false sh w page
        end
      end
      else (* Free / Uncommitted *) note_false sh w page
    end

  (* Scan [lo, start_hi) ∩ [lo, hi - 4] within [seg], already on the
     range's alignment grid.  The closed-form word count tiles exactly:
     summed over a range's chunks it equals the serial
     [((hi - 4 - lo) / alignment) + 1]. *)
  let scan_chunk sh w seg ~lo ~start_hi ~hi =
    let e = if start_hi < hi - 3 then start_hi else hi - 3 in
    if lo < e then begin
      let alignment = w.w_alignment in
      w.w_stats.Stats.words_scanned <-
        w.w_stats.Stats.words_scanned + ((e - lo + alignment - 1) / alignment);
      let bytes = Segment.unsafe_bytes seg in
      let sbase = Addr.to_int (Segment.base seg) in
      let little = Endian.equal (Segment.endian seg) Endian.Little in
      if little then begin
        let a = ref lo in
        while !a < e do
          consider sh w (Segment.unsafe_word_le bytes (!a - sbase));
          a := !a + alignment
        done
      end
      else begin
        let a = ref lo in
        while !a < e do
          consider sh w (Segment.unsafe_word_be bytes (!a - sbase));
          a := !a + alignment
        done
      end
    end

  (* Scan a marked object's body (cf. the serial [scan_object]).  The
     fault-free precondition holds by construction: access plans force
     the serial marker. *)
  let scan_object sh w base =
    ensure_header sh w ((base - w.w_heap_lo) lsr w.w_page_shift);
    let size, pointer_free =
      if w.w_cache_kind = Page.kind_small then (w.w_cache_object_bytes, w.w_cache_pointer_free)
      else if w.w_cache_kind = Page.kind_large_head then
        (w.w_cache_large.Page.object_bytes, w.w_cache_large.Page.l_pointer_free)
      else begin
        (* retired between push and pop: only possible with pre-existing
           decayed pages; mirror the serial downgrade *)
        w.w_stats.Stats.mark_downgrades <- w.w_stats.Stats.mark_downgrades + 1;
        (0, true)
      end
    in
    if not pointer_free then begin
      let lo, hi =
        Segment.clamp_words w.w_heap_seg ~alignment:w.w_alignment ~lo:(Addr.of_int base)
          ~hi:(Addr.of_int (base + size))
      in
      if lo + 4 <= hi then scan_chunk sh w w.w_heap_seg ~lo ~start_hi:hi ~hi
    end

  (* Overflow recovery, parallel form of the serial page walk: idle
     domains claim committed pages with fetch-and-add and rescan the
     bodies of their shadow-marked objects.  The shadow traversal is a
     per-word snapshot; an object marked after the snapshot was pushed
     by its marking domain, so its children are never lost — at worst
     the push overflows again and another round runs. *)
  let rescan_page sh w page =
    ensure_header sh w page;
    if w.w_cache_kind = Page.kind_small then begin
      let base = w.w_heap_lo + (page lsl w.w_page_shift) + w.w_cache_first_offset in
      let object_bytes = w.w_cache_object_bytes in
      let shadow = w.w_cache_shadow in
      Bitset.Atomic.iter_set shadow (fun obj -> scan_object sh w (base + (obj * object_bytes)))
    end
    else if
      w.w_cache_kind = Page.kind_large_head
      && Bitset.Atomic.mem sh.p_shadow_large page
    then scan_object sh w (w.w_heap_lo + (page lsl w.w_page_shift))

  type work =
    | Obj of int
    | Task of int  (* index into p_tasks *)
    | Rescan of int

  (* Deques and claim journals carry encoded ints: the tag lives in
     bits the simulated address space never reaches (addresses, task
     indices and page numbers all stay far below 2^60).  Ordinary
     object pushes are tag 0, i.e. the bare base address; only the
     recovery path ever pushes Task/Rescan encodings (into the leader's
     deque), from which thieves may then steal them. *)
  let tag_shift = 60
  let encode_task i = (1 lsl tag_shift) lor i
  let encode_rescan p = (2 lsl tag_shift) lor p

  let[@inline] decode v =
    match v lsr tag_shift with
    | 0 -> Obj v
    | 1 -> Task (v land ((1 lsl tag_shift) - 1))
    | _ -> Rescan (v land ((1 lsl tag_shift) - 1))

  let try_steal sh w =
    checkpoint sh w site_steal;
    let n = Array.length sh.p_workers in
    let rec go k =
      if k >= n then None
      else begin
        let victim = Array.unsafe_get sh.p_workers ((w.w_id + k) mod n) in
        match Ws_deque.steal victim.w_deque with
        | Some v ->
            (* a steal crosses the ownership boundary: journal it so a
               dirty reclaim of *this* domain can replay it *)
            log_claim w v;
            Some (decode v)
        | None -> go (k + 1)
      end
    in
    go 1

  (* Own pops are deliberately NOT journaled: an own-popped object was
     pushed by this domain when it won the object's shadow bit, and a
     dirty reclaim rolls every such bit back — so replaying the
     journaled boundary claims re-wins and re-pushes the whole chain
     inductively.  Replaying own pops as well would scan bodies of
     rolled-back (unmarked) objects and lose their marks. *)
  let try_obtain sh w =
    match Ws_deque.pop w.w_deque with
    | Some v -> Some (decode v)
    | None ->
        if Atomic.get sh.p_mode = 0 then begin
          let i = Atomic.fetch_and_add sh.p_next_task 1 in
          if i < Array.length sh.p_tasks then begin
            log_claim w (encode_task i);
            Some (Task i)
          end
          else try_steal sh w
        end
        else begin
          let p = Atomic.fetch_and_add sh.p_next_rescan 1 in
          if p < sh.p_committed then begin
            log_claim w (encode_rescan p);
            Some (Rescan p)
          end
          else try_steal sh w
        end

  let work_visible sh =
    (if Atomic.get sh.p_mode = 0 then Atomic.get sh.p_next_task < Array.length sh.p_tasks
     else Atomic.get sh.p_next_rescan < sh.p_committed)
    || Array.exists (fun v -> not (Ws_deque.is_empty v.w_deque)) sh.p_workers

  let execute sh w = function
    | Obj base -> scan_object sh w base
    | Task i -> (
        match Array.unsafe_get sh.p_tasks i with
        | Registers values ->
            w.w_stats.Stats.words_scanned <- w.w_stats.Stats.words_scanned + Array.length values;
            Array.iter (fun v -> consider sh w v) values
        | Range_chunk { seg; lo; start_hi; hi } -> scan_chunk sh w seg ~lo ~start_hi ~hi)
    | Rescan page -> rescan_page sh w page

  (* Termination now also counts the dead: a reclaimed domain's deque
     has been drained (or discarded) by the leader, so [idle + dead =
     jobs] still means "no work anywhere and nobody can create any". *)
  let terminated sh = Atomic.get sh.p_idle + Atomic.get sh.p_dead = sh.p_jobs

  (* Bounded spin, then sleep on the condition.  The napper count is
     raised under the lock *before* the final work re-check, and
     producers read it after publishing their push (both SC atomics), so
     one side always sees the other: no lost wakeups.  The fence and
     abandonment flags are part of the predicate for the same reason —
     [reclaim] sets them before its [wake_all], so a domain headed for
     the wait either sees the flag here or is woken by the broadcast. *)
  let nap sh w =
    Mutex.lock sh.p_lock;
    Atomic.incr sh.p_nappers;
    if
      (not (work_visible sh))
      && (not (terminated sh))
      && Atomic.get w.w_reclaim = 0
      && not (Atomic.get sh.p_abandoned)
    then Condition.wait sh.p_cond sh.p_lock;
    Atomic.decr sh.p_nappers;
    Mutex.unlock sh.p_lock

  (* One watchdog observation pass over the non-leader domains, run by
     the idle leader every [w_wd_gap] spin iterations.  A domain makes
     progress when its heartbeat moved; parked domains ([w_idle_flag])
     are healthy by definition (a frozen domain never parks — the idle
     flag is only set inside [quiesce]).  [w_wd_miss] counts
     consecutive no-progress observations; [Config.mark_watchdog_budget]
     of them make the domain suspect.  The gap backs off exponentially
     (capped) while nothing moves, so a long-idle leader isn't a busy
     polling loop, and snaps back to 1 on any observed progress.  An
     injected crash ([w_crashed]) is an instant suspect: the domain
     provably cannot progress. *)
  let watchdog_tick sh w =
    w.w_wd_tick <- w.w_wd_tick - 1;
    if w.w_wd_tick > 0 then None
    else begin
      w.w_wd_tick <- w.w_wd_gap;
      let suspect = ref None in
      let progressed = ref false in
      for d = 1 to sh.p_jobs - 1 do
        if !suspect = None then begin
          let v = Array.unsafe_get sh.p_workers d in
          if Atomic.get v.w_reclaim = 2 then () (* already reclaimed *)
          else if Atomic.get v.w_crashed then suspect := Some v
          else if Atomic.get v.w_idle_flag then w.w_wd_miss.(d) <- 0
          else begin
            let hb = Atomic.get v.w_heartbeat in
            if hb <> w.w_wd_last.(d) then begin
              w.w_wd_last.(d) <- hb;
              w.w_wd_miss.(d) <- 0;
              progressed := true
            end
            else begin
              w.w_wd_miss.(d) <- w.w_wd_miss.(d) + 1;
              if w.w_wd_miss.(d) >= sh.p_budget then suspect := Some v
            end
          end
        end
      done;
      if !progressed then w.w_wd_gap <- 1 else w.w_wd_gap <- min (w.w_wd_gap * 2) 1024;
      !suspect
    end

  (* Reclaim a suspect domain's work (leader only, called from
     [quiesce] with the leader already off the idle count so the
     replayed work cannot race the termination check).  Fence first:
     the victim must acknowledge ([w_reclaim] = 2, set at a checkpoint
     or on the perish path) or be provably dead ([w_crashed]) before
     its plain mutable state is read — the SC-atomic handshake
     publishes it.

     Clean (fenced at an item boundary, [w_inflight] false): everything
     the victim did is complete.  Its deque is drained into the
     leader's (survivors may be stealing from it concurrently; every
     claim still goes through the top CAS) and its shard and blacklist
     buffer wait for the ordinary epilogue merge — the
     crash-after-publish arm.

     Dirty (fenced mid-item): the victim's in-flight item is half
     executed, so *all* of its work is rolled back and re-earned: the
     deque is drained to the bin, every shadow bit the victim ever won
     is cleared back ([Bitset.Atomic.test_and_clear]), its shard and
     blacklist buffer are discarded, and its claim journal (root tasks,
     rescan pages and stolen objects — never its own pushes, which the
     replay chain rediscovers) is replayed through the leader's deque —
     the crash-before-publish arm.  Replay pushes bypass the mark-stack
     limit on purpose: a dropped root task is unrecoverable, unlike a
     dropped already-marked object. *)
  let reclaim sh leader victim =
    Atomic.set victim.w_reclaim 1;
    wake_all sh;
    while not (Atomic.get victim.w_reclaim = 2 || Atomic.get victim.w_crashed) do
      Domain.cpu_relax ()
    done;
    if victim.w_inflight then begin
      ignore (Ws_deque.drain victim.w_deque (fun _ -> ()));
      let small_page_mask = (1 lsl won_page_bits) - 1 in
      for i = 0 to victim.w_won_len - 1 do
        let e = Array.unsafe_get victim.w_won i in
        if e land 1 = 1 then
          ignore
            (Bitset.Atomic.test_and_clear
               (Array.unsafe_get sh.p_shadow ((e lsr 1) land small_page_mask))
               (e lsr (won_page_bits + 1)))
        else ignore (Bitset.Atomic.test_and_clear sh.p_shadow_large (e lsr 1))
      done;
      victim.w_won_len <- 0;
      Stats.discard_marking victim.w_stats;
      if Bitset.length victim.w_black > 0 then Bitset.clear victim.w_black;
      victim.w_black_notes <- 0;
      for i = 0 to victim.w_log_len - 1 do
        Ws_deque.push leader.w_deque (Array.unsafe_get victim.w_log i)
      done;
      sh.p_dirty <- sh.p_dirty + 1
    end
    else begin
      ignore (Ws_deque.drain victim.w_deque (fun v -> Ws_deque.push leader.w_deque v));
      sh.p_clean <- sh.p_clean + 1
    end;
    (* mark the victim fully processed (a crashed one never set 2
       itself) so the watchdog skips it from now on *)
    Atomic.set victim.w_reclaim 2;
    sh.p_failed <- victim.w_id :: sh.p_failed;
    Atomic.incr sh.p_dead;
    wake_all sh;
    if sh.p_jobs - Atomic.get sh.p_dead < sh.p_quorum then begin
      Atomic.set sh.p_abandoned true;
      wake_all sh;
      raise Gone
    end

  (* Termination: only owners push to their own deques, so a domain
     counted idle has an empty deque and is executing nothing — when
     [idle + dead = jobs] there is no work anywhere and nobody can
     create any.  A domain must leave the idle count *before*
     attempting a grab, and re-enter it if the grab loses the race.
     The leader never naps: while idle it hosts the watchdog, and a
     failed domain is neither idle nor dead until reclaimed, so
     termination cannot fire with a failure undetected — the leader is
     guaranteed to still be here, ticking, when one happens. *)
  let quiesce sh w =
    Atomic.set w.w_idle_flag true;
    Atomic.incr sh.p_idle;
    if terminated sh then wake_all sh;
    let spins = ref 0 in
    let result = ref None in
    while !result = None do
      if Atomic.get w.w_reclaim = 1 || Atomic.get sh.p_abandoned then
        perish sh w ~counted_idle:true;
      if terminated sh then result := Some true
      else if work_visible sh then begin
        Atomic.decr sh.p_idle;
        result := Some false
      end
      else if w.w_id = 0 then begin
        match watchdog_tick sh w with
        | Some victim ->
            (* off the idle count before touching anything, so the
               reclaimed work cannot race the termination check *)
            Atomic.decr sh.p_idle;
            Atomic.set w.w_idle_flag false;
            if Atomic.get sh.p_idle + Atomic.get sh.p_dead = sh.p_jobs - 1 then begin
              (* Every other domain is parked or dead, so the suspect is
                 a false positive that went idle between the watchdog's
                 verdict and this fence — possibly all the way into the
                 end-of-phase barrier (it exits [quiesce] the instant
                 termination fires), where it waits on the barrier
                 condvar and can never acknowledge a fence.  Reclaiming
                 would spin forever; a genuinely frozen or crashed
                 victim is neither idle nor dead, so it can never take
                 this path.  Drop the suspicion, go back on the idle
                 count, and let termination fire. *)
              w.w_wd_miss.(victim.w_id) <- 0;
              Atomic.incr sh.p_idle;
              Atomic.set w.w_idle_flag true
            end
            else begin
              reclaim sh w victim;
              result := Some false
            end
        | None -> Domain.cpu_relax ()
      end
      else if !spins >= 64 then begin
        nap sh w;
        spins := 0
      end
      else begin
        Domain.cpu_relax ();
        incr spins
      end
    done;
    Atomic.set w.w_idle_flag false;
    Option.get !result

  let phase_loop sh w =
    let finished = ref false in
    while not !finished do
      checkpoint sh w site_pre_claim;
      match try_obtain sh w with
      | Some work ->
          (* the heartbeat is the watchdog's progress signal: one bump
             per claimed item *)
          Atomic.incr w.w_heartbeat;
          (match w.w_fault with Some f -> f.f_claims <- f.f_claims + 1 | None -> ());
          w.w_inflight <- true;
          checkpoint sh w site_post_claim;
          execute sh w work;
          w.w_inflight <- false
      | None -> if quiesce sh w then finished := true
    done

  (* The barrier target excludes the dead.  [p_dead] is stable during
     any barrier episode: failures only trip at checkpoints, which only
     run inside [phase_loop], and every domain is past its phase loop
     (and every failure past its reclaim — a failed domain blocks
     termination until reclaimed) before anyone arrives here. *)
  let barrier sh =
    Mutex.lock sh.p_bar_lock;
    let gen = sh.p_bar_gen in
    sh.p_bar_count <- sh.p_bar_count + 1;
    if sh.p_bar_count >= sh.p_jobs - Atomic.get sh.p_dead then begin
      sh.p_bar_count <- 0;
      sh.p_bar_gen <- gen + 1;
      Condition.broadcast sh.p_bar_cond
    end
    else
      while sh.p_bar_gen = gen do
        Condition.wait sh.p_bar_cond sh.p_bar_lock
      done;
    Mutex.unlock sh.p_bar_lock

  let worker_main sh w =
    try
      phase_loop sh w;
      (* recovery rounds: everyone meets, samples the overflow flag on a
         stable snapshot (nobody writes it between the two barriers), and
         either runs a rescan round or exits together *)
      let continue_rounds = ref true in
      while !continue_rounds do
        barrier sh;
        let again = Atomic.get sh.p_overflowed in
        barrier sh;
        if again then begin
          if w.w_id = 0 then begin
            Atomic.set sh.p_overflowed false;
            Atomic.set sh.p_next_rescan 0;
            Atomic.set sh.p_idle 0;
            Atomic.set sh.p_mode 1
          end;
          barrier sh;
          phase_loop sh w
        end
        else continue_rounds := false
      done
    with Gone -> ()

  (* Root tasks: one per register array, and clamped ranges cut into
     chunks on the range's alignment grid so big static/stack areas
     spread across domains.  Built serially (root providers and
     [Mem.find] run exactly once, like the serial marker). *)
  let chunk_words = 2048

  let build_tasks t roots ~mem =
    let tasks = ref [] in
    List.iter
      (fun (_, values) -> tasks := Registers values :: !tasks)
      (Roots.current_registers roots);
    List.iter
      (fun { Roots.lo; hi; label = _ } ->
        match Mem.find mem lo with
        | None -> ()
        | Some seg ->
            let lo, hi = Segment.clamp_words seg ~alignment:t.alignment ~lo ~hi in
            if lo + 4 <= hi then begin
              let span = chunk_words * t.alignment in
              let a = ref lo in
              while !a + 4 <= hi do
                let start_hi = if !a + span < hi then !a + span else hi in
                tasks := Range_chunk { seg; lo = !a; start_hi; hi } :: !tasks;
                a := !a + span
              done
            end)
      (Roots.current_ranges roots);
    Array.of_list (List.rev !tasks)

  let run_domains t roots ~mem ~jobs ~faults =
    clear_marks t.heap;
    Blacklist.begin_cycle t.blacklist;
    let n_pages = Heap.n_pages t.heap in
    let shadow = Array.make n_pages dummy_shadow in
    Heap.iter_committed t.heap (fun i p ->
        match p with
        | Page.Small s -> shadow.(i) <- Bitset.Atomic.create s.Page.n_objects
        | Page.Uncommitted | Page.Free | Page.Large_head _ | Page.Large_tail _ -> ());
    (* first armed plan per domain wins; plans naming a domain beyond
       [jobs - 1] have no one to fail and are ignored *)
    let fault_for id =
      match List.find_opt (fun p -> Domain_fault.victim p = id) faults with
      | Some p ->
          Some { f_mode = Domain_fault.mode p; f_steps = 0; f_claims = 0; f_tripped = false }
      | None -> None
    in
    let workers = Array.init jobs (fun id -> make_worker t ~jobs ~fault:(fault_for id) id) in
    let sh =
      {
        p_blacklist = t.blacklist;
        p_shadow = shadow;
        p_shadow_large = Bitset.Atomic.create n_pages;
        p_tasks = build_tasks t roots ~mem;
        p_next_task = Atomic.make 0;
        p_mode = Atomic.make 0;
        p_next_rescan = Atomic.make 0;
        p_committed = Heap.committed_pages t.heap;
        p_overflowed = Atomic.make false;
        p_idle = Atomic.make 0;
        p_jobs = jobs;
        p_workers = workers;
        p_budget = t.config.Config.mark_watchdog_budget;
        p_quorum = t.config.Config.mark_quorum;
        p_dead = Atomic.make 0;
        p_abandoned = Atomic.make false;
        p_clean = 0;
        p_dirty = 0;
        p_failed = [];
        p_lock = Mutex.create ();
        p_cond = Condition.create ();
        p_nappers = Atomic.make 0;
        p_bar_lock = Mutex.create ();
        p_bar_cond = Condition.create ();
        p_bar_count = 0;
        p_bar_gen = 0;
      }
    in
    let helpers =
      Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker_main sh workers.(k + 1)))
    in
    worker_main sh workers.(0);
    Array.iter Domain.join helpers;
    let tripped =
      Array.fold_left
        (fun acc w -> match w.w_fault with Some f when f.f_tripped -> acc + 1 | _ -> acc)
        0 workers
    in
    t.stats.Stats.mark_domain_faults <- t.stats.Stats.mark_domain_faults + tripped;
    let health =
      {
        heartbeats = Array.map (fun w -> Atomic.get w.w_heartbeat) workers;
        failed = List.rev sh.p_failed;
        clean_recoveries = sh.p_clean;
        dirty_recoveries = sh.p_dirty;
        survivors = jobs - Atomic.get sh.p_dead;
        quorum = sh.p_quorum;
        tasks_issued = Array.length sh.p_tasks;
      }
    in
    if Atomic.get sh.p_abandoned then (None, health)
    else begin
      (* Serial epilogue: snapshot the shards for the outcome *before*
         merging (merging transfers, i.e. zeroes, the shard counters),
         publish shadow marks into the real mark words, merge blacklist
         buffers and stats shards.  Dirty-reclaimed shards were zeroed
         during recovery, so they merge as zero; clean-reclaimed ones
         merge like any survivor's. *)
      let shards = Array.map (fun w -> Stats.copy w.w_stats) workers in
      Heap.iter_committed t.heap (fun i p ->
          match p with
          | Page.Small s -> Bitset.Atomic.blit_to shadow.(i) ~dst:s.Page.mark
          | Page.Large_head l -> l.Page.l_marked <- Bitset.Atomic.mem sh.p_shadow_large i
          | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ());
      Array.iter
        (fun w ->
          Stats.merge_marking ~into:t.stats w.w_stats;
          if t.blacklisting then
            Blacklist.merge_noted t.blacklist w.w_black ~notes:w.w_black_notes)
        workers;
      t.stats.Stats.parallel_marks <- t.stats.Stats.parallel_marks + 1;
      t.stats.Stats.mark_domains_recovered <-
        t.stats.Stats.mark_domains_recovered + sh.p_clean + sh.p_dirty;
      (Some shards, health)
    end

  let run_ ?(faults = []) t roots ~mem ~jobs =
    if jobs <= 1 then begin
      run t roots ~mem;
      {
        jobs_requested = jobs;
        domains_used = 1;
        fallback = Some Serial_configured;
        shards = [||];
        health = None;
      }
    end
    else if Mem.access_faults_armed mem then begin
      (* trip streams are stateful: serialize faultable loads *)
      t.stats.Stats.mark_serial_fallbacks <- t.stats.Stats.mark_serial_fallbacks + 1;
      run t roots ~mem;
      {
        jobs_requested = jobs;
        domains_used = 1;
        fallback = Some Access_plan_armed;
        shards = [||];
        health = None;
      }
    end
    else begin
      (* Abandonment is impossible at quorum 1 (the leader hosts the
         watchdog and never fails), so the default path skips the
         bitset copies. *)
      let snapshot =
        if t.config.Config.mark_quorum > 1 then Some (Blacklist.save_cycle t.blacklist)
        else None
      in
      match run_domains t roots ~mem ~jobs ~faults with
      | Some shards, health ->
          { jobs_requested = jobs; domains_used = jobs; fallback = None; shards; health = Some health }
      | None, health ->
          (* Quorum broke: abandon the parallel attempt wholesale.  The
             shadow tables die unmerged and the shards stay unmerged,
             so the serial rerun re-earns every counter; the
             blacklist's cycle rotation (and any partial notes) is
             rolled back so the rerun's own [begin_cycle] ages entries
             exactly once per collection. *)
          (match snapshot with
          | Some s -> Blacklist.restore_cycle t.blacklist s
          | None -> ());
          t.stats.Stats.mark_quorum_degradations <-
            t.stats.Stats.mark_quorum_degradations + 1;
          t.stats.Stats.mark_serial_fallbacks <- t.stats.Stats.mark_serial_fallbacks + 1;
          run t roots ~mem;
          {
            jobs_requested = jobs;
            domains_used = jobs;
            fallback = Some Domain_failed;
            shards = [||];
            health = Some health;
          }
    end

  let run = run_
end
