open Cgc_vm

type classification =
  | Valid of { base : Addr.t; page : int }
  | False_in_heap of { page : int }
  | Outside

(* The reference classifier: a direct transcription of the paper's
   validity test against the [Page.t] variants.  Kept as the oracle for
   the fast path (see [Reference]) and for cold call sites
   ([Gc.find_object], tracing, the generational write barrier) where
   clarity beats throughput. *)
let classify heap (config : Config.t) value =
  if not (Heap.contains heap value) then Outside
  else begin
    let page = Heap.page_index heap value in
    let invalid = False_in_heap { page } in
    match Heap.page heap page with
    | Page.Uncommitted | Page.Free -> invalid
    | Page.Small s ->
        let off_in_page = value - Addr.to_int (Heap.page_addr heap page) in
        let rel = off_in_page - s.Page.first_offset in
        if rel < 0 then invalid
        else begin
          let index = rel / s.Page.object_bytes in
          let displacement = rel mod s.Page.object_bytes in
          if index >= s.Page.n_objects then invalid
          else if not (Bitset.mem s.Page.alloc index) then invalid
          else if
            displacement = 0 || config.Config.interior_pointers
            || List.mem displacement config.Config.valid_displacements
          then
            Valid
              {
                base =
                  Addr.add (Heap.page_addr heap page)
                    (s.Page.first_offset + (index * s.Page.object_bytes));
                page;
              }
          else invalid
        end
    | Page.Large_head l ->
        if not l.Page.l_allocated then invalid
        else begin
          let off = value - Addr.to_int (Heap.page_addr heap page) in
          if off = 0 then Valid { base = Heap.page_addr heap page; page }
          else if
            config.Config.interior_pointers && off < l.Page.object_bytes
            (* any offset within the first page is within both regimes *)
          then Valid { base = Heap.page_addr heap page; page }
          else invalid
        end
    | Page.Large_tail { head_index } -> (
        if not config.Config.interior_pointers then invalid
        else
          match config.Config.large_validity with
          | Config.First_page_only -> invalid
          | Config.Anywhere -> (
              match Heap.page heap head_index with
              | Page.Large_head l when l.Page.l_allocated ->
                  let off = value - Addr.to_int (Heap.page_addr heap head_index) in
                  if off < l.Page.object_bytes then
                    Valid { base = Heap.page_addr heap head_index; page = head_index }
                  else invalid
              | Page.Large_head _ | Page.Uncommitted | Page.Free | Page.Small _
              | Page.Large_tail _ ->
                  invalid))
  end

type t = {
  heap : Heap.t;
  config : Config.t;
  blacklist : Blacklist.t;
  stats : Stats.t;
  mem : Mem.t;
      (* the fault boundary: scan loops consult it for injected read
         faults (checked once per range, so the fault-free path never
         pays a per-word plan lookup) *)
  mutable stack : int array; (* object base addresses *)
  mutable sp : int;
  mutable overflowed : bool;
  (* Scan scalars hoisted out of the per-word path.  All are immutable
     copies of configuration/heap geometry that cannot change while the
     marker exists. *)
  desc : Heap.desc;
  heap_seg : Segment.t;
  heap_lo : int;
  heap_hi : int;
  page_shift : int;
  page_mask : int;  (** [page_size - 1] *)
  alignment : int;
  granule : int;
  interior : bool;
  tail_valid : bool;  (** interior pointers on and [large_validity = Anywhere] *)
  blacklisting : bool;
  disp_mask : int array;
  (* One-entry header cache (Boehm's HDR cache): the descriptor row of
     the page hit by the previous heap reference.  Scanned pointers
     cluster heavily by page, so most lookups avoid even the flat-table
     loads.  [cache_page = -1] means empty; invalidated whenever the
     page table may have changed under us (at the start of [run] /
     [mark_value]). *)
  mutable cache_page : int;
  mutable cache_kind : int;
  mutable cache_object_bytes : int;
  mutable cache_first_offset : int;
  mutable cache_n_objects : int;
  mutable cache_pointer_free : bool;
  mutable cache_head : int;
  mutable cache_alloc : Bitset.t;
  mutable cache_mark : Bitset.t;
  mutable cache_large : Page.large;
}

let create heap config blacklist stats =
  {
    heap;
    config;
    blacklist;
    stats;
    mem = Heap.mem heap;
    stack = Array.make 1024 0;
    sp = 0;
    overflowed = false;
    desc = Heap.desc heap;
    heap_seg = Heap.segment heap;
    heap_lo = Addr.to_int (Heap.base heap);
    heap_hi = Addr.to_int (Heap.limit_reserved heap);
    page_shift = Heap.page_shift heap;
    page_mask = Heap.page_size heap - 1;
    alignment = config.Config.alignment;
    granule = config.Config.granule;
    interior = config.Config.interior_pointers;
    tail_valid =
      config.Config.interior_pointers
      && (match config.Config.large_validity with
         | Config.Anywhere -> true
         | Config.First_page_only -> false);
    blacklisting = config.Config.blacklisting;
    disp_mask = Config.displacement_mask config;
    cache_page = -1;
    cache_kind = Page.kind_uncommitted;
    cache_object_bytes = 0;
    cache_first_offset = 0;
    cache_n_objects = 0;
    cache_pointer_free = true;
    cache_head = 0;
    cache_alloc = Bitset.create 0;
    cache_mark = Bitset.create 0;
    cache_large = Page.dummy_large;
  }

let push t base =
  let at_limit =
    match t.config.Config.mark_stack_limit with
    | Some limit -> t.sp >= limit
    | None -> false
  in
  if at_limit then begin
    (* the object IS marked; its children will be found by the
       overflow-recovery rescan *)
    if not t.overflowed then t.stats.Stats.mark_stack_overflows <- t.stats.Stats.mark_stack_overflows + 1;
    t.overflowed <- true
  end
  else begin
    if t.sp = Array.length t.stack then begin
      let bigger = Array.make (2 * Array.length t.stack) 0 in
      Array.blit t.stack 0 bigger 0 t.sp;
      t.stack <- bigger
    end;
    t.stack.(t.sp) <- base;
    t.sp <- t.sp + 1
  end

let clear_marks heap =
  Heap.iter_committed heap (fun _ p ->
      match p with
      | Page.Small s -> Bitset.clear s.Page.mark
      | Page.Large_head l -> l.Page.l_marked <- false
      | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ())

(* --- the fast path ------------------------------------------------- *)

(* Fill the header cache with page's descriptor row: straight-line loads
   from the flat table, no variant match, no allocation.  [page] is in
   range by construction ([consider_heap] bounds-checks the address, and
   the descriptor arrays span every reserved page). *)
let load_header t page =
  let d = t.desc in
  t.cache_page <- page;
  t.cache_kind <- Char.code (Bytes.unsafe_get d.Heap.d_kind page);
  t.cache_object_bytes <- Array.unsafe_get d.Heap.d_object_bytes page;
  t.cache_first_offset <- Array.unsafe_get d.Heap.d_first_offset page;
  t.cache_n_objects <- Array.unsafe_get d.Heap.d_n_objects page;
  t.cache_pointer_free <- Bytes.unsafe_get d.Heap.d_pointer_free page <> '\000';
  t.cache_head <- Array.unsafe_get d.Heap.d_head page;
  t.cache_alloc <- Array.unsafe_get d.Heap.d_alloc page;
  t.cache_mark <- Array.unsafe_get d.Heap.d_mark page;
  t.cache_large <- Array.unsafe_get d.Heap.d_large page

let[@inline] ensure_header t page =
  if page = t.cache_page then
    t.stats.Stats.header_cache_hits <- t.stats.Stats.header_cache_hits + 1
  else load_header t page

let[@inline] note_false t page =
  t.stats.Stats.false_refs <- t.stats.Stats.false_refs + 1;
  if t.blacklisting then Blacklist.note t.blacklist page

let[@inline] note_valid t = t.stats.Stats.valid_refs <- t.stats.Stats.valid_refs + 1

(* Classify-and-mark fused, against the cached descriptor row.  Mirrors
   [classify] exactly (the differential tests pin this), but never
   allocates: no classification constructor, no closure, no [Int32].
   Does NOT count the word into [words_scanned] — range scans batch that
   per range. *)
let consider_heap t value =
  if value >= t.heap_lo && value < t.heap_hi then begin
    let page = (value - t.heap_lo) lsr t.page_shift in
    ensure_header t page;
    let kind = t.cache_kind in
    if kind = Page.kind_small then begin
      let rel = ((value - t.heap_lo) land t.page_mask) - t.cache_first_offset in
      if rel < 0 then note_false t page
      else begin
        let object_bytes = t.cache_object_bytes in
        let index = rel / object_bytes in
        let displacement = rel - (index * object_bytes) in
        if index >= t.cache_n_objects then note_false t page
        else if not (Bitset.unsafe_mem t.cache_alloc index) then note_false t page
        else if
          displacement = 0 || t.interior
          || Config.displacement_in_mask t.disp_mask ~granule:t.granule displacement
        then begin
          note_valid t;
          if not (Bitset.unsafe_mem t.cache_mark index) then begin
            Bitset.unsafe_add t.cache_mark index;
            t.stats.Stats.objects_marked <- t.stats.Stats.objects_marked + 1;
            push t (value - displacement)
          end
        end
        else note_false t page
      end
    end
    else if kind = Page.kind_large_head then begin
      let l = t.cache_large in
      if not l.Page.l_allocated then note_false t page
      else begin
        let off = (value - t.heap_lo) land t.page_mask in
        if off = 0 || (t.interior && off < l.Page.object_bytes) then begin
          note_valid t;
          if not l.Page.l_marked then begin
            l.Page.l_marked <- true;
            t.stats.Stats.objects_marked <- t.stats.Stats.objects_marked + 1;
            push t (value - off)
          end
        end
        else note_false t page
      end
    end
    else if kind = Page.kind_large_tail then begin
      if not t.tail_valid then note_false t page
      else begin
        let head = t.cache_head in
        let l = Array.unsafe_get t.desc.Heap.d_large head in
        let head_addr = t.heap_lo + (head lsl t.page_shift) in
        if
          Char.code (Bytes.unsafe_get t.desc.Heap.d_kind head) = Page.kind_large_head
          && l.Page.l_allocated
          && value - head_addr < l.Page.object_bytes
        then begin
          note_valid t;
          if not l.Page.l_marked then begin
            l.Page.l_marked <- true;
            t.stats.Stats.objects_marked <- t.stats.Stats.objects_marked + 1;
            push t head_addr
          end
        end
        else note_false t page
      end
    end
    else (* Free / Uncommitted *) note_false t page
  end

(* Guarded variant of the range scan, entered only while a fault plan
   arms reads: every word is probed against the plan first, and a word
   whose read faults (ECC trip or decayed region) is downgraded to "not
   a pointer" — counted, skipped, never retained, never a crash.  Kept
   out of [scan_words] so the fault-free loops stay closure-free. *)
let scan_words_guarded t seg ~lo ~hi =
  let bytes = Segment.unsafe_bytes seg in
  let sbase = Addr.to_int (Segment.base seg) in
  let alignment = t.alignment in
  let little = Endian.equal (Segment.endian seg) Endian.Little in
  let a = ref lo in
  while !a + 4 <= hi do
    (match Mem.probe_read t.mem (Addr.of_int !a) with
    | None ->
        let v =
          if little then Segment.unsafe_word_le bytes (!a - sbase)
          else Segment.unsafe_word_be bytes (!a - sbase)
        in
        consider_heap t v
    | Some _reason ->
        t.stats.Stats.read_faults <- t.stats.Stats.read_faults + 1;
        t.stats.Stats.mark_downgrades <- t.stats.Stats.mark_downgrades + 1);
    a := !a + alignment
  done

(* Closure-free scan of [lo, hi) within [seg]: one clamp, then raw
   unchecked word assembly, specialized per endianness so the branch is
   hoisted out of the loop.  The words-scanned count for the whole range
   is the loop-iteration count in closed form, added once. *)
let scan_words t seg ~lo ~hi =
  let lo, hi = Segment.clamp_words seg ~alignment:t.alignment ~lo ~hi in
  if lo + 4 <= hi then begin
    t.stats.Stats.words_scanned <-
      t.stats.Stats.words_scanned + (((hi - 4 - lo) / t.alignment) + 1);
    if Mem.read_faults_armed t.mem then scan_words_guarded t seg ~lo ~hi
    else begin
      let bytes = Segment.unsafe_bytes seg in
      let sbase = Addr.to_int (Segment.base seg) in
      let alignment = t.alignment in
      let little = Endian.equal (Segment.endian seg) Endian.Little in
      if little then begin
        let a = ref lo in
        while !a + 4 <= hi do
          consider_heap t (Segment.unsafe_word_le bytes (!a - sbase));
          a := !a + alignment
        done
      end
      else begin
        let a = ref lo in
        while !a + 4 <= hi do
          consider_heap t (Segment.unsafe_word_be bytes (!a - sbase));
          a := !a + alignment
        done
      end
    end
  end

(* Scan the words of a marked object.  Objects live entirely inside the
   heap segment, so we read it directly.  A page that is no longer Small
   or Large_head was retired between the push and the pop — possible
   only under a decaying fault plan — and has nothing left to scan. *)
let scan_object t base =
  ensure_header t ((base - t.heap_lo) lsr t.page_shift);
  let size, pointer_free =
    if t.cache_kind = Page.kind_small then (t.cache_object_bytes, t.cache_pointer_free)
    else if t.cache_kind = Page.kind_large_head then
      (t.cache_large.Page.object_bytes, t.cache_large.Page.l_pointer_free)
    else begin
      t.stats.Stats.mark_downgrades <- t.stats.Stats.mark_downgrades + 1;
      (0, true)
    end
  in
  if not pointer_free then
    scan_words t t.heap_seg ~lo:(Addr.of_int base) ~hi:(Addr.of_int (base + size))

let drain t =
  while t.sp > 0 do
    t.sp <- t.sp - 1;
    scan_object t t.stack.(t.sp)
  done

let mark_value t value =
  t.cache_page <- -1;
  t.stats.Stats.words_scanned <- t.stats.Stats.words_scanned + 1;
  consider_heap t value;
  drain t

let scan_range t ~mem range =
  let { Roots.lo; hi; label = _ } = range in
  match Mem.find mem lo with
  | None -> ()
  | Some seg -> scan_words t seg ~lo ~hi

(* Overflow recovery: rescan every already-marked object so dropped
   children get marked, until no push overflows.  Marked objects are
   enumerated with the word-level [Bitset.iter_set] rather than probing
   every slot. *)
let recover_from_overflow t =
  while t.overflowed do
    t.overflowed <- false;
    Heap.iter_committed t.heap (fun index p ->
        (match p with
        | Page.Small s ->
            let base = Addr.to_int (Heap.page_addr t.heap index) + s.Page.first_offset in
            let object_bytes = s.Page.object_bytes in
            Bitset.iter_set s.Page.mark (fun obj -> scan_object t (base + (obj * object_bytes)))
        | Page.Large_head l ->
            if l.Page.l_marked then scan_object t (Addr.to_int (Heap.page_addr t.heap index))
        | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ());
        drain t)
  done

let run t roots ~mem =
  clear_marks t.heap;
  t.sp <- 0;
  t.overflowed <- false;
  t.cache_page <- -1;
  Blacklist.begin_cycle t.blacklist;
  List.iter
    (fun (_, values) ->
      Array.iter
        (fun v ->
          t.stats.Stats.words_scanned <- t.stats.Stats.words_scanned + 1;
          consider_heap t v;
          drain t)
        values)
    (Roots.current_registers roots);
  List.iter
    (fun range ->
      scan_range t ~mem range;
      drain t)
    (Roots.current_ranges roots);
  recover_from_overflow t

(* --- the reference marker ------------------------------------------ *)

(* The pre-optimization mark phase, verbatim: per-word closures through
   [Segment.iter_words], allocating classifications from [classify], and
   variant matching for every mark-bit update.  It shares [t] (stack,
   stats, blacklist), and the differential tests pin it bit-identical to
   the fast path above — same mark bitmaps, same blacklist, same counts. *)
module Reference = struct
  let set_mark_bit t page base =
    match Heap.page t.heap page with
    | Page.Small s ->
        let rel = base - Addr.to_int (Heap.page_addr t.heap page) - s.Page.first_offset in
        let index = rel / s.Page.object_bytes in
        if Bitset.mem s.Page.mark index then `Already
        else begin
          Bitset.add s.Page.mark index;
          `Newly (s.Page.object_bytes, s.Page.pointer_free)
        end
    | Page.Large_head l ->
        if l.Page.l_marked then `Already
        else begin
          l.Page.l_marked <- true;
          `Newly (l.Page.object_bytes, l.Page.l_pointer_free)
        end
    | Page.Uncommitted | Page.Free | Page.Large_tail _ ->
        (* classify returned Valid, yet the page is no longer an object
           page: it was retired between classification and marking,
           possible only when a fault plan decays pages mid-scan.
           Downgrade the reference — skip it, never retain, never
           crash. *)
        t.stats.Stats.mark_downgrades <- t.stats.Stats.mark_downgrades + 1;
        `Already

  let consider t value =
    t.stats.Stats.words_scanned <- t.stats.Stats.words_scanned + 1;
    match classify t.heap t.config value with
    | Outside -> ()
    | False_in_heap { page } ->
        t.stats.Stats.false_refs <- t.stats.Stats.false_refs + 1;
        if t.config.Config.blacklisting then Blacklist.note t.blacklist page
    | Valid { base; page } -> (
        t.stats.Stats.valid_refs <- t.stats.Stats.valid_refs + 1;
        match set_mark_bit t page base with
        | `Already -> ()
        | `Newly (_, _) ->
            t.stats.Stats.objects_marked <- t.stats.Stats.objects_marked + 1;
            push t base)

  (* Mirror of the fast path's per-word downgrade: a faulted read is
     counted and the word skipped.  [words_scanned] is bumped here
     because [consider] (which normally counts it) never runs. *)
  let downgrade t =
    t.stats.Stats.words_scanned <- t.stats.Stats.words_scanned + 1;
    t.stats.Stats.read_faults <- t.stats.Stats.read_faults + 1;
    t.stats.Stats.mark_downgrades <- t.stats.Stats.mark_downgrades + 1

  let iter_words_guarded t seg ~lo ~hi =
    if Mem.read_faults_armed t.mem then
      Segment.iter_words seg ~alignment:t.config.Config.alignment ~lo ~hi (fun addr value ->
          match Mem.probe_read t.mem addr with
          | None -> consider t value
          | Some _reason -> downgrade t)
    else
      Segment.iter_words seg ~alignment:t.config.Config.alignment ~lo ~hi (fun _addr value ->
          consider t value)

  let scan_object t base =
    let page = Heap.page_index t.heap base in
    let size, pointer_free =
      match Heap.page t.heap page with
      | Page.Small s -> (s.Page.object_bytes, s.Page.pointer_free)
      | Page.Large_head l -> (l.Page.object_bytes, l.Page.l_pointer_free)
      | Page.Uncommitted | Page.Free | Page.Large_tail _ ->
          (* retired between push and pop under a decaying fault plan *)
          t.stats.Stats.mark_downgrades <- t.stats.Stats.mark_downgrades + 1;
          (0, true)
    in
    if not pointer_free then
      iter_words_guarded t (Heap.segment t.heap) ~lo:base ~hi:(Addr.add base size)

  let drain t =
    while t.sp > 0 do
      t.sp <- t.sp - 1;
      scan_object t t.stack.(t.sp)
    done

  let mark_value t value =
    consider t value;
    drain t

  let scan_range t ~mem range =
    let { Roots.lo; hi; label = _ } = range in
    match Mem.find mem lo with
    | None -> ()
    | Some seg -> iter_words_guarded t seg ~lo ~hi

  let recover_from_overflow t =
    while t.overflowed do
      t.overflowed <- false;
      Heap.iter_committed t.heap (fun index p ->
          (match p with
          | Page.Small s ->
              let base = Addr.to_int (Heap.page_addr t.heap index) + s.Page.first_offset in
              for obj = 0 to s.Page.n_objects - 1 do
                if Bitset.mem s.Page.mark obj then scan_object t (base + (obj * s.Page.object_bytes))
              done
          | Page.Large_head l ->
              if l.Page.l_marked then scan_object t (Addr.to_int (Heap.page_addr t.heap index))
          | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ());
          drain t)
    done

  let run t roots ~mem =
    clear_marks t.heap;
    t.sp <- 0;
    t.overflowed <- false;
    Blacklist.begin_cycle t.blacklist;
    List.iter
      (fun (_, values) ->
        Array.iter
          (fun v ->
            consider t v;
            drain t)
          values)
      (Roots.current_registers roots);
    List.iter
      (fun range ->
        scan_range t ~mem range;
        drain t)
      (Roots.current_ranges roots);
    recover_from_overflow t
end
