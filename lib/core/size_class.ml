type t = {
  granule : int;
  page_size : int;
  max_small : int;
  disp_mask : int array;
}

let create (config : Config.t) =
  {
    granule = config.Config.granule;
    page_size = config.Config.page_size;
    max_small = Config.max_small_bytes config;
    disp_mask = Config.displacement_mask config;
  }

let granule t = t.granule
let displacement_mask t = t.disp_mask
let displacement_ok t d = Config.displacement_in_mask t.disp_mask ~granule:t.granule d
let max_small_bytes t = t.max_small
let is_small t bytes = bytes <= t.max_small

let granules_for t bytes =
  if bytes <= 0 then invalid_arg "Size_class.granules_for: non-positive request";
  (bytes + t.granule - 1) / t.granule

let bytes_of_granules t g = g * t.granule
let n_classes t = t.max_small / t.granule

let objects_per_page t ~granules ~first_offset =
  if granules < 1 then invalid_arg "Size_class.objects_per_page: granules < 1";
  let usable = t.page_size - first_offset in
  usable / (granules * t.granule)
