(** Collector statistics.

    Besides the usual allocation/reclamation counters, we count the
    quantities the paper reports on directly: false references seen
    while marking, blacklist bookkeeping operations (behind the "usually
    less than 1%" overhead claim of footnote 3), and per-phase time. *)

type t = {
  mutable collections : int;
  mutable words_scanned : int;  (** root + heap words examined by the marker *)
  mutable valid_refs : int;  (** scanned values that named a live object *)
  mutable false_refs : int;  (** scanned values inside the heap region that named no object *)
  mutable objects_marked : int;
  mutable header_cache_hits : int;
      (** marker header lookups answered by the one-entry page cache *)
  mutable bytes_allocated : int;  (** cumulative *)
  mutable objects_allocated : int;
  mutable bytes_freed : int;
  mutable objects_freed : int;
  mutable live_bytes : int;  (** after the most recent sweep *)
  mutable live_objects : int;
  mutable heap_expansions : int;
  mutable mark_stack_overflows : int;
  mutable blacklist_alloc_checks : int;  (** allocation-side page checks *)
  mutable blacklist_rejected_pages : int;  (** fresh-page choices vetoed by the blacklist *)
  mutable mark_seconds : float;
  mutable sweep_seconds : float;
  mutable total_gc_seconds : float;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t
val pp : Format.formatter -> t -> unit
