(** Collector statistics.

    Besides the usual allocation/reclamation counters, we count the
    quantities the paper reports on directly: false references seen
    while marking, blacklist bookkeeping operations (behind the "usually
    less than 1%" overhead claim of footnote 3), and per-phase time. *)

type t = {
  mutable collections : int;
  mutable words_scanned : int;  (** root + heap words examined by the marker *)
  mutable valid_refs : int;  (** scanned values that named a live object *)
  mutable false_refs : int;  (** scanned values inside the heap region that named no object *)
  mutable objects_marked : int;
  mutable header_cache_hits : int;
      (** marker header lookups answered by the one-entry page cache *)
  mutable bytes_allocated : int;  (** cumulative *)
  mutable objects_allocated : int;
  mutable bytes_freed : int;
  mutable objects_freed : int;
  mutable live_bytes : int;  (** after the most recent sweep *)
  mutable live_objects : int;
  mutable heap_expansions : int;
  mutable mark_stack_overflows : int;
  mutable blacklist_alloc_checks : int;  (** allocation-side page checks *)
  mutable blacklist_rejected_pages : int;  (** fresh-page choices vetoed by the blacklist *)
  mutable ladder_collects : int;
      (** allocation-ladder rung: collections forced by a failed request *)
  mutable ladder_drains : int;  (** rung: pending lazy sweeps drained *)
  mutable ladder_trims : int;  (** rung: trailing free pages released and the request retried *)
  mutable ladder_expansions : int;  (** rung: heap growth attempts on behalf of a request *)
  mutable ladder_backoffs : int;
      (** expansion-size halvings after a grow attempt was refused by the (simulated) OS *)
  mutable ladder_relax_first_page : int;
      (** rung: blacklist strictness dropped to first-page-only for a starved request *)
  mutable ladder_relax_black : int;
      (** rung: allocation permitted on blacklisted pages outright *)
  mutable ladder_oom_hooks : int;  (** rung: registered out-of-memory hook invocations *)
  mutable commit_faults : int;  (** injected commit/map failures absorbed by the ladder *)
  mutable read_faults : int;
      (** injected read failures observed by the collector (mark-phase
          probes plus field accessors) *)
  mutable write_faults : int;
      (** injected write failures observed by the collector (allocation
          zeroing plus field accessors) *)
  mutable mark_downgrades : int;
      (** mark-phase words downgraded to "not a pointer" after a read
          fault: the word is skipped, never retained *)
  mutable pages_decayed : int;  (** heap pages quarantined after a decay write fault *)
  mutable decay_retries : int;
      (** allocations retried after the returned slot's memory decayed
          (or its page was quarantined) under the allocator *)
  mutable oom_raised : int;  (** structured [Out_of_memory] raises after the ladder ran dry *)
  mutable parallel_marks : int;  (** trace phases run by {!Mark.Parallel} with > 1 domain *)
  mutable mark_serial_fallbacks : int;
      (** parallel-mark requests served by the serial marker because a
          [Mem.Fault] access plan was armed (trip streams are stateful
          and cannot be raced across domains), or abandoned mid-trace
          after marker-domain failures broke quorum *)
  mutable mark_domain_faults : int;
      (** injected marker-domain failures (stalls, crashes, livelocks,
          stragglers) that actually tripped during a parallel trace *)
  mutable mark_domains_recovered : int;
      (** suspect marker domains whose work was reclaimed by survivors
          (deque drained, shard merged or rolled back and rescanned)
          with the trace still finishing in parallel *)
  mutable mark_quorum_degradations : int;
      (** parallel traces abandoned because survivors dropped below
          [Config.mark_quorum]; each also counts one
          [mark_serial_fallbacks] since the serial scanner reran the
          trace from scratch *)
  mutable precise_collections : int;
      (** exact (type-accurate) collections completed by {!Precise.collect} *)
  mutable precise_mark_aborts : int;
      (** exact mark phases abandoned after an unrecoverable access
          fault, with the pre-collect mark state restored *)
  mutable precise_mark_retries : int;
      (** transient re-reads of an exact pointer slot that faulted during
          a precise mark before the bounded retry budget gave up *)
  mutable precise_stale_roots : int;
      (** exact root-provider slots naming freed or decayed addresses —
          counted and audited rather than silently skipped *)
  mutable mark_seconds : float;
  mutable sweep_seconds : float;
  mutable total_gc_seconds : float;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val blit : t -> into:t -> unit
(** [blit src ~into] copies every field of [src] into [into], in place.
    The restore half of a [copy]-snapshot for callers that run a
    speculative phase (e.g. a verifier's shadow mark) against live
    counters and must leave them exactly as found. *)

val merge_marking : into:t -> t -> unit
(** Fold one parallel-marker domain shard into the session totals: sums
    the trace-phase counters ([words_scanned], [valid_refs],
    [false_refs], [objects_marked], [header_cache_hits],
    [mark_stack_overflows], [mark_downgrades]) and leaves every other
    field of [into] untouched.  Because the domains partition the
    serial marker's work exactly, the summed counters keep their
    serial meaning.  The consumed counters are zeroed in the shard, so
    the merge is a {e transfer}: merging the same shard twice is
    idempotent, and a shard emptied by {!discard_marking} merges as
    zero. *)

val discard_marking : t -> unit
(** Zero a shard's trace-phase counters without crediting them — the
    crash-before-publish arm of marker-domain recovery, where the
    victim's partial work is rolled back and re-earned by a survivor. *)

val pp : Format.formatter -> t -> unit
