open Cgc_vm

type stats = {
  minor_collections : int;
  major_collections : int;
  promoted_pages : int;
  promoted_bytes : int;
  dirty_pages_scanned : int;
}

type t = {
  gc : Gc.t;
  promote_after : int;
  age : int array; (* per page: consecutive minor survivals; -1 = promoted (old) *)
  dirty : Bitset.t; (* old pages the next minor collection must rescan *)
  carry : Bitset.t;
      (* the subset of [dirty] kept across the last rescan because the
         page still referenced young data (the mutator owes no second
         barrier for a store it already made once) *)
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable promoted_pages : int;
  mutable promoted_bytes : int;
  mutable dirty_pages_scanned : int;
}

let create ?(promote_after = 2) gc =
  if promote_after < 1 then invalid_arg "Generational.create: promote_after must be >= 1";
  if (Gc.config gc).Config.lazy_sweep then
    invalid_arg "Generational.create: incompatible with lazy_sweep (minor sweeps are eager)";
  let n = Heap.n_pages (Gc.heap gc) in
  {
    gc;
    promote_after;
    age = Array.make n 0;
    dirty = Bitset.create n;
    carry = Bitset.create n;
    minor_collections = 0;
    major_collections = 0;
    promoted_pages = 0;
    promoted_bytes = 0;
    dirty_pages_scanned = 0;
  }

let gc t = t.gc
let heap t = Gc.heap t.gc
let page_is_old t index = t.age.(index) < 0

let is_old t addr =
  match Gc.find_object t.gc addr with
  | Some base -> page_is_old t (Heap.page_index (heap t) base)
  | None -> false

let dirty_pages t = List.rev (Bitset.fold (fun acc i -> i :: acc) [] t.dirty)
let carried_pages t = List.rev (Bitset.fold (fun acc i -> i :: acc) [] t.carry)

let reset_stats t =
  t.minor_collections <- 0;
  t.major_collections <- 0;
  t.promoted_pages <- 0;
  t.promoted_bytes <- 0;
  t.dirty_pages_scanned <- 0

let get_field t base i = Gc.get_field t.gc base i

(* The write barrier: a pointer store into an old page means the next
   minor collection must rescan that page.  The dirty bit is set only
   after the store succeeds — a faulted (raising) write must not leave
   the old page spuriously dirty. *)
let set_field t base i v =
  Gc.set_field t.gc base i v;
  let index = Heap.page_index (heap t) base in
  if page_is_old t index then Bitset.add t.dirty index

(* --- minor collection --- *)

(* Young-only conservative marking: old objects are treated as live and
   opaque; their outgoing pointers are covered by the dirty-page scan. *)
let minor_mark t =
  let heap = heap t in
  let config = Gc.config t.gc in
  let roots = Gc.Internal.roots t.gc in
  let blacklist = Gc.blacklist t.gc in
  (* clear marks on young pages only *)
  Heap.iter_committed heap (fun i p ->
      if not (page_is_old t i) then
        match p with
        | Page.Small s -> Bitset.clear s.Page.mark
        | Page.Large_head l -> l.Page.l_marked <- false
        | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ());
  let stack = ref [] in
  (* [noting] is on only while a dirty old page's own words are being
     scanned: any young target seen there means the page still holds a
     cross-generation edge and its dirty bit must survive this rescan
     (clearing it would strand the young object at the next minor — the
     store happened once, the mutator owes no second barrier). *)
  let noting = ref false in
  let young_ref = ref false in
  let consider value =
    match Mark.classify heap config value with
    | Mark.Valid { base; page } ->
        if not (page_is_old t page) then begin
          if !noting then young_ref := true;
          if Heap.mark_object heap base then stack := base :: !stack
        end
    | Mark.False_in_heap { page } ->
        if config.Config.blacklisting then Blacklist.note blacklist page
    | Mark.Outside -> ()
  in
  let mem = Gc.mem t.gc in
  let stats = Gc.stats t.gc in
  (* A read fault while scanning downgrades the word to "not a pointer",
     exactly like the full marker: counted, skipped, never retained. *)
  let consider_guarded addr value =
    match Mem.probe_read mem addr with
    | None -> consider value
    | Some _reason ->
        stats.Stats.read_faults <- stats.Stats.read_faults + 1;
        stats.Stats.mark_downgrades <- stats.Stats.mark_downgrades + 1
  in
  let iter_words seg ~lo ~hi =
    if Mem.read_faults_armed mem then
      Segment.iter_words seg ~alignment:config.Config.alignment ~lo ~hi consider_guarded
    else
      Segment.iter_words seg ~alignment:config.Config.alignment ~lo ~hi (fun _ value ->
          consider value)
  in
  let scan_words lo hi = iter_words (Heap.segment heap) ~lo ~hi in
  let rec drain () =
    match !stack with
    | [] -> ()
    | base :: rest ->
        stack := rest;
        let size, pointer_free = Heap.object_span heap base in
        if not pointer_free then scan_words base (Addr.add base size);
        drain ()
  in
  (* usual conservative roots *)
  List.iter
    (fun (_, values) -> Array.iter consider values)
    (Roots.current_registers roots);
  drain ();
  List.iter
    (fun { Roots.lo; hi; label = _ } ->
      (match Mem.find mem lo with
      | None -> ()
      | Some seg -> iter_words seg ~lo ~hi);
      drain ())
    (Roots.current_ranges roots);
  (* dirty old pages: rescan their live objects, and keep the dirty bit
     of any page that still points into the young generation *)
  let keep = ref [] in
  Bitset.iter
    (fun index ->
      t.dirty_pages_scanned <- t.dirty_pages_scanned + 1;
      young_ref := false;
      noting := true;
      (match Heap.page heap index with
      | Page.Small s ->
          let base = Addr.add (Heap.page_addr heap index) s.Page.first_offset in
          for obj = 0 to s.Page.n_objects - 1 do
            if Bitset.mem s.Page.alloc obj && not s.Page.pointer_free then begin
              let lo = Addr.add base (obj * s.Page.object_bytes) in
              scan_words lo (Addr.add lo s.Page.object_bytes)
            end
          done
      | Page.Large_head l ->
          if l.Page.l_allocated && not l.Page.l_pointer_free then begin
            let lo = Heap.page_addr heap index in
            scan_words lo (Addr.add lo l.Page.object_bytes)
          end
      | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ());
      noting := false;
      if !young_ref then keep := index :: !keep;
      drain ())
    t.dirty;
  Bitset.clear t.dirty;
  Bitset.clear t.carry;
  List.iter
    (fun index ->
      Bitset.add t.dirty index;
      Bitset.add t.carry index)
    !keep

(* Promotion bookkeeping after a sweep: empty pages rejuvenate, occupied
   young pages age, old-enough pages are promoted (and their free slots
   withdrawn so fresh allocation stays young).  [promoted_bytes] charges
   live bytes at the moment of promotion for both page shapes. *)
let update_ages_after_sweep t =
  let heap = heap t in
  let free_lists = Gc.Internal.free_lists t.gc in
  Heap.iter_committed heap (fun i p ->
      match p with
      | Page.Free | Page.Uncommitted ->
          t.age.(i) <- 0;
          Bitset.remove t.dirty i;
          Bitset.remove t.carry i
      | Page.Large_tail _ -> ()
      | Page.Small s ->
          if not (page_is_old t i) then begin
            t.age.(i) <- t.age.(i) + 1;
            if t.age.(i) >= t.promote_after then begin
              t.age.(i) <- -1;
              t.promoted_pages <- t.promoted_pages + 1;
              t.promoted_bytes <- t.promoted_bytes + (Bitset.count s.Page.alloc * s.Page.object_bytes);
              (* A freshly promoted page enters the old generation dirty
                 (and carried): every store into it happened while the
                 page was young, when no barrier was owed, so any
                 outgoing young reference it holds is uncovered until
                 the first post-promotion rescan clears or re-carries
                 the bit. *)
              if not s.Page.pointer_free then begin
                Bitset.add t.dirty i;
                Bitset.add t.carry i
              end;
              Free_list.drop_in_page free_lists ~granules:s.Page.granules
                ~pointer_free:s.Page.pointer_free
                ~page_of:(fun a -> Heap.page_index heap (Addr.of_int a))
                ~page:i
            end
          end
      | Page.Large_head l ->
          if not (page_is_old t i) then begin
            t.age.(i) <- t.age.(i) + 1;
            if t.age.(i) >= t.promote_after then begin
              for j = i to i + l.Page.n_pages - 1 do
                t.age.(j) <- -1
              done;
              t.promoted_pages <- t.promoted_pages + l.Page.n_pages;
              if l.Page.l_allocated then begin
                t.promoted_bytes <- t.promoted_bytes + l.Page.object_bytes;
                (* Same uncovered-store hazard as the small case: the
                   head page carries the bit, and the rescan walks the
                   whole object from there. *)
                if not l.Page.l_pointer_free then begin
                  Bitset.add t.dirty i;
                  Bitset.add t.carry i
                end
              end
            end
          end)

let minor t =
  t.minor_collections <- t.minor_collections + 1;
  minor_mark t;
  let heap = heap t in
  let policy i _ = if page_is_old t i then `Keep_live else `Sweep in
  let decayed = Gc.Internal.decayed_pages t.gc in
  let (_ : Sweep.result) =
    Sweep.run ~policy
      ~quarantined:(fun i -> Bitset.mem decayed i)
      heap (Gc.Internal.free_lists t.gc) (Gc.Internal.finalize t.gc) (Gc.stats t.gc)
  in
  update_ages_after_sweep t

let major t =
  t.major_collections <- t.major_collections + 1;
  Gc.collect t.gc;
  (* The full collect traced every root and swept every page, so no
     page owes a barrier rescan: the whole dirty set (carryovers
     included) is cleared.  Clearing it is sound only because the
     generation clock resets with it — every surviving page returns to
     the young generation and re-earns tenure, so no old page is left
     whose young references would now be uncovered. *)
  Bitset.clear t.dirty;
  Bitset.clear t.carry;
  Array.fill t.age 0 (Array.length t.age) 0

let allocate ?pointer_free ?finalizer t bytes =
  match Gc.allocate ?pointer_free ?finalizer t.gc bytes with
  | a -> a
  | exception Gc.Out_of_memory first -> (
      major t;
      match Gc.allocate ?pointer_free ?finalizer t.gc bytes with
      | a -> a
      | exception Gc.Out_of_memory second ->
          (* Both attempts stay attributable: the rungs climbed before
             the rescuing major precede the retry's own, and a cause
             seen by either attempt survives into the merged diagnosis. *)
          raise
            (Gc.Out_of_memory
               {
                 second with
                 Gc.rungs = first.Gc.rungs @ second.Gc.rungs;
                 blacklist_starved = first.Gc.blacklist_starved || second.Gc.blacklist_starved;
                 os_refused = first.Gc.os_refused || second.Gc.os_refused;
                 memory_decayed = first.Gc.memory_decayed || second.Gc.memory_decayed;
                 pages_decayed = max first.Gc.pages_decayed second.Gc.pages_decayed;
               }))

let stats t =
  {
    minor_collections = t.minor_collections;
    major_collections = t.major_collections;
    promoted_pages = t.promoted_pages;
    promoted_bytes = t.promoted_bytes;
    dirty_pages_scanned = t.dirty_pages_scanned;
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "%d minor / %d major collections; %d pages (%d bytes) promoted; %d dirty rescans"
    s.minor_collections s.major_collections s.promoted_pages s.promoted_bytes
    s.dirty_pages_scanned
