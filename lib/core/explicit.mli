(** Explicit malloc/free baseline.

    The paper contrasts the collector with C [malloc] implementations
    ("malloc implementations usually provide no useful bound on space
    usage, either; in the worst case they are subject to disastrous
    fragmentation overhead") and argues in its conclusion that keeping
    free lists sorted by address reduces fragmentation.  This allocator
    runs on the same page substrate as the collector, with a selectable
    free-list policy, so both claims can be measured. *)

open Cgc_vm

type t

val create :
  ?page_size:int -> ?policy:Free_list.policy -> Mem.t -> base:Addr.t -> max_bytes:int -> unit -> t

val malloc : t -> int -> Addr.t
(** @raise Out_of_memory when the reserved region is exhausted or a
    fault plan makes the simulated OS refuse the commit (the untyped
    [Mem.Commit_failed] never escapes this allocator). *)

exception Out_of_memory of string

val free : t -> Addr.t -> unit
(** @raise Invalid_argument on a double free or a pointer that is not an
    object base. *)

val is_allocated : t -> Addr.t -> bool

val live_bytes : t -> int
val live_objects : t -> int
val committed_bytes : t -> int

val fragmentation : t -> float
(** [committed_bytes / max live_bytes 1] — the space blow-up factor. *)

val release_empty_pages : t -> int
(** Return fully-empty small-object pages to the free pool (a very
    simple madvise-style trim); returns the number released. *)

val heap : t -> Heap.t
(** The underlying page substrate, exposed so harnesses can run
    heap-level coherence audits ({!Verify.check_heap}) against this
    baseline exactly as against the collector. *)

val get_field : t -> Addr.t -> int -> int
(** @raise Mem.Read_fault when an installed fault plan trips the read. *)

val set_field : t -> Addr.t -> int -> int -> unit
(** @raise Mem.Write_fault when an installed fault plan trips the write;
    the store does not happen. *)

val pp : Format.formatter -> t -> unit
