(** Precise (type-accurate) mark-sweep baseline.

    The control for every misidentification experiment: it shares the
    conservative collector's heap, allocator and sweeper but marks from
    an {e exact} root set through {e exact} pointer maps
    ({!Type_desc.t}), so "there are no false references in our sense"
    (paper section 4).  Differences in retention between this collector
    and the conservative one are, by construction, entirely due to
    conservativism.

    The exact mark phase is fault-coherent: an injected access fault on
    an exact pointer slot retries a bounded transient path, then aborts
    the phase, restores the pre-collect mark state and raises
    {!Mark_aborted} — never an escaped [Mem] exception over a
    half-marked heap.  An aborted collect frees nothing; the next
    completed collect reclaims everything the aborted one would have. *)

open Cgc_vm

exception
  Mark_aborted of {
    addr : Addr.t;  (** the address whose access kept faulting *)
    op : [ `Read | `Write ];
    retries : int;  (** transient re-reads burned before giving up *)
  }
(** An exact mark phase was abandoned after an unrecoverable access
    fault.  The heap is coherent when this escapes {!collect}: mark
    bits are restored to their pre-collect state and no sweep ran
    ([Stats.precise_mark_aborts] counts these). *)

type t

val create : Gc.t -> t
(** Wrap a conservative collector's machinery and take over its
    liveness discipline.  [create] turns the wrapped collector's
    auto-collection off and installs a {!Gc.set_collect_hook} so the
    allocation budget and the escalation ladder's Collect rung call
    back into {!collect} — the wrapped heap is never marked
    conservatively behind the precise view's back.  (A hook-triggered
    collect that aborts under faults is absorbed: the ladder proceeds
    to its next rung and the collect is retried at the next trigger.)
    [create] also registers the exact roots as a conservative register
    file, so an explicitly requested conservative mark sees a superset
    of the precise roots by construction. *)

val gc : t -> Gc.t

val allocate : ?finalizer:string -> t -> Type_desc.t -> Addr.t
(** Allocate an object of the described type and remember its layout.
    Atomic descriptors allocate [pointer_free] so neither discipline
    ever scans them. *)

val add_root_provider : t -> (unit -> Addr.t list) -> unit
(** Register a provider of exact root object addresses (bases).
    Providers returning freed or decayed addresses are counted in
    [Stats.precise_stale_roots] and reported by {!last_stale_roots},
    never silently swallowed. *)

val collect : t -> unit
(** Exact mark from the registered roots, then sweep (shared sweeper;
    finalization behaves identically).  Swept objects' descriptors are
    evicted from the layout table.  Uses a preallocated mark stack
    sized from [Config.mark_stack_limit] with the bounded-stack
    overflow discipline (overflow rescans marked objects with
    descriptors to a fixpoint).

    @raise Mark_aborted when an access fault exhausts the transient
    retry budget; mark state is restored and nothing is swept. *)

val descriptor : t -> Addr.t -> Type_desc.t option

val descriptor_count : t -> int
(** Number of layout-table entries — after a collect, exactly the
    allocated objects with known layouts (swept entries are evicted). *)

val iter_descriptors : t -> (Addr.t -> Type_desc.t -> unit) -> unit

val roots_now : t -> Addr.t list
(** The current exact root set, concatenated across providers (a
    provider that faults contributes nothing). *)

val last_stale_roots : t -> Addr.t list
(** Stale provider roots (freed/decayed addresses) observed by the most
    recent {!collect}, oldest first, capped at a handful. *)

val live_objects : t -> int
(** From the shared statistics of the most recent sweep. *)
