open Cgc_vm

exception Out_of_memory of string

type t = {
  sizes : Size_class.t;
  heap : Heap.t;
  free_lists : Free_list.t;
  mutable live_bytes : int;
  mutable live_objects : int;
}

let create ?(page_size = 4096) ?(policy = Free_list.Address_ordered) mem ~base ~max_bytes () =
  let config =
    {
      Config.default with
      Config.page_size;
      blacklisting = false;
      full_gc_at_startup = false;
      initial_pages = 1;
    }
  in
  let heap = Heap.create mem ~config ~base ~max_bytes in
  let sizes = Size_class.create config in
  let free_lists = Free_list.create ~n_classes:(Size_class.n_classes sizes) policy in
  { sizes; heap; free_lists; live_bytes = 0; live_objects = 0 }

let page_of t a = Heap.page_index t.heap a

let carve_page t index ~granules =
  let object_bytes = Size_class.bytes_of_granules t.sizes granules in
  let n_objects = Size_class.objects_per_page t.sizes ~granules ~first_offset:0 in
  Heap.set_page t.heap index
    (Page.make_small ~granules ~object_bytes ~pointer_free:false ~first_offset:0 ~n_objects);
  let base = Addr.to_int (Heap.page_addr t.heap index) in
  let slots = List.init n_objects (fun i -> base + (i * object_bytes)) in
  Free_list.prepend_block t.free_lists ~granules ~pointer_free:false slots

(* Commit faults injected by a plan are absorbed into the allocator's
   own typed failure: unlike the conservative collector there is no
   escalation ladder to climb, so the caller sees [Out_of_memory] rather
   than a leaking [Mem.Commit_failed]. *)
let refused reason =
  Out_of_memory
    ("explicit allocator: simulated OS refused the commit ("
    ^ Mem.Fault.reason_to_string reason
    ^ ")")

let acquire_page t ~granules =
  let fresh =
    match Heap.find_free_page t.heap ~ok:(fun _ -> true) with
    | Some i -> Some i
    | None -> (
        let next = Heap.committed_pages t.heap in
        match Heap.commit_through t.heap next with
        | true -> Some next
        | false -> None
        | exception Mem.Commit_failed { reason; _ } -> raise (refused reason))
  in
  match fresh with
  | Some i -> carve_page t i ~granules
  | None -> raise (Out_of_memory "explicit allocator: reserved region exhausted")

let malloc_small t ~granules =
  let take () = Free_list.take t.free_lists ~granules ~pointer_free:false in
  match take () with
  | Some a -> a
  | None -> (
      acquire_page t ~granules;
      match take () with
      | Some a -> a
      | None ->
          (* a freshly carved page always populates this class's free
             list; reaching here means the page table is corrupted *)
          raise (Out_of_memory "explicit allocator: freshly carved page yielded no slot"))

let malloc_large t bytes =
  let page_size = Heap.page_size t.heap in
  let n = (bytes + page_size - 1) / page_size in
  match Heap.find_free_run t.heap ~n ~ok:(fun _ -> true) with
  | None -> raise (Out_of_memory "explicit allocator: no free run for large object")
  | Some start ->
      (match Heap.commit_through t.heap (start + n - 1) with
      | true -> ()
      | false -> raise (Out_of_memory "explicit allocator: cannot commit large object")
      | exception Mem.Commit_failed { reason; _ } -> raise (refused reason));
      Heap.set_page t.heap start (Page.make_large ~n_pages:n ~object_bytes:bytes ~pointer_free:false);
      for j = start + 1 to start + n - 1 do
        Heap.set_page t.heap j (Page.Large_tail { head_index = start })
      done;
      Heap.page_addr t.heap start

let malloc t bytes =
  if bytes <= 0 then invalid_arg "Explicit.malloc: non-positive size";
  let base, rounded =
    if Size_class.is_small t.sizes bytes then begin
      let granules = Size_class.granules_for t.sizes bytes in
      let a = malloc_small t ~granules in
      (* mark allocated *)
      (match Heap.page t.heap (page_of t a) with
      | Page.Small s ->
          let rel = Addr.diff a (Heap.page_addr t.heap (page_of t a)) - s.Page.first_offset in
          Bitset.add s.Page.alloc (rel / s.Page.object_bytes)
      | Page.Uncommitted | Page.Free | Page.Large_head _ | Page.Large_tail _ ->
          (* the free list handed out a slot whose page is not a
             small-object page: heap corruption, reported typed instead
             of tripping an assertion *)
          invalid_arg "Explicit.malloc: free slot landed on a non-small page");
      (a, Size_class.bytes_of_granules t.sizes granules)
    end
    else (malloc_large t bytes, bytes)
  in
  t.live_bytes <- t.live_bytes + rounded;
  t.live_objects <- t.live_objects + 1;
  base

let free t a =
  if not (Heap.contains t.heap a) then invalid_arg "Explicit.free: address outside the heap";
  let index = page_of t a in
  match Heap.page t.heap index with
  | Page.Small s ->
      let rel = Addr.diff a (Heap.page_addr t.heap index) - s.Page.first_offset in
      if rel < 0 || rel mod s.Page.object_bytes <> 0 then
        invalid_arg "Explicit.free: not an object base";
      let obj = rel / s.Page.object_bytes in
      if obj >= s.Page.n_objects || not (Bitset.mem s.Page.alloc obj) then
        invalid_arg "Explicit.free: double free or wild pointer";
      Bitset.remove s.Page.alloc obj;
      Free_list.add t.free_lists ~granules:s.Page.granules ~pointer_free:false (Addr.to_int a);
      t.live_bytes <- t.live_bytes - s.Page.object_bytes;
      t.live_objects <- t.live_objects - 1
  | Page.Large_head l ->
      if not (Addr.equal a (Heap.page_addr t.heap index)) || not l.Page.l_allocated then
        invalid_arg "Explicit.free: double free or wild pointer";
      l.Page.l_allocated <- false;
      for j = index to index + l.Page.n_pages - 1 do
        Heap.set_page t.heap j Page.Free
      done;
      t.live_bytes <- t.live_bytes - l.Page.object_bytes;
      t.live_objects <- t.live_objects - 1
  | Page.Uncommitted | Page.Free | Page.Large_tail _ ->
      invalid_arg "Explicit.free: not an allocated object"

let is_allocated t a =
  if not (Heap.contains t.heap a) then false
  else begin
    let index = page_of t a in
    match Heap.page t.heap index with
    | Page.Small s ->
        let rel = Addr.diff a (Heap.page_addr t.heap index) - s.Page.first_offset in
        rel >= 0
        && rel mod s.Page.object_bytes = 0
        && rel / s.Page.object_bytes < s.Page.n_objects
        && Bitset.mem s.Page.alloc (rel / s.Page.object_bytes)
    | Page.Large_head l -> l.Page.l_allocated && Addr.equal a (Heap.page_addr t.heap index)
    | Page.Uncommitted | Page.Free | Page.Large_tail _ -> false
  end

let live_bytes t = t.live_bytes
let live_objects t = t.live_objects
let committed_bytes t = Heap.committed_bytes t.heap
let fragmentation t = float_of_int (committed_bytes t) /. float_of_int (max t.live_bytes 1)

let release_empty_pages t =
  let released = ref 0 in
  Heap.iter_committed t.heap (fun i p ->
      match p with
      | Page.Small s when Bitset.is_empty s.Page.alloc ->
          Free_list.drop_in_page t.free_lists ~granules:s.Page.granules ~pointer_free:false
            ~page_of:(page_of t) ~page:i;
          Heap.set_page t.heap i Page.Free;
          incr released
      | Page.Small _ | Page.Uncommitted | Page.Free | Page.Large_head _ | Page.Large_tail _ -> ());
  !released

let heap t = t.heap

(* Field accessors consult the fault boundary like the collector's: a
   faulted access surfaces as the typed [Mem.Read_fault]/[Write_fault]. *)
let get_field t base i =
  let a = Addr.add base (4 * i) in
  Mem.guard_read (Heap.mem t.heap) a;
  Segment.read_word (Heap.segment t.heap) a

let set_field t base i v =
  let a = Addr.add base (4 * i) in
  Mem.guard_write (Heap.mem t.heap) a;
  Segment.write_word (Heap.segment t.heap) a v

let pp ppf t =
  Format.fprintf ppf "explicit allocator: %d objects / %d bytes live, %d bytes committed (%.2fx)"
    t.live_objects t.live_bytes (committed_bytes t) (fragmentation t)
