open Cgc_vm

type class_row = {
  object_bytes : int;
  pointer_free : bool;
  pages : int;
  live_objects : int;
  free_slots : int;
  live_bytes : int;
}

type summary = {
  committed_pages : int;
  free_pages : int;
  blacklisted_pages : int;
  large_objects : int;
  large_bytes : int;
  classes : class_row list;
}

let summarize gc =
  let heap = Gc.heap gc in
  let table : (int * bool, class_row) Hashtbl.t = Hashtbl.create 16 in
  let large_objects = ref 0 in
  let large_bytes = ref 0 in
  Heap.iter_committed heap (fun _ p ->
      match p with
      | Page.Small s ->
          let key = (s.Page.object_bytes, s.Page.pointer_free) in
          let live = Bitset.count s.Page.alloc in
          let row =
            match Hashtbl.find_opt table key with
            | Some r -> r
            | None ->
                {
                  object_bytes = s.Page.object_bytes;
                  pointer_free = s.Page.pointer_free;
                  pages = 0;
                  live_objects = 0;
                  free_slots = 0;
                  live_bytes = 0;
                }
          in
          Hashtbl.replace table key
            {
              row with
              pages = row.pages + 1;
              live_objects = row.live_objects + live;
              free_slots = row.free_slots + (s.Page.n_objects - live);
              live_bytes = row.live_bytes + (live * s.Page.object_bytes);
            }
      | Page.Large_head l ->
          if l.Page.l_allocated then begin
            incr large_objects;
            large_bytes := !large_bytes + l.Page.object_bytes
          end
      | Page.Free | Page.Uncommitted | Page.Large_tail _ -> ());
  let classes =
    Hashtbl.fold (fun _ row acc -> row :: acc) table []
    |> List.sort (fun a b ->
           match compare a.object_bytes b.object_bytes with
           | 0 -> compare a.pointer_free b.pointer_free
           | c -> c)
  in
  {
    committed_pages = Heap.committed_pages heap;
    free_pages = Heap.free_page_count heap;
    blacklisted_pages = Gc.blacklisted_pages gc;
    large_objects = !large_objects;
    large_bytes = !large_bytes;
    classes;
  }

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>%d pages committed (%d free, %d blacklisted)@," s.committed_pages
    s.free_pages s.blacklisted_pages;
  Format.fprintf ppf "%-8s %-7s %6s %10s %10s %10s@," "size" "kind" "pages" "live objs" "free slots"
    "live bytes";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8d %-7s %6d %10d %10d %10d@," r.object_bytes
        (if r.pointer_free then "atomic" else "normal")
        r.pages r.live_objects r.free_slots r.live_bytes)
    s.classes;
  if s.large_objects > 0 then
    Format.fprintf ppf "plus %d large object(s), %d bytes@," s.large_objects s.large_bytes;
  Format.fprintf ppf "@]"

let pp_page_map ppf gc =
  let heap = Gc.heap gc in
  let blacklist = Gc.blacklist gc in
  let n = Heap.n_pages heap in
  Format.fprintf ppf "@[<v>";
  for i = 0 to n - 1 do
    let c =
      if Blacklist.is_black blacklist i then '#'
      else
        match Heap.page heap i with
        | Page.Free | Page.Uncommitted -> '.'
        | Page.Small s ->
            if s.Page.pointer_free then 'A'
            else if Bitset.count s.Page.alloc = s.Page.n_objects then 'S'
            else 's'
        | Page.Large_head _ | Page.Large_tail _ -> 'L'
    in
    Format.pp_print_char ppf c;
    if (i + 1) mod 64 = 0 then Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"

(* Root-provenance chains, re-exported from Trace so that "inspect why
   this object is alive" is available alongside the heap summaries. *)

type step = Trace.step =
  | Root of { label : string; at : Cgc_vm.Addr.t option; value : int }
  | Heap_word of { obj : Cgc_vm.Addr.t; at : Cgc_vm.Addr.t; value : int }

type chain = Trace.chain

let why_live = Trace.why_live
let retained_by = Trace.retained_by
let pp_step = Trace.pp_step
let pp_chain = Trace.pp_chain
