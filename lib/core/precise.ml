open Cgc_vm

exception
  Mark_aborted of {
    addr : Addr.t;
    op : [ `Read | `Write ];
    retries : int;
  }

type t = {
  gc : Gc.t;
  descs : (Addr.t, Type_desc.t) Hashtbl.t;
  mutable providers : (unit -> Addr.t list) list;
  mark_stack : int array;
      (* preallocated exact mark stack ([Addr.t] unifies with [int]);
         sized from [Config.mark_stack_limit] like the conservative
         marker's, with the same overflow discipline *)
  mutable last_stale : Addr.t list;
      (* stale provider roots seen by the most recent [collect], most
         recent first, capped — for audits and error messages *)
}

let gc t = t.gc

let allocate ?finalizer t desc =
  let base =
    Gc.allocate
      ~pointer_free:(Type_desc.is_atomic desc)
      ?finalizer t.gc desc.Type_desc.size_bytes
  in
  Hashtbl.replace t.descs base desc;
  base

let add_root_provider t f = t.providers <- f :: t.providers

let descriptor t addr =
  if Gc.is_allocated t.gc addr then Hashtbl.find_opt t.descs addr else None

let descriptor_count t = Hashtbl.length t.descs
let iter_descriptors t f = Hashtbl.iter f t.descs

let roots_now t =
  List.concat_map
    (fun f ->
      try f () with Mem.Read_fault _ | Mem.Write_fault _ -> [])
    t.providers

let last_stale_roots t = List.rev t.last_stale

let clear_marks heap =
  Heap.iter_committed heap (fun _ p ->
      match p with
      | Page.Small s -> Bitset.clear s.Page.mark
      | Page.Large_head l -> l.Page.l_marked <- false
      | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ())

let set_mark heap base =
  let index = Heap.page_index heap base in
  match Heap.page heap index with
  | Page.Small s ->
      let rel = Addr.diff base (Heap.page_addr heap index) - s.Page.first_offset in
      let obj = rel / s.Page.object_bytes in
      if Bitset.mem s.Page.mark obj then `Already
      else begin
        Bitset.add s.Page.mark obj;
        `Newly
      end
  | Page.Large_head l ->
      if l.Page.l_marked then `Already
      else begin
        l.Page.l_marked <- true;
        `Newly
      end
  | Page.Uncommitted | Page.Free | Page.Large_tail _ -> `Already

let is_marked heap base =
  let index = Heap.page_index heap base in
  match Heap.page heap index with
  | Page.Small s ->
      let rel = Addr.diff base (Heap.page_addr heap index) - s.Page.first_offset in
      Bitset.mem s.Page.mark (rel / s.Page.object_bytes)
  | Page.Large_head l -> l.Page.l_marked
  | Page.Uncommitted | Page.Free | Page.Large_tail _ -> false

(* Abort-and-restore: the mark bits live in page metadata, so a
   snapshot is a per-page copy.  No allocation happens during an exact
   collect, so the committed-page set cannot change between save and
   restore. *)
let save_marks heap =
  let acc = ref [] in
  Heap.iter_committed heap (fun i p ->
      match p with
      | Page.Small s -> acc := (i, `Small (Bitset.copy s.Page.mark)) :: !acc
      | Page.Large_head l -> acc := (i, `Large l.Page.l_marked) :: !acc
      | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ());
  !acc

let restore_marks heap snapshot =
  List.iter
    (fun (i, saved) ->
      match (Heap.page heap i, saved) with
      | Page.Small s, `Small bits ->
          Bitset.clear s.Page.mark;
          Bitset.union_into ~dst:s.Page.mark bits
      | Page.Large_head l, `Large m -> l.Page.l_marked <- m
      | _, _ -> ())
    snapshot

(* How many times a faulting exact pointer slot is re-read before the
   phase gives up.  Chance-style plans are transient (each probe rolls
   again); countdown/decay plans re-arm or persist, so the budget is
   deliberately small. *)
let transient_retries = 3

let read_field_retrying t base i =
  let stats = Gc.stats t.gc in
  let rec go attempt =
    try Gc.get_field t.gc base i
    with Mem.Read_fault { addr; _ } ->
      if attempt < transient_retries then begin
        stats.Stats.precise_mark_retries <- stats.Stats.precise_mark_retries + 1;
        go (attempt + 1)
      end
      else raise (Mark_aborted { addr; op = `Read; retries = attempt })
  in
  go 0

(* The exact trace.  Raises [Mark_aborted] (and nothing else) on an
   unrecoverable access fault; the caller owns restoring mark state. *)
let mark_exact t =
  let heap = Gc.heap t.gc in
  let stats = Gc.stats t.gc in
  let word = (Gc.config t.gc).Config.granule in
  let stack = t.mark_stack in
  let cap = Array.length stack in
  let top = ref 0 in
  let overflowed = ref false in
  let push base =
    if !top >= cap then begin
      if not !overflowed then
        stats.Stats.mark_stack_overflows <- stats.Stats.mark_stack_overflows + 1;
      overflowed := true
    end
    else begin
      stack.(!top) <- Addr.to_int base;
      incr top
    end
  in
  let mark_and_push base =
    match set_mark heap base with
    | `Newly ->
        stats.Stats.objects_marked <- stats.Stats.objects_marked + 1;
        push base
    | `Already -> ()
  in
  let visit_child value =
    (* null and non-object words are ordinary exact-map dataflow (a nil
       tail, a scalar slot the descriptor doesn't cover): skipped, not
       stale.  Staleness is a root-provider property. *)
    if value <> 0 && Gc.is_allocated t.gc value then mark_and_push (Addr.of_int value)
  in
  let scan_object base =
    match Hashtbl.find_opt t.descs base with
    | None -> () (* unknown layout: treat as atomic *)
    | Some desc ->
        Array.iter
          (fun off -> visit_child (read_field_retrying t base (off / word)))
          desc.Type_desc.pointer_offsets
  in
  let drain () =
    while !top > 0 do
      decr top;
      scan_object (Addr.of_int stack.(!top))
    done
  in
  List.iter
    (fun f ->
      let roots =
        try f () with
        | Mem.Read_fault { addr; _ } ->
            raise (Mark_aborted { addr; op = `Read; retries = 0 })
        | Mem.Write_fault { addr; _ } ->
            raise (Mark_aborted { addr; op = `Write; retries = 0 })
      in
      List.iter
        (fun base ->
          if Addr.to_int base = 0 then ()
          else if not (Gc.is_allocated t.gc base) then begin
            (* a provider handed us a freed or decayed address: counted
               and audited, never silently `Already`-swallowed *)
            stats.Stats.precise_stale_roots <- stats.Stats.precise_stale_roots + 1;
            if List.length t.last_stale < 8 then t.last_stale <- base :: t.last_stale
          end
          else mark_and_push base)
        roots)
    t.providers;
  drain ();
  (* Bounded-stack overflow discipline, exact-map flavor: instead of
     rescanning dirty heap regions conservatively, rescan every marked
     object that has a descriptor — dropped children are re-discovered
     because [visit_child] pushes only newly-marked objects, so each
     round either marks something new or terminates the loop. *)
  while !overflowed do
    overflowed := false;
    Hashtbl.iter
      (fun base (_ : Type_desc.t) ->
        if Gc.is_allocated t.gc base && is_marked heap base then scan_object base)
      t.descs;
    drain ()
  done

(* Evict descriptors of swept objects (they would otherwise accumulate
   across cycles: [allocate] only ever [Hashtbl.replace]s on
   reallocation of the same base). *)
let evict_swept_descriptors t =
  Hashtbl.filter_map_inplace
    (fun base desc -> if Gc.is_allocated t.gc base then Some desc else None)
    t.descs

let collect t =
  let heap = Gc.heap t.gc in
  let stats = Gc.stats t.gc in
  let t0 = Sys.time () in
  t.last_stale <- [];
  let snapshot = save_marks heap in
  clear_marks heap;
  (try mark_exact t
   with Mark_aborted _ as e ->
     restore_marks heap snapshot;
     stats.Stats.precise_mark_aborts <- stats.Stats.precise_mark_aborts + 1;
     raise e);
  let t1 = Sys.time () in
  stats.Stats.collections <- stats.Stats.collections + 1;
  stats.Stats.precise_collections <- stats.Stats.precise_collections + 1;
  let (_ : Sweep.result) = Gc.Internal.run_sweep t.gc in
  evict_swept_descriptors t;
  Gc.Internal.note_collected t.gc;
  let t2 = Sys.time () in
  stats.Stats.mark_seconds <- stats.Stats.mark_seconds +. (t1 -. t0);
  stats.Stats.sweep_seconds <- stats.Stats.sweep_seconds +. (t2 -. t1);
  stats.Stats.total_gc_seconds <- stats.Stats.total_gc_seconds +. (t2 -. t0)

let create gc =
  let cap =
    match (Gc.config gc).Config.mark_stack_limit with
    | Some n -> max 2 n
    | None -> 4096
  in
  let t =
    {
      gc;
      descs = Hashtbl.create 256;
      providers = [];
      mark_stack = Array.make cap 0;
      last_stale = [];
    }
  in
  (* The create contract: the wrapped collector must never mark this
     heap conservatively behind the precise view's back.  Auto-collect
     goes off, and the budget/ladder paths are redirected to the exact
     collect; an aborted exact mark leaves the heap coherent (marks
     restored), so the ladder simply proceeds to its next rung. *)
  Gc.set_auto_collect gc false;
  Gc.set_collect_hook gc (Some (fun () -> try collect t with Mark_aborted _ -> ()));
  (* For explicitly requested conservative collections (the
     misidentification experiments), expose the exact roots as a
     register file so the conservative mark is a superset of the
     precise one by construction. *)
  Gc.add_register_roots gc ~label:"precise-roots" (fun () ->
      Array.of_list (List.map Addr.to_int (roots_now t)));
  t

let live_objects t = (Gc.stats t.gc).Stats.live_objects
