(** The conservative garbage collector — public facade.

    A [Gc.t] owns a reserved heap region inside a simulated address
    space ({!Cgc_vm.Mem}), allocates headerless objects from
    size-classed pages, and reclaims them by conservative mark-sweep
    with page blacklisting, reproducing the collector of Boehm's
    PLDI'93 paper.

    Typical use:
    {[
      let mem = Mem.create () in
      let gc = Gc.create mem ~base:(Addr.of_int 0x400000) ~max_bytes:(8*1024*1024) () in
      Gc.add_static_root gc ~lo ~hi ~label:"data";
      let cell = Gc.allocate gc 8 in
      Gc.set_field gc cell 0 some_value;
      Gc.collect gc
    ]} *)

open Cgc_vm

type t

(** {1 Failure semantics}

    A request that cannot be satisfied outright climbs an escalation
    ladder — collect, drain deferred sweeps, trim + retry, grow with
    capped-backoff expansion sizing, optional blacklist relaxation, the
    registered out-of-memory hook — before {!Out_of_memory} is raised.
    Each rung is counted in {!Stats}; the raise carries a diagnosis. *)

type rung =
  | Collect  (** a collection forced on behalf of the request *)
  | Drain  (** lazy mode: deferred sweeps finished *)
  | Trim  (** trailing free pages returned to the OS, refunding commit quota *)
  | Grow  (** batch heap expansion with capped backoff *)
  | Relax_first_page
      (** large-object blacklist strictness dropped to first-page-only
          (observation 7's escape hatch; requires [Config.relax_blacklist]) *)
  | Relax_black
      (** placement permitted on blacklisted pages outright, counted as
          overrides (requires [Config.relax_blacklist]) *)
  | Oom_hook  (** the registered hook was given a last chance *)

val rung_to_string : rung -> string

type oom_diagnosis = {
  request_bytes : int;
  request_pages : int;
  small : bool;  (** served from a size-classed page *)
  pointer_free : bool;
  pages_reserved : int;
  pages_committed : int;
  pages_free : int;  (** committed [Free] pages at raise time *)
  pages_blacklisted : int;
  rungs : rung list;  (** ladder rungs attempted, in order *)
  blacklist_starved : bool;
      (** room for the request exists when the blacklist is ignored — the
          failure is observation 7's, not a true out-of-pages condition *)
  os_refused : bool;
      (** at least one (injected) commit/map fault was absorbed while
          serving this request *)
  pages_decayed : int;  (** pages quarantined after their memory decayed *)
  memory_decayed : bool;
      (** at least one write fault forced a quarantine-and-retry while
          serving this request: the request died of decayed memory, not
          of a mere shortage *)
}

exception Out_of_memory of oom_diagnosis
(** Raised when the reserved region cannot satisfy a request even after
    the whole escalation ladder ran dry (the simulated OS has no more
    memory to give, or the blacklist starves the request). *)

val pp_oom_diagnosis : Format.formatter -> oom_diagnosis -> unit
val oom_message : oom_diagnosis -> string

val set_oom_hook : t -> (int -> bool) option -> unit
(** Register (or clear) the analog of Boehm's [GC_oom_fn]: called with
    the request size in bytes after every other rung has failed; return
    [true] if memory may have been released (caches dropped, workload
    shrunk) and the ladder should run once more before raising. *)

val oom_hook : t -> (int -> bool) option

val create : ?config:Config.t -> Mem.t -> base:Addr.t -> max_bytes:int -> unit -> t
(** Reserve the heap and, when [config.full_gc_at_startup] is set,
    immediately run the paper's "normally very fast" startup collection
    so pre-existing false references are blacklisted before the first
    allocation.  Register roots {e before} relying on that property, or
    call {!collect} once after registering them. *)

val config : t -> Config.t
val mem : t -> Mem.t

(** {1 Roots} *)

val add_static_root : t -> lo:Addr.t -> hi:Addr.t -> label:string -> unit
val add_dynamic_roots : t -> label:string -> (unit -> Roots.range list) -> unit
val add_register_roots : t -> label:string -> (unit -> int array) -> unit

val exclude_roots : t -> lo:Addr.t -> hi:Addr.t -> label:string -> unit
(** Never scan this sub-range of any registered root ("it is useful ...
    to avoid scanning large static data areas that contain seemingly
    random, nonpointer areas (e.g. IO buffers)"). *)

val clear_roots : t -> unit

(** {1 Allocation} *)

val allocate : ?pointer_free:bool -> ?finalizer:string -> t -> int -> Addr.t
(** [allocate gc bytes] returns the base of a fresh object, zeroed when
    the configuration says so.  [pointer_free] objects are never scanned
    ("it is essential to provide some way to communicate to the
    collector at least the fact that an entire large object contains no
    pointers").  [finalizer] registers a finalization token. *)

val auto_collect : t -> bool
val set_auto_collect : t -> bool -> unit
(** When off, collections happen only on explicit {!collect} calls
    (useful to tests and single-shot experiments). *)

val collect_hook : t -> (unit -> unit) option
val set_collect_hook : t -> (unit -> unit) option -> unit
(** When set, the allocation-budget check and the ladder's Collect rung
    invoke this closure instead of the conservative {!collect}.  Meant
    for wrappers that impose their own liveness discipline (the
    {!Precise} view): the wrapped heap is never marked conservatively
    behind the wrapper's back, yet allocation pressure still triggers
    collection.  The hook must leave the heap coherent even when its
    collection aborts, and should call {!Internal.note_collected} after
    a completed cycle to reset the allocation budget. *)

(** {1 Collection} *)

val collect : t -> unit
(** A full stop-the-world collection: conservative mark from all
    registered roots (updating the blacklist), then sweep. *)

val drain_pending_sweeps : t -> int
(** Lazy-sweep mode: finish all deferred sweeping now; returns objects
    freed.  A no-op (0) in eager mode or when nothing is pending. *)

val trim : t -> int
(** Return trailing committed-but-free pages to the simulated OS
    (lowering the committed watermark).  Returns pages released.  The
    memory stays reserved — the blacklist still covers it — but no
    longer counts as committed heap. *)

(** {1 Object access} *)

val get_field : t -> Addr.t -> int -> int
(** [get_field gc base i] reads word [i] of the object at [base].
    @raise Mem.Read_fault when an installed fault plan trips the read
    (counted into [Stats.read_faults] first). *)

val set_field : t -> Addr.t -> int -> int -> unit
(** @raise Mem.Write_fault when an installed fault plan trips the write;
    the store does not happen. *)

val find_object : t -> Addr.t -> Addr.t option
(** Exact (non-configurable) query: base of the allocated object whose
    extent contains the address, if any.  Used by harnesses to decide
    retention; always recognizes interior addresses. *)

val is_allocated : t -> Addr.t -> bool
(** Whether the address is the base of a currently allocated object. *)

val object_size : t -> Addr.t -> int option
(** Size in bytes of the allocated object based at the address. *)

(** {1 Finalization} *)

val add_finalizer : t -> Addr.t -> token:string -> unit
val drain_finalized : t -> (Addr.t * string) list

(** {1 Introspection} *)

val stats : t -> Stats.t
val heap : t -> Heap.t
val blacklist : t -> Blacklist.t
val blacklisted_pages : t -> int
val live_bytes : t -> int
(** From the statistics of the most recent sweep. *)

val last_mark_outcome : t -> Mark.Parallel.outcome option
(** How the most recent mark phase ran when [Config.mark_jobs > 1]:
    parallel ([fallback = None]) or serial with a typed note (an armed
    [Mem.Fault] access plan forces serial marking up front;
    marker-domain failures breaking [Config.mark_quorum] abandon the
    trace mid-flight and rerun it serially, noted [Domain_failed]).
    Always [None] with the default [mark_jobs = 1]. *)

val set_domain_faults : t -> Domain_fault.plan list -> unit
(** Arm marker-domain failure plans: every subsequent parallel mark
    phase injects them (at most one plan per victim domain) until
    disarmed with [set_domain_faults t []].  The chaos driver's
    domain-failure axis and the recovery benchmarks sit on this. *)

val domain_faults : t -> Domain_fault.plan list
(** The currently armed marker-domain failure plans. *)

val pp : Format.formatter -> t -> unit

(** {1 Internals}

    Shared machinery exposed to the sibling baseline collectors
    ({!Precise}) and to white-box tests.  Not part of the stable API. *)
module Internal : sig
  val free_lists : t -> Free_list.t

  val pending_sweep : t -> Bitset.t
  (** Lazy mode: pages awaiting their deferred sweep (empty in eager
      mode).  Exposed for {!Verify.check_after_fault}. *)

  val decayed_pages : t -> Bitset.t
  (** Pages quarantined after a decay write fault: excluded from every
      placement path, their slots never refunded by sweeps.  Exposed for
      {!Verify.check_after_fault} and the generational minor sweep. *)

  val finalize : t -> Finalize.t
  val roots : t -> Roots.t
  val marker : t -> Mark.t
  val run_sweep : t -> Sweep.result
  (** Sweep using whatever mark bits are currently set. *)

  val run_mark : t -> unit
  (** Mark phase only (no sweep): leaves mark bits set for inspection. *)

  val note_collected : t -> unit
  (** Reset the allocation budget that drives [maybe_collect], exactly
      as the conservative [collect] does on completion.  For
      {!set_collect_hook} wrappers: call after a {e completed} exact
      cycle (never after an aborted one, so the retry happens at the
      next allocation). *)

  val run_mark_reference : t -> unit
  (** Like {!run_mark} but through {!Mark.Reference} — the
      pre-optimization scan loop.  Used by the differential tests and the
      mark-throughput benchmark. *)

  val run_mark_parallel : ?faults:Domain_fault.plan list -> t -> jobs:int -> Mark.Parallel.outcome
  (** Like {!run_mark} but through {!Mark.Parallel} with [jobs] marker
      domains (serial for [jobs <= 1] or under an armed access plan,
      with the typed note in the outcome).  [faults] overrides the
      armed {!set_domain_faults} plans for this one trace ([] = use the
      armed ones).  Records the outcome in {!last_mark_outcome}.  Used
      by the jobs differential, the failure-plan differential and the
      [bench mark --jobs] sweep. *)

  val is_marked : t -> Addr.t -> bool
  (** Valid only between [run_mark] and the next sweep. *)
end
