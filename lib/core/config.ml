type large_validity =
  | Anywhere
  | First_page_only

type t = {
  page_size : int;
  granule : int;
  interior_pointers : bool;
  valid_displacements : int list;
  large_validity : large_validity;
  alignment : int;
  blacklisting : bool;
  blacklist_buckets : int option;
  blacklist_refresh : bool;
  atomic_on_black_pages : bool;
  avoid_trailing_zeros : int option;
  zero_on_alloc : bool;
  initial_pages : int;
  min_expand_pages : int;
  max_expand_pages : int;
  space_divisor : int;
  lazy_sweep : bool;
  mark_stack_limit : int option;
  full_gc_at_startup : bool;
  relax_blacklist : bool;
  mark_jobs : int;
  mark_watchdog_budget : int;
  mark_quorum : int;
}

let default =
  {
    page_size = 4096;
    granule = 4;
    interior_pointers = true;
    valid_displacements = [];
    large_validity = Anywhere;
    alignment = 4;
    blacklisting = true;
    blacklist_buckets = None;
    blacklist_refresh = true;
    atomic_on_black_pages = true;
    avoid_trailing_zeros = None;
    zero_on_alloc = true;
    initial_pages = 64;
    min_expand_pages = 64;
    max_expand_pages = 256;
    space_divisor = 3;
    lazy_sweep = false;
    mark_stack_limit = None;
    full_gc_at_startup = true;
    relax_blacklist = false;
    mark_jobs = 1;
    mark_watchdog_budget = 4096;
    mark_quorum = 1;
  }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate t =
  if not (is_power_of_two t.page_size) || t.page_size < 256 then
    invalid_arg "Config: page_size must be a power of two >= 256";
  if t.granule <> 4 then invalid_arg "Config: granule must be 4 (the machine word)";
  if t.alignment <> 1 && t.alignment <> 2 && t.alignment <> 4 then
    invalid_arg "Config: alignment must be 1, 2 or 4";
  if t.initial_pages < 1 then invalid_arg "Config: initial_pages must be >= 1";
  if t.min_expand_pages < 1 then invalid_arg "Config: min_expand_pages must be >= 1";
  if t.max_expand_pages < t.min_expand_pages then
    invalid_arg "Config: max_expand_pages must be >= min_expand_pages";
  if t.space_divisor < 1 then invalid_arg "Config: space_divisor must be >= 1";
  List.iter
    (fun d ->
      if d < 0 then invalid_arg "Config: negative displacement";
      if d mod 4 <> 0 then invalid_arg "Config: displacements must be word-aligned")
    t.valid_displacements;
  (match t.avoid_trailing_zeros with
  | Some k when k < 3 || k > 31 ->
      invalid_arg "Config: avoid_trailing_zeros threshold must be in [3,31]"
  | Some _ | None -> ());
  (match t.blacklist_buckets with
  | Some n when n < 1 -> invalid_arg "Config: blacklist_buckets must be >= 1"
  | Some _ | None -> ());
  (match t.mark_stack_limit with
  | Some n when n < 16 -> invalid_arg "Config: mark_stack_limit must be >= 16"
  | Some _ | None -> ());
  if t.mark_jobs < 1 || t.mark_jobs > 64 then
    invalid_arg "Config: mark_jobs must be in [1,64]";
  if t.mark_watchdog_budget < 1 then
    invalid_arg "Config: mark_watchdog_budget must be >= 1";
  if t.mark_quorum < 1 then invalid_arg "Config: mark_quorum must be >= 1";
  if t.mark_quorum > t.mark_jobs then
    invalid_arg "Config: mark_quorum must be <= mark_jobs"

let max_small_bytes t = t.page_size / 2

(* Bitmask over word-aligned displacements, 62 bits per word: bit
   [d / granule] is set iff a pointer at byte displacement [d] into an
   object is recognized.  Bit 0 (the object base) is always set, mirroring
   "offset 0 is always valid". *)
let displacement_mask t =
  let granule = t.granule in
  let max_d = List.fold_left max 0 t.valid_displacements in
  let n_bits = (max_d / granule) + 1 in
  let words = Array.make ((n_bits + 61) / 62) 0 in
  let set d =
    let i = d / granule in
    words.(i / 62) <- words.(i / 62) lor (1 lsl (i mod 62))
  in
  set 0;
  List.iter set t.valid_displacements;
  words

let[@inline] displacement_in_mask mask ~granule d =
  d mod granule = 0
  &&
  let i = d / granule in
  let w = i / 62 in
  w < Array.length mask && mask.(w) land (1 lsl (i mod 62)) <> 0

let pp ppf t =
  Format.fprintf ppf
    "@[<v>page_size=%d granule=%d interior=%b displacements=[%s] large=%s align=%d@,\
     blacklist=%b refresh=%b atomic_on_black=%b avoid_tz=%s zero=%b@,\
     initial_pages=%d expand=%d..%d divisor=%d startup_gc=%b relax_blacklist=%b mark_jobs=%d@,\
     watchdog_budget=%d quorum=%d@]"
    t.page_size t.granule t.interior_pointers
    (String.concat ";" (List.map string_of_int t.valid_displacements))
    (match t.large_validity with
    | Anywhere -> "anywhere"
    | First_page_only -> "first-page")
    t.alignment t.blacklisting t.blacklist_refresh t.atomic_on_black_pages
    (match t.avoid_trailing_zeros with
    | None -> "off"
    | Some k -> string_of_int k)
    t.zero_on_alloc t.initial_pages t.min_expand_pages t.max_expand_pages t.space_divisor
    t.full_gc_at_startup t.relax_blacklist t.mark_jobs t.mark_watchdog_budget t.mark_quorum
