type t = {
  mutable collections : int;
  mutable words_scanned : int;
  mutable valid_refs : int;
  mutable false_refs : int;
  mutable objects_marked : int;
  mutable header_cache_hits : int;
  mutable bytes_allocated : int;
  mutable objects_allocated : int;
  mutable bytes_freed : int;
  mutable objects_freed : int;
  mutable live_bytes : int;
  mutable live_objects : int;
  mutable heap_expansions : int;
  mutable mark_stack_overflows : int;
  mutable blacklist_alloc_checks : int;
  mutable blacklist_rejected_pages : int;
  mutable ladder_collects : int;
  mutable ladder_drains : int;
  mutable ladder_trims : int;
  mutable ladder_expansions : int;
  mutable ladder_backoffs : int;
  mutable ladder_relax_first_page : int;
  mutable ladder_relax_black : int;
  mutable ladder_oom_hooks : int;
  mutable commit_faults : int;
  mutable read_faults : int;
  mutable write_faults : int;
  mutable mark_downgrades : int;
  mutable pages_decayed : int;
  mutable decay_retries : int;
  mutable oom_raised : int;
  mutable parallel_marks : int;
  mutable mark_serial_fallbacks : int;
  mutable mark_domain_faults : int;
  mutable mark_domains_recovered : int;
  mutable mark_quorum_degradations : int;
  mutable precise_collections : int;
  mutable precise_mark_aborts : int;
  mutable precise_mark_retries : int;
  mutable precise_stale_roots : int;
  mutable mark_seconds : float;
  mutable sweep_seconds : float;
  mutable total_gc_seconds : float;
}

let create () =
  {
    collections = 0;
    words_scanned = 0;
    valid_refs = 0;
    false_refs = 0;
    objects_marked = 0;
    header_cache_hits = 0;
    bytes_allocated = 0;
    objects_allocated = 0;
    bytes_freed = 0;
    objects_freed = 0;
    live_bytes = 0;
    live_objects = 0;
    heap_expansions = 0;
    mark_stack_overflows = 0;
    blacklist_alloc_checks = 0;
    blacklist_rejected_pages = 0;
    ladder_collects = 0;
    ladder_drains = 0;
    ladder_trims = 0;
    ladder_expansions = 0;
    ladder_backoffs = 0;
    ladder_relax_first_page = 0;
    ladder_relax_black = 0;
    ladder_oom_hooks = 0;
    commit_faults = 0;
    read_faults = 0;
    write_faults = 0;
    mark_downgrades = 0;
    pages_decayed = 0;
    decay_retries = 0;
    oom_raised = 0;
    parallel_marks = 0;
    mark_serial_fallbacks = 0;
    mark_domain_faults = 0;
    mark_domains_recovered = 0;
    mark_quorum_degradations = 0;
    precise_collections = 0;
    precise_mark_aborts = 0;
    precise_mark_retries = 0;
    precise_stale_roots = 0;
    mark_seconds = 0.;
    sweep_seconds = 0.;
    total_gc_seconds = 0.;
  }

let reset t =
  t.collections <- 0;
  t.words_scanned <- 0;
  t.valid_refs <- 0;
  t.false_refs <- 0;
  t.objects_marked <- 0;
  t.header_cache_hits <- 0;
  t.bytes_allocated <- 0;
  t.objects_allocated <- 0;
  t.bytes_freed <- 0;
  t.objects_freed <- 0;
  t.live_bytes <- 0;
  t.live_objects <- 0;
  t.heap_expansions <- 0;
  t.mark_stack_overflows <- 0;
  t.blacklist_alloc_checks <- 0;
  t.blacklist_rejected_pages <- 0;
  t.ladder_collects <- 0;
  t.ladder_drains <- 0;
  t.ladder_trims <- 0;
  t.ladder_expansions <- 0;
  t.ladder_backoffs <- 0;
  t.ladder_relax_first_page <- 0;
  t.ladder_relax_black <- 0;
  t.ladder_oom_hooks <- 0;
  t.commit_faults <- 0;
  t.read_faults <- 0;
  t.write_faults <- 0;
  t.mark_downgrades <- 0;
  t.pages_decayed <- 0;
  t.decay_retries <- 0;
  t.oom_raised <- 0;
  t.parallel_marks <- 0;
  t.mark_serial_fallbacks <- 0;
  t.mark_domain_faults <- 0;
  t.mark_domains_recovered <- 0;
  t.mark_quorum_degradations <- 0;
  t.precise_collections <- 0;
  t.precise_mark_aborts <- 0;
  t.precise_mark_retries <- 0;
  t.precise_stale_roots <- 0;
  t.mark_seconds <- 0.;
  t.sweep_seconds <- 0.;
  t.total_gc_seconds <- 0.

let copy t = { t with collections = t.collections }

(* Copy every field of [src] back into [into], in place.  The inverse of
   [copy] for callers that took a snapshot, ran a speculative phase (a
   verifier's shadow mark, say), and want the observable counters exactly
   as they were — without replacing the record other modules hold. *)
let blit src ~into =
  into.collections <- src.collections;
  into.words_scanned <- src.words_scanned;
  into.valid_refs <- src.valid_refs;
  into.false_refs <- src.false_refs;
  into.objects_marked <- src.objects_marked;
  into.header_cache_hits <- src.header_cache_hits;
  into.bytes_allocated <- src.bytes_allocated;
  into.objects_allocated <- src.objects_allocated;
  into.bytes_freed <- src.bytes_freed;
  into.objects_freed <- src.objects_freed;
  into.live_bytes <- src.live_bytes;
  into.live_objects <- src.live_objects;
  into.heap_expansions <- src.heap_expansions;
  into.mark_stack_overflows <- src.mark_stack_overflows;
  into.blacklist_alloc_checks <- src.blacklist_alloc_checks;
  into.blacklist_rejected_pages <- src.blacklist_rejected_pages;
  into.ladder_collects <- src.ladder_collects;
  into.ladder_drains <- src.ladder_drains;
  into.ladder_trims <- src.ladder_trims;
  into.ladder_expansions <- src.ladder_expansions;
  into.ladder_backoffs <- src.ladder_backoffs;
  into.ladder_relax_first_page <- src.ladder_relax_first_page;
  into.ladder_relax_black <- src.ladder_relax_black;
  into.ladder_oom_hooks <- src.ladder_oom_hooks;
  into.commit_faults <- src.commit_faults;
  into.read_faults <- src.read_faults;
  into.write_faults <- src.write_faults;
  into.mark_downgrades <- src.mark_downgrades;
  into.pages_decayed <- src.pages_decayed;
  into.decay_retries <- src.decay_retries;
  into.oom_raised <- src.oom_raised;
  into.parallel_marks <- src.parallel_marks;
  into.mark_serial_fallbacks <- src.mark_serial_fallbacks;
  into.mark_domain_faults <- src.mark_domain_faults;
  into.mark_domains_recovered <- src.mark_domains_recovered;
  into.mark_quorum_degradations <- src.mark_quorum_degradations;
  into.precise_collections <- src.precise_collections;
  into.precise_mark_aborts <- src.precise_mark_aborts;
  into.precise_mark_retries <- src.precise_mark_retries;
  into.precise_stale_roots <- src.precise_stale_roots;
  into.mark_seconds <- src.mark_seconds;
  into.sweep_seconds <- src.sweep_seconds;
  into.total_gc_seconds <- src.total_gc_seconds

(* Fold one parallel-marker domain shard into the session totals.  Only
   the counters the trace phase touches are summed, so every existing
   counter keeps its serial meaning: the per-domain contributions
   partition the serial work exactly (each root word is scanned by one
   domain; each object is scanned by the domain that won its mark bit).
   The consumed counters are zeroed in the shard so merging is a
   transfer, not a copy: merging the same shard twice (or merging after
   a recovery-path discard) contributes nothing the second time. *)
let merge_marking ~into shard =
  into.words_scanned <- into.words_scanned + shard.words_scanned;
  into.valid_refs <- into.valid_refs + shard.valid_refs;
  into.false_refs <- into.false_refs + shard.false_refs;
  into.objects_marked <- into.objects_marked + shard.objects_marked;
  into.header_cache_hits <- into.header_cache_hits + shard.header_cache_hits;
  into.mark_stack_overflows <- into.mark_stack_overflows + shard.mark_stack_overflows;
  into.mark_downgrades <- into.mark_downgrades + shard.mark_downgrades;
  shard.words_scanned <- 0;
  shard.valid_refs <- 0;
  shard.false_refs <- 0;
  shard.objects_marked <- 0;
  shard.header_cache_hits <- 0;
  shard.mark_stack_overflows <- 0;
  shard.mark_downgrades <- 0

(* Throw away a shard's trace-phase counters without crediting them
   anywhere — the crash-before-publish arm of marker-domain recovery,
   where the victim's in-flight item is rolled back and rescanned by a
   survivor (which re-earns the counts). *)
let discard_marking shard =
  shard.words_scanned <- 0;
  shard.valid_refs <- 0;
  shard.false_refs <- 0;
  shard.objects_marked <- 0;
  shard.header_cache_hits <- 0;
  shard.mark_stack_overflows <- 0;
  shard.mark_downgrades <- 0

let pp ppf t =
  Format.fprintf ppf
    "@[<v>collections     %d@,\
     words scanned   %d@,\
     valid refs      %d@,\
     false refs      %d@,\
     objects marked  %d@,\
     header cache    %d hits@,\
     allocated       %d objects / %d bytes@,\
     freed           %d objects / %d bytes@,\
     live            %d objects / %d bytes@,\
     heap expansions %d@,\
     mark overflows  %d@,\
     blacklist       %d alloc checks, %d pages rejected@,\
     ladder          %d collects, %d drains, %d trims, %d grows (%d backoffs)@,\
     relaxation      %d first-page, %d on-black, %d oom hooks@,\
     faults          %d commit faults, %d OOM raised@,\
     access faults   %d reads (%d mark downgrades), %d writes@,\
     decay           %d pages quarantined, %d alloc retries@,\
     parallel mark   %d runs, %d serial fallbacks@,\
     domain faults   %d injected, %d domains recovered, %d quorum degradations@,\
     precise         %d collects, %d mark aborts, %d retries, %d stale roots@,\
     gc time         %.6fs (mark %.6fs, sweep %.6fs)@]"
    t.collections t.words_scanned t.valid_refs t.false_refs t.objects_marked t.header_cache_hits
    t.objects_allocated
    t.bytes_allocated t.objects_freed t.bytes_freed t.live_objects t.live_bytes t.heap_expansions
    t.mark_stack_overflows t.blacklist_alloc_checks t.blacklist_rejected_pages
    t.ladder_collects t.ladder_drains t.ladder_trims t.ladder_expansions t.ladder_backoffs
    t.ladder_relax_first_page t.ladder_relax_black t.ladder_oom_hooks
    t.commit_faults t.oom_raised
    t.read_faults t.mark_downgrades t.write_faults
    t.pages_decayed t.decay_retries
    t.parallel_marks t.mark_serial_fallbacks
    t.mark_domain_faults t.mark_domains_recovered t.mark_quorum_degradations
    t.precise_collections t.precise_mark_aborts t.precise_mark_retries t.precise_stale_roots
    t.total_gc_seconds t.mark_seconds t.sweep_seconds
