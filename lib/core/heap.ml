open Cgc_vm

(* Flat structure-of-arrays mirror of the page table.  The mark-phase
   fast path classifies every scanned word against these packed arrays
   — a byte load for the kind, int loads for the geometry, and direct
   bitset references — instead of matching [Page.t] variants and
   chasing record pointers.  Rows are kept coherent with [pages] by
   [set_page]; the bitsets and the large record are the very objects
   inside the [Page.t] value, so mark/alloc mutations need no mirroring. *)
type desc = {
  d_kind : Bytes.t;  (** [Page.kind_code] per page *)
  d_object_bytes : int array;
  d_first_offset : int array;
  d_n_objects : int array;
  d_head : int array;  (** large tail -> head page; otherwise the page itself *)
  d_pointer_free : Bytes.t;  (** 1 = never scanned *)
  d_alloc : Bitset.t array;  (** shared with the [Page.Small] record *)
  d_mark : Bitset.t array;
  d_large : Page.large array;  (** shared with the [Page.Large_head] record *)
}

type t = {
  mem : Mem.t;
  seg : Segment.t;
  base : Addr.t;
  page_size : int;
  page_shift : int;
  n_pages : int;
  pages : Page.t array;
  desc : desc;
  mutable committed : int; (* pages [0, committed) are committed *)
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(* Row for a page that carries no objects. *)
let empty_bits = Bitset.create 0

let make_desc n_pages =
  {
    d_kind = Bytes.make n_pages (Char.chr Page.kind_uncommitted);
    d_object_bytes = Array.make n_pages 0;
    d_first_offset = Array.make n_pages 0;
    d_n_objects = Array.make n_pages 0;
    d_head = Array.init n_pages Fun.id;
    d_pointer_free = Bytes.make n_pages '\001';
    d_alloc = Array.make n_pages empty_bits;
    d_mark = Array.make n_pages empty_bits;
    d_large = Array.make n_pages Page.dummy_large;
  }

let sync_desc t i (p : Page.t) =
  let d = t.desc in
  Bytes.set d.d_kind i (Char.chr (Page.kind_code p));
  match p with
  | Page.Uncommitted | Page.Free ->
      d.d_object_bytes.(i) <- 0;
      d.d_first_offset.(i) <- 0;
      d.d_n_objects.(i) <- 0;
      d.d_head.(i) <- i;
      Bytes.set d.d_pointer_free i '\001';
      d.d_alloc.(i) <- empty_bits;
      d.d_mark.(i) <- empty_bits;
      d.d_large.(i) <- Page.dummy_large
  | Page.Small s ->
      d.d_object_bytes.(i) <- s.Page.object_bytes;
      d.d_first_offset.(i) <- s.Page.first_offset;
      d.d_n_objects.(i) <- s.Page.n_objects;
      d.d_head.(i) <- i;
      Bytes.set d.d_pointer_free i (if s.Page.pointer_free then '\001' else '\000');
      d.d_alloc.(i) <- s.Page.alloc;
      d.d_mark.(i) <- s.Page.mark;
      d.d_large.(i) <- Page.dummy_large
  | Page.Large_head l ->
      d.d_object_bytes.(i) <- l.Page.object_bytes;
      d.d_first_offset.(i) <- 0;
      d.d_n_objects.(i) <- 1;
      d.d_head.(i) <- i;
      Bytes.set d.d_pointer_free i (if l.Page.l_pointer_free then '\001' else '\000');
      d.d_alloc.(i) <- empty_bits;
      d.d_mark.(i) <- empty_bits;
      d.d_large.(i) <- l
  | Page.Large_tail { head_index } ->
      d.d_object_bytes.(i) <- 0;
      d.d_first_offset.(i) <- 0;
      d.d_n_objects.(i) <- 0;
      d.d_head.(i) <- head_index;
      Bytes.set d.d_pointer_free i '\001';
      d.d_alloc.(i) <- empty_bits;
      d.d_mark.(i) <- empty_bits;
      d.d_large.(i) <- Page.dummy_large

let create mem ~config ~base ~max_bytes =
  Config.validate config;
  let page_size = config.Config.page_size in
  if not (Addr.is_aligned base page_size) then
    invalid_arg "Heap.create: base must be page-aligned";
  let n_pages = (max_bytes + page_size - 1) / page_size in
  if n_pages < config.Config.initial_pages then
    invalid_arg "Heap.create: reserved region smaller than initial_pages";
  let seg =
    Mem.map mem ~name:"heap" ~kind:Segment.Heap ~base ~size:(n_pages * page_size)
  in
  let t =
    {
      mem;
      seg;
      base;
      page_size;
      page_shift = log2 page_size;
      n_pages;
      pages = Array.make n_pages Page.Uncommitted;
      desc = make_desc n_pages;
      committed = 0;
    }
  in
  for i = 0 to config.Config.initial_pages - 1 do
    Mem.commit mem ~addr:(Addr.add base (i * page_size)) ~bytes:page_size;
    t.pages.(i) <- Page.Free;
    sync_desc t i Page.Free;
    t.committed <- i + 1
  done;
  t

let segment t = t.seg
let mem t = t.mem
let base t = t.base
let limit_reserved t = Addr.add t.base (t.n_pages * t.page_size)
let page_size t = t.page_size
let n_pages t = t.n_pages
let committed_pages t = t.committed
let committed_bytes t = t.committed * t.page_size
let contains t a = Addr.in_range a ~lo:t.base ~hi:(limit_reserved t)
let page_index t a = Addr.diff a t.base asr t.page_shift
let page_addr t i = Addr.add t.base (i * t.page_size)
let page t i = t.pages.(i)

let set_page t i p =
  t.pages.(i) <- p;
  sync_desc t i p

let desc t = t.desc
let page_shift t = t.page_shift

let iter_committed t f =
  for i = 0 to t.committed - 1 do
    f i t.pages.(i)
  done

let find_free_page t ~ok =
  let rec go i =
    if i >= t.committed then None
    else
      match t.pages.(i) with
      | Page.Free when ok i -> Some i
      | Page.Free | Page.Uncommitted | Page.Small _ | Page.Large_head _ | Page.Large_tail _ ->
          go (i + 1)
  in
  go 0

let find_free_run t ~n ~ok =
  let rec scan start run i =
    if run = n then Some start
    else if i >= t.n_pages then None
    else begin
      let usable =
        (match t.pages.(i) with
        | Page.Free | Page.Uncommitted -> true
        | Page.Small _ | Page.Large_head _ | Page.Large_tail _ -> false)
        && ok i
      in
      if usable then scan (if run = 0 then i else start) (run + 1) (i + 1)
      else scan 0 0 (i + 1)
    end
  in
  scan 0 0 0

let uncommit_trailing_free t =
  let released = ref 0 in
  let continue_ = ref true in
  while !continue_ && t.committed > 0 do
    match t.pages.(t.committed - 1) with
    | Page.Free ->
        let i = t.committed - 1 in
        set_page t i Page.Uncommitted;
        t.committed <- i;
        Mem.uncommit t.mem ~addr:(page_addr t i) ~bytes:t.page_size;
        incr released
    | Page.Uncommitted | Page.Small _ | Page.Large_head _ | Page.Large_tail _ ->
        continue_ := false
  done;
  !released

(* Pages are charged to the simulated OS one at a time, and the
   watermark advances with each success, so an injected commit failure
   partway through a run leaves a coherent prefix: every page below the
   watermark is committed-[Free], everything above stays [Uncommitted],
   and the fault propagates to the allocation ladder. *)
let commit_through t i =
  if i >= t.n_pages then false
  else begin
    for j = t.committed to i do
      Mem.commit t.mem ~addr:(page_addr t j) ~bytes:t.page_size;
      set_page t j Page.Free;
      t.committed <- j + 1
    done;
    true
  end

let free_page_count t =
  let n = ref 0 in
  iter_committed t (fun _ p ->
      match p with
      | Page.Free -> incr n
      | Page.Uncommitted | Page.Small _ | Page.Large_head _ | Page.Large_tail _ -> ());
  !n

let mark_object t base =
  let index = page_index t base in
  match t.pages.(index) with
  | Page.Small s ->
      let rel = Addr.diff base (page_addr t index) - s.Page.first_offset in
      let obj = rel / s.Page.object_bytes in
      if Bitset.mem s.Page.mark obj then false
      else begin
        Bitset.add s.Page.mark obj;
        true
      end
  | Page.Large_head l ->
      if l.Page.l_marked then false
      else begin
        l.Page.l_marked <- true;
        true
      end
  | Page.Uncommitted | Page.Free | Page.Large_tail _ ->
      invalid_arg "Heap.mark_object: not an object base"

let object_span t base =
  let index = page_index t base in
  match t.pages.(index) with
  | Page.Small s -> (s.Page.object_bytes, s.Page.pointer_free)
  | Page.Large_head l -> (l.Page.object_bytes, l.Page.l_pointer_free)
  | Page.Uncommitted | Page.Free | Page.Large_tail _ ->
      invalid_arg "Heap.object_span: not an object base"

let live_bytes t =
  let total = ref 0 in
  iter_committed t (fun _ p ->
      match p with
      | Page.Small s -> total := !total + (Bitset.count s.alloc * s.object_bytes)
      | Page.Large_head l -> if l.l_allocated then total := !total + l.object_bytes
      | Page.Free | Page.Uncommitted | Page.Large_tail _ -> ());
  !total

let pp ppf t =
  Format.fprintf ppf "heap %a..%a (%d/%d pages committed, %d free)" Addr.pp t.base Addr.pp
    (limit_reserved t) t.committed t.n_pages (free_page_count t)
