(** The sweep phase.

    Walks every committed page in address order, reclaims unmarked
    objects (feeding the finalization queue), returns fully empty pages
    to the heap's free-page pool, and rebuilds the small-object free
    lists.  Because pages and objects are visited in increasing address
    order, the rebuilt free lists come out address-ordered — the cheap
    anti-fragmentation measure the paper's conclusion describes. *)

type result = {
  swept_objects : int;  (** objects reclaimed *)
  swept_bytes : int;
  live_objects : int;
  live_bytes : int;
  pages_released : int;  (** pages returned to the free pool *)
}

val sweep_page :
  ?quarantined:(int -> bool) -> Heap.t -> Free_list.t -> Finalize.t -> Stats.t -> int -> int
(** Sweep a single page using its current mark bits: frees unmarked
    objects (appending their slots to the free lists), clears the mark
    bits, feeds the finalization queue, and releases the page to the
    free pool when it empties (withdrawing its stale free-list entries).
    Returns the number of objects freed.  The building block of lazy
    sweeping.

    [quarantined] (default: nothing) marks decayed pages: their dead
    objects are still freed and finalized, but the slots never re-enter
    the free lists, so the allocator cannot hand out rotted memory. *)

val run :
  ?policy:(int -> Page.t -> [ `Sweep | `Keep_live ]) ->
  ?quarantined:(int -> bool) ->
  Heap.t ->
  Free_list.t ->
  Finalize.t ->
  Stats.t ->
  result
(** Consumes the mark bits set by {!Mark.run} (they are cleared for
    small pages as a side effect of being consulted; large-object mark
    flags are reset).

    [policy] (default: sweep everything) lets a generational collector
    exempt old pages: a [`Keep_live] page contributes its allocated
    objects to the live counts and is otherwise left untouched — its
    mark bits are not consulted, its free slots are NOT returned to the
    free lists (so fresh allocation stays on young pages). *)
