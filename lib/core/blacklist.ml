open Cgc_vm

type representation =
  | Exact
  | Hashed of int

type t = {
  refresh : bool;
  representation : representation;
  hash_buckets : int;  (* 0 = exact; avoids a variant match per [note] *)
  n_pages : int;
  mutable current : Bitset.t;
  mutable previous : Bitset.t;
  mutable ops : int;
  mutable overridden : int;
}

(* Fibonacci hashing spreads consecutive page numbers across buckets. *)
let[@inline] bucket_of t page =
  if t.hash_buckets = 0 then page else page * 2654435761 land 0x3FFFFFFF mod t.hash_buckets

(* Read-only geometry, so static analyses (the starvation predictor)
   can reproduce the page -> bucket mapping without a live blacklist. *)
type geometry = {
  g_representation : representation;
  g_n_pages : int;
  g_refresh : bool;
}

let geometry t =
  { g_representation = t.representation; g_n_pages = t.n_pages; g_refresh = t.refresh }

let bucket g page =
  match g.g_representation with
  | Exact -> page
  | Hashed buckets -> page * 2654435761 land 0x3FFFFFFF mod buckets

let create ?(representation = Exact) ~n_pages ~refresh () =
  let universe =
    match representation with
    | Exact -> n_pages
    | Hashed buckets ->
        if buckets < 1 then invalid_arg "Blacklist.create: need at least one bucket";
        buckets
  in
  {
    refresh;
    representation;
    hash_buckets = (match representation with Exact -> 0 | Hashed buckets -> buckets);
    n_pages;
    current = Bitset.create universe;
    previous = Bitset.create universe;
    ops = 0;
    overridden = 0;
  }

let representation t = t.representation

let note t page =
  t.ops <- t.ops + 1;
  Bitset.add t.current (bucket_of t page)

let is_black t page =
  let b = bucket_of t page in
  Bitset.mem t.current b || Bitset.mem t.previous b

let any_black_in t ~lo ~hi =
  match t.representation with
  | Exact -> Bitset.exists_in_range t.current ~lo ~hi || Bitset.exists_in_range t.previous ~lo ~hi
  | Hashed _ ->
      let rec go i = i < hi && (is_black t i || go (i + 1)) in
      go lo

let begin_cycle t =
  if t.refresh then begin
    t.ops <- t.ops + 1;
    let old = t.previous in
    t.previous <- t.current;
    Bitset.clear old;
    t.current <- old
  end

(* Cycle snapshots for the quorum-degradation path of the parallel
   marker: when a parallel trace is abandoned mid-flight, the serial
   rerun calls [begin_cycle] a second time in the same collection,
   which would age out the pre-trace [previous] set one cycle early
   (and [begin_cycle] clears the displaced bitset in place, so the
   snapshot must copy).  [save_cycle] before the parallel attempt and
   [restore_cycle] before the serial rerun make the abandoned attempt
   invisible to the aging protocol. *)
type snapshot = {
  s_current : Bitset.t;
  s_previous : Bitset.t;
  s_ops : int;
}

let save_cycle t =
  { s_current = Bitset.copy t.current; s_previous = Bitset.copy t.previous; s_ops = t.ops }

let restore_cycle t s =
  Bitset.clear t.current;
  Bitset.union_into ~dst:t.current s.s_current;
  Bitset.clear t.previous;
  Bitset.union_into ~dst:t.previous s.s_previous;
  t.ops <- s.s_ops

let count t =
  match t.representation with
  | Exact ->
      let union = Bitset.copy t.current in
      Bitset.union_into ~dst:union t.previous;
      Bitset.count union
  | Hashed _ ->
      let n = ref 0 in
      for page = 0 to t.n_pages - 1 do
        if is_black t page then incr n
      done;
      !n

let ops t = t.ops
let note_override t = t.overridden <- t.overridden + 1
let overridden t = t.overridden

(* Per-domain buffering for the parallel marker: each domain notes
   false references into a private plain bitset over the same universe
   (pre-bucketed with [bucket_index]), and the buffers are merged here
   at the end-of-mark barrier.  The merged image equals the serial
   one because [note] is idempotent on bits and the set of false
   references is schedule-independent. *)
let universe t = Bitset.length t.current

let bucket_index t page = bucket_of t page

let merge_noted t buffer ~notes =
  t.ops <- t.ops + notes;
  Bitset.union_into ~dst:t.current buffer

let iter f t =
  match t.representation with
  | Exact ->
      let union = Bitset.copy t.current in
      Bitset.union_into ~dst:union t.previous;
      Bitset.iter f union
  | Hashed _ ->
      for page = 0 to t.n_pages - 1 do
        if is_black t page then f page
      done

let pp ppf t =
  Format.fprintf ppf "blacklist: %d pages (%d ops%s)" (count t) t.ops
    (if t.overridden > 0 then Format.sprintf ", %d overridden" t.overridden else "")
