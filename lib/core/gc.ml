open Cgc_vm

type t = {
  mem : Mem.t;
  config : Config.t;
  sizes : Size_class.t;
  heap : Heap.t;
  blacklist : Blacklist.t;
  free_lists : Free_list.t;
  roots : Roots.t;
  finalize : Finalize.t;
  stats : Stats.t;
  marker : Mark.t;
  pending_sweep : Bitset.t; (* lazy mode: pages awaiting their sweep *)
  decayed_pages : Bitset.t;
      (* pages quarantined after their memory decayed under the
         allocator: every placement path excludes them, and sweeps never
         refund their slots *)
  mutable allocated_since_gc : int;
  mutable auto_collect : bool;
  mutable collect_hook : (unit -> unit) option;
      (* when set, the budget check in [maybe_collect] and the ladder's
         Collect rung invoke this instead of the conservative [collect]:
         a wrapper imposing its own liveness discipline (the precise
         view) substitutes its exact collection without the wrapped
         heap ever being marked conservatively behind its back *)
  mutable oom_hook : (int -> bool) option;
  mutable last_mark_outcome : Mark.Parallel.outcome option;
      (* how the most recent mark phase ran when [Config.mark_jobs > 1]:
         parallel, or serial with a typed fallback note (armed access
         plan, or marker-domain failures breaking quorum).  [None] until
         the first such phase — and always [None] with the default
         [mark_jobs = 1], whose serial path is untouched *)
  mutable domain_faults : Domain_fault.plan list;
      (* armed marker-domain failure plans, handed to every parallel
         mark phase until disarmed; [] for the healthy tracer *)
}

(* --- the allocation escalation ladder --- *)

type rung =
  | Collect
  | Drain
  | Trim
  | Grow
  | Relax_first_page
  | Relax_black
  | Oom_hook

let rung_to_string = function
  | Collect -> "collect"
  | Drain -> "drain"
  | Trim -> "trim"
  | Grow -> "grow"
  | Relax_first_page -> "relax-first-page"
  | Relax_black -> "relax-black"
  | Oom_hook -> "oom-hook"

type oom_diagnosis = {
  request_bytes : int;
  request_pages : int;
  small : bool;
  pointer_free : bool;
  pages_reserved : int;
  pages_committed : int;
  pages_free : int;
  pages_blacklisted : int;
  rungs : rung list;
  blacklist_starved : bool;
  os_refused : bool;
  pages_decayed : int;
  memory_decayed : bool;
}

exception Out_of_memory of oom_diagnosis

let pp_oom_diagnosis ppf d =
  Format.fprintf ppf
    "out of memory: %d bytes (%d page%s, %s): %d/%d pages committed, %d free, %d blacklisted; \
     rungs [%s]%s%s"
    d.request_bytes d.request_pages
    (if d.request_pages = 1 then "" else "s")
    (if d.small then if d.pointer_free then "small atomic" else "small" else "large")
    d.pages_committed d.pages_reserved d.pages_free d.pages_blacklisted
    (String.concat "; " (List.map rung_to_string d.rungs))
    (if d.blacklist_starved then "; blacklist-starved" else "")
    (if d.os_refused then "; os-refused" else "");
  if d.memory_decayed || d.pages_decayed > 0 then
    Format.fprintf ppf "; memory-decayed (%d page%s quarantined)" d.pages_decayed
      (if d.pages_decayed = 1 then "" else "s")

let oom_message d = Format.asprintf "%a" pp_oom_diagnosis d

(* Tiers of blacklist strictness the ladder may fall through (only with
   [Config.relax_blacklist]): the configured regime, then first-page-only
   cleanliness for large objects (observation 7's escape hatch), then
   placement on blacklisted pages outright, counted as overrides. *)
type tier =
  | Tier_strict
  | Tier_first_page
  | Tier_any

let create ?(config = Config.default) mem ~base ~max_bytes () =
  Config.validate config;
  let heap = Heap.create mem ~config ~base ~max_bytes in
  let blacklist =
    let representation =
      match config.Config.blacklist_buckets with
      | None -> Blacklist.Exact
      | Some buckets -> Blacklist.Hashed buckets
    in
    Blacklist.create ~representation ~n_pages:(Heap.n_pages heap)
      ~refresh:config.Config.blacklist_refresh ()
  in
  let sizes = Size_class.create config in
  let free_lists = Free_list.create ~n_classes:(Size_class.n_classes sizes) Free_list.Lifo in
  let stats = Stats.create () in
  let marker = Mark.create heap config blacklist stats in
  let t =
    {
      mem;
      config;
      sizes;
      heap;
      blacklist;
      free_lists;
      roots = Roots.create ();
      finalize = Finalize.create ();
      stats;
      marker;
      pending_sweep = Bitset.create (Heap.n_pages heap);
      decayed_pages = Bitset.create (Heap.n_pages heap);
      allocated_since_gc = 0;
      auto_collect = true;
      collect_hook = None;
      oom_hook = None;
      last_mark_outcome = None;
      domain_faults = [];
    }
  in
  t

let config t = t.config
let mem t = t.mem
let stats t = t.stats
let heap t = t.heap
let blacklist t = t.blacklist
let blacklisted_pages t = Blacklist.count t.blacklist
let live_bytes t = t.stats.Stats.live_bytes
let auto_collect t = t.auto_collect
let set_auto_collect t b = t.auto_collect <- b
let collect_hook t = t.collect_hook
let set_collect_hook t h = t.collect_hook <- h
let set_oom_hook t f = t.oom_hook <- f
let oom_hook t = t.oom_hook

(* --- roots --- *)

let add_static_root t ~lo ~hi ~label = Roots.add t.roots (Roots.Static_range { lo; hi; label })
let add_dynamic_roots t ~label f = Roots.add t.roots (Roots.Dynamic_ranges (label, f))
let add_register_roots t ~label f = Roots.add t.roots (Roots.Register_file (label, f))
let exclude_roots t ~lo ~hi ~label = Roots.exclude t.roots ~lo ~hi ~label
let clear_roots t = Roots.clear t.roots

(* --- collection --- *)

let quarantined t i = Bitset.mem t.decayed_pages i

let last_mark_outcome t = t.last_mark_outcome
let set_domain_faults t plans = t.domain_faults <- plans
let domain_faults t = t.domain_faults

(* The mark phase, honouring [Config.mark_jobs]: 1 keeps the serial
   fast path byte-for-byte (no outcome recorded); > 1 runs the parallel
   tracer, which itself falls back to serial — with a typed note —
   while a [Mem.Fault] access plan is armed or when injected
   marker-domain failures break [Config.mark_quorum] mid-trace. *)
let run_mark_phase t =
  let jobs = t.config.Config.mark_jobs in
  if jobs <= 1 then Mark.run t.marker t.roots ~mem:t.mem
  else
    t.last_mark_outcome <-
      Some (Mark.Parallel.run ~faults:t.domain_faults t.marker t.roots ~mem:t.mem ~jobs)

(* Lazy mode: sweep every page still awaiting its sweep. *)
let drain_pending_sweeps t =
  let freed = ref 0 in
  let quarantined = quarantined t in
  Bitset.iter
    (fun i ->
      freed := !freed + Sweep.sweep_page ~quarantined t.heap t.free_lists t.finalize t.stats i)
    t.pending_sweep;
  Bitset.clear t.pending_sweep;
  !freed

let collect t =
  let t0 = Sys.time () in
  t.stats.Stats.collections <- t.stats.Stats.collections + 1;
  if t.config.Config.lazy_sweep then begin
    (* leftovers from the previous cycle must go before marks are reset *)
    let (_ : int) = drain_pending_sweeps t in
    run_mark_phase t;
    let t1 = Sys.time () in
    Heap.iter_committed t.heap (fun i p ->
        match p with
        | Page.Small _ | Page.Large_head _ -> Bitset.add t.pending_sweep i
        | Page.Free | Page.Uncommitted | Page.Large_tail _ -> ());
    t.stats.Stats.mark_seconds <- t.stats.Stats.mark_seconds +. (t1 -. t0);
    t.stats.Stats.total_gc_seconds <- t.stats.Stats.total_gc_seconds +. (t1 -. t0)
  end
  else begin
    run_mark_phase t;
    let t1 = Sys.time () in
    let (_ : Sweep.result) =
      Sweep.run ~quarantined:(quarantined t) t.heap t.free_lists t.finalize t.stats
    in
    let t2 = Sys.time () in
    t.stats.Stats.mark_seconds <- t.stats.Stats.mark_seconds +. (t1 -. t0);
    t.stats.Stats.sweep_seconds <- t.stats.Stats.sweep_seconds +. (t2 -. t1);
    t.stats.Stats.total_gc_seconds <- t.stats.Stats.total_gc_seconds +. (t2 -. t0)
  end;
  t.allocated_since_gc <- 0

let trim t =
  Heap.uncommit_trailing_free t.heap

let startup_collect_if_configured t =
  if t.config.Config.full_gc_at_startup && t.stats.Stats.collections = 0 then collect t

let maybe_collect t =
  match t.collect_hook with
  | Some hook ->
      (* A wrapper owns the liveness discipline: the same allocation
         budget triggers collection, but through the wrapper's exact
         collect.  The hook resets the budget via
         [Internal.note_collected] only when its collection completes,
         so an aborted exact mark retries at the next allocation. *)
      let budget = Heap.committed_bytes t.heap / t.config.Config.space_divisor in
      if t.allocated_since_gc >= budget then hook ()
  | None ->
      if t.auto_collect then begin
        startup_collect_if_configured t;
        let budget = Heap.committed_bytes t.heap / t.config.Config.space_divisor in
        if t.allocated_since_gc >= budget then collect t
      end

(* --- page acquisition --- *)

(* Whether the blacklist permits giving page [i] to this allocation.
   [Tier_any] accepts any page; overrides are counted at placement. *)
let page_ok t ~pointer_free ~small ~tier i =
  if Bitset.mem t.decayed_pages i then false
  else if not t.config.Config.blacklisting then true
  else begin
    t.stats.Stats.blacklist_alloc_checks <- t.stats.Stats.blacklist_alloc_checks + 1;
    match tier with
    | Tier_any -> true
    | Tier_strict | Tier_first_page ->
        if Blacklist.is_black t.blacklist i then begin
          if small && pointer_free && t.config.Config.atomic_on_black_pages then true
          else begin
            t.stats.Stats.blacklist_rejected_pages <- t.stats.Stats.blacklist_rejected_pages + 1;
            false
          end
        end
        else true
  end

(* A relaxation tier placed the request on blacklisted page(s): record
   each override so the trade of space guarantee for availability stays
   observable. *)
let count_overrides t ~lo ~hi =
  for i = lo to hi - 1 do
    if Blacklist.is_black t.blacklist i then Blacklist.note_override t.blacklist
  done

let first_offset_for t page_index =
  match t.config.Config.avoid_trailing_zeros with
  | None -> 0
  | Some k ->
      let addr = Heap.page_addr t.heap page_index in
      if Addr.trailing_zeros addr >= k then t.config.Config.granule else 0

let carve_small_page t index ~granules ~pointer_free =
  let first_offset = first_offset_for t index in
  let object_bytes = Size_class.bytes_of_granules t.sizes granules in
  let n_objects = Size_class.objects_per_page t.sizes ~granules ~first_offset in
  Heap.set_page t.heap index
    (Page.make_small ~granules ~object_bytes ~pointer_free ~first_offset ~n_objects);
  let base = Addr.to_int (Heap.page_addr t.heap index) + first_offset in
  let slots = List.init n_objects (fun i -> base + (i * object_bytes)) in
  Free_list.prepend_block t.free_lists ~granules ~pointer_free slots

(* Lowest uncommitted page acceptable to [ok], committing through it. *)
let commit_fresh_page t ~ok =
  let rec go i =
    if i >= Heap.n_pages t.heap then None
    else
      match Heap.page t.heap i with
      | Page.Uncommitted when ok i ->
          if Heap.commit_through t.heap i then begin
            t.stats.Stats.heap_expansions <- t.stats.Stats.heap_expansions + 1;
            Some i
          end
          else None
      | Page.Uncommitted | Page.Free | Page.Small _ | Page.Large_head _ | Page.Large_tail _ ->
          go (i + 1)
  in
  go (Heap.committed_pages t.heap)

let try_acquire_small_page t ~granules ~pointer_free ~tier ~note_fault =
  (* before taking a brand-new page, finish any deferred sweeping: it
     may free whole pages *)
  if t.config.Config.lazy_sweep then ignore (drain_pending_sweeps t);
  let ok = page_ok t ~pointer_free ~small:true ~tier in
  let found =
    match Heap.find_free_page t.heap ~ok with
    | Some i -> Some i
    | None -> (
        match commit_fresh_page t ~ok with
        | index -> index
        | exception Mem.Commit_failed _ ->
            note_fault ();
            None)
  in
  match found with
  | None -> false
  | Some i ->
      if tier = Tier_any then count_overrides t ~lo:i ~hi:(i + 1);
      carve_small_page t i ~granules ~pointer_free;
      true

(* Ladder rung: grow the committed heap by a batch of pages, halving the
   batch each time the (simulated) OS refuses a commit — capped backoff
   from [max_expand_pages] down to the least that could serve the
   request.  Partial progress is kept: a fault mid-batch leaves the
   already-committed prefix as [Free] pages. *)
let grow_with_backoff t ~need_pages ~note_fault =
  let limit = Heap.n_pages t.heap in
  let rec attempt want =
    let committed = Heap.committed_pages t.heap in
    let room = limit - committed in
    if room <= 0 then false
    else begin
      let want = min want room in
      t.stats.Stats.ladder_expansions <- t.stats.Stats.ladder_expansions + 1;
      match Heap.commit_through t.heap (committed + want - 1) with
      | (_ : bool) -> true
      | exception Mem.Commit_failed _ ->
          note_fault ();
          let floor_pages = max 1 (min need_pages room) in
          if want <= floor_pages then false
          else begin
            t.stats.Stats.ladder_backoffs <- t.stats.Stats.ladder_backoffs + 1;
            attempt (max floor_pages (want / 2))
          end
    end
  in
  attempt (max need_pages t.config.Config.max_expand_pages)

(* Drive one request up the escalation ladder.  [attempt ~tier ~note_fault]
   makes one complete placement attempt at the given blacklist
   strictness; the ladder runs it first at [Tier_strict], then after
   each rung that changed something: collect, drain deferred sweeps,
   trim + retry, grow with capped backoff, blacklist relaxation
   (opt-in, [Config.relax_blacklist]), the registered out-of-memory
   hook, and finally a structured raise carrying the diagnosis. *)
let run_ladder t ~request_bytes ~request_pages ~small ~pointer_free ~attempt =
  let stats = t.stats in
  let rungs = ref [] in
  let faults = ref 0 in
  let note_fault () =
    incr faults;
    stats.Stats.commit_faults <- stats.Stats.commit_faults + 1
  in
  let rung r = rungs := r :: !rungs in
  let relaxable = t.config.Config.relax_blacklist && t.config.Config.blacklisting in
  let steps =
    [
      ( (fun () ->
          (t.auto_collect || Option.is_some t.collect_hook)
          && begin
               rung Collect;
               stats.Stats.ladder_collects <- stats.Stats.ladder_collects + 1;
               (match t.collect_hook with Some f -> f () | None -> collect t);
               true
             end),
        Tier_strict );
      ( (fun () ->
          t.config.Config.lazy_sweep
          && (not (Bitset.is_empty t.pending_sweep))
          && begin
               rung Drain;
               stats.Stats.ladder_drains <- stats.Stats.ladder_drains + 1;
               ignore (drain_pending_sweeps t);
               true
             end),
        Tier_strict );
      ( (fun () ->
          trim t > 0
          && begin
               rung Trim;
               stats.Stats.ladder_trims <- stats.Stats.ladder_trims + 1;
               true
             end),
        Tier_strict );
      ( (fun () ->
          rung Grow;
          grow_with_backoff t ~need_pages:request_pages ~note_fault),
        Tier_strict );
      ( (fun () ->
          relaxable && (not small)
          && t.config.Config.interior_pointers
          && t.config.Config.large_validity = Config.Anywhere
          && begin
               rung Relax_first_page;
               stats.Stats.ladder_relax_first_page <- stats.Stats.ladder_relax_first_page + 1;
               true
             end),
        Tier_first_page );
      ( (fun () ->
          relaxable
          && begin
               rung Relax_black;
               stats.Stats.ladder_relax_black <- stats.Stats.ladder_relax_black + 1;
               true
             end),
        Tier_any );
    ]
  in
  let try_steps () =
    let rec go = function
      | [] -> None
      | (prep, tier) :: rest -> (
          if not (prep ()) then go rest
          else
            match attempt ~tier ~note_fault with
            | Some a -> Some a
            | None -> go rest)
    in
    match attempt ~tier:Tier_strict ~note_fault with
    | Some a -> Some a
    | None -> go steps
  in
  let outcome =
    match try_steps () with
    | Some a -> Some a
    | None -> (
        match t.oom_hook with
        | Some hook ->
            rung Oom_hook;
            stats.Stats.ladder_oom_hooks <- stats.Stats.ladder_oom_hooks + 1;
            if hook request_bytes then try_steps () else None
        | None -> None)
  in
  match outcome with
  | Some a -> a
  | None ->
      let free = Heap.free_page_count t.heap in
      let room_ignoring_blacklist =
        if small then free > 0 || Heap.committed_pages t.heap < Heap.n_pages t.heap
        else
          Heap.find_free_run t.heap ~n:request_pages
            ~ok:(fun i -> not (Bitset.mem t.decayed_pages i))
          <> None
      in
      stats.Stats.oom_raised <- stats.Stats.oom_raised + 1;
      raise
        (Out_of_memory
           {
             request_bytes;
             request_pages;
             small;
             pointer_free;
             pages_reserved = Heap.n_pages t.heap;
             pages_committed = Heap.committed_pages t.heap;
             pages_free = free;
             pages_blacklisted = Blacklist.count t.blacklist;
             rungs = List.rev !rungs;
             blacklist_starved = t.config.Config.blacklisting && room_ignoring_blacklist;
             os_refused = !faults > 0;
             pages_decayed = Bitset.count t.decayed_pages;
             memory_decayed = false;
           })

(* Zeroing a fresh object is the collector's write into simulated
   memory: one guarded access per object, so a write-fault plan bites
   the allocator here.  @raise Mem.Write_fault when the plan trips. *)
let zero_object t base bytes =
  Mem.guard_write ~bytes t.mem base;
  Segment.zero_range (Heap.segment t.heap) base ~len:bytes

(* Record the allocation in the page's alloc bitmap.  [false] means the
   slot is stale — its page is no longer a small-object page, which can
   happen only when a fault plan decayed/retired the page while the slot
   sat on a free list (formerly an [assert false] sink); the caller
   discards the slot and retries. *)
let set_alloc_bit t base =
  let index = Heap.page_index t.heap base in
  match Heap.page t.heap index with
  | Page.Small s ->
      let rel = Addr.diff base (Heap.page_addr t.heap index) - s.Page.first_offset in
      let obj = rel / s.Page.object_bytes in
      Bitset.add s.Page.alloc obj;
      (* lazy mode allocates black: the page may still await its sweep,
         which would otherwise reclaim this unmarked newcomer *)
      if t.config.Config.lazy_sweep && Bitset.mem t.pending_sweep index then
        Bitset.add s.Page.mark obj;
      true
  | Page.Uncommitted | Page.Free | Page.Large_head _ | Page.Large_tail _ -> false

let mark_page_decayed t i =
  if not (Bitset.mem t.decayed_pages i) then begin
    Bitset.add t.decayed_pages i;
    t.stats.Stats.pages_decayed <- t.stats.Stats.pages_decayed + 1
  end

(* Withdraw a freshly allocated object whose memory decayed under the
   allocator: the object is deallocated, its small page's remaining free
   slots are pulled (nothing else may land on rotted memory), a large
   run's pages return to [Free], and the page(s) join [decayed_pages] —
   excluded by every placement path from here on. *)
let quarantine_object t base =
  let index = Heap.page_index t.heap base in
  (match Heap.page t.heap index with
  | Page.Small s ->
      let rel = Addr.diff base (Heap.page_addr t.heap index) - s.Page.first_offset in
      let obj = rel / s.Page.object_bytes in
      Bitset.remove s.Page.alloc obj;
      Bitset.remove s.Page.mark obj;
      Free_list.drop_in_page t.free_lists ~granules:s.Page.granules
        ~pointer_free:s.Page.pointer_free
        ~page_of:(fun a -> Heap.page_index t.heap (Addr.of_int a))
        ~page:index
  | Page.Large_head l ->
      for j = index to index + l.Page.n_pages - 1 do
        Heap.set_page t.heap j Page.Free;
        mark_page_decayed t j
      done
  | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ());
  mark_page_decayed t index

(* Lazy mode: sweep pending pages of this class until one yields. *)
let sweep_pending_for_class t ~granules ~pointer_free =
  let found = ref false in
  let continue_ = ref true in
  while !continue_ do
    let candidate = ref None in
    (try
       Bitset.iter
         (fun i ->
           match Heap.page t.heap i with
           | Page.Small s
             when s.Page.granules = granules && s.Page.pointer_free = pointer_free ->
               candidate := Some i;
               raise Exit
           | Page.Small _ | Page.Free | Page.Uncommitted | Page.Large_head _ | Page.Large_tail _
             ->
               ())
         t.pending_sweep
     with Exit -> ());
    match !candidate with
    | None -> continue_ := false
    | Some i ->
        Bitset.remove t.pending_sweep i;
        let (_ : int) =
          Sweep.sweep_page ~quarantined:(quarantined t) t.heap t.free_lists t.finalize t.stats i
        in
        if Free_list.length t.free_lists ~granules ~pointer_free > 0 then begin
          found := true;
          continue_ := false
        end
  done;
  !found

let rec allocate_small t ~granules ~pointer_free =
  let take () = Free_list.take t.free_lists ~granules ~pointer_free in
  let take_with_lazy () =
    match take () with
    | Some a -> Some a
    | None ->
        if
          t.config.Config.lazy_sweep
          && (not (Bitset.is_empty t.pending_sweep))
          && sweep_pending_for_class t ~granules ~pointer_free
        then take ()
        else None
  in
  let attempt ~tier ~note_fault =
    match take_with_lazy () with
    | Some a -> Some a
    | None ->
        if try_acquire_small_page t ~granules ~pointer_free ~tier ~note_fault then take ()
        else None
  in
  let base =
    run_ladder t
      ~request_bytes:(Size_class.bytes_of_granules t.sizes granules)
      ~request_pages:1 ~small:true ~pointer_free ~attempt
  in
  if set_alloc_bit t base then base
  else begin
    (* stale slot from a page retired under a decaying fault plan; the
       take above already removed it from its free list, so retrying
       makes progress *)
    t.stats.Stats.decay_retries <- t.stats.Stats.decay_retries + 1;
    allocate_small t ~granules ~pointer_free
  end

(* Blacklist acceptability for one page of a large object: when interior
   pointers are recognized everywhere (and the tier is strict), no page
   of the object may be black; otherwise only the first page matters;
   [Tier_any] accepts anything. *)
let large_page_ok t ~tier ~start i =
  if Bitset.mem t.decayed_pages i then false
  else if not t.config.Config.blacklisting then true
  else begin
    t.stats.Stats.blacklist_alloc_checks <- t.stats.Stats.blacklist_alloc_checks + 1;
    match tier with
    | Tier_any -> true
    | Tier_strict | Tier_first_page ->
        let must_be_clean =
          i = start
          || (tier = Tier_strict
             && t.config.Config.interior_pointers
             && t.config.Config.large_validity = Config.Anywhere)
        in
        if must_be_clean && Blacklist.is_black t.blacklist i then begin
          t.stats.Stats.blacklist_rejected_pages <- t.stats.Stats.blacklist_rejected_pages + 1;
          false
        end
        else true
  end

let allocate_large t ~bytes ~pointer_free =
  let page_size = Heap.page_size t.heap in
  let n = (bytes + page_size - 1) / page_size in
  (* find_free_run probes pages left to right, so the "start" of the
     run under consideration is not known to [ok]; conservatively treat
     every page of the run as needing cleanliness when interiors are
     recognized, and retry with a first-page-only constraint otherwise
     by scanning candidate starts explicitly. *)
  let whole_run_clean tier =
    tier = Tier_strict
    && t.config.Config.interior_pointers
    && t.config.Config.large_validity = Config.Anywhere
  in
  let find ~tier =
    if tier = Tier_any || whole_run_clean tier || not t.config.Config.blacklisting then
      Heap.find_free_run t.heap ~n ~ok:(fun i -> large_page_ok t ~tier ~start:i i)
    else begin
      (* only the first page must be clean: try successive starts *)
      let rec go start =
        if start + n > Heap.n_pages t.heap then None
        else begin
          let usable i =
            (not (Bitset.mem t.decayed_pages i))
            &&
            match Heap.page t.heap i with
            | Page.Free | Page.Uncommitted -> true
            | Page.Small _ | Page.Large_head _ | Page.Large_tail _ -> false
          in
          let rec run_ok i = i >= start + n || (usable i && run_ok (i + 1)) in
          if large_page_ok t ~tier ~start start && usable start && run_ok (start + 1) then
            Some start
          else go (start + 1)
        end
      in
      go 0
    end
  in
  let place ~tier ~note_fault =
    match find ~tier with
    | None -> None
    | Some start -> (
        match Heap.commit_through t.heap (start + n - 1) with
        | false -> None
        | true ->
            if start + n - 1 >= Heap.committed_pages t.heap - 1 then
              t.stats.Stats.heap_expansions <- t.stats.Stats.heap_expansions + 1;
            if tier <> Tier_strict then count_overrides t ~lo:start ~hi:(start + n);
            Heap.set_page t.heap start
              (Page.make_large ~n_pages:n ~object_bytes:bytes ~pointer_free);
            for j = start + 1 to start + n - 1 do
              Heap.set_page t.heap j (Page.Large_tail { head_index = start })
            done;
            Some (Heap.page_addr t.heap start)
        | exception Mem.Commit_failed _ ->
            (* the committed prefix of the run stays [Free]: coherent *)
            note_fault ();
            None)
  in
  let attempt ~tier ~note_fault =
    (* large placement needs an accurate page map *)
    if t.config.Config.lazy_sweep then ignore (drain_pending_sweeps t);
    place ~tier ~note_fault
  in
  run_ladder t ~request_bytes:bytes ~request_pages:n ~small:false ~pointer_free ~attempt

let allocate ?(pointer_free = false) ?finalizer t bytes =
  if bytes <= 0 then invalid_arg "Gc.allocate: non-positive size";
  maybe_collect t;
  let small = Size_class.is_small t.sizes bytes in
  let rounded =
    if small then Size_class.bytes_of_granules t.sizes (Size_class.granules_for t.sizes bytes)
    else bytes
  in
  let alloc_once () =
    if small then allocate_small t ~granules:(Size_class.granules_for t.sizes bytes) ~pointer_free
    else allocate_large t ~bytes ~pointer_free
  in
  (* Zeroing the new object is where a write-fault plan bites the
     allocator.  A transient refusal is retried in place; memory that
     decayed (or keeps refusing) quarantines the object's page(s) and
     sends the request back up the ladder, which now excludes them.  A
     ladder that then runs dry reports a [memory_decayed] diagnosis. *)
  let base =
    if not t.config.Config.zero_on_alloc then alloc_once ()
    else begin
      let rec obtain () =
        let base = alloc_once () in
        let rec zero transient_left =
          match zero_object t base rounded with
          | () -> true
          | exception Mem.Write_fault _ ->
              t.stats.Stats.write_faults <- t.stats.Stats.write_faults + 1;
              if Mem.range_decayed t.mem base ~bytes:rounded then false
              else if transient_left > 0 then zero (transient_left - 1)
              else false
        in
        if zero 2 then base
        else begin
          t.stats.Stats.decay_retries <- t.stats.Stats.decay_retries + 1;
          quarantine_object t base;
          match obtain () with
          | b -> b
          | exception Out_of_memory d ->
              raise (Out_of_memory { d with memory_decayed = true })
        end
      in
      obtain ()
    end
  in
  t.stats.Stats.bytes_allocated <- t.stats.Stats.bytes_allocated + rounded;
  t.stats.Stats.objects_allocated <- t.stats.Stats.objects_allocated + 1;
  t.allocated_since_gc <- t.allocated_since_gc + rounded;
  (match finalizer with
  | Some token -> Finalize.register t.finalize base ~token
  | None -> ());
  base

(* --- object access and exact queries --- *)

(* Field accessors go straight to the heap segment for speed, so they
   consult the fault boundary themselves; a faulted access surfaces to
   the mutator as the typed exception after being counted. *)
let get_field t base i =
  let a = Addr.add base (4 * i) in
  (match Mem.probe_read t.mem a with
  | None -> ()
  | Some reason ->
      t.stats.Stats.read_faults <- t.stats.Stats.read_faults + 1;
      raise (Mem.Read_fault { addr = a; value = Mem.poison_word; reason }));
  Segment.read_word (Heap.segment t.heap) a

let set_field t base i v =
  let a = Addr.add base (4 * i) in
  (match Mem.probe_write t.mem a with
  | None -> ()
  | Some reason ->
      t.stats.Stats.write_faults <- t.stats.Stats.write_faults + 1;
      raise (Mem.Write_fault { addr = a; bytes = 4; reason }));
  Segment.write_word (Heap.segment t.heap) a v

let exact_config = { Config.default with Config.interior_pointers = true; large_validity = Config.Anywhere }

let find_object t addr =
  match Mark.classify t.heap exact_config addr with
  | Mark.Valid { base; page = _ } -> Some base
  | Mark.False_in_heap _ | Mark.Outside -> None

let is_allocated t addr =
  match find_object t addr with
  | Some base -> Addr.equal base addr
  | None -> false

let object_size t addr =
  if not (is_allocated t addr) then None
  else begin
    let index = Heap.page_index t.heap addr in
    match Heap.page t.heap index with
    | Page.Small s -> Some s.Page.object_bytes
    | Page.Large_head l -> Some l.Page.object_bytes
    | Page.Uncommitted | Page.Free | Page.Large_tail _ -> None
  end

(* --- finalization --- *)

let add_finalizer t addr ~token = Finalize.register t.finalize addr ~token
let drain_finalized t = Finalize.drain t.finalize

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,%a@,%a@]" Heap.pp t.heap Blacklist.pp t.blacklist Stats.pp t.stats

module Internal = struct
  let free_lists t = t.free_lists
  let pending_sweep t = t.pending_sweep
  let decayed_pages t = t.decayed_pages
  let finalize t = t.finalize
  let roots t = t.roots
  let marker t = t.marker
  let run_sweep t = Sweep.run ~quarantined:(quarantined t) t.heap t.free_lists t.finalize t.stats
  let run_mark t = Mark.run t.marker t.roots ~mem:t.mem
  let note_collected t = t.allocated_since_gc <- 0
  let run_mark_reference t = Mark.Reference.run t.marker t.roots ~mem:t.mem

  let run_mark_parallel ?(faults = []) t ~jobs =
    let faults = if faults = [] then t.domain_faults else faults in
    let outcome = Mark.Parallel.run ~faults t.marker t.roots ~mem:t.mem ~jobs in
    t.last_mark_outcome <- Some outcome;
    outcome

  let is_marked t addr =
    match find_object t addr with
    | None -> false
    | Some base -> (
        let index = Heap.page_index t.heap base in
        match Heap.page t.heap index with
        | Page.Small s ->
            let rel = Addr.diff base (Heap.page_addr t.heap index) - s.Page.first_offset in
            Bitset.mem s.Page.mark (rel / s.Page.object_bytes)
        | Page.Large_head l -> l.Page.l_marked
        | Page.Uncommitted | Page.Free | Page.Large_tail _ -> false)
end
