(** Marker-domain failure plans — the tracer-side sibling of
    {!Cgc_vm.Mem.Fault}.

    Where a [Mem.Fault] plan makes the simulated {e memory} unreliable,
    a [Domain_fault] plan makes one {e marker domain} of the parallel
    tracer unreliable: it freezes, dies, spins uselessly or merely
    crawls.  Plans are consulted at the tracer's instrumented
    checkpoints (deque push/pop/steal and chunk-claim sites inside
    [Mark.Parallel]); the trigger counters make every trip
    deterministic, so the QCheck differentials can pin the recovered
    mark state bit-identical to the serial scanner.

    Failure taxonomy (DESIGN.md §9):
    - {!Stall}: the domain freezes at its [after_claims]-th work-claim
      attempt — an item {e boundary}, so its shard is consistent and
      recovery merges it (crash-after-publish).
    - {!Crash}: the domain dies abruptly at its [at_step]-th checkpoint
      of any kind.  A crash at a claim site is a boundary crash; a
      crash at a push site is mid-item, and recovery must discard the
      shard and rescan (crash-before-publish).
    - {!Livelock}: the domain claims its [on_claim]-th item and then
      "processes" it forever without completing — always mid-item,
      always the discard-and-rescan path.
    - {!Straggler}: the domain stays correct but spins [spin] relax
      loops at every checkpoint.  Its heartbeats keep advancing, so a
      generous {!Config.mark_watchdog_budget} tolerates it; a tight
      budget reclaims it like any suspect — and recovery is exact even
      for such a false positive, because the fence protocol stops the
      domain before touching its state. *)

type mode =
  | Stall of { after_claims : int }
      (** freeze just before the [after_claims+1]-th successful work
          claim (0 = freeze before doing anything) *)
  | Crash of { at_step : int }
      (** die at the [at_step]-th checkpoint, counting every
          push/pop/steal/claim site passed *)
  | Livelock of { on_claim : int }
      (** claim the [on_claim]-th item, then spin on it forever *)
  | Straggler of { spin : int }  (** [spin] cpu-relax loops per checkpoint *)

type plan
(** One failure bound to one victim domain. *)

val plan : domain:int -> mode -> plan
(** @raise Invalid_argument when [domain < 1] (the leader, domain 0,
    hosts the watchdog and never fails) or the mode's trigger is out of
    range. *)

val victim : plan -> int
val mode : plan -> mode
val mode_name : mode -> string
val name : plan -> string
val pp : Format.formatter -> plan -> unit
