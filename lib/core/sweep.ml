open Cgc_vm

type result = {
  swept_objects : int;
  swept_bytes : int;
  live_objects : int;
  live_bytes : int;
  pages_released : int;
}

let no_quarantine _ = false

let sweep_page ?(quarantined = no_quarantine) heap free_lists finalize stats index =
  let freed = ref 0 in
  (match Heap.page heap index with
  | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ()
  | Page.Small s ->
      let page_base = Addr.to_int (Heap.page_addr heap index) + s.Page.first_offset in
      (* A quarantined (decayed) page still has its dead objects freed
         and finalized, but their slots must not re-enter the free
         lists: nothing may be allocated from decayed memory again. *)
      let refund = not (quarantined index) in
      (* Word-level enumeration of allocated slots: whole empty words of
         the alloc bitmap are skipped instead of probed bit by bit. *)
      Bitset.iter_set s.Page.alloc (fun obj ->
          if not (Bitset.mem s.Page.mark obj) then begin
            Bitset.remove s.Page.alloc obj;
            incr freed;
            stats.Stats.objects_freed <- stats.Stats.objects_freed + 1;
            stats.Stats.bytes_freed <- stats.Stats.bytes_freed + s.Page.object_bytes;
            let a = page_base + (obj * s.Page.object_bytes) in
            Finalize.on_reclaimed finalize a;
            if refund then
              Free_list.add free_lists ~granules:s.Page.granules
                ~pointer_free:s.Page.pointer_free a
          end);
      Bitset.clear s.Page.mark;
      if Bitset.is_empty s.Page.alloc then begin
        Free_list.drop_in_page free_lists ~granules:s.Page.granules
          ~pointer_free:s.Page.pointer_free
          ~page_of:(fun a -> Heap.page_index heap (Addr.of_int a))
          ~page:index;
        Heap.set_page heap index Page.Free
      end
  | Page.Large_head l ->
      if l.Page.l_allocated && not l.Page.l_marked then begin
        l.Page.l_allocated <- false;
        incr freed;
        stats.Stats.objects_freed <- stats.Stats.objects_freed + 1;
        stats.Stats.bytes_freed <- stats.Stats.bytes_freed + l.Page.object_bytes;
        Finalize.on_reclaimed finalize (Addr.to_int (Heap.page_addr heap index));
        for j = index to index + l.Page.n_pages - 1 do
          Heap.set_page heap j Page.Free
        done
      end;
      l.Page.l_marked <- false);
  !freed

let default_policy _ _ = `Sweep

let run ?(policy = default_policy) ?(quarantined = no_quarantine) heap free_lists finalize stats =
  let page_size = Heap.page_size heap in
  let n_classes = page_size / 8 in
  (* Address-ordered accumulators, built in reverse and flipped at the
     end.  Index 0 is unused (class indexes start at 1). *)
  let acc_normal = Array.make (n_classes + 1) [] in
  let acc_atomic = Array.make (n_classes + 1) [] in
  let swept_objects = ref 0 in
  let swept_bytes = ref 0 in
  let live_objects = ref 0 in
  let live_bytes = ref 0 in
  let pages_released = ref 0 in
  let n_committed = Heap.committed_pages heap in
  for i = 0 to n_committed - 1 do
    match (Heap.page heap i, policy i (Heap.page heap i)) with
    | (Page.Uncommitted | Page.Free | Page.Large_tail _), _ -> ()
    | Page.Small s, `Keep_live ->
        let live_here = Bitset.count s.Page.alloc in
        live_objects := !live_objects + live_here;
        live_bytes := !live_bytes + (live_here * s.Page.object_bytes)
    | Page.Large_head l, `Keep_live ->
        if l.Page.l_allocated then begin
          incr live_objects;
          live_bytes := !live_bytes + l.Page.object_bytes
        end
    | Page.Small s, `Sweep ->
        let page_base = Addr.to_int (Heap.page_addr heap i) + s.Page.first_offset in
        let live_here = ref 0 in
        Bitset.iter_set s.Page.alloc (fun index ->
            if Bitset.mem s.Page.mark index then incr live_here
            else begin
              Bitset.remove s.Page.alloc index;
              incr swept_objects;
              swept_bytes := !swept_bytes + s.Page.object_bytes;
              Finalize.on_reclaimed finalize (page_base + (index * s.Page.object_bytes))
            end);
        Bitset.clear s.Page.mark;
        if !live_here = 0 then begin
          Heap.set_page heap i Page.Free;
          incr pages_released
        end
        else begin
          live_objects := !live_objects + !live_here;
          live_bytes := !live_bytes + (!live_here * s.Page.object_bytes);
          if not (quarantined i) then begin
            let acc = if s.Page.pointer_free then acc_atomic else acc_normal in
            Bitset.iter_clear s.Page.alloc (fun index ->
                acc.(s.Page.granules) <-
                  (page_base + (index * s.Page.object_bytes)) :: acc.(s.Page.granules))
          end
        end
    | Page.Large_head l, `Sweep ->
        if l.Page.l_allocated then begin
          if l.Page.l_marked then begin
            incr live_objects;
            live_bytes := !live_bytes + l.Page.object_bytes
          end
          else begin
            l.Page.l_allocated <- false;
            incr swept_objects;
            swept_bytes := !swept_bytes + l.Page.object_bytes;
            Finalize.on_reclaimed finalize (Addr.to_int (Heap.page_addr heap i));
            for j = i to i + l.Page.n_pages - 1 do
              Heap.set_page heap j Page.Free
            done;
            pages_released := !pages_released + l.Page.n_pages
          end
        end;
        l.Page.l_marked <- false
  done;
  for granules = 1 to n_classes do
    Free_list.set_class free_lists ~granules ~pointer_free:false (List.rev acc_normal.(granules));
    Free_list.set_class free_lists ~granules ~pointer_free:true (List.rev acc_atomic.(granules))
  done;
  stats.Stats.objects_freed <- stats.Stats.objects_freed + !swept_objects;
  stats.Stats.bytes_freed <- stats.Stats.bytes_freed + !swept_bytes;
  stats.Stats.live_objects <- !live_objects;
  stats.Stats.live_bytes <- !live_bytes;
  {
    swept_objects = !swept_objects;
    swept_bytes = !swept_bytes;
    live_objects = !live_objects;
    live_bytes = !live_bytes;
    pages_released = !pages_released;
  }
