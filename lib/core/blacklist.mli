(** The page blacklist (paper section 3, figure 2).

    During marking, a value that is not a valid object address but lies
    in the vicinity of the heap is recorded; its page is then avoided
    when fresh pages are handed to the allocator.  Following the paper,
    blacklisting is page-grained ("for reasons of performance and
    simplicity, we blacklist entire pages rather than individual
    addresses") and implemented as a bit array indexed by page number.

    Aging: with [refresh] on, entries live for two collection cycles —
    "blacklisted values that are no longer found by a later collection
    may be removed from the list".  A page is effectively black if it was
    recorded in the current or the previous cycle.

    Representation: the paper describes two variants — the exact bit
    array, and, for discontinuous heaps, "a hash table with one bit per
    entry.  If a false reference is seen to any of the pages with a
    given hash address, all of them are effectively blacklisted.  Since
    collisions can easily be made rare, this does not result in much
    lost precision."  Both are provided; the hashed variant trades a
    controllable amount of false blacklisting for O(buckets) memory. *)

type representation =
  | Exact  (** one bit per page *)
  | Hashed of int  (** one bit per hash bucket; the int is the bucket count *)

type t

val create : ?representation:representation -> n_pages:int -> refresh:bool -> unit -> t

val note : t -> int -> unit
(** Record a false reference into the given page (counted as one
    bookkeeping operation). *)

val is_black : t -> int -> bool

val any_black_in : t -> lo:int -> hi:int -> bool
(** Whether any page in [\[lo, hi)] is black — used when placing large
    objects that must not span blacklisted pages. *)

val begin_cycle : t -> unit
(** Start a new collection cycle (ages out stale entries when refresh is
    on; a no-op otherwise). *)

val count : t -> int
(** Number of currently black pages (for [Hashed], the number of pages
    whose bucket is black — including collision victims). *)

val representation : t -> representation

val ops : t -> int
(** Total bookkeeping operations performed (notes + cycle rotations),
    the quantity behind the paper's "less than 1%" overhead claim. *)

val note_override : t -> unit
(** Record that the allocator placed an object on a black page anyway —
    the ladder's relaxation tiers trading the space guarantee for
    availability.  Purely an audit counter; the page stays black. *)

val overridden : t -> int
(** Overrides recorded so far. *)

val universe : t -> int
(** Size of the underlying bit universe — [n_pages] for [Exact], the
    bucket count for [Hashed].  Parallel-marker domains size their
    private note buffers with this. *)

val bucket_index : t -> int -> int
(** The bit index {!note} would set for this page on the live
    structure (the page itself for [Exact], its Fibonacci-hash bucket
    for [Hashed]).  Pure; safe from any domain. *)

val merge_noted : t -> Cgc_vm.Bitset.t -> notes:int -> unit
(** [merge_noted t buffer ~notes] folds one domain's private note
    buffer (bits pre-mapped with {!bucket_index}, universe
    {!universe}) into the current cycle and credits [notes] bookkeeping
    operations — exactly what [notes] individual {!note} calls would
    have done, since noting is idempotent per bit.  Serial: call only
    after the marker domains have quiesced. *)

type snapshot
(** A deep copy of the aging state (current/previous cycle bitsets and
    the op counter) taken with {!save_cycle}. *)

val save_cycle : t -> snapshot
(** Snapshot the cycle state before a parallel trace that might be
    abandoned.  Copies the bitsets — {!begin_cycle} recycles the
    displaced one in place, so aliasing would corrupt the snapshot. *)

val restore_cycle : t -> snapshot -> unit
(** Roll the aging state back to a {!save_cycle} snapshot, erasing an
    abandoned trace's rotation and partial notes so the serial rerun's
    own {!begin_cycle} ages entries exactly once per collection. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over currently black pages in increasing order. *)

type geometry = {
  g_representation : representation;
  g_n_pages : int;
  g_refresh : bool;
}
(** Read-only shape of a blacklist: enough to reproduce the
    page-to-bucket mapping without mutating (or even holding) the live
    structure.  Consumed by the static starvation predictor. *)

val geometry : t -> geometry

val bucket : geometry -> int -> int
(** [bucket g page] is the bit index [note]/[is_black] would use for
    [page] under this geometry — the page itself for [Exact], the
    Fibonacci-hash bucket for [Hashed].  Pure. *)

val pp : Format.formatter -> t -> unit
