(** The collector-managed heap region.

    One contiguous region of the simulated address space is reserved for
    the heap at creation time; pages inside it are committed on demand in
    address order (like [sbrk]).  Because the region is fixed, "the
    vicinity of the heap" of the paper's figure 2 — addresses that
    "could conceivably become valid object addresses as a result of
    later allocation" — is exactly this region, which is what the
    blacklist covers. *)

open Cgc_vm

type t

(** {1 Flat page-descriptor table}

    A structure-of-arrays mirror of the page table, indexed by page
    number.  The mark-phase fast path ({!Mark}) classifies each scanned
    word against these packed rows — one byte load for the kind, int
    loads for the geometry, direct bitset references — instead of
    matching [Page.t] variants.  Rows are maintained by {!set_page}; the
    bitsets ([d_alloc]/[d_mark]) and the [d_large] record are physically
    the same objects held by the corresponding [Page.t] value, so
    per-object mutations (mark bits, alloc bits, [l_marked]) are
    coherent without any extra bookkeeping. *)
type desc = {
  d_kind : Bytes.t;  (** [Page.kind_code] per page *)
  d_object_bytes : int array;
  d_first_offset : int array;
  d_n_objects : int array;
  d_head : int array;  (** large tail -> head page; otherwise the page itself *)
  d_pointer_free : Bytes.t;  (** 1 = contents never scanned *)
  d_alloc : Bitset.t array;
  d_mark : Bitset.t array;
  d_large : Page.large array;
}

val desc : t -> desc
val page_shift : t -> int
(** [log2 (page_size t)]; [page_index t a = (a - base t) lsr page_shift t]. *)

val create : Mem.t -> config:Config.t -> base:Addr.t -> max_bytes:int -> t
(** Reserve [max_bytes] (rounded up to whole pages) at [base] and commit
    [config.initial_pages]. *)

val segment : t -> Segment.t

val mem : t -> Mem.t
(** The address space the heap lives in — the fault boundary scan loops
    and field accessors consult for injected read/write faults. *)

val base : t -> Addr.t
val limit_reserved : t -> Addr.t
(** One past the reserved region: any value in [\[base, limit_reserved)]
    is "in the vicinity of the heap". *)

val page_size : t -> int
val n_pages : t -> int
(** Total reserved pages. *)

val committed_pages : t -> int
val committed_bytes : t -> int

val contains : t -> Addr.t -> bool
(** Whether an address falls in the reserved region. *)

val page_index : t -> Addr.t -> int
(** Page number of an address inside the reserved region.  The caller
    must check {!contains} first. *)

val page_addr : t -> int -> Addr.t
(** Base address of page [i]. *)

val page : t -> int -> Page.t
val set_page : t -> int -> Page.t -> unit

val iter_committed : t -> (int -> Page.t -> unit) -> unit
(** Apply to every committed page in address order. *)

val find_free_page : t -> ok:(int -> bool) -> int option
(** Lowest committed [Free] page satisfying [ok], if any. *)

val find_free_run : t -> n:int -> ok:(int -> bool) -> int option
(** Lowest start of [n] consecutive pages, each committed-[Free] or
    uncommitted and satisfying [ok].  Runs may extend past the committed
    high-water mark (the pages are then committed by the caller). *)

val uncommit_trailing_free : t -> int
(** Lower the committed watermark past any trailing [Free] pages,
    handing them back to the (simulated) OS; returns how many.  Each
    released page is refunded to the OS commit quota
    ({!Cgc_vm.Mem.uncommit}), so trimming can unblock a quota-starved
    later commit. *)

val commit_through : t -> int -> bool
(** Ensure pages [0 .. i] are committed; newly committed pages become
    [Free].  Returns false if [i] exceeds the reserved region.  Each
    page is charged to the simulated OS ({!Cgc_vm.Mem.commit}) before it
    is committed, one page at a time, so an injected fault surfaces as
    {!Cgc_vm.Mem.Commit_failed} while the already-committed prefix stays
    coherent (the watermark only ever covers fully committed pages). *)

val free_page_count : t -> int
(** Committed pages currently [Free]. *)

val mark_object : t -> Addr.t -> bool
(** Set the mark bit of the allocated object based at the address;
    returns true when it was not already marked.  The address must be a
    valid object base. *)

val object_span : t -> Addr.t -> int * bool
(** [(size_bytes, pointer_free)] of the allocated object based at the
    address (which must be a valid object base). *)

val live_bytes : t -> int
(** Sum of allocated object bytes over all committed pages (a full scan;
    meant for statistics and tests, not hot paths). *)

val pp : Format.formatter -> t -> unit
