open Cgc_vm

type small = {
  granules : int;
  object_bytes : int;
  pointer_free : bool;
  first_offset : int;
  n_objects : int;
  alloc : Bitset.t;
  mark : Bitset.t;
}

type large = {
  n_pages : int;
  object_bytes : int;
  l_pointer_free : bool;
  mutable l_allocated : bool;
  mutable l_marked : bool;
}

type t =
  | Uncommitted
  | Free
  | Small of small
  | Large_head of large
  | Large_tail of { head_index : int }

(* Kind codes for the heap's flat descriptor table: the mark-phase fast
   path reads these from a byte array instead of matching the variant. *)
let kind_uncommitted = 0
let kind_free = 1
let kind_small = 2
let kind_large_head = 3
let kind_large_tail = 4

let kind_code = function
  | Uncommitted -> kind_uncommitted
  | Free -> kind_free
  | Small _ -> kind_small
  | Large_head _ -> kind_large_head
  | Large_tail _ -> kind_large_tail

(* A placeholder for descriptor rows of pages that carry no large
   object; shared, and never meaningfully mutated. *)
let dummy_large =
  { n_pages = 0; object_bytes = 0; l_pointer_free = true; l_allocated = false; l_marked = false }

let make_small ~granules ~object_bytes ~pointer_free ~first_offset ~n_objects =
  Small
    {
      granules;
      object_bytes;
      pointer_free;
      first_offset;
      n_objects;
      alloc = Bitset.create n_objects;
      mark = Bitset.create n_objects;
    }

let make_large ~n_pages ~object_bytes ~pointer_free =
  Large_head { n_pages; object_bytes; l_pointer_free = pointer_free; l_allocated = true; l_marked = false }

let is_free_or_uncommitted = function
  | Uncommitted | Free -> true
  | Small _ | Large_head _ | Large_tail _ -> false

let live_objects = function
  | Uncommitted | Free | Large_tail _ -> 0
  | Small s -> Bitset.count s.alloc
  | Large_head l -> if l.l_allocated then 1 else 0

let pp ppf = function
  | Uncommitted -> Format.pp_print_string ppf "uncommitted"
  | Free -> Format.pp_print_string ppf "free"
  | Small s ->
      Format.fprintf ppf "small(%dB%s %d/%d live)" s.object_bytes
        (if s.pointer_free then " atomic" else "")
        (Bitset.count s.alloc) s.n_objects
  | Large_head l ->
      Format.fprintf ppf "large(%dB over %d pages%s %s)" l.object_bytes l.n_pages
        (if l.l_pointer_free then " atomic" else "")
        (if l.l_allocated then "live" else "dead")
  | Large_tail { head_index } -> Format.fprintf ppf "large-tail(head=%d)" head_index
