(** A two-generation extension of the conservative collector.

    The paper cites generational conservative hybrids [5, 12] as routine
    and observes their Achilles' heel (section 3.1): "stray stack
    pointers can significantly lengthen the lifetime of some objects,
    thus placing a ceiling on the effectiveness of generational
    collection".  This module makes that measurable.

    Generations are page-grained: fresh pages are young; young pages
    whose objects survive [promote_after] consecutive minor collections
    are promoted wholesale.  Minor collections treat old objects as live
    and scan only the {e dirty} old pages (those written since the last
    minor collection — the write barrier is {!set_field}) plus the usual
    conservative roots; only young pages are swept, and fresh allocation
    is kept off old pages.

    The dirty-bit lifecycle: a barrier store into an old page sets its
    bit; promotion itself sets the bit too (the page's stores all
    happened while it was young, when no barrier was owed, so a freshly
    promoted page may hold uncovered young references); a minor
    collection rescans every dirty page and clears the bit
    {e unless the page still references young data} — such a page's bit
    is carried to the next minor (see {!carried_pages}), because the
    store that created the cross-generation edge happened once and the
    mutator owes no second barrier for it.  The bit drops when the young
    target dies or is promoted.  {!major} is an ordinary full
    collection; it empties the whole dirty set and resets the generation
    clock. *)

open Cgc_vm

type t

val create : ?promote_after:int -> Gc.t -> t
(** Wrap a collector (default [promote_after] 2).  The wrapped [Gc.t]
    should have automatic collection disabled: the generational policy
    decides when to collect.  Do not mix [Gc.collect] with minor
    collections except through {!major}.
    @raise Invalid_argument if the collector is configured with
    [lazy_sweep] (generational sweeping is eager by construction). *)

val gc : t -> Gc.t

val allocate : ?pointer_free:bool -> ?finalizer:string -> t -> int -> Addr.t
(** Allocate through the wrapped collector.  On [Gc.Out_of_memory] a
    {!major} collection runs and the request is retried once; if the
    retry also fails, the re-raised diagnosis records {e both} attempts
    (the first attempt's ladder rungs precede the retry's, and each
    boolean cause is the disjunction over the two attempts). *)

val set_field : t -> Addr.t -> int -> int -> unit
(** Pointer store with the write barrier: the object's page is marked
    dirty so the next minor collection rescans it.  The dirty bit is set
    only after the store succeeds: a store that raises
    [Mem.Write_fault] leaves the dirty set untouched. *)

val get_field : t -> Addr.t -> int -> int

val minor : t -> unit
(** Collect the young generation only. *)

val major : t -> unit
(** Full collection; also re-derives generation state: the dirty set is
    emptied and {e every} page returns to the young generation with a
    fresh age (survivors re-earn tenure).  Resetting the clock is what
    makes emptying the dirty set sound — immediately after a major
    there is no old generation whose young references could go
    uncovered.  The cumulative promotion counters are not touched. *)

val is_old : t -> Addr.t -> bool
(** Whether the object's page has been promoted. *)

val dirty_pages : t -> int list
(** Indexes of old pages currently marked dirty (awaiting a rescan), in
    increasing order.  Exposed for write-barrier tests and audits. *)

val carried_pages : t -> int list
(** The subset of {!dirty_pages} whose bits the collector itself
    installed, in increasing order: rescan carryovers (the page still
    referenced young data) and fresh promotions (the page's
    pre-promotion stores were never barriered).  Between two minors,
    every dirty page is either carried or the target of a barrier
    store since the last minor — the replay harness audits exactly
    that. *)

val reset_stats : t -> unit
(** Zero the cumulative counters reported by {!stats} without touching
    generation state, so a harness can measure one window (a replay, a
    post-warm-up phase) in isolation. *)

type stats = {
  minor_collections : int;
  major_collections : int;
  promoted_pages : int;  (** cumulative *)
  promoted_bytes : int;  (** live bytes at the moment of promotion, cumulative *)
  dirty_pages_scanned : int;  (** cumulative write-barrier rescans *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
