(** A two-generation extension of the conservative collector.

    The paper cites generational conservative hybrids [5, 12] as routine
    and observes their Achilles' heel (section 3.1): "stray stack
    pointers can significantly lengthen the lifetime of some objects,
    thus placing a ceiling on the effectiveness of generational
    collection".  This module makes that measurable.

    Generations are page-grained: fresh pages are young; young pages
    whose objects survive [promote_after] consecutive minor collections
    are promoted wholesale.  Minor collections treat old objects as live
    and scan only the {e dirty} old pages (those written since the last
    minor collection — the write barrier is {!set_field}) plus the usual
    conservative roots; only young pages are swept, and fresh allocation
    is kept off old pages.  {!major} is an ordinary full collection. *)

open Cgc_vm

type t

val create : ?promote_after:int -> Gc.t -> t
(** Wrap a collector (default [promote_after] 2).  The wrapped [Gc.t]
    should have automatic collection disabled: the generational policy
    decides when to collect.  Do not mix [Gc.collect] with minor
    collections except through {!major}.
    @raise Invalid_argument if the collector is configured with
    [lazy_sweep] (generational sweeping is eager by construction). *)

val gc : t -> Gc.t

val allocate : ?pointer_free:bool -> ?finalizer:string -> t -> int -> Addr.t

val set_field : t -> Addr.t -> int -> int -> unit
(** Pointer store with the write barrier: the object's page is marked
    dirty so the next minor collection rescans it.  The dirty bit is set
    only after the store succeeds: a store that raises
    [Mem.Write_fault] leaves the dirty set untouched. *)

val get_field : t -> Addr.t -> int -> int

val minor : t -> unit
(** Collect the young generation only. *)

val major : t -> unit
(** Full collection; also re-derives generation state (pages emptied by
    the sweep become young again). *)

val is_old : t -> Addr.t -> bool
(** Whether the object's page has been promoted. *)

val dirty_pages : t -> int list
(** Indexes of old pages currently marked dirty (awaiting a rescan), in
    increasing order.  Exposed for write-barrier tests and audits. *)

type stats = {
  minor_collections : int;
  major_collections : int;
  promoted_pages : int;  (** cumulative *)
  promoted_bytes : int;  (** live bytes at the moment of promotion, cumulative *)
  dirty_pages_scanned : int;  (** cumulative write-barrier rescans *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
