(** Internal consistency checking.

    [check gc] audits the collector's data structures — page-table
    shape, free-list integrity, generation-independent accounting — and
    returns a list of human-readable violations (empty when healthy).
    Tests run it after randomized operation sequences; it is cheap
    enough to call in anger when debugging the collector itself. *)

val check : Gc.t -> string list
(** Verified invariants:
    - committed/uncommitted page-table shape is well-formed;
    - every large object's tail pages point back at its head and lie
      within the object's extent;
    - small-page geometry fits inside the page;
    - the flat descriptor table ({!Heap.desc}) agrees row-by-row with
      the page variants, including physical identity of the shared
      bitsets and large-object records the scan fast path mutates;
    - mark bits only cover allocated slots (and a marked large head is
      an allocated one): no marker — serial or parallel — ever marks a
      free or quarantine-removed slot;
    - every free-list entry addresses an unallocated, correctly aligned
      slot of a page of the matching size class and kind, and no slot
      appears twice;
    - every registered finalizer watches a currently allocated object;
    - [Heap.live_bytes] is internally consistent with the page
      descriptors. *)

val check_after_collect : Gc.t -> string list
(** Everything {!check} does, plus post-collection-only invariants: all
    small-page mark bits are clear and the statistics' live counters
    agree with the heap. *)

val check_after_fault : Gc.t -> string list
(** Everything {!check} does, plus the crash-coherence invariants an
    injected fault must not break: no large object extends past the
    committed watermark (a run cut short mid-commit must have been
    abandoned as [Free] pages), every size-class page's allocated +
    free-listed slots fit its capacity (no half-initialized carve),
    pending-sweep bookkeeping only covers committed, sweepable pages,
    and no free-list slot lives on a quarantined (decayed) page. *)

val check_heap : Heap.t -> string list
(** The heap-level subset of {!check} — page-table shape, descriptor
    coherence and the mark ⊆ alloc audit — usable against any backend
    sharing the page substrate (e.g. the {!Explicit} baseline), without
    needing a [Gc.t]. *)

val check_precise_mark : Precise.t -> string list
(** Audit the precise (type-accurate) view against its wrapped heap:
    {!check_heap} (whose mark ⊆ alloc audit covers the exact marker's
    bits too), the layout table describes only allocated objects
    (sweeps must evict), no root provider names a freed or decayed
    address, and — the two-discipline inclusion — every object in the
    exact-reachable closure is covered by a shadow conservative mark of
    the same heap (precise marks ⊆ conservative marks).  Any armed
    fault plan is lifted for the duration and restored, and the shadow
    mark is fully unwound (mark bits, blacklist cycle, statistics), so
    the audit never perturbs the experiment it is auditing.  Safe to
    call at any point, including right after an aborted precise mark. *)

val check_parallel_mark : Gc.t -> string list
(** Post-parallel-mark audit, valid between a mark phase run with
    [Config.mark_jobs > 1] (or [Gc.Internal.run_mark_parallel]) and the
    next sweep or allocation.  Includes {!check_heap} (whose
    mark ⊆ alloc audit rules out mark bits on free or
    quarantine-removed slots), checks that no unallocated large object
    is flagged, and — when the tracer really ran parallel — that the
    per-domain [Stats.objects_marked] shards sum to the number of mark
    bits present in the heap: the exactly-once evidence of the
    shadow-table CAS protocol plus a lossless write-back.  Returns []
    when {!Gc.last_mark_outcome} is [None]. *)
