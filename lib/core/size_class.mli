(** Size classes for small objects.

    Like Boehm's collector, each heap page is dedicated to objects of a
    single size, measured in granules (machine words).  Objects carry no
    headers: an object's size is implied by its page, which is what makes
    the 4-byte cons cells of the paper's program T possible. *)

type t

val create : Config.t -> t

val granule : t -> int
(** Granule size in bytes. *)

val displacement_mask : t -> int array
(** The config's registered-displacement bitmask (see
    {!Config.displacement_mask}), precomputed at creation. *)

val displacement_ok : t -> int -> bool
(** O(1) test that a byte displacement into an object is a recognized
    interior-pointer offset (0, or a registered displacement). *)

val max_small_bytes : t -> int

val is_small : t -> int -> bool
(** Whether a request of that many bytes is served from size-class
    pages. *)

val granules_for : t -> int -> int
(** [granules_for t bytes] is the number of granules needed for a
    request ([>= 1]); the class index of the request. *)

val bytes_of_granules : t -> int -> int

val n_classes : t -> int
(** Number of small size classes; class indexes run [1 .. n_classes]. *)

val objects_per_page : t -> granules:int -> first_offset:int -> int
(** How many objects of the given class fit on a page whose first object
    starts at byte [first_offset]. *)
