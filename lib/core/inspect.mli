(** Heap introspection for humans.

    Summaries that the paper's authors evidently produced by hand while
    chasing references ("a quick examination of the blacklist in a
    statically linked SPARC executable suggests..."): per-size-class
    histograms, page-state maps, and blacklist overlays. *)

type class_row = {
  object_bytes : int;
  pointer_free : bool;
  pages : int;
  live_objects : int;
  free_slots : int;
  live_bytes : int;
}

type summary = {
  committed_pages : int;
  free_pages : int;
  blacklisted_pages : int;
  large_objects : int;
  large_bytes : int;
  classes : class_row list;  (** ascending object size; only classes in use *)
}

val summarize : Gc.t -> summary

val pp_summary : Format.formatter -> summary -> unit

val pp_page_map : Format.formatter -> Gc.t -> unit
(** One character per reserved page: [.] free or uncommitted, [s] small,
    [S] small and full, [A] atomic small, [L] large, [#] blacklisted
    (overrides), in address order, 64 pages per line. *)

(** {1 Provenance}

    Why is this object alive?  Re-exported from {!Trace}: a chain of
    root and heap-word steps from a scanned root down to the object. *)

type step = Trace.step =
  | Root of { label : string; at : Cgc_vm.Addr.t option; value : int }
  | Heap_word of { obj : Cgc_vm.Addr.t; at : Cgc_vm.Addr.t; value : int }

type chain = step list

val why_live : Gc.t -> Cgc_vm.Addr.t -> chain option
(** Breadth-first chain from some root to the object holding the given
    address, as the conservative marker sees it; [None] if nothing
    reaches it. *)

val retained_by : Gc.t -> Cgc_vm.Addr.t list -> (Cgc_vm.Addr.t * chain) list
(** Chains for every address in the list that is (conservatively)
    reachable. *)

val pp_step : Format.formatter -> step -> unit
val pp_chain : Format.formatter -> chain -> unit
