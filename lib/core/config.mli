(** Collector configuration.

    Every technique studied in the paper is an independent knob here, so
    experiments can ablate them: blacklisting (section 3), interior
    pointer recognition and scan alignment (section 2), treatment of
    pointers into the middle of large objects (section 3, observation 7),
    and the allocator's avoidance of addresses with many trailing zeros
    (section 2, figure 1). *)

type large_validity =
  | Anywhere
      (** any pointer into a large object retains it — the strict
          interior-pointer regime that makes > 100 KB objects hard to
          place (paper observation 7) *)
  | First_page_only
      (** only pointers into the object's first page are valid; the
          paper notes the blacklist problem "is never a problem if
          addresses that do not point to the first page of an object can
          be considered invalid" *)

type t = {
  page_size : int;  (** bytes per heap block; a power of two *)
  granule : int;  (** allocation granularity in bytes (the machine word, 4) *)
  interior_pointers : bool;
      (** recognize pointers to object interiors, "often required if the
          source language requires that array elements can be passed by
          reference" *)
  valid_displacements : int list;
      (** when [interior_pointers] is off, interior pointers at exactly
          these byte displacements are still recognized (the
          registered-displacement compromise used by language
          implementations whose objects carry a known header offset);
          offset 0 is always valid *)
  large_validity : large_validity;
      (** only consulted when [interior_pointers] is true *)
  alignment : int;
      (** granularity (1, 2 or 4 bytes) at which scanned memory is
          examined for pointers; 4 models compilers that guarantee
          alignment, below 4 models the unpleasant unaligned case *)
  blacklisting : bool;  (** the paper's central technique *)
  blacklist_buckets : int option;
      (** [None]: exact bit array indexed by page number.  [Some n]: the
          paper's hash-table variant with [n] one-bit buckets (pages
          colliding with a false reference's bucket are also treated as
          black) *)
  blacklist_refresh : bool;
      (** when true, "blacklisted values that are no longer found by a
          later collection may be removed from the list" (two-cycle
          aging); when false the blacklist only grows *)
  atomic_on_black_pages : bool;
      (** allow small pointer-free objects to be allocated on
          blacklisted pages, since "very little memory will ever be
          reachable from these objects" *)
  avoid_trailing_zeros : int option;
      (** [Some k]: never place an object at an address with [>= k]
          trailing zero bits (counters the figure-1 halfword hazard) *)
  zero_on_alloc : bool;
      (** clear objects on allocation so reused memory cannot leak stale
          pointers into the scan *)
  initial_pages : int;  (** pages committed up front *)
  min_expand_pages : int;  (** heap expansion increment *)
  max_expand_pages : int;
      (** starting increment for the allocation ladder's grow rung: when
          memory pressure defeats a [max_expand_pages]-sized expansion,
          the ladder backs off by halving down to [min_expand_pages]
          before giving up (capped-backoff expansion sizing) *)
  space_divisor : int;
      (** collect when bytes allocated since the last collection exceed
          committed-heap-bytes / [space_divisor]; smaller keeps the heap
          tighter at the price of more frequent collections *)
  lazy_sweep : bool;
      (** defer sweeping: a collection only marks; pages are swept
          on demand by the allocator (and any leftovers just before the
          next mark).  Shortens the stop-the-world pause at the price of
          delayed reclamation — [is_allocated] reports garbage as live
          until its page is swept, and [Stats.live_bytes] is refreshed
          only when a full sweep completes *)
  mark_stack_limit : int option;
      (** bound on the explicit mark stack; on overflow the marker drops
          entries and recovers by rescanning marked objects until a
          fixpoint (the classic Boehm-collector strategy).  [None] means
          unbounded. *)
  full_gc_at_startup : bool;
      (** "at least one (normally very fast) garbage collection occurring
          just after system start up before any allocation has taken
          place" — this is what lets blacklisting defeat static-data
          false references *)
  relax_blacklist : bool;
      (** permit the allocation ladder's blacklist-relaxation rungs: a
          request starved by black pages may fall back to first-page-only
          placement and finally to allocating on blacklisted pages
          outright (counted in {!Stats}).  Off by default so retention
          experiments keep the paper's strict regime — relaxation trades
          the blacklist's space guarantee for availability, Boehm's
          pragmatic answer to observation 7 *)
  mark_jobs : int;
      (** marker domains for the trace phase.  [1] (the default) runs
          the serial fast path untouched; [n > 1] runs
          {!Mark.Parallel} with [n] domains — a private Chase-Lev mark
          stack and header cache per domain, atomic shadow mark bits,
          per-domain blacklist buffers merged at the end barrier.  The
          resulting mark bitmap, blacklist and downgrade behavior are
          bit-identical to the serial marker.  While a [Mem.Fault]
          access plan is armed the collector falls back to serial
          marking (fault trip streams are stateful and cannot be raced)
          and records a typed note in [Gc.last_mark_outcome]. *)
  mark_watchdog_budget : int;
      (** no-progress budget for the parallel tracer's watchdog: how
          many leader observation rounds a non-idle marker domain may go
          without bumping its heartbeat before the leader declares it
          suspect and reclaims its work.  Each round the leader backs
          off with capped exponential spinning, so the budget is a count
          of observations, not a wall-clock bound.  Only consulted when
          [mark_jobs > 1]; irrelevant to the serial marker.  Larger
          values tolerate slower stragglers at the price of later
          detection.  Default 4096. *)
  mark_quorum : int;
      (** minimum number of live marker domains (leader included) for
          the parallel trace to keep going after failures.  When
          recoveries leave fewer than [mark_quorum] survivors, the trace
          abandons its partial state and degrades to the serial scanner,
          recording [Mark.Domain_failed] in [Gc.last_mark_outcome].
          Must satisfy [1 <= mark_quorum <= mark_jobs]; the leader
          (domain 0) hosts the watchdog and never fails, so a quorum of
          1 means "finish on the leader alone if it comes to that".
          Default 1. *)
}

val default : t
(** 4 KB pages, 4-byte granules, interior pointers on ([Anywhere]),
    aligned scanning, blacklisting on with refresh, atomic-on-black on,
    no trailing-zero avoidance, zeroing on, 64 initial pages, expansion
    increment 64 pages (backoff cap 256), space divisor 3, startup
    collection on, blacklist relaxation off, serial marking
    ([mark_jobs = 1]), watchdog budget 4096 observation rounds, quorum
    1 (degrade to serial only when every helper domain has failed). *)

val validate : t -> unit
(** @raise Invalid_argument on inconsistent settings. *)

val max_small_bytes : t -> int
(** Largest request served from size-classed pages ([page_size / 2]);
    larger requests become multi-page "large" objects. *)

val displacement_mask : t -> int array
(** Bitmask form of [valid_displacements] for the scan fast path: bit
    [d / granule] (62 bits per array word) is set iff byte displacement
    [d] is recognized.  Bit 0 is always set. *)

val displacement_in_mask : int array -> granule:int -> int -> bool
(** [displacement_in_mask mask ~granule d]: whether displacement [d] is
    recognized — equivalent to
    [d = 0 || List.mem d valid_displacements] on the mask's source
    config, in O(1). *)

val pp : Format.formatter -> t -> unit
