(** Conservative marking with blacklisting — the paper's figure 2.

    {v
    mark(p) {
      if p is not a valid object address
        if p is in the vicinity of the heap
          add p to blacklist
        return
      if p is marked return
      set mark bit for p
      for each field q in the object referenced by p
        mark(q)
    }
    v}

    The recursion is realised with an explicit mark stack; "fields" are
    every word of the object at the configured alignment, since the
    collector has no layout information.

    Two implementations share one marker state: the default fast path
    (flat page-descriptor rows from {!Heap.desc}, a one-entry header
    cache, closure-free endianness-specialized scan loops, displacement
    bitmasks) and the pre-optimization {!Reference} transcription, kept
    as the oracle the differential tests pin the fast path against. *)

open Cgc_vm

type classification =
  | Valid of { base : Addr.t; page : int }
      (** a reference to (possibly the interior of) a live object *)
  | False_in_heap of { page : int }
      (** not a valid object address, but within the reserved heap
          region — a candidate for blacklisting *)
  | Outside  (** cannot be or become a heap pointer *)

val classify : Heap.t -> Config.t -> int -> classification
(** Classify a scanned word value.  Pure with respect to mark state. *)

type t

val create : Heap.t -> Config.t -> Blacklist.t -> Stats.t -> t

val run : t -> Roots.t -> mem:Mem.t -> unit
(** Perform a full mark phase: clear all mark bits, open a blacklist
    cycle, scan every root source, and transitively mark through
    pointer-bearing heap objects.  Statistics are updated; the heap's
    mark bits are left set for the sweeper. *)

val mark_value : t -> int -> unit
(** Feed a single word value to the marker and drain the mark stack —
    exposed for tests and for the retention harness's injected false
    references. *)

(** The pre-optimization marker, running against the same state ([t]),
    page table, blacklist and statistics.  Produces bit-identical mark
    bitmaps, blacklists and counters to the fast path (modulo
    [Stats.header_cache_hits], which only the fast path touches); the
    benchmark suite reports the throughput ratio between the two. *)
module Reference : sig
  val run : t -> Roots.t -> mem:Mem.t -> unit
  val mark_value : t -> int -> unit
end

(** The parallel tracer: N marker domains, each with a private
    Chase-Lev mark stack ({!Cgc_vm.Ws_deque}) and a private one-entry
    header cache, pulling root tasks from a shared queue and stealing
    object work from each other.  Mark bits are won through atomic
    shadow tables ({!Cgc_vm.Bitset.Atomic.test_and_set}) written back
    serially after the domains join; blacklist notes are buffered
    per-domain (pre-bucketed) and merged at the end barrier; stats
    shards are summed so every counter keeps its serial meaning.
    Mark-stack overflow generalizes the serial page rescan to "any idle
    domain claims the next committed page".

    The result — mark bitmap, blacklist, downgrade behavior — is
    bit-identical to the serial marker for any [jobs], pinned by the
    [test_mark_diff] QCheck differential. *)
module Parallel : sig
  type fallback =
    | Serial_configured  (** [jobs <= 1]: the serial fast path, by design *)
    | Access_plan_armed
        (** a [Mem.Fault] access plan is armed; its trip streams are
            stateful (countdowns, seeded draws) and cannot be raced
            across domains, so the serial marker ran instead *)

  val fallback_to_string : fallback -> string

  type outcome = {
    jobs_requested : int;
    domains_used : int;  (** [jobs_requested] when parallel, 1 on fallback *)
    fallback : fallback option;  (** [None] iff the parallel tracer ran *)
    shards : Stats.t array;
        (** per-domain stats snapshots (empty on fallback); their
            trace-phase counters sum to the serial totals *)
  }

  val run : t -> Roots.t -> mem:Mem.t -> jobs:int -> outcome
  (** Like {!run}, with [jobs] marker domains.  [jobs <= 1] or an armed
      access plan runs the serial marker and says so in the outcome. *)
end
