(** Conservative marking with blacklisting — the paper's figure 2.

    {v
    mark(p) {
      if p is not a valid object address
        if p is in the vicinity of the heap
          add p to blacklist
        return
      if p is marked return
      set mark bit for p
      for each field q in the object referenced by p
        mark(q)
    }
    v}

    The recursion is realised with an explicit mark stack; "fields" are
    every word of the object at the configured alignment, since the
    collector has no layout information.

    Two implementations share one marker state: the default fast path
    (flat page-descriptor rows from {!Heap.desc}, a one-entry header
    cache, closure-free endianness-specialized scan loops, displacement
    bitmasks) and the pre-optimization {!Reference} transcription, kept
    as the oracle the differential tests pin the fast path against. *)

open Cgc_vm

type classification =
  | Valid of { base : Addr.t; page : int }
      (** a reference to (possibly the interior of) a live object *)
  | False_in_heap of { page : int }
      (** not a valid object address, but within the reserved heap
          region — a candidate for blacklisting *)
  | Outside  (** cannot be or become a heap pointer *)

val classify : Heap.t -> Config.t -> int -> classification
(** Classify a scanned word value.  Pure with respect to mark state. *)

type t

val create : Heap.t -> Config.t -> Blacklist.t -> Stats.t -> t

val run : t -> Roots.t -> mem:Mem.t -> unit
(** Perform a full mark phase: clear all mark bits, open a blacklist
    cycle, scan every root source, and transitively mark through
    pointer-bearing heap objects.  Statistics are updated; the heap's
    mark bits are left set for the sweeper. *)

val mark_value : t -> int -> unit
(** Feed a single word value to the marker and drain the mark stack —
    exposed for tests and for the retention harness's injected false
    references. *)

(** The pre-optimization marker, running against the same state ([t]),
    page table, blacklist and statistics.  Produces bit-identical mark
    bitmaps, blacklists and counters to the fast path (modulo
    [Stats.header_cache_hits], which only the fast path touches); the
    benchmark suite reports the throughput ratio between the two. *)
module Reference : sig
  val run : t -> Roots.t -> mem:Mem.t -> unit
  val mark_value : t -> int -> unit
end

(** The parallel tracer: N marker domains, each with a private
    Chase-Lev mark stack ({!Cgc_vm.Ws_deque}) and a private one-entry
    header cache, pulling root tasks from a shared queue and stealing
    object work from each other.  Mark bits are won through atomic
    shadow tables ({!Cgc_vm.Bitset.Atomic.test_and_set}) written back
    serially after the domains join; blacklist notes are buffered
    per-domain (pre-bucketed) and merged at the end barrier; stats
    shards are summed so every counter keeps its serial meaning.
    Mark-stack overflow generalizes the serial page rescan to "any idle
    domain claims the next committed page".

    The result — mark bitmap, blacklist, downgrade behavior — is
    bit-identical to the serial marker for any [jobs], pinned by the
    [test_mark_diff] QCheck differential.

    The tracer is self-healing against its own domains (DESIGN.md §9):
    {!Domain_fault} plans inject deterministic stalls, crashes,
    livelocks and stragglers at the deque push/pop/steal and
    chunk-claim checkpoints; the leader (domain 0, which never fails)
    watches per-domain heartbeat words while idle and, after
    [Config.mark_watchdog_budget] no-progress observations (with capped
    exponential backoff between observation rounds), fences the suspect
    and reclaims its work — merging it when the domain stopped at an
    item boundary, or rolling it back bit-by-bit and replaying its
    claim journal when it died mid-item.  Recovered marks, blacklists
    and [objects_marked] stay bit-identical to the serial scanner for
    any failure of k < jobs domains; if survivors drop below
    [Config.mark_quorum] the trace is abandoned and rerun serially with
    a typed {!Parallel.Domain_failed} note. *)
module Parallel : sig
  type fallback =
    | Serial_configured  (** [jobs <= 1]: the serial fast path, by design *)
    | Access_plan_armed
        (** a [Mem.Fault] access plan is armed; its trip streams are
            stateful (countdowns, seeded draws) and cannot be raced
            across domains, so the serial marker ran instead *)
    | Domain_failed
        (** marker-domain failures broke [Config.mark_quorum] mid-trace;
            the parallel attempt was abandoned (shadow marks and shards
            discarded, blacklist cycle rolled back) and the serial
            scanner reran the trace from scratch *)

  val fallback_to_string : fallback -> string

  type health = {
    heartbeats : int array;  (** final per-domain heartbeat words *)
    failed : int list;  (** ids of reclaimed domains, in reclaim order *)
    clean_recoveries : int;  (** reclaims that merged the victim's shard *)
    dirty_recoveries : int;  (** reclaims that rolled back and replayed *)
    survivors : int;  (** jobs minus reclaimed domains *)
    quorum : int;  (** the [Config.mark_quorum] in force *)
    tasks_issued : int;  (** root tasks fed to the shared claim queue *)
  }
  (** Watchdog/recovery audit trail of one parallel trace, consumed by
      [Verify.check_parallel_mark]'s heartbeat/quorum audit. *)

  type outcome = {
    jobs_requested : int;
    domains_used : int;
        (** [jobs_requested] when the parallel tracer ran (even if it
            was later abandoned), 1 on the up-front fallbacks *)
    fallback : fallback option;  (** [None] iff the parallel trace completed *)
    shards : Stats.t array;
        (** per-domain stats snapshots (empty on fallback); their
            trace-phase counters sum to the serial totals *)
    health : health option;  (** [None] iff the domains never spawned *)
  }

  val run : ?faults:Domain_fault.plan list -> t -> Roots.t -> mem:Mem.t -> jobs:int -> outcome
  (** Like {!run}, with [jobs] marker domains.  [jobs <= 1] or an armed
      access plan runs the serial marker and says so in the outcome.
      [faults] arms at most one {!Domain_fault} plan per victim domain
      (first plan per domain wins; plans naming [domain >= jobs] are
      ignored). *)
end
