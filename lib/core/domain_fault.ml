(* Marker-domain failure plans: the tracer-side sibling of [Mem.Fault].

   A plan describes one deterministic way a marker domain of the
   parallel tracer misbehaves.  Plans are pure data; [Mark.Parallel]
   consults them at its instrumented checkpoints (deque push/pop/steal
   and chunk claim) and turns a tripped plan into the corresponding
   failure, which the leader's watchdog then has to detect and recover
   from.  Determinism comes from the trigger counters: the same plan on
   the same trace trips at the same checkpoint every run.

   The leader (domain 0) hosts the watchdog and is immune by
   construction — [plan] rejects it — so every injected failure leaves
   at least one survivor and the quorum arithmetic is never vacuous. *)

type mode =
  | Stall of { after_claims : int }
  | Crash of { at_step : int }
  | Livelock of { on_claim : int }
  | Straggler of { spin : int }

type plan = { victim : int; mode : mode }

let plan ~domain mode =
  if domain < 1 then
    invalid_arg "Domain_fault.plan: the leader (domain 0) hosts the watchdog and cannot fail";
  (match mode with
  | Stall { after_claims } ->
      if after_claims < 0 then invalid_arg "Domain_fault.plan: after_claims must be >= 0"
  | Crash { at_step } ->
      if at_step < 1 then invalid_arg "Domain_fault.plan: at_step must be >= 1"
  | Livelock { on_claim } ->
      if on_claim < 1 then invalid_arg "Domain_fault.plan: on_claim must be >= 1"
  | Straggler { spin } ->
      if spin < 1 then invalid_arg "Domain_fault.plan: spin must be >= 1");
  { victim = domain; mode }

let victim p = p.victim
let mode p = p.mode

let mode_name = function
  | Stall _ -> "stall"
  | Crash _ -> "crash"
  | Livelock _ -> "livelock"
  | Straggler _ -> "straggler"

let name p =
  match p.mode with
  | Stall { after_claims } -> Printf.sprintf "stall-d%d-after-%d-claims" p.victim after_claims
  | Crash { at_step } -> Printf.sprintf "crash-d%d-at-step-%d" p.victim at_step
  | Livelock { on_claim } -> Printf.sprintf "livelock-d%d-on-claim-%d" p.victim on_claim
  | Straggler { spin } -> Printf.sprintf "straggler-d%d-spin-%d" p.victim spin

let pp ppf p = Format.pp_print_string ppf (name p)
