open Cgc_vm

let check_page_table heap issues =
  let n = Heap.n_pages heap in
  let committed = Heap.committed_pages heap in
  let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  for i = 0 to n - 1 do
    let p = Heap.page heap i in
    if i >= committed then begin
      match p with
      | Page.Uncommitted -> ()
      | Page.Free | Page.Small _ | Page.Large_head _ | Page.Large_tail _ ->
          add "page %d beyond the committed watermark is not Uncommitted" i
    end
    else begin
      match p with
      | Page.Uncommitted -> add "committed page %d is Uncommitted" i
      | Page.Free -> ()
      | Page.Small s ->
          let page_size = Heap.page_size heap in
          if s.Page.first_offset + (s.Page.n_objects * s.Page.object_bytes) > page_size then
            add "small page %d overflows its page (%d objects of %d bytes at offset %d)" i
              s.Page.n_objects s.Page.object_bytes s.Page.first_offset;
          if s.Page.object_bytes <> s.Page.granules * 4 then
            add "small page %d: object_bytes %d does not match %d granules" i s.Page.object_bytes
              s.Page.granules
      | Page.Large_head l ->
          if l.Page.n_pages < 1 then add "large head %d with n_pages %d" i l.Page.n_pages;
          if i + l.Page.n_pages > n then add "large object at %d exceeds the reserved region" i;
          for j = i + 1 to min (n - 1) (i + l.Page.n_pages - 1) do
            match Heap.page heap j with
            | Page.Large_tail { head_index } when head_index = i -> ()
            | _ -> add "page %d should be a tail of the large object at %d" j i
          done
      | Page.Large_tail { head_index } -> (
          match if head_index >= 0 && head_index < n then Heap.page heap head_index else Page.Free with
          | Page.Large_head l when head_index < i && i < head_index + l.Page.n_pages -> ()
          | _ -> add "tail page %d has a dangling head index %d" i head_index)
    end
  done

(* Audit the flat descriptor table against the page variants.  The scan
   fast path trusts these rows completely, so any drift (a page-state
   transition that bypassed [Heap.set_page]) is a marker correctness bug
   waiting to happen.  Bitsets and large records must be physically the
   objects held by the variant — value equality is not enough, since the
   fast path mutates them through the descriptor. *)
let check_descriptors heap issues =
  let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  let d = Heap.desc heap in
  for i = 0 to Heap.n_pages heap - 1 do
    let p = Heap.page heap i in
    let kind = Char.code (Bytes.get d.Heap.d_kind i) in
    if kind <> Page.kind_code p then
      add "descriptor kind %d for page %d disagrees with the page table's %d" kind i
        (Page.kind_code p);
    let pointer_free = Bytes.get d.Heap.d_pointer_free i <> '\000' in
    match p with
    | Page.Uncommitted | Page.Free ->
        if d.Heap.d_head.(i) <> i then add "descriptor head of empty page %d is %d" i d.Heap.d_head.(i);
        if not pointer_free then add "descriptor for empty page %d claims scannable contents" i
    | Page.Small s ->
        if d.Heap.d_object_bytes.(i) <> s.Page.object_bytes then
          add "descriptor object_bytes %d for small page %d (expected %d)" d.Heap.d_object_bytes.(i)
            i s.Page.object_bytes;
        if d.Heap.d_first_offset.(i) <> s.Page.first_offset then
          add "descriptor first_offset %d for small page %d (expected %d)" d.Heap.d_first_offset.(i)
            i s.Page.first_offset;
        if d.Heap.d_n_objects.(i) <> s.Page.n_objects then
          add "descriptor n_objects %d for small page %d (expected %d)" d.Heap.d_n_objects.(i) i
            s.Page.n_objects;
        if d.Heap.d_head.(i) <> i then add "descriptor head of small page %d is %d" i d.Heap.d_head.(i);
        if pointer_free <> s.Page.pointer_free then
          add "descriptor pointer_free flag for small page %d disagrees" i;
        if not (d.Heap.d_alloc.(i) == s.Page.alloc) then
          add "descriptor alloc bitset of small page %d is not the page's" i;
        if not (d.Heap.d_mark.(i) == s.Page.mark) then
          add "descriptor mark bitset of small page %d is not the page's" i;
        (* mark ⊆ alloc: the marker only marks allocated slots, sweeps
           clear both bits, and quarantine removes both — so a mark bit
           on a free (or quarantine-removed) slot means a marker wrote
           where it should not have.  The post-parallel-mark audits
           lean on this. *)
        Bitset.iter
          (fun obj ->
            if not (Bitset.mem s.Page.alloc obj) then
              add "mark bit on unallocated slot %d of small page %d" obj i)
          s.Page.mark
    | Page.Large_head l ->
        if l.Page.l_marked && not l.Page.l_allocated then
          add "mark flag set on the unallocated large object at %d" i;
        if d.Heap.d_object_bytes.(i) <> l.Page.object_bytes then
          add "descriptor object_bytes %d for large head %d (expected %d)" d.Heap.d_object_bytes.(i)
            i l.Page.object_bytes;
        if d.Heap.d_head.(i) <> i then add "descriptor head of large head %d is %d" i d.Heap.d_head.(i);
        if pointer_free <> l.Page.l_pointer_free then
          add "descriptor pointer_free flag for large head %d disagrees" i;
        if not (d.Heap.d_large.(i) == l) then
          add "descriptor large record of head %d is not the page's" i
    | Page.Large_tail { head_index } ->
        if d.Heap.d_head.(i) <> head_index then
          add "descriptor head %d of tail page %d (expected %d)" d.Heap.d_head.(i) i head_index
  done

(* Heap-level subset of [check], for backends that are not a [Gc.t]
   (the explicit allocator shares the page substrate but has its own
   free-list discipline). *)
let check_heap heap =
  let issues = ref [] in
  check_page_table heap issues;
  check_descriptors heap issues;
  List.rev !issues

let check_free_lists gc issues =
  let heap = Gc.heap gc in
  let free_lists = Gc.Internal.free_lists gc in
  let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  let seen = Hashtbl.create 256 in
  let n_classes = Heap.page_size heap / 8 in
  List.iter
    (fun pointer_free ->
      for granules = 1 to n_classes do
        let items = Free_list.to_list free_lists ~granules ~pointer_free in
        List.iter
          (fun a ->
            if Hashtbl.mem seen a then add "free slot 0x%08x appears twice" a;
            Hashtbl.replace seen a ();
            if not (Heap.contains heap a) then add "free slot 0x%08x outside the heap" a
            else begin
              let index = Heap.page_index heap a in
              match Heap.page heap index with
              | Page.Small s ->
                  if s.Page.granules <> granules then
                    add "free slot 0x%08x on a page of class %d, listed under %d" a s.Page.granules
                      granules;
                  if s.Page.pointer_free <> pointer_free then
                    add "free slot 0x%08x kind mismatch" a;
                  let rel = a - Cgc_vm.Addr.to_int (Heap.page_addr heap index) - s.Page.first_offset in
                  if rel < 0 || rel mod s.Page.object_bytes <> 0 then
                    add "free slot 0x%08x misaligned in its page" a
                  else if Bitset.mem s.Page.alloc (rel / s.Page.object_bytes) then
                    add "free slot 0x%08x is allocated" a
              | Page.Free | Page.Uncommitted | Page.Large_head _ | Page.Large_tail _ ->
                  add "free slot 0x%08x on a non-small page" a
            end)
          items
      done)
    [ false; true ]

let check_finalizers gc issues =
  let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  Finalize.iter_registered
    (fun a token ->
      if not (Gc.is_allocated gc a) then
        add "finalizer %S watches the unallocated address 0x%08x" token (Cgc_vm.Addr.to_int a))
    (Gc.Internal.finalize gc)

let check_live_accounting gc issues =
  let heap = Gc.heap gc in
  let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  let recomputed = Heap.live_bytes heap in
  if recomputed < 0 then add "negative live bytes %d" recomputed

let check gc =
  let issues = ref [] in
  check_page_table (Gc.heap gc) issues;
  check_descriptors (Gc.heap gc) issues;
  check_free_lists gc issues;
  check_finalizers gc issues;
  check_live_accounting gc issues;
  List.rev !issues

(* Invariants that must hold even when an injected fault aborted an
   allocation or expansion partway: the committed watermark never covers
   a partially materialized structure.  [check] already rules out
   non-[Uncommitted] pages past the watermark; here we audit the two
   shapes a fault can half-build — a large-object run cut short and a
   size-class page whose slot population went incoherent — plus deferred
   sweep bookkeeping pointing at pages that cannot be swept. *)
let check_after_fault gc =
  let issues = ref (List.rev (check gc)) in
  let heap = Gc.heap gc in
  let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  let committed = Heap.committed_pages heap in
  (* per-page free-slot population, from the free lists *)
  let free_slots = Array.make (Heap.n_pages heap) 0 in
  let free_lists = Gc.Internal.free_lists gc in
  let n_classes = Heap.page_size heap / 8 in
  List.iter
    (fun pointer_free ->
      for granules = 1 to n_classes do
        List.iter
          (fun a ->
            if Heap.contains heap a then begin
              let i = Heap.page_index heap a in
              free_slots.(i) <- free_slots.(i) + 1
            end)
          (Free_list.to_list free_lists ~granules ~pointer_free)
      done)
    [ false; true ];
  Heap.iter_committed heap (fun i p ->
      match p with
      | Page.Large_head l ->
          if i + l.Page.n_pages > committed then
            add "large object at %d (%d pages) extends past the committed watermark %d" i
              l.Page.n_pages committed
      | Page.Small s ->
          let allocated = Bitset.count s.Page.alloc in
          if allocated > s.Page.n_objects then
            add "small page %d has %d allocated slots of %d" i allocated s.Page.n_objects;
          if allocated + free_slots.(i) > s.Page.n_objects then
            add "small page %d is over-populated: %d allocated + %d free of %d slots" i allocated
              free_slots.(i) s.Page.n_objects
      | Page.Free | Page.Uncommitted | Page.Large_tail _ ->
          if free_slots.(i) > 0 then
            add "%d free slots recorded on non-small page %d" free_slots.(i) i);
  Bitset.iter
    (fun i ->
      if i >= committed then add "pending-sweep bit on page %d past the watermark %d" i committed
      else
        match Heap.page heap i with
        | Page.Small _ | Page.Large_head _ -> ()
        | Page.Free | Page.Uncommitted | Page.Large_tail _ ->
            add "pending-sweep bit on unsweepable page %d" i)
    (Gc.Internal.pending_sweep gc);
  (* decayed pages are quarantined: sweeps must never refund their
     slots, so the free lists must hold nothing on them *)
  Bitset.iter
    (fun i ->
      if free_slots.(i) > 0 then
        add "%d free slots recorded on quarantined (decayed) page %d" free_slots.(i) i)
    (Gc.Internal.decayed_pages gc);
  List.rev !issues

(* Post-parallel-mark audit, valid between a mark phase run with
   [Config.mark_jobs > 1] (or [Gc.Internal.run_mark_parallel]) and the
   next sweep or allocation:

   - structural mark sanity — every mark bit covers an allocated slot
     (so no bit landed on a free or quarantine-removed slot; decayed
     small pages may legitimately keep marks on their *surviving*
     objects), and a marked large head is an allocated one.  Free and
     uncommitted pages carry no mark storage at all, which
     [check_descriptors] cross-checks against the descriptor rows;

   - shard accounting — when the tracer really ran parallel, the
     per-domain [objects_marked] shards must sum to the number of mark
     bits actually present in the heap: the exactly-once guarantee of
     the shadow-table CAS protocol, and evidence the serial write-back
     lost nothing.  The guarantee survives marker-domain recovery:
     dirty-reclaimed shards were discarded and their bits re-won by
     survivors, clean-reclaimed ones merged intact;

   - heartbeat/quorum audit — the watchdog's trail must be internally
     consistent: one heartbeat word per spawned domain, enough total
     beats to cover every issued root task (each task claim bumps
     exactly one heartbeat), every reclaim classified as exactly one of
     clean/dirty, and the survivor count on the right side of the
     quorum for the recorded outcome (>= quorum when the trace
     completed, < quorum when it degraded to [Domain_failed]). *)
let check_parallel_mark gc =
  match Gc.last_mark_outcome gc with
  | None -> []
  | Some o ->
      let issues = ref (List.rev (check_heap (Gc.heap gc))) in
      let heap = Gc.heap gc in
      let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
      let marked = ref 0 in
      Heap.iter_committed heap (fun i p ->
          match p with
          | Page.Small s -> marked := !marked + Bitset.count s.Page.mark
          | Page.Large_head l ->
              if l.Page.l_marked then begin
                if not l.Page.l_allocated then
                  add "parallel mark flagged the unallocated large object at %d" i;
                incr marked
              end
          | Page.Free | Page.Uncommitted | Page.Large_tail _ -> ());
      (match o.Mark.Parallel.fallback with
      | Some _ -> () (* serial fallback: no shards to audit *)
      | None ->
          let sum =
            Array.fold_left
              (fun acc s -> acc + s.Stats.objects_marked)
              0 o.Mark.Parallel.shards
          in
          if sum <> !marked then
            add "parallel-mark shards claim %d marked objects, the heap holds %d" sum !marked);
      (match o.Mark.Parallel.health with
      | None -> ()
      | Some h ->
          let open Mark.Parallel in
          if Array.length h.heartbeats <> o.domains_used then
            add "watchdog tracked %d heartbeat words for %d domains" (Array.length h.heartbeats)
              o.domains_used;
          let beats = Array.fold_left ( + ) 0 h.heartbeats in
          if beats < h.tasks_issued then
            add "%d heartbeats cannot cover %d issued root tasks (every claim beats once)" beats
              h.tasks_issued;
          let reclaimed = List.length h.failed in
          if h.clean_recoveries + h.dirty_recoveries <> reclaimed then
            add "%d clean + %d dirty recoveries for %d reclaimed domains" h.clean_recoveries
              h.dirty_recoveries reclaimed;
          if h.survivors <> o.domains_used - reclaimed then
            add "%d survivors of %d domains disagree with %d reclaims" h.survivors o.domains_used
              reclaimed;
          if List.mem 0 h.failed then add "the leader (domain 0) was reclaimed; it hosts the watchdog";
          match o.fallback with
          | None ->
              if h.survivors < h.quorum then
                add "trace completed with %d survivors below quorum %d" h.survivors h.quorum
          | Some Domain_failed ->
              if h.survivors >= h.quorum then
                add "trace degraded with %d survivors at or above quorum %d" h.survivors h.quorum
          | Some (Serial_configured | Access_plan_armed) ->
              add "up-front serial fallback carries a watchdog trail");
      List.rev !issues

(* --- precise (type-accurate) mark audit --- *)

(* Local mark-state snapshot, so the inclusion check below can run a
   real conservative mark and leave no trace.  (Duplicated from the
   precise collector's internal abort path: the committed-page set
   cannot change while we hold the snapshot because nothing here
   allocates.) *)
let save_mark_state heap =
  let acc = ref [] in
  Heap.iter_committed heap (fun i p ->
      match p with
      | Page.Small s -> acc := (i, `Small (Bitset.copy s.Page.mark)) :: !acc
      | Page.Large_head l -> acc := (i, `Large l.Page.l_marked) :: !acc
      | Page.Uncommitted | Page.Free | Page.Large_tail _ -> ());
  !acc

let restore_mark_state heap snapshot =
  List.iter
    (fun (i, saved) ->
      match (Heap.page heap i, saved) with
      | Page.Small s, `Small bits ->
          Bitset.clear s.Page.mark;
          Bitset.union_into ~dst:s.Page.mark bits
      | Page.Large_head l, `Large m -> l.Page.l_marked <- m
      | _, _ -> ())
    snapshot

let check_precise_mark p =
  let gc = Precise.gc p in
  let heap = Gc.heap gc in
  let issues = ref (List.rev (check_heap heap)) in
  let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  (* the layout table may only describe allocated objects (the sweep
     evicts the rest) *)
  Precise.iter_descriptors p (fun base _desc ->
      if not (Gc.is_allocated gc base) then
        add "layout table retains a descriptor for the swept object at 0x%x" (Addr.to_int base));
  (* The rest of the audit reads the heap through the guarded accessors
     and runs a shadow conservative mark; lift any armed fault plan so
     the audit observes the heap instead of perturbing the experiment.
     With no plan armed nothing can fault (decayed regions just read
     back poison, which names no object). *)
  let mem = Gc.mem gc in
  let plan = Mem.fault_plan mem in
  Mem.set_fault_plan mem None;
  Fun.protect
    ~finally:(fun () -> Mem.set_fault_plan mem plan)
    (fun () ->
      (* the exact-reachable set: closure of the providers' roots
         through the registered pointer maps *)
      let word = (Gc.config gc).Config.granule in
      let reachable = Hashtbl.create 256 in
      let stack = ref [] in
      let visit a =
        if Addr.to_int a <> 0 && Gc.is_allocated gc a && not (Hashtbl.mem reachable a) then begin
          Hashtbl.replace reachable a ();
          stack := a :: !stack
        end
      in
      List.iter
        (fun a ->
          if Addr.to_int a <> 0 && not (Gc.is_allocated gc a) then
            add "root provider names the freed or decayed address 0x%x" (Addr.to_int a)
          else visit a)
        (Precise.roots_now p);
      let continue = ref true in
      while !continue do
        match !stack with
        | [] -> continue := false
        | base :: rest ->
            stack := rest;
            (match Precise.descriptor p base with
            | None -> () (* unknown layout: atomic *)
            | Some desc ->
                Array.iter
                  (fun off -> visit (Addr.of_int (Gc.get_field gc base (off / word))))
                  desc.Type_desc.pointer_offsets)
      done;
      (* inclusion: everything exactly reachable must be covered by a
         conservative mark of the same heap — the precise roots are
         registered as a conservative register file, so precise marks ⊆
         conservative marks by construction, and a violation means the
         disciplines disagree about the heap itself.  The shadow mark is
         fully unwound: mark bits, blacklist cycle and statistics are
         restored before returning. *)
      if Hashtbl.length reachable > 0 then begin
        let marks = save_mark_state heap in
        let stats_snapshot = Stats.copy (Gc.stats gc) in
        let blacklist_snapshot = Blacklist.save_cycle (Gc.blacklist gc) in
        Fun.protect
          ~finally:(fun () ->
            restore_mark_state heap marks;
            Blacklist.restore_cycle (Gc.blacklist gc) blacklist_snapshot;
            Stats.blit stats_snapshot ~into:(Gc.stats gc))
          (fun () ->
            Gc.Internal.run_mark gc;
            Hashtbl.iter
              (fun base () ->
                if not (Gc.Internal.is_marked gc base) then
                  add "exactly-reachable object 0x%x escapes the conservative mark"
                    (Addr.to_int base))
              reachable)
      end);
  List.rev !issues

let check_after_collect gc =
  let issues = ref (List.rev (check gc)) in
  let heap = Gc.heap gc in
  let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  Heap.iter_committed heap (fun i p ->
      match p with
      | Page.Small s ->
          if not (Bitset.is_empty s.Page.mark) then add "mark bits left set on page %d after sweep" i
      | Page.Large_head _ | Page.Free | Page.Uncommitted | Page.Large_tail _ -> ());
  let stats = Gc.stats gc in
  let recomputed = Heap.live_bytes heap in
  if stats.Stats.live_bytes <> recomputed then
    add "stats live_bytes %d disagrees with the heap's %d" stats.Stats.live_bytes recomputed;
  List.rev !issues
