(** Recorded-run scenarios: the repo's workloads with a trace recorder
    attached, analyzed and cross-validated against the live collector.

    Scenario names: [list-reverse-careless], [list-reverse-cleared],
    [grid-embedded], [grid-separate], [queue-no-clear], [queue-clear],
    [program-t-careless], [program-t-hygienic]. *)

type outcome = {
  o_name : string;
  o_analysis : Analysis.t;
  o_recorder : Recorder.t;
  o_gc : Cgc.Gc.t;
  o_note : string;
}

val names : string list
val run : string -> outcome option
val run_all : unit -> outcome list

val explain : outcome -> Format.formatter -> int -> unit
(** Report hook: prints the live collector's {!Cgc.Inspect.why_live}
    chain for a finding's example object, if it is still allocated. *)

(** {1 The starvation matrix}

    Tiny-heap scenarios steered into each of the predictor's
    classifications — safe, ladder-rescuable, blacklist-starved (exact,
    hashed, and large-contiguity flavours), decay-vulnerable under an
    armed {!Cgc_vm.Mem.Fault} plan, and plain exhaustion — each
    classified statically from the recorded trace and dynamically from
    the real collector's OOM diagnosis and ladder counters. *)

type matrix_entry = {
  m_name : string;
  m_predicted : Starvation.classification;
  m_measured : Starvation.classification;
  m_prediction : Starvation.prediction;
  m_oom : Cgc.Gc.oom_diagnosis option;
  m_ladder_rungs : int;
  m_note : string;
}

val matrix_names : string list
val starvation_matrix : unit -> matrix_entry list
val pp_matrix_entry : Format.formatter -> matrix_entry -> unit

val selfcheck : unit -> (string * bool) list * outcome list
(** The pinned acceptance matrix: per-scenario soundness and
    measurement tolerance, which lint rules must and must not fire
    where, fix suggestions verified both statically and by collector
    replay, and exact static-vs-measured agreement across the
    starvation matrix (including at least one memory-decay OOM). *)
