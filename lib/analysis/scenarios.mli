(** Recorded-run scenarios: the repo's workloads with a trace recorder
    attached, analyzed and cross-validated against the live collector.

    Scenario names: [list-reverse-careless], [list-reverse-cleared],
    [grid-embedded], [grid-separate], [queue-no-clear], [queue-clear],
    [program-t-careless], [program-t-hygienic]. *)

type outcome = {
  o_name : string;
  o_analysis : Analysis.t;
  o_recorder : Recorder.t;
  o_gc : Cgc.Gc.t;
  o_note : string;
}

val names : string list
val run : string -> outcome option
val run_all : unit -> outcome list

val explain : outcome -> Format.formatter -> int -> unit
(** Report hook: prints the live collector's {!Cgc.Inspect.why_live}
    chain for a finding's example object, if it is still allocated. *)

(** {1 The starvation matrix}

    Tiny-heap scenarios steered into each of the predictor's
    classifications — safe, ladder-rescuable, blacklist-starved (exact,
    hashed, and large-contiguity flavours), decay-vulnerable under an
    armed {!Cgc_vm.Mem.Fault} plan, and plain exhaustion — each
    classified statically from the recorded trace and dynamically from
    the real collector's OOM diagnosis and ladder counters. *)

type matrix_entry = {
  m_name : string;
  m_predicted : Starvation.classification;
  m_measured : Starvation.classification;
  m_prediction : Starvation.prediction;
  m_oom : Cgc.Gc.oom_diagnosis option;
  m_ladder_rungs : int;
  m_note : string;
}

val matrix_names : string list
val starvation_matrix : unit -> matrix_entry list
val pp_matrix_entry : Format.formatter -> matrix_entry -> unit

(** {1 The generational fix matrix}

    The four headline findings (R1/R2/R5) replayed original-vs-fixed
    through a fresh {!Cgc.Generational} collector, with the
    {!Promotion} model's predicted garbage cross-checked against the
    measured {!Replay.promoted_garbage} on both sides of each fix. *)

val gen_promote_after : int
(** Promotion threshold used across the matrix (and by the bench /
    [cgc_lab] front-ends, so their figures line up with selfcheck). *)

type gen_fix_entry = {
  g_scenario : string;
  g_rule : string;
  g_cmp : Replay.gen_comparison;
  g_predicted_before : Promotion.prediction;
  g_predicted_after : Promotion.prediction;
}

val gen_fix_targets : (string * string) list
(** (scenario, rule) pairs: the same four targets the conservative
    fix replay gates on. *)

val generational_fixes : ?outcomes:outcome list -> unit -> gen_fix_entry list
(** Run (or reuse) the scenarios and replay each target's suggested
    fix through the generational backend.  Targets whose scenario or
    suggestion is missing are dropped — {!selfcheck} asserts all four
    are present. *)

val pp_gen_fix_entry : Format.formatter -> gen_fix_entry -> unit

val selfcheck : unit -> (string * bool) list * outcome list
(** The pinned acceptance matrix: per-scenario soundness and
    measurement tolerance, which lint rules must and must not fire
    where, fix suggestions verified both statically and by collector
    replay (conservative {e and} generational, the latter with the
    promotion model's predictions checked against measured promoted
    garbage), and exact static-vs-measured agreement across the
    starvation matrix (including at least one memory-decay OOM). *)
