(** Recorded-run scenarios: the repo's workloads with a trace recorder
    attached, analyzed and cross-validated against the live collector.

    Scenario names: [list-reverse-careless], [list-reverse-cleared],
    [grid-embedded], [grid-separate], [queue-no-clear], [queue-clear],
    [program-t-careless], [program-t-hygienic]. *)

type outcome = {
  o_name : string;
  o_analysis : Analysis.t;
  o_recorder : Recorder.t;
  o_gc : Cgc.Gc.t;
  o_note : string;
}

val names : string list
val run : string -> outcome option
val run_all : unit -> outcome list

val explain : outcome -> Format.formatter -> int -> unit
(** Report hook: prints the live collector's {!Cgc.Inspect.why_live}
    chain for a finding's example object, if it is still allocated. *)

val selfcheck : unit -> (string * bool) list * outcome list
(** The pinned acceptance matrix: per-scenario soundness and
    measurement tolerance, plus which lint rules must and must not
    fire where. *)
