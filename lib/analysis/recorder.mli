(** Records a live mutator run into an {!Ir.program}.

    Attach to a machine before the workload runs; the recorder
    translates the machine's trace events into IR instructions,
    assigning dense object ids at allocation time and tagging every
    written value with the object it referred to at the moment of the
    write.  Collections are captured as [Gc_point] instructions
    carrying the collector's measured post-sweep statistics, which is
    what the analyzer cross-validates its predictions against. *)

open Cgc_vm

type t

val attach : Cgc_mutator.Machine.t -> globals:Segment.t -> t
(** Start recording.  [globals] is the static segment whose words the
    workload uses as global roots (the harness data segment / the
    platform static-data segment). *)

val finish : t -> Ir.program
(** Detach the tracer and return the recorded program.  Polls the
    collector once more first, so a trailing [Cgc.Gc.collect] with no
    subsequent machine activity still contributes its GC point. *)

val abort : t -> unit
(** Detach the tracer and drop all recorded state without building a
    program.  Use on failure paths: a recorder left attached would keep
    consuming the machine's events into a dead session, poisoning the
    next recording's IR. *)

val base_of_obj : t -> int -> Addr.t option
(** Concrete base address an object id was allocated at (addresses may
    have been reused since if the object died). *)

val dropped_events : t -> int
(** Events that could not be translated (e.g. heap access to an address
    the recorder never saw allocated).  0 on well-formed runs. *)
