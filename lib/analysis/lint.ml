(* Lint rules over the analyzer's snapshots, each keyed to the
   observation in Boehm, "Space Efficient Conservative Garbage
   Collection" (PLDI 1993) that motivates it.  A finding is advice to
   the mutator programmer: restructure the data, clear the link, use an
   atomic allocation — the same advice the paper gives. *)

module ISet = Liveness.ISet

type severity = Warning | Advice

type finding = {
  rule : string;
  severity : severity;
  title : string;
  paper_ref : string;
  detail : string;
  example_obj : int option;
      (** an object witnessing the finding, for provenance chains *)
}

(* R1: embedded-link structures.  Figures 3-4 of the paper show that a
   structure carrying its links inside the nodes (one misidentified
   pointer retains a whole row/region transitively) loses badly to the
   same structure built from separate cons cells (one false pointer
   retains one cell).  The trace signature: a large same-shape object
   group whose members point into the group (intra-degree >= ~1) and
   where a single member's reachable blast radius is a sizeable
   fraction of the heap.  Path sensitivity: the statistical signature
   must be confirmed by the access graphs — the group has to link to
   itself through actual fields, not merely correlate. *)
let r1_embedded_links (snaps : Apparent.gc_snapshot list) (shape : Shape.t) =
  let self = Shape.self_linked shape in
  let worst = ref None in
  List.iter
    (fun (s : Apparent.gc_snapshot) ->
      List.iter
        (fun (g : Apparent.structure_stats) ->
          if
            (not g.g_pointer_free)
            && g.g_count >= 32
            && g.g_mean_intra_degree >= 1.2
            && g.g_mean_blast >= 0.15
            && List.mem_assoc (g.g_bytes, g.g_pointer_free) self
          then
            match !worst with
            | Some ((w : Apparent.structure_stats), _) when w.g_mean_blast >= g.g_mean_blast ->
                ()
            | _ -> worst := Some (g, List.assoc (g.g_bytes, g.g_pointer_free) self))
        s.structures)
    snaps;
  match !worst with
  | None -> []
  | Some (g, link_fields) ->
      [
        {
          rule = "R1";
          severity = Warning;
          title = "embedded links amplify misidentified pointers";
          paper_ref = "Boehm'93 s.2, figs 3-4";
          detail =
            Printf.sprintf
              "%d objects of %d bytes form an embedded-link structure (%.2f \
               intra-group links/object through field%s %s); a single false \
               reference into one of them retains %.0f%% of the apparent \
               heap.  Consider linking through separately allocated cells so \
               one misidentified pointer costs one cell, not the structure."
              g.g_count g.g_bytes g.g_mean_intra_degree
              (if List.length link_fields = 1 then "" else "s")
              (String.concat "," (List.map string_of_int link_fields))
              (100. *. g.g_mean_blast);
          example_obj = None;
        };
      ]

(* R2: dead objects still feeding live data — the lazy-dequeue
   signature.  Section 4's advice: explicitly clear links in
   dequeue-style operations, since a stale head pointer anywhere keeps
   the entire chain of removed entries reachable through their
   uncleared next links. *)
let r2_uncleared_links (snaps : Apparent.gc_snapshot list) (shape : Shape.t) =
  let worst = ref 0 and example = ref None and where = ref 0 in
  List.iter
    (fun (s : Apparent.gc_snapshot) ->
      if s.dead_feeding_live > !worst then begin
        worst := s.dead_feeding_live;
        example := s.dead_feeding_example;
        where := s.ordinal
      end)
    snaps;
  (* path sensitivity: the access graph must exhibit the actual dead
     links, and they name the field to clear *)
  let sample_link =
    match Shape.worst shape with
    | Some g -> (
        match
          List.find_opt (fun (l : Shape.link) -> l.Shape.l_dst_live) g.Shape.sh_dead_links
        with
        | Some l -> Some l
        | None -> (
            match g.Shape.sh_dead_links with l :: _ -> Some l | [] -> None))
    | None -> None
  in
  match sample_link with
  | Some l when !worst >= 8 ->
      [
        {
          rule = "R2";
          severity = Warning;
          title = "dequeued objects retain live data through uncleared links";
          paper_ref = "Boehm'93 s.4 (clear links in dequeue operations)";
          detail =
            Printf.sprintf
              "at GC #%d, %d objects the mutator will never touch again still \
               reach live data through their pointer fields (e.g. dead #%d \
               field %d -> %s#%d); any spurious reference to one of them \
               drags the live structure along.  Clear the link field when \
               removing an entry."
              !where !worst l.Shape.l_src l.Shape.l_field
              (if l.Shape.l_dst_live then "live " else "dead ")
              l.Shape.l_dst;
          example_obj = (match !example with Some e -> Some e | None -> Some l.Shape.l_src);
        };
      ]
  | _ -> []

(* R3: pointer-free data allocated scanned.  The paper's collector
   provides atomic allocation exactly so character/number data is never
   scanned for pointers; a group of same-size scanned objects that
   never held a pointer over the whole trace should have been atomic. *)
let r3_should_be_atomic (objects : (int, Apparent.obj_state) Hashtbl.t) =
  let groups = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ (o : Apparent.obj_state) ->
      if not o.o_pointer_free then
        let count, bytes, held, ex =
          Option.value (Hashtbl.find_opt groups o.o_bytes) ~default:(0, 0, false, None)
        in
        Hashtbl.replace groups o.o_bytes
          ( count + 1,
            bytes + o.o_bytes,
            held || o.o_ever_held_ptr,
            (if ex = None then Some o.o_id else ex) ))
    objects;
  Hashtbl.fold
    (fun size (count, total, held, example) acc ->
      if (not held) && count >= 8 && total >= 4096 then
        {
          rule = "R3";
          severity = Advice;
          title = "pointer-free data allocated as scanned";
          paper_ref = "Boehm'93 s.3 (atomic allocation)";
          detail =
            Printf.sprintf
              "%d scanned objects of %d bytes (%d bytes total) never held a \
               pointer; allocate them atomic so their contents are neither \
               scanned nor a source of false references."
              count size total;
          example_obj = example;
        }
        :: acc
      else acc)
    groups []

(* R4: large objects under interior pointers.  Observation 7 in section
   3: large pointer-containing objects are both likely false-reference
   targets (any address in their extent pins them when interior
   pointers are honored) and, when scanned, large sources of false
   references.  The paper's mitigations: blacklisting and incremental
   allocation of large chunks. *)
let r4_large_scanned (p : Ir.program) =
  if not p.interior_pointers then []
  else
    let worst = ref None in
    Array.iter
      (fun instr ->
        match instr with
        | Ir.Alloc { obj; bytes; pointer_free; _ } when (not pointer_free) && bytes >= 65536
          -> (
            match !worst with
            | Some (_, b) when b >= bytes -> ()
            | _ -> worst := Some (obj, bytes))
        | _ -> ())
      p.code;
    match !worst with
    | None -> []
    | Some (id, bytes) ->
        [
          {
            rule = "R4";
            severity = Advice;
            title = "large scanned object with interior pointers honored";
            paper_ref = "Boehm'93 s.3, observation 7";
            detail =
              Printf.sprintf
                "a %d-byte scanned object is allocated while the collector \
                 honors interior pointers: any integer falling in its %d-page \
                 extent pins all of it, and scanning it may manufacture false \
                 references.  Allocate it atomic if pointer-free, or rely on \
                 blacklisting-style address filtering."
                bytes ((bytes + 4095) / 4096);
            example_obj = Some id;
          };
        ]

(* R5: frames never cleared before GC points.  Section 3.1: compilers
   and mutators that leave dead pointers in stack frames (uninitialized
   re-exposed slots, dead locals, padding) cause retention no collector
   improvement can undo; the measured fix is clearing frames or
   periodically zeroing the dead stack. *)
let r5_careless_stack (p : Ir.program) (snaps : Apparent.gc_snapshot list) =
  (* the rule is "frames are never cleared before a GC point": a
     program that clears frames on entry or periodically zeroes the
     dead stack is already applying the section 3.1 mitigation — its
     (reduced) residue is the paper's observed floor, not a lint *)
  let mitigated =
    Array.exists
      (function
        | Ir.Stack_clear _ | Ir.Frame_push { cleared = true; _ } -> true
        | _ -> false)
      p.code
  in
  if mitigated then []
  else begin
  let worst = ref None in
  List.iter
    (fun (s : Apparent.gc_snapshot) ->
      let n = ISet.cardinal s.apparent in
      if n > 0 then
        let frac = float_of_int s.stack_excess /. float_of_int n in
        if s.stack_excess >= 8 && frac >= 0.25 then
          match !worst with
          | Some (e, _, _) when e >= s.stack_excess -> ()
          | _ -> worst := Some (s.stack_excess, frac, s.ordinal))
    snaps;
  match !worst with
  | None -> []
  | Some (excess, frac, ord) ->
      [
        {
          rule = "R5";
          severity = Warning;
          title = "stack hygiene: dead frame contents retain objects";
          paper_ref = "Boehm'93 s.3.1 (clearing the stack)";
          detail =
            Printf.sprintf
              "at GC #%d, %d objects (%.0f%% of the apparent heap) are \
               retained only through stale stack slots, frame padding, spill \
               residue or dead registers.  Clear frames on entry or \
               periodically zero the dead portion of the stack."
              ord excess (100. *. frac);
          example_obj = None;
        };
      ]
  end

let run (p : Ir.program) (r : Apparent.result) (shape : Shape.t) =
  r1_embedded_links r.snapshots shape
  @ r2_uncleared_links r.snapshots shape
  @ r3_should_be_atomic r.objects
  @ r4_large_scanned p
  @ r5_careless_stack p r.snapshots

let pp_finding ppf (f : finding) =
  Fmt.pf ppf "@[<v2>[%s] %s: %s (%s)@,@[<hov>%a@]@]"
    f.rule
    (match f.severity with Warning -> "warning" | Advice -> "advice")
    f.title f.paper_ref Fmt.text f.detail
