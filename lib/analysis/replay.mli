(** Dynamic fix verification: re-enact a recorded program against a
    fresh real collector and measure what it retains.

    The replay rebuilds the recorded world at new addresses, rebasing
    every value tagged with an object id onto the object's replay
    address (interior offsets preserved) and passing untagged raws
    through verbatim, so false references and semantic edges survive
    relocation.  Reads are normalized to (object id, offset) tokens so
    two replays can be compared observationally despite different
    address layouts. *)

type token =
  | T_obj of int * int  (** live trace object id, interior offset *)
  | T_raw of int

type run = {
  rp_gc_points : int;
  rp_retained : int list;
      (** bytes of trace objects still allocated after each collection *)
  rp_total_retained : int;
  rp_reads : token list;
  rp_allocated : int;
  rp_skipped : int;
      (** heap accesses dropped because the collector had (correctly)
          freed the object — nonzero only for reads the recorded
          program also never depended on *)
}

type comparison = {
  cmp_before : run;
  cmp_after : run;
  cmp_retention_drop : int;
      (** original minus fixed total retention; positive = fix helps *)
  cmp_reads_equal : bool;
}

val run : Ir.program -> run

val compare_fix : Ir.program -> Fixes.edit list -> comparison
(** Replay the program and its edited form; the fix is dynamically
    verified when [cmp_reads_equal] and [cmp_retention_drop > 0]. *)

(** {1 Generational replay}

    The same trace re-enacted through a fresh {!Cgc.Generational}
    wrapper: every [Gc_point] runs a minor collection, and the recorded
    [Write_barrier] events are re-applied as [Generational.set_field]
    stores so the dirty bits evolve exactly as the original mutator
    drove them (plain [Heap_write]s stay unbarriered, as recorded). *)

type gen_audit = {
  ga_dirty : int list;  (** dirty pages entering this minor collection *)
  ga_carried : int list;
      (** the subset carried over from the previous minor's rescan *)
  ga_barriered : int list;
      (** old pages targeted by replayed barrier stores since the last
          minor — [ga_dirty] must equal [ga_carried ∪ ga_barriered] *)
}

type gen_run = {
  gr_run : run;
  gr_stats : Cgc.Generational.stats;
      (** counters over the trace window (before the closing major) *)
  gr_old : (int * int) list;
      (** (id, bytes) of trace objects on promoted pages at trace end *)
  gr_old_bytes : int;
  gr_major_reclaimed : int;
      (** bytes of [gr_old] a closing major collection takes back *)
  gr_audits : gen_audit list;  (** one per GC point, in trace order *)
}

val run_generational : ?promote_after:int -> Ir.program -> gen_run

val promoted_garbage : Ir.program -> gen_run -> int
(** Bytes of trace objects that ended on old pages despite being
    precisely dead at the last GC point — the §3.1 promoted garbage
    that no minor collection will ever reclaim.  Measured placement
    ([gr_old]) crossed with the analyzer's ground-truth liveness; a
    closing major alone undercounts, since garbage pinned by a stray
    root survives even a full collection. *)

val audit_exact : gen_audit -> bool
(** The dirty-bit lifecycle invariant: the dirty set entering a minor
    collection is exactly the union of the pages carried by the
    previous rescan and the old pages barrier stores hit since (holds
    whenever no emergency major intervened between the two minors). *)

type gen_comparison = {
  gcmp_before : gen_run;
  gcmp_after : gen_run;
  gcmp_retention_drop : int;
  gcmp_garbage_before : int;  (** {!promoted_garbage} of the original *)
  gcmp_garbage_after : int;  (** {!promoted_garbage} of the fixed form *)
  gcmp_garbage_drop : int;
  gcmp_reads_equal : bool;
}

val compare_fix_generational :
  ?promote_after:int -> Ir.program -> Fixes.edit list -> gen_comparison
(** Replay the program and its edited form through fresh generational
    collectors; beyond {!compare_fix}'s retention/observation checks,
    reports how much promoted garbage the fix prevents. *)

val pp_run : Format.formatter -> run -> unit
val pp_comparison : Format.formatter -> comparison -> unit
val pp_gen_run : Format.formatter -> gen_run -> unit
val pp_gen_comparison : Format.formatter -> gen_comparison -> unit
