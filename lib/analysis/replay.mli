(** Dynamic fix verification: re-enact a recorded program against a
    fresh real collector and measure what it retains.

    The replay rebuilds the recorded world at new addresses, rebasing
    every value tagged with an object id onto the object's replay
    address (interior offsets preserved) and passing untagged raws
    through verbatim, so false references and semantic edges survive
    relocation.  Reads are normalized to (object id, offset) tokens so
    two replays can be compared observationally despite different
    address layouts. *)

type token =
  | T_obj of int * int  (** live trace object id, interior offset *)
  | T_raw of int

type run = {
  rp_gc_points : int;
  rp_retained : int list;
      (** bytes of trace objects still allocated after each collection *)
  rp_total_retained : int;
  rp_reads : token list;
  rp_allocated : int;
  rp_skipped : int;
      (** heap accesses dropped because the collector had (correctly)
          freed the object — nonzero only for reads the recorded
          program also never depended on *)
}

type comparison = {
  cmp_before : run;
  cmp_after : run;
  cmp_retention_drop : int;
      (** original minus fixed total retention; positive = fix helps *)
  cmp_reads_equal : bool;
}

val run : Ir.program -> run

val compare_fix : Ir.program -> Fixes.edit list -> comparison
(** Replay the program and its edited form; the fix is dynamically
    verified when [cmp_reads_equal] and [cmp_retention_drop > 0]. *)

val pp_run : Format.formatter -> run -> unit
val pp_comparison : Format.formatter -> comparison -> unit
