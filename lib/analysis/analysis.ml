(* Facade: run the whole static pipeline over one IR program and
   validate the prediction against the collector's own measurements
   recorded in the trace. *)

module ISet = Liveness.ISet

type fix = {
  finding : Lint.finding;
  suggestion : Fixes.suggestion option;
  verdict : Fixes.verdict option;  (** static verification, when a suggestion exists *)
}

type t = {
  program : Ir.program;
  liveness : Liveness.t;
  retention : Apparent.result;
  shape : Shape.t;
  findings : Lint.finding list;
  fixes : fix list;  (** one entry per finding, in finding order *)
}

let run ?(suggest_fixes = true) program =
  let liveness = Liveness.analyze program in
  let retention = Apparent.analyze program liveness in
  let shape = Shape.build program retention in
  let findings = Lint.run program retention shape in
  let fixes =
    List.map
      (fun finding ->
        let suggestion =
          if suggest_fixes then Fixes.suggest program liveness retention shape finding else None
        in
        let verdict =
          Option.map (fun (s : Fixes.suggestion) -> Fixes.verify_static program s.Fixes.fx_edits)
            suggestion
        in
        { finding; suggestion; verdict })
      findings
  in
  { program; liveness; retention; shape; findings; fixes }

type validation = {
  sound : bool;  (** precise is a subset of apparent at every GC point *)
  n_gc_points : int;
  n_measured : int;  (** GC points carrying collector measurements *)
  worst_abs_err : int;
      (** max |apparent - measured| in objects over measured points *)
  worst_rel_err : float;
  within_tolerance : bool;
      (** every measured point within max(2, 10%) of the measurement *)
}

let validate t =
  let sound = ref true in
  let n_measured = ref 0 in
  let worst_abs = ref 0 in
  let worst_rel = ref 0. in
  let ok = ref true in
  List.iter
    (fun (s : Apparent.gc_snapshot) ->
      if not (ISet.subset s.precise s.apparent) then sound := false;
      match s.measured with
      | None -> ()
      | Some m ->
          incr n_measured;
          let predicted = ISet.cardinal s.apparent in
          let err = abs (predicted - m.Ir.m_live_objects) in
          let rel =
            if m.Ir.m_live_objects = 0 then if err = 0 then 0. else 1.
            else float_of_int err /. float_of_int m.Ir.m_live_objects
          in
          if err > !worst_abs then worst_abs := err;
          if rel > !worst_rel then worst_rel := rel;
          let tol = max 2 (m.Ir.m_live_objects / 10) in
          if err > tol then ok := false)
    t.retention.Apparent.snapshots;
  {
    sound = !sound;
    n_gc_points = List.length t.retention.Apparent.snapshots;
    n_measured = !n_measured;
    worst_abs_err = !worst_abs;
    worst_rel_err = !worst_rel;
    within_tolerance = !ok;
  }

let has_finding t rule = List.exists (fun (f : Lint.finding) -> f.Lint.rule = rule) t.findings

let max_apparent t =
  List.fold_left
    (fun acc (s : Apparent.gc_snapshot) -> max acc (ISet.cardinal s.apparent))
    0 t.retention.Apparent.snapshots

let max_excess t =
  List.fold_left
    (fun acc (s : Apparent.gc_snapshot) ->
      max acc (ISet.cardinal s.apparent - ISet.cardinal s.precise))
    0 t.retention.Apparent.snapshots

let fix_for t rule =
  List.find_opt (fun f -> f.finding.Lint.rule = rule && f.suggestion <> None) t.fixes

let verified_fixes t =
  List.filter
    (fun f -> match f.verdict with Some v -> Fixes.sound v | None -> false)
    t.fixes
