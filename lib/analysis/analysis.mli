(** The analyzer pipeline: liveness dataflow, conservative-marker
    model, lint rules — plus cross-validation of the prediction
    against the collector measurements embedded in the trace. *)

module ISet = Liveness.ISet

type fix = {
  finding : Lint.finding;
  suggestion : Fixes.suggestion option;
  verdict : Fixes.verdict option;
}

type t = {
  program : Ir.program;
  liveness : Liveness.t;
  retention : Apparent.result;
  shape : Shape.t;
  findings : Lint.finding list;
  fixes : fix list;  (** one entry per finding, in finding order *)
}

val run : ?suggest_fixes:bool -> Ir.program -> t
(** The full pipeline: liveness, marker model, access graphs, lint,
    and (unless [suggest_fixes] is [false]) a statically verified fix
    suggestion per finding that admits one. *)

type validation = {
  sound : bool;
  n_gc_points : int;
  n_measured : int;
  worst_abs_err : int;
  worst_rel_err : float;
  within_tolerance : bool;
}

val validate : t -> validation
(** [sound] checks the static over-approximation invariant (precise
    live set contained in the apparent one at every GC point);
    [within_tolerance] checks the apparent prediction against the
    collector's own post-sweep object counts, within max(2 objects,
    10%). *)

val has_finding : t -> string -> bool
(** Whether a lint rule (by id, e.g. ["R2"]) fired. *)

val max_apparent : t -> int
(** Largest predicted apparent-live object count over all GC points. *)

val max_excess : t -> int
(** Largest predicted (apparent - precise) object count — the
    retention gap the lint rules try to explain. *)

val fix_for : t -> string -> fix option
(** The first finding of the given rule that carries a suggestion. *)

val verified_fixes : t -> fix list
(** Fixes whose static verification passed ({!Fixes.sound}). *)
