(* The promoted-garbage model: a static prediction of the section 3.1
   ceiling, the way {!Model.predict} statically predicts retention.

   The generational collector promotes page-wise: a page whose objects
   survive [promote_after] consecutive minor collections is tenured.
   The object-grained approximation here is: an object that the
   conservative root scan would consider live ([Apparent.apparent]) at
   [promote_after] consecutive GC points is predicted promoted — it
   kept its page occupied through that many sweeps.  Among the
   predicted-promoted, those outside the precise set at the last GC
   point are predicted {e promoted garbage}: dead data no minor
   collection will ever reclaim.

   The model is object-grained where the collector is page-grained, so
   agreement with the measured figure is banded, not exact: a garbage
   object sharing a page with a live survivor promotes in reality even
   if its own apparent streak is short, and page rejuvenation can delay
   a predicted promotion.  {!agrees} allows the larger of one page or a
   quarter of the predicted figure. *)

module ISet = Liveness.ISet

type prediction = {
  pr_promote_after : int;
  pr_promoted : (int * int) list;  (** (id, bytes), predicted promoted *)
  pr_promoted_bytes : int;
  pr_garbage : (int * int) list;
      (** predicted-promoted objects precisely dead at the last GC point *)
  pr_garbage_bytes : int;
}

let predict ?(promote_after = 2) (p : Ir.program) =
  let liveness = Liveness.analyze p in
  let ap = Apparent.analyze p liveness in
  let snapshots = ap.Apparent.snapshots in
  (* consecutive-apparent streaks per object, in snapshot order *)
  let streak : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let promoted = ref ISet.empty in
  List.iter
    (fun (snap : Apparent.gc_snapshot) ->
      let seen = snap.Apparent.apparent in
      (* a snapshot where the object is not apparent resets its streak:
         its page was swept (or at least emptied of it) *)
      Hashtbl.iter (fun id _ -> if not (ISet.mem id seen) then Hashtbl.remove streak id)
      @@ Hashtbl.copy streak;
      ISet.iter
        (fun id ->
          let s = (match Hashtbl.find_opt streak id with Some s -> s | None -> 0) + 1 in
          Hashtbl.replace streak id s;
          if s >= promote_after then promoted := ISet.add id !promoted)
        seen)
    snapshots;
  let precise_end =
    match List.rev snapshots with
    | last :: _ -> last.Apparent.precise
    | [] -> ISet.empty
  in
  let bytes_of id =
    match Hashtbl.find_opt ap.Apparent.objects id with
    | Some o -> o.Apparent.o_bytes
    | None -> 0
  in
  let promoted_list =
    ISet.fold (fun id acc -> (id, bytes_of id) :: acc) !promoted [] |> List.rev
  in
  let garbage_list = List.filter (fun (id, _) -> not (ISet.mem id precise_end)) promoted_list in
  let sum l = List.fold_left (fun acc (_, b) -> acc + b) 0 l in
  {
    pr_promote_after = promote_after;
    pr_promoted = promoted_list;
    pr_promoted_bytes = sum promoted_list;
    pr_garbage = garbage_list;
    pr_garbage_bytes = sum garbage_list;
  }

(* One page of slack, or a quarter of the predicted figure — whichever
   is larger.  Page-grained promotion can over- or under-shoot the
   object-grained model by co-residents of a page, never by more than a
   page per boundary in the scenarios this gates. *)
let tolerance pr = max 4096 (pr.pr_garbage_bytes / 4)
let agrees pr ~measured = abs (measured - pr.pr_garbage_bytes) <= tolerance pr

let pp ppf pr =
  Format.fprintf ppf
    "promotion model (promote_after %d): %d object(s) / %dB predicted promoted, %dB of it garbage \
     (tolerance %dB)"
    pr.pr_promote_after (List.length pr.pr_promoted) pr.pr_promoted_bytes pr.pr_garbage_bytes
    (tolerance pr)
