(** The promoted-garbage model: a static prediction of the paper's
    section 3.1 ceiling on generational collection.

    An object that is apparently live (conservative root scan,
    {!Apparent}) at [promote_after] consecutive GC points is predicted
    promoted; predicted-promoted objects that are precisely dead at the
    last GC point are predicted {e promoted garbage} — dead data a
    minor collection can never reclaim.  The model is object-grained
    where the collector promotes page-wise, so agreement with the
    measured figure ({!Replay.promoted_garbage}) is banded: {!agrees}
    allows the larger of one page (4096B) or 25% of the prediction. *)

type prediction = {
  pr_promote_after : int;
  pr_promoted : (int * int) list;  (** (id, bytes), predicted promoted *)
  pr_promoted_bytes : int;
  pr_garbage : (int * int) list;
      (** predicted-promoted objects precisely dead at the last GC point *)
  pr_garbage_bytes : int;
}

val predict : ?promote_after:int -> Ir.program -> prediction
(** Default [promote_after] 2, matching {!Cgc.Generational.create}. *)

val tolerance : prediction -> int
val agrees : prediction -> measured:int -> bool
val pp : Format.formatter -> prediction -> unit
