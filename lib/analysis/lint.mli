(** Lint rules over an analysis result, each citing the observation in
    Boehm (PLDI 1993) it operationalizes:

    - [R1] embedded-link structures (figs 3-4): same-shape object
      groups that link through themselves, so one false reference
      retains a large blast radius.
    - [R2] dequeue without link clearing (s.4): dead objects whose
      uncleared pointer fields still reach live data.
    - [R3] pointer-free data allocated scanned (s.3): should be atomic.
    - [R4] large scanned objects while interior pointers are honored
      (s.3 observation 7).
    - [R5] careless stack hygiene (s.3.1): retention attributable to
      stale slots, dead locals, padding, spill residue, dead
      registers. *)

type severity = Warning | Advice

type finding = {
  rule : string;
  severity : severity;
  title : string;
  paper_ref : string;
  detail : string;
  example_obj : int option;
}

val run : Ir.program -> Apparent.result -> Shape.t -> finding list
(** R1 and R2 are path-sensitive: the statistical signatures must be
    confirmed by (and are enriched with field evidence from) the access
    graphs. *)

val pp_finding : Format.formatter -> finding -> unit
