(* Bounded access-graph domain over the marker model's snapshots.

   Following the access-graph idea of Khedker/Sanyal/Karkare (heap
   reference analysis) as adapted to a trace IR: instead of tracking
   every concrete object, each GC point is summarized by a graph whose
   nodes are bounded summaries — one node per (rounded size, atomicity,
   liveness role) — and whose edges are field-labelled summaries of the
   semantic pointer edges between the summarized populations.  The
   node set is bounded by the number of distinct size classes (times
   two roles), never by heap size, which is what makes the domain a
   domain and not a heap dump.

   On top of the summaries, each graph keeps the concrete *dead links*:
   pointer fields of precise-dead (but apparently-live) objects that
   lie on an access path ending in precise-live data.  These are the
   paper's section-4 uncleared links with their exact field
   coordinates — the path evidence that makes the R1/R2 lint rules
   path-sensitive, and the edit sites the fix generator clears. *)

module ISet = Liveness.ISet

type node = {
  sn_bytes : int;
  sn_pointer_free : bool;
  sn_dead : bool;  (** summarizes apparent-but-not-precise members *)
  sn_count : int;
}

type summary_edge = {
  se_src : node;
  se_dst : node;
  se_fields : int list;  (** distinct field labels, capped at {!max_field_labels} *)
  se_count : int;  (** concrete edges summarized *)
}

type link = {
  l_src : int;  (** precise-dead object id *)
  l_field : int;
  l_dst : int;
  l_dst_live : bool;  (** the link lands directly in precise-live data *)
}

type graph = {
  sh_ordinal : int;
  sh_at_instr : int;
  sh_nodes : node list;
  sh_edges : summary_edge list;
  sh_dead_links : link list;
  sh_barrier_stores : int;  (** write-barrier events before this point *)
}

type t = {
  graphs : graph list;
  max_dead_links : int;
}

let max_field_labels = 8

module KMap = Map.Make (struct
  type t = int * bool * bool

  let compare = compare
end)

let build (p : Ir.program) (r : Apparent.result) =
  let obj id = Hashtbl.find_opt r.Apparent.objects id in
  (* running count of barrier events, indexed by instruction *)
  let barrier_counts =
    let c = ref 0 in
    Array.map
      (fun i ->
        (match i with Ir.Write_barrier _ -> incr c | _ -> ());
        !c)
      p.Ir.code
  in
  let build_graph (s : Apparent.gc_snapshot) =
    let dead = ISet.diff s.Apparent.apparent s.Apparent.precise in
    let key id =
      match obj id with
      | Some o -> Some (o.Apparent.o_bytes, o.Apparent.o_pointer_free, ISet.mem id dead)
      | None -> None
    in
    (* nodes: one summary per (size, atomicity, role) *)
    let counts = ref KMap.empty in
    ISet.iter
      (fun id ->
        match key id with
        | Some k -> counts := KMap.update k (fun c -> Some (Option.value c ~default:0 + 1)) !counts
        | None -> ())
      s.Apparent.apparent;
    let node_of (bytes, pf, d) =
      {
        sn_bytes = bytes;
        sn_pointer_free = pf;
        sn_dead = d;
        sn_count = Option.value (KMap.find_opt (bytes, pf, d) !counts) ~default:0;
      }
    in
    let nodes = List.map (fun (k, _) -> node_of k) (KMap.bindings !counts) in
    (* summary edges: concrete semantic edges grouped by endpoint keys *)
    let edge_acc : ((int * bool * bool) * (int * bool * bool), int list * int) Hashtbl.t =
      Hashtbl.create 16
    in
    List.iter
      (fun (src, field, dst) ->
        if ISet.mem dst s.Apparent.apparent then
          match (key src, key dst) with
          | Some ks, Some kd ->
              let fields, count =
                Option.value (Hashtbl.find_opt edge_acc (ks, kd)) ~default:([], 0)
              in
              let fields =
                if List.mem field fields || List.length fields >= max_field_labels then fields
                else field :: fields
              in
              Hashtbl.replace edge_acc (ks, kd) (fields, count + 1)
          | _ -> ())
      s.Apparent.edges;
    let edges =
      Hashtbl.fold
        (fun (ks, kd) (fields, count) acc ->
          {
            se_src = node_of ks;
            se_dst = node_of kd;
            se_fields = List.sort compare fields;
            se_count = count;
          }
          :: acc)
        edge_acc []
    in
    (* dead links: fields of dead objects on a path that reaches the
       precise set.  Reverse reachability over the snapshot's edges
       gives the feeding set; its members' outgoing edges are links. *)
    let rev : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (src, _, dst) ->
        if ISet.mem src dead then
          Hashtbl.replace rev dst (src :: Option.value (Hashtbl.find_opt rev dst) ~default:[]))
      s.Apparent.edges;
    let feeding = ref ISet.empty in
    let queue = Queue.create () in
    ISet.iter (fun id -> Queue.add id queue) s.Apparent.precise;
    let seen = ref s.Apparent.precise in
    while not (Queue.is_empty queue) do
      let id = Queue.take queue in
      List.iter
        (fun src ->
          if not (ISet.mem src !seen) then begin
            seen := ISet.add src !seen;
            feeding := ISet.add src !feeding;
            Queue.add src queue
          end)
        (Option.value (Hashtbl.find_opt rev id) ~default:[])
    done;
    let dead_links =
      List.filter_map
        (fun (src, field, dst) ->
          if
            ISet.mem src !feeding
            && (ISet.mem dst s.Apparent.precise || ISet.mem dst !feeding)
          then
            Some { l_src = src; l_field = field; l_dst = dst; l_dst_live = ISet.mem dst s.Apparent.precise }
          else None)
        s.Apparent.edges
    in
    {
      sh_ordinal = s.Apparent.ordinal;
      sh_at_instr = s.Apparent.at_instr;
      sh_nodes = nodes;
      sh_edges = edges;
      sh_dead_links = dead_links;
      sh_barrier_stores =
        (if s.Apparent.at_instr < Array.length barrier_counts then
           barrier_counts.(s.Apparent.at_instr)
         else 0);
    }
  in
  let graphs = List.map build_graph r.Apparent.snapshots in
  {
    graphs;
    max_dead_links =
      List.fold_left (fun acc g -> max acc (List.length g.sh_dead_links)) 0 graphs;
  }

let worst t =
  List.fold_left
    (fun acc g ->
      match acc with
      | Some best when List.length best.sh_dead_links >= List.length g.sh_dead_links -> acc
      | _ -> Some g)
    None t.graphs

(* Groups that link to themselves through fields somewhere in the run:
   the path-sensitive evidence behind R1 (self-referential structure
   with embedded links, not just a statistically correlated group). *)
let self_linked t =
  let acc : (int * bool, int list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun g ->
      List.iter
        (fun e ->
          if
            e.se_src.sn_bytes = e.se_dst.sn_bytes
            && e.se_src.sn_pointer_free = e.se_dst.sn_pointer_free
          then begin
            let k = (e.se_src.sn_bytes, e.se_src.sn_pointer_free) in
            let old = Option.value (Hashtbl.find_opt acc k) ~default:[] in
            let fields =
              List.fold_left
                (fun fs f ->
                  if List.mem f fs || List.length fs >= max_field_labels then fs else f :: fs)
                old e.se_fields
            in
            Hashtbl.replace acc k fields
          end)
        g.sh_edges)
    t.graphs;
  Hashtbl.fold (fun k fields l -> (k, List.sort compare fields) :: l) acc []

let pp_node ppf n =
  Format.fprintf ppf "%dB%s%s x%d" n.sn_bytes
    (if n.sn_pointer_free then " atomic" else "")
    (if n.sn_dead then " dead" else "")
    n.sn_count

let pp_graph ppf g =
  Format.fprintf ppf "@[<v>gc #%d: %d node(s), %d summary edge(s), %d dead link(s)" g.sh_ordinal
    (List.length g.sh_nodes) (List.length g.sh_edges)
    (List.length g.sh_dead_links);
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  [%a] -(%s)-> [%a] x%d" pp_node e.se_src
        (String.concat "," (List.map string_of_int e.se_fields))
        pp_node e.se_dst e.se_count)
    g.sh_edges;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf "@[<v>access graphs: %d point(s), worst dead links %d" (List.length t.graphs)
    t.max_dead_links;
  (match worst t with
  | Some g when g.sh_dead_links <> [] -> Format.fprintf ppf "@,%a" pp_graph g
  | _ -> ());
  Format.fprintf ppf "@]"
